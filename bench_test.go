// Package phttp's root benchmark harness: one benchmark per table/figure of
// the paper plus micro-benchmarks of the core data structures and an
// ablation of extended LARD's design knobs.
//
// Figure benchmarks report the reproduced metric through b.ReportMetric
// (req/s, Mb/s or KB) so `go test -bench` output doubles as a compact
// regeneration of the evaluation:
//
//	go test -bench=Fig -benchmem
//
// The full-resolution sweeps (all cluster sizes, full trace) live in
// cmd/phttp-sim, cmd/phttp-analytic and cmd/phttp-bench; the benchmarks here
// use scaled-down workloads so the whole suite runs in minutes.
package phttp

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"phttp/internal/analytic"
	"phttp/internal/cache"
	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/httpmsg"
	"phttp/internal/loadgen"
	"phttp/internal/policy"
	"phttp/internal/server"
	"phttp/internal/sim"
	"phttp/internal/simcore"
	"phttp/internal/trace"
)

// benchTrace is shared by the simulation benchmarks.
var (
	benchTraceOnce sync.Once
	benchTraceVal  *trace.Trace
)

func benchTrace() *trace.Trace {
	benchTraceOnce.Do(func() {
		cfg := trace.DefaultSynthConfig()
		cfg.Connections = 12000
		benchTraceVal = trace.NewSynth(cfg).Generate()
	})
	return benchTraceVal
}

// --- Figure 3: single back-end delay/throughput vs offered load ---

func BenchmarkFig3DelayCurve(b *testing.B) {
	tr := benchTrace()
	for i := 0; i < b.N; i++ {
		thr, delay, err := sim.DelaySweep(core.Apache, []int{1, 16, 64}, tr)
		if err != nil {
			b.Fatal(err)
		}
		last := len(thr.Points) - 1
		b.ReportMetric(thr.Points[last].Y, "req/s@64conns")
		b.ReportMetric(delay.Points[last].Y, "ms@64conns")
	}
}

// --- Figures 5 and 6: analytic bandwidth and crossover ---

func BenchmarkFig5ApacheAnalytic(b *testing.B) {
	cfg := analytic.DefaultConfig(core.Apache)
	for i := 0; i < b.N; i++ {
		multi, fwd := cfg.Bandwidth(8 << 10)
		cross := cfg.Crossover(200 << 10)
		b.ReportMetric(multi, "multi-Mb/s@8KB")
		b.ReportMetric(fwd, "BEfwd-Mb/s@8KB")
		b.ReportMetric(float64(cross)/1024, "crossover-KB")
	}
}

func BenchmarkFig6FlashAnalytic(b *testing.B) {
	cfg := analytic.DefaultConfig(core.Flash)
	for i := 0; i < b.N; i++ {
		multi, fwd := cfg.Bandwidth(8 << 10)
		cross := cfg.Crossover(200 << 10)
		b.ReportMetric(multi, "multi-Mb/s@8KB")
		b.ReportMetric(fwd, "BEfwd-Mb/s@8KB")
		b.ReportMetric(float64(cross)/1024, "crossover-KB")
	}
}

// --- Figures 7 and 8: simulated cluster throughput ---

func benchCluster(b *testing.B, kind core.ServerKind, comboName string, nodes int) {
	combo, err := sim.ComboByName(comboName)
	if err != nil {
		b.Fatal(err)
	}
	tr := benchTrace()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(nodes, combo)
		cfg.Server = server.CostsFor(kind)
		res, err := sim.Run(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput, "req/s")
		b.ReportMetric(100*res.HitRate, "hit%")
	}
}

func BenchmarkFig7ApacheCluster(b *testing.B) {
	for _, combo := range []string{
		"zeroCost-extLARD-PHTTP", "multiHandoff-extLARD-PHTTP",
		"BEforward-extLARD-PHTTP", "simple-LARD", "simple-LARD-PHTTP",
		"WRR-PHTTP", "WRR",
	} {
		for _, nodes := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/n%d", combo, nodes), func(b *testing.B) {
				benchCluster(b, core.Apache, combo, nodes)
			})
		}
	}
}

func BenchmarkFig8FlashCluster(b *testing.B) {
	for _, combo := range []string{
		"zeroCost-extLARD-PHTTP", "BEforward-extLARD-PHTTP",
		"simple-LARD", "WRR",
	} {
		for _, nodes := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/n%d", combo, nodes), func(b *testing.B) {
				benchCluster(b, core.Flash, combo, nodes)
			})
		}
	}
}

// --- Figure 13: the real prototype over loopback sockets ---

func BenchmarkFig13Prototype(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy string
		mech   core.Mechanism
		http10 bool
	}{
		{"BEforward-extLARD-PHTTP", "extlard", core.BEForwarding, false},
		{"simple-LARD", "lard", core.SingleHandoff, true},
		{"WRR-PHTTP", "wrr", core.SingleHandoff, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tcfg := trace.DefaultSynthConfig()
			tcfg.Connections = 1200
			tr := trace.NewSynth(tcfg).Generate()
			for i := 0; i < b.N; i++ {
				cfg := cluster.DefaultConfig(3, tr.Sizes)
				cfg.Policy = tc.policy
				cfg.Mechanism = tc.mech
				cfg.TimeScale = 50
				cl, err := cluster.Start(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := loadgen.Run(loadgen.Config{
					Addr: cl.Addr(), Trace: tr, HTTP10: tc.http10,
					Concurrency: 64, WarmupFrac: 0.2,
					IOTimeout: time.Minute,
				})
				cl.Close()
				if err != nil {
					b.Fatal(err)
				}
				// Normalized to the modeled hardware speed.
				b.ReportMetric(res.Throughput/50, "req/s(normalized)")
			}
		})
	}
}

// --- Ablation: extended LARD design knobs (DESIGN.md §7) ---

// BenchmarkAblationDiskThreshold sweeps the disk-queue "low" threshold that
// gates local serving and replication: 0 disables local replication
// entirely, large values approximate simple LARD's stickiness.
func BenchmarkAblationDiskThreshold(b *testing.B) {
	tr := benchTrace()
	for _, thresh := range []int{0, 1, 2, 4, 16} {
		b.Run(fmt.Sprintf("diskLow=%d", thresh), func(b *testing.B) {
			combo, _ := sim.ComboByName("BEforward-extLARD-PHTTP")
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(4, combo)
				cfg.Params.DiskQueueLow = thresh
				res, err := sim.Run(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "req/s")
			}
		})
	}
}

// BenchmarkAblationLOverload sweeps the overload knee of the balancing
// metric: too low degrades to load balancing, too high lets queues build.
func BenchmarkAblationLOverload(b *testing.B) {
	tr := benchTrace()
	for _, lo := range []float64{40, 80, 130, 260} {
		b.Run(fmt.Sprintf("Loverload=%.0f", lo), func(b *testing.B) {
			combo, _ := sim.ComboByName("BEforward-extLARD-PHTTP")
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(4, combo)
				cfg.Params.LOverload = lo
				res, err := sim.Run(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "req/s")
			}
		})
	}
}

// --- Micro-benchmarks ---

func BenchmarkLRUInsertLookup(b *testing.B) {
	c := newBenchLRU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := core.Target(fmt.Sprintf("/t%d", i%10000))
		if !c.Lookup(t) {
			c.Insert(t, int64(i%20000)+1)
		}
	}
}

func BenchmarkPolicyExtLARDAssign(b *testing.B) {
	p := policy.NewExtLARD(8, 85<<20, policy.DefaultParams(), core.BEForwarding)
	in := core.NewInterner()
	req := func(t core.Target, size int64) core.Request {
		return core.Request{Target: t, ID: in.Intern(t), Size: size}
	}
	conns := make([]*core.ConnState, 64)
	for i := range conns {
		conns[i] = core.NewConnState(core.ConnID(i))
		target := core.Target(fmt.Sprintf("/p%d", i))
		p.ConnOpen(conns[i], req(target, 8<<10))
		p.AssignBatch(conns[i], core.Batch{req(target, 8<<10)})
	}
	batch := core.Batch{
		req("/o1", 4<<10), req("/o2", 4<<10), req("/o3", 4<<10),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AssignBatch(conns[i%len(conns)], batch)
	}
}

func BenchmarkHTTPRequestParse(b *testing.B) {
	raw := "GET /docs/page01234.html HTTP/1.1\r\nHost: cluster\r\nAccept: */*\r\n\r\n"
	big := strings.Repeat(raw, 64)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			b.StopTimer()
			br := bufio.NewReader(strings.NewReader(big))
			b.StartTimer()
			benchReader = br
		}
		if _, err := httpmsg.ReadRequest(benchReader); err != nil {
			b.Fatal(err)
		}
	}
}

var benchReader *bufio.Reader

// BenchmarkEventEngine exercises the legacy closure path (After/func()):
// the closure itself is the only allocation left.
func BenchmarkEventEngine(b *testing.B) {
	e := simcore.NewEngine()
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			e.After(1, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(1, fn)
	e.Run(0)
}

// engineChain is the typed-callback payload of BenchmarkEventEngineTyped.
type engineChain struct {
	eng *simcore.Engine
	n   int
	max int
}

func engineChainStep(obj any, _, _ int64) {
	c := obj.(*engineChain)
	c.n++
	if c.n < c.max {
		c.eng.CallAfter(1, engineChainStep, c, 0, 0)
	}
}

// BenchmarkEventEngineTyped is the simulator's actual scheduling pattern —
// closure-free typed callbacks — and must report 0 allocs/op in steady
// state (also pinned by TestEngineSteadyStateZeroAllocs).
func BenchmarkEventEngineTyped(b *testing.B) {
	e := simcore.NewEngine()
	c := &engineChain{eng: e, max: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	e.CallAfter(1, engineChainStep, c, 0, 0)
	e.Run(0)
}

func BenchmarkTraceGenerate(b *testing.B) {
	cfg := trace.SmallSynthConfig()
	cfg.Connections = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.NewSynth(cfg).Generate()
		b.ReportMetric(float64(tr.Requests()), "requests")
	}
}

func BenchmarkTraceReconstruct(b *testing.B) {
	cfg := trace.SmallSynthConfig()
	cfg.Connections = 2000
	entries := trace.NewSynth(cfg).GenerateEntries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Reconstruct(entries, trace.DefaultIdleTimeout, trace.DefaultBatchWindow)
	}
}

func newBenchLRU() *cache.LRU { return cache.NewLRU(64 << 20) }
