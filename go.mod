module phttp

go 1.22
