// custom-policy shows the open policy registry end to end: a third-party
// dispatch policy — defined entirely in this example, outside
// internal/dispatch — registers itself with a typed option schema through
// the public API, and a declarative scenario file runs it in the
// simulator next to a built-in baseline. The same registration makes it
// runnable in the prototype (phttp-frontend reads the same registry) and
// the same scenario file drives phttp-sim / phttp-bench / phttp-loadgen.
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/scenario"
	"phttp/internal/sim"
)

// HashAffinity is the example policy: each target's interned ID hashes to
// a fixed home node, and the connection goes there unless the home is
// more than `spill-factor` times as loaded as the least-loaded node, in
// which case it spills to that node. A two-line idea — but with full
// cache affinity, an overload valve, and a knob — registered and swept
// like the paper's own policies.
type HashAffinity struct {
	loads *core.LoadTracker
	spill float64
}

var _ core.Policy = (*HashAffinity)(nil)

func (h *HashAffinity) Name() string { return "hashAffinity" }

func (h *HashAffinity) home(id core.TargetID) core.NodeID {
	x := uint64(uint32(id)) * 0x9e3779b97f4a7c15
	return core.NodeID((x >> 32) % uint64(h.loads.Nodes()))
}

func (h *HashAffinity) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	n := h.home(first.ID)
	if least := h.loads.Least(); least != n &&
		h.loads.Load(n) > h.spill*(h.loads.Load(least)+1) {
		n = least // the home node is drowning: spill this connection
	}
	c.Handling = n
	h.loads.AddConn(n)
	return n
}

func (h *HashAffinity) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	out := c.AssignBuf(len(batch))
	for i := range batch {
		out[i] = core.Assignment{Node: c.Handling, CacheLocally: true}
		c.Requests++
	}
	c.Batches++
	return out
}

func (h *HashAffinity) BatchDone(*core.ConnState) {}

func (h *HashAffinity) ConnClose(c *core.ConnState) {
	if c.Handling != core.NoNode {
		h.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}

func (h *HashAffinity) ReportDiskQueue(core.NodeID, int) {}
func (h *HashAffinity) Loads() *core.LoadTracker         { return h.loads }

func init() {
	// The registration is the entire integration surface: name, help,
	// option schema, constructor. Nothing inside internal/dispatch knows
	// this policy exists.
	dispatch.MustRegister("hashaffinity", dispatch.Builder{
		Help: "target-hash home node with a load spill valve (examples/custom-policy)",
		Options: []dispatch.OptionSpec{
			{Key: "spill-factor", Kind: dispatch.KindFloat, Default: 3.0,
				Help: "spill to the least-loaded node when the home node is this many times as loaded"},
		},
		New: func(a dispatch.BuildArgs) (core.Policy, error) {
			return &HashAffinity{
				loads: core.NewLoadTracker(a.Nodes),
				spill: a.Float("spill-factor"),
			}, nil
		},
	})
}

// scenarioJSON is the scenario file for the new policy: written to disk
// and loaded back through scenario.Load, exactly the path `phttp-sim
// -scenario myexp.json` takes.
const scenarioJSON = `{
  "version": 1,
  "name": "hashaffinity-demo",
  "doc": "third-party hash-affinity policy, small workload, 4 nodes",
  "workload": {"synth": {"connections": 12000, "pages": 2000, "objects": 4500, "clients": 500}},
  "policy": {"name": "hashaffinity", "options": {"spill-factor": 2.5}},
  "mechanism": "singleHandoff",
  "cluster": {"nodes": 4, "cacheMB": 16},
  "server": {"model": "apache"}
}`

func main() {
	// Introspect the registered policy: Describe is what -h and the docs
	// render, straight from the registration.
	d, err := dispatch.Describe("hashaffinity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered policy %q: %s\n", d.Name, d.Help)
	for _, o := range d.Options {
		fmt.Printf("  option %-14s %-7v default %-6v %s\n", o.Key, o.Kind, o.Default, o.Help)
	}

	path := filepath.Join(os.TempDir(), "hashaffinity-demo.json")
	if err := os.WriteFile(path, []byte(scenarioJSON), 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	spec, err := scenario.Load(path)
	if err != nil {
		log.Fatal(err)
	}

	wl, _, err := spec.LoadWorkload()
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := spec.ToSimConfig()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulating %q on %d nodes (vs built-in baselines):\n\n", spec.Name, cfg.Nodes)
	res, err := sim.Run(cfg, wl.PHTTP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// Baselines through the same scenario compiler: swap the policy name,
	// keep everything else declarative.
	for _, baseline := range []string{"wrr", "lard"} {
		spec.Policy = scenario.PolicySpec{Name: baseline}
		bcfg, err := spec.ToSimConfig()
		if err != nil {
			log.Fatal(err)
		}
		bres, err := sim.Run(bcfg, wl.PHTTP)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bres)
	}

	fmt.Println("\nreading the rows: hash affinity gets LARD-like hit rates on a")
	fmt.Println("skew-friendly workload (content-keyed placement aggregates the node")
	fmt.Println("caches) without a mapping table; the spill valve keeps the hot-page")
	fmt.Println("node from saturating like a pure mod-N hash would.")
}
