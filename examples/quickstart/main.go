// Quickstart: the smallest useful tour of the library.
//
// It builds a synthetic Web workload, shows the LARD dispatcher making
// content-based placement decisions (Figure 1 of the paper), and runs one
// cluster simulation comparing weighted round-robin against extended LARD
// with back-end forwarding on persistent connections.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"phttp/internal/core"
	"phttp/internal/policy"
	"phttp/internal/sim"
	"phttp/internal/trace"
)

func main() {
	// --- Figure 1: locality-aware request distribution in two lines ---
	// Three targets, two back-ends: LARD partitions the working set, so
	// repeated requests always land where the target is cached.
	lard := policy.NewLARD(2, 64<<20, policy.DefaultParams())
	fmt.Println("LARD placement (Figure 1):")
	var open []*core.ConnState
	for i, target := range []core.Target{"/A", "/B", "/C", "/A", "/B", "/C"} {
		c := core.NewConnState(core.ConnID(i))
		node := lard.ConnOpen(c, core.Request{Target: target, Size: 8 << 10})
		fmt.Printf("  GET %s -> %v\n", target, node)
		open = append(open, c) // hold connections so load shapes placement
	}
	for _, c := range open {
		lard.ConnClose(c)
	}

	// --- A small workload ---
	cfg := trace.SmallSynthConfig()
	cfg.Connections = 6000
	tr := trace.NewSynth(cfg).Generate()
	fmt.Printf("\nworkload: %d connections, %d requests, %d targets\n",
		len(tr.Conns), tr.Requests(), len(tr.Sizes))

	// --- WRR vs extended LARD with BE forwarding, 4 nodes ---
	fmt.Println("\nsimulating a 4-node Apache cluster:")
	for _, name := range []string{"WRR-PHTTP", "BEforward-extLARD-PHTTP"} {
		combo, err := sim.ComboByName(name)
		if err != nil {
			log.Fatal(err)
		}
		sc := sim.DefaultConfig(4, combo)
		sc.CacheBytes = 4 << 20 // small cache to match the small workload
		res, err := sim.Run(sc, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v\n", res)
	}
	fmt.Println("\nextended LARD wins by aggregating the node caches; see")
	fmt.Println("cmd/phttp-sim and cmd/phttp-bench for the full figures.")
}
