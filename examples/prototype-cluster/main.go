// prototype-cluster boots the real thing on loopback: a front-end with the
// extended LARD dispatcher, three back-ends receiving handed-off client
// connections over SCM_RIGHTS fd passing, lateral fetches between
// back-ends, and the event-driven load generator replaying a persistent-
// connection workload against it.
//
//	go run ./examples/prototype-cluster
package main

import (
	"fmt"
	"log"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/loadgen"
	"phttp/internal/policy"
	"phttp/internal/trace"
)

func main() {
	tcfg := trace.DefaultSynthConfig()
	tcfg.Connections = 2000
	tr := trace.NewSynth(tcfg).Generate()

	cfg := cluster.DefaultConfig(3, tr.Sizes)
	cfg.Policy = "extlard"
	cfg.Mechanism = core.BEForwarding
	cfg.TimeScale = 20 // run the modeled hardware 20x faster
	cl, err := cluster.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("cluster up at %s: 3 back-ends, extLARD + BE forwarding\n", cl.Addr())

	start := time.Now()
	res, err := loadgen.Run(loadgen.Config{
		Addr:        cl.Addr(),
		Trace:       tr,
		Concurrency: 48,
		WarmupFrac:  0.2,
		Verify:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d requests in %v: %s\n",
		res.Requests, time.Since(start).Round(time.Millisecond), res)
	fmt.Printf("aggregate back-end cache hit rate: %.1f%%\n", 100*cl.HitRate())
	fmt.Printf("front-end utilization: %.1f%%\n", 100*cl.FE.Utilization())
	for i, be := range cl.BEs {
		fmt.Printf("  backend %d served %d responses (hit rate %.1f%%)\n",
			i, be.Served(), 100*be.Store().HitRate())
	}
	if ext, ok := cl.FE.Policy().(*policy.ExtLARD); ok {
		local, remote, _, _ := ext.Stats()
		fmt.Printf("dispatcher decisions: %d local serves, %d lateral fetches\n",
			local, remote)
	}
}
