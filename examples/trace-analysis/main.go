// trace-analysis exercises the workload pipeline the way the paper's
// authors processed the Rice logs: generate (or read) a Common Log Format
// server log, reconstruct HTTP/1.1 persistent connections and pipelined
// batches with the 15-second and 1-second heuristics, and report the
// Section 6 statistics (working set, coverage curve, requests per
// connection).
//
//	go run ./examples/trace-analysis             # self-generated log
//	go run ./examples/trace-analysis access.log  # your own CLF log
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"phttp/internal/trace"
)

func main() {
	var entries []trace.Entry
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		var malformed int
		entries, malformed, err = trace.ReadCLF(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %d entries from %s (%d malformed lines skipped)\n",
			len(entries), os.Args[1], malformed)
	} else {
		cfg := trace.SmallSynthConfig()
		cfg.Connections = 3000
		entries = trace.NewSynth(cfg).GenerateEntries()
		fmt.Printf("generated %d log entries\n", len(entries))

		// Show the round trip through the on-disk format too.
		var buf bytes.Buffer
		if err := trace.WriteCLF(&buf, entries); err != nil {
			log.Fatal(err)
		}
		reread, malformed, err := trace.ReadCLF(&buf)
		if err != nil || malformed != 0 {
			log.Fatalf("CLF round trip: %v (%d malformed)", err, malformed)
		}
		entries = reread
		fmt.Printf("CLF round trip ok (%d entries)\n", len(entries))
	}

	tr := trace.Reconstruct(entries, trace.DefaultIdleTimeout, trace.DefaultBatchWindow)
	fmt.Println()
	fmt.Print(trace.ComputeStats(tr, 0.97, 0.99, 1.0))
}
