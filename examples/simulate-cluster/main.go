// simulate-cluster reproduces a slice of Figure 7: every policy/mechanism
// combination of the paper on a fixed cluster size, with per-run detail
// (hit rates, utilizations, extended-LARD decision counters).
//
//	go run ./examples/simulate-cluster
package main

import (
	"fmt"
	"log"

	"phttp/internal/sim"
	"phttp/internal/trace"
)

func main() {
	const nodes = 4

	cfg := trace.DefaultSynthConfig()
	cfg.Connections = 20000
	tr := trace.NewSynth(cfg).Generate()
	fmt.Print(trace.ComputeStats(tr))
	fmt.Printf("\nsimulating %d-node Apache clusters:\n\n", nodes)

	for _, combo := range sim.Combos() {
		res, err := sim.Run(sim.DefaultConfig(nodes, combo), tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		if res.RemoteServes > 0 || res.Migrations > 0 {
			fmt.Printf("%-28s     local=%d remote=%d migrations=%d\n",
				"", res.LocalServes, res.RemoteServes, res.Migrations)
		}
	}

	fmt.Println("\nreading the rows:")
	fmt.Println("  - WRR is disk bound: low hit rate, disk ~100%, flat scaling")
	fmt.Println("  - simple-LARD-PHTTP loses locality: persistent connections pin")
	fmt.Println("    requests to the handoff node")
	fmt.Println("  - extLARD with BE forwarding or multiple handoff recovers it,")
	fmt.Println("    landing near the zero-cost ideal")
}
