package httpmsg

import (
	"bufio"
	"bytes"
	"testing"

	"phttp/internal/core"
)

// Native Go fuzz targets for the HTTP/1.x parsers. The prototype's
// front-end feeds ReadRequest bytes straight off client sockets, so the
// parser must never panic and every accepted message must survive a
// serialize/reparse round trip (the forwarding module re-emits request
// heads). CI runs each target for a short -fuzztime smoke on every push;
// the seed corpus below keeps the coverage-guided search anchored on real
// protocol shapes.

func requestSeeds(f *testing.F) {
	for _, s := range []string{
		"GET /index.html HTTP/1.0\r\n\r\n",
		"GET / HTTP/1.1\r\nHost: example.com\r\nConnection: keep-alive\r\n\r\n",
		"GET /a?q=1&x=%20 HTTP/1.1\r\nHost: h\r\n\r\n",
		"HEAD /doc HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
		"GET /pipelined1 HTTP/1.1\r\n\r\nGET /pipelined2 HTTP/1.1\r\n\r\n",
		"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
		"GET /lf-only HTTP/1.0\n\n",
		"GET /x HTTP/2.0\r\n\r\n",
		"GET  /two-spaces HTTP/1.0\r\n\r\n",
		"GET /x HTTP/1.0\r\nBad Header\r\n\r\n",
		"GET /x HTTP/1.0\r\n: empty-name\r\n\r\n",
		"GET /x HTTP/1.0\r\nA: b\r\nA: c\r\n\r\n",
		"\r\n\r\n",
		"GET /truncated HTTP/1.1\r\nHost",
	} {
		f.Add([]byte(s))
	}
}

func FuzzReadRequest(f *testing.F) {
	requestSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // rejected input; only accepted messages owe invariants
		}
		if req.Method == "" || req.Target == "" {
			t.Fatalf("accepted request with empty method/target: %+v", req)
		}
		if req.Proto != "HTTP/1.0" && req.Proto != "HTTP/1.1" {
			t.Fatalf("accepted protocol %q", req.Proto)
		}
		req.KeepAlive() // must not panic on any accepted header set

		// Round trip: the forwarding path re-serializes request heads, so
		// an accepted head must reparse to the same message.
		var buf bytes.Buffer
		if _, err := req.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		back, err := ReadRequest(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("accepted request does not reparse: %v\nserialized: %q", err, buf.Bytes())
		}
		if back.Method != req.Method || back.Target != req.Target || back.Proto != req.Proto {
			t.Fatalf("round trip changed request line: %+v -> %+v", req, back)
		}
		if len(back.Headers) != len(req.Headers) {
			t.Fatalf("round trip changed header count: %v -> %v", req.Headers, back.Headers)
		}
		for i := range req.Headers {
			if back.Headers[i] != req.Headers[i] {
				t.Fatalf("round trip changed header %d: %+v -> %+v", i, req.Headers[i], back.Headers[i])
			}
		}
	})
}

func FuzzReadRequestInterned(f *testing.F) {
	requestSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		plain, plainErr := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		in := core.NewInterner()
		interned, err := ReadRequestInterned(bufio.NewReader(bytes.NewReader(data)), in)
		if (err == nil) != (plainErr == nil) {
			t.Fatalf("interned parse disagreed with plain parse: %v vs %v", err, plainErr)
		}
		if err != nil {
			return
		}
		if interned.Target != plain.Target {
			t.Fatalf("interned parse changed target: %q vs %q", interned.Target, plain.Target)
		}
		if interned.ID == core.NoTarget {
			t.Fatal("interned parse left ID unset")
		}
		if got := in.Name(interned.ID); got != core.Target(interned.Target) {
			t.Fatalf("interner maps ID %d to %q, target is %q", interned.ID, got, interned.Target)
		}
		// Under a capped interner the parse takes a reference the caller
		// owns: hold, verify, release — no panics, no aliasing.
		capped := core.NewEvictableInterner(1)
		r2, err := ReadRequestInterned(bufio.NewReader(bytes.NewReader(data)), capped)
		if err != nil {
			t.Fatalf("capped interner changed parse outcome: %v", err)
		}
		if got := capped.Name(r2.ID); got != core.Target(r2.Target) {
			t.Fatalf("capped interner aliased %d to %q", r2.ID, got)
		}
		capped.Release(r2.ID)
	})
}

func FuzzReadResponse(f *testing.F) {
	for _, s := range []string{
		"HTTP/1.0 200 OK\r\nContent-Length: 10\r\n\r\n0123456789",
		"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
		"HTTP/1.1 200 OK\r\nServer: phttp-cluster\r\nContent-Length: 8192\r\nConnection: keep-alive\r\n\r\n",
		"HTTP/1.1 200\r\n\r\n",
		"HTTP/1.1 999 Weird\r\n\r\n",
		"HTTP/1.1 20x Bad\r\n\r\n",
		"HTTP/1.0 200 OK\r\nContent-Length: -5\r\n\r\n",
		"HTTP/1.0 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\n",
		"ICY 200 OK\r\n\r\n",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if resp.Proto != "HTTP/1.0" && resp.Proto != "HTTP/1.1" {
			t.Fatalf("accepted protocol %q", resp.Proto)
		}
		if resp.Status < 100 || resp.Status > 599 {
			t.Fatalf("accepted status %d", resp.Status)
		}
		if resp.ContentLength < 0 {
			t.Fatalf("accepted negative Content-Length %d", resp.ContentLength)
		}
		resp.KeepAlive() // must not panic on any accepted header set
	})
}
