// Package httpmsg implements the minimal HTTP/1.0 and HTTP/1.1 message
// handling the prototype cluster needs: request and response parsing and
// serialization with persistent-connection (keep-alive) semantics and
// pipelining support.
//
// The prototype's data path deliberately avoids net/http: the front-end's
// forwarding module and the back-end's handed-off connections manipulate
// raw sockets (including file descriptors received over UNIX domain
// sockets), and the paper's servers speak exactly this subset. Responses
// always carry Content-Length (no chunked encoding), which is what 1998-era
// servers produced for static content.
package httpmsg

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"phttp/internal/core"
)

// Limits protect the parsers from malformed or hostile input.
const (
	// MaxLineBytes bounds a request/status/header line.
	MaxLineBytes = 8 << 10
	// MaxHeaderBytes bounds the total header section.
	MaxHeaderBytes = 64 << 10
	// MaxHeaders bounds the number of header fields.
	MaxHeaders = 128
)

// Errors returned by the parsers.
var (
	// ErrLineTooLong reports a request or header line over MaxLineBytes.
	ErrLineTooLong = errors.New("httpmsg: line too long")
	// ErrHeadersTooLarge reports a header section over the limits.
	ErrHeadersTooLarge = errors.New("httpmsg: header section too large")
	// ErrMalformed reports a syntactically invalid message.
	ErrMalformed = errors.New("httpmsg: malformed message")
)

// Header is one header field; order is preserved across parse/serialize.
type Header struct {
	Name  string
	Value string
}

// Request is a parsed HTTP request.
type Request struct {
	Method string
	Target string // origin-form request target (path + optional query)
	// ID is the interned form of Target, set when the request was parsed
	// through ReadRequestInterned; NoTarget after a plain ReadRequest.
	// Carrying the dense ID out of the parser lets the prototype
	// front-end dispatch on IDs exactly like the simulator, with no
	// per-request target hashing downstream of the parse.
	ID      core.TargetID
	Proto   string // "HTTP/1.0" or "HTTP/1.1"
	Headers []Header
}

// Response is a parsed HTTP response header; the body (ContentLength bytes)
// remains on the reader for the caller to consume.
type Response struct {
	Proto         string
	Status        int
	Reason        string
	Headers       []Header
	ContentLength int64
}

// readLine reads one CRLF- (or LF-) terminated line within MaxLineBytes.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && line != "" {
			return "", fmt.Errorf("%w: truncated line", ErrMalformed)
		}
		return "", err
	}
	if len(line) > MaxLineBytes {
		return "", ErrLineTooLong
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readHeaders parses header fields up to the blank line.
func readHeaders(br *bufio.Reader) ([]Header, error) {
	var hs []Header
	total := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return hs, nil
		}
		total += len(line)
		if total > MaxHeaderBytes || len(hs) >= MaxHeaders {
			return nil, ErrHeadersTooLarge
		}
		name, value, ok := strings.Cut(line, ":")
		name = strings.TrimSpace(name)
		// The trimmed name must be non-empty, or the field would not
		// survive a serialize/reparse round trip (" : v" is not a header).
		if !ok || name == "" {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		hs = append(hs, Header{
			Name:  name,
			Value: strings.TrimSpace(value),
		})
	}
}

// Get returns the first value of the named header (case-insensitive) and
// whether it was present.
func Get(hs []Header, name string) (string, bool) {
	for _, h := range hs {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// ReadRequest parses one request head (no body; GET/HEAD only need none).
// io.EOF is returned untouched when the connection closed cleanly between
// requests, so callers can distinguish shutdown from corruption.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.Split(line, " ")
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	if req.Method == "" || req.Target == "" {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	if req.Proto != "HTTP/1.0" && req.Proto != "HTTP/1.1" {
		return nil, fmt.Errorf("%w: protocol %q", ErrMalformed, req.Proto)
	}
	req.Headers, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// ReadRequestInterned parses one request head like ReadRequest and interns
// the target, stamping the dense TargetID onto the returned request — the
// prototype front-end's parse path, which keeps everything downstream of
// the parser (dispatch, policies, mapping tables) on integer IDs. On an
// evictable interner the returned ID holds one reference that the caller
// releases once the request has been dispatched (the front-end does so via
// the engine's ReleaseBatch).
func ReadRequestInterned(br *bufio.Reader, in *core.Interner) (*Request, error) {
	req, err := ReadRequest(br)
	if err != nil {
		return nil, err
	}
	req.ID = in.Intern(core.Target(req.Target))
	return req, nil
}

// KeepAlive reports whether the connection persists after this request:
// HTTP/1.1 defaults to persistent unless "Connection: close"; HTTP/1.0
// requires an explicit "Connection: keep-alive".
func (r *Request) KeepAlive() bool {
	v, ok := Get(r.Headers, "Connection")
	if r.Proto == "HTTP/1.1" {
		return !ok || !strings.EqualFold(v, "close")
	}
	return ok && strings.EqualFold(v, "keep-alive")
}

// WriteTo serializes the request head.
func (r *Request) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, r.Target, r.Proto)
	for _, h := range r.Headers {
		fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
	}
	b.WriteString("\r\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ReadResponse parses one response head. The body (ContentLength bytes) is
// left on br for the caller.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	proto, rest, ok := strings.Cut(line, " ")
	if !ok || (proto != "HTTP/1.0" && proto != "HTTP/1.1") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	codeStr, reason, _ := strings.Cut(rest, " ")
	code, err := strconv.Atoi(codeStr)
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformed, codeStr)
	}
	resp := &Response{Proto: proto, Status: code, Reason: reason}
	resp.Headers, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	if v, ok := Get(resp.Headers, "Content-Length"); ok {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: Content-Length %q", ErrMalformed, v)
		}
		resp.ContentLength = n
	}
	return resp, nil
}

// KeepAlive reports whether the connection persists after this response.
func (r *Response) KeepAlive() bool {
	v, ok := Get(r.Headers, "Connection")
	if r.Proto == "HTTP/1.1" {
		return !ok || !strings.EqualFold(v, "close")
	}
	return ok && strings.EqualFold(v, "keep-alive")
}

// ResponseHead serializes a response head with the given status,
// Content-Length and keep-alive disposition; proto should echo the
// request's protocol version.
func ResponseHead(proto string, status int, contentLength int64, keepAlive bool) string {
	conn := "close"
	if keepAlive {
		conn = "keep-alive"
	}
	return fmt.Sprintf("%s %d %s\r\nServer: phttp-cluster\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n",
		proto, status, StatusText(status), contentLength, conn)
}

// StatusText returns the canonical reason phrase for the status codes the
// cluster produces.
func StatusText(status int) string {
	switch status {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}
