package httpmsg

import (
	"bufio"
	"bytes"
	"fmt"
	"testing"

	"phttp/internal/core"
)

// BenchmarkReadRequestInternedParallel measures the front-end's parse path
// — request head parse plus parse-time interning — from parallel
// goroutines, the shape of concurrent connection handlers. The capped
// variants put the evictable interner's lock-free hit path under real
// parser traffic; comparing stripes=1 against stripes=auto isolates what
// interner sharding contributes once GOMAXPROCS > 1.
func BenchmarkReadRequestInternedParallel(b *testing.B) {
	const hotSet = 256
	raw := make([][]byte, hotSet)
	for i := range raw {
		raw[i] = []byte(fmt.Sprintf("GET /doc/%04d HTTP/1.1\r\nHost: bench\r\n\r\n", i))
	}
	run := func(b *testing.B, in *core.Interner) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			br := bufio.NewReader(nil)
			rd := bytes.NewReader(nil)
			i := uint32(0)
			for pb.Next() {
				i = i*1664525 + 1013904223
				rd.Reset(raw[i%hotSet])
				br.Reset(rd)
				req, err := ReadRequestInterned(br, in)
				if err != nil {
					b.Fatal(err)
				}
				in.Release(req.ID)
			}
		})
	}
	b.Run("pinned", func(b *testing.B) {
		run(b, core.NewInterner())
	})
	b.Run("capped/stripes=1", func(b *testing.B) {
		run(b, core.NewEvictableInternerStripes(4096, 1))
	})
	b.Run("capped/stripes=auto", func(b *testing.B) {
		run(b, core.NewEvictableInternerStripes(4096, 0))
	})
}
