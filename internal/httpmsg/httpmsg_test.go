package httpmsg

import (
	"bufio"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func reader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestReadRequestBasic(t *testing.T) {
	req, err := ReadRequest(reader("GET /index.html HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Target != "/index.html" || req.Proto != "HTTP/1.1" {
		t.Errorf("parsed %+v", req)
	}
	if v, ok := Get(req.Headers, "host"); !ok || v != "x" {
		t.Errorf("Host header = %q, %v", v, ok)
	}
}

func TestReadRequestBareLF(t *testing.T) {
	req, err := ReadRequest(reader("GET /a HTTP/1.0\nHost: x\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Target != "/a" {
		t.Errorf("Target = %q", req.Target)
	}
}

func TestReadRequestPipelined(t *testing.T) {
	br := reader("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
	r1, err1 := ReadRequest(br)
	r2, err2 := ReadRequest(br)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Target != "/a" || r2.Target != "/b" {
		t.Errorf("pipelined parse: %q, %q", r1.Target, r2.Target)
	}
	if _, err := ReadRequest(br); err != io.EOF {
		t.Errorf("expected io.EOF after stream end, got %v", err)
	}
}

func TestReadRequestMalformed(t *testing.T) {
	bad := []string{
		"\r\n",
		"GET /x\r\n\r\n",
		"GET /x HTTP/2.0\r\n\r\n",
		"GET /x HTTP/1.1 extra\r\n\r\n",
		"GET /x HTTP/1.1\r\nNoColonHeader\r\n\r\n",
		"GET /x HTTP/1.1\r\n: empty name\r\n\r\n",
	}
	for _, s := range bad {
		if _, err := ReadRequest(reader(s)); err == nil {
			t.Errorf("accepted malformed request %q", s)
		}
	}
}

func TestReadRequestTruncated(t *testing.T) {
	_, err := ReadRequest(reader("GET /x HTTP/1.1\r\nHost: x"))
	if err == nil || errors.Is(err, io.EOF) && err == io.EOF {
		t.Errorf("truncated request returned %v, want wrapped error", err)
	}
}

func TestHeaderLimits(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET /x HTTP/1.1\r\n")
	for i := 0; i < MaxHeaders+1; i++ {
		b.WriteString("X-H: v\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadRequest(reader(b.String())); !errors.Is(err, ErrHeadersTooLarge) {
		t.Errorf("got %v, want ErrHeadersTooLarge", err)
	}

	long := "GET /" + strings.Repeat("a", MaxLineBytes) + " HTTP/1.1\r\n\r\n"
	if _, err := ReadRequest(reader(long)); !errors.Is(err, ErrLineTooLong) {
		t.Errorf("got %v, want ErrLineTooLong", err)
	}
}

func TestRequestKeepAlive(t *testing.T) {
	cases := []struct {
		proto, conn string
		want        bool
	}{
		{"HTTP/1.1", "", true},
		{"HTTP/1.1", "close", false},
		{"HTTP/1.1", "keep-alive", true},
		{"HTTP/1.0", "", false},
		{"HTTP/1.0", "keep-alive", true},
		{"HTTP/1.0", "close", false},
	}
	for _, c := range cases {
		req := &Request{Method: "GET", Target: "/", Proto: c.proto}
		if c.conn != "" {
			req.Headers = []Header{{Name: "Connection", Value: c.conn}}
		}
		if got := req.KeepAlive(); got != c.want {
			t.Errorf("%s Connection=%q: KeepAlive=%v, want %v", c.proto, c.conn, got, c.want)
		}
	}
}

func TestRequestWriteReadRoundTrip(t *testing.T) {
	req := &Request{
		Method: "GET", Target: "/a/b?q=1", Proto: "HTTP/1.1",
		Headers: []Header{{Name: "Host", Value: "h"}, {Name: "X-Tag", Value: "be2"}},
	}
	var sb strings.Builder
	if _, err := req.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(reader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != req.Method || got.Target != req.Target || got.Proto != req.Proto {
		t.Errorf("round trip %+v", got)
	}
	if len(got.Headers) != 2 || got.Headers[1] != req.Headers[1] {
		t.Errorf("headers %+v", got.Headers)
	}
}

func TestReadResponse(t *testing.T) {
	resp, err := ReadResponse(reader("HTTP/1.1 200 OK\r\nContent-Length: 42\r\nConnection: keep-alive\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.ContentLength != 42 || !resp.KeepAlive() {
		t.Errorf("parsed %+v", resp)
	}
}

func TestReadResponseMalformed(t *testing.T) {
	bad := []string{
		"HTTP/1.1\r\n\r\n",
		"HTTP/9 200 OK\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 99 Low\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: x\r\n\r\n",
	}
	for _, s := range bad {
		if _, err := ReadResponse(reader(s)); err == nil {
			t.Errorf("accepted malformed response %q", s)
		}
	}
}

func TestResponseHeadParsesBack(t *testing.T) {
	head := ResponseHead("HTTP/1.1", 200, 1234, true)
	resp, err := ReadResponse(reader(head))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.ContentLength != 1234 || !resp.KeepAlive() {
		t.Errorf("parsed %+v", resp)
	}
	head = ResponseHead("HTTP/1.0", 404, 9, false)
	resp, err = ReadResponse(reader(head))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 || resp.KeepAlive() {
		t.Errorf("parsed %+v", resp)
	}
}

func TestStatusText(t *testing.T) {
	for _, code := range []int{200, 400, 404, 500, 502, 503, 777} {
		if StatusText(code) == "" {
			t.Errorf("StatusText(%d) empty", code)
		}
	}
}

// Property: any request with printable token fields survives a
// write/read round trip unchanged.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(pathSeed uint32, nHeaders uint8) bool {
		target := "/p" + strings.Repeat("x", int(pathSeed%64)+1)
		req := &Request{Method: "GET", Target: target, Proto: "HTTP/1.1"}
		for i := 0; i < int(nHeaders%8); i++ {
			req.Headers = append(req.Headers, Header{Name: "X-K", Value: "v"})
		}
		var sb strings.Builder
		if _, err := req.WriteTo(&sb); err != nil {
			return false
		}
		got, err := ReadRequest(reader(sb.String()))
		if err != nil {
			return false
		}
		return got.Target == req.Target && len(got.Headers) == len(req.Headers)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
