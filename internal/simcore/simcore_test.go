package simcore

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("event order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEngineEventsCanSchedule(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			e.After(1, chain)
		}
	}
	e.After(1, chain)
	n := e.Run(0)
	if n != 100 || count != 100 {
		t.Errorf("ran %d events, counted %d, want 100", n, count)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestEngineBudget(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.At(core.Micros(i), func() {})
	}
	if n := e.Run(4); n != 4 {
		t.Errorf("Run(4) processed %d", n)
	}
	if e.Pending() != 6 {
		t.Errorf("Pending() = %d, want 6", e.Pending())
	}
}

// Property: popping the heap always yields non-decreasing times.
func TestEngineHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []core.Micros
		for _, tm := range times {
			at := core.Micros(tm)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run(0)
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	var r Resource
	d1 := r.Schedule(0, 10)
	d2 := r.Schedule(0, 5)
	d3 := r.Schedule(20, 5)
	if d1 != 10 || d2 != 15 {
		t.Errorf("completions %v, %v, want 10, 15", d1, d2)
	}
	if d3 != 25 { // idle gap 15..20, then 5 of work
		t.Errorf("third completion %v, want 25", d3)
	}
	if r.Queued() != 3 {
		t.Errorf("Queued() = %d, want 3", r.Queued())
	}
	r.Release()
	r.Release()
	r.Release()
	if r.Queued() != 0 {
		t.Errorf("Queued() = %d after releases", r.Queued())
	}
	if r.BusyTotal() != 20 {
		t.Errorf("BusyTotal() = %v, want 20", r.BusyTotal())
	}
	if got := r.Utilization(40); got != 0.5 {
		t.Errorf("Utilization(40) = %v, want 0.5", got)
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release without Schedule did not panic")
		}
	}()
	var r Resource
	r.Release()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGStreamDeterminism(t *testing.T) {
	a, b := NewRNGStream(42, 7), NewRNGStream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) produced different sequences")
		}
	}
}

func TestRNGStreamsAreDistinct(t *testing.T) {
	// Every pair among a handful of streams of one seed — and the base
	// NewRNG sequence — must diverge within a few draws.
	const seed, draws = 42, 8
	seqs := [][]uint64{}
	base := NewRNG(seed)
	var bs []uint64
	for i := 0; i < draws; i++ {
		bs = append(bs, base.Uint64())
	}
	seqs = append(seqs, bs)
	for stream := uint64(0); stream < 16; stream++ {
		r := NewRNGStream(seed, stream)
		var s []uint64
		for i := 0; i < draws; i++ {
			s = append(s, r.Uint64())
		}
		seqs = append(seqs, s)
	}
	for i := range seqs {
		for j := i + 1; j < len(seqs); j++ {
			same := true
			for k := 0; k < draws; k++ {
				if seqs[i][k] != seqs[j][k] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("sequences %d and %d identical over %d draws", i, j, draws)
			}
		}
	}
	// Different seeds give different streams too.
	x, y := NewRNGStream(1, 3), NewRNGStream(2, 3)
	if x.Uint64() == y.Uint64() && x.Uint64() == y.Uint64() {
		t.Error("different seeds produced identical stream 3")
	}
}

func TestRNGStreamZeroSeedNonDegenerate(t *testing.T) {
	r := NewRNGStream(0, 0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestZipfWithSharesCDF(t *testing.T) {
	rng := NewRNG(5)
	z := NewZipf(rng, 100, 0.8)
	// A child sampler on its own stream must match a freshly built sampler
	// driven by an identical stream: With only swaps the RNG.
	zw := z.With(NewRNGStream(5, 2))
	ref := NewZipf(NewRNGStream(5, 2), 100, 0.8)
	for i := 0; i < 1000; i++ {
		if a, b := zw.Next(), ref.Next(); a != b {
			t.Fatalf("draw %d: With sampler %d, reference %d", i, a, b)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values of 7", len(seen))
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Exp(5) sample mean = %v", mean)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(3)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("Geometric(3) sample mean = %v", mean)
	}
	if r.Geometric(0.5) != 1 {
		t.Error("Geometric(<1) should return 1")
	}
}

func TestRNGParetoLowerBound(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(100, 1.5); v < 100 {
			t.Fatalf("Pareto sample %v below scale", v)
		}
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	r := NewRNG(19)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	// With alpha=1, P(0)/P(9) = 10.
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 7 || ratio > 14 {
		t.Errorf("P(0)/P(9) = %v, want ~10", ratio)
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

// TestEngineResetReusesSlabs pins the sweep-pool contract: a reset engine
// is observably identical to a fresh one (clock, order, results) while
// keeping its arenas, so per-worker engines reused across grid points
// cannot perturb determinism.
func TestEngineResetReusesSlabs(t *testing.T) {
	run := func(e *Engine) []int {
		var got []int
		e.After(30, func() { got = append(got, 3) })
		e.After(10, func() { got = append(got, 1) })
		e.At(20, func() { got = append(got, 2) })
		e.Run(0)
		return got
	}
	eng := NewEngine()
	first := run(eng)
	eng.Reset()
	if eng.Now() != 0 || eng.Pending() != 0 {
		t.Fatalf("reset engine: now=%v pending=%d", eng.Now(), eng.Pending())
	}
	second := run(eng)
	fresh := run(NewEngine())
	for i := range fresh {
		if first[i] != fresh[i] || second[i] != fresh[i] {
			t.Fatalf("reused engine diverged: first=%v second=%v fresh=%v", first, second, fresh)
		}
	}
	// Reset with events still pending must drop them.
	eng.After(5, func() { t.Error("event survived Reset") })
	eng.Reset()
	if n := eng.Run(0); n != 0 {
		t.Errorf("ran %d events after Reset", n)
	}
}

// TestResourceAccessors covers the diagnostic getters the cluster
// utilization reporting reads.
func TestResourceAccessors(t *testing.T) {
	var r Resource
	if r.BusyUntil() != 0 || r.BusyTotal() != 0 || r.Queued() != 0 {
		t.Fatalf("zero resource: %+v", r)
	}
	if got := r.Utilization(0); got != 0 {
		t.Errorf("Utilization with no elapsed time = %v, want 0", got)
	}
	done := r.Schedule(10, 30)
	if done != 40 || r.BusyUntil() != 40 || r.Queued() != 1 {
		t.Errorf("Schedule: done=%v busyUntil=%v queued=%d", done, r.BusyUntil(), r.Queued())
	}
	if got := r.Utilization(60); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := r.Utilization(15); got != 1 {
		t.Errorf("Utilization clamps at 1, got %v", got)
	}
	r.Release()
	if r.Queued() != 0 {
		t.Errorf("Queued after Release = %d", r.Queued())
	}
}
