package simcore

import (
	"container/heap"
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

// refEvent and refHeap reimplement the original container/heap engine the
// 4-ary value heap replaced; the property tests pin the new engine to its
// exact firing order, including equal-time tie-breaks.
type refEvent struct {
	at  core.Micros
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// refEngine drains a schedule through the reference heap and returns the
// firing order by event id.
type refEngine struct {
	now core.Micros
	seq uint64
	h   refHeap
}

func (r *refEngine) at(t core.Micros, id int) {
	r.seq++
	heap.Push(&r.h, &refEvent{at: t, seq: r.seq, id: id})
}

func (r *refEngine) drain() []int {
	var order []int
	for r.h.Len() > 0 {
		e := heap.Pop(&r.h).(*refEvent)
		r.now = e.at
		order = append(order, e.id)
	}
	return order
}

// TestEngineMatchesReferenceHeap drives the value-typed 4-ary engine and the
// reference container/heap implementation with the same schedule — times
// drawn from a narrow range so equal-time ties are common — and demands
// bit-identical firing order.
func TestEngineMatchesReferenceHeap(t *testing.T) {
	f := func(times []uint8) bool {
		e := NewEngine()
		ref := &refEngine{}
		var got []int
		for i, tm := range times {
			at := core.Micros(tm % 16) // heavy tie collisions
			id := i
			e.At(at, func() { got = append(got, id) })
			ref.at(at, i)
		}
		e.Run(0)
		want := ref.drain()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEngineMatchesReferenceHeapNested extends the property to events that
// schedule further events — the simulator's actual shape — interleaving pops
// with pushes so the heaps are exercised in mixed order.
func TestEngineMatchesReferenceHeapNested(t *testing.T) {
	f := func(times []uint8) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine()
		var got []int
		next := 0
		var schedule func(delay core.Micros)
		schedule = func(delay core.Micros) {
			if next >= len(times) {
				return
			}
			id := next
			d := core.Micros(times[next] % 8)
			next++
			e.After(delay, func() {
				got = append(got, id)
				// Each event spawns up to two children at small offsets,
				// creating same-time collisions with pending siblings.
				schedule(d)
				schedule(d / 2)
			})
		}
		schedule(0)

		// Reference run: replay the identical recursion over the reference
		// heap, stepping it event by event so nested scheduling sees the
		// advanced clock exactly as the real engine does.
		ref := &refEngine{}
		refNext := 0
		fired := []int{}
		refSchedule := func(delay core.Micros) {
			if refNext >= len(times) {
				return
			}
			id := refNext
			refNext++
			ref.at(ref.now+delay, id)
		}
		refDelay := make(map[int]core.Micros, len(times))
		for i, tm := range times {
			refDelay[i] = core.Micros(tm % 8)
		}
		refSchedule(0)
		for ref.h.Len() > 0 {
			ev := heap.Pop(&ref.h).(*refEvent)
			ref.now = ev.at
			fired = append(fired, ev.id)
			d := refDelay[ev.id]
			refSchedule(d)
			refSchedule(d / 2)
		}

		e.Run(0)
		if len(got) != len(fired) {
			return false
		}
		for i := range got {
			if got[i] != fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// stepPayload is the typed-callback payload used by the allocation tests.
type stepPayload struct {
	eng *Engine
	n   int
}

func stepAction(obj any, a, b int64) {
	p := obj.(*stepPayload)
	p.n++
	if a > 0 {
		p.eng.CallAfter(1, stepAction, p, a-1, b)
	}
}

// TestEngineSteadyStateZeroAllocs pins the tentpole claim: scheduling and
// stepping closure-free events in steady state performs zero heap
// allocations per event once the slab and heap have warmed up.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	p := &stepPayload{eng: e}
	// Warm up: grow the heap slice and body slab to peak depth.
	for i := 0; i < 64; i++ {
		e.CallAfter(core.Micros(i+1), stepAction, p, 0, 0)
	}
	e.Run(0)

	avg := testing.AllocsPerRun(1000, func() {
		e.CallAfter(1, stepAction, p, 0, 0)
		if !e.Step() {
			t.Fatal("no event to step")
		}
	})
	if avg != 0 {
		t.Errorf("steady-state schedule+step allocates %.2f allocs/op, want 0", avg)
	}
}

// TestEngineChainZeroAllocs runs a self-rescheduling chain — the simulator's
// dominant pattern — and checks the whole chain allocates nothing.
func TestEngineChainZeroAllocs(t *testing.T) {
	e := NewEngine()
	p := &stepPayload{eng: e}
	e.CallAfter(1, stepAction, p, 8, 0) // warm the slab
	e.Run(0)
	avg := testing.AllocsPerRun(200, func() {
		e.CallAfter(1, stepAction, p, 64, 0)
		e.Run(0)
	})
	if avg != 0 {
		t.Errorf("event chain allocates %.2f allocs/run, want 0", avg)
	}
}

func TestEngineCallOrderInterleavesWithAt(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := func(obj any, a, b int64) { got = append(got, int(a)) }
	e.Call(5, rec, nil, 0, 0)
	e.At(5, func() { got = append(got, 1) })
	e.Call(5, rec, nil, 2, 0)
	e.At(3, func() { got = append(got, 3) })
	e.Run(0)
	want := []int{3, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mixed Call/At order = %v, want %v", got, want)
		}
	}
}

func TestEngineCallNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Call(nil) did not panic")
		}
	}()
	NewEngine().Call(1, nil, nil, 0, 0)
}
