// Package simcore provides the discrete-event machinery underneath the
// cluster simulator: a zero-allocation event queue with a deterministic
// tie-break order, a simulated clock, and busy-server resource helpers.
//
// The queue is a value-typed 4-ary min-heap of small (time, seq, slot) keys
// ordered exactly as the original binary heap of *Event pointers was — by
// time, ties broken by scheduling order — plus a free-listed slab of event
// bodies. A body carries either a typed callback (an Action plus a pointer
// payload and two integer arguments, the closure-free fast path the
// simulator's hot loop uses) or a plain func() for convenience callers.
// Steady-state scheduling and stepping through Call/Step touches only the
// heap slice and the slab, so it performs zero heap allocations per event
// once the engine has warmed up to its peak queue depth.
package simcore

import (
	"phttp/internal/core"
)

// Action is a closure-free event callback: obj is an arbitrary pointer
// payload and a, b are small integer arguments (a phase code, a node index —
// whatever the caller encodes). Using a package-level function or a method
// expression as an Action allocates nothing at schedule time, unlike a
// closure.
type Action func(obj any, a, b int64)

// heapKey is one 4-ary heap element: the ordering key plus the slab slot of
// the event's body. Keeping the key small makes sift swaps cheap. Events at
// equal times fire in scheduling order (seq), which keeps runs
// deterministic.
type heapKey struct {
	at   core.Micros
	seq  uint64
	slot int32
}

// body is the out-of-line payload of a scheduled event. Exactly one of
// action/fn is set. next links free slots.
type body struct {
	action Action
	obj    any
	a, b   int64
	fn     func()
	next   int32
}

const noSlot int32 = -1

// Engine owns the clock, the pending-event heap and the body slab.
type Engine struct {
	now    core.Micros
	seq    uint64
	keys   []heapKey
	bodies []body
	free   int32
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{free: noSlot}
}

// Reset returns the engine to its initial state — clock at zero, nothing
// pending — while keeping the heap and body-slab capacity, so a sweep
// worker can reuse one engine's arenas across grid points instead of
// regrowing them from zero on every run. Payload references in the
// retained slab are dropped. A reset engine is observably identical to a
// fresh one (allocation order included), which keeps reused-engine runs
// byte-identical to fresh-engine runs.
func (e *Engine) Reset() {
	clear(e.bodies)
	e.keys = e.keys[:0]
	e.bodies = e.bodies[:0]
	e.free = noSlot
	e.now = 0
	e.seq = 0
}

// Now returns the current simulated time.
func (e *Engine) Now() core.Micros { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.keys) }

// alloc acquires a body slot from the free list, growing the slab only when
// the queue exceeds its historical peak depth.
//
//phttp:hotpath
func (e *Engine) alloc() int32 {
	if e.free == noSlot {
		e.bodies = append(e.bodies, body{})
		return int32(len(e.bodies) - 1)
	}
	s := e.free
	e.free = e.bodies[s].next
	return s
}

// push schedules body slot s at time t, preserving the exact (time, seq)
// order of the original container/heap implementation.
//
//phttp:hotpath
func (e *Engine) push(t core.Micros, s int32) {
	if t < e.now {
		panic("simcore: event scheduled in the past")
	}
	e.seq++
	e.keys = append(e.keys, heapKey{at: t, seq: e.seq, slot: s})
	e.siftUp(len(e.keys) - 1)
}

func (k heapKey) less(o heapKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	return k.seq < o.seq
}

//phttp:hotpath
func (e *Engine) siftUp(i int) {
	keys := e.keys
	k := keys[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !k.less(keys[parent]) {
			break
		}
		keys[i] = keys[parent]
		i = parent
	}
	keys[i] = k
}

//phttp:hotpath
func (e *Engine) siftDown(i int) {
	keys := e.keys
	n := len(keys)
	k := keys[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if keys[c].less(keys[min]) {
				min = c
			}
		}
		if !keys[min].less(k) {
			break
		}
		keys[i] = keys[min]
		i = min
	}
	keys[i] = k
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a modelling bug, not a recoverable condition. The closure
// path is kept for convenience callers and tests; the simulator's hot loop
// uses Call, which allocates nothing.
func (e *Engine) At(t core.Micros, fn func()) {
	s := e.alloc()
	e.bodies[s] = body{fn: fn, next: noSlot}
	e.push(t, s)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d core.Micros, fn func()) { e.At(e.now+d, fn) }

// Call schedules the closure-free event act(obj, a, b) at absolute time t.
//
//phttp:hotpath
func (e *Engine) Call(t core.Micros, act Action, obj any, a, b int64) {
	if act == nil {
		panic("simcore: Call with nil Action")
	}
	s := e.alloc()
	e.bodies[s] = body{action: act, obj: obj, a: a, b: b, next: noSlot}
	e.push(t, s)
}

// CallAfter schedules act(obj, a, b) to run d after the current time.
//
//phttp:hotpath
func (e *Engine) CallAfter(d core.Micros, act Action, obj any, a, b int64) {
	e.Call(e.now+d, act, obj, a, b)
}

// Step runs the earliest pending event, advancing the clock. It reports
// whether an event ran.
//
//phttp:hotpath
func (e *Engine) Step() bool {
	if len(e.keys) == 0 {
		return false
	}
	top := e.keys[0]
	n := len(e.keys) - 1
	e.keys[0] = e.keys[n]
	e.keys = e.keys[:n]
	if n > 0 {
		e.siftDown(0)
	}
	// Copy the body out and release the slot before dispatching, clearing
	// the references so the slab never retains dead payloads; the callback
	// may schedule new events into the freed slot.
	b := e.bodies[top.slot]
	e.bodies[top.slot] = body{next: e.free}
	e.free = top.slot
	e.now = top.at
	if b.action != nil {
		b.action(b.obj, b.a, b.b)
	} else {
		b.fn()
	}
	return true
}

// Run processes events until the queue drains or the event budget is
// exhausted, returning the number of events processed. A budget of 0 means
// unlimited.
func (e *Engine) Run(budget int) int {
	n := 0
	for e.Step() {
		n++
		if budget > 0 && n >= budget {
			break
		}
	}
	return n
}

// Resource models a serially shared device (a CPU or a disk) with FIFO
// service: work scheduled on it starts at max(now, busyUntil) and occupies
// the device for its cost. Busy time is accumulated for utilization
// reporting.
type Resource struct {
	busyUntil core.Micros
	busyTotal core.Micros
	queued    int
}

// Schedule reserves the resource for cost starting no earlier than now and
// returns the completion time. queued is incremented until Release is called
// by the caller at completion (via the engine).
//
//phttp:hotpath
func (r *Resource) Schedule(now, cost core.Micros) core.Micros {
	start := r.busyUntil
	if now > start {
		start = now
	}
	done := start + cost
	r.busyUntil = done
	r.busyTotal += cost
	r.queued++
	return done
}

// Release records the completion of one scheduled unit of work.
//
//phttp:hotpath
func (r *Resource) Release() {
	r.queued--
	if r.queued < 0 {
		panic("simcore: resource released more than scheduled")
	}
}

// Queued returns the number of in-flight work items (scheduled, not yet
// released). The extended LARD disk heuristic consumes this for disks.
func (r *Resource) Queued() int { return r.queued }

// BusyUntil returns the time the resource drains if no more work arrives.
func (r *Resource) BusyUntil() core.Micros { return r.busyUntil }

// BusyTotal returns the accumulated busy time.
func (r *Resource) BusyTotal() core.Micros { return r.busyTotal }

// Utilization returns busy time divided by elapsed time (0 if none elapsed).
func (r *Resource) Utilization(elapsed core.Micros) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busyTotal) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
