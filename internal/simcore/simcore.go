// Package simcore provides the discrete-event machinery underneath the
// cluster simulator: a binary-heap event queue with a deterministic
// tie-break order, a simulated clock, and busy-server resource helpers.
package simcore

import (
	"container/heap"

	"phttp/internal/core"
)

// Event is a callback scheduled at a simulated time. Events at equal times
// fire in scheduling order (Seq), which keeps runs deterministic.
type Event struct {
	At  core.Micros
	Seq uint64
	Fn  func()
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the clock and the pending-event heap.
type Engine struct {
	now    core.Micros
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() core.Micros { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a modelling bug, not a recoverable condition.
func (e *Engine) At(t core.Micros, fn func()) {
	if t < e.now {
		panic("simcore: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, &Event{At: t, Seq: e.seq, Fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d core.Micros, fn func()) { e.At(e.now+d, fn) }

// Step runs the earliest pending event, advancing the clock. It reports
// whether an event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.At
	ev.Fn()
	return true
}

// Run processes events until the queue drains or the event budget is
// exhausted, returning the number of events processed. A budget of 0 means
// unlimited.
func (e *Engine) Run(budget int) int {
	n := 0
	for e.Step() {
		n++
		if budget > 0 && n >= budget {
			break
		}
	}
	return n
}

// Resource models a serially shared device (a CPU or a disk) with FIFO
// service: work scheduled on it starts at max(now, busyUntil) and occupies
// the device for its cost. Busy time is accumulated for utilization
// reporting.
type Resource struct {
	busyUntil core.Micros
	busyTotal core.Micros
	queued    int
}

// Schedule reserves the resource for cost starting no earlier than now and
// returns the completion time. queued is incremented until Release is called
// by the caller at completion (via the engine).
func (r *Resource) Schedule(now, cost core.Micros) core.Micros {
	start := r.busyUntil
	if now > start {
		start = now
	}
	done := start + cost
	r.busyUntil = done
	r.busyTotal += cost
	r.queued++
	return done
}

// Release records the completion of one scheduled unit of work.
func (r *Resource) Release() {
	r.queued--
	if r.queued < 0 {
		panic("simcore: resource released more than scheduled")
	}
}

// Queued returns the number of in-flight work items (scheduled, not yet
// released). The extended LARD disk heuristic consumes this for disks.
func (r *Resource) Queued() int { return r.queued }

// BusyUntil returns the time the resource drains if no more work arrives.
func (r *Resource) BusyUntil() core.Micros { return r.busyUntil }

// BusyTotal returns the accumulated busy time.
func (r *Resource) BusyTotal() core.Micros { return r.busyTotal }

// Utilization returns busy time divided by elapsed time (0 if none elapsed).
func (r *Resource) Utilization(elapsed core.Micros) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busyTotal) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
