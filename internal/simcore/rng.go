package simcore

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-based) used by the workload generator and simulator so runs
// are reproducible from a seed without depending on math/rand's global
// state or version-dependent stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// nonzero constant so the stream is never degenerate).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// NewRNGStream returns an independent child generator for (seed, stream):
// SplitMix-style child seeding where the child's initial state is the
// splitmix64 finalizer applied to the parent seed offset by the stream
// index times the golden-gamma increment. Distinct streams of one seed are
// decorrelated from each other and from NewRNG(seed) itself, and the
// mapping is a pure function of (seed, stream) — parallel workers drawing
// from per-block streams reproduce a serial run exactly, whichever worker
// generates which block.
func NewRNGStream(seed, stream uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	z := seed + (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &RNG{state: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simcore: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed sample (Box-Muller).
func (r *RNG) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mu + sigma*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed sample with scale xm and shape alpha.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Geometric returns a geometric sample in {1, 2, ...} with the given mean
// (mean must be >= 1).
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p {
		n++
		if n >= 1<<20 {
			break
		}
	}
	return n
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^alpha, using an inverted-CDF table built by NewZipf.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
func NewZipf(rng *RNG, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("simcore: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// With returns a sampler sharing z's inverted-CDF table but drawing from
// r. Building the CDF is O(n); With is O(1), so per-block generators can
// reuse one catalog-wide popularity table with their own RNG streams.
func (z *Zipf) With(r *RNG) *Zipf {
	return &Zipf{cdf: z.cdf, rng: r}
}

// Next returns the next rank sample in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
