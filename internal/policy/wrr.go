package policy

import (
	"fmt"
	"sync/atomic"

	"phttp/internal/core"
)

// WRR is the weighted round-robin policy used by commercial layer-4 cluster
// front-ends: connections are assigned to back-ends in round-robin order
// weighted by the nodes' current load (and, optionally, static capacity
// weights for heterogeneous clusters), with no regard for the requested
// content. All requests on a connection stay on the handling node (the WRR
// mechanism is equivalent to simple TCP handoff).
//
// WRR is safe for concurrent dispatch: loads are atomic and the round-robin
// cursor is an atomic hint — two racing ConnOpens may read the same cursor
// and break ties identically, which skews nothing (the load comparison, not
// the cursor, carries the balancing).
type WRR struct {
	memberSet
	loads   *core.LoadTracker
	weights []float64
	next    atomic.Int64 // round-robin tie-break cursor
}

var (
	_ core.Policy           = (*WRR)(nil)
	_ core.MembershipPolicy = (*WRR)(nil)
)

// NewWRR returns a WRR policy over n equally weighted back-end nodes.
func NewWRR(n int) *WRR {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return NewWeightedWRR(w)
}

// NewWeightedWRR returns a WRR policy with per-node capacity weights: a
// node with weight 2 is considered half as loaded as an equally busy node
// with weight 1 (the "weighted" in commercial front-ends' weighted
// round-robin). Weights must be positive.
func NewWeightedWRR(weights []float64) *WRR {
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("policy: WRR weight %d is %v, must be positive", i, w))
		}
	}
	w := &WRR{loads: core.NewLoadTracker(len(weights)), weights: weights}
	w.init(len(weights))
	return w
}

// Name implements core.Policy.
func (w *WRR) Name() string { return "WRR" }

// ConnOpen assigns the connection to the least weighted-load eligible
// node, breaking ties round-robin, and charges it one load unit. With
// every node ineligible (the driver gates dispatch on that) it degrades
// to the unfiltered choice.
//
//phttp:hotpath
func (w *WRR) ConnOpen(c *core.ConnState, _ core.Request) core.NodeID {
	n := w.loads.Nodes()
	cursor := int(w.next.Load())
	mem := w.active()
	best := core.NoNode
	bestLoad := 0.0
	for i := 0; i < n; i++ {
		cand := core.NodeID((cursor + i) % n)
		if mem != nil && !mem.eligible(cand) {
			continue
		}
		l := w.loads.Load(cand) / w.weights[cand]
		if best == core.NoNode || l < bestLoad {
			best, bestLoad = cand, l
		}
	}
	if best == core.NoNode {
		for i := 0; i < n; i++ {
			cand := core.NodeID((cursor + i) % n)
			l := w.loads.Load(cand) / w.weights[cand]
			if best == core.NoNode || l < bestLoad {
				best, bestLoad = cand, l
			}
		}
	}
	w.next.Store(int64((int(best) + 1) % n))
	c.Handling = best
	w.loads.AddConn(best)
	return best
}

// AssignBatch sends every request to the handling node. The returned slice
// is the connection's reusable buffer: valid until the next AssignBatch on
// the same connection.
//
//phttp:hotpath
func (w *WRR) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	out := c.AssignBuf(len(batch))
	for i := range batch {
		out[i] = core.Assignment{Node: c.Handling, CacheLocally: true}
		c.Requests++
	}
	c.Batches++
	return out
}

// BatchDone is a no-op: WRR never charges fractional loads.
func (w *WRR) BatchDone(*core.ConnState) {}

// ConnClose releases the connection's load unit.
func (w *WRR) ConnClose(c *core.ConnState) {
	if c.Handling != core.NoNode {
		w.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}

// ReportDiskQueue is ignored: WRR uses connection counts only.
func (w *WRR) ReportDiskQueue(core.NodeID, int) {}

// Loads implements core.Policy.
func (w *WRR) Loads() *core.LoadTracker { return w.loads }
