package policy

import (
	"fmt"
	"math"
	"testing"

	"phttp/internal/core"
)

func internedReqs(targets int) []core.Request {
	in := core.NewInterner()
	out := make([]core.Request, targets)
	for i := range out {
		t := core.Target(fmt.Sprintf("/t%04d", i))
		out[i] = core.Request{Target: t, ID: in.Intern(t), Size: 4 << 10}
	}
	return out
}

// TestP2CDeterministicPerTarget pins the placement contract: with equal
// loads, a target always resolves to the same node (its candidate pair is a
// pure function of ID and seed), and the same seed reproduces the same
// placement across policy instances.
func TestP2CDeterministicPerTarget(t *testing.T) {
	reqs := internedReqs(64)
	p1 := NewP2C(8, 42)
	p2 := NewP2C(8, 42)
	for _, r := range reqs {
		c1, c2 := core.NewConnState(1), core.NewConnState(1)
		n1 := p1.ConnOpen(c1, r)
		n2 := p2.ConnOpen(c2, r)
		if n1 != n2 {
			t.Fatalf("target %s: instance placement differs (%v vs %v)", r.Target, n1, n2)
		}
		p1.ConnClose(c1)
		p2.ConnClose(c2)
	}
}

// TestP2CCandidatesDistinct verifies the two choices are always distinct
// nodes when the cluster has more than one.
func TestP2CCandidatesDistinct(t *testing.T) {
	for _, nodes := range []int{2, 3, 7, 32} {
		p := NewP2C(nodes, 1)
		for _, r := range internedReqs(512) {
			a, b := p.candidates(r.ID)
			if a == b {
				t.Fatalf("n=%d target %v: candidates collide on %v", nodes, r.ID, a)
			}
			if a < 0 || int(a) >= nodes || b < 0 || int(b) >= nodes {
				t.Fatalf("n=%d: candidate out of range (%v, %v)", nodes, a, b)
			}
		}
	}
}

// TestP2CBalancesBetterThanSingleHash drives a skewed workload and checks
// the classic result: choosing the less loaded of two candidates keeps the
// maximum node load far below single-hash placement.
func TestP2CBalancesBetterThanSingleHash(t *testing.T) {
	const nodes, conns = 8, 4000
	reqs := internedReqs(200)
	p := NewP2C(nodes, 1)
	single := make([]int, nodes) // what hashing to the first candidate alone would do
	var open []*core.ConnState
	for i := 0; i < conns; i++ {
		r := reqs[i%len(reqs)]
		c := core.NewConnState(core.ConnID(i))
		p.ConnOpen(c, r)
		open = append(open, c)
		a, _ := p.candidates(r.ID)
		single[a]++
	}
	maxP2C, maxSingle := 0, 0
	for n := 0; n < nodes; n++ {
		if c := p.Loads().Conns(core.NodeID(n)); c > maxP2C {
			maxP2C = c
		}
		if single[n] > maxSingle {
			maxSingle = single[n]
		}
	}
	if maxP2C > maxSingle {
		t.Errorf("p2c max load %d worse than single-hash %d", maxP2C, maxSingle)
	}
	// The mean is conns/nodes; two choices should stay within 2x of it on
	// this wide-margin workload.
	if mean := conns / nodes; maxP2C > 2*mean {
		t.Errorf("p2c max load %d exceeds 2x mean %d", maxP2C, mean)
	}
	for _, c := range open {
		p.ConnClose(c)
	}
	if got := p.Loads().Total(); math.Abs(got) > 1e-9 {
		t.Errorf("load leaked after closes: %v", got)
	}
}

// TestBoundedCHBoundInvariant hammers a single hot target and asserts the
// defining property: no node ever holds more than ceil(c × (total+1)/n)
// connections, however skewed the workload.
func TestBoundedCHBoundInvariant(t *testing.T) {
	const nodes = 6
	bound := 1.25
	b := NewBoundedCH(nodes, 128, bound, 1)
	hot := internedReqs(1)[0]
	var open []*core.ConnState
	for i := 0; i < 900; i++ {
		c := core.NewConnState(core.ConnID(i))
		b.ConnOpen(c, hot)
		open = append(open, c)
		total := 0
		for n := 0; n < nodes; n++ {
			total += b.Loads().Conns(core.NodeID(n))
		}
		limit := int(math.Ceil(bound * float64(total) / nodes))
		for n := 0; n < nodes; n++ {
			if got := b.Loads().Conns(core.NodeID(n)); got > limit {
				t.Fatalf("after %d opens: node %d holds %d conns, bound %d", total, n, got, limit)
			}
		}
	}
	for _, c := range open {
		b.ConnClose(c)
	}
}

// TestBoundedCHStickyPlacement verifies consistent-hashing locality: under
// light load every distinct target maps to a stable node, identical across
// instances with the same seed.
func TestBoundedCHStickyPlacement(t *testing.T) {
	reqs := internedReqs(128)
	b1 := NewBoundedCH(8, 128, 1.25, 9)
	b2 := NewBoundedCH(8, 128, 1.25, 9)
	for _, r := range reqs {
		c1, c2 := core.NewConnState(1), core.NewConnState(2)
		n1 := b1.ConnOpen(c1, r)
		n2 := b2.ConnOpen(c2, r)
		if n1 != n2 {
			t.Fatalf("target %v: placement differs across instances (%v vs %v)", r.ID, n1, n2)
		}
		b1.ConnClose(c1)
		b2.ConnClose(c2)
		// Re-open on the (now idle) first instance: same node again.
		c3 := core.NewConnState(3)
		if n3 := b1.ConnOpen(c3, r); n3 != n1 {
			t.Fatalf("target %v: placement not sticky (%v then %v)", r.ID, n1, n3)
		}
		b1.ConnClose(c3)
	}
}

// TestHashPolicyInterface covers the trivial core.Policy surface and the
// constructor clamps.
func TestHashPolicyInterface(t *testing.T) {
	p := NewP2C(1, 1)
	b := NewBoundedCH(2, 0, 0.5, 1) // clamped to replicas=1, bound=1
	if p.Name() != "P2C" || b.Name() != "boundedCH" {
		t.Errorf("names %q, %q", p.Name(), b.Name())
	}
	c := core.NewConnState(1)
	if n := p.ConnOpen(c, internedReqs(1)[0]); n != 0 {
		t.Errorf("single-node p2c assigned %v", n)
	}
	p.BatchDone(c)
	p.ReportDiskQueue(0, 3)
	p.ConnClose(c)
	p.ConnClose(c) // second close is a no-op
	c2 := core.NewConnState(2)
	b.ConnOpen(c2, internedReqs(1)[0])
	b.BatchDone(c2)
	b.ReportDiskQueue(0, 3)
	b.ConnClose(c2)
	if p.Loads().Total() != 0 || b.Loads().Total() != 0 {
		t.Error("load leaked")
	}
}

// TestBoundedCHSpreadsTargets checks the ring actually distributes: 512
// distinct targets under no load pressure should touch every node of a
// small cluster.
func TestBoundedCHSpreadsTargets(t *testing.T) {
	const nodes = 4
	b := NewBoundedCH(nodes, 128, 1.25, 1)
	seen := make(map[core.NodeID]int)
	for _, r := range internedReqs(512) {
		c := core.NewConnState(1)
		seen[b.ConnOpen(c, r)]++
		b.ConnClose(c)
	}
	for n := 0; n < nodes; n++ {
		if seen[core.NodeID(n)] == 0 {
			t.Errorf("node %d never chosen across 512 targets", n)
		}
	}
}
