package policy

import (
	"phttp/internal/cache"
	"phttp/internal/core"
)

// LARD is the locality-aware request distribution strategy, formulated (as
// in the paper) through the three cost metrics: a request is sent to the
// node minimizing cost_balancing + cost_locality + cost_replacement, and the
// target→node mapping is updated to record where the target will now be
// cached.
//
// LARD distributes at connection granularity: every request of a persistent
// connection is served by the handling node chosen from the connection's
// first request. Running it on an HTTP/1.0 workload gives the paper's
// "simple-LARD" curves; on a P-HTTP workload it gives "simple-LARD-PHTTP".
//
// Policies identify targets by interned ID (core.TargetID): drivers intern
// at the edge (the trace loader for the simulator, the dispatch engine for
// the prototype), so the per-request path here never hashes a target
// string. Requests reaching a policy must carry a non-zero ID.
type LARD struct {
	params  Params
	loads   *core.LoadTracker
	mapping *cache.Mapping
	all     []core.NodeID // precomputed 0..n-1, read-only
	mem     memberSet

	// DownColdStart controls what NodeDown does with the mapping
	// entries pointing at the dead node: true (the default, matching a
	// crashed back-end restarting with an empty cache) drops them so
	// the dispatcher stops believing the node holds anything; false
	// keeps them for a warm rejoin (a drained node that kept its
	// cache). Set before traffic.
	DownColdStart bool
}

var (
	_ core.Policy           = (*LARD)(nil)
	_ core.MembershipPolicy = (*LARD)(nil)
)

// NewLARD returns a basic LARD policy over n nodes whose mapping model
// assumes each node caches about cacheBytes of content.
func NewLARD(n int, cacheBytes int64, params Params) *LARD {
	l := &LARD{
		params:        params,
		loads:         core.NewLoadTracker(n),
		mapping:       cache.NewMapping(n, cacheBytes),
		all:           allNodes(n),
		DownColdStart: true,
	}
	l.mem.init(n)
	return l
}

// NodeUp, NodeDown and NodeDraining implement core.MembershipPolicy:
// ineligible nodes disappear from the cost minimization, and a Down
// node's mapping entries are invalidated when DownColdStart is set (the
// interner references they held are released with them).
func (l *LARD) NodeUp(n core.NodeID)       { l.mem.setEligible(n, true) }
func (l *LARD) NodeDraining(n core.NodeID) { l.mem.setEligible(n, false) }
func (l *LARD) NodeDown(n core.NodeID) {
	l.mem.setEligible(n, false)
	if l.DownColdStart {
		l.mapping.DropNode(n)
	}
}

// Name implements core.Policy.
func (l *LARD) Name() string { return "LARD" }

// Mapping exposes the target→node mapping table (tests, metrics).
func (l *LARD) Mapping() *cache.Mapping { return l.mapping }

// pick returns the node with the minimum aggregate cost for target among
// candidates, breaking ties toward lower load and then lower ID. If every
// candidate is overloaded (infinite cost), the least-loaded candidate is
// returned: the connection has to go somewhere.
//
// mem, when non-nil and not all-up, removes ineligible (Draining/Down)
// nodes from consideration; if that removes every candidate, the pick
// degrades to the unfiltered decision — an existing connection on a
// draining node keeps being served there rather than going nowhere.
//
//phttp:hotpath
func pick(p Params, loads *core.LoadTracker, mapping *cache.Mapping, id core.TargetID, candidates []core.NodeID, mem *memberSet) core.NodeID {
	if mem != nil {
		mem = mem.active()
	}
	if n := pickAmong(p, loads, mapping, id, candidates, mem); n != core.NoNode {
		return n
	}
	return pickAmong(p, loads, mapping, id, candidates, nil)
}

//phttp:hotpath
func pickAmong(p Params, loads *core.LoadTracker, mapping *cache.Mapping, id core.TargetID, candidates []core.NodeID, mem *memberSet) core.NodeID {
	best := core.NoNode
	bestCost := 0.0
	for _, n := range candidates {
		if mem != nil && !mem.eligible(n) {
			continue
		}
		cost := p.Aggregate(loads.Load(n), mapping.IsMapped(id, n))
		if best == core.NoNode || cost < bestCost ||
			(cost == bestCost && loads.Load(n) < loads.Load(best)) {
			best, bestCost = n, cost
		}
	}
	if best != core.NoNode && bestCost == Infinite {
		// Everybody overloaded: degrade to pure load balancing.
		return mem.leastEligible(loads, candidates)
	}
	return best
}

func allNodes(n int) []core.NodeID {
	out := make([]core.NodeID, n)
	for i := range out {
		out[i] = core.NodeID(i)
	}
	return out
}

// ConnOpen chooses the handling node by minimum aggregate cost over all
// nodes and records that the first target will be cached there.
//
//phttp:hotpath
func (l *LARD) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	n := pick(l.params, l.loads, l.mapping, first.ID, l.all, &l.mem)
	c.Handling = n
	l.loads.AddConn(n)
	l.mapping.Map(first.ID, first.Size, n)
	return n
}

// AssignBatch sends every request to the handling node (connection
// granularity; the single handoff mechanism permits nothing else). The
// returned slice is the connection's reusable buffer: valid until the next
// AssignBatch on the same connection.
func (l *LARD) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	out := c.AssignBuf(len(batch))
	for i := range batch {
		out[i] = core.Assignment{Node: c.Handling, CacheLocally: true}
		c.Requests++
	}
	c.Batches++
	return out
}

// BatchDone is a no-op for basic LARD.
func (l *LARD) BatchDone(*core.ConnState) {}

// ConnClose releases the connection's load unit.
func (l *LARD) ConnClose(c *core.ConnState) {
	if c.Handling != core.NoNode {
		l.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}

// ReportDiskQueue is ignored by basic LARD.
func (l *LARD) ReportDiskQueue(core.NodeID, int) {}

// Loads implements core.Policy.
func (l *LARD) Loads() *core.LoadTracker { return l.loads }
