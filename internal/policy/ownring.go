package policy

import (
	"sort"

	"phttp/internal/core"
)

// OwnerRing partitions the target space across the front-ends of a
// scale-out tier: the same splitmix64 consistent-hashing ring BoundedCH
// walks over back-ends, reused with front-end indices as the ring members.
// dstate's sharded store asks it which front-end owns a target's mapping
// shard; because the construction is consistent hashing, growing the tier
// by one front-end moves only ~1/N of the target space.
//
// The ring is immutable after construction, so concurrent owner lookups
// need no lock.
type OwnerRing struct {
	ring      []ringPoint // sorted by hash; node field holds the FE index
	seed      uint64
	frontends int
}

// OwnerRingReplicas is the default number of virtual points per front-end:
// enough that the largest shard stays within a few percent of 1/N for the
// small tiers (2–16 front-ends) this repo targets.
const OwnerRingReplicas = 64

// ownerQueryTag domain-separates target lookups from ring-point
// placement. Both are splitmix64 over seed-XORed small integers; without
// the tag, a target whose id is below the replica count hashes to exactly
// front-end 0's virtual point #id (query input id^seed == point input
// seed^(0<<32)^r at r == id), so FE0 would own every small target ID —
// and interner IDs are small sequential integers. The tag's high bits can
// never appear in a point input (fe<<32 ^ r stays below 2^40 for real
// tiers), so the two input spaces are disjoint.
const ownerQueryTag uint64 = 0xd1b54a32d192ed03

// NewOwnerRing returns a shard-ownership ring over the given number of
// front-ends. replicas <= 0 selects OwnerRingReplicas.
func NewOwnerRing(frontends, replicas int, seed uint64) *OwnerRing {
	if frontends < 1 {
		frontends = 1
	}
	if replicas <= 0 {
		replicas = OwnerRingReplicas
	}
	o := &OwnerRing{
		ring:      make([]ringPoint, 0, frontends*replicas),
		seed:      seed,
		frontends: frontends,
	}
	for fe := 0; fe < frontends; fe++ {
		for r := 0; r < replicas; r++ {
			h := splitmix64(seed ^ uint64(fe)<<32 ^ uint64(r))
			o.ring = append(o.ring, ringPoint{hash: h, node: core.NodeID(fe)})
		}
	}
	sort.Slice(o.ring, func(i, j int) bool {
		if o.ring[i].hash != o.ring[j].hash {
			return o.ring[i].hash < o.ring[j].hash
		}
		return o.ring[i].node < o.ring[j].node
	})
	return o
}

// Frontends returns the number of front-ends the ring partitions over.
func (o *OwnerRing) Frontends() int { return o.frontends }

// Owner returns the index of the front-end owning target id's shard: the
// first ring point clockwise from the target's hash position, exactly
// BoundedCH's walk with the capacity check removed (ownership is about
// state placement, not load, so every point accepts).
//
//phttp:hotpath
func (o *OwnerRing) Owner(id core.TargetID) int {
	if o.frontends == 1 {
		return 0
	}
	h := splitmix64(uint64(uint32(id)) ^ o.seed ^ ownerQueryTag)
	// Manual binary search (sort.Search's closure would allocate its
	// environment on this annotated hot path).
	lo, hi := 0, len(o.ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.ring[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(o.ring) {
		lo = 0
	}
	return int(o.ring[lo].node)
}
