package policy

import (
	"fmt"
	"sync/atomic"

	"phttp/internal/cache"
	"phttp/internal/core"
)

// ExtLARD is the extended LARD policy of Section 4.2, which distributes
// HTTP/1.1 requests efficiently in combination with a per-request-capable
// mechanism. Its behaviour depends on the mechanism it drives:
//
//   - BEForwarding: the first request chooses the handling node by basic
//     LARD. Each subsequent request is served by the handling node if the
//     target is cached there or its disk utilization is low; otherwise the
//     three cost metrics are evaluated over the handling node and the nodes
//     currently caching the target, and the winner serves it (laterally, if
//     remote). Remote nodes are charged 1/N of a load unit per pipelined
//     batch of N. Content fetched on a miss is cached locally only when the
//     handling node's disk utilization is low (the caching heuristic).
//
//   - MultipleHandoff: the same decision procedure as BE forwarding (the
//     mechanisms trade a per-byte forwarding cost for a per-migration
//     handoff cost; the policy question — serve locally or move the request
//     to a node caching the target — is identical), except that a remote
//     win migrates the connection instead of fetching laterally, and the
//     new node caches the target.
//
//   - ZeroCostHandoff / RelayFrontEnd: these mechanisms place no restriction
//     on the policy and reassignment is free, so each request is assigned by
//     the basic LARD cost metrics over all nodes, preserving full locality.
//
//   - SingleHandoff: degenerates to basic LARD (every request sticks to the
//     handling node); provided for completeness and property tests.
//
// On an HTTP/1.0 workload every connection carries one request, so ExtLARD
// is equivalent to LARD, as the paper notes.
//
// ExtLARD is safe for concurrent dispatch: the cost computation reads the
// atomic load tracker and the hash-sharded mapping without any policy-wide
// critical section, disk-queue reports land in atomic slots, and the
// decision counters are atomic. Calls for a single connection must be
// serialized by the caller (the dispatch engine's contract); racing
// decisions across connections see slightly stale load/mapping state, which
// is the paper's front-end exactly.
type ExtLARD struct {
	params  Params
	mech    core.Mechanism
	loads   *core.LoadTracker
	mapping *cache.Mapping
	all     []core.NodeID // precomputed 0..n-1, read-only
	diskQ   []atomic.Int64
	mem     memberSet

	// DownColdStart: as for LARD — NodeDown drops the dead node's
	// mapping entries when set (the default). Set before traffic.
	DownColdStart bool

	// stats
	localServes   atomic.Int64
	remoteServes  atomic.Int64
	migrations    atomic.Int64
	cacheBypasses atomic.Int64
}

var (
	_ core.Policy           = (*ExtLARD)(nil)
	_ core.MembershipPolicy = (*ExtLARD)(nil)
)

// NewExtLARD returns an extended LARD policy over n nodes driving the given
// mechanism.
func NewExtLARD(n int, cacheBytes int64, params Params, mech core.Mechanism) *ExtLARD {
	e := &ExtLARD{
		params:        params,
		mech:          mech,
		loads:         core.NewLoadTracker(n),
		mapping:       cache.NewMapping(n, cacheBytes),
		all:           allNodes(n),
		diskQ:         make([]atomic.Int64, n),
		DownColdStart: true,
	}
	e.mem.init(n)
	return e
}

// NodeUp, NodeDown and NodeDraining implement core.MembershipPolicy.
// Ineligible nodes drop out of every cost minimization — for the
// zero-cost-handoff and relay mechanisms each per-request decision
// naturally migrates traffic off a draining node; for BE forwarding and
// multiple handoff a connection stuck on a draining handling node keeps
// being served there (no new connections arrive) until it closes.
func (e *ExtLARD) NodeUp(n core.NodeID)       { e.mem.setEligible(n, true) }
func (e *ExtLARD) NodeDraining(n core.NodeID) { e.mem.setEligible(n, false) }
func (e *ExtLARD) NodeDown(n core.NodeID) {
	e.mem.setEligible(n, false)
	if e.DownColdStart {
		e.mapping.DropNode(n)
	}
}

// Name implements core.Policy.
func (e *ExtLARD) Name() string { return "extLARD" }

// Mechanism returns the mechanism this policy instance drives.
func (e *ExtLARD) Mechanism() core.Mechanism { return e.mech }

// Mapping exposes the target→node mapping table.
func (e *ExtLARD) Mapping() *cache.Mapping { return e.mapping }

// Stats returns (local serves, remote serves, migrations, cache bypasses)
// accumulated across assignments.
func (e *ExtLARD) Stats() (local, remote, migrations, bypasses int64) {
	return e.localServes.Load(), e.remoteServes.Load(), e.migrations.Load(), e.cacheBypasses.Load()
}

// diskLow reports whether node n's disk utilization is low per the paper's
// heuristic (fewer than DiskQueueLow queued disk events).
func (e *ExtLARD) diskLow(n core.NodeID) bool {
	return int(e.diskQ[n].Load()) < e.params.DiskQueueLow
}

// ConnOpen chooses the handling node with the basic LARD strategy.
//
//phttp:hotpath
func (e *ExtLARD) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	n := pick(e.params, e.loads, e.mapping, first.ID, e.all, &e.mem)
	c.Handling = n
	e.loads.AddConn(n)
	e.mapping.Map(first.ID, first.Size, n)
	return n
}

// AssignBatch implements core.Policy. The first request ever assigned on the
// connection always lands on the handling node (it determined the handoff);
// subsequent requests follow the mechanism-specific logic above. The
// returned slice is the connection's reusable buffer: valid until the next
// AssignBatch on the same connection.
//
//phttp:hotpath
func (e *ExtLARD) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	if c.Handling == core.NoNode {
		panic("policy: AssignBatch before ConnOpen")
	}
	e.loads.ClearBatch(c)
	out := c.AssignBuf(len(batch))
	// Remote serving nodes of this batch collect in the connection's
	// scratch buffer (calls for one connection are serialized, so reuse is
	// safe); the buffer is handed back below so its capacity persists.
	remote := c.Scratch[:0]
	for i, r := range batch {
		var a core.Assignment
		if c.Requests == 0 {
			// The handoff decision already placed this request.
			a = core.Assignment{Node: c.Handling, CacheLocally: true}
			e.localServes.Add(1)
		} else {
			a = e.assignNext(c, r)
		}
		out[i] = a
		if a.Forward {
			remote = append(remote, a.Node)
		}
		c.Requests++
	}
	c.Batches++
	// Charge each remote serving node 1/N of a unit for the batch.
	e.loads.ChargeBatch(c, c.Handling, remote, len(batch))
	c.Scratch = remote[:0]
	return out
}

// assignNext applies the Section 4.2 rules to one subsequent request.
//
//phttp:hotpath
func (e *ExtLARD) assignNext(c *core.ConnState, r core.Request) core.Assignment {
	h := c.Handling
	switch e.mech {
	case core.SingleHandoff:
		e.localServes.Add(1)
		return core.Assignment{Node: h, CacheLocally: true}

	case core.BEForwarding, core.MultipleHandoff:
		mappedHere := e.mapping.IsMapped(r.ID, h)
		if mappedHere || e.diskLow(h) {
			// Serve locally: either the target is already cached here,
			// or the local disk is idle enough that reading it (and
			// thereby caching it — replication) beats the forwarding
			// overhead.
			e.localServes.Add(1)
			e.mapping.Map(r.ID, r.Size, h)
			return core.Assignment{Node: h, CacheLocally: true}
		}
		// Candidates: the handling node plus any node caching the target.
		// The stack buffer covers any realistic cluster; pick only reads
		// the slice, so it stays off the heap.
		var candBuf [33]core.NodeID
		candidates := append(candBuf[:0], h)
		candidates = e.mapping.AppendNodesFor(candidates, r.ID)
		win := pick(e.params, e.loads, e.mapping, r.ID, candidates, &e.mem)
		if win == h {
			// No better holder: fetch from the local disk despite its
			// high utilization. The unified buffer cache holds what the
			// disk read regardless of any policy preference, and the
			// mapping is updated on every fetch from a back-end, so the
			// dispatcher records the target as cached here.
			e.localServes.Add(1)
			e.mapping.Map(r.ID, r.Size, h)
			return core.Assignment{Node: h, CacheLocally: true}
		}
		if e.mech == core.MultipleHandoff {
			// Migrate the connection to the node caching the target.
			e.migrations.Add(1)
			e.loads.MoveConn(h, win)
			c.Handling = win
			e.mapping.Touch(r.ID, win)
			return core.Assignment{Node: win, Migrate: true, From: h, CacheLocally: true}
		}
		// Lateral fetch. NFS client caching is disabled in the paper's
		// prototype, so forwarded content is never cached at the
		// handling node.
		e.remoteServes.Add(1)
		e.mapping.Touch(r.ID, win)
		return core.Assignment{Node: win, Forward: true, CacheLocally: false}

	case core.ZeroCostHandoff, core.RelayFrontEnd:
		// Per-request basic LARD over all nodes.
		win := pick(e.params, e.loads, e.mapping, r.ID, e.all, &e.mem)
		e.mapping.Map(r.ID, r.Size, win)
		if win == h {
			e.localServes.Add(1)
			return core.Assignment{Node: h, CacheLocally: true}
		}
		e.migrations.Add(1)
		e.loads.MoveConn(h, win)
		c.Handling = win
		return core.Assignment{Node: win, Migrate: true, From: h, CacheLocally: true}

	default:
		panicUnknownMechanism(e.mech)
		return core.Assignment{}
	}
}

// panicUnknownMechanism is the cold formatting helper for assignNext's
// invariant panic, kept out of the annotated hot path so fmt stays off it.
func panicUnknownMechanism(m core.Mechanism) {
	panic(fmt.Sprintf("policy: unknown mechanism %v", m))
}

// BatchDone releases the fractional loads when the connection goes idle.
func (e *ExtLARD) BatchDone(c *core.ConnState) { e.loads.ClearBatch(c) }

// ConnClose releases the connection unit and any fractional loads.
func (e *ExtLARD) ConnClose(c *core.ConnState) {
	e.loads.ClearBatch(c)
	if c.Handling != core.NoNode {
		e.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}

// ReportDiskQueue records node n's queued disk events.
func (e *ExtLARD) ReportDiskQueue(n core.NodeID, queued int) {
	e.diskQ[n].Store(int64(queued))
}

// Loads implements core.Policy.
func (e *ExtLARD) Loads() *core.LoadTracker { return e.loads }
