package policy

import (
	"fmt"
	"testing"

	"phttp/internal/core"
)

// Membership (churn) behavior: every policy must stop placing new work
// on Down/Draining nodes, resume on NodeUp, and — for the LARD family —
// honor the cold-start/warm-up mapping option.

func openConn(t *testing.T, p core.Policy, id core.ConnID, r core.Request) (*core.ConnState, core.NodeID) {
	t.Helper()
	c := core.NewConnState(id)
	n := p.ConnOpen(c, r)
	if n == core.NoNode {
		t.Fatalf("%s: ConnOpen returned NoNode", p.Name())
	}
	return c, n
}

func TestLARDMembership(t *testing.T) {
	l := NewLARD(3, testCache, DefaultParams())
	r := req("/churn/a", 100)
	_, n0 := openConn(t, l, 1, r)

	// The target is mapped on n0; a Down n0 with cold start must lose
	// both the mapping and all new placements.
	if !l.Mapping().IsMapped(r.ID, n0) {
		t.Fatalf("target not mapped on handling node %d", n0)
	}
	l.NodeDown(n0)
	if l.Mapping().MappedTargets(n0) != 0 {
		t.Fatalf("cold-start down kept %d mappings on node %d", l.Mapping().MappedTargets(n0), n0)
	}
	for i := 0; i < 10; i++ {
		_, n := openConn(t, l, core.ConnID(10+i), req(core.Target(fmt.Sprintf("/churn/b%d", i)), 50))
		if n == n0 {
			t.Fatalf("new connection placed on down node %d", n0)
		}
	}

	// Rejoin: the node is eligible again.
	l.NodeUp(n0)
	seen := false
	for i := 0; i < 32 && !seen; i++ {
		_, n := openConn(t, l, core.ConnID(100+i), req(core.Target(fmt.Sprintf("/churn/up%d", i)), 10))
		seen = n == n0
	}
	if !seen {
		t.Fatalf("rejoined node %d never receives connections", n0)
	}
}

func TestLARDWarmRejoinKeepsMapping(t *testing.T) {
	l := NewLARD(2, testCache, DefaultParams())
	l.DownColdStart = false
	r := req("/churn/warm", 100)
	_, n0 := openConn(t, l, 1, r)
	l.NodeDown(n0)
	if !l.Mapping().IsMapped(r.ID, n0) {
		t.Fatal("warm-up down dropped the mapping")
	}
	// While down, the mapped-but-ineligible node must not attract the
	// target.
	_, n := openConn(t, l, 2, r)
	if n == n0 {
		t.Fatalf("warm mapping steered connection to down node %d", n0)
	}
	// After rejoin the kept mapping attracts the target again.
	l.NodeUp(n0)
	_, n = openConn(t, l, 3, r)
	if n != n0 {
		t.Fatalf("rejoined warm node %d did not win its mapped target (got %d)", n0, n)
	}
}

func TestLARDDrainingKeepsMapping(t *testing.T) {
	l := NewLARD(2, testCache, DefaultParams())
	r := req("/churn/drain", 100)
	_, n0 := openConn(t, l, 1, r)
	l.NodeDraining(n0)
	if !l.Mapping().IsMapped(r.ID, n0) {
		t.Fatal("draining dropped the mapping")
	}
	_, n := openConn(t, l, 2, r)
	if n == n0 {
		t.Fatalf("new connection placed on draining node %d", n0)
	}
}

func TestLARDAllDownDegrades(t *testing.T) {
	l := NewLARD(2, testCache, DefaultParams())
	l.NodeDown(0)
	l.NodeDown(1)
	// The driver gates admission on HasUp; if a connection slips
	// through anyway the policy must still return some node.
	_, n := openConn(t, l, 1, req("/churn/alldown", 10))
	if n != 0 && n != 1 {
		t.Fatalf("degraded pick returned %d", n)
	}
}

func TestLARDRMembership(t *testing.T) {
	l := NewLARDR(3, testCache, DefaultParams())
	r := req("/churn/lardr", 100)
	_, n0 := openConn(t, l, 1, r)
	if !l.Mapping().IsMapped(r.ID, n0) {
		t.Fatalf("target not mapped on %d", n0)
	}
	// Warm-up mode: mapping survives Down but stops attracting work.
	l.DownColdStart = false
	l.NodeDown(n0)
	if !l.Mapping().IsMapped(r.ID, n0) {
		t.Fatal("warm-up down dropped the server set entry")
	}
	for i := 0; i < 10; i++ {
		_, n := openConn(t, l, core.ConnID(10+i), r)
		if n == n0 {
			t.Fatalf("server set steered connection to down node %d", n0)
		}
	}
	// Cold mode drops the entries.
	l.DownColdStart = true
	l.NodeDown(core.NodeID((int(n0) + 1) % 3))
	if l.Mapping().MappedTargets(core.NodeID((int(n0)+1)%3)) != 0 {
		t.Fatal("cold-start down kept mappings")
	}
}

func TestWRRMembership(t *testing.T) {
	w := NewWRR(3)
	w.NodeDown(1)
	for i := 0; i < 12; i++ {
		_, n := openConn(t, w, core.ConnID(i+1), req("/churn/wrr", 10))
		if n == 1 {
			t.Fatal("WRR placed a connection on the down node")
		}
	}
	w.NodeUp(1)
	counts := [3]int{}
	for i := 0; i < 12; i++ {
		_, n := openConn(t, w, core.ConnID(100+i), req("/churn/wrr2", 10))
		counts[n]++
	}
	if counts[1] == 0 {
		t.Fatalf("rejoined node got no connections: %v", counts)
	}
	// All nodes out: WRR degrades to the unfiltered choice.
	w.NodeDown(0)
	w.NodeDown(1)
	w.NodeDraining(2)
	if _, n := openConn(t, w, 999, req("/churn/wrr3", 10)); n < 0 || n > 2 {
		t.Fatalf("degraded WRR pick: %d", n)
	}
}

func TestP2CMembership(t *testing.T) {
	p := NewP2C(4, 1)
	r := req("/churn/p2c", 10)
	a, b := p.candidates(r.ID)
	// One candidate down: the other must win regardless of load.
	p.NodeDown(a)
	for i := 0; i < 5; i++ {
		_, n := openConn(t, p, core.ConnID(i+1), r)
		if n != b {
			t.Fatalf("with candidate %d down, got node %d, want %d", a, n, b)
		}
	}
	// Both candidates down: least-loaded eligible node.
	p.NodeDown(b)
	_, n := openConn(t, p, 100, r)
	if n == a || n == b {
		t.Fatalf("both candidates down, still picked candidate %d", n)
	}
	// Everything down: degrade to the hash choice rather than NoNode.
	for i := 0; i < 4; i++ {
		p.NodeDown(core.NodeID(i))
	}
	if _, n := openConn(t, p, 101, r); n < 0 || n > 3 {
		t.Fatalf("degraded P2C pick: %d", n)
	}
}

func TestBoundedCHMembership(t *testing.T) {
	b := NewBoundedCH(4, 64, 1.25, 1)
	r := req("/churn/bch", 10)
	_, home := openConn(t, b, 1, r)
	// The home node leaves; its arcs shift to other nodes.
	b.NodeDraining(home)
	for i := 0; i < 8; i++ {
		_, n := openConn(t, b, core.ConnID(10+i), r)
		if n == home {
			t.Fatalf("ring pick landed on draining node %d", home)
		}
	}
	// It rejoins and its arcs come back: the same target returns home
	// (modulo the bound, generous here).
	b.NodeUp(home)
	_, n := openConn(t, b, 100, r)
	if n != home {
		t.Fatalf("rejoined node %d did not regain its arc (got %d)", home, n)
	}
	// All nodes out: the ring walk finds nothing, the fallback still
	// returns a node.
	for i := 0; i < 4; i++ {
		b.NodeDown(core.NodeID(i))
	}
	if _, n := openConn(t, b, 101, r); n < 0 || n > 3 {
		t.Fatalf("degraded boundedCH pick: %d", n)
	}
}
