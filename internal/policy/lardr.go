package policy

import (
	"sync"

	"phttp/internal/cache"
	"phttp/internal/core"
)

// LARDR is LARD with replication, the companion strategy from the original
// LARD paper (Pai et al., ASPLOS '98) that this paper builds on: instead of
// mapping each target to exactly one back-end, LARD/R maintains a *server
// set* per target. Requests go to the least-loaded member; when even that
// member is loaded past the replication threshold the set grows by the
// least-loaded outside node (the target is popular enough to be worth
// caching twice), and a set that has not grown for a while shrinks again so
// cold targets do not stay replicated forever.
//
// The original formulates growth/shrink with wall-clock timers; to keep the
// policy deterministic for simulation we count assignments instead: a set
// may grow at most once every GrowInterval assignments of that target and
// shrinks after ShrinkInterval assignments without growth. This preserves
// the behaviour (hot targets replicate quickly, replicas decay) without a
// clock.
//
// LARD/R distributes at connection granularity like basic LARD; it is
// provided as the natural baseline extension and for the replication
// ablation, not as one of the paper's figure curves.
type LARDR struct {
	params  Params
	loads   *core.LoadTracker
	mapping *cache.Mapping
	all     []core.NodeID

	mem memberSet

	// GrowInterval and ShrinkInterval are assignment counts (see above).
	GrowInterval   int
	ShrinkInterval int

	// DownColdStart: as for LARD — NodeDown drops the dead node's
	// server-set memberships when set (the default). Set before
	// traffic.
	DownColdStart bool

	// mu guards the replication state: the server-set grow/shrink decision
	// is a read-modify-write over per-target counters and the mapping, so
	// concurrent ConnOpens serialize here. The lock covers only connection
	// establishment; the per-request path (AssignBatch) touches nothing
	// shared beyond the atomic load tracker.
	mu sync.Mutex
	// assigns[id] counts assignments of target id since its last growth.
	// Indexed by dense interned TargetID, it replaces the old string-keyed
	// state map: bounded by the interned population, no pruning needed,
	// and the per-connection path allocates nothing once grown. A target
	// whose mapping aged out entirely re-enters through the empty-set path
	// below, which resets its counter — exactly the old semantics.
	assigns []int32
	setBuf  []core.NodeID // scratch for server sets, guarded by mu
}

var (
	_ core.Policy           = (*LARDR)(nil)
	_ core.MembershipPolicy = (*LARDR)(nil)
)

// NewLARDR returns a LARD/R policy over n nodes.
func NewLARDR(n int, cacheBytes int64, params Params) *LARDR {
	l := &LARDR{
		params:         params,
		loads:          core.NewLoadTracker(n),
		mapping:        cache.NewMapping(n, cacheBytes),
		all:            allNodes(n),
		GrowInterval:   20,
		ShrinkInterval: 200,
		DownColdStart:  true,
		// Server sets never exceed the node count, so a cap-n scratch
		// buffer makes every AppendNodesFor below allocation-free.
		setBuf: make([]core.NodeID, 0, n),
	}
	l.mem.init(n)
	return l
}

// NodeUp, NodeDown and NodeDraining implement core.MembershipPolicy.
// Server sets shrink to their eligible members at assignment time, so a
// kept (warm) mapping on a Down node simply stops attracting traffic
// until the node rejoins.
func (l *LARDR) NodeUp(n core.NodeID)       { l.mem.setEligible(n, true) }
func (l *LARDR) NodeDraining(n core.NodeID) { l.mem.setEligible(n, false) }
func (l *LARDR) NodeDown(n core.NodeID) {
	l.mem.setEligible(n, false)
	if l.DownColdStart {
		l.mapping.DropNode(n)
	}
}

// Name implements core.Policy.
func (l *LARDR) Name() string { return "LARD/R" }

// Mapping exposes the target→node server sets.
func (l *LARDR) Mapping() *cache.Mapping { return l.mapping }

// ConnOpen assigns the handling node from the target's server set, growing
// or shrinking the set per the replication rules.
//
//phttp:hotpath
func (l *LARDR) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	n := l.assign(first)
	c.Handling = n
	l.loads.AddConn(n)
	return n
}

// counter returns a pointer to id's assignment counter, growing the dense
// index as new targets appear. Callers hold l.mu.
func (l *LARDR) counter(id core.TargetID) *int32 {
	if int(id) >= len(l.assigns) {
		grown := make([]int32, int(id)+1+len(l.assigns)/2)
		copy(grown, l.assigns)
		l.assigns = grown
	}
	return &l.assigns[id]
}

func (l *LARDR) assign(r core.Request) core.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	mem := l.mem.active()
	set := l.filterEligible(l.mapping.AppendNodesFor(l.setBuf[:0], r.ID), mem)
	if len(set) == 0 {
		// Unmapped (or mapped only on ineligible nodes): send to the
		// least-loaded eligible node and map it. With zero eligible
		// nodes — the driver gates dispatch on that — degrade to the
		// unfiltered choice rather than returning NoNode.
		n := mem.leastEligible(l.loads, l.all)
		if n == core.NoNode {
			n = l.leastOf(l.all)
		}
		l.mapping.Map(r.ID, r.Size, n)
		*l.counter(r.ID) = 0
		return n
	}
	st := l.counter(r.ID)
	*st++

	n := l.leastOf(set)
	switch {
	case l.loads.Load(n) >= l.params.LOverload && len(set) < l.loads.Nodes() &&
		int(*st) >= l.GrowInterval:
		// Even the lightest replica is overloaded: replicate.
		grown := l.leastExcluding(set, mem)
		if grown == core.NoNode {
			// Every node outside the set is ineligible; nothing to
			// replicate onto.
			break
		}
		l.mapping.Map(r.ID, r.Size, grown)
		*st = 0
		return grown
	case len(set) > 1 && int(*st) >= l.ShrinkInterval:
		// Stable for a long time: decay one replica (the most loaded).
		drop := set[0]
		for _, m := range set[1:] {
			if l.loads.Load(m) > l.loads.Load(drop) {
				drop = m
			}
		}
		l.mapping.Unmap(r.ID, drop)
		*st = 0
		if drop == n {
			set = l.filterEligible(l.mapping.AppendNodesFor(set[:0], r.ID), mem)
			n = l.leastOf(set)
		}
	}
	l.mapping.Touch(r.ID, n)
	return n
}

func (l *LARDR) leastOf(set []core.NodeID) core.NodeID {
	best := set[0]
	for _, n := range set[1:] {
		if l.loads.Load(n) < l.loads.Load(best) {
			best = n
		}
	}
	return best
}

// leastExcluding returns the least-loaded eligible node outside set (or
// NoNode when none exists). Server sets are at most a handful of nodes,
// so the membership test is a linear scan — no per-call map.
func (l *LARDR) leastExcluding(set []core.NodeID, mem *memberSet) core.NodeID {
	best := core.NoNode
	for i := 0; i < l.loads.Nodes(); i++ {
		n := core.NodeID(i)
		if mem != nil && !mem.eligible(n) {
			continue
		}
		member := false
		for _, m := range set {
			if m == n {
				member = true
				break
			}
		}
		if member {
			continue
		}
		if best == core.NoNode || l.loads.Load(n) < l.loads.Load(best) {
			best = n
		}
	}
	return best
}

// filterEligible removes ineligible nodes from set in place. A nil mem
// (every node Up — the steady state) returns set untouched.
func (l *LARDR) filterEligible(set []core.NodeID, mem *memberSet) []core.NodeID {
	if mem == nil {
		return set
	}
	kept := set[:0]
	for _, n := range set {
		if mem.eligible(n) {
			kept = append(kept, n)
		}
	}
	return kept
}

// CompactTargets trims the dense per-target assignment counters to the
// interner's high water as of the caller's last compaction. Under an
// evictable interner the dispatch engine calls this from its maintenance
// hook after compacting the interner, so the counter table shrinks with
// the ID space after churn instead of staying sized for the all-time peak.
// Counter values are decision cadence, not correctness state, so the two
// lossy cases are both benign: a stale counter on a recycled ID inside the
// retained range is never read (the recycled target has no mapping entries
// — the refcount protocol guarantees it — so it re-enters through the
// empty-set path above, which resets its counter), and a counter for an ID
// minted concurrently above the bound is dropped and regrows zeroed (the
// mutex serializes the truncation against assign, so the table itself is
// never torn), at worst delaying that one target's next grow/shrink
// decision by one interval.
func (l *LARDR) CompactTargets(highWater core.TargetID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	want := int(highWater) + 1
	if want >= len(l.assigns) {
		return
	}
	if cap(l.assigns) > 2*want+64 {
		l.assigns = append(make([]int32, 0, want), l.assigns[:want]...)
	} else {
		l.assigns = l.assigns[:want]
	}
}

// AssignBatch sends every request to the handling node (connection
// granularity, as with basic LARD). The returned slice is the connection's
// reusable buffer: valid until the next AssignBatch on the same connection.
//
//phttp:hotpath
func (l *LARDR) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	out := c.AssignBuf(len(batch))
	for i := range batch {
		out[i] = core.Assignment{Node: c.Handling, CacheLocally: true}
		c.Requests++
	}
	c.Batches++
	return out
}

// BatchDone is a no-op for LARD/R.
func (l *LARDR) BatchDone(*core.ConnState) {}

// ConnClose releases the connection's load unit.
func (l *LARDR) ConnClose(c *core.ConnState) {
	if c.Handling != core.NoNode {
		l.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}

// ReportDiskQueue is ignored by LARD/R.
func (l *LARDR) ReportDiskQueue(core.NodeID, int) {}

// Loads implements core.Policy.
func (l *LARDR) Loads() *core.LoadTracker { return l.loads }
