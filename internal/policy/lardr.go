package policy

import (
	"sync"

	"phttp/internal/cache"
	"phttp/internal/core"
)

// LARDR is LARD with replication, the companion strategy from the original
// LARD paper (Pai et al., ASPLOS '98) that this paper builds on: instead of
// mapping each target to exactly one back-end, LARD/R maintains a *server
// set* per target. Requests go to the least-loaded member; when even that
// member is loaded past the replication threshold the set grows by the
// least-loaded outside node (the target is popular enough to be worth
// caching twice), and a set that has not grown for a while shrinks again so
// cold targets do not stay replicated forever.
//
// The original formulates growth/shrink with wall-clock timers; to keep the
// policy deterministic for simulation we count assignments instead: a set
// may grow at most once every GrowInterval assignments of that target and
// shrinks after ShrinkInterval assignments without growth. This preserves
// the behaviour (hot targets replicate quickly, replicas decay) without a
// clock.
//
// LARD/R distributes at connection granularity like basic LARD; it is
// provided as the natural baseline extension and for the replication
// ablation, not as one of the paper's figure curves.
type LARDR struct {
	params  Params
	loads   *core.LoadTracker
	mapping *cache.Mapping

	// GrowInterval and ShrinkInterval are assignment counts (see above).
	GrowInterval   int
	ShrinkInterval int

	// mu guards the replication state: the server-set grow/shrink decision
	// is a read-modify-write over per-target counters and the mapping, so
	// concurrent ConnOpens serialize here. The lock covers only connection
	// establishment; the per-request path (AssignBatch) touches nothing
	// shared beyond the atomic load tracker.
	mu    sync.Mutex
	state map[core.Target]*replState
}

// replState tracks a target's server-set dynamics.
type replState struct {
	assignments int // since last growth
}

var _ core.Policy = (*LARDR)(nil)

// NewLARDR returns a LARD/R policy over n nodes.
func NewLARDR(n int, cacheBytes int64, params Params) *LARDR {
	return &LARDR{
		params:         params,
		loads:          core.NewLoadTracker(n),
		mapping:        cache.NewMapping(n, cacheBytes),
		GrowInterval:   20,
		ShrinkInterval: 200,
		state:          make(map[core.Target]*replState),
	}
}

// Name implements core.Policy.
func (l *LARDR) Name() string { return "LARD/R" }

// Mapping exposes the target→node server sets.
func (l *LARDR) Mapping() *cache.Mapping { return l.mapping }

// ConnOpen assigns the handling node from the target's server set, growing
// or shrinking the set per the replication rules.
func (l *LARDR) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	n := l.assign(first)
	c.Handling = n
	l.loads.AddConn(n)
	return n
}

func (l *LARDR) assign(r core.Request) core.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	set := l.mapping.NodesFor(r.Target)
	if len(set) == 0 {
		// Unmapped: send to the overall least-loaded node and map it.
		n := l.leastOf(allNodes(l.loads.Nodes()))
		l.mapping.Map(r.Target, r.Size, n)
		l.state[r.Target] = &replState{}
		return n
	}
	st := l.state[r.Target]
	if st == nil {
		st = &replState{}
		l.state[r.Target] = st
	}
	st.assignments++
	l.pruneStale()

	n := l.leastOf(set)
	switch {
	case l.loads.Load(n) >= l.params.LOverload && len(set) < l.loads.Nodes() &&
		st.assignments >= l.GrowInterval:
		// Even the lightest replica is overloaded: replicate.
		grown := l.leastExcluding(set)
		l.mapping.Map(r.Target, r.Size, grown)
		st.assignments = 0
		return grown
	case len(set) > 1 && st.assignments >= l.ShrinkInterval:
		// Stable for a long time: decay one replica (the most loaded).
		drop := set[0]
		for _, m := range set[1:] {
			if l.loads.Load(m) > l.loads.Load(drop) {
				drop = m
			}
		}
		l.mapping.Unmap(r.Target, drop)
		st.assignments = 0
		if drop == n {
			n = l.leastOf(l.mapping.NodesFor(r.Target))
		}
	}
	l.mapping.Touch(r.Target, n)
	return n
}

// pruneStale drops replication state for a few targets that have aged out
// of the mapping entirely. Deleting such entries never changes a decision —
// an unmapped target takes the len(set)==0 path, which resets its state —
// but without pruning the map grows one entry per distinct target forever,
// which a long-lived front-end serving an unbounded URL space cannot
// afford. Amortized over assigns (a handful of entries per call, via Go's
// randomized map iteration), the map stays proportional to the mapped
// working set. Callers hold l.mu.
func (l *LARDR) pruneStale() {
	checked := 0
	for t := range l.state {
		if len(l.mapping.NodesFor(t)) == 0 {
			delete(l.state, t)
		}
		if checked++; checked >= 4 {
			break
		}
	}
}

func (l *LARDR) leastOf(set []core.NodeID) core.NodeID {
	best := set[0]
	for _, n := range set[1:] {
		if l.loads.Load(n) < l.loads.Load(best) {
			best = n
		}
	}
	return best
}

func (l *LARDR) leastExcluding(set []core.NodeID) core.NodeID {
	member := make(map[core.NodeID]bool, len(set))
	for _, n := range set {
		member[n] = true
	}
	best := core.NoNode
	for i := 0; i < l.loads.Nodes(); i++ {
		n := core.NodeID(i)
		if member[n] {
			continue
		}
		if best == core.NoNode || l.loads.Load(n) < l.loads.Load(best) {
			best = n
		}
	}
	return best
}

// AssignBatch sends every request to the handling node (connection
// granularity, as with basic LARD).
func (l *LARDR) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	out := make([]core.Assignment, len(batch))
	for i := range batch {
		out[i] = core.Assignment{Node: c.Handling, CacheLocally: true}
		c.Requests++
	}
	c.Batches++
	return out
}

// BatchDone is a no-op for LARD/R.
func (l *LARDR) BatchDone(*core.ConnState) {}

// ConnClose releases the connection's load unit.
func (l *LARDR) ConnClose(c *core.ConnState) {
	if c.Handling != core.NoNode {
		l.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}

// ReportDiskQueue is ignored by LARD/R.
func (l *LARDR) ReportDiskQueue(core.NodeID, int) {}

// Loads implements core.Policy.
func (l *LARDR) Loads() *core.LoadTracker { return l.loads }
