// Package policy implements the request distribution policies of the paper:
// weighted round-robin (WRR), the LARD strategy expressed through the three
// cost metrics of Figure 4, and the extended LARD policy of Section 4.2 for
// HTTP/1.1 persistent connections.
package policy

import "math"

// Params are the LARD-family tuning constants. The paper reports settings
// measured with Apache on FreeBSD; the numerals were lost in the supplied
// OCR, so the defaults follow the equivalence note to the original LARD
// strategy (L_idle = T_low, MissCost tied to T_high-T_low) with the ASPLOS
// '98 values T_low=25, T_high=65.
type Params struct {
	// LIdle is the load below which a node is potentially underutilized:
	// below it, queueing delay is negligible and adding work is free from
	// the balancing metric's point of view.
	LIdle float64
	// LOverload is the load at or above which the delay difference
	// against an idle node becomes unacceptable; the balancing cost is
	// infinite there.
	LOverload float64
	// MissCost is the delay penalty, in load units, of fetching a target
	// that is not cached (the unit of cost is the delay of a request for
	// a cached target at an otherwise unloaded server).
	MissCost float64
	// DiskQueueLow is the queued-disk-events threshold below which the
	// extended LARD policy considers a node's disk utilization "low":
	// subsequent requests are then served locally and fetched content is
	// cached locally.
	DiskQueueLow int
}

// DefaultParams returns the calibrated defaults (see DESIGN.md §6).
func DefaultParams() Params {
	return Params{LIdle: 25, LOverload: 130, MissCost: 40, DiskQueueLow: 2}
}

// Infinite is the cost returned by the balancing metric at or beyond
// LOverload.
const Infinite = math.MaxFloat64

// costBalancing captures the delay a request suffers behind other queued
// requests at a node with the given load (Figure 4).
func (p Params) costBalancing(load float64) float64 {
	switch {
	case load < p.LIdle:
		return 0
	case load >= p.LOverload:
		return Infinite
	default:
		return load - p.LIdle
	}
}

// costLocality captures the delay of the presence or absence of the target
// in the node's cache (Figure 4).
func (p Params) costLocality(mapped bool) float64 {
	if mapped {
		return 0
	}
	return p.MissCost
}

// costReplacement captures the potential future cost of replacing cached
// content to make room for the target (Figure 4): free while the node is
// underutilized or already caches the target.
func (p Params) costReplacement(load float64, mapped bool) float64 {
	if load < p.LIdle || mapped {
		return 0
	}
	return p.MissCost
}

// Aggregate returns the summed cost of sending a request for a target to a
// node with the given load and mapping status. An Infinite component makes
// the aggregate Infinite.
func (p Params) Aggregate(load float64, mapped bool) float64 {
	b := p.costBalancing(load)
	if b == Infinite {
		return Infinite
	}
	return b + p.costLocality(mapped) + p.costReplacement(load, mapped)
}
