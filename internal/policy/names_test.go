package policy

import (
	"testing"

	"phttp/internal/core"
)

// TestPolicyNamesAndNoOpHooks pins the display names the analytic output
// keys on, and exercises the hook methods that are deliberate no-ops for
// the non-extended policies (extLARD's real implementations are covered by
// the dispatch tests).
func TestPolicyNamesAndNoOpHooks(t *testing.T) {
	wrr := NewWRR(4)
	lard := NewLARD(4, testCache, DefaultParams())
	lardr := NewLARDR(4, testCache, DefaultParams())
	ext := NewExtLARD(4, testCache, DefaultParams(), core.BEForwarding)

	names := map[string]string{
		wrr.Name():   "WRR",
		lard.Name():  "LARD",
		lardr.Name(): "LARD/R",
		ext.Name():   "extLARD",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
	if ext.Mechanism() != core.BEForwarding {
		t.Errorf("Mechanism() = %v, want BEForwarding", ext.Mechanism())
	}

	// The no-op hooks must accept any input without state changes.
	conn := &core.ConnState{}
	wrr.BatchDone(conn)
	lard.BatchDone(conn)
	lardr.BatchDone(conn)
	wrr.ReportDiskQueue(0, 3)
	lard.ReportDiskQueue(1, 0)
	lardr.ReportDiskQueue(2, 7)
}
