package policy

import (
	"sync/atomic"

	"phttp/internal/core"
)

// memberSet is the shared membership-eligibility state embedded by every
// policy: one flag per node slot saying whether new work may be placed
// there. The universe is fixed at construction (like every per-node
// array in this package); membership transitions toggle flags, they
// never resize anything.
//
// The design goal is zero cost — and bit-identical decisions — while
// the whole cluster is Up: outCount is checked first with one atomic
// load, and only when some node is Draining/Down do the selection loops
// pay the per-candidate flag check. Flags are atomics because the
// prototype delivers transitions concurrently with dispatch; the
// simulator's single-threaded event loop gets sequential consistency
// for free.
//
// Eligibility is deliberately binary: Draining and Down both mean "no
// new placements". What differs between them is handled by the policies
// themselves (NodeDown may additionally invalidate mapping state;
// NodeDraining never does).
type memberSet struct {
	state    []atomic.Bool // true = ineligible
	outCount atomic.Int32
}

func (m *memberSet) init(n int) { m.state = make([]atomic.Bool, n) }

// setEligible flips node n's flag, keeping outCount exact under
// concurrent calls.
func (m *memberSet) setEligible(n core.NodeID, ok bool) {
	if m.state[n].CompareAndSwap(ok, !ok) {
		if ok {
			m.outCount.Add(-1)
		} else {
			m.outCount.Add(1)
		}
	}
}

// allUp reports whether every node is eligible (the fast path).
func (m *memberSet) allUp() bool { return m.outCount.Load() == 0 }

// eligible reports whether new work may be placed on node n.
func (m *memberSet) eligible(n core.NodeID) bool { return !m.state[n].Load() }

// active returns m when filtering is needed, nil when every node is
// eligible — selection helpers take the result so the all-up path never
// checks per-candidate flags.
func (m *memberSet) active() *memberSet {
	if m.allUp() {
		return nil
	}
	return m
}

// NodeUp, NodeDown and NodeDraining implement core.MembershipPolicy for
// the policies that need nothing beyond eligibility (WRR, P2C,
// BoundedCH embed memberSet anonymously and get them promoted). The
// LARD family overrides NodeDown to also apply its mapping-invalidation
// option.
func (m *memberSet) NodeUp(n core.NodeID)       { m.setEligible(n, true) }
func (m *memberSet) NodeDown(n core.NodeID)     { m.setEligible(n, false) }
func (m *memberSet) NodeDraining(n core.NodeID) { m.setEligible(n, false) }

// leastEligibleAll is leastEligible over the whole node universe,
// without needing a candidate slice (no allocation on fallback paths).
func (m *memberSet) leastEligibleAll(loads *core.LoadTracker) core.NodeID {
	least := core.NoNode
	for i := 0; i < loads.Nodes(); i++ {
		n := core.NodeID(i)
		if m != nil && !m.eligible(n) {
			continue
		}
		if least == core.NoNode || loads.Load(n) < loads.Load(least) {
			least = n
		}
	}
	return least
}

// leastEligible returns the least-loaded eligible node from candidates
// (ties to the first seen), or core.NoNode if none is eligible. A nil
// receiver means no filtering.
func (m *memberSet) leastEligible(loads *core.LoadTracker, candidates []core.NodeID) core.NodeID {
	least := core.NoNode
	for _, n := range candidates {
		if m != nil && !m.eligible(n) {
			continue
		}
		if least == core.NoNode || loads.Load(n) < loads.Load(least) {
			least = n
		}
	}
	return least
}
