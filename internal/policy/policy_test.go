package policy

import (
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

const testCache = 1 << 20

// testInterner gives the direct-call policy tests the interned IDs the
// dispatch engine would normally supply; one shared interner keeps IDs
// consistent across the policies a test compares.
var testInterner = core.NewInterner()

// req builds an interned request the way the dispatch engine hands them to
// policies.
func req(target core.Target, size int64) core.Request {
	return core.Request{Target: target, ID: testInterner.Intern(target), Size: size}
}

// tid is the interned ID of target, for mapping assertions.
func tid(target core.Target) core.TargetID { return testInterner.Intern(target) }

// --- Figure 4 cost metrics ---

func TestCostBalancing(t *testing.T) {
	p := DefaultParams()
	if got := p.costBalancing(p.LIdle - 1); got != 0 {
		t.Errorf("below L_idle: %v, want 0", got)
	}
	if got := p.costBalancing(p.LIdle); got != 0 {
		t.Errorf("at L_idle: %v, want 0 (L_idle is exclusive lower knee)", got)
	}
	if got := p.costBalancing(p.LIdle + 10); got != 10 {
		t.Errorf("mid-range: %v, want 10", got)
	}
	if got := p.costBalancing(p.LOverload); got != Infinite {
		t.Errorf("at L_overload: %v, want Infinite", got)
	}
	if got := p.costBalancing(p.LOverload + 100); got != Infinite {
		t.Errorf("beyond L_overload: %v, want Infinite", got)
	}
}

func TestCostLocality(t *testing.T) {
	p := DefaultParams()
	if p.costLocality(true) != 0 {
		t.Error("mapped target should cost 0")
	}
	if p.costLocality(false) != p.MissCost {
		t.Error("unmapped target should cost MissCost")
	}
}

func TestCostReplacement(t *testing.T) {
	p := DefaultParams()
	if p.costReplacement(p.LIdle-1, false) != 0 {
		t.Error("underutilized node should have no replacement cost")
	}
	if p.costReplacement(p.LIdle+10, true) != 0 {
		t.Error("mapped target should have no replacement cost")
	}
	if p.costReplacement(p.LIdle+10, false) != p.MissCost {
		t.Error("busy node with unmapped target should cost MissCost")
	}
}

func TestAggregateInfinitePropagates(t *testing.T) {
	p := DefaultParams()
	if p.Aggregate(p.LOverload, true) != Infinite {
		t.Error("overloaded node must have infinite aggregate cost")
	}
}

// Property: for loads below the overload knee, an aggregate with the target
// mapped never exceeds the aggregate with it unmapped at the same load.
func TestAggregateMappedNeverWorse(t *testing.T) {
	p := DefaultParams()
	f := func(load uint8) bool {
		l := float64(int(load) % int(p.LOverload))
		return p.Aggregate(l, true) <= p.Aggregate(l, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- WRR ---

func TestWRRBalancesConnections(t *testing.T) {
	w := NewWRR(4)
	var conns []*core.ConnState
	for i := 0; i < 40; i++ {
		c := core.NewConnState(core.ConnID(i))
		w.ConnOpen(c, req("/same", 1))
		conns = append(conns, c)
	}
	for n := 0; n < 4; n++ {
		if got := w.Loads().Conns(core.NodeID(n)); got != 10 {
			t.Errorf("node %d has %d connections, want 10", n, got)
		}
	}
	for _, c := range conns {
		w.ConnClose(c)
	}
	if w.Loads().Total() != 0 {
		t.Errorf("residual load %v after closing all", w.Loads().Total())
	}
}

func TestWRRIgnoresContent(t *testing.T) {
	w := NewWRR(2)
	// The same target must alternate nodes: WRR is content-blind.
	c1 := core.NewConnState(1)
	n1 := w.ConnOpen(c1, req("/x", 1))
	c2 := core.NewConnState(2)
	n2 := w.ConnOpen(c2, req("/x", 1))
	if n1 == n2 {
		t.Errorf("WRR sent both connections for /x to %v", n1)
	}
}

func TestWRRBatchSticksToHandling(t *testing.T) {
	w := NewWRR(3)
	c := core.NewConnState(1)
	h := w.ConnOpen(c, req("/a", 1))
	batch := core.Batch{req("/b", 1), req("/c", 1)}
	for _, a := range w.AssignBatch(c, batch) {
		if a.Node != h || a.Forward || a.Migrate {
			t.Errorf("WRR assignment %+v, want plain local serve at %v", a, h)
		}
	}
}

// --- basic LARD ---

func openLARD(l *LARD, id core.ConnID, target core.Target) (*core.ConnState, core.NodeID) {
	c := core.NewConnState(id)
	n := l.ConnOpen(c, req(target, 1000))
	return c, n
}

func TestLARDRepeatTargetSticksToNode(t *testing.T) {
	l := NewLARD(4, testCache, DefaultParams())
	_, first := openLARD(l, 1, "/popular")
	for i := 2; i <= 10; i++ {
		_, n := openLARD(l, core.ConnID(i), "/popular")
		if n != first {
			t.Fatalf("request %d for /popular went to %v, want %v (locality)", i, n, first)
		}
	}
}

func TestLARDDistributesDistinctTargets(t *testing.T) {
	l := NewLARD(4, testCache, DefaultParams())
	seen := map[core.NodeID]bool{}
	for i := 0; i < 40; i++ {
		_, n := openLARD(l, core.ConnID(i), core.Target(rune('a'+i)))
		seen[n] = true
	}
	if len(seen) != 4 {
		t.Errorf("distinct targets used %d nodes of 4", len(seen))
	}
}

func TestLARDMovesOffOverloadedNode(t *testing.T) {
	p := DefaultParams()
	l := NewLARD(2, testCache, p)
	// Saturate node holding /hot beyond L_overload.
	var conns []*core.ConnState
	c, hot := openLARD(l, 1, "/hot")
	conns = append(conns, c)
	for i := 2; l.Loads().Load(hot) < p.LOverload; i++ {
		cs := core.NewConnState(core.ConnID(i))
		cs.Handling = hot
		l.Loads().AddConn(hot) // simulate load pinned to the hot node
		conns = append(conns, cs)
	}
	_, n := openLARD(l, 1000, "/hot")
	if n == hot {
		t.Errorf("request for /hot stayed on overloaded node %v", hot)
	}
}

func TestLARDEquivalentPoliciesHTTP10(t *testing.T) {
	// On single-request connections extLARD must make exactly the basic
	// LARD decisions, whatever the mechanism (paper: "the extended LARD
	// policy is equivalent to LARD for HTTP/1.0 requests").
	lard := NewLARD(4, testCache, DefaultParams())
	ext := NewExtLARD(4, testCache, DefaultParams(), core.BEForwarding)
	for i := 0; i < 200; i++ {
		target := core.Target(rune('A' + i%23))
		cl := core.NewConnState(core.ConnID(i))
		ce := core.NewConnState(core.ConnID(i))
		nl := lard.ConnOpen(cl, req(target, 500))
		ne := ext.ConnOpen(ce, req(target, 500))
		if nl != ne {
			t.Fatalf("conn %d (%q): LARD chose %v, extLARD chose %v", i, target, nl, ne)
		}
		lard.AssignBatch(cl, core.Batch{req(target, 500)})
		ext.AssignBatch(ce, core.Batch{req(target, 500)})
		lard.ConnClose(cl)
		ext.ConnClose(ce)
	}
}

// --- extended LARD ---

func TestExtLARDFirstRequestStaysOnHandling(t *testing.T) {
	e := NewExtLARD(4, testCache, DefaultParams(), core.BEForwarding)
	c := core.NewConnState(1)
	h := e.ConnOpen(c, req("/page", 1000))
	as := e.AssignBatch(c, core.Batch{req("/page", 1000)})
	if as[0].Node != h || as[0].Forward {
		t.Errorf("first request assignment %+v, want local at %v", as[0], h)
	}
}

func TestExtLARDServesLocallyWhenDiskIdle(t *testing.T) {
	e := NewExtLARD(2, testCache, DefaultParams(), core.BEForwarding)
	// Map /obj on node 1 via another connection.
	other := core.NewConnState(7)
	e.ConnOpen(other, req("/obj", 1000))
	objNode := other.Handling

	c := core.NewConnState(1)
	e.ConnOpen(c, req("/page", 1000))
	if c.Handling == objNode {
		t.Skip("both targets landed on one node; pick a different layout")
	}
	// Disk idle everywhere (no reports): serve locally, replicate.
	e.AssignBatch(c, core.Batch{req("/page", 1000)})
	as := e.AssignBatch(c, core.Batch{req("/obj", 1000)})
	if as[0].Node != c.Handling || as[0].Forward {
		t.Errorf("disk-idle subsequent request: %+v, want local serve", as[0])
	}
	if !e.Mapping().IsMapped(tid("/obj"), c.Handling) {
		t.Error("locally served target not replicated into the mapping")
	}
}

func TestExtLARDForwardsWhenDiskBusyAndMappedElsewhere(t *testing.T) {
	e := NewExtLARD(2, testCache, DefaultParams(), core.BEForwarding)
	other := core.NewConnState(7)
	e.ConnOpen(other, req("/obj", 1000))
	objNode := other.Handling

	c := core.NewConnState(1)
	e.ConnOpen(c, req("/page", 1000))
	h := c.Handling
	if h == objNode {
		t.Skip("layout collision")
	}
	e.AssignBatch(c, core.Batch{req("/page", 1000)})
	// Handling node's disk is busy: the policy must forward to objNode.
	e.ReportDiskQueue(h, 10)
	as := e.AssignBatch(c, core.Batch{req("/obj", 1000)})
	if !as[0].Forward || as[0].Node != objNode {
		t.Errorf("busy-disk foreign request: %+v, want forward to %v", as[0], objNode)
	}
	if as[0].CacheLocally {
		t.Error("forwarded content must not be cached locally (NFS client caching disabled)")
	}
	// Remote node carries 1/N load for the batch.
	if got := e.Loads().Load(objNode); got != 1+1.0 {
		// objNode has its own connection (1) plus 1/1 for this batch.
		t.Errorf("remote node load = %v, want 2.0", got)
	}
	// The next batch releases the fractional charge.
	e.ReportDiskQueue(h, 0)
	e.AssignBatch(c, core.Batch{req("/page", 1000)})
	if got := e.Loads().Load(objNode); got != 1 {
		t.Errorf("remote node load = %v after next batch, want 1.0", got)
	}
}

func TestExtLARDServesColdTargetLocallyUnderBusyDisk(t *testing.T) {
	e := NewExtLARD(2, testCache, DefaultParams(), core.BEForwarding)
	c := core.NewConnState(1)
	e.ConnOpen(c, req("/page", 1000))
	h := c.Handling
	e.AssignBatch(c, core.Batch{req("/page", 1000)})
	e.ReportDiskQueue(h, 10)
	// /cold is mapped nowhere: only candidate is the handling node.
	as := e.AssignBatch(c, core.Batch{req("/cold", 1000)})
	if as[0].Node != h || as[0].Forward {
		t.Errorf("cold target under busy disk: %+v, want local serve", as[0])
	}
}

func TestExtLARDOneNNLoadAccounting(t *testing.T) {
	e := NewExtLARD(3, testCache, DefaultParams(), core.BEForwarding)
	// Map /o1 -> some node, /o2 -> another.
	a := core.NewConnState(10)
	e.ConnOpen(a, req("/o1", 100))
	b := core.NewConnState(11)
	e.ConnOpen(b, req("/o2", 100))
	n1, n2 := a.Handling, b.Handling

	c := core.NewConnState(1)
	e.ConnOpen(c, req("/page", 100))
	h := c.Handling
	if h == n1 || h == n2 || n1 == n2 {
		t.Skip("layout collision")
	}
	e.AssignBatch(c, core.Batch{req("/page", 100)})
	e.ReportDiskQueue(h, 10)
	// Batch of 4: two forwarded to n1, one to n2, one local.
	batch := core.Batch{
		req("/o1", 100), req("/o1", 100),
		req("/o2", 100), req("/page", 100),
	}
	e.AssignBatch(c, batch)
	if got, want := e.Loads().Load(n1), 1+2.0/4; got != want {
		t.Errorf("n1 load = %v, want %v", got, want)
	}
	if got, want := e.Loads().Load(n2), 1+1.0/4; got != want {
		t.Errorf("n2 load = %v, want %v", got, want)
	}
	e.BatchDone(c)
	if e.Loads().Load(n1) != 1 || e.Loads().Load(n2) != 1 {
		t.Error("BatchDone did not release 1/N charges")
	}
}

func TestExtLARDMultiHandoffMigrates(t *testing.T) {
	e := NewExtLARD(2, testCache, DefaultParams(), core.MultipleHandoff)
	other := core.NewConnState(7)
	e.ConnOpen(other, req("/obj", 1000))
	objNode := other.Handling

	c := core.NewConnState(1)
	e.ConnOpen(c, req("/page", 1000))
	h := c.Handling
	if h == objNode {
		t.Skip("layout collision")
	}
	e.AssignBatch(c, core.Batch{req("/page", 1000)})
	e.ReportDiskQueue(h, 10)
	as := e.AssignBatch(c, core.Batch{req("/obj", 1000)})
	if !as[0].Migrate || as[0].Node != objNode || as[0].From != h {
		t.Errorf("multi-handoff assignment %+v, want migration %v->%v", as[0], h, objNode)
	}
	if c.Handling != objNode {
		t.Error("connection handling node not updated on migration")
	}
	if e.Loads().Conns(objNode) != 2 || e.Loads().Conns(h) != 0 {
		t.Error("connection load did not follow the migration")
	}
}

func TestExtLARDZeroCostReassignsFreely(t *testing.T) {
	e := NewExtLARD(2, testCache, DefaultParams(), core.ZeroCostHandoff)
	other := core.NewConnState(7)
	e.ConnOpen(other, req("/obj", 1000))
	objNode := other.Handling

	c := core.NewConnState(1)
	e.ConnOpen(c, req("/page", 1000))
	if c.Handling == objNode {
		t.Skip("layout collision")
	}
	e.AssignBatch(c, core.Batch{req("/page", 1000)})
	// Even with idle disks, zero-cost reassignment chases locality.
	as := e.AssignBatch(c, core.Batch{req("/obj", 1000)})
	if as[0].Node != objNode {
		t.Errorf("zero-cost assignment went to %v, want %v", as[0].Node, objNode)
	}
}

func TestExtLARDSingleHandoffNeverMoves(t *testing.T) {
	e := NewExtLARD(4, testCache, DefaultParams(), core.SingleHandoff)
	c := core.NewConnState(1)
	h := e.ConnOpen(c, req("/page", 1000))
	e.ReportDiskQueue(h, 50)
	batch := core.Batch{
		req("/page", 1000), req("/x", 1),
		req("/y", 1), req("/z", 1),
	}
	for _, a := range e.AssignBatch(c, batch) {
		if a.Node != h || a.Forward || a.Migrate {
			t.Errorf("single-handoff assignment %+v, want pinned to %v", a, h)
		}
	}
}

func TestExtLARDConnCloseReleasesEverything(t *testing.T) {
	e := NewExtLARD(2, testCache, DefaultParams(), core.BEForwarding)
	other := core.NewConnState(7)
	e.ConnOpen(other, req("/obj", 1000))

	c := core.NewConnState(1)
	e.ConnOpen(c, req("/page", 1000))
	e.AssignBatch(c, core.Batch{req("/page", 1000)})
	e.ReportDiskQueue(c.Handling, 10)
	e.AssignBatch(c, core.Batch{req("/obj", 1000)})
	e.ConnClose(c)
	e.ConnClose(other)
	if e.Loads().Total() != 0 {
		t.Errorf("residual load %v after closing all connections", e.Loads().Total())
	}
}

func TestExtLARDAssignBeforeOpenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AssignBatch before ConnOpen did not panic")
		}
	}()
	e := NewExtLARD(2, testCache, DefaultParams(), core.BEForwarding)
	e.AssignBatch(core.NewConnState(1), core.Batch{req("/x", 1)})
}

// Property: every assignment names a valid node, and loads never go
// negative, across random request streams.
func TestExtLARDAssignmentsAlwaysValid(t *testing.T) {
	f := func(stream []uint8, diskBusy bool) bool {
		e := NewExtLARD(3, testCache, DefaultParams(), core.BEForwarding)
		if diskBusy {
			for n := 0; n < 3; n++ {
				e.ReportDiskQueue(core.NodeID(n), 10)
			}
		}
		var conns []*core.ConnState
		for i, b := range stream {
			target := core.Target(rune('a' + b%17))
			if i%4 == 0 || len(conns) == 0 {
				c := core.NewConnState(core.ConnID(i))
				n := e.ConnOpen(c, req(target, 100))
				if n < 0 || int(n) >= 3 {
					return false
				}
				conns = append(conns, c)
			}
			c := conns[int(b)%len(conns)]
			for _, a := range e.AssignBatch(c, core.Batch{req(target, 100)}) {
				if a.Node < 0 || int(a.Node) >= 3 {
					return false
				}
			}
		}
		for _, c := range conns {
			e.ConnClose(c)
		}
		for n := 0; n < 3; n++ {
			if e.Loads().Load(core.NodeID(n)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// pick must never choose an overloaded node while an acceptable one exists.
func TestPickAvoidsInfiniteCost(t *testing.T) {
	p := DefaultParams()
	e := NewExtLARD(3, testCache, p, core.BEForwarding)
	lt := e.Loads()
	// Push node 0 past overload.
	for lt.Load(0) < p.LOverload {
		lt.AddFraction(0, 10)
	}
	c := core.NewConnState(1)
	if n := e.ConnOpen(c, req("/t", 1)); n == 0 {
		t.Error("ConnOpen chose the overloaded node")
	}
}
