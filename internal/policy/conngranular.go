package policy

import "phttp/internal/core"

// connGranular is the embeddable core of a connection-granularity policy:
// every request of a persistent connection is served by the handling node
// chosen at ConnOpen, one load unit per live connection, no fractional
// batch accounting and no disk feedback. Policies embedding it (P2C,
// BoundedCH — and any future placement-only strategy) supply just Name and
// ConnOpen; the shared lifecycle lives here once instead of being copied
// per policy.
type connGranular struct {
	memberSet
	loads *core.LoadTracker
}

// initConnGranular builds the shared base over n nodes, in place —
// memberSet holds atomics, so a connGranular must never be copied.
func (g *connGranular) initConnGranular(n int) {
	g.loads = core.NewLoadTracker(n)
	g.init(n)
}

// AssignBatch sends every request to the handling node (connection
// granularity; the single handoff mechanism permits nothing else). The
// returned slice is the connection's reusable buffer: valid until the
// next AssignBatch on the same connection.
//
//phttp:hotpath
func (g *connGranular) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	out := c.AssignBuf(len(batch))
	for i := range batch {
		out[i] = core.Assignment{Node: c.Handling, CacheLocally: true}
		c.Requests++
	}
	c.Batches++
	return out
}

// BatchDone is a no-op: connection-granularity policies never charge
// fractional loads.
func (g *connGranular) BatchDone(*core.ConnState) {}

// ConnClose releases the connection's load unit.
func (g *connGranular) ConnClose(c *core.ConnState) {
	if c.Handling != core.NoNode {
		g.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}

// ReportDiskQueue is ignored: these policies use load counts only.
func (g *connGranular) ReportDiskQueue(core.NodeID, int) {}

// Loads implements core.Policy.
func (g *connGranular) Loads() *core.LoadTracker { return g.loads }
