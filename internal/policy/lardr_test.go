package policy

import (
	"testing"

	"phttp/internal/core"
)

func TestLARDRUnmappedGoesToLeastLoaded(t *testing.T) {
	l := NewLARDR(3, testCache, DefaultParams())
	l.Loads().AddFraction(0, 5)
	l.Loads().AddFraction(1, 3)
	c := core.NewConnState(1)
	if n := l.ConnOpen(c, req("/new", 100)); n != 2 {
		t.Errorf("unmapped target went to %v, want least-loaded be2", n)
	}
	if !l.Mapping().IsMapped(tid("/new"), 2) {
		t.Error("target not mapped after first assignment")
	}
}

func TestLARDRSticksWhileUnderloaded(t *testing.T) {
	l := NewLARDR(3, testCache, DefaultParams())
	var conns []*core.ConnState
	first := core.NoNode
	for i := 0; i < 15; i++ {
		c := core.NewConnState(core.ConnID(i))
		n := l.ConnOpen(c, req("/hot", 100))
		conns = append(conns, c)
		if first == core.NoNode {
			first = n
		} else if n != first {
			t.Fatalf("assignment %d moved to %v before overload (set should not grow)", i, n)
		}
	}
	for _, c := range conns {
		l.ConnClose(c)
	}
}

func TestLARDRReplicatesUnderOverload(t *testing.T) {
	p := DefaultParams()
	l := NewLARDR(2, testCache, p)
	c0 := core.NewConnState(0)
	home := l.ConnOpen(c0, req("/hot", 100))
	// Pin the home node past the overload knee.
	for l.Loads().Load(home) < p.LOverload {
		l.Loads().AddFraction(home, 10)
	}
	// Enough assignments to satisfy GrowInterval, then one more to grow.
	var got core.NodeID = home
	for i := 1; i <= l.GrowInterval+1; i++ {
		c := core.NewConnState(core.ConnID(i))
		got = l.ConnOpen(c, req("/hot", 100))
	}
	if got == home {
		t.Fatal("server set never grew despite overload")
	}
	if nodes := l.Mapping().NodesFor(tid("/hot")); len(nodes) != 2 {
		t.Errorf("server set = %v, want both nodes", nodes)
	}
}

func TestLARDRShrinksStableSets(t *testing.T) {
	l := NewLARDR(2, testCache, DefaultParams())
	l.GrowInterval = 1
	l.ShrinkInterval = 10
	// Manually replicate /warm on both nodes; the assignment counter
	// starts at zero on its own (dense slice, zero value).
	l.Mapping().Map(tid("/warm"), 100, 0)
	l.Mapping().Map(tid("/warm"), 100, 1)
	for i := 0; i < l.ShrinkInterval+2; i++ {
		c := core.NewConnState(core.ConnID(i))
		l.ConnOpen(c, req("/warm", 100))
		l.ConnClose(c)
	}
	if nodes := l.Mapping().NodesFor(tid("/warm")); len(nodes) != 1 {
		t.Errorf("stable set did not shrink: %v", nodes)
	}
}

func TestLARDRBatchSticksToHandling(t *testing.T) {
	l := NewLARDR(3, testCache, DefaultParams())
	c := core.NewConnState(1)
	h := l.ConnOpen(c, req("/a", 100))
	for _, a := range l.AssignBatch(c, core.Batch{req("/b", 1), req("/c", 1)}) {
		if a.Node != h || a.Forward || a.Migrate {
			t.Errorf("LARD/R assignment %+v, want pinned to %v", a, h)
		}
	}
	l.ConnClose(c)
	if l.Loads().Total() != 0 {
		t.Error("residual load after close")
	}
}
