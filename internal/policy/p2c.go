package policy

import (
	"phttp/internal/core"
)

// P2C is the power-of-two-choices policy (Mitzenmacher '96) keyed on the
// requested content: a target's interned ID hashes to two candidate
// back-ends, and the connection goes to the less loaded of the two. The
// candidate pair is a pure function of (target, seed), so a popular target
// concentrates on at most two nodes — "two-way LARD without a mapping
// table": most of the locality benefit with zero dispatcher state beyond
// the load tracker, and none of the mapping-table maintenance.
//
// P2C distributes at connection granularity (every request of a persistent
// connection is served by the handling node), so it runs under the single
// handoff mechanism in both the simulator and the prototype.
//
// P2C is safe for concurrent dispatch: the decision reads the atomic load
// tracker and per-connection state is owned by the caller (the dispatch
// engine serializes calls per connection). Racing decisions see slightly
// stale loads, exactly like the paper's front-end.
type P2C struct {
	connGranular
	seed uint64
}

var (
	_ core.Policy           = (*P2C)(nil)
	_ core.MembershipPolicy = (*P2C)(nil)
)

// NewP2C returns a power-of-two-choices policy over n nodes. seed
// perturbs the target→candidates hash (same seed, same placement).
func NewP2C(n int, seed uint64) *P2C {
	p := &P2C{seed: seed}
	p.initConnGranular(n)
	return p
}

// Name implements core.Policy.
func (p *P2C) Name() string { return "P2C" }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixer (Steele et al., "Fast splittable pseudorandom number generators").
// Both hash-keyed policies (P2C, BoundedCH) derive placement from it.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// candidates returns the two candidate nodes for a target ID: distinct
// whenever the cluster has two nodes, deterministic per (id, seed).
func (p *P2C) candidates(id core.TargetID) (core.NodeID, core.NodeID) {
	n := p.loads.Nodes()
	if n == 1 {
		return 0, 0
	}
	h := splitmix64(uint64(uint32(id)) ^ p.seed)
	a := core.NodeID(h % uint64(n))
	// Second choice over the remaining n-1 nodes, shifted past the first:
	// distinct by construction, no rejection loop.
	b := core.NodeID((h >> 32) % uint64(n-1))
	if b >= a {
		b++
	}
	return a, b
}

// ConnOpen sends the connection to the less loaded of the first target's
// two candidate nodes and charges it one load unit. Under churn an
// ineligible candidate loses to the eligible one; when both candidates
// are out, the connection goes to the least-loaded eligible node (the
// target's locality is sacrificed, its fallback placement still
// deterministic per the load state).
//
//phttp:hotpath
func (p *P2C) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	a, b := p.candidates(first.ID)
	best := a
	if p.loads.Load(b) < p.loads.Load(a) {
		best = b
	}
	if mem := p.active(); mem != nil {
		switch {
		case mem.eligible(a) && mem.eligible(b):
			// keep best
		case mem.eligible(a):
			best = a
		case mem.eligible(b):
			best = b
		default:
			if n := mem.leastEligibleAll(p.loads); n != core.NoNode {
				best = n
			}
		}
	}
	c.Handling = best
	p.loads.AddConn(best)
	return best
}

// The batch/close/feedback lifecycle is the shared connection-granularity
// base (connGranular).
