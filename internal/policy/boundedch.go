package policy

import (
	"sort"

	"phttp/internal/core"
)

// BoundedCH is consistent hashing with bounded loads (Mirrokni, Thorup &
// Zadimoghaddam, "Consistent Hashing with Bounded Loads", 2017 — the
// algorithm behind HAProxy's hash-balance-factor and Vimeo's skyfire
// dispatcher). Each node owns `replicas` pseudo-random points on a 64-bit
// hash ring; a target's interned ID hashes to a ring position and the walk
// clockwise from there stops at the first node whose connection count stays
// within c× the cluster mean after accepting one more. Popular targets thus
// stick to a stable node (cache locality, like LARD's mapping but stateless)
// while the bound keeps any single node from melting under a hot target —
// the overflow spills to the next nodes on the ring.
//
// BoundedCH distributes at connection granularity and runs under the single
// handoff mechanism in both the simulator and the prototype.
//
// Concurrency: the ring is immutable after construction and the decision
// reads the atomic load tracker, so concurrent dispatch needs no policy
// lock. Two racing opens may both see room at a node and overshoot the
// bound by one connection — the same benign staleness every policy here
// accepts on its load estimates.
type BoundedCH struct {
	connGranular
	bound float64 // load bound factor c >= 1
	seed  uint64

	ring []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node core.NodeID
}

var (
	_ core.Policy           = (*BoundedCH)(nil)
	_ core.MembershipPolicy = (*BoundedCH)(nil)
)

// NewBoundedCH returns a bounded-load consistent-hashing policy over n
// nodes with the given virtual replica count per node and load bound
// factor (c >= 1; 1.25 is the literature's default).
func NewBoundedCH(n, replicas int, bound float64, seed uint64) *BoundedCH {
	if bound < 1 {
		bound = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	b := &BoundedCH{
		bound: bound,
		seed:  seed,
		ring:  make([]ringPoint, 0, n*replicas),
	}
	b.initConnGranular(n)
	for node := 0; node < n; node++ {
		for r := 0; r < replicas; r++ {
			h := splitmix64(seed ^ uint64(node)<<32 ^ uint64(r))
			b.ring = append(b.ring, ringPoint{hash: h, node: core.NodeID(node)})
		}
	}
	sort.Slice(b.ring, func(i, j int) bool {
		if b.ring[i].hash != b.ring[j].hash {
			return b.ring[i].hash < b.ring[j].hash
		}
		return b.ring[i].node < b.ring[j].node
	})
	return b
}

// Name implements core.Policy.
func (b *BoundedCH) Name() string { return "boundedCH" }

// capacity returns the per-node connection cap for the current total:
// ceil(c × (total+1) / n), the paper's bound with the incoming connection
// counted. With c >= 1 at least one node is always below it (if every node
// held ≥ cap connections the total would exceed c×(total+1) ≥ total+1).
// Under churn n is the eligible node count — the bound keeps its meaning
// over the nodes that can actually accept work — while total still
// counts every connection (those on draining nodes will finish and the
// cap relaxes as they do).
func (b *BoundedCH) capacity(mem *memberSet) int {
	n := b.loads.Nodes()
	total := 0
	elig := 0
	for i := 0; i < n; i++ {
		total += b.loads.Conns(core.NodeID(i))
		if mem == nil || mem.eligible(core.NodeID(i)) {
			elig++
		}
	}
	if elig == 0 {
		elig = n
	}
	c := b.bound * float64(total+1) / float64(elig)
	limit := int(c)
	if float64(limit) < c {
		limit++
	}
	return limit
}

// pick walks the ring clockwise from the target's hash position and
// returns the first eligible node with spare capacity. Ineligible nodes'
// ring points are skipped — removing a node shifts only its own arcs to
// the next nodes clockwise, the consistent-hashing property.
func (b *BoundedCH) pick(id core.TargetID) core.NodeID {
	h := splitmix64(uint64(uint32(id)) ^ b.seed)
	i := sort.Search(len(b.ring), func(i int) bool { return b.ring[i].hash >= h })
	mem := b.active()
	limit := b.capacity(mem)
	for walked := 0; walked < len(b.ring); walked++ {
		p := b.ring[(i+walked)%len(b.ring)]
		if mem != nil && !mem.eligible(p.node) {
			continue
		}
		if b.loads.Conns(p.node) < limit {
			return p.node
		}
	}
	// Unreachable with a correctly computed cap (see capacity); degrade to
	// the least-loaded (eligible, if any) node rather than panicking on
	// racy counts.
	if n := mem.leastEligibleAll(b.loads); n != core.NoNode {
		return n
	}
	return b.loads.Least()
}

// ConnOpen assigns the connection by bounded-load consistent hashing on
// the first request's target and charges one load unit.
//
//phttp:hotpath
func (b *BoundedCH) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	n := b.pick(first.ID)
	c.Handling = n
	b.loads.AddConn(n)
	return n
}

// The batch/close/feedback lifecycle is the shared connection-granularity
// base (connGranular).
