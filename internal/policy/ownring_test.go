package policy

import (
	"testing"

	"phttp/internal/core"
)

// TestOwnerRingDeterministic: two rings built with identical parameters
// agree on every target — the property the sharded tier stands on, since
// each front-end builds its ring independently.
func TestOwnerRingDeterministic(t *testing.T) {
	a := NewOwnerRing(4, 0, 42)
	b := NewOwnerRing(4, 0, 42)
	for id := core.TargetID(0); id < 4096; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("target %d: ring A says %d, ring B says %d", id, a.Owner(id), b.Owner(id))
		}
	}
}

// TestOwnerRingCoverageAndBounds: every front-end owns a share of the
// target space, and every answer is a valid front-end index.
func TestOwnerRingCoverageAndBounds(t *testing.T) {
	for _, fes := range []int{1, 2, 3, 8} {
		r := NewOwnerRing(fes, 0, 7)
		owned := make([]int, fes)
		for id := core.TargetID(0); id < 4096; id++ {
			o := r.Owner(id)
			if o < 0 || o >= fes {
				t.Fatalf("fes=%d: owner %d out of range", fes, o)
			}
			owned[o]++
		}
		for fe, n := range owned {
			if n == 0 {
				t.Errorf("fes=%d: front-end %d owns no targets", fes, fe)
			}
		}
	}
}

// TestOwnerRingSeedMatters: different seeds produce different partitions
// (a fleet misconfigured with mixed seeds would silently mis-forward, so
// the seed must actually bite).
func TestOwnerRingSeedMatters(t *testing.T) {
	a := NewOwnerRing(3, 0, 1)
	b := NewOwnerRing(3, 0, 2)
	for id := core.TargetID(0); id < 4096; id++ {
		if a.Owner(id) != b.Owner(id) {
			return
		}
	}
	t.Error("4096 targets partition identically under different seeds")
}

// TestOwnerRingStability: growing the tier by one front-end reassigns
// only a minority of the target space — the consistent-hashing guarantee
// that makes elastic front-end membership cheap.
func TestOwnerRingStability(t *testing.T) {
	const targets = 8192
	small := NewOwnerRing(4, 0, 9)
	big := NewOwnerRing(5, 0, 9)
	moved := 0
	for id := core.TargetID(0); id < targets; id++ {
		if small.Owner(id) != big.Owner(id) {
			moved++
		}
	}
	// Ideal churn is 1/5 of the space; allow generous slack for the
	// small virtual-point count.
	if moved > targets/2 {
		t.Errorf("adding one front-end moved %d/%d targets; consistent hashing should move ~%d",
			moved, targets, targets/5)
	}
	if moved == 0 {
		t.Error("adding a front-end moved nothing; the fifth front-end owns no shards")
	}
}

// TestOwnerRingSmallIDSpread: regression for the query/point hash-domain
// collision. Interner IDs are small sequential integers; ids below the
// replica count used to hash onto exactly front-end 0's virtual points
// (same splitmix64 input), so FE0 owned the whole early working set.
// Small IDs must spread like any others.
func TestOwnerRingSmallIDSpread(t *testing.T) {
	for _, seed := range []uint64{7, 42, 0xc0ffee} {
		r := NewOwnerRing(3, 0, seed)
		owned := make([]int, 3)
		for id := core.TargetID(1); id <= 64; id++ {
			owned[r.Owner(id)]++
		}
		for fe, n := range owned {
			if n == 0 {
				t.Errorf("seed %#x: front-end %d owns none of target IDs 1..64 (spread %v)", seed, fe, owned)
			}
		}
	}
}

// TestOwnerRingSingleton: a one-front-end ring answers 0 without hashing.
func TestOwnerRingSingleton(t *testing.T) {
	r := NewOwnerRing(1, 0, 99)
	for id := core.TargetID(0); id < 64; id++ {
		if r.Owner(id) != 0 {
			t.Fatalf("singleton ring returned %d", r.Owner(id))
		}
	}
	if r.Frontends() != 1 {
		t.Errorf("Frontends() = %d", r.Frontends())
	}
}
