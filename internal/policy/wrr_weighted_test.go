package policy

import (
	"testing"

	"phttp/internal/core"
)

func TestWeightedWRRFavorsHeavierNodes(t *testing.T) {
	// Node 1 has twice the capacity: with held connections it should end
	// up with about twice the share.
	w := NewWeightedWRR([]float64{1, 2})
	counts := [2]int{}
	var conns []*core.ConnState
	for i := 0; i < 90; i++ {
		c := core.NewConnState(core.ConnID(i))
		n := w.ConnOpen(c, core.Request{Target: "/t", Size: 1})
		counts[n]++
		conns = append(conns, c)
	}
	if counts[1] != 60 || counts[0] != 30 {
		t.Errorf("split %v, want [30 60] under 1:2 weights", counts)
	}
	for _, c := range conns {
		w.ConnClose(c)
	}
}

func TestWeightedWRRRejectsBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero weight did not panic")
		}
	}()
	NewWeightedWRR([]float64{1, 0})
}
