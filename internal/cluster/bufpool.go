package cluster

import (
	"io"
	"sync"
)

// Response body buffering used to allocate a fresh 32 KB bufio.Writer per
// request on every back-end write path — the last per-request allocation of
// the serving loop (ROADMAP: "the doc store still allocates response
// buffers per request"). chunkWriter replaces it with size-classed pooled
// buffers: a response checks out the smallest class covering it (or the
// largest class, streamed through repeatedly, for bodies beyond it) and
// returns it once the response is on the wire. Steady-state serving
// allocates nothing for buffering, whatever mix of body sizes the workload
// produces.

// chunkClasses are the pooled buffer sizes. The smallest covers the
// response head plus the workload's median bodies (~3-6 KB), the middle
// one the bulk of the size distribution, the largest matches the old fixed
// bufio size so large transfers keep their syscall batching.
var chunkClasses = [...]int{4 << 10, 16 << 10, 64 << 10}

// chunkWriter buffers writes into its size-classed chunk, flushing to the
// underlying writer whenever the chunk fills — bufio.Writer semantics
// minus the per-response allocations. The buffer lives with the writer
// across checkouts (a sync.Pool of writer pointers boxes nothing), so a
// warmed pool serves responses with zero buffering allocations. Not safe
// for concurrent use; one response owns it from checkout to release.
type chunkWriter struct {
	w     io.Writer
	buf   []byte
	n     int
	class int
}

// chunkWriters pools one writer (with its attached buffer) per size class,
// shared by every backend in the process (in-process harnesses run
// several).
var chunkWriters [len(chunkClasses)]sync.Pool

// chunkClassFor returns the index of the smallest class covering hint, or
// the largest class (streamed through repeatedly) beyond it.
func chunkClassFor(hint int64) int {
	for i, size := range chunkClasses {
		if hint <= int64(size) {
			return i
		}
	}
	return len(chunkClasses) - 1
}

// newChunkWriter checks a writer sized for a total response of hint bytes
// out of the pool. Callers must call release when done.
func newChunkWriter(w io.Writer, hint int64) *chunkWriter {
	class := chunkClassFor(hint)
	cw, ok := chunkWriters[class].Get().(*chunkWriter)
	if !ok {
		cw = &chunkWriter{buf: make([]byte, chunkClasses[class]), class: class}
	}
	cw.w = w
	cw.n = 0
	return cw
}

// release returns the writer (and its buffer) to its class pool. It does
// not flush; callers flush explicitly so write errors stay visible.
func (cw *chunkWriter) release() {
	cw.w = nil
	chunkWriters[cw.class].Put(cw)
}

// Write implements io.Writer.
func (cw *chunkWriter) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if cw.n == len(cw.buf) {
			if err := cw.Flush(); err != nil {
				return total, err
			}
		}
		c := copy(cw.buf[cw.n:], p)
		cw.n += c
		p = p[c:]
		total += c
	}
	return total, nil
}

// WriteString implements io.StringWriter without a byte-slice conversion
// allocation.
func (cw *chunkWriter) WriteString(s string) (int, error) {
	total := 0
	for len(s) > 0 {
		if cw.n == len(cw.buf) {
			if err := cw.Flush(); err != nil {
				return total, err
			}
		}
		c := copy(cw.buf[cw.n:], s)
		cw.n += c
		s = s[c:]
		total += c
	}
	return total, nil
}

// ReadFrom implements io.ReaderFrom, reading directly into the pooled
// chunk. Without it, io.Copy/CopyN (the lateral-fetch forwarding path)
// would fall back to allocating its own 32 KB copy buffer per response —
// the very allocation this pool removes.
func (cw *chunkWriter) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	for {
		if cw.n == len(cw.buf) {
			if err := cw.Flush(); err != nil {
				return total, err
			}
		}
		m, err := r.Read(cw.buf[cw.n:])
		cw.n += m
		total += int64(m)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// Flush writes the buffered bytes through.
func (cw *chunkWriter) Flush() error {
	if cw.n == 0 {
		return nil
	}
	_, err := cw.w.Write(cw.buf[:cw.n])
	cw.n = 0
	return err
}

// writeBuffered produces one buffered response — head plus body — on w
// through a pooled chunk: the shared serving path of the handed-off client
// socket, the relay frame and the peer lateral-fetch server.
func writeBuffered(w io.Writer, head string, body func(io.Writer) error, hint int64) error {
	cw := newChunkWriter(w, hint)
	defer cw.release()
	if _, err := cw.WriteString(head); err != nil {
		return err
	}
	if err := body(cw); err != nil {
		return err
	}
	return cw.Flush()
}
