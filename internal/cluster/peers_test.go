package cluster

import (
	"fmt"
	"testing"
	"time"

	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/dstate"
)

// newTestPeerTier builds one sharded tier member with its own policy and
// interner, listener bound but links not yet established.
func newTestPeerTier(t *testing.T, fe, frontends, nodes int) (*peerTier, *core.Interner) {
	t.Helper()
	pol, err := dispatch.Build(dispatch.Spec{Policy: "lard", Nodes: nodes, CacheBytes: 8 << 20})
	if err != nil {
		t.Fatalf("build policy: %v", err)
	}
	tier, err := newPeerTier(FrontEndConfig{
		Nodes: nodes, Frontends: frontends, FEID: fe,
		State: dstate.ModeSharded, SyncInterval: 5 * time.Millisecond,
	}, pol)
	if err != nil {
		t.Fatalf("newPeerTier fe %d: %v", fe, err)
	}
	in := core.NewInterner()
	tier.finishInit(in)
	return tier, in
}

// waitFor polls cond until it holds or the deadline passes (the sharded
// PCLOSE/PMOVE RPCs are fire-and-forget, so owner-side effects land
// asynchronously).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPeerTierShardedRPCs drives the full sharded state-transaction
// surface over a real two-member tier: remote open (POPEN/PNODE),
// pinned batch assignment, move (PMOVE) and close (PCLOSE) on the owner,
// the local-owner fast path, and — after the owner dies — the
// availability-first fallback with its counter.
func TestPeerTierShardedRPCs(t *testing.T) {
	const nodes = 2
	t0, in0 := newTestPeerTier(t, 0, 2, nodes)
	defer t0.Close()
	t1, _ := newTestPeerTier(t, 1, 2, nodes)
	if err := t0.connect([]string{"", t1.Addr()}); err != nil {
		t.Fatalf("fe0 connect: %v", err)
	}
	if err := t1.connect([]string{t0.Addr(), ""}); err != nil {
		t.Fatalf("fe1 connect: %v", err)
	}
	if t0.Mode() != dstate.ModeSharded {
		t.Fatalf("Mode = %v", t0.Mode())
	}

	// One target owned by each member (the ring spreads a handful of
	// distinct names across two front-ends).
	var remoteReq, localReq core.Request
	for i := 0; remoteReq.Target == "" || localReq.Target == ""; i++ {
		if i > 4096 {
			t.Fatal("owner ring never produced both owners")
		}
		tg := core.Target(fmt.Sprintf("/obj/%d", i))
		r := core.Request{Target: tg, ID: in0.Intern(tg), Size: 4096}
		if t0.Owner(r.ID) == 1 && remoteReq.Target == "" {
			remoteReq = r
		}
		if t0.Owner(r.ID) == 0 && localReq.Target == "" {
			localReq = r
		}
	}

	ownerConns := func(tier *peerTier) int {
		total := 0
		for n := 0; n < nodes; n++ {
			total += tier.pol.Loads().LocalConns(core.NodeID(n))
		}
		return total
	}

	// Remote-owned connection: the open RPC is synchronous, so by return
	// the owner's shard carries the charge and we know the node.
	rc := core.NewConnState(1)
	n := t0.ConnOpen(rc, remoteReq)
	if rc.OwnerFE != 1 || t0.remoteOpens.Load() != 1 {
		t.Fatalf("remote open: OwnerFE %d remoteOpens %d", rc.OwnerFE, t0.remoteOpens.Load())
	}
	if got := ownerConns(t1); got != 1 {
		t.Fatalf("owner charges %d conns after open, want 1", got)
	}
	as := t0.AssignBatch(rc, core.Batch{remoteReq, remoteReq})
	for i, a := range as {
		if a.Node != rc.Handling {
			t.Fatalf("assignment %d went to %d, not the pinned node %d", i, a.Node, rc.Handling)
		}
	}
	t0.BatchDone(rc) // remote-owned: must be a safe no-op
	to := core.NodeID((int(n) + 1) % nodes)
	t0.MoveConn(rc, to)
	if rc.Handling != to {
		t.Fatalf("MoveConn left Handling at %d", rc.Handling)
	}
	waitFor(t, "PMOVE to land on the owner", func() bool {
		return t1.pol.Loads().LocalConns(to) == 1
	})
	t0.ConnClose(rc)
	waitFor(t, "PCLOSE to land on the owner", func() bool {
		return ownerConns(t1) == 0
	})

	// Locally owned connection: the whole lifecycle stays on our shard.
	lc := core.NewConnState(2)
	ln := t0.ConnOpen(lc, localReq)
	if lc.OwnerFE != 0 || ownerConns(t0) != 1 {
		t.Fatalf("local open: OwnerFE %d, %d conns", lc.OwnerFE, ownerConns(t0))
	}
	t0.AssignBatch(lc, core.Batch{localReq})
	t0.BatchDone(lc)
	t0.MoveConn(lc, core.NodeID((int(ln)+1)%nodes))
	t0.ReportDiskQueue(0, 3)
	t0.ConnClose(lc)
	if got := ownerConns(t0); got != 0 {
		t.Fatalf("local close left %d conns charged", got)
	}

	// Owner death: opens fall back to local decisions, fire-and-forget
	// transactions count fallbacks instead of blocking.
	t1.Close()
	rc2 := core.NewConnState(3)
	t0.ConnOpen(rc2, remoteReq)
	if rc2.OwnerFE != 0 {
		t.Fatalf("fallback open: OwnerFE %d, want local 0", rc2.OwnerFE)
	}
	orphan := core.NewConnState(4)
	orphan.OwnerFE = 1
	orphan.Handling = 0
	t0.MoveConn(orphan, 1)
	t0.ConnClose(orphan)
	if got := t0.Fallbacks(); got < 3 {
		t.Fatalf("Fallbacks = %d, want >= 3 (open, move, close)", got)
	}
	t0.ConnClose(rc2)
}
