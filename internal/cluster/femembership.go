package cluster

import (
	"fmt"
	"time"

	"phttp/internal/core"
	"phttp/internal/membership"
)

// Elastic membership at the front-end (DESIGN.md §15): the membership
// table turns control-link evidence into state transitions, the listener
// below mirrors them into the dispatch engine's eligibility view, and
// healthLoop owns the clock — it ticks the failure detector and
// re-dispatches in-flight relayed work off nodes confirmed Down.

// pendingReq is one relayed request awaiting its response frame — the
// unit of re-dispatch. Created by the connection goroutine and published
// under pendingMu; after that only healthLoop mutates it (tries, node),
// so no per-request lock is needed.
type pendingReq struct {
	c     *feConn
	node  core.NodeID
	line  string
	tries int
	// start is the batch-completion instant of the request's original
	// dispatch — the latency clock's zero. Re-dispatch never resets it,
	// so a re-sent request's sample includes the detection and retry
	// delay instead of being dropped.
	start time.Time
}

// addPending registers a relayed request before it is written to its
// back-end, so a node death between write and response finds it.
func (fe *FrontEnd) addPending(c *feConn, seq int, n core.NodeID, line string) {
	fe.pendingMu.Lock()
	m := fe.pending[c.id]
	if m == nil {
		m = make(map[int]*pendingReq)
		fe.pending[c.id] = m
	}
	m[seq] = &pendingReq{c: c, node: n, line: line, start: c.batchStart}
	fe.pendingMu.Unlock()
}

// onMembership mirrors table transitions into the dispatch engine. It
// runs under the table lock (membership.Listener contract), so it must
// not call back into the table; Down sweeps are handed to healthLoop
// through sweepCh. Suspect changes nothing here — a Suspect node keeps
// its traffic until the confirm window expires.
func (fe *FrontEnd) onMembership(n core.NodeID, from, to membership.State) {
	_ = from
	switch to {
	case membership.Up:
		fe.eng.SetNodeUp(n)
	case membership.Draining:
		fe.eng.SetNodeDraining(n)
	case membership.Down:
		fe.eng.SetNodeDown(n)
		select {
		case fe.sweepCh <- n:
		default:
			// Sweep queue full: requests on n fail their sends and the
			// affected connections close — the coarse fallback.
		}
	}
}

// suspect reports a control-link failure for node n, unless the
// front-end is shutting down (teardown closes every link; that is not
// evidence about the back-ends).
func (fe *FrontEnd) suspect(n core.NodeID) {
	select {
	case <-fe.closed:
		return
	default:
	}
	fe.mem.Suspect(n, time.Now())
}

// healthLoop owns membership timing: it ticks the failure detector
// (Suspect after HeartbeatTimeout of silence, Down after ConfirmWindow)
// and runs the Down sweeps queued by the listener.
func (fe *FrontEnd) healthLoop() {
	defer fe.wg.Done()
	interval := fe.cfg.HealthInterval
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-fe.closed:
			return
		case n := <-fe.sweepCh:
			fe.sweepNode(n)
		case <-ticker.C:
			fe.mem.Tick(time.Now())
		}
	}
}

// sweepNode re-dispatches every relayed request still in flight on a
// node just confirmed Down.
func (fe *FrontEnd) sweepNode(dead core.NodeID) {
	type victim struct {
		seq int
		p   *pendingReq
	}
	fe.pendingMu.Lock()
	var victims []victim
	for _, m := range fe.pending {
		for seq, p := range m {
			if p.node == dead {
				victims = append(victims, victim{seq, p})
			}
		}
	}
	fe.pendingMu.Unlock()
	for _, v := range victims {
		fe.redispatchPending(v.p, dead)
	}
}

// redispatchPending re-sends one in-flight request to a surviving node,
// within the retry budget. Budget exhausted — or nowhere left to go —
// falls back to closing the client connection: serveClient errors out,
// the connection tears down cleanly, and the client retries on a fresh
// connection that dispatches to live nodes.
func (fe *FrontEnd) redispatchPending(p *pendingReq, dead core.NodeID) {
	budget := fe.cfg.RetryBudget
	if budget == 0 {
		budget = DefaultRetryBudget
	}
	p.tries++
	to := core.NoNode
	if p.tries <= budget {
		done := fe.trackDispatch()
		to = fe.eng.PickUp(dead)
		done()
	}
	if to == core.NoNode {
		p.c.conn.Close()
		return
	}
	c := p.c
	// The connection-load move must run on the connection's own
	// goroutine (the engine's Conn state is owner-serialized), so only
	// record the target here; dispatchBatch applies it next batch.
	c.mu.Lock()
	c.pendingMove = to
	c.mu.Unlock()
	p.node = to
	if !c.setReqNode(to) {
		fe.sendCtrl(to, formatRelay(c.id))
	}
	if err := fe.sendCtrl(to, p.line); err != nil {
		fe.suspect(to)
		return
	}
	fe.redispatched.Inc()
}

// Membership exposes the liveness table (admin surface, tests).
func (fe *FrontEnd) Membership() *membership.Table { return fe.mem }

// Unavailable returns how many client connections were refused with
// 503 Service Unavailable because no back-end was Up.
func (fe *FrontEnd) Unavailable() int64 { return fe.unavailable.Value() }

// Redispatches returns how many in-flight requests were re-sent to a
// surviving node after their serving node was confirmed Down.
func (fe *FrontEnd) Redispatches() int64 { return fe.redispatched.Value() }

// AddBackend (re)connects slot id to the back-end at ep and marks it Up.
// The slot universe is fixed at construction (FrontEndConfig.Nodes) —
// elasticity revives a Down or vacant slot with a fresh process, it does
// not grow per-node arrays. Any previous conns on the slot are torn down
// first; their read loops drain and exit on their own conns.
func (fe *FrontEnd) AddBackend(id core.NodeID, ep BackendEndpoints) error {
	if int(id) < 0 || int(id) >= len(fe.links) {
		return fmt.Errorf("cluster: backend slot %v out of range [0,%d)", id, len(fe.links))
	}
	select {
	case <-fe.closed:
		return fmt.Errorf("cluster: front-end closed")
	default:
	}
	link := fe.links[id]
	link.ctrlMu.Lock()
	if link.ctrl != nil {
		link.ctrl.Close()
		link.ctrl = nil
	}
	if link.data != nil {
		link.data.Close()
		link.data = nil
	}
	link.ctrlMu.Unlock()
	link.hoMu.Lock()
	if link.handoff != nil {
		link.handoff.Close()
		link.handoff = nil
	}
	link.hoMu.Unlock()

	fresh, err := fe.dialRetry(id, ep)
	if err != nil {
		fe.mem.MarkDown(id)
		return err
	}
	link.ctrlMu.Lock()
	link.ctrl, link.data = fresh.ctrl, fresh.data
	link.ctrlMu.Unlock()
	link.hoMu.Lock()
	link.handoff = fresh.handoff
	link.hoMu.Unlock()
	fe.endpoints[id] = ep
	fe.mem.MarkUp(id, time.Now())
	return nil
}

// RemoveBackend drains slot id: no new work lands on it, existing work
// completes, and the control link stays open until the process leaves
// (link loss while Draining confirms Down directly). A later AddBackend
// revives the slot.
func (fe *FrontEnd) RemoveBackend(id core.NodeID) error {
	if int(id) < 0 || int(id) >= len(fe.links) {
		return fmt.Errorf("cluster: backend slot %v out of range [0,%d)", id, len(fe.links))
	}
	fe.mem.Drain(id)
	return nil
}
