package cluster_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/httpmsg"
	"phttp/internal/server"
)

// fakeFE drives one Backend directly over the wire protocol, standing in
// for the front-end: it owns the control session, the handoff socket and a
// client TCP pair.
type fakeFE struct {
	t    *testing.T
	be   *cluster.Backend
	ctrl net.Conn
	ho   *net.UnixConn
}

func newBackendPair(t *testing.T) (*cluster.Backend, *cluster.Backend, *fakeFE) {
	t.Helper()
	dir := t.TempDir()
	catalog := map[core.Target]int64{
		"/local":  3000,
		"/remote": 5000,
	}
	mk := func(id int) *cluster.Backend {
		be, err := cluster.NewBackend(cluster.BackendConfig{
			ID:            core.NodeID(id),
			Catalog:       catalog,
			CacheBytes:    1 << 20,
			Disk:          server.DiskParams{Position: 100, TransferPer512: 1},
			TimeScale:     100,
			HandoffSocket: filepath.Join(dir, fmt.Sprintf("be%d.sock", id)),
		})
		if err != nil {
			t.Fatalf("backend %d: %v", id, err)
		}
		t.Cleanup(be.Close)
		return be
	}
	be0, be1 := mk(0), mk(1)
	peers := map[core.NodeID]string{0: be0.PeerAddr(), 1: be1.PeerAddr()}
	be0.SetPeers(peers)
	be1.SetPeers(peers)

	ctrl, err := net.Dial("tcp", be0.CtrlAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	if _, err := io.WriteString(ctrl, "HELLO CTRL\n"); err != nil {
		t.Fatal(err)
	}
	raddr, err := net.ResolveUnixAddr("unix", be0.HandoffPath())
	if err != nil {
		t.Fatal(err)
	}
	ho, err := net.DialUnix("unix", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ho.Close() })
	return be0, be1, &fakeFE{t: t, be: be0, ctrl: ctrl, ho: ho}
}

// handoff creates a client TCP pair, hands the server side to the backend
// under connID, and returns the client side.
func (f *fakeFE) handoff(connID core.ConnID) net.Conn {
	f.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.t.Fatal(err)
	}
	defer ln.Close()
	clientCh := make(chan net.Conn, 1)
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			clientCh <- c
		}
	}()
	serverSide, err := ln.Accept()
	if err != nil {
		f.t.Fatal(err)
	}
	file, err := serverSide.(*net.TCPConn).File()
	if err != nil {
		f.t.Fatal(err)
	}
	if err := cluster.SendConnFD(f.ho, connID, file); err != nil {
		f.t.Fatal(err)
	}
	file.Close()
	serverSide.Close() // the backend holds its own duplicate now
	client := <-clientCh
	f.t.Cleanup(func() { client.Close() })
	return client
}

func (f *fakeFE) send(line string) {
	f.t.Helper()
	if _, err := io.WriteString(f.ctrl, line); err != nil {
		f.t.Fatal(err)
	}
}

func readFullResponse(t *testing.T, br *bufio.Reader) (*httpmsg.Response, []byte) {
	t.Helper()
	resp, err := httpmsg.ReadResponse(br)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	body := make([]byte, resp.ContentLength)
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, body
}

func TestBackendServesLocalTaggedRequest(t *testing.T) {
	_, _, fe := newBackendPair(t)
	client := fe.handoff(1)
	client.SetDeadline(time.Now().Add(20 * time.Second))
	// "REQ <conn> <seq> <proto> <keep> <remote|-> <target>"
	fe.send("REQ 1 0 HTTP/1.1 1 - /local\n")
	br := bufio.NewReader(client)
	resp, body := readFullResponse(t, br)
	if resp.Status != 200 || int64(len(body)) != 3000 {
		t.Fatalf("status %d, body %d bytes", resp.Status, len(body))
	}
	for i := 0; i < 32; i++ {
		if body[i] != cluster.ContentByte("/local", int64(i)) {
			t.Fatalf("corrupt body at %d", i)
		}
	}
	fe.send("CLOSE 1\n")
}

func TestBackendLateralFetchProducesRemoteContent(t *testing.T) {
	_, be1, fe := newBackendPair(t)
	client := fe.handoff(2)
	client.SetDeadline(time.Now().Add(20 * time.Second))
	// Tagged: be0 must fetch /remote from be1 and forward it.
	fe.send("REQ 2 0 HTTP/1.1 1 1 /remote\n")
	br := bufio.NewReader(client)
	resp, body := readFullResponse(t, br)
	if resp.Status != 200 || int64(len(body)) != 5000 {
		t.Fatalf("status %d, body %d bytes", resp.Status, len(body))
	}
	for i := 0; i < 32; i++ {
		if body[i] != cluster.ContentByte("/remote", int64(i)) {
			t.Fatalf("corrupt forwarded body at %d", i)
		}
	}
	// The content came off be1's store, not be0's.
	if h, m := be1.Store().Counters(); h+m != 1 {
		t.Errorf("peer store accesses = %d, want 1", h+m)
	}
	fe.send("CLOSE 2\n")
}

func TestBackendPipelinedOrderPreserved(t *testing.T) {
	_, _, fe := newBackendPair(t)
	client := fe.handoff(3)
	client.SetDeadline(time.Now().Add(20 * time.Second))
	// Two pipelined requests, one local and one lateral: responses must
	// come back in request order despite different service paths.
	fe.send("REQ 3 0 HTTP/1.1 1 1 /remote\n")
	fe.send("REQ 3 1 HTTP/1.1 1 - /local\n")
	br := bufio.NewReader(client)
	r1, _ := readFullResponse(t, br)
	r2, _ := readFullResponse(t, br)
	if r1.ContentLength != 5000 || r2.ContentLength != 3000 {
		t.Errorf("response order: got %d then %d bytes, want 5000 then 3000",
			r1.ContentLength, r2.ContentLength)
	}
	fe.send("CLOSE 3\n")
}

func TestBackendDiskReports(t *testing.T) {
	_, _, fe := newBackendPair(t)
	br := bufio.NewReader(fe.ctrl)
	fe.ctrl.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("no disk report: %v", err)
	}
	var depth int
	if _, err := fmt.Sscanf(line, "DISKQ %d", &depth); err != nil {
		t.Fatalf("unexpected control message %q", line)
	}
	if depth != 0 {
		t.Errorf("idle backend reports disk queue %d", depth)
	}
}

func TestMainDoesNotLeakTempSockets(t *testing.T) {
	dir, err := cluster.HandoffSocketDir()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}
