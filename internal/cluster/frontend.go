package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/dstate"
	"phttp/internal/httpmsg"
	"phttp/internal/membership"
	"phttp/internal/metrics"
	"phttp/internal/policy"
)

// FrontEndConfig parameterizes the front-end node.
type FrontEndConfig struct {
	// Nodes is the number of back-ends.
	Nodes int
	// Policy is a dispatch registry name ("wrr", "lard", "lardr",
	// "extlard", "p2c", "boundedch", or any policy added via
	// dispatch.Register).
	Policy string
	// PolicyOptions are generic policy construction options forwarded to
	// the dispatch registry (validated against the policy's schema); they
	// override the typed fields below per key. Scenario-driven front-ends
	// are configured through them.
	PolicyOptions dispatch.Options
	// Mechanism is the distribution mechanism. The prototype implements
	// SingleHandoff, BEForwarding (the paper's choice) and RelayFrontEnd;
	// multiple handoff exists only in the simulator, as in the paper.
	Mechanism core.Mechanism
	// Params are the LARD-family constants.
	Params policy.Params
	// CacheBytes sizes the mapping model per node.
	CacheBytes int64
	// MaxTargets, when positive, bounds the dispatcher's target interner:
	// IDs are refcounted (mapping entries and in-flight requests pin
	// them), recycled after churn, and compacted periodically, so a
	// front-end facing an unbounded URL space (query strings, crawlers)
	// holds a bounded table instead of pinning every URL ever seen. Zero
	// keeps the pinned interner, which is right for benchmark runs and
	// trace replay.
	MaxTargets int
	// InternStripes overrides the capped interner's shard count (0 = the
	// size-based default; see dispatch.Spec.InternStripes). Parallel
	// connection handlers intern at parse time, so stripes bound how much
	// of that path serializes on shared locks.
	InternStripes int
	// MaintainInterval bounds maintenance staleness by wall clock. The
	// dispatch engine compacts its evictable interner every
	// Spec.MaintainEvery connection closes — which never fires on an idle
	// front-end, so a limbo bloated by a traffic burst used to persist
	// indefinitely once the burst ended. A positive interval runs a ticker
	// that calls Engine.Maintain whenever no maintenance pass has run
	// since the previous tick; 0 disables the ticker (cluster.DefaultConfig
	// and phttp-frontend default it to DefaultMaintainInterval). No-op
	// without MaxTargets: maintenance on a pinned interner does nothing.
	MaintainInterval time.Duration
	// IdleTimeout closes persistent connections with no request activity
	// (the paper's configurable interval, typically 15 s).
	IdleTimeout time.Duration
	// BatchWindow is how long the forwarding module waits for further
	// pipelined requests after one arrives before treating the batch as
	// complete.
	BatchWindow time.Duration
	// ClientListen is the client-facing listen address; empty means an
	// ephemeral loopback port.
	ClientListen string

	// DialRetries and DialBackoff bound the connection attempts per
	// back-end at start (and in AddBackend): after 1+DialRetries failed
	// attempts the node starts Down instead of aborting the front-end —
	// start fails only when zero back-ends are reachable. Zero values
	// take DefaultDialRetries / DefaultDialBackoff.
	DialRetries int
	DialBackoff time.Duration
	// HeartbeatTimeout and ConfirmWindow parameterize failure detection
	// (membership.Config): a back-end silent past HeartbeatTimeout — its
	// periodic DISKQ reports double as heartbeats — turns Suspect, and a
	// Suspect node unheard for ConfirmWindow is confirmed Down. Zero
	// keeps the membership package defaults.
	HeartbeatTimeout time.Duration
	ConfirmWindow    time.Duration
	// HealthInterval is the failure detector's evaluation cadence
	// (membership.Table.Tick); zero takes DefaultHealthInterval.
	HealthInterval time.Duration
	// RetryBudget caps re-dispatch attempts per relayed request after its
	// serving node is confirmed Down; past it the client connection is
	// closed (the connection-close fallback). Zero takes
	// DefaultRetryBudget; negative means no retries.
	RetryBudget int

	// Frontends is the size of the scale-out front-end tier this node
	// belongs to; 0 or 1 means the paper's single front-end (and every
	// field below is ignored). With a plural tier, each front-end runs
	// its own dispatch engine over a networked dstate store and the
	// members exchange dispatch state peer-to-peer (see peers.go).
	Frontends int
	// FEID is this front-end's index in [0, Frontends). Members of one
	// tier must use distinct IDs: the ID names this node in the peer
	// protocol and salts its connection-ID space so wire IDs from
	// different front-ends never collide at a shared back-end.
	FEID int
	// State selects the tier's dispatch-state backend: sharded
	// (dstate.ModeSharded) or replicated (dstate.ModeReplicated).
	// A plural tier must choose one; local is single-front-end only.
	State dstate.Mode
	// PeerListen is the peer-protocol listen address; empty means an
	// ephemeral loopback port (read it back with PeerAddr).
	PeerListen string
	// SyncInterval is the replicated store's sync period — the tier's
	// staleness bound: a mapping write on one front-end is visible on
	// every peer within one interval plus delivery. Zero takes
	// DefaultSyncInterval; ignored by the sharded store (forwarding is
	// synchronous, there is no staleness to bound).
	SyncInterval time.Duration
	// StateSeed salts the shard-ownership ring; every member of one tier
	// must agree (zero takes DefaultStateSeed).
	StateSeed uint64
}

// Default knobs for the elastic-membership machinery.
const (
	DefaultDialRetries    = 3
	DefaultDialBackoff    = 50 * time.Millisecond
	DefaultHealthInterval = 100 * time.Millisecond
	DefaultRetryBudget    = 2
)

// BackendEndpoints tells the front-end how to reach one back-end: the TCP
// control address and the UNIX handoff socket path. Peer addresses are the
// back-ends' business (SetPeers), not the front-end's.
type BackendEndpoints struct {
	Ctrl    string
	Handoff string
}

// beLink is the front-end's connection bundle to one back-end.
type beLink struct {
	id core.NodeID

	ctrlMu sync.Mutex
	ctrl   net.Conn

	hoMu    sync.Mutex
	handoff *net.UnixConn

	data net.Conn // relay data connection (reads only at FE)
}

// FrontEnd is the running front-end node: client listener, dispatch engine,
// forwarding module, and per-back-end control sessions. Dispatch runs
// concurrently per client connection — the engine's policy state is safe
// for parallel callers, so there is no front-end-wide policy lock.
type FrontEnd struct {
	cfg       FrontEndConfig
	ln        net.Listener
	links     []*beLink
	endpoints []BackendEndpoints

	eng *dispatch.Engine
	mem *membership.Table
	// tier is the networked dispatch-state tier view (nil for the
	// single-front-end configuration).
	tier *peerTier

	// sweepCh hands nodes just confirmed Down from the membership
	// listener (which runs under the table lock) to healthLoop, which
	// re-dispatches their in-flight relayed requests.
	sweepCh chan core.NodeID

	// pending tracks relayed requests awaiting their response frame, by
	// (connection, sequence) — the unit of re-dispatch when a node dies.
	pendingMu sync.Mutex
	pending   map[core.ConnID]map[int]*pendingReq

	// unavailable counts connections refused with 503 (no Up back-end);
	// redispatched counts in-flight requests re-sent after a node death.
	unavailable  metrics.Counter
	redispatched metrics.Counter

	// lat is the wall-clock per-request latency histogram behind the
	// /status endpoint, in microseconds from batch completion at the
	// front-end. Relay records end-to-end at response delivery (a
	// re-dispatched request keeps its original start, so the retry delay
	// is in the sample, not dropped); handoff and BE forwarding record at
	// request forward — the front-end never sees those responses — and a
	// 503 refusal records the refusal itself rather than vanishing from
	// the distribution.
	lat *core.LatencyHist

	// relayConns routes relay frames back to client connections.
	relayMu    sync.Mutex
	relayConns map[core.ConnID]*relayConn

	// busyNanos accumulates dispatcher + forwarding-module processing
	// time for the Section 8.2 front-end utilization figure.
	busyNanos atomic.Int64
	started   time.Time

	conns atomic.Int64

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// relayConn is the reordering buffer for one relayed client connection.
type relayConn struct {
	mu      sync.Mutex
	out     net.Conn
	nextSeq int
	pending map[int][]byte
}

// NewFrontEnd starts the front-end: it listens for clients on loopback and
// connects control (and, for relay, data) sessions plus handoff sockets to
// every back-end endpoint. Endpoints may belong to in-process Backends or
// to separate phttp-backend processes on the same machine (the handoff
// mechanism requires a shared kernel; see DESIGN.md §4.2).
func NewFrontEnd(cfg FrontEndConfig, backends []BackendEndpoints) (*FrontEnd, error) {
	if err := validateFEConfig(cfg, len(backends)); err != nil {
		return nil, err
	}
	spec := dispatch.Spec{
		Policy:        cfg.Policy,
		Nodes:         cfg.Nodes,
		Options:       cfg.PolicyOptions,
		CacheBytes:    cfg.CacheBytes,
		Params:        cfg.Params,
		Mechanism:     cfg.Mechanism,
		MaxTargets:    cfg.MaxTargets,
		InternStripes: cfg.InternStripes,
	}
	var eng *dispatch.Engine
	var tier *peerTier
	var err error
	if cfg.Frontends > 1 {
		// Scale-out tier member: its connection-ID space is salted by its
		// front-end index (40 bits leave room for a trillion connections
		// per member), its policy replica/shard sits behind a networked
		// dstate store, and the engine dispatches through that store.
		spec.ConnIDBase = int64(cfg.FEID) << 40
		pol, berr := dispatch.Build(spec)
		if berr != nil {
			return nil, berr
		}
		if tier, err = newPeerTier(cfg, pol); err != nil {
			return nil, err
		}
		if eng, err = dispatch.NewEngineWithStore(spec, tier); err != nil {
			tier.Close()
			return nil, err
		}
		tier.finishInit(eng.Interner())
	} else if eng, err = dispatch.NewEngine(spec); err != nil {
		return nil, err
	}
	fe := &FrontEnd{
		cfg:        cfg,
		tier:       tier,
		eng:        eng,
		endpoints:  append([]BackendEndpoints(nil), backends...),
		relayConns: make(map[core.ConnID]*relayConn),
		pending:    make(map[core.ConnID]map[int]*pendingReq),
		sweepCh:    make(chan core.NodeID, 4*cfg.Nodes),
		lat:        core.NewLatencyHist(),
		started:    time.Now(),
		closed:     make(chan struct{}),
	}
	fe.mem = membership.New(cfg.Nodes, membership.Config{
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		ConfirmWindow:    cfg.ConfirmWindow,
	}, time.Now())
	fe.mem.OnChange(fe.onMembership)
	listen := cfg.ClientListen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	if fe.ln, err = net.Listen("tcp", listen); err != nil {
		return nil, fmt.Errorf("cluster: frontend listen: %w", err)
	}
	// One refused back-end must not abort the whole front-end: each slot
	// gets bounded retries with backoff, an unreachable (or vacant:
	// empty Ctrl) slot starts Down, and start fails only when zero
	// back-ends are reachable.
	reachable := 0
	var lastErr error
	for i, ep := range backends {
		id := core.NodeID(i)
		link, err := fe.dialRetry(id, ep)
		if err != nil {
			lastErr = err
			link = &beLink{id: id}
			fe.mem.MarkDown(id)
		} else {
			reachable++
			fe.mem.MarkUp(id, time.Now())
		}
		fe.links = append(fe.links, link)
	}
	if reachable == 0 {
		fe.Close()
		return nil, fmt.Errorf("cluster: no reachable back-end among %d: %w", len(backends), lastErr)
	}
	fe.wg.Add(1)
	go fe.acceptLoop()
	fe.wg.Add(1)
	go fe.healthLoop()
	if cfg.MaintainInterval > 0 {
		fe.wg.Add(1)
		go fe.maintainLoop()
	}
	return fe, nil
}

// DefaultMaintainInterval is the wall-clock maintenance period the
// calibrated configurations use.
const DefaultMaintainInterval = 5 * time.Second

// maintainLoop bounds maintenance staleness on an idle front-end: each
// tick it runs Engine.Maintain unless a maintenance pass already ran
// since the previous tick — a busy front-end's close-driven maintenance
// (every Spec.MaintainEvery closes) needs no second pass from here, but
// a slow trickle of closes that never reaches MaintainEvery must not
// suppress the wall-clock bound, so the skip keys on Maintains, not on
// close activity.
func (fe *FrontEnd) maintainLoop() {
	defer fe.wg.Done()
	ticker := time.NewTicker(fe.cfg.MaintainInterval)
	defer ticker.Stop()
	last := fe.eng.Maintains()
	for {
		select {
		case <-fe.closed:
			return
		case <-ticker.C:
			if n := fe.eng.Maintains(); n != last {
				last = n
				continue
			}
			done := fe.trackDispatch()
			fe.eng.Maintain()
			done()
			last = fe.eng.Maintains()
		}
	}
}

func validateFEConfig(cfg FrontEndConfig, backends int) error {
	if cfg.Nodes != backends {
		return fmt.Errorf("cluster: config says %d nodes but %d back-ends supplied", cfg.Nodes, backends)
	}
	switch cfg.Mechanism {
	case core.SingleHandoff, core.BEForwarding, core.RelayFrontEnd:
	default:
		return fmt.Errorf("cluster: prototype does not implement mechanism %v (simulator only)", cfg.Mechanism)
	}
	// Policy names are validated by the dispatch registry when the engine
	// is built; no second list of valid names lives here.
	if cfg.Frontends > 1 {
		if cfg.FEID < 0 || cfg.FEID >= cfg.Frontends {
			return fmt.Errorf("cluster: front-end id %d outside tier [0,%d)", cfg.FEID, cfg.Frontends)
		}
		switch cfg.State {
		case dstate.ModeSharded:
			// The sharded prototype forwards only connection-open
			// transactions to shard owners; a per-request mechanism would
			// need per-request forwarding, which the prototype does not
			// implement (DESIGN.md §18).
			if cfg.Mechanism != core.SingleHandoff {
				return fmt.Errorf("cluster: sharded dispatch state requires the single-handoff mechanism (got %v)", cfg.Mechanism)
			}
		case dstate.ModeReplicated:
		default:
			return fmt.Errorf("cluster: a %d-front-end tier needs state=sharded or state=replicated (got %v)", cfg.Frontends, cfg.State)
		}
	} else if cfg.State != dstate.ModeLocal {
		return fmt.Errorf("cluster: state=%v needs frontends > 1 (a single front-end is always local)", cfg.State)
	}
	return nil
}

// dialRetry dials one back-end with bounded retries and linear backoff.
// A vacant slot (empty Ctrl) fails immediately: it is provisioned
// capacity awaiting AddBackend, not a dial target.
func (fe *FrontEnd) dialRetry(id core.NodeID, ep BackendEndpoints) (*beLink, error) {
	if ep.Ctrl == "" {
		return nil, fmt.Errorf("cluster: backend slot %v is vacant (no control endpoint)", id)
	}
	retries := fe.cfg.DialRetries
	if retries == 0 {
		retries = DefaultDialRetries
	} else if retries < 0 {
		retries = 0
	}
	backoff := fe.cfg.DialBackoff
	if backoff <= 0 {
		backoff = DefaultDialBackoff
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * backoff)
		}
		link, err := fe.dial(id, ep)
		if err == nil {
			return link, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// dial establishes the control session (HELLO CTRL), the relay data session
// when relaying, and the handoff socket to one back-end.
func (fe *FrontEnd) dial(id core.NodeID, ep BackendEndpoints) (*beLink, error) {
	link := &beLink{id: id}
	ctrl, err := net.Dial("tcp", ep.Ctrl)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial backend %v control: %w", id, err)
	}
	if _, err := io.WriteString(ctrl, "HELLO CTRL\n"); err != nil {
		ctrl.Close()
		return nil, err
	}
	link.ctrl = ctrl
	fe.wg.Add(1)
	go func() {
		defer fe.wg.Done()
		fe.ctrlReadLoop(link, ctrl)
	}()

	if fe.cfg.Mechanism == core.RelayFrontEnd {
		data, err := net.Dial("tcp", ep.Ctrl)
		if err != nil {
			ctrl.Close()
			return nil, fmt.Errorf("cluster: dial backend %v data: %w", id, err)
		}
		if _, err := io.WriteString(data, "HELLO DATA\n"); err != nil {
			ctrl.Close()
			data.Close()
			return nil, err
		}
		link.data = data
		fe.wg.Add(1)
		go func() {
			defer fe.wg.Done()
			fe.relayReadLoop(link, data)
		}()
	} else {
		raddr, err := net.ResolveUnixAddr("unix", ep.Handoff)
		if err != nil {
			ctrl.Close()
			return nil, err
		}
		ho, err := net.DialUnix("unix", nil, raddr)
		if err != nil {
			ctrl.Close()
			return nil, fmt.Errorf("cluster: dial backend %v handoff: %w", id, err)
		}
		link.handoff = ho
	}
	return link, nil
}

// Addr returns the client-facing listen address.
func (fe *FrontEnd) Addr() string { return fe.ln.Addr().String() }

// PeerAddr returns the peer-protocol listen address of a tier member
// ("" for a single front-end). Tier bring-up collects every member's
// PeerAddr and hands the full slate to each ConnectPeers.
func (fe *FrontEnd) PeerAddr() string {
	if fe.tier == nil {
		return ""
	}
	return fe.tier.Addr()
}

// ConnectPeers links this tier member to its peers: addrs[i] is front-end
// i's PeerAddr (our own slot is ignored). Call it on every member once
// all listeners exist — two-phase bring-up avoids ordering the members.
// Replicated members start their sync loop here. No-op on a single
// front-end.
func (fe *FrontEnd) ConnectPeers(addrs []string) error {
	if fe.tier == nil {
		return nil
	}
	return fe.tier.connect(addrs)
}

// RemoteOpens returns connection opens whose dispatch decision was made
// by a peer shard owner (0 for single front-ends and replicated tiers,
// where every decision is local).
func (fe *FrontEnd) RemoteOpens() int64 {
	if fe.tier == nil {
		return 0
	}
	return fe.tier.remoteOpens.Load()
}

// TierSyncs returns completed replication rounds (0 without a tier).
func (fe *FrontEnd) TierSyncs() int64 {
	if fe.tier == nil {
		return 0
	}
	return fe.tier.Syncs()
}

// TierFallbacks returns state transactions decided locally because the
// owning peer was unreachable (0 without a tier).
func (fe *FrontEnd) TierFallbacks() int64 {
	if fe.tier == nil {
		return 0
	}
	return fe.tier.Fallbacks()
}

// RemoteConnsSeen reports whether the local load view includes any peer
// connection state — i.e. whether at least one replication round carrying
// a non-idle load vector has been applied here.
func (fe *FrontEnd) RemoteConnsSeen() bool {
	loads := fe.eng.Policy().Loads()
	for n := 0; n < fe.cfg.Nodes; n++ {
		if loads.Conns(core.NodeID(n)) > loads.LocalConns(core.NodeID(n)) {
			return true
		}
	}
	return false
}

// Policy exposes the dispatcher's policy (metrics, tests).
func (fe *FrontEnd) Policy() core.Policy { return fe.eng.Policy() }

// Engine exposes the dispatch engine (interner diagnostics, soak tests).
func (fe *FrontEnd) Engine() *dispatch.Engine { return fe.eng }

// PolicyName returns the canonical dispatch-registry name of the running
// policy ("wrr", "lard", "lardr" or "extlard").
func (fe *FrontEnd) PolicyName() string { return fe.eng.PolicyName() }

// Requests returns the number of client requests assigned by the dispatch
// engine (the engine's counter is authoritative; the front-end keeps no
// duplicate).
func (fe *FrontEnd) Requests() int64 { return fe.eng.Requests() }

// Connections returns the number of client connections accepted. This can
// exceed the engine's opened-connection count: a client that connects but
// never sends a request is accepted yet never dispatched.
func (fe *FrontEnd) Connections() int64 { return fe.conns.Load() }

// Utilization returns the dispatcher's busy time as a fraction of wall time
// since start — the prototype analogue of the paper's front-end CPU
// utilization ("about 60% at six back-ends" on 300 MHz hardware). Dispatch
// now runs concurrently per client connection, so busy time sums across
// goroutines and the figure is an aggregate occupancy (clamped at 1), no
// longer the occupancy of one serial resource. On modern hardware the
// absolute number is small; the reproducible claim is its roughly linear
// growth with cluster size, which is what bounds how many back-ends one
// front-end supports.
func (fe *FrontEnd) Utilization() float64 {
	wall := time.Since(fe.started).Nanoseconds()
	if wall <= 0 {
		return 0
	}
	u := float64(fe.busyNanos.Load()) / float64(wall)
	if u > 1 {
		u = 1
	}
	return u
}

// Close shuts the front-end down.
func (fe *FrontEnd) Close() {
	fe.closeMu.Do(func() {
		close(fe.closed)
		if fe.tier != nil {
			fe.tier.Close()
		}
		if fe.ln != nil {
			fe.ln.Close()
		}
		for _, l := range fe.links {
			l.ctrlMu.Lock()
			if l.ctrl != nil {
				l.ctrl.Close()
			}
			if l.data != nil {
				l.data.Close()
			}
			l.ctrlMu.Unlock()
			l.hoMu.Lock()
			if l.handoff != nil {
				l.handoff.Close()
			}
			l.hoMu.Unlock()
		}
	})
	fe.wg.Wait()
}

// ctrlReadLoop consumes back-end → front-end control traffic (disk queue
// reports) and feeds the policy. The conn is passed explicitly —
// AddBackend swaps link conns in place, and a loop must drain exactly the
// conn it was started for. Each DISKQ report doubles as a heartbeat; a
// read error is liveness evidence and marks the node Suspect.
func (fe *FrontEnd) ctrlReadLoop(link *beLink, conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		msg, err := readCtrl(br)
		if err != nil {
			fe.suspect(link.id)
			return
		}
		if msg.Kind == "DISKQ" {
			fe.mem.Heartbeat(link.id, time.Now())
			done := fe.trackDispatch()
			fe.eng.ReportDiskQueue(link.id, msg.Depth)
			done()
		}
	}
}

// relayReadLoop consumes relay frames from one back-end and forwards them
// to the owning client connection in sequence order.
func (fe *FrontEnd) relayReadLoop(link *beLink, data net.Conn) {
	defer fe.suspect(link.id)
	br := bufio.NewReaderSize(data, 64<<10)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) != 4 || fields[0] != "RESP" {
			return
		}
		id, err1 := strconv.ParseInt(fields[1], 10, 64)
		seq, err2 := strconv.Atoi(fields[2])
		length, err3 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || length < 0 {
			return
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		fe.deliverRelay(core.ConnID(id), seq, buf)
	}
}

// deliverRelay writes the frame to the client in order, buffering
// out-of-order responses of a pipelined batch served by different nodes.
func (fe *FrontEnd) deliverRelay(id core.ConnID, seq int, frame []byte) {
	var started time.Time
	fe.pendingMu.Lock()
	if m := fe.pending[id]; m != nil {
		if p := m[seq]; p != nil {
			started = p.start
		}
		delete(m, seq)
		if len(m) == 0 {
			delete(fe.pending, id)
		}
	}
	fe.pendingMu.Unlock()
	if !started.IsZero() {
		// End-to-end relay latency; a re-dispatched request keeps the
		// start of its original batch, so retries lengthen the sample.
		fe.lat.Record(time.Since(started).Microseconds())
	}
	fe.relayMu.Lock()
	rc := fe.relayConns[id]
	fe.relayMu.Unlock()
	if rc == nil {
		return // connection already closed
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.pending == nil {
		rc.pending = make(map[int][]byte)
	}
	rc.pending[seq] = frame
	for {
		next, ok := rc.pending[rc.nextSeq]
		if !ok {
			return
		}
		delete(rc.pending, rc.nextSeq)
		rc.nextSeq++
		if rc.out != nil {
			if _, err := rc.out.Write(next); err != nil {
				rc.out = nil
			}
		}
	}
}

// acceptLoop admits client connections.
func (fe *FrontEnd) acceptLoop() {
	defer fe.wg.Done()
	for {
		conn, err := fe.ln.Accept()
		if err != nil {
			return
		}
		fe.conns.Add(1)
		fe.wg.Add(1)
		go func() {
			defer fe.wg.Done()
			fe.serveClient(conn)
		}()
	}
}

// feConn tracks one client connection at the front-end.
type feConn struct {
	id    core.ConnID
	ec    *dispatch.Conn // nil until openConn admits the connection
	conn  net.Conn
	br    *bufio.Reader
	relay *relayConn

	// batchStart is when the current pipelined batch finished arriving —
	// the latency clock's zero, matching the simulator's delay
	// definition. Owner-goroutine only (stamped by readBatch; relayed
	// requests copy it into their pendingReq before publication).
	batchStart time.Time

	// reqNodes is the set of back-ends that received requests, for CLOSE
	// fan-out in relay mode. mu guards it: the health loop's re-dispatch
	// touches it from outside the connection's own goroutine. seq stays
	// owner-only (re-dispatch resends already-sequenced lines).
	mu       sync.Mutex
	reqNodes map[core.NodeID]bool
	seq      int
	// pendingMove is a re-dispatch-requested handling change (NoNode
	// when none): the health loop records it, and the connection's own
	// goroutine applies it — engine Conn state is owner-serialized.
	pendingMove core.NodeID
}

// setReqNode records that dest received traffic for this connection and
// reports whether it already had.
func (c *feConn) setReqNode(dest core.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	had := c.reqNodes[dest]
	c.reqNodes[dest] = true
	return had
}

// serveClient runs the forwarding-module read loop for one client
// connection: parse requests, group pipelined bursts into batches, dispatch
// through the policy, tag and forward to back-ends.
func (fe *FrontEnd) serveClient(conn net.Conn) {
	c := &feConn{
		conn:        conn,
		br:          bufio.NewReaderSize(conn, 16<<10),
		reqNodes:    make(map[core.NodeID]bool),
		pendingMove: core.NoNode,
	}
	defer fe.closeClient(c)

	opened := false
	for {
		batch, reqs, err := fe.readBatch(c)
		if err != nil || len(batch) == 0 {
			return
		}
		err = fe.serveBatch(c, batch, reqs, &opened)
		// The parse-time interner references are dropped once the batch
		// has been dispatched (or abandoned): the mapping holds its own
		// references and back-ends address content by target string, so
		// under a capped interner unpopular URLs become recyclable the
		// moment their requests are on the wire.
		fe.eng.ReleaseBatch(batch)
		if err != nil {
			return
		}
	}
}

// serveBatch admits the connection on its first batch and dispatches the
// batch's requests.
func (fe *FrontEnd) serveBatch(c *feConn, batch core.Batch, reqs []*httpmsg.Request, opened *bool) error {
	if !*opened {
		if err := fe.openConn(c, batch[0]); err != nil {
			return err
		}
		*opened = true
	}
	return fe.dispatchBatch(c, batch, reqs)
}

// trackDispatch accounts the time spent in a dispatch-engine call toward
// the front-end utilization figure. Unlike the old polMu design, dispatch
// work is not serialized: client handlers call the engine concurrently and
// the busy time simply accumulates across goroutines.
func (fe *FrontEnd) trackDispatch() func() {
	t0 := time.Now()
	return func() {
		fe.busyNanos.Add(time.Since(t0).Nanoseconds())
	}
}

// readBatch reads one pipelined batch: the first request blocks until the
// idle timeout; subsequent requests are taken while already buffered or
// arriving within the batch window.
func (fe *FrontEnd) readBatch(c *feConn) (core.Batch, []*httpmsg.Request, error) {
	idle := fe.cfg.IdleTimeout
	if idle <= 0 {
		idle = 15 * time.Second
	}
	window := fe.cfg.BatchWindow
	if window <= 0 {
		window = 2 * time.Millisecond
	}

	in := fe.eng.Interner()
	c.conn.SetReadDeadline(time.Now().Add(idle))
	first, err := httpmsg.ReadRequestInterned(c.br, in)
	if err != nil {
		return nil, nil, err
	}
	batch := core.Batch{toRequest(first)}
	reqs := []*httpmsg.Request{first}
	for {
		if c.br.Buffered() == 0 {
			// Give closely spaced pipelined requests a brief chance to
			// land, then call the batch complete. The wait itself is
			// idle time, not dispatcher work.
			c.conn.SetReadDeadline(time.Now().Add(window))
			if _, err := c.br.Peek(1); err != nil {
				break
			}
		}
		c.conn.SetReadDeadline(time.Now().Add(window))
		req, err := httpmsg.ReadRequestInterned(c.br, in)
		if err != nil {
			break
		}
		batch = append(batch, toRequest(req))
		reqs = append(reqs, req)
	}
	c.conn.SetReadDeadline(time.Time{})
	c.batchStart = time.Now()
	return batch, reqs, nil
}

// toRequest converts a parsed request into the policy's vocabulary,
// carrying the parse-time interned ID so dispatch never hashes the target
// string. The response size is not known to a real front-end; LARD only
// uses it to size mapping entries, so the dispatcher estimates with a
// nominal value.
func toRequest(r *httpmsg.Request) core.Request {
	return core.Request{Target: core.Target(r.Target), ID: r.ID, Size: nominalMappingSize}
}

// nominalMappingSize is the per-target size estimate used by the
// dispatcher's mapping model; the paper's front-end likewise has no
// knowledge of response sizes when requests arrive.
const nominalMappingSize = 8 << 10

// unavailableResponse is the answer when no back-end is Up: the client
// should back off briefly and retry, per the Retry-After hint.
const unavailableResponse = "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"

// openConn assigns the handling node for the first request and performs
// the handoff (or registers the relay route).
func (fe *FrontEnd) openConn(c *feConn, first core.Request) error {
	if !fe.eng.HasUp() {
		fe.unavailable.Inc()
		io.WriteString(c.conn, unavailableResponse)
		fe.lat.Record(time.Since(c.batchStart).Microseconds())
		return fmt.Errorf("cluster: no Up back-end")
	}
	done := fe.trackDispatch()
	ec, handling := fe.eng.ConnOpen(first)
	done()
	c.ec = ec
	c.id = ec.ID()

	if fe.cfg.Mechanism == core.RelayFrontEnd {
		rc := &relayConn{out: c.conn}
		c.relay = rc
		fe.relayMu.Lock()
		fe.relayConns[c.id] = rc
		fe.relayMu.Unlock()
		return nil
	}

	tcp, ok := c.conn.(*net.TCPConn)
	if !ok {
		return fmt.Errorf("cluster: client connection is %T, cannot hand off", c.conn)
	}
	f, err := tcp.File()
	if err != nil {
		return fmt.Errorf("cluster: dup client socket: %w", err)
	}
	defer f.Close()
	link := fe.links[handling]
	link.hoMu.Lock()
	if link.handoff == nil {
		link.hoMu.Unlock()
		return fmt.Errorf("cluster: backend %v has no handoff socket", handling)
	}
	err = SendConnFD(link.handoff, c.id, f)
	link.hoMu.Unlock()
	if err != nil {
		fe.suspect(handling)
		return err
	}
	c.setReqNode(handling)
	return nil
}

// dispatchBatch assigns a batch and forwards the tagged requests.
func (fe *FrontEnd) dispatchBatch(c *feConn, batch core.Batch, reqs []*httpmsg.Request) error {
	c.mu.Lock()
	move := c.pendingMove
	c.pendingMove = core.NoNode
	c.mu.Unlock()
	if move != core.NoNode && fe.eng.NodeIsDown(c.ec.Handling()) {
		done := fe.trackDispatch()
		fe.eng.MoveConn(c.ec, move)
		done()
	}
	done := fe.trackDispatch()
	assignments := fe.eng.AssignBatch(c.ec, batch)
	handling := c.ec.Handling()
	done()

	for i, a := range assignments {
		req := reqs[i]
		keep := req.KeepAlive()
		var line string
		var dest core.NodeID
		relay := fe.cfg.Mechanism == core.RelayFrontEnd
		switch {
		case relay:
			// Each request goes directly to its assigned node.
			dest = a.Node
			line = formatReq(c.id, c.seq, req.Proto, keep, core.NoNode, core.Target(req.Target))
		case a.Forward:
			// Tag the request: the handling node must fetch it from
			// the assigned node.
			dest = handling
			line = formatReq(c.id, c.seq, req.Proto, keep, a.Node, core.Target(req.Target))
		default:
			dest = handling
			line = formatReq(c.id, c.seq, req.Proto, keep, core.NoNode, core.Target(req.Target))
		}
		seq := c.seq
		c.seq++
		if !c.setReqNode(dest) && relay {
			fe.sendCtrl(dest, formatRelay(c.id))
		}
		if relay {
			// Register before sending: a node that dies between the
			// write and its response must find the request sweepable.
			fe.addPending(c, seq, dest, line)
			if err := fe.sendCtrl(dest, line); err != nil {
				// Write failure is liveness evidence; the request stays
				// pending and is re-dispatched once the node is
				// confirmed Down.
				fe.suspect(dest)
			}
			continue
		}
		if err := fe.sendCtrl(dest, line); err != nil {
			// With the client socket handed off (or forwarding through
			// the handling node), the FE cannot replay the request
			// elsewhere — connection close is the fallback.
			fe.suspect(dest)
			return err
		}
		// Handoff / BE forwarding: responses bypass the front-end, so the
		// observable latency here is batch completion → request forwarded.
		fe.lat.Record(time.Since(c.batchStart).Microseconds())
	}
	return nil
}

// sendCtrl writes one control message to a back-end. A slot with no live
// control link (unreachable at start, or torn down by AddBackend mid-swap)
// fails fast instead of dereferencing a nil conn.
func (fe *FrontEnd) sendCtrl(n core.NodeID, line string) error {
	link := fe.links[n]
	link.ctrlMu.Lock()
	defer link.ctrlMu.Unlock()
	if link.ctrl == nil {
		return fmt.Errorf("cluster: backend %v not connected", n)
	}
	_, err := io.WriteString(link.ctrl, line)
	return err
}

// closeClient tears one client connection down on EOF, error or idle
// timeout: back-ends are told to release it and the policy frees its load.
func (fe *FrontEnd) closeClient(c *feConn) {
	c.mu.Lock()
	nodes := make([]core.NodeID, 0, len(c.reqNodes))
	for n := range c.reqNodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fe.sendCtrl(n, formatClose(c.id))
	}
	fe.pendingMu.Lock()
	delete(fe.pending, c.id)
	fe.pendingMu.Unlock()
	if c.relay != nil {
		fe.relayMu.Lock()
		delete(fe.relayConns, c.id)
		fe.relayMu.Unlock()
	}
	if c.ec != nil {
		done := fe.trackDispatch()
		fe.eng.ConnClose(c.ec)
		done()
	}
	c.conn.Close()
}

// HandoffSocketDir creates a private directory for handoff sockets.
func HandoffSocketDir() (string, error) {
	return os.MkdirTemp("", "phttp-handoff-")
}
