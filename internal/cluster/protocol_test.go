package cluster

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"phttp/internal/core"
	"phttp/internal/server"
)

func TestCtrlReqRoundTrip(t *testing.T) {
	line := formatReq(42, 7, "HTTP/1.1", true, 3, "/docs/page.html")
	m, err := parseCtrl(strings.TrimSpace(line))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != "REQ" || m.Conn != 42 || m.Seq != 7 || m.Proto != "HTTP/1.1" ||
		!m.Keep || m.Remote != 3 || m.Target != "/docs/page.html" {
		t.Errorf("parsed %+v", m)
	}
}

func TestCtrlReqLocalServe(t *testing.T) {
	line := formatReq(1, 0, "HTTP/1.0", false, core.NoNode, "/x")
	m, err := parseCtrl(strings.TrimSpace(line))
	if err != nil {
		t.Fatal(err)
	}
	if m.Remote != core.NoNode || m.Keep {
		t.Errorf("parsed %+v", m)
	}
}

func TestCtrlCloseRelayDiskQ(t *testing.T) {
	m, err := parseCtrl("CLOSE 9")
	if err != nil || m.Kind != "CLOSE" || m.Conn != 9 {
		t.Errorf("CLOSE parse: %+v, %v", m, err)
	}
	m, err = parseCtrl("RELAY 11")
	if err != nil || m.Kind != "RELAY" || m.Conn != 11 {
		t.Errorf("RELAY parse: %+v, %v", m, err)
	}
	m, err = parseCtrl("DISKQ 5")
	if err != nil || m.Kind != "DISKQ" || m.Depth != 5 {
		t.Errorf("DISKQ parse: %+v, %v", m, err)
	}
}

func TestCtrlMalformed(t *testing.T) {
	bad := []string{
		"", "BOGUS 1", "REQ 1 2", "REQ x 0 HTTP/1.1 1 - /t",
		"REQ 1 y HTTP/1.1 1 - /t", "REQ 1 2 HTTP/1.1 1 z /t",
		"CLOSE", "CLOSE x", "DISKQ", "DISKQ x", "RELAY",
	}
	for _, line := range bad {
		if _, err := parseCtrl(line); err == nil {
			t.Errorf("accepted malformed control message %q", line)
		}
	}
}

// Property: REQ messages round trip for arbitrary IDs, sequence numbers and
// whitespace-free targets.
func TestCtrlReqRoundTripProperty(t *testing.T) {
	f := func(id uint32, seq uint16, keep bool, remote uint8, pathSeed uint8) bool {
		r := core.NodeID(remote % 16)
		if remote%5 == 0 {
			r = core.NoNode
		}
		target := core.Target("/t" + strings.Repeat("q", int(pathSeed%40)+1))
		line := formatReq(core.ConnID(id), int(seq), "HTTP/1.1", keep, r, target)
		m, err := parseCtrl(strings.TrimSpace(line))
		if err != nil {
			return false
		}
		return m.Conn == core.ConnID(id) && m.Seq == int(seq) &&
			m.Keep == keep && m.Remote == r && m.Target == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFDPassing exercises the handoff primitive end to end: a TCP socket's
// descriptor crosses a UNIX socketpair; the receiver writes to the client
// through it while the sender keeps reading — the paper's control/data
// split.
func TestFDPassing(t *testing.T) {
	// Client <-> "front-end" TCP connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	clientDone := make(chan string, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			clientDone <- "dial: " + err.Error()
			return
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("ping\n")); err != nil {
			clientDone <- err.Error()
			return
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			clientDone <- err.Error()
			return
		}
		clientDone <- line
	}()
	feConn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer feConn.Close()

	// UNIX socketpair standing in for the FE->BE handoff channel.
	hoDir := t.TempDir()
	uaddr, _ := net.ResolveUnixAddr("unix", hoDir+"/ho.sock")
	uln, err := net.ListenUnix("unix", uaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer uln.Close()
	sendSide, err := net.DialUnix("unix", nil, uaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sendSide.Close()
	recvSide, err := uln.AcceptUnix()
	if err != nil {
		t.Fatal(err)
	}
	defer recvSide.Close()

	// Hand the client socket off.
	f, err := feConn.(*net.TCPConn).File()
	if err != nil {
		t.Fatal(err)
	}
	if err := SendConnFD(sendSide, 77, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	id, beConn, err := RecvConnFD(recvSide)
	if err != nil {
		t.Fatal(err)
	}
	defer beConn.Close()
	if id != 77 {
		t.Errorf("handoff conn id = %d, want 77", id)
	}

	// The "front-end" reads the request on its descriptor...
	line, err := bufio.NewReader(feConn).ReadString('\n')
	if err != nil || line != "ping\n" {
		t.Fatalf("FE read %q, %v", line, err)
	}
	// ...and the "back-end" answers directly on the handed-off one.
	if _, err := beConn.Write([]byte("pong\n")); err != nil {
		t.Fatal(err)
	}
	if got := <-clientDone; got != "pong\n" {
		t.Errorf("client received %q, want pong", got)
	}
}

func TestDocStoreBasics(t *testing.T) {
	catalog := map[core.Target]int64{"/a": 1000, "/b": 2000}
	ds := NewDocStore(catalog, 10<<10, testDisk(), 1000)
	if _, err := ds.Open("/missing"); err == nil {
		t.Error("Open of unknown target succeeded")
	}
	sz, err := ds.Open("/a")
	if err != nil || sz != 1000 {
		t.Fatalf("Open(/a) = %d, %v", sz, err)
	}
	if h, m := ds.Counters(); h != 0 || m != 1 {
		t.Errorf("counters %d/%d after cold read, want 0/1", h, m)
	}
	ds.Open("/a")
	if h, _ := ds.Counters(); h != 1 {
		t.Error("second read of /a was not a hit")
	}
	if ds.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", ds.HitRate())
	}
}

func TestDocStoreEviction(t *testing.T) {
	catalog := map[core.Target]int64{"/a": 800, "/b": 800}
	ds := NewDocStore(catalog, 1000, testDisk(), 1000)
	ds.Open("/a")
	ds.Open("/b") // evicts /a
	ds.Open("/a") // must miss again
	if h, m := ds.Counters(); h != 0 || m != 3 {
		t.Errorf("counters %d/%d, want 0 hits 3 misses", h, m)
	}
}

func TestContentDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteContent(&a, "/x", 5000); err != nil {
		t.Fatal(err)
	}
	if err := WriteContent(&b, "/x", 5000); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("content not deterministic")
	}
	var c strings.Builder
	WriteContent(&c, "/y", 5000)
	if a.String() == c.String() {
		t.Error("different targets produced identical content")
	}
	if int64(a.Len()) != 5000 {
		t.Errorf("content length %d, want 5000", a.Len())
	}
	for i := int64(0); i < 64; i++ {
		if a.String()[i] != ContentByte("/x", i) {
			t.Fatalf("ContentByte mismatch at %d", i)
		}
	}
}

// testDisk returns a tiny disk model so unit tests never sleep long.
func testDisk() server.DiskParams {
	return server.DiskParams{Position: 100, TransferPer512: 1}
}
