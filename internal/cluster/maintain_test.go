package cluster_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/httpmsg"
)

// TestIdleFrontEndMaintainTicker reproduces the maintenance-staleness bug
// and pins the fix. A single persistent connection pipelines one large
// batch of never-repeated URLs: every target is referenced at once while
// the batch is parsed and in flight, so the capped interner overflows past
// MaxTargets (the documented behavior). After dispatch the references
// drain into a large limbo — and then the front-end goes idle. Close-driven
// maintenance (Spec.MaintainEvery connection closes) never fires because
// nothing closes; before the wall-clock ticker existed, the oversized
// table persisted indefinitely. The ticker must shrink it back to the cap
// without any further traffic.
func TestIdleFrontEndMaintainTicker(t *testing.T) {
	const (
		maxTargets = 128
		uniqueURLs = 600
	)
	catalog := make(map[core.Target]int64, uniqueURLs)
	targets := make([]core.Target, uniqueURLs)
	for i := range targets {
		targets[i] = core.Target(fmt.Sprintf("/burst/%04d", i))
		catalog[targets[i]] = 512
	}

	cfg := cluster.DefaultConfig(2, catalog)
	cfg.Policy = "lard"
	cfg.Mechanism = core.SingleHandoff
	cfg.CacheBytes = 256 << 10 // 32 mapping entries per node: held refs stay far below the cap
	cfg.MaxTargets = maxTargets
	cfg.SimulateCPU = false
	cfg.TimeScale = 200
	// A generous batch window keeps the whole pipelined burst in one
	// batch, so all parse-time references overlap; the ticker interval
	// leaves room to observe the bloated table before the first tick.
	cfg.BatchWindow = 200 * time.Millisecond
	cfg.MaintainInterval = time.Second
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	conn, err := net.Dial("tcp", cl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var sb strings.Builder
	for _, tgt := range targets {
		fmt.Fprintf(&sb, "GET %s HTTP/1.1\r\nHost: cluster\r\n\r\n", tgt)
	}
	if _, err := io.WriteString(conn, sb.String()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	for i := 0; i < uniqueURLs; i++ {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		resp, err := httpmsg.ReadResponse(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if _, err := io.CopyN(io.Discard, br, resp.ContentLength); err != nil {
			t.Fatalf("response %d body: %v", i, err)
		}
	}

	// All responses are in, so the batch was dispatched and its parse
	// references released into limbo. Nothing has closed: the table must
	// still be bloated past the cap (this is the bug scenario).
	in := cl.FE.Engine().Interner()
	if got := in.Len(); got <= maxTargets {
		t.Fatalf("burst did not overflow the interner (len %d, cap %d); the scenario needs simultaneous in-flight references", got, maxTargets)
	}
	if closes := cl.FE.Engine().Closes(); closes != 0 {
		t.Fatalf("unexpected connection closes (%d); close-driven maintenance would mask the ticker", closes)
	}

	// The connection stays open and idle. Only the wall-clock ticker can
	// compact now.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if in.Len() <= maxTargets {
			if limbo := in.Limbo(); limbo > maxTargets {
				t.Errorf("limbo %d exceeds cap %d after compaction", limbo, maxTargets)
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("idle front-end never compacted: interner holds %d targets, cap %d", in.Len(), maxTargets)
}

// TestFrontEndNoTickerWhenDisabled pins the opt-out: with a zero
// MaintainInterval the bloated table persists (the pre-fix behavior),
// which is what benchmark configurations that never idle rely on to avoid
// a background goroutine.
func TestFrontEndNoTickerWhenDisabled(t *testing.T) {
	const maxTargets = 64
	catalog := make(map[core.Target]int64)
	var targets []core.Target
	for i := 0; i < 300; i++ {
		tgt := core.Target(fmt.Sprintf("/burst/%04d", i))
		targets = append(targets, tgt)
		catalog[tgt] = 512
	}
	cfg := cluster.DefaultConfig(1, catalog)
	cfg.Policy = "lard"
	cfg.Mechanism = core.SingleHandoff
	cfg.CacheBytes = 256 << 10
	cfg.MaxTargets = maxTargets
	cfg.SimulateCPU = false
	cfg.TimeScale = 200
	cfg.BatchWindow = 200 * time.Millisecond
	cfg.MaintainInterval = 0
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	conn, err := net.Dial("tcp", cl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var sb strings.Builder
	for _, tgt := range targets {
		fmt.Fprintf(&sb, "GET %s HTTP/1.1\r\nHost: cluster\r\n\r\n", tgt)
	}
	if _, err := io.WriteString(conn, sb.String()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	for i := range targets {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		resp, err := httpmsg.ReadResponse(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if _, err := io.CopyN(io.Discard, br, resp.ContentLength); err != nil {
			t.Fatal(err)
		}
	}
	in := cl.FE.Engine().Interner()
	before := in.Len()
	if before <= maxTargets {
		t.Fatalf("burst did not overflow the interner (len %d)", before)
	}
	time.Sleep(300 * time.Millisecond)
	if got := in.Len(); got != before {
		t.Errorf("table changed from %d to %d with the ticker disabled", before, got)
	}
}
