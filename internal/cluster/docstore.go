// Package cluster implements the prototype cluster of Section 7: a
// front-end running the dispatcher (LARD / extended LARD / WRR) and a
// forwarding module, back-end nodes serving documents on connections handed
// off by the front-end, request tagging, and transparent lateral fetches
// between back-ends.
//
// Substitutions relative to the FreeBSD prototype are documented in
// DESIGN.md §4: TCP handoff is performed by passing the accepted client
// connection's file descriptor over a UNIX domain socket (the back-end then
// writes responses directly to the client, bypassing the front-end data
// path, while the front-end keeps reading requests — the same control/data
// split the kernel module provides); NFS cross-mounts become persistent
// inter-back-end HTTP connections (the alternative the paper itself names);
// and physical disks become a per-node simulated disk in the doc store.
package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"phttp/internal/cache"
	"phttp/internal/core"
	"phttp/internal/server"
)

// DocStore is a back-end node's document subsystem: a catalog of targets, a
// byte-budgeted LRU cache standing in for the OS file cache, and a simulated
// disk (FIFO via a single-slot gate, seek+transfer latency per miss).
type DocStore struct {
	sizes map[core.Target]int64
	disk  server.DiskParams
	scale float64 // time scale divisor (1 = real modeled latency)

	mu    sync.Mutex
	cache *cache.LRU

	diskGate chan struct{}
	queued   atomic.Int64

	hits   atomic.Int64
	misses atomic.Int64
}

// NewDocStore builds a doc store over the catalog with the given cache
// budget and disk model. timeScale > 1 divides simulated latencies, letting
// tests run the full system quickly with identical relative costs.
func NewDocStore(catalog map[core.Target]int64, cacheBytes int64, disk server.DiskParams, timeScale float64) *DocStore {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &DocStore{
		sizes:    catalog,
		disk:     disk,
		scale:    timeScale,
		cache:    cache.NewLRU(cacheBytes),
		diskGate: make(chan struct{}, 1),
	}
}

// Size returns the target's size, or an error if it is not in the catalog.
func (d *DocStore) Size(t core.Target) (int64, error) {
	sz, ok := d.sizes[t]
	if !ok {
		return 0, fmt.Errorf("cluster: no such target %q", t)
	}
	return sz, nil
}

// Open makes the target's content available, blocking for the simulated
// disk read on a cache miss, and returns its size. Local reads always enter
// the cache (the OS file cache offers no bypass).
func (d *DocStore) Open(t core.Target) (int64, error) {
	sz, err := d.Size(t)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	hit := d.cache.Lookup(t)
	d.mu.Unlock()
	if hit {
		d.hits.Add(1)
		return sz, nil
	}
	d.misses.Add(1)
	d.queued.Add(1)
	d.diskGate <- struct{}{} // FIFO-ish single disk
	d.sleep(d.disk.ReadTime(sz))
	<-d.diskGate
	d.queued.Add(-1)
	d.mu.Lock()
	d.cache.Insert(t, sz)
	d.mu.Unlock()
	return sz, nil
}

// sleep pauses for the modeled duration divided by the time scale.
func (d *DocStore) sleep(m core.Micros) {
	dur := time.Duration(float64(m) / d.scale * float64(time.Microsecond))
	if dur > 0 {
		time.Sleep(dur)
	}
}

// DiskQueue returns the number of disk reads queued or in progress — the
// figure the back-ends report to the front-end over the control session.
func (d *DocStore) DiskQueue() int { return int(d.queued.Load()) }

// HitRate returns the cache hit rate observed so far.
func (d *DocStore) HitRate() float64 {
	h, m := d.hits.Load(), d.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Counters returns raw hit/miss counts.
func (d *DocStore) Counters() (hits, misses int64) {
	return d.hits.Load(), d.misses.Load()
}

// WriteContent streams the target's deterministic content (size bytes) to
// w. Content depends only on the target name, so any node (or a lateral
// peer) produces identical bytes — tests verify end-to-end integrity.
func WriteContent(w io.Writer, t core.Target, size int64) error {
	const chunkSize = 32 << 10
	chunk := contentChunk(t)
	var written int64
	for written < size {
		n := int64(len(chunk))
		if size-written < n {
			n = size - written
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return err
		}
		written += n
	}
	return nil
}

// ContentByte returns the expected content byte at offset i of target t,
// for spot-checking integrity without materializing bodies.
func ContentByte(t core.Target, i int64) byte {
	chunk := contentChunk(t)
	return chunk[i%int64(len(chunk))]
}

var chunkCache sync.Map // core.Target -> []byte

// contentChunk builds (and caches) the repeating 1 KB pattern for a target:
// the target name followed by a counter, so corruption and cross-target
// mixups are both detectable.
func contentChunk(t core.Target) []byte {
	if v, ok := chunkCache.Load(t); ok {
		return v.([]byte)
	}
	const n = 1 << 10
	b := make([]byte, 0, n)
	for i := 0; len(b) < n; i++ {
		b = append(b, fmt.Sprintf("%s#%04d|", t, i)...)
	}
	b = b[:n]
	chunkCache.Store(t, b)
	return b
}
