package cluster

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"syscall"

	"phttp/internal/core"
)

// Control protocol between front-end and back-ends, one TCP (or UNIX)
// stream per back-end, newline-framed text messages. The paper's control
// session carries handoff coordination, tagged requests and disk queue
// reports; ours carries:
//
//	FE -> BE:
//	  REQ <connID> <seq> <proto> <keep 0|1> <remote|-> <target>
//	  CLOSE <connID>
//	  RELAY <connID>            (open a relayed connection, no handoff fd)
//	BE -> FE:
//	  DISKQ <depth>             (periodic disk queue report)
//
// Targets contain no whitespace (URL paths), so space-separated fields are
// unambiguous; REQ places the target last so future extensions stay simple.
//
// Handed-off connections travel out of band: the front-end writes one byte
// carrying the connID length-prefixed header with the client socket's file
// descriptor attached as SCM_RIGHTS ancillary data on a per-back-end UNIX
// socket pair (see SendConnFD/RecvConnFD).

// ctrlMsg is a parsed control message.
type ctrlMsg struct {
	Kind   string // "REQ", "CLOSE", "RELAY", "DISKQ"
	Conn   core.ConnID
	Seq    int
	Proto  string
	Keep   bool
	Remote core.NodeID // NoNode when the request is served locally
	Target core.Target
	Depth  int // DISKQ
}

// formatReq renders a REQ message.
func formatReq(id core.ConnID, seq int, proto string, keep bool, remote core.NodeID, target core.Target) string {
	k := "0"
	if keep {
		k = "1"
	}
	r := "-"
	if remote != core.NoNode {
		r = strconv.Itoa(int(remote))
	}
	return fmt.Sprintf("REQ %d %d %s %s %s %s\n", id, seq, proto, k, r, target)
}

func formatClose(id core.ConnID) string { return fmt.Sprintf("CLOSE %d\n", id) }
func formatRelay(id core.ConnID) string { return fmt.Sprintf("RELAY %d\n", id) }
func formatDiskQ(depth int) string      { return fmt.Sprintf("DISKQ %d\n", depth) }

// parseCtrl parses one control line.
func parseCtrl(line string) (ctrlMsg, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ctrlMsg{}, fmt.Errorf("cluster: empty control message")
	}
	m := ctrlMsg{Kind: fields[0], Remote: core.NoNode}
	bad := func() (ctrlMsg, error) {
		return ctrlMsg{}, fmt.Errorf("cluster: malformed control message %q", line)
	}
	switch m.Kind {
	case "REQ":
		if len(fields) != 7 {
			return bad()
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return bad()
		}
		m.Conn = core.ConnID(id)
		if m.Seq, err = strconv.Atoi(fields[2]); err != nil {
			return bad()
		}
		m.Proto = fields[3]
		m.Keep = fields[4] == "1"
		if fields[5] != "-" {
			r, err := strconv.Atoi(fields[5])
			if err != nil {
				return bad()
			}
			m.Remote = core.NodeID(r)
		}
		m.Target = core.Target(fields[6])
		return m, nil
	case "CLOSE", "RELAY":
		if len(fields) != 2 {
			return bad()
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return bad()
		}
		m.Conn = core.ConnID(id)
		return m, nil
	case "DISKQ":
		if len(fields) != 2 {
			return bad()
		}
		d, err := strconv.Atoi(fields[1])
		if err != nil {
			return bad()
		}
		m.Depth = d
		return m, nil
	default:
		return bad()
	}
}

// readCtrl reads and parses the next control message.
func readCtrl(br *bufio.Reader) (ctrlMsg, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return ctrlMsg{}, err
	}
	return parseCtrl(strings.TrimSpace(line))
}

// SendConnFD performs the handoff: it sends the client connection's file
// descriptor (with the connection ID as in-band data) to a back-end over
// the UNIX socket. The front-end retains its own descriptor for the
// connection — it keeps reading client requests through it — while the
// back-end gains a descriptor it writes responses to, so response data
// bypasses the front-end exactly as with the in-kernel handoff.
func SendConnFD(uc *net.UnixConn, id core.ConnID, f *os.File) error {
	oob := syscall.UnixRights(int(f.Fd()))
	buf := []byte(fmt.Sprintf("%020d", id))
	n, oobn, err := uc.WriteMsgUnix(buf, oob, nil)
	if err != nil {
		return fmt.Errorf("cluster: handoff send: %w", err)
	}
	if n != len(buf) || oobn != len(oob) {
		return fmt.Errorf("cluster: handoff send: short write (%d/%d data, %d/%d oob)", n, len(buf), oobn, len(oob))
	}
	return nil
}

// RecvConnFD receives one handed-off connection: the connection ID and a
// net.Conn wrapping the received descriptor.
func RecvConnFD(uc *net.UnixConn) (core.ConnID, net.Conn, error) {
	buf := make([]byte, 20)
	oob := make([]byte, syscall.CmsgSpace(4))
	n, oobn, _, _, err := uc.ReadMsgUnix(buf, oob)
	if err != nil {
		return 0, nil, err
	}
	if n != len(buf) {
		return 0, nil, fmt.Errorf("cluster: handoff recv: short header (%d bytes)", n)
	}
	id, err := strconv.ParseInt(strings.TrimLeft(string(buf), "0"), 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: handoff recv: bad conn id %q", buf)
	}
	cmsgs, err := syscall.ParseSocketControlMessage(oob[:oobn])
	if err != nil || len(cmsgs) == 0 {
		return 0, nil, fmt.Errorf("cluster: handoff recv: no control message (%v)", err)
	}
	fds, err := syscall.ParseUnixRights(&cmsgs[0])
	if err != nil || len(fds) != 1 {
		return 0, nil, fmt.Errorf("cluster: handoff recv: expected 1 fd (%v)", err)
	}
	f := os.NewFile(uintptr(fds[0]), fmt.Sprintf("handoff-conn-%d", id))
	conn, err := net.FileConn(f)
	f.Close() // FileConn dups; release our copy
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: handoff recv: %w", err)
	}
	return core.ConnID(id), conn, nil
}
