package cluster

import (
	"fmt"
	"net/http"

	"phttp/internal/core"
	"phttp/internal/membership"
	"phttp/internal/metrics"
)

// The front-end's Prometheus ops plane: one text-format endpoint carrying
// the per-request latency histogram (the same HDR buckets the simulator
// uses, coalesced per octave for exposition) plus the operational
// counters that already existed piecemeal — membership states, 503
// refusals, re-dispatches, utilization. Hand-rolled text format, no
// client-library dependency (see metrics.PromWriter).

// StatusHandler returns an http.Handler serving the front-end's metrics
// in Prometheus text exposition format. Safe to scrape while the
// front-end is serving traffic: every source is an atomic counter or the
// lock-free latency histogram.
func (fe *FrontEnd) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var pw metrics.PromWriter
		fe.writeStatus(&pw)
		w.Header().Set("Content-Type", metrics.PromContentType)
		fmt.Fprint(w, pw.String())
	})
}

// writeStatus renders the metric families. Split from the handler so
// tests can diff the exposition without an HTTP round trip.
func (fe *FrontEnd) writeStatus(pw *metrics.PromWriter) {
	pw.Counter("phttp_fe_requests_total",
		"Client requests assigned by the dispatch engine.", fe.Requests())
	pw.Counter("phttp_fe_connections_total",
		"Client connections accepted.", fe.Connections())
	pw.Counter("phttp_fe_unavailable_total",
		"Connections refused with 503 because no back-end was Up.", fe.Unavailable())
	pw.Counter("phttp_fe_redispatches_total",
		"In-flight requests re-sent after their serving node was confirmed Down.", fe.Redispatches())
	pw.Gauge("phttp_fe_utilization",
		"Dispatcher busy time as a fraction of wall time.", fe.Utilization())

	states := fe.mem.Snapshot()
	counts := make(map[membership.State]int, 5)
	for _, s := range states {
		counts[s]++
	}
	samples := make([]metrics.LabeledValue, 0, 5)
	for _, s := range []membership.State{membership.Joining, membership.Up,
		membership.Draining, membership.Suspect, membership.Down} {
		samples = append(samples, metrics.LabeledValue{
			Label: fmt.Sprintf("state=%q", s.String()),
			Value: float64(counts[s]),
		})
	}
	pw.GaugeVec("phttp_fe_backends", "Back-end slots by membership state.", samples...)

	pw.Histogram("phttp_fe_request_duration_seconds",
		"Per-request latency from batch completion at the front-end: end-to-end for relay, forward time for handoff/BE-forwarding, refusal time for 503s.",
		fe.lat, 1e-6) // recorded in microseconds
}

// Latency exposes the wall-clock latency histogram (status endpoint,
// tests). Callers must not mutate it other than through Record.
func (fe *FrontEnd) Latency() *core.LatencyHist { return fe.lat }
