package cluster_test

import (
	"runtime"
	"testing"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/loadgen"
)

// TestCloseLeavesNoGoroutines verifies a full start/traffic/close cycle
// returns the process to (approximately) its original goroutine count: the
// prototype's accept loops, per-connection servers, control sessions and
// disk reporters must all terminate on Close.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg, tr := testConfig(t, 2, "extlard", core.BEForwarding)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if _, err := loadgen.Run(loadgen.Config{
		Addr: cl.Addr(), Trace: tr, Concurrency: 8,
		IOTimeout: 20 * time.Second,
	}); err != nil {
		cl.Close()
		t.Fatalf("loadgen: %v", err)
	}
	cl.Close()

	// Give lingering netpoll wakeups a moment to drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}
