package cluster_test

import (
	"bufio"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/httpmsg"
	"phttp/internal/server"
	"phttp/internal/trace"
)

// dialCluster starts a tiny cluster and returns a raw client connection.
func dialCluster(t *testing.T, pol string, mech core.Mechanism) (*cluster.Cluster, net.Conn) {
	t.Helper()
	cfg, _ := testConfig(t, 2, pol, mech)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(cl.Close)
	conn, err := net.Dial("tcp", cl.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return cl, conn
}

func TestFrontEndDropsMalformedFirstRequest(t *testing.T) {
	_, conn := dialCluster(t, "extlard", core.BEForwarding)
	if _, err := conn.Write([]byte("NOT-HTTP GARBAGE\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The front-end must close the connection rather than wedge.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection close after malformed request")
	}
}

func TestFrontEndServes404ForUnknownTarget(t *testing.T) {
	_, conn := dialCluster(t, "extlard", core.BEForwarding)
	req := httpmsg.Request{
		Method: "GET", Target: "/no/such/target", Proto: "HTTP/1.1",
		Headers: []httpmsg.Header{{Name: "Host", Value: "x"}},
	}
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("reading 404: %v", err)
	}
	if resp.Status != 404 {
		t.Errorf("status = %d, want 404", resp.Status)
	}
}

func TestFrontEndIdleTimeoutClosesConnection(t *testing.T) {
	sc := trace.SmallSynthConfig()
	sc.Connections = 50
	tr := trace.NewSynth(sc).Generate()
	cfg := cluster.DefaultConfig(1, tr.Sizes)
	cfg.TimeScale = 100
	cfg.CacheBytes = 8 << 20
	cfg.IdleTimeout = 300 * time.Millisecond
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	conn, err := net.Dial("tcp", cl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send one valid request, read the response, then go idle.
	var target core.Target
	var size int64
	for tg, sz := range tr.Sizes {
		target, size = tg, sz
		break
	}
	req := httpmsg.Request{Method: "GET", Target: string(target), Proto: "HTTP/1.1"}
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := httpmsg.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength != size {
		t.Fatalf("Content-Length %d, want %d", resp.ContentLength, size)
	}
	io.CopyN(io.Discard, br, resp.ContentLength)

	// The front-end's idle timer must now close the connection.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Error("connection still open after idle timeout")
	}
}

func TestDocStoreConcurrentOpens(t *testing.T) {
	catalog := map[core.Target]int64{}
	for _, tg := range []core.Target{"/a", "/b", "/c", "/d"} {
		catalog[tg] = 4096
	}
	ds := cluster.NewDocStore(catalog, 16<<10, server.DiskParams{Position: 50, TransferPer512: 1}, 1000)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			targets := []core.Target{"/a", "/b", "/c", "/d"}
			for j := 0; j < 200; j++ {
				if _, err := ds.Open(targets[(i+j)%4]); err != nil {
					t.Errorf("Open: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	h, m := ds.Counters()
	if h+m != 16*200 {
		t.Errorf("counted %d accesses, want %d", h+m, 16*200)
	}
	if ds.DiskQueue() != 0 {
		t.Errorf("disk queue %d after quiescence", ds.DiskQueue())
	}
}

func TestClusterStartValidation(t *testing.T) {
	if _, err := cluster.Start(cluster.Config{Nodes: 0}); err == nil {
		t.Error("accepted 0 nodes")
	}
	if _, err := cluster.Start(cluster.Config{Nodes: 1}); err == nil {
		t.Error("accepted empty catalog")
	}
	cfg := cluster.DefaultConfig(1, map[core.Target]int64{"/x": 1})
	cfg.Policy = "bogus"
	if _, err := cluster.Start(cfg); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestHTTP10ConnectionClosesAfterResponse(t *testing.T) {
	_, conn := dialCluster(t, "wrr", core.SingleHandoff)
	req := httpmsg.Request{Method: "GET", Target: firstTarget(t), Proto: "HTTP/1.0"}
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(20 * time.Second))
	resp, err := httpmsg.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.KeepAlive() {
		t.Error("HTTP/1.0 response advertised keep-alive without the client asking")
	}
	io.CopyN(io.Discard, br, resp.ContentLength)
}

// firstTarget returns a stable target from the small test catalog.
func firstTarget(t *testing.T) string {
	t.Helper()
	sc := trace.SmallSynthConfig()
	tr := trace.NewSynth(sc).Generate()
	var best core.Target
	for tg := range tr.Sizes {
		if best == "" || tg < best {
			best = tg
		}
	}
	return string(best)
}
