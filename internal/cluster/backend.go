package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"phttp/internal/core"
	"phttp/internal/httpmsg"
	"phttp/internal/server"
)

// BackendConfig parameterizes one back-end node.
type BackendConfig struct {
	// ID is the node's cluster-wide identity.
	ID core.NodeID
	// Catalog maps every servable target to its size.
	Catalog map[core.Target]int64
	// CacheBytes is the node's file cache budget.
	CacheBytes int64
	// Disk is the simulated disk model.
	Disk server.DiskParams
	// Costs is the CPU cost model applied when SimulateCPU is set.
	Costs server.Costs
	// SimulateCPU serializes request processing through a single-CPU gate
	// charging the paper's Apache/Flash costs, so the prototype node
	// behaves like the testbed's 300 MHz machines rather than a modern
	// multicore host.
	SimulateCPU bool
	// TimeScale divides all simulated latencies (CPU and disk).
	TimeScale float64
	// HandoffSocket is the filesystem path of the UNIX socket on which
	// the node accepts handed-off connections.
	HandoffSocket string
	// CtrlListen and PeerListen are the TCP listen addresses; empty means
	// an ephemeral loopback port (the in-process harness default). The
	// standalone phttp-backend binary sets fixed ports here.
	CtrlListen string
	PeerListen string
	// DiskReportEvery is the control-session disk queue report interval.
	DiskReportEvery time.Duration
}

// cpuGate models the node's single CPU: callers serialize through it for
// the modeled duration. Because time.Sleep overshoots by scheduler
// granularity (often hundreds of microseconds on a busy host — comparable
// to the scaled costs themselves), the gate tracks the overshoot as a debt
// and discounts future charges, so long-run throughput follows the modeled
// costs rather than the host's timer resolution.
type cpuGate struct {
	mu      sync.Mutex
	scale   float64
	enabled bool
	debt    time.Duration
}

func (g *cpuGate) use(m core.Micros) {
	if !g.enabled || m <= 0 {
		return
	}
	want := time.Duration(float64(m) / g.scale * float64(time.Microsecond))
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.debt >= want {
		g.debt -= want
		return
	}
	want -= g.debt
	start := time.Now()
	time.Sleep(want)
	g.debt = time.Since(start) - want
	if g.debt < 0 {
		g.debt = 0
	}
}

// Backend is one running back-end node.
type Backend struct {
	cfg   BackendConfig
	store *DocStore
	cpu   cpuGate

	ctrlLn    net.Listener
	handoffLn *net.UnixListener
	peerLn    net.Listener

	// ctrls holds every live front-end control session — a scale-out
	// tier connects one per front-end — so disk-queue reports (which
	// double as heartbeats) broadcast to all of them, not just the last
	// to say HELLO. reportOnce starts the report loop with the first.
	ctrlMu     sync.Mutex // guards the set and ctrl writes (disk reports)
	ctrls      map[net.Conn]struct{}
	reportOnce sync.Once

	dataMu sync.Mutex // guards relay data conn writes
	data   net.Conn

	connMu sync.Mutex
	conns  map[core.ConnID]*beConn

	// tracked holds every accepted network connection so Close can
	// unblock reader goroutines.
	trackMu sync.Mutex
	tracked map[net.Conn]struct{}

	peersMu sync.Mutex
	peers   map[core.NodeID]*peerPool

	served  int64
	servedM sync.Mutex

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// beConn is one client connection owned by this back-end (after handoff) or
// relayed through the front-end.
type beConn struct {
	id    core.ConnID
	queue chan ctrlMsg

	outMu    sync.Mutex
	out      net.Conn // handed-off client socket (nil for relay)
	relay    bool
	outReady chan struct{}
}

// NewBackend starts a back-end node: control, handoff and peer listeners
// are bound immediately (to loopback / the configured UNIX path) and their
// accept loops run until Close.
func NewBackend(cfg BackendConfig) (*Backend, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.DiskReportEvery <= 0 {
		cfg.DiskReportEvery = 50 * time.Millisecond
	}
	b := &Backend{
		cfg:     cfg,
		store:   NewDocStore(cfg.Catalog, cfg.CacheBytes, cfg.Disk, cfg.TimeScale),
		cpu:     cpuGate{scale: cfg.TimeScale, enabled: cfg.SimulateCPU},
		conns:   make(map[core.ConnID]*beConn),
		ctrls:   make(map[net.Conn]struct{}),
		peers:   make(map[core.NodeID]*peerPool),
		tracked: make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	if cfg.CtrlListen == "" {
		cfg.CtrlListen = "127.0.0.1:0"
	}
	if cfg.PeerListen == "" {
		cfg.PeerListen = "127.0.0.1:0"
	}
	var err error
	if b.ctrlLn, err = net.Listen("tcp", cfg.CtrlListen); err != nil {
		return nil, fmt.Errorf("cluster: backend %v control listen: %w", cfg.ID, err)
	}
	if b.peerLn, err = net.Listen("tcp", cfg.PeerListen); err != nil {
		b.ctrlLn.Close()
		return nil, fmt.Errorf("cluster: backend %v peer listen: %w", cfg.ID, err)
	}
	addr, err := net.ResolveUnixAddr("unix", cfg.HandoffSocket)
	if err == nil {
		b.handoffLn, err = net.ListenUnix("unix", addr)
	}
	if err != nil {
		b.ctrlLn.Close()
		b.peerLn.Close()
		return nil, fmt.Errorf("cluster: backend %v handoff listen: %w", cfg.ID, err)
	}
	b.wg.Add(3)
	go b.acceptCtrl()
	go b.acceptHandoff()
	go b.acceptPeers()
	return b, nil
}

// CtrlAddr, PeerAddr and HandoffPath advertise the node's endpoints.
func (b *Backend) CtrlAddr() string    { return b.ctrlLn.Addr().String() }
func (b *Backend) PeerAddr() string    { return b.peerLn.Addr().String() }
func (b *Backend) HandoffPath() string { return b.cfg.HandoffSocket }

// Store exposes the doc store (metrics, tests).
func (b *Backend) Store() *DocStore { return b.store }

// Served returns the number of responses this node has written to clients.
func (b *Backend) Served() int64 {
	b.servedM.Lock()
	defer b.servedM.Unlock()
	return b.served
}

// addServed is called before the response bytes go out and subServed backs
// it out if the write fails: a client that has read a complete response can
// then never observe a Served() count that has not caught up yet (drivers
// assert the count the moment the load generator returns).
func (b *Backend) addServed() {
	b.servedM.Lock()
	b.served++
	b.servedM.Unlock()
}

func (b *Backend) subServed() {
	b.servedM.Lock()
	b.served--
	b.servedM.Unlock()
}

// SetPeers wires the lateral-fetch clients to the other nodes' peer
// addresses. Must be called before traffic that forwards.
func (b *Backend) SetPeers(addrs map[core.NodeID]string) {
	b.peersMu.Lock()
	defer b.peersMu.Unlock()
	for id, addr := range addrs {
		if id == b.cfg.ID {
			continue
		}
		b.peers[id] = newPeerPool(addr)
	}
}

// track registers an accepted connection for teardown; it reports false if
// the node is already closing.
func (b *Backend) track(c net.Conn) bool {
	b.trackMu.Lock()
	defer b.trackMu.Unlock()
	select {
	case <-b.closed:
		c.Close()
		return false
	default:
	}
	b.tracked[c] = struct{}{}
	return true
}

func (b *Backend) untrack(c net.Conn) {
	b.trackMu.Lock()
	delete(b.tracked, c)
	b.trackMu.Unlock()
}

// Close shuts the node down and waits for its goroutines.
func (b *Backend) Close() {
	b.closeMu.Do(func() {
		close(b.closed)
		b.ctrlLn.Close()
		b.peerLn.Close()
		b.handoffLn.Close()
		b.trackMu.Lock()
		for c := range b.tracked {
			c.Close()
		}
		b.trackMu.Unlock()
		b.connMu.Lock()
		for _, c := range b.conns {
			c.closeOut()
		}
		b.connMu.Unlock()
		b.peersMu.Lock()
		for _, p := range b.peers {
			p.close()
		}
		b.peersMu.Unlock()
	})
	b.wg.Wait()
}

// acceptCtrl accepts the front-end's control (and relay data) connections.
// The first line of each connection announces its role.
func (b *Backend) acceptCtrl() {
	defer b.wg.Done()
	for {
		conn, err := b.ctrlLn.Accept()
		if err != nil {
			return
		}
		if !b.track(conn) {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer b.untrack(conn)
			b.serveCtrlConn(conn)
		}()
	}
}

func (b *Backend) serveCtrlConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	hello, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	switch hello {
	case "HELLO CTRL\n":
		b.ctrlMu.Lock()
		b.ctrls[conn] = struct{}{}
		b.ctrlMu.Unlock()
		b.reportOnce.Do(func() {
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.reportDiskLoop()
			}()
		})
		b.ctrlLoop(br)
		b.ctrlMu.Lock()
		delete(b.ctrls, conn)
		b.ctrlMu.Unlock()
		conn.Close()
	case "HELLO DATA\n":
		b.dataMu.Lock()
		b.data = conn
		b.dataMu.Unlock()
		// Held open for relay writes; closed via Close.
		<-b.closed
		conn.Close()
	default:
		conn.Close()
	}
}

// ctrlLoop consumes control messages from the front-end.
func (b *Backend) ctrlLoop(br *bufio.Reader) {
	for {
		msg, err := readCtrl(br)
		if err != nil {
			return
		}
		switch msg.Kind {
		case "REQ":
			c := b.getConn(msg.Conn, false)
			select {
			case c.queue <- msg:
			case <-b.closed:
				return
			}
		case "RELAY":
			b.getConn(msg.Conn, true)
		case "CLOSE":
			c := b.getConn(msg.Conn, false)
			select {
			case c.queue <- msg:
			case <-b.closed:
				return
			}
		}
	}
}

// getConn returns the connection record, creating it (and its serve
// goroutine) on first reference.
func (b *Backend) getConn(id core.ConnID, relay bool) *beConn {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	if c, ok := b.conns[id]; ok {
		return c
	}
	c := &beConn{
		id:       id,
		queue:    make(chan ctrlMsg, 256),
		relay:    relay,
		outReady: make(chan struct{}),
	}
	if relay {
		close(c.outReady)
	}
	b.conns[id] = c
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.serveConn(c)
	}()
	return c
}

func (b *Backend) dropConn(id core.ConnID) {
	b.connMu.Lock()
	delete(b.conns, id)
	b.connMu.Unlock()
}

// setWriter installs the handed-off client socket on the connection.
func (c *beConn) setWriter(conn net.Conn) {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if c.out != nil {
		conn.Close() // duplicate handoff; keep the first
		return
	}
	c.out = conn
	close(c.outReady)
}

func (c *beConn) closeOut() {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if c.out != nil {
		c.out.Close()
		c.out = nil
	}
}

// acceptHandoff receives handed-off client connections from the front-end.
func (b *Backend) acceptHandoff() {
	defer b.wg.Done()
	for {
		uc, err := b.handoffLn.AcceptUnix()
		if err != nil {
			return
		}
		if !b.track(uc) {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer b.untrack(uc)
			defer uc.Close()
			for {
				id, conn, err := RecvConnFD(uc)
				if err != nil {
					return
				}
				// The paper's handoff costs: the back-end's protocol
				// module takes over the connection and creates the
				// server-side socket state.
				b.cpu.use(b.cfg.Costs.HandoffBE + b.cfg.Costs.ConnSetup)
				b.getConn(id, false).setWriter(conn)
			}
		}()
	}
}

// serveConn processes one connection's request queue in order, writing
// responses directly to the client socket (or relay frames to the
// front-end).
func (b *Backend) serveConn(c *beConn) {
	select {
	case <-c.outReady:
	case <-b.closed:
		return
	}
	for {
		select {
		case msg := <-c.queue:
			switch msg.Kind {
			case "REQ":
				if err := b.serveRequest(c, msg); err != nil {
					c.closeOut()
					b.dropConn(c.id)
					return
				}
			case "CLOSE":
				b.cpu.use(b.cfg.Costs.ConnTeardown)
				c.closeOut()
				b.dropConn(c.id)
				return
			}
		case <-b.closed:
			c.closeOut()
			b.dropConn(c.id)
			return
		}
	}
}

// serveRequest produces one response: locally (cache/disk) or via a lateral
// fetch from the tagged peer, then transmits it in request order. CPU
// charges are consolidated into one gate visit per request so the host's
// sleep granularity does not multiply with the number of cost components.
func (b *Backend) serveRequest(c *beConn, msg ctrlMsg) error {
	costs := b.cfg.Costs

	if msg.Remote != core.NoNode && msg.Remote != b.cfg.ID {
		return b.serveForwarded(c, msg)
	}

	size, err := b.store.Open(msg.Target)
	if err != nil {
		b.cpu.use(costs.PerRequest)
		return b.writeError(c, msg, 404)
	}
	b.cpu.use(costs.PerRequest + costs.Transmit(size))
	b.addServed()
	if err := b.writeResponse(c, msg, size, func(w io.Writer) error {
		return WriteContent(w, msg.Target, size)
	}); err != nil {
		b.subServed()
		return err
	}
	return nil
}

// serveForwarded performs the lateral fetch: request the content from the
// tagged back-end over a persistent peer connection and forward it on the
// client connection.
func (b *Backend) serveForwarded(c *beConn, msg ctrlMsg) error {
	costs := b.cfg.Costs
	b.peersMu.Lock()
	peer := b.peers[msg.Remote]
	b.peersMu.Unlock()
	if peer == nil {
		return b.writeError(c, msg, 502)
	}
	size, body, err := peer.fetch(msg.Target)
	if err != nil {
		// The peer may have died; surface a gateway error rather than
		// wedging the client connection.
		return b.writeError(c, msg, 502)
	}
	defer body.Close()
	b.cpu.use(costs.PerRequest + costs.ForwardPerRequest +
		costs.ForwardRecv(size) + costs.Transmit(size))
	b.addServed()
	if err := b.writeResponse(c, msg, size, func(w io.Writer) error {
		_, err := io.CopyN(w, body, size)
		return err
	}); err != nil {
		b.subServed()
		return err
	}
	return nil
}

// writeResponse writes status 200 with the given body producer, either to
// the handed-off socket or as a relay frame.
func (b *Backend) writeResponse(c *beConn, msg ctrlMsg, size int64, body func(io.Writer) error) error {
	head := httpmsg.ResponseHead(msg.Proto, 200, size, msg.Keep)
	if c.relay {
		return b.writeRelayFrame(c, msg, head, size, body)
	}
	c.outMu.Lock()
	out := c.out
	c.outMu.Unlock()
	if out == nil {
		return errors.New("cluster: response with no client socket")
	}
	return writeBuffered(out, head, body, int64(len(head))+size)
}

// writeError emits a minimal error response.
func (b *Backend) writeError(c *beConn, msg ctrlMsg, status int) error {
	text := httpmsg.StatusText(status) + "\n"
	head := httpmsg.ResponseHead(msg.Proto, status, int64(len(text)), msg.Keep)
	if c.relay {
		return b.writeRelayFrame(c, msg, head, int64(len(text)), func(w io.Writer) error {
			_, err := io.WriteString(w, text)
			return err
		})
	}
	c.outMu.Lock()
	out := c.out
	c.outMu.Unlock()
	if out == nil {
		return errors.New("cluster: response with no client socket")
	}
	_, err := io.WriteString(out, head+text)
	return err
}

// writeRelayFrame ships a framed response to the front-end's data
// connection: "RESP <connID> <seq> <len>\n" + len raw HTTP bytes.
func (b *Backend) writeRelayFrame(c *beConn, msg ctrlMsg, head string, size int64, body func(io.Writer) error) error {
	b.dataMu.Lock()
	defer b.dataMu.Unlock()
	if b.data == nil {
		return errors.New("cluster: relay response with no data connection")
	}
	total := int64(len(head)) + size
	cw := newChunkWriter(b.data, total+64)
	defer cw.release()
	if _, err := fmt.Fprintf(cw, "RESP %d %d %d\n", c.id, msg.Seq, total); err != nil {
		return err
	}
	if _, err := cw.WriteString(head); err != nil {
		return err
	}
	if err := body(cw); err != nil {
		return err
	}
	return cw.Flush()
}

// reportDiskLoop periodically reports the disk queue depth to the
// front-end, as the prototype's control sessions do.
func (b *Backend) reportDiskLoop() {
	t := time.NewTicker(b.cfg.DiskReportEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			line := formatDiskQ(b.store.DiskQueue())
			b.ctrlMu.Lock()
			for conn := range b.ctrls {
				// A dead session drops out of the set when its ctrlLoop
				// exits; a transient write error here is not grounds to
				// silence the other front-ends.
				io.WriteString(conn, line)
			}
			b.ctrlMu.Unlock()
		case <-b.closed:
			return
		}
	}
}

// acceptPeers serves lateral fetches from other back-ends: plain HTTP over
// persistent connections.
func (b *Backend) acceptPeers() {
	defer b.wg.Done()
	for {
		conn, err := b.peerLn.Accept()
		if err != nil {
			return
		}
		if !b.track(conn) {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer b.untrack(conn)
			defer conn.Close()
			br := bufio.NewReader(conn)
			bw := bufio.NewWriterSize(conn, 32<<10)
			for {
				req, err := httpmsg.ReadRequest(br)
				if err != nil {
					return
				}
				// The remote side of a lateral fetch: per-request work
				// plus the forwarding overhead, content from cache or
				// disk.
				b.cpu.use(b.cfg.Costs.PerRequest + b.cfg.Costs.ForwardPerRequest)
				size, err := b.store.Open(core.Target(req.Target))
				if err != nil {
					body := "Not Found\n"
					io.WriteString(bw, httpmsg.ResponseHead("HTTP/1.1", 404, int64(len(body)), true))
					io.WriteString(bw, body)
					if err := bw.Flush(); err != nil {
						return
					}
					continue
				}
				if _, err := io.WriteString(bw, httpmsg.ResponseHead("HTTP/1.1", 200, size, true)); err != nil {
					return
				}
				if err := WriteContent(bw, core.Target(req.Target), size); err != nil {
					return
				}
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}()
	}
}

// peerPool multiplexes lateral fetches over a few persistent connections to
// one peer back-end, so concurrent forwarded requests do not serialize
// behind a single connection (the paper's NFS transport likewise carried
// concurrent reads).
type peerPool struct {
	clients []*peerClient
	free    chan *peerClient
}

// peerPoolSize is the number of persistent connections per peer pair.
const peerPoolSize = 4

func newPeerPool(addr string) *peerPool {
	p := &peerPool{free: make(chan *peerClient, peerPoolSize)}
	for i := 0; i < peerPoolSize; i++ {
		c := newPeerClient(addr)
		p.clients = append(p.clients, c)
		p.free <- c
	}
	return p
}

// fetch checks a connection out of the pool; it is returned when the body
// is closed (or immediately on error).
func (p *peerPool) fetch(t core.Target) (int64, io.ReadCloser, error) {
	c := <-p.free
	size, body, err := c.fetch(t)
	if err != nil {
		p.free <- c
		return 0, nil, err
	}
	return size, &pooledBody{ReadCloser: body, pool: p, client: c}, nil
}

func (p *peerPool) close() {
	for _, c := range p.clients {
		c.close()
	}
}

// pooledBody returns the underlying client to the pool on Close.
type pooledBody struct {
	io.ReadCloser
	pool   *peerPool
	client *peerClient
}

func (b *pooledBody) Close() error {
	err := b.ReadCloser.Close()
	b.pool.free <- b.client
	return err
}

// peerClient is a lateral-fetch client holding one persistent connection to
// a peer back-end (reconnecting on failure).
type peerClient struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

func newPeerClient(addr string) *peerClient { return &peerClient{addr: addr} }

// fetch requests target from the peer and returns its size and a body
// reader that must be fully consumed and closed before the next fetch. The
// returned reader is only valid while the caller holds it (the client is
// locked until Close).
func (p *peerClient) fetch(t core.Target) (int64, io.ReadCloser, error) {
	p.mu.Lock() // released by the returned body's Close
	size, body, err := p.fetchLocked(t)
	if err != nil {
		p.mu.Unlock()
		return 0, nil, err
	}
	return size, body, nil
}

func (p *peerClient) fetchLocked(t core.Target) (int64, io.ReadCloser, error) {
	for attempt := 0; attempt < 2; attempt++ {
		if p.conn == nil {
			conn, err := net.Dial("tcp", p.addr)
			if err != nil {
				return 0, nil, err
			}
			p.conn = conn
			p.br = bufio.NewReaderSize(conn, 32<<10)
		}
		req := httpmsg.Request{
			Method: "GET", Target: string(t), Proto: "HTTP/1.1",
			Headers: []httpmsg.Header{{Name: "Host", Value: "peer"}},
		}
		if _, err := req.WriteTo(p.conn); err != nil {
			p.reset()
			continue
		}
		resp, err := httpmsg.ReadResponse(p.br)
		if err != nil {
			p.reset()
			continue
		}
		if resp.Status != 200 {
			// Drain the error body to keep the connection usable.
			io.CopyN(io.Discard, p.br, resp.ContentLength)
			return 0, nil, fmt.Errorf("cluster: peer fetch %q: status %d", t, resp.Status)
		}
		return resp.ContentLength, &peerBody{p: p, r: io.LimitReader(p.br, resp.ContentLength)}, nil
	}
	return 0, nil, fmt.Errorf("cluster: peer %s unreachable", p.addr)
}

func (p *peerClient) reset() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
		p.br = nil
	}
}

func (p *peerClient) close() {
	p.mu.Lock()
	p.reset()
	p.mu.Unlock()
}

// peerBody hands the peer connection back (unlocking the client) once the
// body has been consumed.
type peerBody struct {
	p *peerClient
	r io.Reader
}

func (b *peerBody) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *peerBody) Close() error {
	// Drain any remainder so the next fetch starts aligned.
	io.Copy(io.Discard, b.r)
	b.p.mu.Unlock()
	return nil
}
