package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phttp/internal/core"
	"phttp/internal/dstate"
	"phttp/internal/policy"
)

// Peer protocol of the scale-out front-end tier: one TCP stream per
// (dialer, acceptor) front-end pair, newline-framed text, mirroring the
// back-end control protocol's framing. Interner IDs are per-process, so
// targets travel as strings (URL paths, whitespace-free) and each side
// interns locally.
//
//	on dial:        HELLO PEER <feid>
//	sharded (origin -> shard owner, connection-state transactions):
//	  POPEN <originFE> <connID> <size> <target>   -> reply PNODE <node>
//	  PCLOSE <originFE> <connID>                  (no reply)
//	  PMOVE <originFE> <connID> <to>              (no reply)
//	replicated (origin -> every peer, bounded-staleness sync; no replies):
//	  PMAPD <node> <size> <target>                (one mapping delta)
//	  PLOADV <originFE> <nodes> <load0> <conns0> ...  (full load vector)
//
// Mapping deltas are journaled in origin write order and applied in
// arrival order, so a conflict between origins on the same target
// resolves last-writer-wins, exactly like the in-process dstate.Tier.
// PLOADV carries each origin's *locally charged* load so a receiver sums
// peers without double-counting (see core.LoadTracker.SetRemote).

// DefaultSyncInterval is the replicated store's sync period when the
// configuration does not set one: fresh enough that a mapping learned on
// one front-end steers its peers within a few RTTs of traffic, coarse
// enough that sync traffic stays negligible next to request traffic.
const DefaultSyncInterval = 50 * time.Millisecond

// DefaultStateSeed salts the shard-ownership ring when the configuration
// does not; every member of one tier must agree on it.
const DefaultStateSeed = 0x9e3779b97f4a7c15

// Peer dial bring-up tolerates refused connections with bounded linear
// backoff, like back-end dials: tier members are sibling processes
// typically launched in sequence, so the first members up must wait for
// the last member's listener rather than fatal on connection refused.
const (
	defaultPeerDialRetries = 10
	defaultPeerDialBackoff = 100 * time.Millisecond
)

// remoteKey names a connection owned here on behalf of a peer front-end.
type remoteKey struct {
	fe int
	id core.ConnID
}

// remoteConn is the owner-side state of a peer's connection: the policy's
// connection state plus the interner reference pinned for its lifetime.
type remoteConn struct {
	cs *core.ConnState
	id core.TargetID
}

// peerLink is one outbound connection to a tier peer. RPCs serialize on
// mu (write + optional reply read under one critical section — the
// sharded store's state transactions are short and rare relative to
// request work). A link that errors is marked down and the store falls
// back to local decisions: peer loss degrades locality, never
// availability.
type peerLink struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	down atomic.Bool
}

// peerTier is a front-end's view of the networked dispatch-state tier:
// it owns the peer listener, the outbound links, and — per mode — the
// shard-ownership ring or the replication journal, and implements
// dstate.Store over the front-end's local policy replica/shard.
type peerTier struct {
	mode dstate.Mode
	fe   int
	pol  core.Policy
	in   *core.Interner
	ring *policy.OwnerRing // sharded mode only

	ln    net.Listener
	peers []*peerLink // index = front-end id; nil at our own slot

	// Replication journal (replicated mode): mapping writes observed on
	// the local replica, pending broadcast.
	jmu     sync.Mutex
	pending []wireDelta

	// peerLoads/peerConns hold the latest load vector received from each
	// peer; remote bases are the per-node sums over peers.
	lmu       sync.Mutex
	peerLoads [][]float64
	peerConns [][]int64

	// remote holds connections owned here for peer front-ends (sharded).
	rmu    sync.Mutex
	remote map[remoteKey]*remoteConn

	// inbound tracks accepted peer sessions so Close can unblock their
	// read loops: a peer tears its outbound links down only in its own
	// Close, and tier members close in arbitrary order.
	imu     sync.Mutex
	inbound map[net.Conn]struct{}

	nodes        int
	syncInterval time.Duration
	syncs        atomic.Int64
	// remoteOpens counts connection opens whose dispatch decision came
	// from a peer shard owner.
	remoteOpens atomic.Int64
	// fallbacks counts state transactions decided locally because the
	// owning peer was unreachable (metrics: locality lost, not requests).
	fallbacks atomic.Int64

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// wireDelta is one journaled mapping write awaiting broadcast; the target
// travels by name because interner IDs are per-process.
type wireDelta struct {
	target core.Target
	node   core.NodeID
	size   int64
}

var _ dstate.Store = (*peerTier)(nil)

// newPeerTier binds the peer listener and prepares the tier state; links
// are established later by ConnectPeers, once every member's listener
// exists. pol is the front-end's own policy replica/shard.
func newPeerTier(cfg FrontEndConfig, pol core.Policy) (*peerTier, error) {
	t := &peerTier{
		mode:         cfg.State,
		fe:           cfg.FEID,
		pol:          pol,
		peers:        make([]*peerLink, cfg.Frontends),
		remote:       make(map[remoteKey]*remoteConn),
		peerLoads:    make([][]float64, cfg.Frontends),
		peerConns:    make([][]int64, cfg.Frontends),
		inbound:      make(map[net.Conn]struct{}),
		nodes:        cfg.Nodes,
		syncInterval: cfg.SyncInterval,
		closed:       make(chan struct{}),
	}
	if t.syncInterval <= 0 {
		t.syncInterval = DefaultSyncInterval
	}
	seed := cfg.StateSeed
	if seed == 0 {
		seed = DefaultStateSeed
	}
	if cfg.State == dstate.ModeSharded {
		t.ring = policy.NewOwnerRing(cfg.Frontends, 0, seed)
	}
	listen := cfg.PeerListen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: frontend %d peer listen: %w", cfg.FEID, err)
	}
	t.ln = ln
	if cfg.State == dstate.ModeReplicated {
		if mp, ok := pol.(dstate.MappingPolicy); ok {
			mp.Mapping().SetWriteObserver(t.journal)
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// finishInit hands the tier the engine's interner once the engine
// exists (the engine owns interner construction). Wire messages carry
// target strings; the interner is how the tier translates them to and
// from this process's IDs. Must run before any traffic is served.
func (t *peerTier) finishInit(in *core.Interner) { t.in = in }

// Addr is the peer listener's address (what other members dial).
func (t *peerTier) Addr() string { return t.ln.Addr().String() }

// Syncs returns completed replication rounds (metrics, tests).
func (t *peerTier) Syncs() int64 { return t.syncs.Load() }

// Fallbacks returns state transactions decided locally because the
// owning peer was unreachable.
func (t *peerTier) Fallbacks() int64 { return t.fallbacks.Load() }

// connect dials every peer slot in addrs (index = front-end id; our own
// slot and empty entries are skipped). Called once at tier bring-up;
// replicated tiers also start their sync loop here, so journaled writes
// from the pre-connect window broadcast in the first round.
func (t *peerTier) connect(addrs []string) error {
	for f, addr := range addrs {
		if f == t.fe || addr == "" {
			continue
		}
		if f < 0 || f >= len(t.peers) {
			return fmt.Errorf("cluster: peer index %d out of tier [0,%d)", f, len(t.peers))
		}
		conn, err := t.dialPeer(addr)
		if err != nil {
			return fmt.Errorf("cluster: frontend %d dial peer %d at %s: %w", t.fe, f, addr, err)
		}
		if _, err := fmt.Fprintf(conn, "HELLO PEER %d\n", t.fe); err != nil {
			conn.Close()
			return err
		}
		t.peers[f] = &peerLink{addr: addr, conn: conn, br: bufio.NewReader(conn)}
	}
	if t.mode == dstate.ModeReplicated {
		t.wg.Add(1)
		go t.syncLoop()
	}
	return nil
}

// dialPeer dials one peer listener, retrying refused connections with
// linear backoff: a tier's member processes start in arbitrary order, so
// the peers launched first must outwait the last listener's bind.
func (t *peerTier) dialPeer(addr string) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt <= defaultPeerDialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * defaultPeerDialBackoff)
		}
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Close tears the tier down: listener, links, loops.
func (t *peerTier) Close() {
	t.closeMu.Do(func() {
		close(t.closed)
		t.ln.Close()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			if p.conn != nil {
				p.conn.Close()
			}
			p.mu.Unlock()
		}
		t.imu.Lock()
		for conn := range t.inbound {
			conn.Close()
		}
		t.imu.Unlock()
	})
	t.wg.Wait()
}

// --- dstate.Store ---

func (t *peerTier) Mode() dstate.Mode   { return t.mode }
func (t *peerTier) Policy() core.Policy { return t.pol }

// Owner returns the front-end owning target id's shard (ourselves
// outside sharded mode).
func (t *peerTier) Owner(id core.TargetID) int {
	if t.ring == nil {
		return t.fe
	}
	return t.ring.Owner(id)
}

// ConnOpen decides the handling node. Replicated mode decides on the
// local replica; sharded mode forwards the whole state transaction to
// the shard owner, falling back to a local decision when the owner is
// unreachable (availability over locality).
func (t *peerTier) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	if t.ring != nil {
		if owner := t.ring.Owner(first.ID); owner != t.fe {
			if n, ok := t.remoteOpen(owner, c, first); ok {
				c.OwnerFE = int32(owner)
				c.Handling = n
				t.remoteOpens.Add(1)
				return n
			}
			t.fallbacks.Add(1)
		}
	}
	c.OwnerFE = int32(t.fe)
	return t.pol.ConnOpen(c, first)
}

// AssignBatch: locally owned connections get the policy's full
// assignment; connections whose state lives on a peer pin every request
// to the handling node decided at open — the sharded prototype is
// restricted to connection-granular mechanisms (see validateFEConfig),
// where that is exactly the policy's behavior.
func (t *peerTier) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	if int(c.OwnerFE) == t.fe {
		return t.pol.AssignBatch(c, batch)
	}
	as := make([]core.Assignment, len(batch))
	for i := range as {
		as[i] = core.Assignment{Node: c.Handling}
	}
	return as
}

func (t *peerTier) BatchDone(c *core.ConnState) {
	if int(c.OwnerFE) == t.fe {
		t.pol.BatchDone(c)
	}
}

func (t *peerTier) ConnClose(c *core.ConnState) {
	owner := int(c.OwnerFE)
	if owner == t.fe {
		t.pol.ConnClose(c)
		return
	}
	if !t.send(owner, fmt.Sprintf("PCLOSE %d %d\n", t.fe, c.ID)) {
		// Owner unreachable: its replica keeps the connection charged
		// until the link (or the owner) restarts; nothing to release
		// locally — we never charged this connection here.
		t.fallbacks.Add(1)
	}
	c.Handling = core.NoNode
}

func (t *peerTier) MoveConn(c *core.ConnState, to core.NodeID) {
	owner := int(c.OwnerFE)
	if owner == t.fe {
		t.pol.Loads().MoveConn(c.Handling, to)
		c.Handling = to
		return
	}
	if !t.send(owner, fmt.Sprintf("PMOVE %d %d %d\n", t.fe, c.ID, to)) {
		t.fallbacks.Add(1)
	}
	c.Handling = to
}

func (t *peerTier) ReportDiskQueue(n core.NodeID, queued int) {
	t.pol.ReportDiskQueue(n, queued)
}

// --- origin side of the sharded RPCs ---

// remoteOpen runs the connection-open transaction on the shard owner and
// returns its decision; ok is false when the owner is unreachable or the
// reply is malformed (the caller decides locally).
func (t *peerTier) remoteOpen(owner int, c *core.ConnState, first core.Request) (core.NodeID, bool) {
	p := t.peers[owner]
	if p == nil || p.down.Load() {
		return core.NoNode, false
	}
	name := t.in.Name(first.ID)
	if name == "" {
		name = first.Target
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return core.NoNode, false
	}
	if _, err := fmt.Fprintf(p.conn, "POPEN %d %d %d %s\n", t.fe, c.ID, first.Size, name); err != nil {
		t.markDown(p)
		return core.NoNode, false
	}
	p.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := p.br.ReadString('\n')
	p.conn.SetReadDeadline(time.Time{})
	if err != nil {
		t.markDown(p)
		return core.NoNode, false
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "PNODE" {
		t.markDown(p)
		return core.NoNode, false
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n >= t.nodes {
		return core.NoNode, false
	}
	return core.NodeID(n), true
}

// send writes one fire-and-forget line to peer f, reporting success.
func (t *peerTier) send(f int, line string) bool {
	if f < 0 || f >= len(t.peers) {
		return false
	}
	p := t.peers[f]
	if p == nil || p.down.Load() {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return false
	}
	if _, err := io.WriteString(p.conn, line); err != nil {
		t.markDown(p)
		return false
	}
	return true
}

// markDown records a failed link; callers hold p.mu.
func (t *peerTier) markDown(p *peerLink) {
	p.down.Store(true)
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// --- replication ---

// journal records one local mapping write for the next sync round
// (installed as the mapping's write observer; synced applies bypass it,
// so gossip never re-broadcasts).
func (t *peerTier) journal(id core.TargetID, size int64, n core.NodeID) {
	name := t.in.Name(id)
	if name == "" {
		return
	}
	t.jmu.Lock()
	t.pending = append(t.pending, wireDelta{target: name, node: n, size: size})
	t.jmu.Unlock()
}

// syncLoop broadcasts the journal and the local load vector every
// syncInterval — the tier's bounded-staleness sync protocol.
func (t *peerTier) syncLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.syncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
			t.syncOnce()
		}
	}
}

// syncOnce runs one replication round: pending mapping deltas (in origin
// write order) then the full load vector, to every live peer.
func (t *peerTier) syncOnce() {
	t.jmu.Lock()
	deltas := t.pending
	t.pending = nil
	t.jmu.Unlock()

	var b strings.Builder
	for _, d := range deltas {
		fmt.Fprintf(&b, "PMAPD %d %d %s\n", d.node, d.size, d.target)
	}
	loads := t.pol.Loads()
	fmt.Fprintf(&b, "PLOADV %d %d", t.fe, t.nodes)
	for i := 0; i < t.nodes; i++ {
		n := core.NodeID(i)
		fmt.Fprintf(&b, " %g %d", loads.LocalLoad(n), loads.LocalConns(n))
	}
	b.WriteByte('\n')
	msg := b.String()
	for f := range t.peers {
		t.send(f, msg)
	}
	t.syncs.Add(1)
}

// --- acceptor side ---

// acceptLoop admits inbound peer sessions.
func (t *peerTier) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.imu.Lock()
		t.inbound[conn] = struct{}{}
		t.imu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() {
				t.imu.Lock()
				delete(t.inbound, conn)
				t.imu.Unlock()
				conn.Close()
			}()
			t.servePeer(conn)
		}()
	}
}

// servePeer runs one inbound peer session: HELLO, then a line loop over
// the sharded RPCs and replication messages.
func (t *peerTier) servePeer(conn net.Conn) {
	br := bufio.NewReader(conn)
	hello, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(hello, "HELLO PEER ") {
		return
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "POPEN":
			if reply, ok := t.handleOpen(fields[1:]); ok {
				if _, err := io.WriteString(conn, reply); err != nil {
					return
				}
			} else {
				return // malformed RPC: drop the session, dialer falls back
			}
		case "PCLOSE":
			t.handleClose(fields[1:])
		case "PMOVE":
			t.handleMove(fields[1:])
		case "PMAPD":
			t.handleMapDelta(fields[1:])
		case "PLOADV":
			t.handleLoadVector(fields[1:])
		default:
			return
		}
	}
}

// handleOpen serves a peer's connection-open transaction on our shard:
// intern the target, run the policy open on an owner-side connection
// state, remember it for the later PCLOSE/PMOVE, reply with the decision.
func (t *peerTier) handleOpen(args []string) (string, bool) {
	if len(args) != 4 {
		return "", false
	}
	fe, err1 := strconv.Atoi(args[0])
	id, err2 := strconv.ParseInt(args[1], 10, 64)
	size, err3 := strconv.ParseInt(args[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return "", false
	}
	tid := t.in.Intern(core.Target(args[3]))
	cs := core.NewConnState(core.ConnID(id))
	cs.OwnerFE = int32(t.fe)
	n := t.pol.ConnOpen(cs, core.Request{Target: core.Target(args[3]), ID: tid, Size: size})
	t.rmu.Lock()
	t.remote[remoteKey{fe: fe, id: core.ConnID(id)}] = &remoteConn{cs: cs, id: tid}
	t.rmu.Unlock()
	return fmt.Sprintf("PNODE %d\n", n), true
}

// handleClose closes a peer's connection on our shard, releasing its
// load and the target reference pinned at open.
func (t *peerTier) handleClose(args []string) {
	if len(args) != 2 {
		return
	}
	fe, err1 := strconv.Atoi(args[0])
	id, err2 := strconv.ParseInt(args[1], 10, 64)
	if err1 != nil || err2 != nil {
		return
	}
	t.rmu.Lock()
	rc := t.remote[remoteKey{fe: fe, id: core.ConnID(id)}]
	delete(t.remote, remoteKey{fe: fe, id: core.ConnID(id)})
	t.rmu.Unlock()
	if rc == nil {
		return
	}
	t.pol.ConnClose(rc.cs)
	if t.in.Evictable() {
		t.in.Release(rc.id)
	}
}

// handleMove transfers a peer connection's load unit between nodes.
func (t *peerTier) handleMove(args []string) {
	if len(args) != 3 {
		return
	}
	fe, err1 := strconv.Atoi(args[0])
	id, err2 := strconv.ParseInt(args[1], 10, 64)
	to, err3 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil || err3 != nil || to < 0 || to >= t.nodes {
		return
	}
	t.rmu.Lock()
	rc := t.remote[remoteKey{fe: fe, id: core.ConnID(id)}]
	t.rmu.Unlock()
	if rc == nil {
		return
	}
	t.pol.Loads().MoveConn(rc.cs.Handling, core.NodeID(to))
	rc.cs.Handling = core.NodeID(to)
}

// handleMapDelta applies one replicated mapping write to the local
// replica, bypassing the write observer (no re-broadcast).
func (t *peerTier) handleMapDelta(args []string) {
	if len(args) != 3 {
		return
	}
	node, err1 := strconv.Atoi(args[0])
	size, err2 := strconv.ParseInt(args[1], 10, 64)
	if err1 != nil || err2 != nil || node < 0 || node >= t.nodes {
		return
	}
	mp, ok := t.pol.(dstate.MappingPolicy)
	if !ok {
		return
	}
	id := t.in.Intern(core.Target(args[2]))
	mp.Mapping().ApplySynced(id, size, core.NodeID(node))
	if t.in.Evictable() {
		// The mapping holds its own reference (SetRefCounter); drop the
		// parse-time one.
		t.in.Release(id)
	}
}

// handleLoadVector stores a peer's load vector and refreshes the local
// replica's remote base (per node: the sum over peers' local charges).
func (t *peerTier) handleLoadVector(args []string) {
	if len(args) < 2 {
		return
	}
	fe, err1 := strconv.Atoi(args[0])
	nodes, err2 := strconv.Atoi(args[1])
	if err1 != nil || err2 != nil || nodes != t.nodes || len(args) != 2+2*nodes {
		return
	}
	if fe < 0 || fe >= len(t.peerLoads) || fe == t.fe {
		return
	}
	loadv := make([]float64, nodes)
	connv := make([]int64, nodes)
	for i := 0; i < nodes; i++ {
		l, err1 := strconv.ParseFloat(args[2+2*i], 64)
		c, err2 := strconv.ParseInt(args[3+2*i], 10, 64)
		if err1 != nil || err2 != nil {
			return
		}
		loadv[i] = l
		connv[i] = c
	}
	lt := t.pol.Loads()
	t.lmu.Lock()
	t.peerLoads[fe] = loadv
	t.peerConns[fe] = connv
	for i := 0; i < nodes; i++ {
		var load float64
		var conns int64
		for f := range t.peerLoads {
			if t.peerLoads[f] == nil {
				continue
			}
			load += t.peerLoads[f][i]
			conns += t.peerConns[f][i]
		}
		lt.SetRemote(core.NodeID(i), load)
		lt.SetRemoteConns(core.NodeID(i), conns)
	}
	t.lmu.Unlock()
}
