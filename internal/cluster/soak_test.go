package cluster_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/loadgen"
	"phttp/internal/policy"
	"phttp/internal/server"
	"phttp/internal/trace"
)

// TestCappedDispatchMatchesPinnedReference replays one unbounded-URL
// workload through two dispatch engines in lockstep — one with a capped,
// recycling interner (the long-haul front-end configuration) and one with
// the pinned interner whose IDs are a stable 1:1 image of the target
// strings — and asserts every dispatch decision is identical. ID recycling
// must be invisible to policy behavior: the mapping tables age by byte
// budget and the refcount protocol guarantees a recycled ID carries no
// stale mapping state, so the capped engine's decisions match the
// string-keyed reference exactly while its tables stay bounded.
func TestCappedDispatchMatchesPinnedReference(t *testing.T) {
	const (
		maxTargets = 512
		nodes      = 4
		hotSet     = 64
		reqSize    = 8 << 10 // the front-end's nominal mapping size
	)
	conns := 12_000
	if testing.Short() {
		conns = 1_500
	}
	for _, tc := range []struct {
		name string
		mech core.Mechanism
	}{
		{"lard", core.SingleHandoff},
		{"lardr", core.SingleHandoff},
		{"extlard", core.BEForwarding},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mkEngine := func(maxT int) *dispatch.Engine {
				eng, err := dispatch.NewEngine(dispatch.Spec{
					Policy:     tc.name,
					Nodes:      nodes,
					CacheBytes: 256 << 10, // 32 mapping entries per node: refs stay far under the cap
					Params:     policy.DefaultParams(),
					Mechanism:  tc.mech,
					MaxTargets: maxT,
					// A prime off-cycle period so compaction lands at
					// arbitrary points of the connection stream.
					MaintainEvery: 97,
				})
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			capped := mkEngine(maxTargets)
			pinned := mkEngine(0)
			if !capped.Interner().Evictable() || pinned.Interner().Evictable() {
				t.Fatal("engine interner modes wired wrong")
			}

			rng := rand.New(rand.NewSource(7))
			next := func(i int) core.Target {
				if rng.Intn(2) == 0 {
					return core.Target(fmt.Sprintf("/hot%d", rng.Intn(hotSet)))
				}
				return core.Target(fmt.Sprintf("/once-%d-%d", i, rng.Intn(1<<20)))
			}
			for i := 0; i < conns; i++ {
				nBatches := rng.Intn(3) + 1
				var cc, cp *dispatch.Conn
				for b := 0; b < nBatches; b++ {
					batchC := make(core.Batch, rng.Intn(4)+1)
					batchP := make(core.Batch, len(batchC))
					for j := range batchC {
						tgt := next(i)
						batchC[j] = core.Request{Target: tgt, ID: capped.Interner().Intern(tgt), Size: reqSize}
						batchP[j] = core.Request{Target: tgt, ID: pinned.Interner().Intern(tgt), Size: reqSize}
					}
					if b == 0 {
						var hc, hp core.NodeID
						cc, hc = capped.ConnOpen(batchC[0])
						cp, hp = pinned.ConnOpen(batchP[0])
						if hc != hp {
							t.Fatalf("conn %d: handling diverged: capped %v, reference %v", i, hc, hp)
						}
					}
					ac := capped.AssignBatch(cc, batchC)
					ap := pinned.AssignBatch(cp, batchP)
					for j := range ac {
						if ac[j] != ap[j] {
							t.Fatalf("conn %d batch %d req %d (%q): capped %+v, reference %+v",
								i, b, j, batchC[j].Target, ac[j], ap[j])
						}
					}
					capped.ReleaseBatch(batchC)
					pinned.ReleaseBatch(batchP)
				}
				if rng.Intn(64) == 0 {
					// Same disk feedback to both: flips extLARD between
					// serve-local and forward.
					n, q := core.NodeID(rng.Intn(nodes)), rng.Intn(2*policy.DefaultParams().DiskQueueLow)
					capped.ReportDiskQueue(n, q)
					pinned.ReportDiskQueue(n, q)
				}
				capped.ConnClose(cc)
				pinned.ConnClose(cp)
			}

			in := capped.Interner()
			capped.Maintain()
			if got := in.Len(); got > maxTargets {
				t.Errorf("capped table holds %d targets, cap %d", got, maxTargets)
			}
			if hw := int(in.HighWater()); hw > maxTargets {
				t.Errorf("capped ID space grew to %d, cap %d", hw, maxTargets)
			}
			if in.Recycles() == 0 {
				t.Error("no recycling despite unbounded URL stream")
			}
			if ref := pinned.Interner().Len(); ref <= maxTargets {
				t.Fatalf("reference interner saw only %d targets; workload not unbounded enough", ref)
			}
		})
	}
}

// churnTrace builds the soak workload: every connection mixes requests for
// a small hot set with URLs never seen before (all servable, so end-to-end
// verification covers them), giving the front-end an effectively unbounded
// target stream.
func churnTrace(conns, hotSet int) *trace.Trace {
	rng := rand.New(rand.NewSource(11))
	tr := &trace.Trace{Sizes: make(map[core.Target]int64)}
	for i := 0; i < hotSet; i++ {
		tr.Sizes[core.Target(fmt.Sprintf("/hot%d", i))] = int64(rng.Intn(8<<10)) + 512
	}
	uniq := 0
	for i := 0; i < conns; i++ {
		var batches []core.Batch
		for b := rng.Intn(2) + 1; b > 0; b-- {
			batch := make(core.Batch, rng.Intn(3)+1)
			for j := range batch {
				var tgt core.Target
				if rng.Intn(3) == 0 {
					tgt = core.Target(fmt.Sprintf("/hot%d", rng.Intn(hotSet)))
				} else {
					tgt = core.Target(fmt.Sprintf("/soak/%d", uniq))
					uniq++
				}
				size, ok := tr.Sizes[tgt]
				if !ok {
					size = int64(rng.Intn(4<<10)) + 256
					tr.Sizes[tgt] = size
				}
				batch[j] = core.Request{Target: tgt, Size: size}
			}
			batches = append(batches, batch)
		}
		tr.Conns = append(tr.Conns, core.Connection{Batches: batches})
	}
	return tr
}

// TestFrontEndUnboundedURLSoak is the acceptance soak: an unbounded-URL
// workload replayed through the real prototype front-end (parse-time
// interning, capped interner, handoff data path) with end-to-end
// verification on — every response must match the string-keyed catalog,
// byte for byte — while the dispatcher's target table and ID space stay
// bounded by the configured cap.
func TestFrontEndUnboundedURLSoak(t *testing.T) {
	const maxTargets = 256
	conns := 1_000
	if testing.Short() {
		conns = 250
	}
	tr := churnTrace(conns, 32)

	cfg := cluster.DefaultConfig(2, tr.Sizes)
	cfg.Policy = "lard"
	cfg.Mechanism = core.SingleHandoff
	// A small mapping budget keeps the dispatcher's live references (32
	// mapping entries per node at the 8 KB nominal size, plus in-flight
	// batches) far below the cap, so the ≤-cap assertions are exact.
	cfg.CacheBytes = 256 << 10
	cfg.MaxTargets = maxTargets
	cfg.SimulateCPU = false
	cfg.TimeScale = 200
	cfg.Disk = server.DefaultDisk()
	cfg.BatchWindow = time.Millisecond
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	eng := cl.FE.Engine()
	if !eng.Interner().Evictable() {
		t.Fatal("front-end did not build an evictable interner from MaxTargets")
	}

	res, err := loadgen.Run(loadgen.Config{
		Addr:        cl.Addr(),
		Trace:       tr,
		Concurrency: 8,
		Verify:      true,
		IOTimeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Errors != 0 {
		t.Errorf("%d responses diverged from the string-keyed reference catalog", res.Errors)
	}
	if want := int64(tr.Requests()); res.Requests != want {
		t.Errorf("served %d requests, want %d", res.Requests, want)
	}
	if got := cl.FE.PolicyName(); got != "lard" {
		t.Errorf("PolicyName() = %q, want lard", got)
	}
	if got := cl.FE.Connections(); got < int64(conns) {
		t.Errorf("front-end accepted %d connections, want ≥ %d", got, conns)
	}
	if u := cl.FE.Utilization(); u < 0 || u > 1 {
		t.Errorf("Utilization() = %v, want within [0,1]", u)
	}

	eng.Maintain()
	in := eng.Interner()
	if got := in.Len(); got > maxTargets {
		t.Errorf("interner table holds %d targets after soak, cap %d", got, maxTargets)
	}
	if hw := int(in.HighWater()); hw > maxTargets {
		t.Errorf("per-ID slice bound (high water) is %d after soak, cap %d", hw, maxTargets)
	}
	if in.Recycles() == 0 {
		t.Error("no ID recycling despite unbounded URL stream")
	}
	if distinct := len(tr.Sizes); distinct <= maxTargets {
		t.Fatalf("workload has only %d distinct targets; soak is not unbounded", distinct)
	}
	// The cap must not have cost correctness of the live set: every node's
	// mapping entries reference live interned targets (Name panics on a
	// recycled ID, so this loop is itself the no-aliasing check).
	if m, ok := cl.FE.Policy().(*policy.LARD); ok {
		for n := 0; n < m.Mapping().Nodes(); n++ {
			if b := m.Mapping().MappedBytes(core.NodeID(n)); b > cfg.CacheBytes {
				t.Errorf("node %d mapping over budget: %d > %d", n, b, cfg.CacheBytes)
			}
		}
	}
}
