package cluster_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/loadgen"
	"phttp/internal/metrics"
)

// scrapeStatus performs one GET against the front-end's status handler.
func scrapeStatus(t *testing.T, fe *cluster.FrontEnd) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	fe.StatusHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/status", nil))
	return rec
}

// TestStatusEndpoint drives traffic through a relay cluster and checks
// the Prometheus exposition: content type, the expected metric families
// (golden on the HELP/TYPE headers), counter values agreeing with the
// front-end's accessors, and a well-formed cumulative latency histogram.
func TestStatusEndpoint(t *testing.T) {
	cfg, tr := testConfig(t, 2, "lard", core.RelayFrontEnd)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	runLoad(t, cl.Addr(), tr, false)

	// A classic single front-end has no tier: the tier accessors must
	// report the degenerate values, and the back-ends a real hit rate.
	if cl.FE.PeerAddr() != "" || cl.FE.RemoteOpens() != 0 ||
		cl.FE.TierSyncs() != 0 || cl.FE.TierFallbacks() != 0 {
		t.Error("single front-end reports tier activity")
	}
	if err := cl.FE.ConnectPeers(nil); err != nil {
		t.Errorf("ConnectPeers is documented as a no-op without a tier, got %v", err)
	}
	if hr := cl.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("HitRate = %g, want in [0,1]", hr)
	}

	rec := scrapeStatus(t, cl.FE)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metrics.PromContentType)
	}
	body := rec.Body.String()

	// Golden header sequence: the families and their types are the
	// endpoint's contract with a scraper.
	var headers []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			headers = append(headers, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	wantHeaders := []string{
		"phttp_fe_requests_total counter",
		"phttp_fe_connections_total counter",
		"phttp_fe_unavailable_total counter",
		"phttp_fe_redispatches_total counter",
		"phttp_fe_utilization gauge",
		"phttp_fe_backends gauge",
		"phttp_fe_request_duration_seconds histogram",
	}
	if strings.Join(headers, ";") != strings.Join(wantHeaders, ";") {
		t.Errorf("TYPE headers = %v, want %v", headers, wantHeaders)
	}

	wantReqs := int64(tr.Requests())
	for _, probe := range []struct {
		line string
		want int64
	}{
		{"phttp_fe_requests_total", wantReqs},
		{"phttp_fe_unavailable_total", 0},
		{"phttp_fe_redispatches_total", 0},
		{`phttp_fe_backends{state="up"}`, 2},
		{`phttp_fe_backends{state="down"}`, 0},
		{"phttp_fe_request_duration_seconds_count", wantReqs},
	} {
		if got, ok := promValue(body, probe.line); !ok || got != float64(probe.want) {
			t.Errorf("%s = %v (found=%v), want %d", probe.line, got, ok, probe.want)
		}
	}

	// The histogram must expose cumulative, monotone buckets ending at
	// +Inf == count.
	bucketRe := regexp.MustCompile(`(?m)^phttp_fe_request_duration_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	matches := bucketRe.FindAllStringSubmatch(body, -1)
	if len(matches) < 2 {
		t.Fatalf("want ≥2 bucket lines, got %d in:\n%s", len(matches), body)
	}
	prevBound, prevCum := -1.0, int64(-1)
	for _, m := range matches {
		cum, _ := strconv.ParseInt(m[2], 10, 64)
		if cum < prevCum {
			t.Errorf("bucket counts not cumulative: %d after %d", cum, prevCum)
		}
		prevCum = cum
		if m[1] == "+Inf" {
			if cum != wantReqs {
				t.Errorf("+Inf bucket = %d, want %d", cum, wantReqs)
			}
			continue
		}
		bound, err := strconv.ParseFloat(m[1], 64)
		if err != nil || bound <= prevBound {
			t.Errorf("bad le bound %q after %g (err=%v)", m[1], prevBound, err)
		}
		prevBound = bound
	}
}

// promValue extracts an unlabeled (or exactly-labeled) sample value.
func promValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		return v, err == nil
	}
	return 0, false
}

func TestStatusMethodNotAllowed(t *testing.T) {
	cfg, _ := testConfig(t, 2, "wrr", core.BEForwarding)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	rec := httptest.NewRecorder()
	cl.FE.StatusHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/status", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /status = %d, want %d", rec.Code, http.StatusMethodNotAllowed)
	}
}

// TestStatusExpositionParsesUnderLoad scrapes the status endpoint over
// real HTTP while the cluster serves traffic and feeds every scrape
// through the strict exposition parser: each snapshot must be valid
// scrape input (families headed by HELP/TYPE, well-formed labels and
// values) and the latency histogram must hold its invariants — monotone
// cumulative buckets, strictly increasing le bounds, +Inf == _count —
// even when sampled mid-update.
func TestStatusExpositionParsesUnderLoad(t *testing.T) {
	cfg, tr := testConfig(t, 2, "extlard", core.BEForwarding)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	srv := httptest.NewServer(cl.FE.StatusHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Errorf("scrape read: %v", err)
				return
			}
			fams, err := metrics.ParseProm(string(body))
			if err != nil {
				t.Errorf("scrape %d is not valid exposition: %v\n%s", scrapes.Load(), err, body)
				return
			}
			checkedHist := false
			for _, f := range fams {
				if f.Type != "histogram" {
					continue
				}
				checkedHist = true
				if err := metrics.CheckHistogram(f); err != nil {
					t.Errorf("scrape %d: %v\n%s", scrapes.Load(), err, body)
					return
				}
			}
			if !checkedHist {
				t.Error("exposition carries no histogram family")
				return
			}
			scrapes.Add(1)
		}
	}()
	if _, err := loadgen.Run(loadgen.Config{
		Addr:        cl.Addr(),
		Trace:       tr,
		Concurrency: 8,
	}); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	close(stop)
	wg.Wait()
	if scrapes.Load() == 0 {
		t.Fatal("no scrape completed during the load run")
	}
}

// TestStatusScrapeUnderLoad scrapes concurrently with live traffic; under
// -race this proves the endpoint reads its sources without torn state.
func TestStatusScrapeUnderLoad(t *testing.T) {
	cfg, tr := testConfig(t, 2, "extlard", core.BEForwarding)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rec := scrapeStatus(t, cl.FE); rec.Code != http.StatusOK {
				t.Errorf("scrape under load: %d", rec.Code)
				return
			}
		}
	}()
	if _, err := loadgen.Run(loadgen.Config{
		Addr:        cl.Addr(),
		Trace:       tr,
		Concurrency: 8,
	}); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	close(stop)
	wg.Wait()

	// BE forwarding records one sample per dispatched request at
	// forward time: the histogram must account for every request.
	if got, want := cl.FE.Latency().Count(), cl.FE.Requests(); got != want {
		t.Errorf("latency samples = %d, requests = %d", got, want)
	}
}
