package cluster_test

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"phttp/internal/cache"
	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/loadgen"
	"phttp/internal/membership"
	"phttp/internal/policy"
	"phttp/internal/server"
	"phttp/internal/trace"
)

// churnConfig is testConfig plus aggressive failure-detection timing, so
// a crash is confirmed Down in a few hundred milliseconds instead of the
// production default's two seconds.
func churnConfig(t *testing.T, nodes int, pol string, mech core.Mechanism) (cluster.Config, *trace.Trace) {
	t.Helper()
	cfg, tr := testConfig(t, nodes, pol, mech)
	cfg.HeartbeatTimeout = 150 * time.Millisecond
	cfg.ConfirmWindow = 150 * time.Millisecond
	cfg.HealthInterval = 25 * time.Millisecond
	cfg.RetryBudget = 3
	return cfg, tr
}

// waitForState polls until node n reaches state s at the front-end.
func waitForState(t *testing.T, fe *cluster.FrontEnd, n core.NodeID, s membership.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fe.Membership().State(n) == s {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %v never reached %v (now %v)", n, s, fe.Membership().State(n))
}

// TestCrashMidRunRedispatches is the crash-under-load end-to-end test:
// a back-end dies mid-run under the relay mechanism (the front-end owns
// every client socket, so correctness is fully observable), the failure
// detector confirms it Down, in-flight requests re-dispatch to survivors
// within the retry budget, and the client sees zero failures. Afterwards
// the slot rejoins cold via AddBackend and serves again, and teardown
// leaks no goroutines (the leak_test harness pattern).
func TestCrashMidRunRedispatches(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg, tr := churnConfig(t, 3, "extlard", core.RelayFrontEnd)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	const dead = core.NodeID(1)
	done := make(chan loadgen.Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := loadgen.Run(loadgen.Config{
			Addr: cl.Addr(), Trace: tr, Concurrency: 16,
			Verify: true, IOTimeout: 30 * time.Second,
		})
		errc <- err
		done <- res
	}()
	time.Sleep(200 * time.Millisecond)
	cl.BEs[dead].Close()
	waitForState(t, cl.FE, dead, membership.Down)

	if err := <-errc; err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	res := <-done
	if res.Errors != 0 {
		t.Errorf("%d client-visible failures; the retry budget should hide a single crash", res.Errors)
	}
	if want := int64(tr.Requests()); res.Requests != want {
		t.Errorf("served %d requests, want %d", res.Requests, want)
	}
	if got := cl.FE.Redispatches(); got == 0 {
		t.Error("no request was re-dispatched; the crash landed outside the run window")
	}

	// The dead node's dispatcher state must be released: extlard's
	// mapping drops every belief about a Down node (cold-start default),
	// returning its interner references.
	type mapper interface{ Mapping() *cache.Mapping }
	m, ok := cl.FE.Policy().(mapper)
	if !ok {
		t.Fatalf("policy %T exposes no mapping", cl.FE.Policy())
	}
	if got := m.Mapping().MappedTargets(dead); got != 0 {
		t.Errorf("dead node still holds %d mapped targets", got)
	}

	// Rejoin: a fresh back-end process takes the slot, cold.
	if _, err := cl.AddBackend(dead); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	waitForState(t, cl.FE, dead, membership.Up)
	res2 := runLoad(t, cl.Addr(), tr, false)
	if res2.Errors != 0 {
		t.Errorf("%d errors after rejoin", res2.Errors)
	}

	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestDrainCompletesGracefully: a drained node finishes its work, takes
// no new connections, and the run sees no errors.
func TestDrainCompletesGracefully(t *testing.T) {
	cfg, tr := churnConfig(t, 3, "extlard", core.BEForwarding)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	done := make(chan loadgen.Result, 1)
	go func() {
		res, _ := loadgen.Run(loadgen.Config{
			Addr: cl.Addr(), Trace: tr, Concurrency: 16,
			Verify: true, IOTimeout: 30 * time.Second,
		})
		done <- res
	}()
	time.Sleep(150 * time.Millisecond)
	if err := cl.RemoveBackend(2); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitForState(t, cl.FE, 2, membership.Draining)
	res := <-done
	if res.Errors != 0 {
		t.Errorf("%d errors while draining", res.Errors)
	}
	if res.Requests != int64(tr.Requests()) {
		t.Errorf("served %d requests, want %d", res.Requests, tr.Requests())
	}
}

// TestNoUpBackendsReturns503: with every back-end confirmed Down, a new
// client gets 503 Service Unavailable with a Retry-After hint, and the
// refusal is counted.
func TestNoUpBackendsReturns503(t *testing.T) {
	cfg, _ := churnConfig(t, 1, "lard", core.SingleHandoff)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	cl.BEs[0].Close()
	waitForState(t, cl.FE, 0, membership.Down)

	conn, err := net.Dial("tcp", cl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /any HTTP/1.1\r\nHost: cluster\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read status: %v", err)
	}
	if !strings.Contains(status, "503") {
		t.Fatalf("status line %q, want 503", strings.TrimSpace(status))
	}
	sawRetry := false
	for {
		line, err := br.ReadString('\n')
		if err != nil || strings.TrimSpace(line) == "" {
			break
		}
		if strings.HasPrefix(line, "Retry-After:") {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("503 carried no Retry-After header")
	}
	if got := cl.FE.Unavailable(); got == 0 {
		t.Error("503 refusal not counted in metrics")
	}
}

// refusedAddr returns a loopback address that refuses connections: bound
// once, then released.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestStartToleratesRefusedBackend: one unreachable back-end no longer
// aborts front-end start — the slot comes up Down and traffic flows to
// the reachable node.
func TestStartToleratesRefusedBackend(t *testing.T) {
	sc := trace.SmallSynthConfig()
	sc.Connections = 50
	tr := trace.NewSynth(sc).Generate()
	be, err := cluster.NewBackend(cluster.BackendConfig{
		ID:            1,
		Catalog:       tr.Sizes,
		CacheBytes:    8 << 20,
		Disk:          server.DefaultDisk(),
		Costs:         server.ApacheCosts(),
		TimeScale:     50,
		HandoffSocket: filepath.Join(t.TempDir(), "be1.sock"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	eps := []cluster.BackendEndpoints{
		{Ctrl: refusedAddr(t), Handoff: "/nonexistent"},
		{Ctrl: be.CtrlAddr(), Handoff: be.HandoffPath()},
	}
	fe, err := cluster.NewFrontEnd(cluster.FrontEndConfig{
		Nodes:       2,
		Policy:      "lard",
		Mechanism:   core.SingleHandoff,
		Params:      policy.DefaultParams(),
		CacheBytes:  8 << 20,
		DialRetries: 1,
		DialBackoff: 5 * time.Millisecond,
	}, eps)
	if err != nil {
		t.Fatalf("one refused back-end aborted start: %v", err)
	}
	defer fe.Close()
	if got := fe.Membership().Snapshot(); got[0] != membership.Down || got[1] != membership.Up {
		t.Fatalf("membership after partial start = %v, want [down up]", got)
	}

	res, err := loadgen.Run(loadgen.Config{
		Addr: fe.Addr(), Trace: tr, Concurrency: 4,
		Verify: true, IOTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors with one vacant slot", res.Errors)
	}
}

// TestStartFailsWithZeroReachable pins the failure floor: when no
// back-end answers, start must still error.
func TestStartFailsWithZeroReachable(t *testing.T) {
	eps := []cluster.BackendEndpoints{
		{Ctrl: refusedAddr(t), Handoff: "/nonexistent"},
		{Ctrl: refusedAddr(t), Handoff: "/nonexistent"},
	}
	_, err := cluster.NewFrontEnd(cluster.FrontEndConfig{
		Nodes:       2,
		Policy:      "wrr",
		Mechanism:   core.SingleHandoff,
		Params:      policy.DefaultParams(),
		CacheBytes:  8 << 20,
		DialRetries: 1,
		DialBackoff: time.Millisecond,
	}, eps)
	if err == nil || !strings.Contains(err.Error(), "no reachable back-end") {
		t.Fatalf("err = %v, want no-reachable-back-end failure", err)
	}
}
