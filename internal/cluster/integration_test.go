package cluster_test

import (
	"testing"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/loadgen"
	"phttp/internal/server"
	"phttp/internal/trace"
)

// testConfig builds a small, fast cluster: scaled-down latencies, small
// cache, small catalog.
func testConfig(t *testing.T, nodes int, pol string, mech core.Mechanism) (cluster.Config, *trace.Trace) {
	t.Helper()
	sc := trace.SmallSynthConfig()
	sc.Connections = 600
	tr := trace.NewSynth(sc).Generate()
	cfg := cluster.DefaultConfig(nodes, tr.Sizes)
	cfg.Policy = pol
	cfg.Mechanism = mech
	cfg.TimeScale = 50 // 50x faster than modeled hardware
	cfg.CacheBytes = 8 << 20
	cfg.Disk = server.DefaultDisk()
	cfg.BatchWindow = time.Millisecond
	return cfg, tr
}

// runLoad drives the trace through the cluster with verification on.
func runLoad(t *testing.T, addr string, tr *trace.Trace, http10 bool) loadgen.Result {
	t.Helper()
	res, err := loadgen.Run(loadgen.Config{
		Addr:        addr,
		Trace:       tr,
		HTTP10:      http10,
		Concurrency: 16,
		Verify:      true,
		IOTimeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	return res
}

func TestClusterEndToEndBEForwarding(t *testing.T) {
	cfg, tr := testConfig(t, 3, "extlard", core.BEForwarding)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	res := runLoad(t, cl.Addr(), tr, false)
	want := int64(tr.Requests())
	if res.Requests != want {
		t.Errorf("served %d requests, want %d", res.Requests, want)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors (corruption, size mismatch or status)", res.Errors)
	}
	if got := cl.FE.Requests(); got != want {
		t.Errorf("front-end dispatched %d requests, want %d", got, want)
	}
}

func TestClusterEndToEndHTTP10(t *testing.T) {
	cfg, tr := testConfig(t, 2, "lard", core.SingleHandoff)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	res := runLoad(t, cl.Addr(), tr, true)
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	if res.Requests != int64(tr.Requests()) {
		t.Errorf("served %d requests, want %d", res.Requests, tr.Requests())
	}
}

func TestClusterEndToEndWRR(t *testing.T) {
	cfg, tr := testConfig(t, 2, "wrr", core.SingleHandoff)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	res := runLoad(t, cl.Addr(), tr, false)
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	// WRR never forwards: every back-end must have served something, and
	// the sum must cover the trace.
	if cl.Served() != int64(tr.Requests()) {
		t.Errorf("backends served %d, want %d", cl.Served(), tr.Requests())
	}
	for i, be := range cl.BEs {
		if be.Served() == 0 {
			t.Errorf("backend %d served nothing under WRR", i)
		}
	}
}

func TestClusterEndToEndRelay(t *testing.T) {
	cfg, tr := testConfig(t, 3, "extlard", core.RelayFrontEnd)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	res := runLoad(t, cl.Addr(), tr, false)
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	if res.Requests != int64(tr.Requests()) {
		t.Errorf("served %d requests, want %d", res.Requests, tr.Requests())
	}
}

func TestClusterRejectsSimOnlyMechanism(t *testing.T) {
	cfg, _ := testConfig(t, 2, "extlard", core.MultipleHandoff)
	if _, err := cluster.Start(cfg); err == nil {
		t.Fatal("Start accepted multiple handoff; the prototype should reject simulator-only mechanisms")
	}
}

func TestBackendDeathSurfacesErrors(t *testing.T) {
	cfg, tr := testConfig(t, 3, "extlard", core.BEForwarding)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	// Kill one back-end's peer listener mid-run: lateral fetches to it
	// must fail over to 502s rather than wedging client connections.
	done := make(chan loadgen.Result)
	go func() {
		res, _ := loadgen.Run(loadgen.Config{
			Addr: cl.Addr(), Trace: tr, Concurrency: 8,
			Verify: true, IOTimeout: 20 * time.Second,
		})
		done <- res
	}()
	time.Sleep(100 * time.Millisecond)
	cl.BEs[2].Close()
	select {
	case <-done:
		// The run must terminate; errors are expected and acceptable.
	case <-time.After(120 * time.Second):
		t.Fatal("load run wedged after backend death")
	}
}
