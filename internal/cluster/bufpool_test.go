package cluster

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"phttp/internal/core"
	"phttp/internal/httpmsg"
)

// TestChunkWriterCorrectness checks the pooled path emits byte-identical
// responses to a plain unbuffered write, across every size class and the
// beyond-largest streaming case.
func TestChunkWriterCorrectness(t *testing.T) {
	for _, size := range []int64{0, 1, 100, 4 << 10, 5 << 10, 16 << 10, 60 << 10, 64 << 10, 300 << 10} {
		target := core.Target(fmt.Sprintf("/chunk/%d", size))
		head := httpmsg.ResponseHead("HTTP/1.1", 200, size, true)

		var want bytes.Buffer
		want.WriteString(head)
		if err := WriteContent(&want, target, size); err != nil {
			t.Fatal(err)
		}

		var got bytes.Buffer
		err := writeBuffered(&got, head, func(w io.Writer) error {
			return WriteContent(w, target, size)
		}, int64(len(head))+size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("size %d: pooled response differs from reference (%d vs %d bytes)",
				size, got.Len(), want.Len())
		}
	}
}

func TestChunkClassFor(t *testing.T) {
	for hint, want := range map[int64]int{
		0: 0, 1: 0, 4 << 10: 0,
		4<<10 + 1: 1, 16 << 10: 1,
		16<<10 + 1: 2, 64 << 10: 2,
		1 << 20: 2, // beyond the largest class: stream through it
	} {
		if got := chunkClassFor(hint); got != want {
			t.Errorf("chunkClassFor(%d) = %d, want %d", hint, got, want)
		}
	}
}

// TestChunkWriterErrorPropagates verifies a failing underlying writer
// surfaces through Write/Flush instead of being swallowed by buffering.
func TestChunkWriterErrorPropagates(t *testing.T) {
	head := strings.Repeat("h", 128)
	err := writeBuffered(failWriter{}, head, func(w io.Writer) error {
		return WriteContent(w, "/x", 256<<10) // forces intermediate flushes
	}, 256<<10)
	if err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// TestWriteBufferedZeroAllocs is the regression test for the size-classed
// chunk pool: once the pools are warm, producing a response — head write,
// content generation, flush — allocates nothing, for a cached-size body,
// a mid-class body and a body larger than the largest class.
func TestWriteBufferedZeroAllocs(t *testing.T) {
	for _, size := range []int64{3 << 10, 12 << 10, 200 << 10} {
		target := core.Target(fmt.Sprintf("/alloc/%d", size))
		head := httpmsg.ResponseHead("HTTP/1.1", 200, size, true)
		hint := int64(len(head)) + size
		body := func(w io.Writer) error { return WriteContent(w, target, size) }
		run := func() {
			if err := writeBuffered(io.Discard, head, body, hint); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the pool and the content chunk cache
		if allocs := testing.AllocsPerRun(200, run); allocs > 0 {
			t.Errorf("size %d: %v allocs per response, want 0", size, allocs)
		}
	}
}

// TestChunkWriterReadFrom pins the io.ReaderFrom path io.CopyN takes on
// the forwarded-fetch branch: byte-correct and allocation-free, so
// lateral fetches stream through the pooled chunk instead of a fresh
// io.Copy buffer.
func TestChunkWriterReadFrom(t *testing.T) {
	const size = 100 << 10
	payload := bytes.Repeat([]byte("forward!"), size/8)
	var got bytes.Buffer
	err := writeBuffered(&got, "HEAD\r\n", func(w io.Writer) error {
		_, err := io.CopyN(w, bytes.NewReader(payload), size)
		return err
	}, 6+size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), append([]byte("HEAD\r\n"), payload...)) {
		t.Fatal("ReadFrom path corrupted the stream")
	}

	body := func(w io.Writer) error {
		_, err := io.CopyN(w, bytes.NewReader(payload), size)
		return err
	}
	run := func() {
		if err := writeBuffered(io.Discard, "HEAD\r\n", body, 6+size); err != nil {
			t.Fatal(err)
		}
	}
	run()
	// Two small allocs are the harness's own (bytes.NewReader plus CopyN's
	// LimitReader wrapper); what must NOT appear is a third — io.Copy's
	// 32 KB fallback buffer, which ReadFrom exists to avoid.
	if allocs := testing.AllocsPerRun(100, run); allocs > 2 {
		t.Errorf("CopyN through chunkWriter: %v allocs per response, want <= 2 (no copy buffer)", allocs)
	}
}

// BenchmarkWriteBuffered tracks the buffered-response hot path (the old
// implementation allocated a 32 KB bufio.Writer per call).
func BenchmarkWriteBuffered(b *testing.B) {
	const size = 12 << 10
	head := httpmsg.ResponseHead("HTTP/1.1", 200, size, true)
	body := func(w io.Writer) error { return WriteContent(w, "/bench", size) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := writeBuffered(io.Discard, head, body, int64(len(head))+size); err != nil {
			b.Fatal(err)
		}
	}
}
