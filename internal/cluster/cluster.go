package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/dstate"
	"phttp/internal/policy"
	"phttp/internal/server"
)

// Config describes a whole prototype cluster (front-end plus back-ends) for
// the in-process harness used by tests, benchmarks and the example
// programs. The standalone binaries (cmd/phttp-frontend, cmd/phttp-backend)
// assemble the same pieces across processes.
type Config struct {
	Nodes  int
	Policy string // dispatch registry name (see dispatch.Names)
	// PolicyOptions are generic policy options forwarded to the dispatch
	// registry (see FrontEndConfig.PolicyOptions).
	PolicyOptions dispatch.Options
	Mechanism     core.Mechanism
	Params        policy.Params

	Catalog    map[core.Target]int64
	CacheBytes int64
	// MaxTargets caps the front-end's target interner (see
	// FrontEndConfig.MaxTargets); 0 pins every target.
	MaxTargets int
	// InternStripes overrides the capped interner's shard count (see
	// FrontEndConfig.InternStripes); 0 picks the size-based default.
	InternStripes int
	Disk          server.DiskParams
	Costs         server.Costs

	// SimulateCPU applies the Apache/Flash CPU cost model at back-ends.
	SimulateCPU bool
	// TimeScale divides simulated latencies so the full system can be
	// exercised quickly with unchanged relative costs.
	TimeScale float64

	IdleTimeout time.Duration
	BatchWindow time.Duration
	// MaintainInterval is the front-end's wall-clock maintenance ticker
	// (see FrontEndConfig.MaintainInterval); 0 disables it.
	MaintainInterval time.Duration

	// Membership knobs, passed through to the front-end (see the
	// FrontEndConfig fields of the same names); zero values take the
	// front-end defaults.
	DialRetries      int
	DialBackoff      time.Duration
	HeartbeatTimeout time.Duration
	ConfirmWindow    time.Duration
	HealthInterval   time.Duration
	RetryBudget      int

	// Frontends sizes the scale-out front-end tier; 0 or 1 starts the
	// paper's single front-end. A plural tier starts Frontends front-end
	// nodes over the same back-ends, each with its own client listener
	// and dispatch engine, exchanging dispatch state per State.
	Frontends int
	// State selects the tier's dispatch-state backend (sharded or
	// replicated; required when Frontends > 1).
	State dstate.Mode
	// SyncInterval and StateSeed pass through to the front-ends (see
	// FrontEndConfig fields of the same names).
	SyncInterval time.Duration
	StateSeed    uint64
}

// PrototypeCacheBytes is the default prototype back-end cache: the paper's
// 128 MB machines showed 60-75 MB of effective file cache under Apache.
const PrototypeCacheBytes = 60 << 20

// DefaultConfig returns the calibrated prototype configuration over the
// given catalog.
func DefaultConfig(nodes int, catalog map[core.Target]int64) Config {
	return Config{
		Nodes:       nodes,
		Policy:      "extlard",
		Mechanism:   core.BEForwarding,
		Params:      policy.DefaultParams(),
		Catalog:     catalog,
		CacheBytes:  PrototypeCacheBytes,
		Disk:        server.DefaultDisk(),
		Costs:       server.ApacheCosts(),
		SimulateCPU: true,
		TimeScale:   1,
		IdleTimeout: 15 * time.Second,
		BatchWindow: 2 * time.Millisecond,

		MaintainInterval: DefaultMaintainInterval,
	}
}

// Cluster is a running in-process prototype cluster. FE is the first
// (or only) front-end; a scale-out tier's members are all in FEs.
type Cluster struct {
	FE  *FrontEnd
	FEs []*FrontEnd
	BEs []*Backend
	dir string

	cfg Config
	gen int // replacement generation, for unique handoff socket paths
}

// Start brings up the back-ends, wires their peer links, and starts the
// front-end. Callers must Close the cluster.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if len(cfg.Catalog) == 0 {
		return nil, fmt.Errorf("cluster: empty catalog")
	}
	dir, err := HandoffSocketDir()
	if err != nil {
		return nil, fmt.Errorf("cluster: handoff socket dir: %w", err)
	}
	c := &Cluster{dir: dir, cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		be, err := NewBackend(BackendConfig{
			ID:            core.NodeID(i),
			Catalog:       cfg.Catalog,
			CacheBytes:    cfg.CacheBytes,
			Disk:          cfg.Disk,
			Costs:         cfg.Costs,
			SimulateCPU:   cfg.SimulateCPU,
			TimeScale:     cfg.TimeScale,
			HandoffSocket: filepath.Join(dir, fmt.Sprintf("be%d.sock", i)),
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.BEs = append(c.BEs, be)
	}
	peers := make(map[core.NodeID]string, cfg.Nodes)
	for i, be := range c.BEs {
		peers[core.NodeID(i)] = be.PeerAddr()
	}
	for _, be := range c.BEs {
		be.SetPeers(peers)
	}
	eps := make([]BackendEndpoints, len(c.BEs))
	for i, be := range c.BEs {
		eps[i] = BackendEndpoints{Ctrl: be.CtrlAddr(), Handoff: be.HandoffPath()}
	}
	frontends := cfg.Frontends
	if frontends < 1 {
		frontends = 1
	}
	for f := 0; f < frontends; f++ {
		fecfg := FrontEndConfig{
			Nodes:            cfg.Nodes,
			Policy:           cfg.Policy,
			PolicyOptions:    cfg.PolicyOptions,
			Mechanism:        cfg.Mechanism,
			Params:           cfg.Params,
			CacheBytes:       cfg.CacheBytes,
			MaxTargets:       cfg.MaxTargets,
			InternStripes:    cfg.InternStripes,
			IdleTimeout:      cfg.IdleTimeout,
			BatchWindow:      cfg.BatchWindow,
			MaintainInterval: cfg.MaintainInterval,
			DialRetries:      cfg.DialRetries,
			DialBackoff:      cfg.DialBackoff,
			HeartbeatTimeout: cfg.HeartbeatTimeout,
			ConfirmWindow:    cfg.ConfirmWindow,
			HealthInterval:   cfg.HealthInterval,
			RetryBudget:      cfg.RetryBudget,
		}
		if frontends > 1 {
			fecfg.Frontends = frontends
			fecfg.FEID = f
			fecfg.State = cfg.State
			fecfg.SyncInterval = cfg.SyncInterval
			fecfg.StateSeed = cfg.StateSeed
		}
		fe, err := NewFrontEnd(fecfg, eps)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.FEs = append(c.FEs, fe)
	}
	c.FE = c.FEs[0]
	// Two-phase tier bring-up: every member's peer listener exists now, so
	// each can link to the full slate.
	if frontends > 1 {
		addrs := make([]string, frontends)
		for f, fe := range c.FEs {
			addrs[f] = fe.PeerAddr()
		}
		for _, fe := range c.FEs {
			if err := fe.ConnectPeers(addrs); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// FEAddrs returns the client-facing addresses of every front-end, in
// front-end-ID order.
func (c *Cluster) FEAddrs() []string {
	addrs := make([]string, len(c.FEs))
	for i, fe := range c.FEs {
		addrs[i] = fe.Addr()
	}
	return addrs
}

// Addr returns the client-facing address of the front-end.
func (c *Cluster) Addr() string { return c.FE.Addr() }

// HitRate returns the aggregate back-end cache hit rate.
func (c *Cluster) HitRate() float64 {
	var hits, misses int64
	for _, be := range c.BEs {
		h, m := be.Store().Counters()
		hits += h
		misses += m
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Served returns the total responses written by all back-ends.
func (c *Cluster) Served() int64 {
	var n int64
	for _, be := range c.BEs {
		n += be.Served()
	}
	return n
}

// AddBackend replaces slot id with a freshly started back-end process
// (cold cache) and reconnects the front-end to it — the prototype's
// join/rejoin operation. The previous occupant, if any, is closed first.
func (c *Cluster) AddBackend(id core.NodeID) (*Backend, error) {
	if int(id) < 0 || int(id) >= len(c.BEs) {
		return nil, fmt.Errorf("cluster: backend slot %v out of range [0,%d)", id, len(c.BEs))
	}
	if old := c.BEs[id]; old != nil {
		old.Close()
	}
	c.gen++
	be, err := NewBackend(BackendConfig{
		ID:            id,
		Catalog:       c.cfg.Catalog,
		CacheBytes:    c.cfg.CacheBytes,
		Disk:          c.cfg.Disk,
		Costs:         c.cfg.Costs,
		SimulateCPU:   c.cfg.SimulateCPU,
		TimeScale:     c.cfg.TimeScale,
		HandoffSocket: filepath.Join(c.dir, fmt.Sprintf("be%d-g%d.sock", id, c.gen)),
	})
	if err != nil {
		return nil, err
	}
	c.BEs[id] = be
	// Re-wire lateral-fetch peers everywhere: the replacement listens on
	// fresh ports, and the newcomer needs the full peer map itself.
	peers := make(map[core.NodeID]string, len(c.BEs))
	for i, b := range c.BEs {
		peers[core.NodeID(i)] = b.PeerAddr()
	}
	for _, b := range c.BEs {
		b.SetPeers(peers)
	}
	for _, fe := range c.FEs {
		if err := fe.AddBackend(id, BackendEndpoints{Ctrl: be.CtrlAddr(), Handoff: be.HandoffPath()}); err != nil {
			be.Close()
			return nil, err
		}
	}
	return be, nil
}

// RemoveBackend drains slot id at every front-end (graceful leave). The
// back-end process keeps running until its work completes; callers close
// it when done, or replace it via AddBackend.
func (c *Cluster) RemoveBackend(id core.NodeID) error {
	for _, fe := range c.FEs {
		if err := fe.RemoveBackend(id); err != nil {
			return err
		}
	}
	return nil
}

// Close tears the cluster down: front-ends first (stops traffic), then
// the back-ends, then the handoff socket directory.
func (c *Cluster) Close() {
	for _, fe := range c.FEs {
		fe.Close()
	}
	for _, be := range c.BEs {
		be.Close()
	}
	if c.dir != "" {
		os.RemoveAll(c.dir)
	}
}
