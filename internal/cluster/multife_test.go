package cluster_test

import (
	"sync"
	"testing"
	"time"

	"phttp/internal/cluster"
	"phttp/internal/core"
	"phttp/internal/dstate"
	"phttp/internal/loadgen"
	"phttp/internal/trace"
)

// tierConfig builds a small 3-front-end / 3-back-end tier.
func tierConfig(t *testing.T, pol string, mech core.Mechanism, state dstate.Mode) (cluster.Config, *trace.Trace) {
	t.Helper()
	cfg, tr := testConfig(t, 3, pol, mech)
	cfg.Frontends = 3
	cfg.State = state
	cfg.SyncInterval = 10 * time.Millisecond
	return cfg, tr
}

// runTierLoad drives the trace through every front-end concurrently (each
// front-end replays the full trace — the point is plural dispatchers over
// shared back-ends, not input partitioning) and requires zero
// client-visible errors on every one.
func runTierLoad(t *testing.T, cl *cluster.Cluster, tr *trace.Trace) {
	t.Helper()
	var wg sync.WaitGroup
	results := make([]loadgen.Result, len(cl.FEs))
	errs := make([]error, len(cl.FEs))
	for i, addr := range cl.FEAddrs() {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i], errs[i] = loadgen.Run(loadgen.Config{
				Addr:        addr,
				Trace:       tr,
				Concurrency: 8,
				Verify:      true,
				IOTimeout:   20 * time.Second,
			})
		}(i, addr)
	}
	wg.Wait()
	want := int64(tr.Requests())
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("frontend %d loadgen: %v", i, errs[i])
		}
		if results[i].Errors != 0 {
			t.Errorf("frontend %d: %d client-visible errors (corruption, size mismatch or status)", i, results[i].Errors)
		}
		if results[i].Requests != want {
			t.Errorf("frontend %d served %d requests, want %d", i, results[i].Requests, want)
		}
	}
}

// TestMultiFESharded runs a 3-front-end tier with the target space
// partitioned across the members: every connection open for a non-owned
// target forwards its state transaction to the shard owner, and the whole
// trace must still come back byte-correct from every front-end.
func TestMultiFESharded(t *testing.T) {
	cfg, tr := tierConfig(t, "lard", core.SingleHandoff, dstate.ModeSharded)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start tier: %v", err)
	}
	defer cl.Close()
	runTierLoad(t, cl, tr)

	// The shard ring spreads ownership, so with three dispatchers over a
	// few hundred targets at least one open per front-end must have been
	// decided remotely — all-local would mean forwarding never engaged.
	remote := false
	for i, fe := range cl.FEs {
		if n := fe.RemoteOpens(); n > 0 {
			remote = true
		} else {
			t.Logf("frontend %d decided every open locally", i)
		}
		if fb := fe.TierFallbacks(); fb != 0 {
			t.Errorf("frontend %d fell back %d times with every peer healthy", i, fb)
		}
	}
	if !remote {
		t.Error("no front-end forwarded a single open: sharded ownership never engaged")
	}
}

// TestMultiFEReplicated runs a 3-front-end tier with fully replicated
// dispatch state under bounded staleness: every member decides locally and
// the periodic sync exchanges mapping deltas and load vectors.
func TestMultiFEReplicated(t *testing.T) {
	cfg, tr := tierConfig(t, "extlard", core.BEForwarding, dstate.ModeReplicated)
	cl, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start tier: %v", err)
	}
	defer cl.Close()
	runTierLoad(t, cl, tr)

	for i, fe := range cl.FEs {
		if fe.TierSyncs() == 0 {
			t.Errorf("frontend %d completed zero replication rounds", i)
		}
	}
	// Bounded staleness: within a few sync intervals every replica must
	// have heard its peers' load vectors (a non-zero remote conn count on
	// some node — the tier served thousands of connections).
	deadline := time.Now().Add(2 * time.Second)
	for i, fe := range cl.FEs {
		for {
			if fe.RemoteConnsSeen() || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !fe.RemoteConnsSeen() {
			t.Errorf("frontend %d never saw a peer load vector", i)
		}
	}
}

// TestMultiFEConfigValidation pins the tier configuration rules: a plural
// tier must pick a non-local state backend, sharded requires the
// single-handoff mechanism, and member IDs must lie inside the tier.
func TestMultiFEConfigValidation(t *testing.T) {
	base, _ := testConfig(t, 2, "lard", core.SingleHandoff)
	cases := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"plural tier without state backend", func(c *cluster.Config) {
			c.Frontends = 2
		}},
		{"sharded over BE forwarding", func(c *cluster.Config) {
			c.Frontends = 2
			c.State = dstate.ModeSharded
			c.Mechanism = core.BEForwarding
			c.Policy = "extlard"
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if cl, err := cluster.Start(cfg); err == nil {
			cl.Close()
			t.Errorf("%s: Start accepted an invalid tier configuration", tc.name)
		}
	}
}
