package sim

import (
	"testing"

	"phttp/internal/core"
)

// Tail-latency acceptance on the locality workload. The ordering the
// histograms expose is sharper than the paper's mean-throughput figures:
// in a closed loop, per-connection placement (simple LARD, any handoff
// flavor) converts its locality into throughput while the p99 stays
// pinned at disk-miss service time under full queues — so its tail must
// be no worse than WRR's, but only per-request placement (extended LARD
// with BE forwarding, the paper's advanced configuration) actually
// shrinks the tail, and by a wide margin. These tests pin both halves.

// tailRun runs one policy/mechanism at n nodes on the shared test trace.
func tailRun(t *testing.T, n int, policy string, mech core.Mechanism) Result {
	t.Helper()
	cfg := DefaultConfig(n, Combo{
		Name: policy + "-tail", Policy: policy, Mechanism: mech, PHTTP: true,
	})
	res, err := Run(cfg, testTrace())
	if err != nil {
		t.Fatalf("%s: %v", policy, err)
	}
	if res.Latency.Count != res.Requests {
		t.Fatalf("%s: histogram recorded %d samples for %d served requests",
			policy, res.Latency.Count, res.Requests)
	}
	return res
}

// TestLARDFamilyTailOrdering pins the tail ordering at four nodes:
// extended LARD must beat WRR's p99 by a wide margin, and simple
// LARD/LARD-replica must buy their throughput win without giving the
// tail back (p99 within a small factor of WRR's).
func TestLARDFamilyTailOrdering(t *testing.T) {
	wrr := tailRun(t, 4, "wrr", core.SingleHandoff)

	ext := tailRun(t, 4, "extlard", core.BEForwarding)
	t.Logf("extlard p99=%.1fms vs wrr p99=%.1fms",
		float64(ext.Latency.P99)/float64(core.Millisecond),
		float64(wrr.Latency.P99)/float64(core.Millisecond))
	// Strict, large-margin tail win: per-request placement keeps hot
	// targets cached, so the 99th percentile escapes the disk.
	if float64(ext.Latency.P99) >= 0.8*float64(wrr.Latency.P99) {
		t.Errorf("extlard p99 %v not well below wrr p99 %v", ext.Latency.P99, wrr.Latency.P99)
	}
	if ext.Latency.P999 >= wrr.Latency.P999 {
		t.Errorf("extlard p999 %v not below wrr p999 %v", ext.Latency.P999, wrr.Latency.P999)
	}

	for _, tc := range []struct {
		policy string
		mech   core.Mechanism
	}{
		{"lard", core.SingleHandoff},
		{"lardr", core.SingleHandoff},
	} {
		got := tailRun(t, 4, tc.policy, tc.mech)
		t.Logf("%-6s p99=%.1fms thr=%.0f (wrr p99=%.1fms thr=%.0f)",
			tc.policy, float64(got.Latency.P99)/float64(core.Millisecond), got.Throughput,
			float64(wrr.Latency.P99)/float64(core.Millisecond), wrr.Throughput)
		if got.Throughput <= wrr.Throughput {
			t.Errorf("%s throughput %.0f not above wrr %.0f", tc.policy, got.Throughput, wrr.Throughput)
		}
		// Closed loop, same concurrency: higher throughput forces a lower
		// mean delay (Little's law) ...
		if got.MeanDelay >= wrr.MeanDelay {
			t.Errorf("%s mean delay %v not below wrr %v", tc.policy, got.MeanDelay, wrr.MeanDelay)
		}
		// ... and the tail must not pay for it: p99 within 15% of WRR's
		// (disk-miss service under full queues bounds both).
		if float64(got.Latency.P99) > 1.15*float64(wrr.Latency.P99) {
			t.Errorf("%s p99 %v more than 15%% above wrr p99 %v", tc.policy, got.Latency.P99, wrr.Latency.P99)
		}
	}
}

// TestChurnCrashTailBoundedAndHonest crashes a node mid-run and checks
// the crash shows up in the tail without destroying it: re-dispatched
// requests are recorded (sample count still equals served requests —
// their retry delay lands in the histogram instead of vanishing), and
// the p999 stays within a bounded factor of the churn-free run.
func TestChurnCrashTailBoundedAndHonest(t *testing.T) {
	calm := tailRun(t, 4, "lard", core.SingleHandoff)

	cfg := DefaultConfig(4, Combo{
		Name: "lard-churn", Policy: "lard", Mechanism: core.SingleHandoff, PHTTP: true,
	})
	cfg.Churn = []ChurnEvent{
		{At: 2 * core.Micros(core.Second), Kind: ChurnCrash, Node: 2},
		{At: 6 * core.Micros(core.Second), Kind: ChurnJoin, Node: 2},
	}
	cfg.RetryBudget = 2
	res, err := Run(cfg, testTrace())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn: p99=%.1fms p999=%.1fms redispatches=%d failed=%d (calm p999=%.1fms)",
		float64(res.Latency.P99)/float64(core.Millisecond),
		float64(res.Latency.P999)/float64(core.Millisecond),
		res.Redispatches, res.FailedRequests,
		float64(calm.Latency.P999)/float64(core.Millisecond))

	if res.Redispatches == 0 {
		t.Fatal("crash produced no re-dispatches; the scenario is not exercising the crash window")
	}
	// Honesty: every served request has exactly one histogram sample —
	// re-dispatched ones included, carrying their full retry delay.
	if res.Latency.Count != res.Requests {
		t.Errorf("histogram recorded %d samples for %d served requests", res.Latency.Count, res.Requests)
	}
	// Bounded: the crash widens the tail but must not blow it up — the
	// re-dispatch machinery caps the damage at a small multiple of the
	// calm tail rather than leaving requests stranded for the whole
	// crash window.
	if limit := 3 * calm.Latency.P999; res.Latency.P999 > limit {
		t.Errorf("crash-window p999 %v exceeds 3x the churn-free p999 (%v)", res.Latency.P999, limit)
	}
}
