package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"phttp/internal/core"
)

// The latency-regression gate: virtual-time delays are bit-deterministic
// for a given (workload, config), so per-combo tail quantiles recorded in
// a checked-in baseline are machine-independent regression tests — the
// latency analogue of the coverage baseline CI already enforces. A
// change that inflates any combo's p99 past the recorded value (plus a
// small tolerance for intentional re-baselining slack) fails `make slo`.

// GateBenchConfig is the reference configuration of the latency gate:
// the seven Figure 7 combos at one cluster size on the reference
// workload — a few seconds of simulation, cheap enough to run in CI on
// every push (unlike the full bench sweep).
func GateBenchConfig() BenchConfig {
	cfg := DefaultBenchConfig()
	cfg.Nodes = []int{4}
	return cfg
}

// LatencyBaseline pins the per-combo p99 of the gate sweep. The workload
// identity (connections, seed) and node count are recorded so a gate run
// against a different reference fails loudly instead of comparing
// incomparable numbers.
type LatencyBaseline struct {
	Nodes       int    `json:"nodes"`
	Connections int    `json:"connections"`
	Seed        uint64 `json:"seed"`
	// TolerancePct is the allowed relative p99 increase before the gate
	// fails. Virtual-time results are exactly reproducible, so this only
	// absorbs histogram-bucket granularity if the bucket layout changes;
	// it is not headroom for real regressions.
	TolerancePct float64 `json:"tolerance_pct"`
	// P99Ms maps combo name to its recorded p99 in milliseconds.
	P99Ms map[string]float64 `json:"p99_ms"`
}

// NewLatencyBaseline digests gate-sweep results into a baseline.
func NewLatencyBaseline(cfg BenchConfig, results []Result, tolerancePct float64) LatencyBaseline {
	b := LatencyBaseline{
		Nodes:        cfg.Nodes[0],
		Connections:  cfg.Connections,
		Seed:         cfg.Seed,
		TolerancePct: tolerancePct,
		P99Ms:        make(map[string]float64, len(results)),
	}
	for _, r := range results {
		b.P99Ms[r.Combo] = float64(r.Latency.P99) / float64(core.Millisecond)
	}
	return b
}

// LoadLatencyBaseline reads a recorded baseline.
func LoadLatencyBaseline(path string) (LatencyBaseline, error) {
	var b LatencyBaseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("sim: latency baseline: %w", err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("sim: latency baseline %s: %w", path, err)
	}
	if len(b.P99Ms) == 0 {
		return b, fmt.Errorf("sim: latency baseline %s records no combos", path)
	}
	return b, nil
}

// Save writes the baseline as indented JSON.
func (b LatencyBaseline) Save(path string) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// CheckConfig verifies the gate sweep ran the recorded reference.
func (b LatencyBaseline) CheckConfig(cfg BenchConfig) error {
	if len(cfg.Nodes) != 1 || cfg.Nodes[0] != b.Nodes ||
		cfg.Connections != b.Connections || cfg.Seed != b.Seed {
		return fmt.Errorf("sim: latency gate config (nodes=%v conns=%d seed=%d) does not match baseline (nodes=[%d] conns=%d seed=%d)",
			cfg.Nodes, cfg.Connections, cfg.Seed, b.Nodes, b.Connections, b.Seed)
	}
	return nil
}

// CheckResults compares gate-sweep results against the baseline and
// returns one message per regression (empty slice = gate passes). A
// combo in the baseline but absent from the run is a regression — a
// deleted combo must be re-baselined deliberately, not pass silently.
func (b LatencyBaseline) CheckResults(results []Result) []string {
	var regressions []string
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		base, ok := b.P99Ms[r.Combo]
		if !ok {
			// A new combo has no recorded expectation; it starts gating
			// after the next -latency-record.
			continue
		}
		seen[r.Combo] = true
		got := float64(r.Latency.P99) / float64(core.Millisecond)
		allowed := base * (1 + b.TolerancePct/100)
		if got > allowed {
			regressions = append(regressions,
				fmt.Sprintf("%s: p99 %.2fms exceeds baseline %.2fms (+%.0f%% tolerance = %.2fms)",
					r.Combo, got, base, b.TolerancePct, allowed))
		}
	}
	var missing []string
	for combo := range b.P99Ms {
		if !seen[combo] {
			missing = append(missing, combo)
		}
	}
	sort.Strings(missing)
	for _, combo := range missing {
		regressions = append(regressions,
			fmt.Sprintf("%s: in baseline but absent from the gate sweep", combo))
	}
	return regressions
}
