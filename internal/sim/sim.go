package sim

import (
	"fmt"

	"phttp/internal/cache"
	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/policy"
	"phttp/internal/simcore"
	"phttp/internal/trace"
)

// node is one simulated back-end: CPU, disk, main-memory cache.
type node struct {
	cpu   simcore.Resource
	disk  simcore.Resource
	cache *cache.LRU
}

// Sim is one simulation run in progress.
type Sim struct {
	cfg   Config
	eng   *simcore.Engine
	nodes []*node
	fe    simcore.Resource
	disp  *dispatch.Engine
	trace *trace.Trace

	nextConn int // next trace connection to admit
	active   int

	// measurement
	served       int64
	servedBytes  int64
	delaySum     core.Micros
	warmDelaySum core.Micros
	warmConns    int
	doneConns    int
	warmServed   int64
	warmBytes    int64
	warmTime     core.Micros
	warmed       bool
	warmFEBusy   core.Micros
	warmCPUBusy  []core.Micros
	warmDiskBusy []core.Micros
}

// Run simulates the trace under cfg and returns the measured result.
func Run(cfg Config, tr *trace.Trace) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	workload := tr
	if !cfg.Combo.PHTTP {
		workload = tr.Flatten10()
	}
	disp, err := dispatch.NewEngine(cfg.dispatchSpec())
	if err != nil {
		return Result{}, err
	}
	s := &Sim{
		cfg:   cfg,
		eng:   simcore.NewEngine(),
		disp:  disp,
		trace: workload,
	}
	s.nodes = make([]*node, cfg.Nodes)
	for i := range s.nodes {
		s.nodes[i] = &node{cache: cache.NewLRU(cfg.CacheBytes)}
	}
	s.warmConns = int(cfg.WarmupFrac * float64(len(workload.Conns)))
	s.warmCPUBusy = make([]core.Micros, cfg.Nodes)
	s.warmDiskBusy = make([]core.Micros, cfg.Nodes)

	inFlight := cfg.ConnsPerNode * cfg.Nodes
	for i := 0; i < inFlight && s.admit(); i++ {
	}
	s.eng.Run(0)
	if s.active != 0 || s.nextConn != len(workload.Conns) {
		return Result{}, fmt.Errorf("sim: deadlock, %d connections still active after event queue drained", s.active)
	}
	return s.result(), nil
}

// admit starts the next trace connection; it reports whether one was
// available.
func (s *Sim) admit() bool {
	if s.nextConn >= len(s.trace.Conns) {
		return false
	}
	conn := s.trace.Conns[s.nextConn]
	s.nextConn++
	if conn.Requests() == 0 {
		return s.admit()
	}
	s.active++
	cr := &connRun{sim: s, conn: conn}
	cr.open()
	return true
}

// connDone finishes a connection's lifecycle and admits the next.
func (s *Sim) connDone(cr *connRun) {
	s.disp.ConnClose(cr.ec)
	s.active--
	s.doneConns++
	if !s.warmed && s.doneConns >= s.warmConns {
		s.warmed = true
		s.warmServed = s.served
		s.warmBytes = s.servedBytes
		s.warmDelaySum = s.delaySum
		s.warmTime = s.eng.Now()
		s.warmFEBusy = s.fe.BusyTotal()
		for i, n := range s.nodes {
			s.warmCPUBusy[i] = n.cpu.BusyTotal()
			s.warmDiskBusy[i] = n.disk.BusyTotal()
			n.cache.ResetStats()
		}
	}
	s.admit()
}

// cpuDo schedules cost on node n's CPU and runs fn at completion.
func (s *Sim) cpuDo(n core.NodeID, cost core.Micros, fn func()) {
	nd := s.nodes[n]
	done := nd.cpu.Schedule(s.eng.Now(), cost)
	s.eng.At(done, func() {
		nd.cpu.Release()
		if fn != nil {
			fn()
		}
	})
}

// feDo schedules cost on the front-end CPU, scaled by the configured
// front-end speedup.
func (s *Sim) feDo(cost core.Micros, fn func()) {
	if s.cfg.FESpeedup > 1 {
		cost = core.Micros(float64(cost) / s.cfg.FESpeedup)
	}
	done := s.fe.Schedule(s.eng.Now(), cost)
	s.eng.At(done, func() {
		s.fe.Release()
		if fn != nil {
			fn()
		}
	})
}

// diskDo schedules a read of size bytes on node n's disk, keeping the
// policy's view of the disk queue current (the prototype's control-session
// reports, idealized to instantaneous).
func (s *Sim) diskDo(n core.NodeID, size int64, fn func()) {
	nd := s.nodes[n]
	done := nd.disk.Schedule(s.eng.Now(), s.cfg.Disk.ReadTime(size))
	s.disp.ReportDiskQueue(n, nd.disk.Queued())
	s.eng.At(done, func() {
		nd.disk.Release()
		s.disp.ReportDiskQueue(n, nd.disk.Queued())
		if fn != nil {
			fn()
		}
	})
}

// connRun drives one client connection through its batches.
type connRun struct {
	sim  *Sim
	conn core.Connection
	ec   *dispatch.Conn

	batchIdx    int
	outstanding int
	batchStart  core.Micros
}

// open runs the connection-establishment path: front-end accept + dispatch,
// then the mechanism's per-connection work at the handling node, then the
// first batch.
func (c *connRun) open() {
	s := c.sim
	first := c.conn.Batches[0][0]
	var handling core.NodeID
	c.ec, handling = s.disp.ConnOpen(first)
	costs := s.cfg.Server
	switch s.cfg.Combo.Mechanism {
	case core.RelayFrontEnd:
		// The front-end terminates the client connection itself and
		// reuses persistent back-end connections; back-ends see no
		// per-connection work.
		s.feDo(costs.FEConn, func() { c.serveBatch() })
	default:
		s.feDo(costs.FEConn+costs.HandoffFE, func() {
			s.cpuDo(handling, costs.HandoffBE+costs.ConnSetup, func() {
				c.serveBatch()
			})
		})
	}
}

// serveBatch assigns and serves the current batch; when all its responses
// are done the next batch arrives (the closed-loop client sends it
// immediately).
func (c *connRun) serveBatch() {
	s := c.sim
	batch := c.conn.Batches[c.batchIdx]
	assignments := s.disp.AssignBatch(c.ec, batch)
	c.outstanding = len(batch)
	c.batchStart = s.eng.Now()
	for i, r := range batch {
		c.serveRequest(r, assignments[i])
	}
}

// requestDone accounts one finished response and advances the connection.
func (c *connRun) requestDone(size int64) {
	s := c.sim
	s.served++
	s.servedBytes += size
	s.delaySum += s.eng.Now() - c.batchStart
	c.outstanding--
	if c.outstanding > 0 {
		return
	}
	c.batchIdx++
	if c.batchIdx < len(c.conn.Batches) {
		c.serveBatch()
		return
	}
	// Connection complete: teardown at the handling node (none for the
	// relaying front-end, which pays it on its own CPU).
	costs := s.cfg.Server
	if s.cfg.Combo.Mechanism == core.RelayFrontEnd {
		s.feDo(costs.FEConn, func() { s.connDone(c) })
		return
	}
	s.cpuDo(c.ec.Handling(), costs.ConnTeardown, func() { s.connDone(c) })
}

// serveRequest models one request under the mechanism-specific data path.
func (c *connRun) serveRequest(r core.Request, a core.Assignment) {
	s := c.sim
	costs := s.cfg.Server
	switch {
	case s.cfg.Combo.Mechanism == core.RelayFrontEnd:
		// Request relayed by FE, served at a.Node, response relayed by
		// FE to the client.
		s.feDo(costs.FEPerRequest, func() {
			c.serveLocal(a.Node, r, func() {
				s.feDo(costs.Relay(r.Size), func() { c.requestDone(r.Size) })
			})
		})

	case a.Forward:
		// BE forwarding: FE forwards the tagged request to the handling
		// node; the remote node produces the content; the handling node
		// receives and retransmits it.
		h := c.ec.Handling()
		remote := a.Node
		s.feDo(costs.FEPerRequest, func() {
			s.cpuDo(remote, costs.PerRequest+costs.ForwardPerRequest, func() {
				c.withContent(remote, r, true, func() {
					s.cpuDo(h, costs.ForwardPerRequest+costs.ForwardRecv(r.Size)+costs.Transmit(r.Size), func() {
						if a.CacheLocally {
							s.nodes[h].cache.Insert(r.Target, r.Size)
						}
						c.requestDone(r.Size)
					})
				})
			})
		})

	case a.Migrate && s.cfg.Combo.Mechanism == core.MultipleHandoff:
		// Migration: FE coordinates, both back-ends do handoff work,
		// then the new handling node serves the request.
		newNode, oldNode := a.Node, a.From
		s.feDo(costs.HandoffFE, func() {
			s.cpuDo(oldNode, costs.HandoffBE, nil) // old node releases state
			s.cpuDo(newNode, costs.HandoffBE, func() {
				c.serveLocal(newNode, r, func() { c.requestDone(r.Size) })
			})
		})

	default:
		// Local serve at the assigned node (covers single handoff,
		// zero-cost reassignment, and non-migrating requests).
		s.feDo(costs.FEPerRequest, func() {
			c.serveLocal(a.Node, r, func() { c.requestDone(r.Size) })
		})
	}
}

// serveLocal models the normal serve path at node n: per-request CPU, cache
// lookup, disk on a miss, then transmit to the client. Local disk reads
// always populate the node's cache — FreeBSD's unified buffer cache offers
// no bypass — whatever the policy's mapping chose to record.
func (c *connRun) serveLocal(n core.NodeID, r core.Request, done func()) {
	s := c.sim
	costs := s.cfg.Server
	s.cpuDo(n, costs.PerRequest, func() {
		if s.nodes[n].cache.Lookup(r.Target) {
			s.cpuDo(n, costs.Transmit(r.Size), done)
			return
		}
		s.diskDo(n, r.Size, func() {
			s.nodes[n].cache.Insert(r.Target, r.Size)
			s.cpuDo(n, costs.Transmit(r.Size), done)
		})
	})
}

// withContent produces r's content at node n (cache hit or disk read),
// inserting it into n's cache when insert is set, then calls done. Used for
// the remote side of lateral fetches.
func (c *connRun) withContent(n core.NodeID, r core.Request, insert bool, done func()) {
	s := c.sim
	if s.nodes[n].cache.Lookup(r.Target) {
		done()
		return
	}
	s.diskDo(n, r.Size, func() {
		if insert {
			s.nodes[n].cache.Insert(r.Target, r.Size)
		}
		done()
	})
}

// result assembles the measured Result after the event queue drains.
func (s *Sim) result() Result {
	elapsed := s.eng.Now() - s.warmTime
	served := s.served - s.warmServed
	res := Result{
		Combo:    s.cfg.Combo.Name,
		Server:   s.cfg.Server.Kind.String(),
		Nodes:    s.cfg.Nodes,
		Requests: served,
		SimTime:  elapsed,
	}
	// The config validated through the registry before the run started.
	res.Policy, _ = s.cfg.PolicyName()
	if elapsed > 0 {
		res.Throughput = float64(served) / elapsed.Seconds()
		res.BandwidthMbps = float64(s.servedBytes-s.warmBytes) * 8 / 1e6 / elapsed.Seconds()
		res.FEUtilization = float64(s.fe.BusyTotal()-s.warmFEBusy) / float64(elapsed)
	}
	if served > 0 {
		res.MeanDelay = (s.delaySum - s.warmDelaySum) / core.Micros(served)
	}
	var hits, misses int64
	for i, n := range s.nodes {
		hits += n.cache.Hits()
		misses += n.cache.Misses()
		if elapsed > 0 {
			res.CPUUtil += float64(n.cpu.BusyTotal()-s.warmCPUBusy[i]) / float64(elapsed)
			res.DiskUtil += float64(n.disk.BusyTotal()-s.warmDiskBusy[i]) / float64(elapsed)
		}
	}
	res.CPUUtil /= float64(len(s.nodes))
	res.DiskUtil /= float64(len(s.nodes))
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	}
	if ext, ok := s.disp.Policy().(*policy.ExtLARD); ok {
		res.LocalServes, res.RemoteServes, res.Migrations, res.CacheBypasses = ext.Stats()
	}
	return res
}
