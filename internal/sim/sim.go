package sim

import (
	"fmt"

	"phttp/internal/cache"
	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/dstate"
	"phttp/internal/policy"
	"phttp/internal/simcore"
	"phttp/internal/trace"
)

// The simulator's event flow is an explicit state machine over pooled
// run records instead of nested closures: every scheduled event is a
// closure-free simcore.Call carrying a *connRun or *reqRun plus a phase
// code and the node whose resource the event completes on. Combined with
// the engine's slab-backed queue, the ID-keyed node caches and the
// policies' reusable buffers, steady-state stepping allocates nothing per
// event — the allocation profile that used to dominate sweep time (one
// closure and one heap event per scheduled step, one string-keyed map
// probe per cache touch) is gone.
//
// The phase graph reproduces the old closure nesting exactly — each
// closure became one phase, scheduled in the same order with the same
// costs — so (time, seq) event ordering, and therefore every simulation
// result, is bit-identical to the previous implementation.

// Connection-level phases (connStep).
const (
	cpOpenFE  = iota // front-end accept (+ handoff) finished
	cpOpenBE         // back-end connection setup finished
	cpCloseFE        // relaying FE teardown finished
	cpCloseBE        // back-end teardown finished
)

// Request-level phases (reqStep).
const (
	rqFE         = iota // front-end per-request work finished
	rqLocalCPU          // serving node's per-request CPU finished
	rqLocalDisk         // serving node's disk read finished
	rqLocalXmit         // serving node's transmit finished
	rqRelayOut          // relaying FE's response transmit finished
	rqRemoteCPU         // remote node's request+forward CPU finished
	rqRemoteDisk        // remote node's disk read finished
	rqFwdXmit           // handling node's receive+retransmit finished
	rqMigFE             // FE's migration coordination finished
	rqMigNewCPU         // new handling node's handoff work finished
)

// node is one simulated back-end: CPU, disk, main-memory cache.
type node struct {
	cpu  simcore.Resource
	disk simcore.Resource
	// cache is keyed by interned TargetID: the per-request lookup/insert
	// path is a slice index, not a string hash.
	cache *cache.IDLRU
}

// Sim is one simulation run in progress.
type Sim struct {
	cfg   Config
	eng   *simcore.Engine
	nodes []*node
	// fes holds one front-end CPU per tier member; fes[0] is the paper's
	// single front-end. disp is front-end 0's dispatch engine — the
	// whole tier in single-front-end runs, and the engine-level phase
	// view (identical on every member) in scale-out ones. engs lists
	// every front-end's engine; tier carries a replicated run's
	// journals and sync machinery (nil otherwise).
	fes  []simcore.Resource
	disp *dispatch.Engine
	engs []*dispatch.Engine
	tier *dstate.Tier
	// multiFE gates every scale-out check the way hasChurn gates churn:
	// a single-front-end run takes none of them, so its event sequence —
	// and therefore its result — stays bit-identical to the pre-tier
	// simulator.
	multiFE  bool
	admitIdx int
	trace    *trace.Trace

	nextConn int // next trace connection to admit
	active   int

	// hasChurn gates every down-node check: a churn-free run takes none
	// of them, so its event sequence — and therefore its result — is
	// bit-identical to a run of the pre-churn simulator.
	hasChurn     bool
	redispatches int64
	failed       int64

	// freeConns and freeReqs pool the per-connection and per-request run
	// records; a drained record is reused by the next admission instead of
	// burdening the garbage collector.
	freeConns []*connRun
	freeReqs  []*reqRun

	// measurement
	served      int64
	servedBytes int64
	delaySum    core.Micros
	// hist records every served request's delay (no warmup gating on
	// the record path); warmHist is its snapshot at the warm point, so
	// the reported distribution is the subtraction of the two.
	hist         *core.LatencyHist
	warmHist     *core.LatencyHist
	warmDelaySum core.Micros
	warmConns    int
	doneConns    int
	warmServed   int64
	warmBytes    int64
	warmTime     core.Micros
	warmed       bool
	warmFEBusy   core.Micros
	warmCPUBusy  []core.Micros
	warmDiskBusy []core.Micros

	// nodeDelay, when Config.RecordNodeDelays is set, holds one
	// queue-delay histogram per back-end: every CPU and disk acquisition
	// records how long it waited in the node's FIFO before service.
	// warmNodeDelay is the per-node snapshot at the warm point.
	nodeDelay     []*core.LatencyHist
	warmNodeDelay []*core.LatencyHist
}

// shardRingSeed salts the simulator's shard-ownership ring (sharded
// dispatch state). Fixed, like every simulator seed, so runs are a pure
// function of (config, trace).
const shardRingSeed = 0x1d15a7c4

// Run simulates the trace under cfg and returns the measured result. For
// non-P-HTTP combos the trace is flattened to HTTP/1.0 form per call; sweep
// drivers flatten once and use runOn.
//
// Traces built by the loaders (Synth.Generate, Reconstruct) arrive interned
// and are only read, so concurrent Run calls may share one. A hand-built
// trace (Interner == nil) is interned in place on first use — run it once,
// or call EnsureIDs yourself, before sharing it across goroutines.
func Run(cfg Config, tr *trace.Trace) (Result, error) {
	if tr.Interner == nil {
		tr.EnsureIDs()
	}
	workload := tr
	if !cfg.Combo.PHTTP {
		workload = tr.Flatten10()
	}
	return runOn(cfg, workload)
}

// RunPrepared simulates an already-prepared workload: interned
// (EnsureIDs) and pre-flattened when the combo wants HTTP/1.0. It is the
// sweep drivers' per-point entry, exported so external grid runners (the
// scenario layer) can share one flattening across points instead of
// paying Run's per-call Flatten10. Results are identical to Run on the
// corresponding P-HTTP trace.
func RunPrepared(cfg Config, workload *trace.Trace) (Result, error) {
	return runOn(cfg, workload)
}

// runOn simulates an already-prepared workload: interned (EnsureIDs) and
// pre-flattened when the combo wants HTTP/1.0. The workload is only read,
// so parallel sweep workers share one across runs. Validation lives here —
// the one entry point every run, direct or sweep-spawned, passes through.
func runOn(cfg Config, workload *trace.Trace) (Result, error) {
	return runOnEngine(cfg, workload, nil)
}

// runOnEngine is runOn with a caller-owned event engine: sweep workers
// hand each job the same worker-local engine (reset between runs), so a
// worker's heap and event-body slabs are grown once and reused across its
// grid points instead of being reallocated per run. Slabs stay strictly
// worker-local — no cross-worker sharing, no pool contention. A nil
// engine means allocate a fresh one (the single-run entry points).
func runOnEngine(cfg Config, workload *trace.Trace, eng *simcore.Engine) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	spec := cfg.dispatchSpec()
	spec.Interner = workload.Interner
	frontends := cfg.Frontends
	if frontends < 1 {
		frontends = 1
	}
	var (
		engs []*dispatch.Engine
		tier *dstate.Tier
	)
	if frontends == 1 && cfg.FEState == dstate.ModeLocal {
		// The single-front-end path builds exactly the pre-tier engine
		// (a dstate.Local store), keeping the figure goldens
		// bit-identical.
		disp, err := dispatch.NewEngine(spec)
		if err != nil {
			return Result{}, err
		}
		engs = []*dispatch.Engine{disp}
	} else {
		var err error
		engs, tier, err = dispatch.NewTierEngines(spec, dstate.TierConfig{
			Mode:      cfg.FEState,
			Frontends: frontends,
			Seed:      shardRingSeed,
		})
		if err != nil {
			return Result{}, err
		}
	}
	if eng == nil {
		eng = simcore.NewEngine()
	} else {
		eng.Reset()
	}
	s := &Sim{
		cfg:     cfg,
		eng:     eng,
		fes:     make([]simcore.Resource, frontends),
		disp:    engs[0],
		engs:    engs,
		tier:    tier,
		multiFE: frontends > 1,
		trace:   workload,
		hist:    core.NewLatencyHist(),
	}
	if cfg.RecordNodeDelays {
		s.nodeDelay = make([]*core.LatencyHist, cfg.Nodes)
		for i := range s.nodeDelay {
			s.nodeDelay[i] = core.NewLatencyHist()
		}
	}
	s.nodes = make([]*node, cfg.Nodes)
	for i := range s.nodes {
		s.nodes[i] = &node{cache: cache.NewIDLRU(cfg.CacheBytes)}
	}
	s.warmConns = int(cfg.WarmupFrac * float64(len(workload.Conns)))
	if s.warmConns == 0 {
		// No warmup: measure from time zero. Without this the snapshot
		// would be taken at the first connection close, silently dropping
		// that connection's requests from the measured counts.
		s.warmed = true
	}
	s.warmCPUBusy = make([]core.Micros, cfg.Nodes)
	s.warmDiskBusy = make([]core.Micros, cfg.Nodes)

	if len(cfg.Churn) > 0 {
		s.hasChurn = true
		for i := range cfg.Churn {
			if ev := cfg.Churn[i]; ev.At <= 0 {
				// Applied before admission: the run starts with the node
				// already down/draining.
				s.applyChurn(ev)
			} else {
				s.eng.Call(ev.At, churnStep, s, int64(i), 0)
			}
		}
	}

	if tier != nil && cfg.FEState == dstate.ModeReplicated && cfg.Staleness > 0 {
		s.eng.Call(cfg.Staleness, syncStep, s, 0, 0)
	}

	inFlight := cfg.ConnsPerNode * cfg.Nodes
	for i := 0; i < inFlight && s.admit(); i++ {
	}
	events := s.eng.Run(0)
	if s.active != 0 || s.nextConn != len(workload.Conns) {
		return Result{}, fmt.Errorf("sim: deadlock, %d connections still active after event queue drained", s.active)
	}
	res := s.result()
	res.Events = int64(events)
	return res, nil
}

// --- typed event dispatch ---

// connStep and reqStep are the two Actions every simulator event uses;
// package-level functions, so scheduling them allocates nothing.
//
//phttp:hotpath
func connStep(obj any, phase, node int64) {
	obj.(*connRun).step(int(phase), core.NodeID(node))
}

//phttp:hotpath
func reqStep(obj any, phase, node int64) {
	obj.(*reqRun).step(int(phase), core.NodeID(node))
}

// releaseCPU is the fire-and-forget completion of CPU work with no
// continuation (the old node's side of a migration handoff).
//
//phttp:hotpath
func releaseCPU(obj any, _, node int64) {
	obj.(*Sim).nodes[node].cpu.Release()
}

// syncStep fires one replication round and schedules the next while
// connections remain in flight (the event queue must drain when the
// trace completes).
func syncStep(obj any, _, _ int64) {
	s := obj.(*Sim)
	s.tier.Sync()
	if s.active > 0 {
		s.eng.Call(s.eng.Now()+s.cfg.Staleness, syncStep, s, 0, 0)
	}
}

// churnStep fires one scheduled membership event (idx into cfg.Churn).
func churnStep(obj any, idx, _ int64) {
	s := obj.(*Sim)
	s.applyChurn(s.cfg.Churn[idx])
}

// applyChurn performs one membership transition. A crash additionally
// clears the node's main-memory cache: a later join models a cold
// restart. In-flight work on a crashed node is not chased down here —
// each of its events observes the Down state when it fires and
// re-dispatches then (the prototype analogue: the front-end learns of
// the crash from the broken control link, not from the requests).
func (s *Sim) applyChurn(ev ChurnEvent) {
	// Every front-end learns of the transition at once — the prototype
	// analogue is each front-end's own membership table observing the
	// same control-link break.
	switch ev.Kind {
	case ChurnJoin:
		for _, e := range s.engs {
			e.SetNodeUp(ev.Node)
		}
	case ChurnLeave:
		for _, e := range s.engs {
			e.SetNodeDraining(ev.Node)
		}
	case ChurnCrash:
		for _, e := range s.engs {
			e.SetNodeDown(ev.Node)
		}
		s.nodes[ev.Node].cache.Clear()
	}
}

// nodeLost reports whether node n crashed (gated on hasChurn so
// churn-free runs never take the atomic load).
func (s *Sim) nodeLost(n core.NodeID) bool {
	return s.hasChurn && s.disp.NodeIsDown(n)
}

// feCall schedules cost on front-end fe's CPU (scaled by the configured
// front-end speedup) and dispatches act(obj, phase, -1) at completion; the
// handler releases the front-end.
//
//phttp:hotpath
func (s *Sim) feCall(fe int, cost core.Micros, act simcore.Action, obj any, phase int64) {
	if s.cfg.FESpeedup > 1 {
		cost = core.Micros(float64(cost) / s.cfg.FESpeedup)
	}
	done := s.fes[fe].Schedule(s.eng.Now(), cost)
	s.eng.Call(done, act, obj, phase, -1)
}

// feCallRemote charges fire-and-forget CPU work on front-end fe — the
// owner's side of a forwarded state transaction in sharded mode.
func (s *Sim) feCallRemote(fe int, cost core.Micros) {
	if s.cfg.FESpeedup > 1 {
		cost = core.Micros(float64(cost) / s.cfg.FESpeedup)
	}
	done := s.fes[fe].Schedule(s.eng.Now(), cost)
	s.eng.Call(done, feRelease, s, int64(fe), 0)
}

// feRelease releases front-end fe's CPU (fire-and-forget completions).
//
//phttp:hotpath
func feRelease(obj any, fe, _ int64) {
	obj.(*Sim).fes[fe].Release()
}

// feBusy sums the front-end CPUs' busy time (one term per tier member).
func (s *Sim) feBusy() core.Micros {
	var t core.Micros
	for i := range s.fes {
		t += s.fes[i].BusyTotal()
	}
	return t
}

// reportDiskQueue delivers a disk-queue report to every front-end's
// engine — in the prototype each front-end holds its own control links,
// so each hears every back-end directly. The single-front-end path skips
// the loop.
//
//phttp:hotpath
func (s *Sim) reportDiskQueue(n core.NodeID, queued int) {
	if !s.multiFE {
		s.disp.ReportDiskQueue(n, queued)
		return
	}
	for _, e := range s.engs {
		e.ReportDiskQueue(n, queued)
	}
}

// cpuCall schedules cost on node n's CPU and dispatches act(obj, phase, n)
// at completion; the handler releases the CPU.
//
//phttp:hotpath
func (s *Sim) cpuCall(n core.NodeID, cost core.Micros, act simcore.Action, obj any, phase int64) {
	now := s.eng.Now()
	done := s.nodes[n].cpu.Schedule(now, cost)
	if s.nodeDelay != nil {
		s.nodeDelay[n].Record(int64(done - now - cost))
	}
	s.eng.Call(done, act, obj, phase, int64(n))
}

// diskCall schedules a read of size bytes on node n's disk, keeping the
// policy's view of the disk queue current (the prototype's control-session
// reports, idealized to instantaneous); the handler releases the disk and
// reports again.
//
//phttp:hotpath
func (s *Sim) diskCall(n core.NodeID, size int64, act simcore.Action, obj any, phase int64) {
	nd := s.nodes[n]
	now := s.eng.Now()
	cost := s.cfg.Disk.ReadTime(size)
	done := nd.disk.Schedule(now, cost)
	if s.nodeDelay != nil {
		s.nodeDelay[n].Record(int64(done - now - cost))
	}
	s.reportDiskQueue(n, nd.disk.Queued())
	s.eng.Call(done, act, obj, phase, int64(n))
}

// panicUnknownPhase is the cold formatting helper for the state-machine
// panics: the annotated step hot paths must not call fmt themselves.
func panicUnknownPhase(kind string, phase int) {
	panic(fmt.Sprintf("sim: unknown %s phase %d", kind, phase))
}

// --- run-record pools ---

//phttp:hotpath
func (s *Sim) getConn() *connRun {
	if n := len(s.freeConns); n > 0 {
		cr := s.freeConns[n-1]
		s.freeConns = s.freeConns[:n-1]
		return cr
	}
	return &connRun{sim: s}
}

//phttp:hotpath
func (s *Sim) putConn(cr *connRun) {
	cr.conn = core.Connection{}
	cr.ec = nil
	cr.disp, cr.fe = nil, 0
	cr.batchIdx, cr.outstanding, cr.batchStart = 0, 0, 0
	cr.tries, cr.aborted = 0, false
	s.freeConns = append(s.freeConns, cr)
}

//phttp:hotpath
func (s *Sim) getReq(cr *connRun, r core.Request, a core.Assignment) *reqRun {
	var rr *reqRun
	if n := len(s.freeReqs); n > 0 {
		rr = s.freeReqs[n-1]
		s.freeReqs = s.freeReqs[:n-1]
	} else {
		rr = &reqRun{}
	}
	*rr = reqRun{cr: cr, id: r.ID, size: r.Size, a: a}
	return rr
}

//phttp:hotpath
func (s *Sim) putReq(rr *reqRun) {
	rr.cr = nil
	s.freeReqs = append(s.freeReqs, rr)
}

// admit starts the next trace connection; it reports whether one was
// available.
func (s *Sim) admit() bool {
	if s.nextConn >= len(s.trace.Conns) {
		return false
	}
	conn := s.trace.Conns[s.nextConn]
	s.nextConn++
	if conn.Requests() == 0 {
		return s.admit()
	}
	s.active++
	cr := s.getConn()
	cr.conn = conn
	// Round-robin client arrival over the front-end tier (a DNS-RR or L4
	// spray in front of the front-ends); one front-end takes them all in
	// the single-front-end model.
	cr.fe = s.admitIdx % len(s.engs)
	cr.disp = s.engs[cr.fe]
	s.admitIdx++
	cr.open()
	return true
}

// connDone finishes a connection's lifecycle, admits the next, and recycles
// the run record.
func (s *Sim) connDone(cr *connRun) {
	cr.disp.ConnClose(cr.ec)
	s.active--
	s.doneConns++
	if !s.warmed && s.doneConns >= s.warmConns {
		s.warmed = true
		s.warmServed = s.served
		s.warmBytes = s.servedBytes
		s.warmDelaySum = s.delaySum
		s.warmHist = s.hist.Clone()
		s.warmTime = s.eng.Now()
		s.warmFEBusy = s.feBusy()
		for i, n := range s.nodes {
			s.warmCPUBusy[i] = n.cpu.BusyTotal()
			s.warmDiskBusy[i] = n.disk.BusyTotal()
			n.cache.ResetStats()
		}
		if s.nodeDelay != nil {
			s.warmNodeDelay = make([]*core.LatencyHist, len(s.nodeDelay))
			for i, h := range s.nodeDelay {
				s.warmNodeDelay[i] = h.Clone()
			}
		}
	}
	s.putConn(cr)
	s.admit()
}

// connRun drives one client connection through its batches.
type connRun struct {
	sim  *Sim
	conn core.Connection
	ec   *dispatch.Conn
	// disp/fe pin the connection to the front-end that admitted it: its
	// accept, per-request relay work and dispatch decisions run there.
	disp *dispatch.Engine
	fe   int

	batchIdx    int
	outstanding int
	batchStart  core.Micros

	// tries counts crash re-dispatch attempts of the connection open;
	// aborted marks a connection whose retry budget ran out (it closes
	// after the current batch drains, unserved requests counted failed).
	tries   int
	aborted bool
}

// open runs the connection-establishment path: front-end accept + dispatch,
// then the mechanism's per-connection work at the handling node, then the
// first batch.
func (c *connRun) open() {
	s := c.sim
	first := c.conn.Batches[0][0]
	c.ec, _ = c.disp.ConnOpen(first)
	costs := s.cfg.Server
	var forward core.Micros
	if s.multiFE {
		if owner := int(c.ec.State().OwnerFE); owner >= 0 && owner != c.fe {
			// Sharded state: the connection's state transaction ran on
			// the owning front-end. Charge one request's worth of
			// forwarding work here and the same on the owner's CPU (the
			// RPC service time), fire-and-forget.
			forward = costs.FEPerRequest
			s.feCallRemote(owner, costs.FEPerRequest)
		}
	}
	if s.cfg.Combo.Mechanism == core.RelayFrontEnd {
		// The front-end terminates the client connection itself and
		// reuses persistent back-end connections; back-ends see no
		// per-connection work.
		s.feCall(c.fe, costs.FEConn+forward, connStep, c, cpOpenFE)
		return
	}
	s.feCall(c.fe, costs.FEConn+costs.HandoffFE+forward, connStep, c, cpOpenFE)
}

// step advances the connection lifecycle after the event (phase, node).
//
//phttp:hotpath
func (c *connRun) step(phase int, n core.NodeID) {
	s := c.sim
	costs := s.cfg.Server
	switch phase {
	case cpOpenFE:
		s.fes[c.fe].Release()
		if s.cfg.Combo.Mechanism == core.RelayFrontEnd {
			c.serveBatch()
			return
		}
		s.cpuCall(c.ec.Handling(), costs.HandoffBE+costs.ConnSetup, connStep, c, cpOpenBE)
	case cpOpenBE:
		s.nodes[n].cpu.Release()
		if s.nodeLost(n) {
			c.reopen(n)
			return
		}
		c.serveBatch()
	case cpCloseFE:
		s.fes[c.fe].Release()
		s.connDone(c)
	case cpCloseBE:
		s.nodes[n].cpu.Release()
		s.connDone(c)
	default:
		panicUnknownPhase("connection", phase)
	}
}

// reopen retries a connection open whose handling node crashed during
// setup: the connection moves to the least-loaded up node and repeats
// the back-end setup work there. Past the retry budget — or with no
// node up — the client sees the connection closed; every request it
// would have carried counts failed.
func (c *connRun) reopen(dead core.NodeID) {
	s := c.sim
	c.tries++
	t := core.NoNode
	if c.tries <= s.cfg.RetryBudget {
		t = c.disp.PickUp(dead)
	}
	if t == core.NoNode {
		for _, b := range c.conn.Batches[c.batchIdx:] {
			s.failed += int64(len(b))
		}
		s.connDone(c)
		return
	}
	s.redispatches++
	c.disp.MoveConn(c.ec, t)
	costs := s.cfg.Server
	s.cpuCall(t, costs.HandoffBE+costs.ConnSetup, connStep, c, cpOpenBE)
}

// serveBatch assigns and serves the current batch; when all its responses
// are done the next batch arrives (the closed-loop client sends it
// immediately). The assignment slice is the policy's reusable buffer,
// consumed within the loop.
func (c *connRun) serveBatch() {
	s := c.sim
	batch := c.conn.Batches[c.batchIdx]
	assignments := c.disp.AssignBatch(c.ec, batch)
	c.outstanding = len(batch)
	c.batchStart = s.eng.Now()
	for i, r := range batch {
		c.serveRequest(r, assignments[i])
	}
}

// serveRequest schedules the first event of one request's mechanism-specific
// data path.
func (c *connRun) serveRequest(r core.Request, a core.Assignment) {
	s := c.sim
	costs := s.cfg.Server
	rr := s.getReq(c, r, a)
	switch {
	case s.cfg.Combo.Mechanism == core.RelayFrontEnd:
		// Request relayed by FE, served at a.Node, response relayed by
		// FE to the client.
		s.feCall(c.fe, costs.FEPerRequest, reqStep, rr, rqFE)

	case a.Forward:
		// BE forwarding: FE forwards the tagged request to the handling
		// node; the remote node produces the content; the handling node
		// receives and retransmits it.
		rr.aux = c.ec.Handling()
		s.feCall(c.fe, costs.FEPerRequest, reqStep, rr, rqFE)

	case a.Migrate && s.cfg.Combo.Mechanism == core.MultipleHandoff:
		// Migration: FE coordinates, both back-ends do handoff work,
		// then the new handling node serves the request.
		s.feCall(c.fe, costs.HandoffFE, reqStep, rr, rqMigFE)

	default:
		// Local serve at the assigned node (covers single handoff,
		// zero-cost reassignment, and non-migrating requests).
		s.feCall(c.fe, costs.FEPerRequest, reqStep, rr, rqFE)
	}
}

// reqRun is one in-flight request's state: the mechanism path is encoded in
// the assignment and the phase codes, aux carries the handling node on the
// forwarding path.
type reqRun struct {
	cr   *connRun
	id   core.TargetID
	size int64
	a    core.Assignment
	aux  core.NodeID
	// tries counts crash re-dispatch attempts (reset with the record in
	// getReq).
	tries int
}

// step advances the request's data path after the event (phase, node).
//
//phttp:hotpath
func (rr *reqRun) step(phase int, n core.NodeID) {
	c := rr.cr
	s := c.sim
	costs := s.cfg.Server
	switch phase {
	case rqFE:
		s.fes[c.fe].Release()
		if rr.a.Forward {
			remote := rr.a.Node
			s.cpuCall(remote, costs.PerRequest+costs.ForwardPerRequest, reqStep, rr, rqRemoteCPU)
			return
		}
		rr.startLocal(rr.a.Node)

	case rqLocalCPU:
		// Normal serve path at node n: cache lookup, disk on a miss, then
		// transmit to the client. Local disk reads always populate the
		// node's cache — FreeBSD's unified buffer cache offers no bypass —
		// whatever the policy's mapping chose to record.
		s.nodes[n].cpu.Release()
		if s.nodeLost(n) {
			rr.redispatch(n)
			return
		}
		if s.nodes[n].cache.Lookup(rr.id) {
			s.cpuCall(n, costs.Transmit(rr.size), reqStep, rr, rqLocalXmit)
			return
		}
		s.diskCall(n, rr.size, reqStep, rr, rqLocalDisk)

	case rqLocalDisk:
		nd := s.nodes[n]
		nd.disk.Release()
		s.reportDiskQueue(n, nd.disk.Queued())
		if s.nodeLost(n) {
			// The read never reached the client and the node's cache
			// restarts cold: no insert.
			rr.redispatch(n)
			return
		}
		nd.cache.Insert(rr.id, rr.size)
		s.cpuCall(n, costs.Transmit(rr.size), reqStep, rr, rqLocalXmit)

	case rqLocalXmit:
		s.nodes[n].cpu.Release()
		if s.nodeLost(n) {
			rr.redispatch(n)
			return
		}
		if s.cfg.Combo.Mechanism == core.RelayFrontEnd {
			s.feCall(c.fe, costs.Relay(rr.size), reqStep, rr, rqRelayOut)
			return
		}
		rr.done()

	case rqRelayOut:
		s.fes[c.fe].Release()
		rr.done()

	case rqRemoteCPU:
		// The remote side of a lateral fetch produces the content (cache
		// hit or disk read, inserting on a miss).
		s.nodes[n].cpu.Release()
		if s.nodeLost(n) {
			rr.redispatch(n)
			return
		}
		if s.nodes[n].cache.Lookup(rr.id) {
			rr.contentReady()
			return
		}
		s.diskCall(n, rr.size, reqStep, rr, rqRemoteDisk)

	case rqRemoteDisk:
		nd := s.nodes[n]
		nd.disk.Release()
		s.reportDiskQueue(n, nd.disk.Queued())
		if s.nodeLost(n) {
			rr.redispatch(n)
			return
		}
		nd.cache.Insert(rr.id, rr.size)
		rr.contentReady()

	case rqFwdXmit:
		s.nodes[n].cpu.Release()
		if s.nodeLost(n) {
			rr.redispatch(n)
			return
		}
		if rr.a.CacheLocally {
			s.nodes[n].cache.Insert(rr.id, rr.size)
		}
		rr.done()

	case rqMigFE:
		s.fes[c.fe].Release()
		oldNode, newNode := rr.a.From, rr.a.Node
		s.cpuCall(oldNode, costs.HandoffBE, releaseCPU, s, 0) // old node releases state
		s.cpuCall(newNode, costs.HandoffBE, reqStep, rr, rqMigNewCPU)

	case rqMigNewCPU:
		s.nodes[n].cpu.Release()
		if s.nodeLost(n) {
			rr.redispatch(n)
			return
		}
		rr.startLocal(n)

	default:
		panicUnknownPhase("request", phase)
	}
}

// startLocal begins the normal serve path at node n (per-request CPU, then
// cache/disk/transmit via rqLocalCPU).
func (rr *reqRun) startLocal(n core.NodeID) {
	s := rr.cr.sim
	s.cpuCall(n, s.cfg.Server.PerRequest, reqStep, rr, rqLocalCPU)
}

// contentReady continues the forwarding path once the remote node has the
// content: the handling node receives and retransmits it.
func (rr *reqRun) contentReady() {
	s := rr.cr.sim
	costs := s.cfg.Server
	s.cpuCall(rr.aux, costs.ForwardPerRequest+costs.ForwardRecv(rr.size)+costs.Transmit(rr.size), reqStep, rr, rqFwdXmit)
}

// redispatch re-sends a request whose serving node crashed: the engine
// picks the least-loaded up node and the front-end re-issues the request
// there as a plain local serve (forward/migrate sub-paths are not
// retried — the re-dispatch is the recovery path, not a policy
// decision). If the connection's handling node is the dead one, the
// connection moves with the request. Past the retry budget — or with no
// node up — the request fails and its connection closes after the
// in-flight batch drains.
func (rr *reqRun) redispatch(dead core.NodeID) {
	s := rr.cr.sim
	rr.tries++
	t := core.NoNode
	if rr.tries <= s.cfg.RetryBudget {
		t = rr.cr.disp.PickUp(dead)
	}
	if t == core.NoNode {
		rr.fail()
		return
	}
	s.redispatches++
	if rr.cr.disp.NodeIsDown(rr.cr.ec.Handling()) {
		rr.cr.disp.MoveConn(rr.cr.ec, t)
	}
	rr.a = core.Assignment{Node: t}
	s.feCall(rr.cr.fe, s.cfg.Server.FEPerRequest, reqStep, rr, rqFE)
}

// done accounts one finished response, recycles the request record, and
// advances the connection.
func (rr *reqRun) done() { rr.finish(false) }

// fail abandons a request whose retry budget ran out and marks the
// connection for closure — the connection-close fallback.
func (rr *reqRun) fail() {
	rr.cr.sim.failed++
	rr.cr.aborted = true
	rr.finish(true)
}

func (rr *reqRun) finish(failed bool) {
	c := rr.cr
	s := c.sim
	if !failed {
		s.served++
		s.servedBytes += rr.size
		delay := s.eng.Now() - c.batchStart
		s.delaySum += delay
		// Redispatched requests land here too once they finally complete,
		// with the retries' full delay — the tail keeps the truth.
		s.hist.Record(int64(delay))
	}
	s.putReq(rr)
	c.outstanding--
	if c.outstanding > 0 {
		return
	}
	c.batchIdx++
	if c.aborted {
		// Connection-close fallback: batches the client never got to send
		// count as failed alongside the request that exhausted its budget.
		for _, b := range c.conn.Batches[c.batchIdx:] {
			s.failed += int64(len(b))
		}
	} else if c.batchIdx < len(c.conn.Batches) {
		c.serveBatch()
		return
	}
	// Connection complete: teardown at the handling node (none for the
	// relaying front-end, which pays it on its own CPU).
	costs := s.cfg.Server
	if s.cfg.Combo.Mechanism == core.RelayFrontEnd {
		s.feCall(c.fe, costs.FEConn, connStep, c, cpCloseFE)
		return
	}
	s.cpuCall(c.ec.Handling(), costs.ConnTeardown, connStep, c, cpCloseBE)
}

// result assembles the measured Result after the event queue drains.
func (s *Sim) result() Result {
	elapsed := s.eng.Now() - s.warmTime
	served := s.served - s.warmServed
	res := Result{
		Combo:    s.cfg.Combo.Name,
		Server:   s.cfg.Server.Kind.String(),
		Nodes:    s.cfg.Nodes,
		Requests: served,
		SimTime:  elapsed,
	}
	// The config validated through the registry before the run started.
	res.Policy, _ = s.cfg.PolicyName()
	if elapsed > 0 {
		res.Throughput = float64(served) / elapsed.Seconds()
		res.BandwidthMbps = float64(s.servedBytes-s.warmBytes) * 8 / 1e6 / elapsed.Seconds()
		// Per-front-end utilization: total busy time over the tier's
		// aggregate capacity (elapsed × members). One member divides by
		// elapsed×1 — the same value as the pre-tier expression.
		res.FEUtilization = float64(s.feBusy()-s.warmFEBusy) / (float64(elapsed) * float64(len(s.fes)))
	}
	if served > 0 {
		res.MeanDelay = (s.delaySum - s.warmDelaySum) / core.Micros(served)
	}
	delta := s.hist
	if s.warmHist != nil {
		delta = s.hist.Clone()
		delta.Sub(s.warmHist)
	}
	res.Latency = Summarize(delta, s.cfg.SLOTarget)
	var hits, misses int64
	for i, n := range s.nodes {
		hits += n.cache.Hits()
		misses += n.cache.Misses()
		if elapsed > 0 {
			res.CPUUtil += float64(n.cpu.BusyTotal()-s.warmCPUBusy[i]) / float64(elapsed)
			res.DiskUtil += float64(n.disk.BusyTotal()-s.warmDiskBusy[i]) / float64(elapsed)
		}
	}
	res.CPUUtil /= float64(len(s.nodes))
	res.DiskUtil /= float64(len(s.nodes))
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	}
	for _, eng := range s.engs {
		if ext, ok := eng.Policy().(*policy.ExtLARD); ok {
			l, r, m, b := ext.Stats()
			res.LocalServes += l
			res.RemoteServes += r
			res.Migrations += m
			res.CacheBypasses += b
		}
	}
	if s.nodeDelay != nil {
		res.NodeDelays = make([]LatencySummary, len(s.nodeDelay))
		for i, h := range s.nodeDelay {
			d := h
			if s.warmNodeDelay != nil {
				d = h.Clone()
				d.Sub(s.warmNodeDelay[i])
			}
			res.NodeDelays[i] = Summarize(d, 0)
		}
	}
	res.Redispatches = s.redispatches
	res.FailedRequests = s.failed
	return res
}
