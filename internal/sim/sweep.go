package sim

import (
	"phttp/internal/core"
	"phttp/internal/metrics"
	"phttp/internal/server"
	"phttp/internal/trace"
)

// ClusterSweep runs every combo over the given cluster sizes with the given
// server cost model, regenerating the data behind Figure 7 (Apache) or
// Figure 8 (Flash). It returns one series per combo, keyed by node count.
func ClusterSweep(kind core.ServerKind, nodes []int, combos []Combo, tr *trace.Trace) ([]*metrics.Series, []Result, error) {
	var series []*metrics.Series
	var results []Result
	for _, combo := range combos {
		s := &metrics.Series{Name: combo.Name}
		for _, n := range nodes {
			cfg := DefaultConfig(n, combo)
			cfg.Server = server.CostsFor(kind)
			res, err := Run(cfg, tr)
			if err != nil {
				return nil, nil, err
			}
			s.Add(float64(n), res.Throughput)
			results = append(results, res)
		}
		series = append(series, s)
	}
	return series, results, nil
}

// DelaySweep regenerates Figure 3: a single back-end node's throughput and
// mean delay as a function of offered load (concurrent connections). It
// returns the throughput series and the delay series (delay in
// milliseconds) over the given load points.
func DelaySweep(kind core.ServerKind, loads []int, tr *trace.Trace) (throughput, delay *metrics.Series, err error) {
	throughput = &metrics.Series{Name: "throughput(req/s)"}
	delay = &metrics.Series{Name: "delay(ms)"}
	for _, l := range loads {
		cfg := DefaultConfig(1, Combo{
			Name: "single-node", Policy: "wrr",
			Mechanism: core.SingleHandoff, PHTTP: true,
		})
		cfg.Server = server.CostsFor(kind)
		cfg.ConnsPerNode = l
		res, rerr := Run(cfg, tr)
		if rerr != nil {
			return nil, nil, rerr
		}
		throughput.Add(float64(l), res.Throughput)
		delay.Add(float64(l), float64(res.MeanDelay)/float64(core.Millisecond))
	}
	return throughput, delay, nil
}
