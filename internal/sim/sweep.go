package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"phttp/internal/core"
	"phttp/internal/metrics"
	"phttp/internal/server"
	"phttp/internal/simcore"
	"phttp/internal/trace"
)

// Sweeps are embarrassingly parallel: every grid point is an independent
// simulation with its own engine, policy, caches and dispatch state, sharing
// only the read-only trace. The workers below fan the grid out over
// GOMAXPROCS goroutines and write each Result into its preassigned slot, so
// the returned series and results are in exactly the order the serial loop
// produced — and, because each run is deterministic in isolation, with
// exactly the same values.

// sweepJob is one grid point: a prepared config plus its result slot.
type sweepJob struct {
	cfg      Config
	workload *trace.Trace
	slot     int
}

// runJobs executes jobs across workers goroutines (capped to the job count;
// values below 1 mean GOMAXPROCS), filling results by slot. The
// lowest-slot error among jobs that ran wins. On error the results slice
// is zeroed before returning: jobs that completed after the failure flag
// was raised may have written their slots, and callers must never read a
// partially-filled grid.
func runJobs(jobs []sweepJob, results []Result, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		eng := simcore.NewEngine()
		for _, j := range jobs {
			res, err := runOnEngine(j.cfg, j.workload, eng)
			if err != nil {
				clear(results)
				return err
			}
			results[j.slot] = res
		}
		return nil
	}
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
	)
	// Per-slot errors keep the reported failure stable — the lowest-slot
	// error among jobs that ran wins, not whichever goroutine lost a race —
	// while the failed flag cancels jobs not yet started so a bad sweep
	// does not grind through the whole grid first.
	errs := make([]error, len(results))
	ch := make(chan sweepJob)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one engine: its event heap and body slab
			// grow to the largest grid point it runs and are reused for
			// the rest. Strictly worker-local — sharing slabs across
			// workers (e.g. through a sync.Pool) would bounce their cache
			// lines between cores for no benefit.
			eng := simcore.NewEngine()
			for j := range ch {
				if failed.Load() {
					continue
				}
				res, err := runOnEngine(j.cfg, j.workload, eng)
				if err != nil {
					errs[j.slot] = err
					failed.Store(true)
					continue
				}
				results[j.slot] = res
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			clear(results)
			return err
		}
	}
	return nil
}

// ClusterSweep runs every combo over the given cluster sizes with the given
// server cost model, regenerating the data behind Figure 7 (Apache) or
// Figure 8 (Flash). It returns one series per combo, keyed by node count.
// Grid points run in parallel across GOMAXPROCS workers; results are
// identical to — and ordered exactly as — the serial sweep.
func ClusterSweep(kind core.ServerKind, nodes []int, combos []Combo, tr *trace.Trace) ([]*metrics.Series, []Result, error) {
	return ClusterSweepParallel(kind, nodes, combos, tr, 0)
}

// ClusterSweepParallel is ClusterSweep with an explicit worker count:
// 1 forces the serial path (the golden tests pin parallel output to it),
// 0 means GOMAXPROCS.
func ClusterSweepParallel(kind core.ServerKind, nodes []int, combos []Combo, tr *trace.Trace, workers int) ([]*metrics.Series, []Result, error) {
	return ClusterSweepWorkload(kind, nodes, combos, trace.NewWorkload(tr), workers)
}

// ClusterSweepWorkload runs the sweep over a prepared workload — e.g. one
// loaded from the on-disk trace cache — so the HTTP/1.0 flattening is
// taken from the cache instead of being re-derived per sweep. Results are
// identical to ClusterSweepParallel on the same P-HTTP trace.
func ClusterSweepWorkload(kind core.ServerKind, nodes []int, combos []Combo, wl *trace.Workload, workers int) ([]*metrics.Series, []Result, error) {
	// Prepare the shared workloads once, before any worker starts: interned
	// IDs for the P-HTTP trace, and a single HTTP/1.0 flattening shared by
	// every non-P-HTTP grid point (the serial code used to re-flatten the
	// trace at every (combo, nodes) pair).
	tr := wl.PHTTP
	if tr.Interner == nil {
		tr.EnsureIDs()
	}
	var flat *trace.Trace
	for _, combo := range combos {
		if !combo.PHTTP {
			flat = wl.Flatten()
			if flat.Interner == nil {
				flat.EnsureIDs()
			}
			break
		}
	}

	jobs := make([]sweepJob, 0, len(combos)*len(nodes))
	for ci, combo := range combos {
		for ni, n := range nodes {
			cfg := DefaultConfig(n, combo)
			cfg.Server = server.CostsFor(kind)
			workload := tr
			if !combo.PHTTP {
				workload = flat
			}
			jobs = append(jobs, sweepJob{cfg: cfg, workload: workload, slot: ci*len(nodes) + ni})
		}
	}
	results := make([]Result, len(jobs))
	if err := runJobs(jobs, results, workers); err != nil {
		return nil, nil, err
	}

	series := make([]*metrics.Series, 0, len(combos))
	for ci, combo := range combos {
		s := &metrics.Series{Name: combo.Name}
		for ni, n := range nodes {
			s.Add(float64(n), results[ci*len(nodes)+ni].Throughput)
		}
		series = append(series, s)
	}
	return series, results, nil
}

// DelaySweep regenerates Figure 3: a single back-end node's throughput and
// mean delay as a function of offered load (concurrent connections). It
// returns the throughput series and the delay series (delay in
// milliseconds) over the given load points. Load points run in parallel;
// output is identical to the serial sweep.
func DelaySweep(kind core.ServerKind, loads []int, tr *trace.Trace) (throughput, delay *metrics.Series, err error) {
	return DelaySweepParallel(kind, loads, tr, 0)
}

// DelaySweepParallel is DelaySweep with an explicit worker count (1 forces
// serial, 0 means GOMAXPROCS).
func DelaySweepParallel(kind core.ServerKind, loads []int, tr *trace.Trace, workers int) (throughput, delay *metrics.Series, err error) {
	results, err := DelaySweepResults(kind, loads, tr, workers)
	if err != nil {
		return nil, nil, err
	}
	throughput = &metrics.Series{Name: "throughput(req/s)"}
	delay = &metrics.Series{Name: "delay(ms)"}
	for i, l := range loads {
		throughput.Add(float64(l), results[i].Throughput)
		delay.Add(float64(l), float64(results[i].MeanDelay)/float64(core.Millisecond))
	}
	return throughput, delay, nil
}

// DelaySweepResults is the Figure 3 sweep returning the full per-point
// Results — tail-latency summaries included — instead of pre-built mean
// series. DelaySweepParallel derives its series from it.
func DelaySweepResults(kind core.ServerKind, loads []int, tr *trace.Trace, workers int) ([]Result, error) {
	if tr.Interner == nil {
		tr.EnsureIDs()
	}
	jobs := make([]sweepJob, 0, len(loads))
	for i, l := range loads {
		cfg := DefaultConfig(1, Combo{
			Name: "single-node", Policy: "wrr",
			Mechanism: core.SingleHandoff, PHTTP: true,
		})
		cfg.Server = server.CostsFor(kind)
		cfg.ConnsPerNode = l
		jobs = append(jobs, sweepJob{cfg: cfg, workload: tr, slot: i})
	}
	results := make([]Result, len(jobs))
	if err := runJobs(jobs, results, workers); err != nil {
		return nil, err
	}
	return results, nil
}

// TailSeries folds per-point latency summaries into the p50/p95/p99/p999
// columns (milliseconds) of a delay table, keyed by each result's slot in
// xs. The figure 3 driver and the scenario loads path both print them
// next to the mean-delay column.
func TailSeries(xs []float64, results []Result) (p50, p95, p99, p999 *metrics.Series) {
	ms := func(m core.Micros) float64 { return float64(m) / float64(core.Millisecond) }
	p50 = &metrics.Series{Name: "p50(ms)"}
	p95 = &metrics.Series{Name: "p95(ms)"}
	p99 = &metrics.Series{Name: "p99(ms)"}
	p999 = &metrics.Series{Name: "p999(ms)"}
	for i, r := range results {
		p50.Add(xs[i], ms(r.Latency.P50))
		p95.Add(xs[i], ms(r.Latency.P95))
		p99.Add(xs[i], ms(r.Latency.P99))
		p999.Add(xs[i], ms(r.Latency.P999))
	}
	return p50, p95, p99, p999
}
