package sim

import "testing"

// TestRunBenchSmall exercises the whole bench harness — trace-generation
// timing (serial, parallel, cache cold/hit), both sweep measurements, and
// baseline attachment — on a scaled-down reference so the reporting path
// cannot rot between `make bench` runs.
func TestRunBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness run")
	}
	cfg := DefaultBenchConfig()
	cfg.Connections = 300
	cfg.Nodes = []int{1}
	rep, err := RunBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serial.Events <= 0 || rep.Parallel.Events != rep.Serial.Events {
		t.Errorf("event counts: serial %d, parallel %d", rep.Serial.Events, rep.Parallel.Events)
	}
	g := rep.TraceGen
	if g.SerialMs < 0 || g.ParallelMs < 0 || g.CacheColdMs <= 0 || g.CacheHitMs < 0 {
		t.Errorf("trace-gen timings not recorded: %+v", g)
	}
	rep.AttachBaseline(BenchPoint{WallMs: 1000, Mallocs: 1 << 20}, "test baseline")
	if rep.Baseline == nil || rep.SpeedupWallClock <= 0 {
		t.Errorf("baseline attachment: %+v", rep)
	}
}
