package sim

import (
	"runtime"
	"testing"

	"phttp/internal/trace"
)

// TestRunBenchSmall exercises the whole bench harness — trace-generation
// timing (serial, parallel, cache cold/hit), the mapped-vs-copying alloc
// probes, both sweep measurements, and baseline attachment — on a
// scaled-down reference so the reporting path cannot rot between
// `make bench` runs.
func TestRunBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness run")
	}
	cfg := DefaultBenchConfig()
	cfg.Connections = 300
	cfg.Nodes = []int{1}
	rep, err := RunBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serial.Events <= 0 || rep.Parallel.Events != rep.Serial.Events {
		t.Errorf("event counts: serial %d, parallel %d", rep.Serial.Events, rep.Parallel.Events)
	}
	if rep.Serial.GoMaxProcs <= 0 || rep.Serial.NumCPU <= 0 {
		t.Errorf("serial section missing env stamp: %+v", rep.Serial.EnvInfo)
	}
	g := rep.TraceGen
	if g.SerialMs < 0 || g.ParallelMs < 0 || g.CacheColdMs <= 0 || g.CacheHitMs < 0 {
		t.Errorf("trace-gen timings not recorded: %+v", g)
	}
	if g.GoMaxProcs <= 0 {
		t.Errorf("trace-gen section missing env stamp: %+v", g.EnvInfo)
	}
	if g.CacheHitAllocs <= 0 || g.CacheHitCopyAllocs <= 0 {
		t.Errorf("cache-hit alloc probes not recorded: %+v", g)
	}
	if trMapped := g.CacheHitAllocReduction; trMapped < 1 {
		// At test scale (300 connections) the absolute counts are small,
		// but the mapped load must never allocate more than the copying
		// one; the ≥10× gate is checked at reference scale by make bench.
		t.Errorf("mapped cache hit allocates more than copying load: %.1f vs %.1f",
			g.CacheHitAllocs, g.CacheHitCopyAllocs)
	}
	rep.AttachBaseline(BenchPoint{WallMs: 1000, Mallocs: 1 << 20}, "test baseline")
	if rep.Baseline == nil || rep.SpeedupWallClock <= 0 {
		t.Errorf("baseline attachment: %+v", rep)
	}

	if rep.Latency == nil || len(rep.Latency.Combos) != len(Combos()) {
		t.Fatalf("latency section: %+v", rep.Latency)
	}
	for _, c := range rep.Latency.Combos {
		// One back-end in this scaled-down reference → one queue digest.
		if len(c.NodeQueueP99Ms) != 1 {
			t.Errorf("combo %s: node queue digest %v, want one entry", c.Combo, c.NodeQueueP99Ms)
		}
	}

	wantCurves := 0
	for _, c := range Combos() {
		if c.Policy != "wrr" {
			wantCurves++
		}
	}
	if rep.Locality == nil || len(rep.Locality.Curves) != wantCurves {
		t.Fatalf("locality section: %+v", rep.Locality)
	}
	wantPoints := 1 + len(localityFrontends) + len(localityStaleness)
	for _, curve := range rep.Locality.Curves {
		if len(curve.Points) != wantPoints {
			t.Fatalf("curve %s has %d points, want %d", curve.Combo, len(curve.Points), wantPoints)
		}
		base := curve.Points[0]
		if base.Frontends != 1 || base.State != "local" || base.HitRateDrop != 0 {
			t.Errorf("curve %s baseline point: %+v", curve.Combo, base)
		}
		for _, p := range curve.Points {
			if p.Throughput <= 0 || p.HitRate < 0 || p.HitRate > 1 {
				t.Errorf("curve %s point %+v out of range", curve.Combo, p)
			}
		}
	}
}

// TestMeasureScaling pins the scaling section's two shapes — an explicit
// skip marker on one core (never fake numbers), and a full 1..GOMAXPROCS
// curve with speedups relative to the 1-worker point otherwise — by
// forcing GOMAXPROCS to each shape's trigger, so both run on any machine
// (extra procs on a 1-core box are legal, just oversubscribed).
func TestMeasureScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness run")
	}
	cfg := DefaultBenchConfig()
	cfg.Connections = 300
	cfg.Nodes = []int{1}

	t.Run("skip-on-1cpu", func(t *testing.T) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		rep, err := MeasureScaling(cfg, nil) // trace unused on the skip path
		if err != nil {
			t.Fatal(err)
		}
		if rep.GoMaxProcs != 1 || rep.NumCPU <= 0 {
			t.Errorf("env stamp: %+v", rep.EnvInfo)
		}
		if rep.Skipped != "skipped_nproc=1" || len(rep.Points) != 0 {
			t.Errorf("1-CPU run must record the skip marker and no points: %+v", rep)
		}
		if rep.MultiCore() {
			t.Error("skip marker classified as a multi-core curve")
		}
	})

	t.Run("curve", func(t *testing.T) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
		tcfg := trace.DefaultSynthConfig()
		tcfg.Seed = cfg.Seed
		tcfg.Connections = cfg.Connections
		tr := trace.NewSynth(tcfg).Generate()
		rep, err := MeasureScaling(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if rep.GoMaxProcs != 2 || rep.NumCPU <= 0 {
			t.Errorf("env stamp: %+v", rep.EnvInfo)
		}
		if rep.Skipped != "" || len(rep.Points) != 2 {
			t.Fatalf("curve: %+v", rep)
		}
		if !rep.MultiCore() {
			t.Error("measured curve not classified as multi-core")
		}
		if rep.Points[0].Workers != 1 || rep.Points[0].Speedup != 1 {
			t.Errorf("1-worker point must anchor speedup at 1.0: %+v", rep.Points[0])
		}
		for i, p := range rep.Points {
			if p.Workers != i+1 || p.WallMs < 0 || p.Speedup <= 0 {
				t.Errorf("point %d: %+v", i, p)
			}
		}
	})
}

// TestScalingReportMultiCore covers the clobber guard's classification:
// only a measured multi-core curve is worth preserving.
func TestScalingReportMultiCore(t *testing.T) {
	cases := []struct {
		name string
		rep  *ScalingReport
		want bool
	}{
		{"nil", nil, false},
		{"skip-marker", &ScalingReport{EnvInfo: EnvInfo{GoMaxProcs: 1, NumCPU: 1}, Skipped: "skipped_nproc=1"}, false},
		{"empty-points", &ScalingReport{EnvInfo: EnvInfo{GoMaxProcs: 4, NumCPU: 4}}, false},
		{"curve", &ScalingReport{EnvInfo: EnvInfo{GoMaxProcs: 4, NumCPU: 4},
			Points: []ScalingPoint{{Workers: 1, Speedup: 1}, {Workers: 2, Speedup: 1.7}}}, true},
	}
	for _, tc := range cases {
		if got := tc.rep.MultiCore(); got != tc.want {
			t.Errorf("%s: MultiCore() = %v, want %v", tc.name, got, tc.want)
		}
	}
}
