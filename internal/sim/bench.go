package sim

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"phttp/internal/core"
	"phttp/internal/trace"
)

// The benchmark harness behind `make bench` / `phttp-bench -sim-bench`: it
// measures the reference ClusterSweep and emits the numbers BENCH_sim.json
// records, so every change to the simulator hot path leaves a trajectory
// (ns/event, allocs/event, simulated events/sec, sweep wall-clock) that can
// be compared across commits on the same machine.

// BenchPoint is one measured execution of the reference sweep.
type BenchPoint struct {
	// WallMs is the sweep's wall-clock time in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Mallocs is the number of heap allocations during the sweep.
	Mallocs uint64 `json:"mallocs"`
	// Events and Requests are summed over all grid points.
	Events   int64 `json:"events"`
	Requests int64 `json:"requests"`
	// NsPerEvent and AllocsPerEvent are WallMs and Mallocs normalized by
	// Events — the per-event cost of the simulator across the whole sweep
	// (workers included, so parallel points divide wall-clock across
	// cores).
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// EventsPerSec is the aggregate simulated-event throughput.
	EventsPerSec float64 `json:"events_per_sec"`
}

func newBenchPoint(wall time.Duration, mallocs uint64, events, requests int64) BenchPoint {
	p := BenchPoint{
		WallMs:   float64(wall.Milliseconds()),
		Mallocs:  mallocs,
		Events:   events,
		Requests: requests,
	}
	if events > 0 {
		p.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		p.AllocsPerEvent = float64(mallocs) / float64(events)
	}
	if wall > 0 {
		p.EventsPerSec = float64(events) / wall.Seconds()
	}
	return p
}

// BenchConfig describes the reference sweep. The defaults are the fixed
// reference every BENCH_sim.json entry uses, so numbers stay comparable
// across commits.
type BenchConfig struct {
	Server      core.ServerKind `json:"-"`
	ServerName  string          `json:"server"`
	Nodes       []int           `json:"nodes"`
	Connections int             `json:"connections"`
	Seed        uint64          `json:"seed"`
	Combos      int             `json:"combos"`
}

// DefaultBenchConfig is the reference sweep: all seven Figure 7 combos over
// 1-6 Apache nodes on a 12000-connection synthetic trace.
func DefaultBenchConfig() BenchConfig {
	return BenchConfig{
		Server:      core.Apache,
		ServerName:  core.Apache.String(),
		Nodes:       []int{1, 2, 3, 4, 5, 6},
		Connections: 12000,
		Seed:        1,
		Combos:      len(Combos()),
	}
}

// TraceGenReport captures sweep-startup cost: how long the reference
// workload takes to draw serially, to draw across GOMAXPROCS workers
// (identical output — the generator's per-block RNG streams carry the
// determinism), and to come out of the on-disk binary trace cache. Startup
// used to be invisible in the trajectory while per-event cost fell 4.5x;
// this records it per commit alongside the sweep numbers.
type TraceGenReport struct {
	// SerialMs and ParallelMs time Synth.GenerateParallel(1) and (0);
	// FlattenMs times the Flatten10 derivation — regenerating the sweep
	// workload from scratch costs SerialMs + FlattenMs.
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	FlattenMs  float64 `json:"flatten_ms"`
	// CacheColdMs is LoadOrGenerate into an empty cache directory
	// (generation plus flattening plus writing both cached forms);
	// CacheHitMs is the subsequent load of the same workload, flattened
	// form included.
	CacheColdMs float64 `json:"cache_cold_ms"`
	CacheHitMs  float64 `json:"cache_hit_ms"`
	// CacheHitSpeedup is (SerialMs+FlattenMs)/CacheHitMs: how much faster
	// a sweep acquires its workload (both forms) from the cache than by
	// regenerating it.
	CacheHitSpeedup float64 `json:"cache_hit_speedup_vs_regen"`
	// ParallelSpeedup is SerialMs/ParallelMs (≈1 on one CPU).
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// BenchReport is the payload of BENCH_sim.json.
type BenchReport struct {
	Reference  BenchConfig `json:"reference"`
	GoMaxProcs int         `json:"gomaxprocs"`
	// Serial runs the sweep on one worker; Parallel on GOMAXPROCS.
	Serial   BenchPoint `json:"serial"`
	Parallel BenchPoint `json:"parallel"`
	// TraceGen times workload construction (sweep startup).
	TraceGen TraceGenReport `json:"trace_gen"`
	// Baseline, when set, is the recorded pre-optimization measurement of
	// the same reference sweep (serial; the baseline code had no parallel
	// path), and the Speedup fields compare against it.
	Baseline             *BenchPoint `json:"baseline,omitempty"`
	SpeedupWallClock     float64     `json:"speedup_wall_clock,omitempty"`
	PerRunEventsPerSec   float64     `json:"per_run_events_per_sec_gain,omitempty"`
	PerEventAllocsRatio  float64     `json:"alloc_reduction_factor,omitempty"`
	BaselineDescription  string      `json:"baseline_description,omitempty"`
	MeasuredAtUnixMillis int64       `json:"measured_at_unix_ms"`
}

// measureSweep runs the reference sweep once with the given worker count.
func measureSweep(cfg BenchConfig, tr *trace.Trace, workers int) (BenchPoint, error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	_, results, err := ClusterSweepParallel(cfg.Server, cfg.Nodes, Combos(), tr, workers)
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return BenchPoint{}, err
	}
	var events, requests int64
	for _, r := range results {
		events += r.Events
		requests += r.Requests
	}
	return newBenchPoint(wall, ms1.Mallocs-ms0.Mallocs, events, requests), nil
}

// measureTraceGen times the four ways the reference workload can be
// constructed. The cache measurements use a throwaway directory so the
// bench never mixes with (or pollutes) a real trace cache.
func measureTraceGen(tcfg trace.SynthConfig) (TraceGenReport, *trace.Trace, error) {
	var g TraceGenReport
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	// Each phase starts from a collected heap: a single-sample timing
	// right after the previous phase grew the heap mostly measures the
	// GC scanning that phase's garbage.
	timed := func(f func() error) (float64, error) {
		runtime.GC()
		start := time.Now()
		err := f()
		return ms(time.Since(start)), err
	}

	var err error
	if g.SerialMs, err = timed(func() error {
		trace.NewSynth(tcfg).GenerateParallel(1)
		return nil
	}); err != nil {
		return g, nil, err
	}
	var tr *trace.Trace
	if g.ParallelMs, err = timed(func() error {
		tr = trace.NewSynth(tcfg).GenerateParallel(0)
		return nil
	}); err != nil {
		return g, nil, err
	}
	if g.FlattenMs, err = timed(func() error {
		tr.Flatten10()
		return nil
	}); err != nil {
		return g, nil, err
	}

	dir, err := os.MkdirTemp("", "phttp-bench-cache-")
	if err != nil {
		return g, nil, err
	}
	defer os.RemoveAll(dir)
	if g.CacheColdMs, err = timed(func() error {
		_, _, err := trace.LoadOrGenerate(dir, tcfg)
		return err
	}); err != nil {
		return g, nil, err
	}
	// Best of three: the hit path is short enough that one stray GC or
	// page-cache miss would dominate a single sample.
	for i := 0; i < 3; i++ {
		hitMs, err := timed(func() error {
			_, hit, err := trace.LoadOrGenerate(dir, tcfg)
			if err == nil && !hit {
				return fmt.Errorf("sim: bench cache did not hit on reload")
			}
			return err
		})
		if err != nil {
			return g, nil, err
		}
		if g.CacheHitMs == 0 || hitMs < g.CacheHitMs {
			g.CacheHitMs = hitMs
		}
	}

	if g.CacheHitMs > 0 {
		g.CacheHitSpeedup = (g.SerialMs + g.FlattenMs) / g.CacheHitMs
	}
	if g.ParallelMs > 0 {
		g.ParallelSpeedup = g.SerialMs / g.ParallelMs
	}
	return g, tr, nil
}

// RunBench generates the reference trace (timing serial, parallel and
// cached construction), measures the sweep serially and in parallel, and
// returns the report (without baseline comparison; callers attach recorded
// baselines via AttachBaseline).
func RunBench(cfg BenchConfig) (BenchReport, error) {
	tcfg := trace.DefaultSynthConfig()
	tcfg.Seed = cfg.Seed
	tcfg.Connections = cfg.Connections

	rep := BenchReport{
		Reference:            cfg,
		GoMaxProcs:           runtime.GOMAXPROCS(0),
		MeasuredAtUnixMillis: time.Now().UnixMilli(),
	}
	var (
		tr  *trace.Trace
		err error
	)
	if rep.TraceGen, tr, err = measureTraceGen(tcfg); err != nil {
		return rep, err
	}
	if rep.Serial, err = measureSweep(cfg, tr, 1); err != nil {
		return rep, err
	}
	if rep.Parallel, err = measureSweep(cfg, tr, 0); err != nil {
		return rep, err
	}
	return rep, nil
}

// AttachBaseline records a pre-optimization measurement and derives the
// speedup metrics: wall-clock of the baseline (serial, the only mode it
// had) against the current parallel sweep, and per-run simulated-event
// throughput serial-vs-serial so the win cannot come from parallelism
// alone. A baseline with unknown event count (the pre-refactor engine did
// not report one) may pass Events=0 and have it filled from the current
// serial run — valid because the refactor is result- and event-count
// preserving (the golden tests pin this).
func (r *BenchReport) AttachBaseline(b BenchPoint, description string) {
	if b.Events == 0 {
		b = newBenchPoint(time.Duration(b.WallMs)*time.Millisecond, b.Mallocs,
			r.Serial.Events, r.Serial.Requests)
	}
	r.Baseline = &b
	r.BaselineDescription = description
	if r.Parallel.WallMs > 0 {
		r.SpeedupWallClock = b.WallMs / r.Parallel.WallMs
	}
	if b.EventsPerSec > 0 {
		r.PerRunEventsPerSec = r.Serial.EventsPerSec / b.EventsPerSec
	}
	if r.Serial.AllocsPerEvent > 0 {
		r.PerEventAllocsRatio = b.AllocsPerEvent / r.Serial.AllocsPerEvent
	}
}
