package sim

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"phttp/internal/core"
	"phttp/internal/dstate"
	"phttp/internal/server"
	"phttp/internal/trace"
)

// The benchmark harness behind `make bench` / `phttp-bench -sim-bench`: it
// measures the reference ClusterSweep and emits the numbers BENCH_sim.json
// records, so every change to the simulator hot path leaves a trajectory
// (ns/event, allocs/event, simulated events/sec, sweep wall-clock) that can
// be compared across commits on the same machine.

// EnvInfo stamps the execution environment onto each report section:
// a parallel_speedup of ~1.0 means nothing without knowing the run had
// one core, so every section is self-describing instead of inheriting a
// single top-level gomaxprocs.
type EnvInfo struct {
	// GoMaxProcs is runtime.GOMAXPROCS(0) at measurement time; NumCPU is
	// the machine's core count (nproc).
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"nproc,omitempty"`
}

func env() EnvInfo {
	return EnvInfo{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
}

// BenchPoint is one measured execution of the reference sweep.
type BenchPoint struct {
	EnvInfo
	// WallMs is the sweep's wall-clock time in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Mallocs is the number of heap allocations during the sweep.
	Mallocs uint64 `json:"mallocs"`
	// Events and Requests are summed over all grid points.
	Events   int64 `json:"events"`
	Requests int64 `json:"requests"`
	// NsPerEvent and AllocsPerEvent are WallMs and Mallocs normalized by
	// Events — the per-event cost of the simulator across the whole sweep
	// (workers included, so parallel points divide wall-clock across
	// cores).
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// EventsPerSec is the aggregate simulated-event throughput.
	EventsPerSec float64 `json:"events_per_sec"`
}

func newBenchPoint(wall time.Duration, mallocs uint64, events, requests int64) BenchPoint {
	p := BenchPoint{
		WallMs:   float64(wall.Milliseconds()),
		Mallocs:  mallocs,
		Events:   events,
		Requests: requests,
	}
	if events > 0 {
		p.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		p.AllocsPerEvent = float64(mallocs) / float64(events)
	}
	if wall > 0 {
		p.EventsPerSec = float64(events) / wall.Seconds()
	}
	return p
}

// BenchConfig describes the reference sweep. The defaults are the fixed
// reference every BENCH_sim.json entry uses, so numbers stay comparable
// across commits.
type BenchConfig struct {
	Server      core.ServerKind `json:"-"`
	ServerName  string          `json:"server"`
	Nodes       []int           `json:"nodes"`
	Connections int             `json:"connections"`
	Seed        uint64          `json:"seed"`
	Combos      int             `json:"combos"`
}

// DefaultBenchConfig is the reference sweep: all seven Figure 7 combos over
// 1-6 Apache nodes on a 12000-connection synthetic trace.
func DefaultBenchConfig() BenchConfig {
	return BenchConfig{
		Server:      core.Apache,
		ServerName:  core.Apache.String(),
		Nodes:       []int{1, 2, 3, 4, 5, 6},
		Connections: 12000,
		Seed:        1,
		Combos:      len(Combos()),
	}
}

// TraceGenReport captures sweep-startup cost: how long the reference
// workload takes to draw serially, to draw across GOMAXPROCS workers
// (identical output — the generator's per-block RNG streams carry the
// determinism), and to come out of the on-disk binary trace cache. Startup
// used to be invisible in the trajectory while per-event cost fell 4.5x;
// this records it per commit alongside the sweep numbers.
type TraceGenReport struct {
	EnvInfo
	// SerialMs and ParallelMs time Synth.GenerateParallel(1) and (0);
	// FlattenMs times the Flatten10 derivation — regenerating the sweep
	// workload from scratch costs SerialMs + FlattenMs.
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	FlattenMs  float64 `json:"flatten_ms"`
	// CacheColdMs is LoadOrGenerate into an empty cache directory
	// (generation plus flattening plus writing both cached forms);
	// CacheHitMs is the subsequent load of the same workload, flattened
	// form included.
	CacheColdMs float64 `json:"cache_cold_ms"`
	CacheHitMs  float64 `json:"cache_hit_ms"`
	// CacheHitSpeedup is (SerialMs+FlattenMs)/CacheHitMs: how much faster
	// a sweep acquires its workload (both forms) from the cache than by
	// regenerating it.
	CacheHitSpeedup float64 `json:"cache_hit_speedup_vs_regen"`
	// ParallelSpeedup is SerialMs/ParallelMs (≈1 on one CPU).
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// CacheHitAllocs is the heap allocations of one mapped cache hit (both
	// forms), measured with the collector parked so ambient GC assists are
	// excluded. CacheHitCopyMs / CacheHitCopyAllocs measure the copying
	// loader (NoMmap) with the catalog map and the interner's name→ID map
	// forced — the fully materialized load every cache hit paid before the
	// zero-copy path. CacheHitAllocReduction is copy ÷ mapped, the factor
	// the mmap acceptance gate tracks (≥10×).
	CacheHitAllocs         float64 `json:"cache_hit_allocs"`
	CacheHitCopyMs         float64 `json:"cache_hit_copy_ms"`
	CacheHitCopyAllocs     float64 `json:"cache_hit_copy_allocs"`
	CacheHitAllocReduction float64 `json:"cache_hit_alloc_reduction"`
}

// ScalingPoint is one worker count of the multi-core scaling curve.
type ScalingPoint struct {
	Workers      int     `json:"workers"`
	WallMs       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is wall-clock relative to the 1-worker run of the same curve.
	Speedup float64 `json:"speedup_vs_1_worker"`
}

// ScalingReport is the `scaling` section of BENCH_sim.json: the reference
// sweep at every worker count 1..GOMAXPROCS. On a single-core machine the
// curve would be meaningless (every point times the same serial schedule),
// so the section records an explicit skip marker instead of fake numbers.
type ScalingReport struct {
	EnvInfo
	// Skipped is "skipped_nproc=1" when the environment had one core and
	// no curve was measured; empty otherwise.
	Skipped string         `json:"skipped,omitempty"`
	Points  []ScalingPoint `json:"points,omitempty"`
}

// MultiCore reports whether the section holds a measured multi-core curve
// (as opposed to a skip marker) — the curves phttp-bench refuses to
// clobber from a single-core run without -force.
func (s *ScalingReport) MultiCore() bool {
	return s != nil && s.Skipped == "" && len(s.Points) > 0 && s.GoMaxProcs > 1
}

// MeasureScaling runs the reference sweep at worker counts 1..GOMAXPROCS
// over a prepared trace and returns the scaling curve. With one core it
// returns only the skip marker; callers decide whether that may replace a
// recorded multi-core curve.
func MeasureScaling(cfg BenchConfig, tr *trace.Trace) (ScalingReport, error) {
	rep := ScalingReport{EnvInfo: env()}
	if rep.GoMaxProcs <= 1 {
		rep.Skipped = "skipped_nproc=1"
		return rep, nil
	}
	var base float64
	for w := 1; w <= rep.GoMaxProcs; w++ {
		p, _, err := measureSweep(cfg, tr, w)
		if err != nil {
			return rep, err
		}
		sp := ScalingPoint{Workers: w, WallMs: p.WallMs, EventsPerSec: p.EventsPerSec}
		if w == 1 {
			base = p.WallMs
		}
		if p.WallMs > 0 {
			sp.Speedup = base / p.WallMs
		}
		rep.Points = append(rep.Points, sp)
	}
	return rep, nil
}

// LatencyComboPoint is one combo's tail digest at the reference sweep's
// largest cluster size, in milliseconds.
type LatencyComboPoint struct {
	Combo  string  `json:"combo"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	// NodeQueueP99Ms is the per-back-end queue-delay p99 (CPU and disk
	// FIFO waiting, post-warmup) from a dedicated run of the same
	// configuration with RecordNodeDelays on — the load-imbalance
	// signature: WRR's hot nodes spike here while locality-aware dispatch
	// stays flat. Index is the back-end node ID.
	NodeQueueP99Ms []float64 `json:"node_queue_p99_ms,omitempty"`
}

// LatencyReport is the `latency` section of BENCH_sim.json: per-combo
// tail quantiles from the serial reference sweep. Virtual-time delays
// are deterministic per (workload, config), so unlike the wall-clock
// sections these numbers are machine-independent — they move only when
// the simulated system's behavior moves.
type LatencyReport struct {
	Nodes  int                 `json:"nodes"`
	Combos []LatencyComboPoint `json:"combos"`
}

func maxNodes(cfg BenchConfig) int {
	m := 0
	for _, n := range cfg.Nodes {
		if n > m {
			m = n
		}
	}
	return m
}

func micsToMs(v core.Micros) float64 { return float64(v) / float64(core.Millisecond) }

func latencyReport(cfg BenchConfig, results []Result) *LatencyReport {
	rep := &LatencyReport{Nodes: maxNodes(cfg)}
	for _, r := range results {
		if r.Nodes != rep.Nodes {
			continue
		}
		rep.Combos = append(rep.Combos, LatencyComboPoint{
			Combo:  r.Combo,
			P50Ms:  micsToMs(r.Latency.P50),
			P95Ms:  micsToMs(r.Latency.P95),
			P99Ms:  micsToMs(r.Latency.P99),
			P999Ms: micsToMs(r.Latency.P999),
			MaxMs:  micsToMs(r.Latency.Max),
		})
	}
	return rep
}

// attachNodeDelays fills each latency combo point's per-node queue-delay
// digest by re-running the combo's largest-cluster configuration with the
// per-node histograms enabled. A separate pass so the measured sweep's
// per-event cost is not polluted by bookkeeping the reference run does not
// carry; virtual-time delays are deterministic, so the re-run reproduces
// the measured run's behavior exactly.
func attachNodeDelays(cfg BenchConfig, tr *trace.Trace, rep *LatencyReport) error {
	byName := make(map[string]Combo)
	for _, c := range Combos() {
		byName[c.Name] = c
	}
	for i := range rep.Combos {
		combo, ok := byName[rep.Combos[i].Combo]
		if !ok {
			continue
		}
		c := DefaultConfig(rep.Nodes, combo)
		c.Server = server.CostsFor(cfg.Server)
		c.RecordNodeDelays = true
		workload := tr
		if !combo.PHTTP {
			workload = tr.Flatten10()
		}
		r, err := Run(c, workload)
		if err != nil {
			return err
		}
		p99s := make([]float64, len(r.NodeDelays))
		for n, d := range r.NodeDelays {
			p99s[n] = micsToMs(d.P99)
		}
		rep.Combos[i].NodeQueueP99Ms = p99s
	}
	return nil
}

// LocalityPoint is one (tier size, state backend, staleness) configuration
// of the front-end-tier locality sweep.
type LocalityPoint struct {
	// Frontends is the tier size; State is the dispatch-state backend
	// ("local", "sharded", "replicated").
	Frontends int    `json:"frontends"`
	State     string `json:"state"`
	// StalenessMs is the replicated sync interval in simulated
	// milliseconds; 0 means the replicas never sync (the
	// infinite-staleness endpoint of the freshness axis). Omitted for
	// local and sharded backends, whose state has a single owner.
	StalenessMs float64 `json:"staleness_ms,omitempty"`
	// HitRate is the aggregate back-end cache hit rate; HitRateDrop is
	// the baseline (one front-end, local state) hit rate minus this
	// point's — the locality lost to splitting the dispatcher.
	HitRate     float64 `json:"hit_rate"`
	HitRateDrop float64 `json:"hit_rate_drop_vs_local"`
	// Throughput and MeanDelayMs are the run's primary service metrics.
	Throughput  float64 `json:"throughput_rps"`
	MeanDelayMs float64 `json:"mean_delay_ms"`
}

// LocalityCurve is one combo's locality-degradation-vs-freshness curve:
// the single-front-end baseline first, then sharded tiers of growing
// size, then replicated tiers from fresh to never-synced.
type LocalityCurve struct {
	Combo  string          `json:"combo"`
	Policy string          `json:"policy"`
	Points []LocalityPoint `json:"points"`
}

// LocalityReport is the `locality` section of BENCH_sim.json: how much
// cache locality each mapping policy loses as the front-end tier scales
// out, against the freshness of the shared dispatch state. Virtual-time
// results — deterministic per (workload, config), machine-independent
// like the latency section.
type LocalityReport struct {
	// Nodes is the back-end cluster size every point runs (the reference
	// sweep's largest).
	Nodes int `json:"nodes"`
	// Curves holds one entry per mapping combo.
	Curves []LocalityCurve `json:"curves"`
}

// localityFrontends are the sharded tier sizes swept; the largest is also
// the replicated tier size for the staleness axis.
var localityFrontends = []int{2, 4}

// localityStaleness is the replicated freshness axis, fresh to stale; the
// terminal 0 is "never sync" (fully independent replicas).
var localityStaleness = []core.Micros{
	10 * core.Millisecond,
	100 * core.Millisecond,
	1000 * core.Millisecond,
	0,
}

// MeasureLocality runs the front-end-tier locality sweep for every
// mapping combo of the reference set (WRR carries no dispatch state worth
// sharing, so it is skipped): baseline, sharded ownership at growing tier
// sizes, and full replication across the staleness axis.
func MeasureLocality(cfg BenchConfig, tr *trace.Trace) (*LocalityReport, error) {
	rep := &LocalityReport{Nodes: maxNodes(cfg)}
	run := func(combo Combo, fes int, mode dstate.Mode, staleness core.Micros) (Result, error) {
		c := DefaultConfig(rep.Nodes, combo)
		c.Server = server.CostsFor(cfg.Server)
		c.Frontends = fes
		c.FEState = mode
		c.Staleness = staleness
		workload := tr
		if !combo.PHTTP {
			workload = tr.Flatten10()
		}
		return Run(c, workload)
	}
	point := func(r Result, fes int, mode dstate.Mode, staleness core.Micros, base Result) LocalityPoint {
		return LocalityPoint{
			Frontends:   fes,
			State:       mode.String(),
			StalenessMs: micsToMs(staleness),
			HitRate:     r.HitRate,
			HitRateDrop: base.HitRate - r.HitRate,
			Throughput:  r.Throughput,
			MeanDelayMs: micsToMs(r.MeanDelay),
		}
	}
	for _, combo := range Combos() {
		if combo.Policy == "wrr" {
			continue
		}
		base, err := run(combo, 1, dstate.ModeLocal, 0)
		if err != nil {
			return nil, err
		}
		curve := LocalityCurve{
			Combo:  combo.Name,
			Policy: base.Policy,
			Points: []LocalityPoint{point(base, 1, dstate.ModeLocal, 0, base)},
		}
		for _, fes := range localityFrontends {
			r, err := run(combo, fes, dstate.ModeSharded, 0)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, point(r, fes, dstate.ModeSharded, 0, base))
		}
		replFEs := localityFrontends[len(localityFrontends)-1]
		for _, st := range localityStaleness {
			r, err := run(combo, replFEs, dstate.ModeReplicated, st)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, point(r, replFEs, dstate.ModeReplicated, st, base))
		}
		rep.Curves = append(rep.Curves, curve)
	}
	return rep, nil
}

// BenchReport is the payload of BENCH_sim.json. Every section carries its
// own gomaxprocs/nproc stamp (EnvInfo) rather than one top-level value, so
// a section measured on one core is self-describing even when another —
// e.g. a preserved multi-core scaling curve — was not.
type BenchReport struct {
	Reference BenchConfig `json:"reference"`
	// Serial runs the sweep on one worker; Parallel on GOMAXPROCS.
	Serial   BenchPoint `json:"serial"`
	Parallel BenchPoint `json:"parallel"`
	// TraceGen times workload construction (sweep startup).
	TraceGen TraceGenReport `json:"trace_gen"`
	// Latency is the per-combo tail digest of the serial sweep
	// (deterministic: moves only with simulated behavior, not hardware).
	Latency *LatencyReport `json:"latency,omitempty"`
	// Locality is the front-end-tier locality-vs-freshness sweep
	// (deterministic, like Latency).
	Locality *LocalityReport `json:"locality,omitempty"`
	// Scaling is the multi-core worker-count curve (or its skip marker);
	// nil when the run did not ask for one (phttp-bench -scaling).
	Scaling *ScalingReport `json:"scaling,omitempty"`
	// Baseline, when set, is the recorded pre-optimization measurement of
	// the same reference sweep (serial; the baseline code had no parallel
	// path), and the Speedup fields compare against it.
	Baseline             *BenchPoint `json:"baseline,omitempty"`
	SpeedupWallClock     float64     `json:"speedup_wall_clock,omitempty"`
	PerRunEventsPerSec   float64     `json:"per_run_events_per_sec_gain,omitempty"`
	PerEventAllocsRatio  float64     `json:"alloc_reduction_factor,omitempty"`
	BaselineDescription  string      `json:"baseline_description,omitempty"`
	MeasuredAtUnixMillis int64       `json:"measured_at_unix_ms"`
}

// measureSweep runs the reference sweep once with the given worker count,
// returning the measurement and the sweep's results (for the latency
// section — the histograms record during the measured run, so their cost
// is part of the numbers, as it is in production).
//
//phttp:wallclock benchmark harness measures real elapsed time
func measureSweep(cfg BenchConfig, tr *trace.Trace, workers int) (BenchPoint, []Result, error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	_, results, err := ClusterSweepParallel(cfg.Server, cfg.Nodes, Combos(), tr, workers)
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return BenchPoint{}, nil, err
	}
	var events, requests int64
	for _, r := range results {
		events += r.Events
		requests += r.Requests
	}
	p := newBenchPoint(wall, ms1.Mallocs-ms0.Mallocs, events, requests)
	p.EnvInfo = env()
	return p, results, nil
}

// measureAllocs returns the steady-state heap allocations of one call to
// f, averaged over a few runs with the collector parked: f's transient
// garbage (a reference workload materializes ~18 MB per load) otherwise
// triggers GC assists whose bookkeeping allocations land in the caller's
// count and drown the signal being measured.
func measureAllocs(n int, f func() error) (float64, error) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	if err := f(); err != nil { // warm caches and lazy init off the books
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n), nil
}

// measureTraceGen times the four ways the reference workload can be
// constructed. The cache measurements use a throwaway directory so the
// bench never mixes with (or pollutes) a real trace cache.
//
//phttp:wallclock benchmark harness measures real elapsed time
func measureTraceGen(tcfg trace.SynthConfig) (TraceGenReport, *trace.Trace, error) {
	var g TraceGenReport
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	// Each phase starts from a collected heap: a single-sample timing
	// right after the previous phase grew the heap mostly measures the
	// GC scanning that phase's garbage.
	timed := func(f func() error) (float64, error) {
		runtime.GC()
		start := time.Now()
		err := f()
		return ms(time.Since(start)), err
	}

	var err error
	if g.SerialMs, err = timed(func() error {
		trace.NewSynth(tcfg).GenerateParallel(1)
		return nil
	}); err != nil {
		return g, nil, err
	}
	var tr *trace.Trace
	if g.ParallelMs, err = timed(func() error {
		tr = trace.NewSynth(tcfg).GenerateParallel(0)
		return nil
	}); err != nil {
		return g, nil, err
	}
	if g.FlattenMs, err = timed(func() error {
		tr.Flatten10()
		return nil
	}); err != nil {
		return g, nil, err
	}

	dir, err := os.MkdirTemp("", "phttp-bench-cache-")
	if err != nil {
		return g, nil, err
	}
	defer os.RemoveAll(dir)
	if g.CacheColdMs, err = timed(func() error {
		_, _, err := trace.LoadOrGenerate(dir, tcfg)
		return err
	}); err != nil {
		return g, nil, err
	}
	// Best of three: the hit path is short enough that one stray GC or
	// page-cache miss would dominate a single sample.
	for i := 0; i < 3; i++ {
		hitMs, err := timed(func() error {
			_, hit, err := trace.LoadOrGenerate(dir, tcfg)
			if err == nil && !hit {
				return fmt.Errorf("sim: bench cache did not hit on reload")
			}
			return err
		})
		if err != nil {
			return g, nil, err
		}
		if g.CacheHitMs == 0 || hitMs < g.CacheHitMs {
			g.CacheHitMs = hitMs
		}
	}

	// The copying loader, with both deferred tables forced (the catalog
	// map and the interner's name→ID map), is what every cache hit cost
	// before the zero-copy path — the honest comparator for the alloc
	// reduction the mmap gate tracks.
	loadCopied := func() error {
		wl, hit, err := trace.LoadOrGenerateWith(dir, tcfg, trace.LoadOptions{NoMmap: true})
		if err != nil {
			return err
		}
		if !hit {
			return fmt.Errorf("sim: bench cache did not hit on reload")
		}
		wl.PHTTP.Catalog()
		wl.PHTTP.Interner.Lookup("/")
		return nil
	}
	for i := 0; i < 3; i++ {
		copyMs, err := timed(loadCopied)
		if err != nil {
			return g, nil, err
		}
		if g.CacheHitCopyMs == 0 || copyMs < g.CacheHitCopyMs {
			g.CacheHitCopyMs = copyMs
		}
	}
	if g.CacheHitAllocs, err = measureAllocs(5, func() error {
		_, hit, err := trace.LoadOrGenerate(dir, tcfg)
		if err == nil && !hit {
			return fmt.Errorf("sim: bench cache did not hit on reload")
		}
		return err
	}); err != nil {
		return g, nil, err
	}
	if g.CacheHitCopyAllocs, err = measureAllocs(5, loadCopied); err != nil {
		return g, nil, err
	}
	if g.CacheHitAllocs > 0 {
		g.CacheHitAllocReduction = g.CacheHitCopyAllocs / g.CacheHitAllocs
	}

	if g.CacheHitMs > 0 {
		g.CacheHitSpeedup = (g.SerialMs + g.FlattenMs) / g.CacheHitMs
	}
	if g.ParallelMs > 0 {
		g.ParallelSpeedup = g.SerialMs / g.ParallelMs
	}
	g.EnvInfo = env()
	return g, tr, nil
}

// RunBench generates the reference trace (timing serial, parallel and
// cached construction), measures the sweep serially and in parallel, and
// returns the report (without baseline comparison; callers attach recorded
// baselines via AttachBaseline).
func RunBench(cfg BenchConfig) (BenchReport, error) {
	tcfg := trace.DefaultSynthConfig()
	tcfg.Seed = cfg.Seed
	tcfg.Connections = cfg.Connections

	rep := BenchReport{
		Reference: cfg,
		//phttp:wallclock report timestamp, not simulation input
		MeasuredAtUnixMillis: time.Now().UnixMilli(),
	}
	var (
		tr  *trace.Trace
		err error
	)
	if rep.TraceGen, tr, err = measureTraceGen(tcfg); err != nil {
		return rep, err
	}
	var serialResults []Result
	if rep.Serial, serialResults, err = measureSweep(cfg, tr, 1); err != nil {
		return rep, err
	}
	rep.Latency = latencyReport(cfg, serialResults)
	if err = attachNodeDelays(cfg, tr, rep.Latency); err != nil {
		return rep, err
	}
	if rep.Locality, err = MeasureLocality(cfg, tr); err != nil {
		return rep, err
	}
	if rep.Parallel, _, err = measureSweep(cfg, tr, 0); err != nil {
		return rep, err
	}
	return rep, nil
}

// AttachBaseline records a pre-optimization measurement and derives the
// speedup metrics: wall-clock of the baseline (serial, the only mode it
// had) against the current parallel sweep, and per-run simulated-event
// throughput serial-vs-serial so the win cannot come from parallelism
// alone. A baseline with unknown event count (the pre-refactor engine did
// not report one) may pass Events=0 and have it filled from the current
// serial run — valid because the refactor is result- and event-count
// preserving (the golden tests pin this).
func (r *BenchReport) AttachBaseline(b BenchPoint, description string) {
	if b.Events == 0 {
		b = newBenchPoint(time.Duration(b.WallMs)*time.Millisecond, b.Mallocs,
			r.Serial.Events, r.Serial.Requests)
	}
	r.Baseline = &b
	r.BaselineDescription = description
	if r.Parallel.WallMs > 0 {
		r.SpeedupWallClock = b.WallMs / r.Parallel.WallMs
	}
	if b.EventsPerSec > 0 {
		r.PerRunEventsPerSec = r.Serial.EventsPerSec / b.EventsPerSec
	}
	if r.Serial.AllocsPerEvent > 0 {
		r.PerEventAllocsRatio = b.AllocsPerEvent / r.Serial.AllocsPerEvent
	}
}
