package sim

import "testing"

// LARD/R is the extension baseline (ASPLOS '98 companion policy); it is not
// one of the paper's curves, but it must behave sanely in the simulator:
// locality comparable to basic LARD, well above WRR.
func TestLARDRCombos(t *testing.T) {
	lardr := run(t, 4, "simple-LARDR")
	lard := run(t, 4, "simple-LARD")
	wrr := run(t, 4, "WRR")
	if lardr.Throughput < 1.3*wrr.Throughput {
		t.Errorf("LARD/R (%.0f) not clearly above WRR (%.0f)", lardr.Throughput, wrr.Throughput)
	}
	if rel(lardr.Throughput, lard.Throughput) > 0.25 {
		t.Errorf("LARD/R (%.0f) should be within 25%% of LARD (%.0f)", lardr.Throughput, lard.Throughput)
	}
	if lardr.HitRate < wrr.HitRate {
		t.Errorf("LARD/R hit rate %.2f below WRR %.2f", lardr.HitRate, wrr.HitRate)
	}
}

func TestLARDRPHTTPComboRuns(t *testing.T) {
	res := run(t, 3, "simple-LARDR-PHTTP")
	if res.Throughput <= 0 {
		t.Fatalf("empty result %+v", res)
	}
}
