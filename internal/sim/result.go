package sim

import (
	"fmt"

	"phttp/internal/core"
)

// Result is the outcome of one simulation run, measured after warmup.
type Result struct {
	Combo string
	// Policy is the canonical dispatch-registry name of the policy that
	// ran ("wrr", "lard", "lardr" or "extlard") — the same string the
	// prototype front-end reports for the same configuration.
	Policy string
	Server string
	Nodes  int

	// Requests served and simulated time after warmup.
	Requests int64
	SimTime  core.Micros
	// Events is the total number of discrete events the engine processed
	// over the whole run (including warmup) — the denominator of the
	// ns/event and events/sec benchmark metrics. Deterministic for a given
	// (config, trace): identical across serial and parallel sweeps.
	Events int64

	// Throughput is requests/second, the paper's primary metric.
	Throughput float64
	// BandwidthMbps is delivered body bandwidth in megabits/second.
	BandwidthMbps float64
	// MeanDelay is the mean per-request response delay (from batch
	// arrival at the front-end to transmit completion); Figure 3's
	// y-axis.
	MeanDelay core.Micros

	// HitRate is the aggregate back-end cache hit rate after warmup.
	HitRate float64
	// CPUUtil and DiskUtil are mean back-end utilizations; FEUtilization
	// is the front-end CPU utilization (Section 8.2 reports ~60% at six
	// Apache back-ends).
	CPUUtil       float64
	DiskUtil      float64
	FEUtilization float64

	// Extended-LARD decision counters (zero for other policies).
	LocalServes   int64
	RemoteServes  int64
	Migrations    int64
	CacheBypasses int64

	// Latency summarizes the post-warmup per-request delay distribution
	// (same delay definition as MeanDelay, batch arrival to transmit
	// completion), read from the run's HDR-style histogram. A value type.
	// Deterministic for a given (config, trace).
	Latency LatencySummary

	// NodeDelays, when Config.RecordNodeDelays is set (nil otherwise),
	// holds one post-warmup queue-delay digest per back-end: the time
	// each CPU and disk acquisition spent waiting in that node's FIFO
	// before service — the load-imbalance signature WRR's hot nodes show
	// and locality-aware dispatch flattens. The slice makes Result
	// non-comparable with ==; stability tests compare with
	// reflect.DeepEqual.
	NodeDelays []LatencySummary

	// Churn counters (zero for churn-free runs). Redispatches counts
	// requests and connection opens re-sent to a live node after their
	// serving node crashed; FailedRequests counts requests abandoned when
	// the retry budget ran out or no node was up (the connection-close
	// fallback). Both cover the whole run — a crash during warmup still
	// shows up here.
	Redispatches   int64
	FailedRequests int64
}

// LatencySummary is the tail-latency digest of one run: quantile upper
// bounds from the fixed-bucket histogram (relative error ≤ 2^-7, see
// core.LatencyHist). Count covers post-warmup served requests; Max is
// whole-run (a warmup snapshot subtraction cannot recover which maximum
// came after the warm point).
type LatencySummary struct {
	Count int64
	P50   core.Micros
	P95   core.Micros
	P99   core.Micros
	P999  core.Micros
	Max   core.Micros
	// SLOViolations counts post-warmup requests slower than
	// Config.SLOTarget; zero when no target was set.
	SLOViolations int64
}

// Summarize digests a delay histogram, counting violations against the
// given target (0 = no target).
func Summarize(h *core.LatencyHist, target core.Micros) LatencySummary {
	ls := LatencySummary{
		Count: h.Count(),
		P50:   core.Micros(h.Quantile(0.50)),
		P95:   core.Micros(h.Quantile(0.95)),
		P99:   core.Micros(h.Quantile(0.99)),
		P999:  core.Micros(h.Quantile(0.999)),
		Max:   core.Micros(h.Max()),
	}
	if target > 0 {
		ls.SLOViolations = h.CountAbove(int64(target))
	}
	return ls
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-28s n=%-2d %8.1f req/s  hit=%5.1f%%  cpu=%5.1f%%  disk=%5.1f%%  fe=%5.1f%%  p99=%.1fms p999=%.1fms",
		r.Combo, r.Nodes, r.Throughput, 100*r.HitRate, 100*r.CPUUtil, 100*r.DiskUtil, 100*r.FEUtilization,
		float64(r.Latency.P99)/float64(core.Millisecond), float64(r.Latency.P999)/float64(core.Millisecond))
}
