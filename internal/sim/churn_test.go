package sim

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"phttp/internal/core"
	"phttp/internal/metrics"
	"phttp/internal/trace"
)

// Churn (membership-event) behavior: crashes re-dispatch in-flight work
// within the retry budget, drains finish gracefully, and the whole
// schedule is deterministic.

var (
	churnTraceOnce sync.Once
	churnTraceVal  *trace.Trace
)

func churnTrace() *trace.Trace {
	churnTraceOnce.Do(func() {
		cfg := trace.DefaultSynthConfig()
		cfg.Connections = 4000
		churnTraceVal = trace.NewSynth(cfg).Generate()
	})
	return churnTraceVal
}

func churnConfig(t *testing.T, comboName string) Config {
	t.Helper()
	combo, err := ComboByName(comboName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4, combo)
	// Measure the whole run: failures and re-dispatches are whole-run
	// counters, so conservation checks need Requests to be one too.
	cfg.WarmupFrac = 0
	return cfg
}

// totalRequests sums the workload's requests as the simulator will see
// them (flattened for non-P-HTTP combos).
func totalRequests(cfg Config, tr *trace.Trace) int64 {
	w := tr
	if !cfg.Combo.PHTTP {
		w = tr.Flatten10()
	}
	var n int64
	for _, c := range w.Conns {
		n += int64(c.Requests())
	}
	return n
}

// midRun returns a crash time roughly halfway through a churn-free run
// of cfg.
func midRun(t *testing.T, cfg Config) core.Micros {
	t.Helper()
	base := cfg
	base.Churn = nil
	res, err := Run(base, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	return res.SimTime / 2
}

func TestChurnCrashRedispatches(t *testing.T) {
	cfg := churnConfig(t, "simple-LARD-PHTTP")
	crashAt := midRun(t, cfg)
	cfg.Churn = []ChurnEvent{{At: crashAt, Kind: ChurnCrash, Node: 1}}
	cfg.RetryBudget = 2
	res, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Redispatches == 0 {
		t.Error("mid-run crash produced no re-dispatches")
	}
	if res.FailedRequests != 0 {
		t.Errorf("crash with 3 healthy nodes failed %d requests", res.FailedRequests)
	}
	if got, want := res.Requests, totalRequests(cfg, churnTrace()); got != want {
		t.Errorf("served %d of %d requests", got, want)
	}
}

func TestChurnCrashZeroBudgetFails(t *testing.T) {
	cfg := churnConfig(t, "simple-LARD-PHTTP")
	crashAt := midRun(t, cfg)
	cfg.Churn = []ChurnEvent{{At: crashAt, Kind: ChurnCrash, Node: 1}}
	cfg.RetryBudget = 0
	res, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Redispatches != 0 {
		t.Errorf("zero retry budget still re-dispatched %d times", res.Redispatches)
	}
	if res.FailedRequests == 0 {
		t.Error("zero retry budget after a crash failed no requests")
	}
	// Conservation: every request either completes or fails.
	if got, want := res.Requests+res.FailedRequests, totalRequests(cfg, churnTrace()); got != want {
		t.Errorf("served+failed = %d, want %d", got, want)
	}
}

func TestChurnLeaveIsGraceful(t *testing.T) {
	cfg := churnConfig(t, "simple-LARD-PHTTP")
	leaveAt := midRun(t, cfg)
	cfg.Churn = []ChurnEvent{{At: leaveAt, Kind: ChurnLeave, Node: 2}}
	res, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Redispatches != 0 || res.FailedRequests != 0 {
		t.Errorf("graceful drain re-dispatched %d / failed %d requests", res.Redispatches, res.FailedRequests)
	}
	if got, want := res.Requests, totalRequests(cfg, churnTrace()); got != want {
		t.Errorf("served %d of %d requests", got, want)
	}
}

func TestChurnCrashThenRejoin(t *testing.T) {
	cfg := churnConfig(t, "simple-LARD-PHTTP")
	crashAt := midRun(t, cfg)
	cfg.Churn = []ChurnEvent{
		{At: crashAt, Kind: ChurnCrash, Node: 1},
		{At: crashAt + crashAt/2, Kind: ChurnJoin, Node: 1},
	}
	cfg.RetryBudget = 3
	res, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRequests != 0 {
		t.Errorf("crash+rejoin failed %d requests", res.FailedRequests)
	}
	if got, want := res.Requests, totalRequests(cfg, churnTrace()); got != want {
		t.Errorf("served %d of %d requests", got, want)
	}
}

func TestChurnStartsDown(t *testing.T) {
	// A time-0 crash applies before admission: the run proceeds on the
	// surviving nodes without a single re-dispatch.
	cfg := churnConfig(t, "simple-LARD-PHTTP")
	cfg.Churn = []ChurnEvent{{At: 0, Kind: ChurnCrash, Node: 3}}
	cfg.RetryBudget = 1
	res, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Redispatches != 0 || res.FailedRequests != 0 {
		t.Errorf("starts-down run re-dispatched %d / failed %d", res.Redispatches, res.FailedRequests)
	}
}

func TestChurnAllMechanismsSurviveCrash(t *testing.T) {
	for _, name := range []string{
		"zeroCost-extLARD-PHTTP",
		"multiHandoff-extLARD-PHTTP",
		"BEforward-extLARD-PHTTP",
		"relayFE-extLARD-PHTTP",
		"WRR-PHTTP",
		"simple-LARDR-PHTTP",
	} {
		cfg := churnConfig(t, name)
		cfg.Churn = []ChurnEvent{{At: midRun(t, cfg), Kind: ChurnCrash, Node: 1}}
		cfg.RetryBudget = 4
		res, err := Run(cfg, churnTrace())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := res.Requests+res.FailedRequests, totalRequests(cfg, churnTrace()); got != want {
			t.Errorf("%s: served+failed = %d, want %d", name, got, want)
		}
	}
}

func TestChurnDeterministic(t *testing.T) {
	cfg := churnConfig(t, "BEforward-extLARD-PHTTP")
	cfg.Churn = []ChurnEvent{
		{At: midRun(t, cfg), Kind: ChurnCrash, Node: 0},
		{At: midRun(t, cfg) * 2, Kind: ChurnJoin, Node: 0},
	}
	cfg.RetryBudget = 2
	a, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("churn run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestChurnConfigValidation(t *testing.T) {
	base := churnConfig(t, "simple-LARD-PHTTP")
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative time", func(c *Config) { c.Churn = []ChurnEvent{{At: -1, Kind: ChurnCrash, Node: 0}} }, "time"},
		{"bad kind", func(c *Config) { c.Churn = []ChurnEvent{{Kind: ChurnKind(9), Node: 0}} }, "kind"},
		{"node out of range", func(c *Config) { c.Churn = []ChurnEvent{{Kind: ChurnJoin, Node: 4}} }, "out of range"},
		{"negative budget", func(c *Config) { c.RetryBudget = -1 }, "RetryBudget"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestChurnKindStrings(t *testing.T) {
	for _, k := range []ChurnKind{ChurnCrash, ChurnLeave, ChurnJoin} {
		got, err := ParseChurnKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseChurnKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseChurnKind("explode"); err == nil {
		t.Error("ParseChurnKind accepted an unknown kind")
	}
	if s := ChurnKind(9).String(); !strings.Contains(s, "9") {
		t.Errorf("ChurnKind(9).String() = %q", s)
	}
}

// TestChurnCrashDuringSetup pins the connection-setup retry path: with a
// back-end connection setup long enough that the whole trace is still
// opening when the crash lands, every affected connection either moves
// to a surviving node (within the budget) or fails whole (budget 0) —
// and the books still balance.
func TestChurnCrashDuringSetup(t *testing.T) {
	cfg := churnConfig(t, "simple-LARD-PHTTP")
	// Stretch setup so the crash reliably catches connections mid-open.
	cfg.Server.ConnSetup = 200 * core.Millisecond
	cfg.Churn = []ChurnEvent{{At: 50 * core.Millisecond, Kind: ChurnCrash, Node: 0}}
	cfg.RetryBudget = 2
	res, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Redispatches == 0 {
		t.Error("crash during a 200ms setup window re-dispatched nothing")
	}
	if res.FailedRequests != 0 {
		t.Errorf("crash with 3 healthy nodes and budget 2 failed %d requests", res.FailedRequests)
	}

	// Budget 0: the same crash fails every caught connection outright.
	cfg.RetryBudget = 0
	res0, err := Run(cfg, churnTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res0.Redispatches != 0 {
		t.Errorf("budget 0 re-dispatched %d times", res0.Redispatches)
	}
	if res0.FailedRequests == 0 {
		t.Error("budget 0 crash during setup failed no requests")
	}
	if res0.Requests+res0.FailedRequests != totalRequests(cfg, churnTrace()) {
		t.Errorf("books do not balance: %d served + %d failed != %d total",
			res0.Requests, res0.FailedRequests, totalRequests(cfg, churnTrace()))
	}
}

// TestResultStringAndTailSeries pins the human-facing render paths the
// figure drivers use: Result's one-line summary and the tail-latency
// series fold.
func TestResultStringAndTailSeries(t *testing.T) {
	r := Result{
		Combo: "simple-LARD-PHTTP", Nodes: 4, Throughput: 123.4, HitRate: 0.5,
		Latency: LatencySummary{P50: 2 * core.Millisecond, P95: 5 * core.Millisecond,
			P99: 10 * core.Millisecond, P999: 20 * core.Millisecond},
	}
	s := r.String()
	if !strings.Contains(s, "simple-LARD-PHTTP") || !strings.Contains(s, "p99=10.0ms") {
		t.Errorf("Result.String = %q", s)
	}
	p50, p95, p99, p999 := TailSeries([]float64{1, 2}, []Result{r, r})
	for _, se := range []struct {
		name string
		s    *metrics.Series
		want float64
	}{
		{"p50", p50, 2}, {"p95", p95, 5}, {"p99", p99, 10}, {"p999", p999, 20},
	} {
		if len(se.s.Points) != 2 || se.s.Points[0].Y != se.want || se.s.Points[1].Y != se.want {
			t.Errorf("%s series = %v, want y=%g at both points", se.name, se.s.Points, se.want)
		}
	}
}
