package sim

import (
	"sync"
	"testing"

	"phttp/internal/core"
	"phttp/internal/trace"
)

// testTrace builds a moderately sized deterministic workload once; the
// qualitative assertions need enough requests for caches to mean something.
var (
	testTraceOnce sync.Once
	testTraceVal  *trace.Trace
)

func testTrace() *trace.Trace {
	testTraceOnce.Do(func() {
		cfg := trace.DefaultSynthConfig()
		cfg.Connections = 16000
		testTraceVal = trace.NewSynth(cfg).Generate()
	})
	return testTraceVal
}

func run(t *testing.T, nodes int, comboName string) Result {
	t.Helper()
	combo, err := ComboByName(comboName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(nodes, combo), testTrace())
	if err != nil {
		t.Fatalf("%s n=%d: %v", comboName, nodes, err)
	}
	return res
}

func TestRunCompletesAllCombos(t *testing.T) {
	for _, combo := range Combos() {
		res, err := Run(DefaultConfig(2, combo), testTrace())
		if err != nil {
			t.Fatalf("%s: %v", combo.Name, err)
		}
		if res.Throughput <= 0 || res.Requests <= 0 {
			t.Errorf("%s: empty result %+v", combo.Name, res)
		}
	}
}

func TestSingleNodeAllPoliciesEquivalent(t *testing.T) {
	// Paper: "With one server node the performance with HTTP/1.1 is
	// identical to HTTP/1.0 because the backend servers are disk bound
	// with all policies."
	base := run(t, 1, "WRR").Throughput
	for _, name := range []string{"WRR-PHTTP", "simple-LARD", "BEforward-extLARD-PHTTP"} {
		got := run(t, 1, name).Throughput
		if rel(got, base) > 0.05 {
			t.Errorf("%s single-node throughput %.0f differs from WRR %.0f by >5%%", name, got, base)
		}
	}
}

func TestLARDBeatsWRRAtScale(t *testing.T) {
	// Paper: LARD-family beats WRR by a large margin at 4+ nodes through
	// cache aggregation.
	lard := run(t, 6, "simple-LARD")
	wrr := run(t, 6, "WRR")
	if lard.Throughput < 1.7*wrr.Throughput {
		t.Errorf("simple-LARD (%.0f) not well above WRR (%.0f) at 6 nodes", lard.Throughput, wrr.Throughput)
	}
	if lard.HitRate < wrr.HitRate+0.1 {
		t.Errorf("LARD hit rate %.2f not clearly above WRR %.2f", lard.HitRate, wrr.HitRate)
	}
}

func TestExtLARDBeatsSimpleLARDWithPHTTP(t *testing.T) {
	// The headline result: extended LARD with BE forwarding on P-HTTP
	// beats simple LARD on HTTP/1.0 (paper: up to ~26%).
	ext := run(t, 4, "BEforward-extLARD-PHTTP")
	simple := run(t, 4, "simple-LARD")
	if ext.Throughput <= simple.Throughput {
		t.Errorf("extLARD-PHTTP (%.0f) did not beat simple-LARD (%.0f)", ext.Throughput, simple.Throughput)
	}
}

func TestSimpleLARDSuffersUnderPHTTP(t *testing.T) {
	// Paper: driving simple LARD with a P-HTTP workload loses
	// considerably at small/medium cluster sizes.
	phttp := run(t, 4, "simple-LARD-PHTTP")
	http10 := run(t, 4, "simple-LARD")
	if phttp.Throughput >= 0.9*http10.Throughput {
		t.Errorf("simple-LARD-PHTTP (%.0f) should lose clearly to simple-LARD (%.0f)", phttp.Throughput, http10.Throughput)
	}
}

func TestMechanismsWithinIdealBand(t *testing.T) {
	// Paper: extended LARD with both practical mechanisms lands near the
	// zero-cost ideal, and the two mechanisms are competitive with each
	// other.
	ideal := run(t, 4, "zeroCost-extLARD-PHTTP")
	multi := run(t, 4, "multiHandoff-extLARD-PHTTP")
	fwd := run(t, 4, "BEforward-extLARD-PHTTP")
	if multi.Throughput < 0.8*ideal.Throughput {
		t.Errorf("multiHandoff (%.0f) more than 20%% below ideal (%.0f)", multi.Throughput, ideal.Throughput)
	}
	if fwd.Throughput < 0.8*ideal.Throughput {
		t.Errorf("BEforward (%.0f) more than 20%% below ideal (%.0f)", fwd.Throughput, ideal.Throughput)
	}
	if rel(multi.Throughput, fwd.Throughput) > 0.15 {
		t.Errorf("mechanisms differ by >15%%: multi %.0f vs BEforward %.0f", multi.Throughput, fwd.Throughput)
	}
}

func TestWRRGainsLittleFromPHTTP(t *testing.T) {
	// Paper (simulation): WRR cannot capitalize on persistent
	// connections because it stays disk bound.
	wrr := run(t, 4, "WRR")
	phttp := run(t, 4, "WRR-PHTTP")
	if rel(wrr.Throughput, phttp.Throughput) > 0.1 {
		t.Errorf("WRR %.0f vs WRR-PHTTP %.0f differ by >10%%", wrr.Throughput, phttp.Throughput)
	}
	if wrr.DiskUtil < 0.9 {
		t.Errorf("WRR disk utilization %.2f, expected disk bound", wrr.DiskUtil)
	}
}

func TestThroughputScalesWithNodes(t *testing.T) {
	small := run(t, 2, "BEforward-extLARD-PHTTP")
	big := run(t, 6, "BEforward-extLARD-PHTTP")
	if big.Throughput < 2*small.Throughput {
		t.Errorf("6 nodes (%.0f) should be well above 2x 2 nodes (%.0f)", big.Throughput, small.Throughput)
	}
}

func TestRelayCloseToIdealWithFastFE(t *testing.T) {
	// Section 6.1: a relaying front-end that is not a bottleneck gets
	// only a few percent above BE forwarding.
	combo, err := ComboByName("relayFE-extLARD-PHTTP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4, combo)
	cfg.FESpeedup = 8
	relay, err := Run(cfg, testTrace())
	if err != nil {
		t.Fatal(err)
	}
	ideal := run(t, 4, "zeroCost-extLARD-PHTTP")
	if relay.Throughput > 1.02*ideal.Throughput {
		t.Errorf("relay (%.0f) exceeded ideal (%.0f)", relay.Throughput, ideal.Throughput)
	}
	fwd := run(t, 4, "BEforward-extLARD-PHTTP")
	if relay.Throughput < 0.9*fwd.Throughput {
		t.Errorf("fast-FE relay (%.0f) fell well below BE forwarding (%.0f)", relay.Throughput, fwd.Throughput)
	}
}

func TestExtLARDStatsPopulated(t *testing.T) {
	res := run(t, 4, "BEforward-extLARD-PHTTP")
	if res.LocalServes == 0 {
		t.Error("no local serves recorded")
	}
	if res.RemoteServes == 0 {
		t.Error("no remote serves recorded: BE forwarding never forwarded")
	}
	if res.Migrations != 0 {
		t.Error("BE forwarding recorded migrations")
	}
	multi := run(t, 4, "multiHandoff-extLARD-PHTTP")
	if multi.Migrations == 0 {
		t.Error("multiple handoff never migrated")
	}
}

func TestDelaySweepShape(t *testing.T) {
	thr, delay, err := DelaySweep(core.Apache, []int{1, 8, 64}, testTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's shape: throughput saturates while delay keeps growing
	// with offered load.
	if !(thr.Points[1].Y > thr.Points[0].Y) {
		t.Errorf("throughput did not rise with load: %v", thr.Points)
	}
	if !(delay.Points[2].Y > delay.Points[0].Y) {
		t.Errorf("delay did not grow with load: %v", delay.Points)
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(2, Combos()[0])
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("accepted 0 nodes")
	}
	bad = good
	bad.WarmupFrac = 1.5
	if bad.Validate() == nil {
		t.Error("accepted warmup >= 1")
	}
	bad = good
	bad.Combo.Policy = "nonsense"
	if bad.Validate() == nil {
		t.Error("accepted unknown policy")
	}
}

func TestComboByNameErrors(t *testing.T) {
	if _, err := ComboByName("no-such-combo"); err == nil {
		t.Error("accepted unknown combo name")
	}
	for _, c := range Combos() {
		got, err := ComboByName(c.Name)
		if err != nil || got != c {
			t.Errorf("ComboByName(%q) = %+v, %v", c.Name, got, err)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	a := run(t, 3, "BEforward-extLARD-PHTTP")
	b := run(t, 3, "BEforward-extLARD-PHTTP")
	if a.Throughput != b.Throughput || a.HitRate != b.HitRate {
		t.Errorf("same inputs produced different results: %+v vs %+v", a, b)
	}
}

// rel returns |a-b| / max(a,b).
func rel(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if a == 0 {
		return 0
	}
	return (a - b) / a
}
