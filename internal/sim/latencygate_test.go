package sim

import (
	"path/filepath"
	"strings"
	"testing"

	"phttp/internal/core"
)

// gateResults runs all combos at n=2 on the shared test trace — a small
// stand-in for the gate sweep, exercising the same check logic.
func gateResults(t *testing.T) []Result {
	t.Helper()
	_, results, err := ClusterSweepParallel(core.Apache, []int{2}, Combos(), testTrace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func gateCfg() BenchConfig {
	cfg := DefaultBenchConfig()
	cfg.Nodes = []int{2}
	cfg.Connections = 16000 // testTrace
	return cfg
}

// TestLatencyGateSelfConsistent: a baseline recorded from a run must pass
// the same run.
func TestLatencyGateSelfConsistent(t *testing.T) {
	results := gateResults(t)
	b := NewLatencyBaseline(gateCfg(), results, 5)
	if len(b.P99Ms) != len(Combos()) {
		t.Fatalf("baseline covers %d combos, want %d", len(b.P99Ms), len(Combos()))
	}
	if regs := b.CheckResults(results); len(regs) != 0 {
		t.Errorf("self-check regressions: %v", regs)
	}
}

// TestLatencyGateCatchesInjectedRegression is the deliberate-failure
// test: tightening one combo's recorded p99 below its measured value must
// fail the gate — proving the gate can fail, not just pass.
func TestLatencyGateCatchesInjectedRegression(t *testing.T) {
	results := gateResults(t)
	b := NewLatencyBaseline(gateCfg(), results, 5)
	victim := results[0].Combo
	b.P99Ms[victim] *= 0.7 // as if the current run's p99 grew ~43%
	regs := b.CheckResults(results)
	if len(regs) != 1 || !strings.Contains(regs[0], victim) {
		t.Errorf("injected regression on %s not caught: %v", victim, regs)
	}
}

// TestLatencyGateCatchesMissingCombo: a combo recorded in the baseline
// but absent from the run must be reported, not silently skipped.
func TestLatencyGateCatchesMissingCombo(t *testing.T) {
	results := gateResults(t)
	b := NewLatencyBaseline(gateCfg(), results, 5)
	regs := b.CheckResults(results[1:])
	if len(regs) != 1 || !strings.Contains(regs[0], results[0].Combo) {
		t.Errorf("missing combo %s not reported: %v", results[0].Combo, regs)
	}
	// The converse — a new combo with no recorded expectation — is not a
	// failure; it starts gating after the next -latency-record.
	if regs := b.CheckResults(append(results, Result{Combo: "new-combo"})); len(regs) != 0 {
		t.Errorf("unrecorded combo should not fail the gate: %v", regs)
	}
}

func TestLatencyGateConfigMismatch(t *testing.T) {
	b := NewLatencyBaseline(gateCfg(), gateResults(t), 5)
	bad := gateCfg()
	bad.Seed = 99
	if err := b.CheckConfig(bad); err == nil {
		t.Error("CheckConfig accepted a different seed")
	}
	if err := b.CheckConfig(gateCfg()); err != nil {
		t.Errorf("CheckConfig rejected the recorded config: %v", err)
	}
}

// TestLatencyGateSaveLoadRoundTrip pins the on-disk format.
func TestLatencyGateSaveLoadRoundTrip(t *testing.T) {
	b := NewLatencyBaseline(gateCfg(), gateResults(t), 5)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatencyBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != b.Nodes || got.Seed != b.Seed || got.TolerancePct != b.TolerancePct ||
		len(got.P99Ms) != len(b.P99Ms) {
		t.Errorf("round trip lost fields: %+v vs %+v", got, b)
	}
	for combo, v := range b.P99Ms {
		if got.P99Ms[combo] != v {
			t.Errorf("%s: %v != %v after round trip", combo, got.P99Ms[combo], v)
		}
	}
}

// TestRecordedLatencyBaselineValid: the checked-in CI baseline must parse
// and match the gate's reference configuration — a drifted file should
// fail here, not mysteriously in CI.
func TestRecordedLatencyBaselineValid(t *testing.T) {
	b, err := LoadLatencyBaseline("../../.github/latency-baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckConfig(GateBenchConfig()); err != nil {
		t.Error(err)
	}
	if len(b.P99Ms) != len(Combos()) {
		t.Errorf("recorded baseline covers %d combos, want %d", len(b.P99Ms), len(Combos()))
	}
	for combo, v := range b.P99Ms {
		if v <= 0 {
			t.Errorf("recorded p99 for %s is %v", combo, v)
		}
	}
}
