// Package sim implements the trace-driven cluster simulator: an extension of
// the LARD simulator (Pai et al., ASPLOS '98) that models HTTP/1.1
// persistent connections, pipelined request batches, and the five request
// distribution mechanisms of the paper.
//
// Each back-end node has a FIFO CPU, a FIFO disk and a byte-budgeted LRU
// main-memory cache; the front-end has its own CPU running the dispatcher
// and forwarding module. Networks are assumed infinitely fast (as in the
// paper): throughput is limited only by CPU and disk. The request arrival
// rate is matched to the aggregate throughput of the server by keeping a
// fixed number of connections in flight (closed loop); throughput is the
// number of requests served divided by the simulated time to serve them.
package sim

import (
	"fmt"
	"strings"

	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/dstate"
	"phttp/internal/policy"
	"phttp/internal/server"
)

// Combo names a (policy, mechanism, workload-flavor) combination as used in
// the paper's figure legends.
type Combo struct {
	// Name is the legend string, e.g. "BEforward-extLARD-PHTTP".
	Name string
	// Policy is one of "wrr", "lard", "extlard".
	Policy string
	// Mechanism is the distribution mechanism the policy drives.
	Mechanism core.Mechanism
	// PHTTP selects the persistent-connection workload; false flattens
	// the trace to HTTP/1.0 (one connection per request).
	PHTTP bool
}

// Combos returns the full set of combinations evaluated in Figures 7 and 8,
// in the paper's legend order, plus the relaying front-end variant discussed
// in Section 6.1.
func Combos() []Combo {
	return []Combo{
		{Name: "zeroCost-extLARD-PHTTP", Policy: "extlard", Mechanism: core.ZeroCostHandoff, PHTTP: true},
		{Name: "multiHandoff-extLARD-PHTTP", Policy: "extlard", Mechanism: core.MultipleHandoff, PHTTP: true},
		{Name: "BEforward-extLARD-PHTTP", Policy: "extlard", Mechanism: core.BEForwarding, PHTTP: true},
		{Name: "simple-LARD", Policy: "lard", Mechanism: core.SingleHandoff, PHTTP: false},
		{Name: "simple-LARD-PHTTP", Policy: "lard", Mechanism: core.SingleHandoff, PHTTP: true},
		{Name: "WRR-PHTTP", Policy: "wrr", Mechanism: core.SingleHandoff, PHTTP: true},
		{Name: "WRR", Policy: "wrr", Mechanism: core.SingleHandoff, PHTTP: false},
	}
}

// ExtraCombos returns the extension combinations beyond the paper's figure
// legends: the Section 6.1 relaying front-end variant and the LARD/R
// (replication) baselines from the ASPLOS '98 companion strategy. They run
// in every driver but are not part of the default figure sweeps.
func ExtraCombos() []Combo {
	return []Combo{
		{Name: "relayFE-extLARD-PHTTP", Policy: "extlard", Mechanism: core.RelayFrontEnd, PHTTP: true},
		{Name: "simple-LARDR", Policy: "lardr", Mechanism: core.SingleHandoff, PHTTP: false},
		{Name: "simple-LARDR-PHTTP", Policy: "lardr", Mechanism: core.SingleHandoff, PHTTP: true},
	}
}

// AllCombos is the one canonical enumeration of every named combination —
// Combos() in legend order followed by ExtraCombos(). Help text, error
// messages and the scenario registry all derive from it, so no combo can
// exist that a listing does not show.
func AllCombos() []Combo {
	return append(Combos(), ExtraCombos()...)
}

// ComboNames returns the names of AllCombos, in order.
func ComboNames() []string {
	all := AllCombos()
	names := make([]string, len(all))
	for i, c := range all {
		names[i] = c.Name
	}
	return names
}

// ComboByName returns the named combination. The error lists every valid
// name (the same canonical set ComboNames reports).
func ComboByName(name string) (Combo, error) {
	for _, c := range AllCombos() {
		if c.Name == name {
			return c, nil
		}
	}
	return Combo{}, fmt.Errorf("sim: unknown combo %q (valid combos: %s)",
		name, strings.Join(ComboNames(), ", "))
}

// ChurnKind classifies a scheduled membership event.
type ChurnKind int

const (
	// ChurnCrash kills a node instantly: its cache restarts cold, its
	// in-flight work is re-dispatched against the retry budget, and the
	// dispatch policies stop placing work on it (dropping or keeping its
	// mappings per the down-cold-start option).
	ChurnCrash ChurnKind = iota
	// ChurnLeave drains a node gracefully: no new placements, existing
	// connections finish.
	ChurnLeave
	// ChurnJoin (re)admits a node as Up.
	ChurnJoin
)

// String returns the schema spelling of the kind ("crash", "leave",
// "join").
func (k ChurnKind) String() string {
	switch k {
	case ChurnCrash:
		return "crash"
	case ChurnLeave:
		return "leave"
	case ChurnJoin:
		return "join"
	}
	return fmt.Sprintf("ChurnKind(%d)", int(k))
}

// ParseChurnKind parses the schema spelling of a churn kind.
func ParseChurnKind(s string) (ChurnKind, error) {
	switch s {
	case "crash":
		return ChurnCrash, nil
	case "leave":
		return ChurnLeave, nil
	case "join":
		return ChurnJoin, nil
	}
	return 0, fmt.Errorf("sim: unknown churn kind %q (valid kinds: crash, leave, join)", s)
}

// ChurnEvent is one scheduled membership transition in a simulation run.
type ChurnEvent struct {
	// At is the simulated time the transition applies. Events at time 0
	// are applied before any connection is admitted, so a node can start
	// a run Down or Draining.
	At core.Micros
	// Kind is the transition.
	Kind ChurnKind
	// Node is the affected back-end.
	Node core.NodeID
}

// Config parameterizes one simulation run.
type Config struct {
	// Nodes is the number of back-end nodes.
	Nodes int
	// Server is the back-end CPU cost model (Apache or Flash).
	Server server.Costs
	// Disk is the per-node disk model.
	Disk server.DiskParams
	// CacheBytes is each back-end's main-memory cache capacity.
	CacheBytes int64
	// Params are the LARD-family policy constants.
	Params policy.Params
	// PolicyOptions are generic policy construction options forwarded to
	// the dispatch registry (validated against the policy's schema). They
	// override the typed fields above per key; policies registered through
	// the open API (p2c, boundedch, third parties) are configured solely
	// through them. Nil for the paper's figure configurations.
	PolicyOptions dispatch.Options
	// Combo selects policy, mechanism and workload flavor.
	Combo Combo
	// ConnsPerNode sets the closed-loop concurrency: ConnsPerNode*Nodes
	// connections are kept in flight (saturation without driving every
	// node past L_overload).
	ConnsPerNode int
	// WarmupFrac is the fraction of connections treated as cache warmup;
	// throughput and hit rates are measured after it.
	WarmupFrac float64
	// FESpeedup scales the front-end CPU relative to the back-ends
	// (divides all front-end costs). The relaying-front-end comparison of
	// Section 6.1 posits a front-end powerful enough not to be the
	// bottleneck; 1 means equal hardware.
	FESpeedup float64
	// Churn is the deterministic membership-event schedule. Empty (the
	// paper's figure runs) leaves every down-node check off the event
	// path, so churn-free results are bit-identical to a build without
	// churn support.
	Churn []ChurnEvent
	// RetryBudget caps re-dispatch attempts per request (and per
	// connection open) when the serving node crashes mid-flight; work
	// exceeding it counts as failed and its connection closes — the
	// simulator's analogue of the prototype's connection-close fallback.
	// Only consulted when Churn is non-empty.
	RetryBudget int
	// SLOTarget, when positive, is the per-request delay objective:
	// Result.Latency.SLOViolations counts post-warmup requests slower
	// than it. Zero (the figure configurations) disables the count; the
	// latency histogram itself always records.
	SLOTarget core.Micros

	// Frontends is the scale-out front-end tier size: connections are
	// admitted round-robin across this many front-ends, each with its own
	// CPU and its own dispatch-state view (FEState). 0 or 1 — the paper's
	// figure configurations — is the single front-end whose event
	// sequence is bit-identical to the pre-tier simulator.
	Frontends int
	// FEState selects the dispatch-state backend for the tier
	// (dstate.ModeLocal / ModeSharded / ModeReplicated). The zero value
	// is local, which requires Frontends <= 1.
	FEState dstate.Mode
	// Staleness is the replicated tier's sync interval in simulated time:
	// every Staleness microseconds the front-ends exchange their mapping
	// deltas and load vectors, so each decides on state at most that
	// stale. 0 never syncs (fully independent replicas — the infinite-
	// staleness endpoint of the freshness sweep). Only valid with
	// FEState == dstate.ModeReplicated.
	Staleness core.Micros
	// RecordNodeDelays enables the per-node queue-delay histograms: the
	// time every CPU and disk acquisition spent waiting in the node's
	// FIFO, recorded per back-end and summarized in Result.NodeDelays.
	// Off by default — the histograms cost ~57 KB per node and a clone
	// at the warm point.
	RecordNodeDelays bool
}

// DefaultCacheBytes is the simulator's back-end cache size: the paper's
// 128 MB nodes leave about 85 MB of effective file cache.
const DefaultCacheBytes = 85 << 20

// DefaultConfig returns the calibrated configuration for n nodes running
// the given combo with the Apache cost model.
func DefaultConfig(n int, combo Combo) Config {
	return Config{
		Nodes:        n,
		Server:       server.ApacheCosts(),
		Disk:         server.DefaultDisk(),
		CacheBytes:   DefaultCacheBytes,
		Params:       policy.DefaultParams(),
		Combo:        combo,
		ConnsPerNode: 32,
		WarmupFrac:   0.2,
		FESpeedup:    1,
	}
}

// dispatchSpec maps the configuration onto the shared dispatch registry:
// the same Spec the prototype front-end builds its engine from, so a
// policy/params combination behaves identically in both drivers.
func (c Config) dispatchSpec() dispatch.Spec {
	return dispatch.Spec{
		Policy:     c.Combo.Policy,
		Nodes:      c.Nodes,
		Options:    c.PolicyOptions,
		CacheBytes: c.CacheBytes,
		Params:     c.Params,
		Mechanism:  c.Combo.Mechanism,
	}
}

// buildPolicy instantiates the combo's policy through the dispatch
// registry.
func (c Config) buildPolicy() (core.Policy, error) {
	return dispatch.Build(c.dispatchSpec())
}

// PolicyName returns the canonical dispatch-registry name of the combo's
// policy, or an error listing the valid names.
func (c Config) PolicyName() (string, error) {
	return dispatch.Canonical(c.Combo.Policy)
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sim: Nodes must be positive, got %d", c.Nodes)
	}
	if c.CacheBytes <= 0 {
		return fmt.Errorf("sim: CacheBytes must be positive, got %d", c.CacheBytes)
	}
	if c.ConnsPerNode <= 0 {
		return fmt.Errorf("sim: ConnsPerNode must be positive, got %d", c.ConnsPerNode)
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return fmt.Errorf("sim: WarmupFrac must be in [0,1), got %g", c.WarmupFrac)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("sim: RetryBudget must be non-negative, got %d", c.RetryBudget)
	}
	if c.SLOTarget < 0 {
		return fmt.Errorf("sim: SLOTarget must be non-negative, got %d", c.SLOTarget)
	}
	if c.Frontends < 0 {
		return fmt.Errorf("sim: Frontends must be non-negative, got %d", c.Frontends)
	}
	switch c.FEState {
	case dstate.ModeLocal:
		if c.Frontends > 1 {
			return fmt.Errorf("sim: local dispatch state is single-front-end; %d front-ends need FEState sharded or replicated", c.Frontends)
		}
	case dstate.ModeSharded, dstate.ModeReplicated:
	default:
		return fmt.Errorf("sim: invalid FEState %d", int(c.FEState))
	}
	if c.Staleness < 0 {
		return fmt.Errorf("sim: Staleness must be non-negative, got %d", c.Staleness)
	}
	if c.Staleness > 0 && c.FEState != dstate.ModeReplicated {
		return fmt.Errorf("sim: Staleness is the replicated sync interval; FEState is %v", c.FEState)
	}
	for i, ev := range c.Churn {
		if ev.At < 0 {
			return fmt.Errorf("sim: churn event %d: time must be non-negative, got %d", i, ev.At)
		}
		if ev.Kind != ChurnCrash && ev.Kind != ChurnLeave && ev.Kind != ChurnJoin {
			return fmt.Errorf("sim: churn event %d: invalid kind %d", i, int(ev.Kind))
		}
		if int(ev.Node) < 0 || int(ev.Node) >= c.Nodes {
			return fmt.Errorf("sim: churn event %d: node %d out of range [0,%d)", i, ev.Node, c.Nodes)
		}
	}
	if _, err := c.buildPolicy(); err != nil {
		return err
	}
	return nil
}
