package sim

import (
	"reflect"
	"sync"
	"testing"

	"phttp/internal/core"
	"phttp/internal/metrics"
	"phttp/internal/server"
	"phttp/internal/trace"
)

// sweepTrace is a smaller workload than testTrace: the golden comparisons
// below run full sweeps several times over.
var (
	sweepTraceOnce sync.Once
	sweepTraceVal  *trace.Trace
)

func sweepTrace() *trace.Trace {
	sweepTraceOnce.Do(func() {
		cfg := trace.SmallSynthConfig()
		cfg.Connections = 3000
		sweepTraceVal = trace.NewSynth(cfg).Generate()
	})
	return sweepTraceVal
}

// TestParallelClusterSweepMatchesSerial is the golden determinism test: the
// parallel sweep must produce byte-identical output — every Result field
// and the rendered series table — to the serial path.
func TestParallelClusterSweepMatchesSerial(t *testing.T) {
	tr := sweepTrace()
	nodes := []int{1, 2, 3}
	serialSeries, serialResults, err := ClusterSweepParallel(core.Apache, nodes, Combos(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	parSeries, parResults, err := ClusterSweepParallel(core.Apache, nodes, Combos(), tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialResults, parResults) {
		for i := range serialResults {
			if !reflect.DeepEqual(serialResults[i], parResults[i]) {
				t.Errorf("result %d differs:\nserial:   %+v\nparallel: %+v", i, serialResults[i], parResults[i])
			}
		}
		t.Fatal("parallel ClusterSweep results differ from serial")
	}
	got := metrics.Table("nodes", parSeries...)
	want := metrics.Table("nodes", serialSeries...)
	if got != want {
		t.Errorf("rendered series differ:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestParallelDelaySweepMatchesSerial pins the Figure 3 sweep the same way.
func TestParallelDelaySweepMatchesSerial(t *testing.T) {
	tr := sweepTrace()
	loads := []int{1, 8, 32}
	sThr, sDelay, err := DelaySweepParallel(core.Apache, loads, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	pThr, pDelay, err := DelaySweepParallel(core.Apache, loads, tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sThr, pThr) || !reflect.DeepEqual(sDelay, pDelay) {
		t.Errorf("parallel DelaySweep differs from serial:\n%v\n%v\nvs\n%v\n%v",
			pThr, pDelay, sThr, sDelay)
	}
}

// TestRunRepeatedOnSharedTraceIsStable replays one shared trace many times
// concurrently (what the sweep workers do) and demands identical results —
// this would catch any hidden mutation of the shared workload.
func TestRunRepeatedOnSharedTraceIsStable(t *testing.T) {
	tr := sweepTrace()
	combo, err := ComboByName("BEforward-extLARD-PHTTP")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(DefaultConfig(3, combo), tr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]Result, 6)
	errs := make([]error, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(DefaultConfig(3, combo), tr)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], ref) {
			t.Errorf("concurrent run %d diverged:\n%+v\nvs\n%+v", i, results[i], ref)
		}
	}
}

// TestSweepPropagatesValidationErrors pins the error path: an invalid grid
// point must surface Config.Validate's message from both the serial and the
// parallel sweep, not a downstream deadlock report.
func TestSweepPropagatesValidationErrors(t *testing.T) {
	tr := sweepTrace()
	bad := []Combo{{Name: "bogus", Policy: "nonsense", Mechanism: core.SingleHandoff, PHTTP: true}}
	for _, workers := range []int{1, 4} {
		if _, _, err := ClusterSweepParallel(core.Apache, []int{1, 2}, bad, tr, workers); err == nil {
			t.Errorf("workers=%d: unknown policy did not error", workers)
		}
		if _, _, err := DelaySweepParallel(core.Apache, []int{0}, tr, workers); err == nil {
			t.Errorf("workers=%d: zero load point did not error", workers)
		}
	}
}

// TestSweepErrorReturnsNoResults pins the failure contract: a grid with
// one failing combo among valid ones must return nil series and nil
// results — never a partially-filled grid — from both the serial and the
// parallel path. (Jobs that complete after the failure flag is raised
// used to leave their slots populated.)
func TestSweepErrorReturnsNoResults(t *testing.T) {
	tr := sweepTrace()
	combos := []Combo{
		{Name: "ok", Policy: "wrr", Mechanism: core.SingleHandoff, PHTTP: true},
		{Name: "bogus", Policy: "nonsense", Mechanism: core.SingleHandoff, PHTTP: true},
	}
	for _, workers := range []int{1, 4} {
		series, results, err := ClusterSweepParallel(core.Apache, []int{1, 2}, combos, tr, workers)
		if err == nil {
			t.Fatalf("workers=%d: failing combo did not error", workers)
		}
		if series != nil || results != nil {
			t.Errorf("workers=%d: error path leaked series=%v results=%v", workers, series, results)
		}
	}
}

// TestRunJobsZeroesResultsOnError drives runJobs directly: jobs that
// complete after another job fails must not leave readable slots behind.
func TestRunJobsZeroesResultsOnError(t *testing.T) {
	tr := sweepTrace()
	good, err := ComboByName("WRR")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		jobs := make([]sweepJob, 0, 6)
		for i := 0; i < 6; i++ {
			cfg := DefaultConfig(1, good)
			if i == 2 {
				cfg.Combo.Policy = "nonsense" // fails validation inside runOn
			}
			jobs = append(jobs, sweepJob{cfg: cfg, workload: tr, slot: i})
		}
		results := make([]Result, len(jobs))
		if err := runJobs(jobs, results, workers); err == nil {
			t.Fatalf("workers=%d: bad job did not error", workers)
		}
		for i, r := range results {
			if !reflect.DeepEqual(r, Result{}) {
				t.Errorf("workers=%d: slot %d left populated after error: %+v", workers, i, r)
			}
		}
	}
}

// TestClusterSweepWorkloadMatchesDirect pins the cache wiring: a sweep
// over a workload loaded from the binary trace cache produces results
// identical to one over the freshly generated trace.
func TestClusterSweepWorkloadMatchesDirect(t *testing.T) {
	tr := sweepTrace()
	_, direct, err := ClusterSweepParallel(core.Apache, []int{1, 2}, Combos(), tr, 0)
	if err != nil {
		t.Fatal(err)
	}

	cfg := trace.SmallSynthConfig()
	cfg.Connections = 3000 // must mirror sweepTrace()
	dir := t.TempDir()
	if _, hit, err := trace.LoadOrGenerate(dir, cfg); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("fresh cache dir reported a hit")
	}
	// Reload so the sweep runs over traces that went through the binary
	// format, not the in-memory originals.
	wl, hit, err := trace.LoadOrGenerate(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second load missed the cache")
	}
	_, cached, err := ClusterSweepWorkload(core.Apache, []int{1, 2}, Combos(), wl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, cached) {
		t.Error("sweep over cached workload diverged from direct trace")
	}
}

// TestRunInternsRawTrace covers the edge where a caller hands Run a trace
// built by hand (no loader, no interned IDs).
func TestRunInternsRawTrace(t *testing.T) {
	raw := &trace.Trace{
		Sizes: map[core.Target]int64{"/a": 1000, "/b": 2000},
		Conns: []core.Connection{
			{Batches: []core.Batch{{{Target: "/a", Size: 1000}}, {{Target: "/b", Size: 2000}}}},
			{Batches: []core.Batch{{{Target: "/a", Size: 1000}}}},
		},
	}
	combo, err := ComboByName("simple-LARD-PHTTP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1, combo)
	cfg.WarmupFrac = 0
	res, err := Run(cfg, raw)
	if err != nil {
		t.Fatal(err)
	}
	// WarmupFrac 0 measures from time zero: all three requests count.
	if res.Requests != 3 || res.Events == 0 {
		t.Errorf("raw-trace run measured nothing: %+v", res)
	}
	if raw.Interner == nil || raw.Interner.Len() != 2 {
		t.Error("Run did not intern the raw trace")
	}
}

// TestSweepEntryWrappers pins the thin public entries against the
// parallel driver they delegate to: ClusterSweep (default workers) and
// RunPrepared (single prepared grid point) must reproduce the same
// results as the explicitly-parameterized paths.
func TestSweepEntryWrappers(t *testing.T) {
	tr := sweepTrace()
	nodes := []int{1, 2}
	combos := Combos()[:2]
	wantSeries, wantResults, err := ClusterSweepParallel(core.Apache, nodes, combos, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotSeries, gotResults, err := ClusterSweep(core.Apache, nodes, combos, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantResults, gotResults) {
		t.Error("ClusterSweep differs from ClusterSweepParallel")
	}
	if metrics.Table("nodes", gotSeries...) != metrics.Table("nodes", wantSeries...) {
		t.Error("ClusterSweep series differ from ClusterSweepParallel")
	}

	cfg := DefaultConfig(1, combos[0])
	cfg.Server = server.CostsFor(core.Apache)
	direct, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	workload := tr
	if !combos[0].PHTTP {
		workload = tr.Flatten10()
	}
	prepared, err := RunPrepared(cfg, workload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, prepared) {
		t.Errorf("RunPrepared differs from Run:\ndirect:   %+v\nprepared: %+v", direct, prepared)
	}
}
