package cache

import (
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

func TestIDLRUBasicInsertLookup(t *testing.T) {
	c := NewIDLRU(100)
	if c.Lookup(idA) {
		t.Error("empty cache reported a hit")
	}
	c.Insert(idA, 40)
	if !c.Lookup(idA) {
		t.Error("inserted target missed")
	}
	if c.Bytes() != 40 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d, want 40/1", c.Bytes(), c.Len())
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestIDLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewIDLRU(100)
	c.Insert(idA, 40)
	c.Insert(idB, 40)
	c.Lookup(idA) // promote idA; idB is now LRU
	c.Insert(idC, 40)
	if !c.Contains(idA) || !c.Contains(idC) || c.Contains(idB) {
		t.Error("wrong survivors after eviction")
	}
}

func TestIDLRUOversizeTargetNotCached(t *testing.T) {
	c := NewIDLRU(100)
	c.Insert(idA, 40)
	c.Insert(idB, 200)
	if c.Contains(idB) {
		t.Error("oversize target cached")
	}
	if !c.Contains(idA) {
		t.Error("oversize insert disturbed existing entries")
	}
}

func TestIDLRUPanicsOnNoTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lookup(NoTarget) did not panic")
		}
	}()
	NewIDLRU(100).Lookup(core.NoTarget)
}

// Property: IDLRU behaves exactly like the string-keyed LRU for any
// lookup/insert/remove mix — same membership, bytes, count, hit/miss
// counters, and most-to-least-recent order. The simulator swaps one for the
// other on this equivalence.
func TestIDLRUMatchesLRU(t *testing.T) {
	const capacity = 1000
	f := func(ops []uint16) bool {
		idc := NewIDLRU(capacity)
		ref := NewLRU(capacity)
		for _, op := range ops {
			id := core.TargetID(op%50) + 1
			size := int64(op%300) + 1
			switch op % 3 {
			case 0:
				idc.Insert(id, size)
				ref.Insert(refTarget(id), size)
			case 1:
				if idc.Lookup(id) != ref.Lookup(refTarget(id)) {
					return false
				}
			case 2:
				if idc.Remove(id) != ref.Remove(refTarget(id)) {
					return false
				}
			}
			if idc.Bytes() != ref.Bytes() || idc.Len() != ref.Len() {
				return false
			}
			if idc.Hits() != ref.Hits() || idc.Misses() != ref.Misses() {
				return false
			}
		}
		refTargets := ref.Targets()
		ids := idc.IDs()
		if len(refTargets) != len(ids) {
			return false
		}
		for i := range refTargets {
			if refTargets[i] != refTarget(ids[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Steady state on a full cache must allocate nothing: the slab, free list
// and pos index absorb the insert/evict churn.
func TestIDLRUSteadyStateZeroAllocs(t *testing.T) {
	c := NewIDLRU(100)
	for id := core.TargetID(1); id <= 50; id++ {
		c.Insert(id, 10) // warm: grows slab and pos, fills to eviction
	}
	next := core.TargetID(1)
	avg := testing.AllocsPerRun(2000, func() {
		if !c.Lookup(next) {
			c.Insert(next, 10)
		}
		next++
		if next > 50 {
			next = 1
		}
	})
	if avg != 0 {
		t.Errorf("steady-state lookup/insert allocates %.2f allocs/op, want 0", avg)
	}
}
