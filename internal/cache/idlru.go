package cache

import "phttp/internal/core"

// IDLRU is the single-threaded LRU the simulator's per-node main-memory
// caches use: same byte-budget semantics as LRU, but keyed by dense interned
// TargetID so the per-event path is a slice index instead of a string-keyed
// map probe, and backed by a slab with an index free list so steady-state
// lookup/insert/evict cycles allocate nothing.
//
// The zero value is not usable; call NewIDLRU.
type IDLRU struct {
	capacity int64
	bytes    int64
	// pos[id] is the slab slot of id plus one; 0 means not cached. It grows
	// to the highest ID seen, which is bounded by the interner's population
	// (and, under an evictable interner, by its cap — see Compact).
	pos   []int32
	slots []idEntry
	free  int32 // head of the slot free list, -1 if empty
	head  int32 // most recently used, -1 if empty
	tail  int32 // least recently used, -1 if empty

	// rc, when set, pins interned targets for as long as they are cached:
	// Acquire on insert, Release on evict. Nil (the simulator's pinned
	// workloads) costs nothing.
	rc core.RefCounter

	hits, misses int64
}

type idEntry struct {
	id         core.TargetID
	size       int64
	prev, next int32
}

const noEntry int32 = -1

// NewIDLRU returns an empty cache holding at most capacity bytes. A target
// larger than the capacity is never cached.
func NewIDLRU(capacity int64) *IDLRU {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	return &IDLRU{capacity: capacity, free: noEntry, head: noEntry, tail: noEntry}
}

// SetRefCounter wires the lifecycle hook called as entries come and go:
// rc.Acquire when a target is cached, rc.Release when it is evicted or
// removed, so an evictable interner never recycles an ID this cache still
// holds. Set it before first use; it is not safe to change under traffic.
func (c *IDLRU) SetRefCounter(rc core.RefCounter) { c.rc = rc }

// Capacity returns the byte budget.
func (c *IDLRU) Capacity() int64 { return c.capacity }

// Bytes returns the bytes currently cached.
func (c *IDLRU) Bytes() int64 { return c.bytes }

// Len returns the number of cached targets.
func (c *IDLRU) Len() int {
	n := 0
	for e := c.head; e != noEntry; e = c.slots[e].next {
		n++
	}
	return n
}

// Hits and Misses return the Lookup counters.
func (c *IDLRU) Hits() int64   { return c.hits }
func (c *IDLRU) Misses() int64 { return c.misses }

// ResetStats zeroes the hit/miss counters without touching contents.
func (c *IDLRU) ResetStats() { c.hits, c.misses = 0, 0 }

// slot returns id's slab slot, or noEntry.
func (c *IDLRU) slot(id core.TargetID) int32 {
	if id <= 0 {
		panic("cache: IDLRU operation on NoTarget; intern the request first")
	}
	if int(id) >= len(c.pos) {
		return noEntry
	}
	return c.pos[id] - 1
}

func (c *IDLRU) setPos(id core.TargetID, s int32) {
	if int(id) >= len(c.pos) {
		grown := make([]int32, int(id)+1+len(c.pos)/2)
		copy(grown, c.pos)
		c.pos = grown
	}
	c.pos[id] = s + 1
}

func (c *IDLRU) unlink(s int32) {
	e := &c.slots[s]
	if e.prev != noEntry {
		c.slots[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next != noEntry {
		c.slots[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = noEntry, noEntry
}

func (c *IDLRU) pushFront(s int32) {
	e := &c.slots[s]
	e.next = c.head
	e.prev = noEntry
	if c.head != noEntry {
		c.slots[c.head].prev = s
	}
	c.head = s
	if c.tail == noEntry {
		c.tail = s
	}
}

// Lookup reports whether target is cached, counting a hit or miss and
// promoting the target to most-recently-used on a hit.
func (c *IDLRU) Lookup(id core.TargetID) bool {
	s := c.slot(id)
	if s == noEntry {
		c.misses++
		return false
	}
	c.hits++
	if c.head != s {
		c.unlink(s)
		c.pushFront(s)
	}
	return true
}

// Contains reports whether target is cached without promoting it or
// touching the counters.
func (c *IDLRU) Contains(id core.TargetID) bool { return c.slot(id) != noEntry }

// Insert caches target with the given size, evicting least-recently-used
// entries as needed. If the target is already present it is promoted and
// resized. Targets larger than the capacity are not cached and nothing is
// evicted for them.
//
//phttp:holds the acquired ref pins the cached target; evict releases it
func (c *IDLRU) Insert(id core.TargetID, size int64) {
	if size < 0 {
		panic("cache: negative size")
	}
	if s := c.slot(id); s != noEntry {
		c.bytes += size - c.slots[s].size
		c.slots[s].size = size
		if c.head != s {
			c.unlink(s)
			c.pushFront(s)
		}
		c.evictOver()
		return
	}
	if size > c.capacity {
		return
	}
	var s int32
	if c.free != noEntry {
		s = c.free
		c.free = c.slots[s].next
	} else {
		c.slots = append(c.slots, idEntry{})
		s = int32(len(c.slots) - 1)
	}
	c.slots[s] = idEntry{id: id, size: size, prev: noEntry, next: noEntry}
	c.setPos(id, s)
	c.pushFront(s)
	c.bytes += size
	if c.rc != nil {
		c.rc.Acquire(id)
	}
	c.evictOver()
}

// evictOver mirrors LRU.evictOver: evict from the tail while over budget,
// but never evict the entry just promoted if it is alone.
func (c *IDLRU) evictOver() {
	for c.bytes > c.capacity && c.tail != noEntry {
		victim := c.tail
		if victim == c.head {
			break
		}
		c.removeSlot(victim)
	}
}

func (c *IDLRU) removeSlot(s int32) {
	e := c.slots[s]
	c.unlink(s)
	c.pos[e.id] = 0
	c.bytes -= e.size
	c.slots[s] = idEntry{next: c.free}
	c.free = s
	if c.rc != nil {
		c.rc.Release(e.id)
	}
}

// Remove evicts target if present, reporting whether it was cached.
func (c *IDLRU) Remove(id core.TargetID) bool {
	s := c.slot(id)
	if s == noEntry {
		return false
	}
	c.removeSlot(s)
	return true
}

// Clear evicts every entry (releasing interner references, keeping the
// slab for reuse) without touching the hit/miss counters. The simulator
// uses it when a node crashes: the restarted back-end comes back with a
// cold main-memory cache.
func (c *IDLRU) Clear() {
	for c.head != noEntry {
		c.removeSlot(c.head)
	}
}

// Compact shrinks the dense position table to the highest ID still cached
// (but never below highWater, the interner's current ID bound, so the next
// insert does not immediately regrow it). Call it from the same maintenance
// hook that compacts the interner — after target churn the table otherwise
// stays sized for the all-time peak ID. Returns the retained position-table
// length.
func (c *IDLRU) Compact(highWater core.TargetID) int {
	maxID := int32(highWater)
	for s := c.head; s != noEntry; s = c.slots[s].next {
		if id := int32(c.slots[s].id); id > maxID {
			maxID = id
		}
	}
	want := int(maxID) + 1
	if want < len(c.pos) && cap(c.pos) > 2*want+64 {
		c.pos = append(make([]int32, 0, want), c.pos[:want]...)
	} else if want < len(c.pos) {
		clear(c.pos[want:])
		c.pos = c.pos[:want]
	}
	return len(c.pos)
}

// IDs returns the cached target IDs from most to least recently used.
// Intended for tests and diagnostics.
func (c *IDLRU) IDs() []core.TargetID {
	var out []core.TargetID
	for s := c.head; s != noEntry; s = c.slots[s].next {
		out = append(out, c.slots[s].id)
	}
	return out
}
