package cache

import "phttp/internal/core"

// Mapping is the front-end dispatcher's model of which back-end nodes
// currently cache each target: the paper's "mappings between targets and
// back-end nodes such that a target is considered to be cached on its
// associated back-end nodes".
//
// The model is one LRU per node, sized like the node's main-memory cache,
// so mappings age out the way the real cache replaces content. A target may
// be mapped to several nodes at once (replication, which extended LARD's
// caching heuristic deliberately permits).
//
// Each per-node model is a ShardedLRU striped by target hash, so the mapping
// is safe for parallel dispatchers without a global lock: concurrent lookups
// and updates of different targets touch different stripes, while eviction
// stays exact global LRU per node (identical to the single-lock model the
// simulator's determinism depends on).
type Mapping struct {
	perNode []*ShardedLRU
}

// NewMapping returns a mapping model for n nodes, each modeled as an LRU of
// cacheBytes capacity striped over DefaultShards locks.
func NewMapping(n int, cacheBytes int64) *Mapping {
	m := &Mapping{perNode: make([]*ShardedLRU, n)}
	for i := range m.perNode {
		m.perNode[i] = NewShardedLRU(cacheBytes, DefaultShards)
	}
	return m
}

// Nodes returns the number of nodes modeled.
func (m *Mapping) Nodes() int { return len(m.perNode) }

// IsMapped reports whether target is believed cached at node n, without
// promoting it.
func (m *Mapping) IsMapped(t core.Target, n core.NodeID) bool {
	return m.perNode[n].Contains(t)
}

// Map records that node n fetched (and now caches) target of the given
// size, promoting it and aging out colder mappings under n's budget.
func (m *Mapping) Map(t core.Target, size int64, n core.NodeID) {
	m.perNode[n].Insert(t, size)
}

// Touch promotes target in n's model if mapped (the front-end saw another
// request for it served there).
func (m *Mapping) Touch(t core.Target, n core.NodeID) {
	m.perNode[n].Touch(t)
}

// Unmap removes the belief that node n caches target.
func (m *Mapping) Unmap(t core.Target, n core.NodeID) {
	m.perNode[n].Remove(t)
}

// NodesFor returns every node believed to cache target, in node order.
func (m *Mapping) NodesFor(t core.Target) []core.NodeID {
	var out []core.NodeID
	for i, lru := range m.perNode {
		if lru.Contains(t) {
			out = append(out, core.NodeID(i))
		}
	}
	return out
}

// MappedBytes returns the bytes of content believed cached at node n.
func (m *Mapping) MappedBytes(n core.NodeID) int64 { return m.perNode[n].Bytes() }

// MappedTargets returns the number of targets believed cached at node n.
func (m *Mapping) MappedTargets(n core.NodeID) int { return m.perNode[n].Len() }
