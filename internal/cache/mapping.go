package cache

import "phttp/internal/core"

// Mapping is the front-end dispatcher's model of which back-end nodes
// currently cache each target: the paper's "mappings between targets and
// back-end nodes such that a target is considered to be cached on its
// associated back-end nodes".
//
// The model is one LRU per node, sized like the node's main-memory cache,
// so mappings age out the way the real cache replaces content. A target may
// be mapped to several nodes at once (replication, which extended LARD's
// caching heuristic deliberately permits).
//
// Targets are identified by interned TargetID throughout — the policies sit
// on the per-event path of both the simulator and the prototype front-end,
// and an ID comparison is the difference between an array probe and a
// string hash per mapping touch. Each per-node model is a ShardedLRU
// striped by ID hash, so the mapping is safe for parallel dispatchers
// without a global lock: concurrent lookups and updates of different
// targets touch different stripes, while eviction stays exact global LRU
// per node (identical to the single-lock model the simulator's determinism
// depends on).
type Mapping struct {
	perNode []*ShardedLRU

	// obs, when set, observes every Map write (the belief "target is now
	// cached at node"). The scale-out front-end tier's replicated state
	// store journals writes through it; nil — one predictable branch on
	// the write path — everywhere else. Synced writes arriving from peers
	// are applied with ApplySynced, which bypasses the observer so a
	// replicated belief is never re-broadcast.
	obs func(id core.TargetID, size int64, n core.NodeID)
}

// NewMapping returns a mapping model for n nodes, each modeled as an LRU of
// cacheBytes capacity striped over DefaultShards locks.
func NewMapping(n int, cacheBytes int64) *Mapping {
	m := &Mapping{perNode: make([]*ShardedLRU, n)}
	for i := range m.perNode {
		m.perNode[i] = NewShardedLRU(cacheBytes, DefaultShards)
	}
	return m
}

// SetRefCounter wires the target-lifecycle hook into every per-node model:
// a target acquires one reference per node believed to cache it and
// releases it when the mapping ages out, so an evictable interner never
// recycles an ID the dispatcher still has beliefs about. Set it before
// traffic (the dispatch engine does, right after building the policy).
func (m *Mapping) SetRefCounter(rc core.RefCounter) {
	for _, lru := range m.perNode {
		lru.SetRefCounter(rc)
	}
}

// Nodes returns the number of nodes modeled.
func (m *Mapping) Nodes() int { return len(m.perNode) }

// IsMapped reports whether target is believed cached at node n, without
// promoting it.
func (m *Mapping) IsMapped(id core.TargetID, n core.NodeID) bool {
	return m.perNode[n].Contains(id)
}

// Map records that node n fetched (and now caches) target of the given
// size, promoting it and aging out colder mappings under n's budget.
func (m *Mapping) Map(id core.TargetID, size int64, n core.NodeID) {
	m.perNode[n].Insert(id, size)
	if m.obs != nil {
		m.obs(id, size, n)
	}
}

// SetWriteObserver installs the Map-write hook (nil uninstalls). Set it
// before traffic, like SetRefCounter; the dispatch-state tier does, right
// after building the policy.
func (m *Mapping) SetWriteObserver(obs func(id core.TargetID, size int64, n core.NodeID)) {
	m.obs = obs
}

// ApplySynced records a mapping belief received from a peer front-end's
// replication delta: the same insert as Map, without notifying the write
// observer (the origin already journaled it; re-journaling here would
// gossip every belief back and forth forever).
func (m *Mapping) ApplySynced(id core.TargetID, size int64, n core.NodeID) {
	m.perNode[n].Insert(id, size)
}

// Touch promotes target in n's model if mapped (the front-end saw another
// request for it served there).
func (m *Mapping) Touch(id core.TargetID, n core.NodeID) {
	m.perNode[n].Touch(id)
}

// Unmap removes the belief that node n caches target.
func (m *Mapping) Unmap(id core.TargetID, n core.NodeID) {
	m.perNode[n].Remove(id)
}

// NodesFor returns every node believed to cache target, in node order. It
// allocates; the per-event paths use AppendNodesFor.
func (m *Mapping) NodesFor(id core.TargetID) []core.NodeID {
	return m.AppendNodesFor(nil, id)
}

// AppendNodesFor appends every node believed to cache target to buf (in
// node order) and returns it. Policies pass a per-connection or
// lock-guarded scratch buffer, truncated by the caller, so the per-request
// path allocates nothing.
func (m *Mapping) AppendNodesFor(buf []core.NodeID, id core.TargetID) []core.NodeID {
	for i, lru := range m.perNode {
		if lru.Contains(id) {
			buf = append(buf, core.NodeID(i))
		}
	}
	return buf
}

// DropNode discards every belief about node n, releasing the interner
// references those beliefs held. This is the cold-start handling of a
// Down node: a crashed back-end restarts with an empty cache, so the
// model must not keep steering its old targets back to it when it
// rejoins. (Warm-up handling — a drained node that kept its cache —
// simply skips this call.)
func (m *Mapping) DropNode(n core.NodeID) {
	m.perNode[n].Clear()
}

// MappedBytes returns the bytes of content believed cached at node n.
func (m *Mapping) MappedBytes(n core.NodeID) int64 { return m.perNode[n].Bytes() }

// MappedTargets returns the number of targets believed cached at node n.
func (m *Mapping) MappedTargets(n core.NodeID) int { return m.perNode[n].Len() }
