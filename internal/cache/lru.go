// Package cache provides the byte-budgeted LRU cache model used for
// back-end main-memory caches (both in the simulator and in the prototype
// doc store) and the front-end's target→node mapping table.
//
// The LRU models FreeBSD's unified buffer cache at the granularity the
// paper's simulator uses: whole targets, evicted least-recently-used first
// under a byte capacity.
package cache

import "phttp/internal/core"

type lruEntry struct {
	target     core.Target
	size       int64
	prev, next *lruEntry
}

// LRU is a least-recently-used cache of targets under a byte budget.
// The zero value is not usable; call NewLRU.
type LRU struct {
	capacity int64
	bytes    int64
	entries  map[core.Target]*lruEntry
	// head is most recent, tail least recent; sentinel-free list.
	head, tail *lruEntry
	// free chains evicted nodes for reuse: a warm cache at steady state
	// (every insert evicts) allocates no entry nodes at all.
	free *lruEntry

	hits, misses int64
}

// NewLRU returns an empty cache holding at most capacity bytes. A target
// larger than the capacity is never cached.
func NewLRU(capacity int64) *LRU {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	return &LRU{capacity: capacity, entries: make(map[core.Target]*lruEntry)}
}

// Capacity returns the byte budget.
func (c *LRU) Capacity() int64 { return c.capacity }

// Bytes returns the bytes currently cached.
func (c *LRU) Bytes() int64 { return c.bytes }

// Len returns the number of cached targets.
func (c *LRU) Len() int { return len(c.entries) }

// Hits and Misses return the Lookup counters.
func (c *LRU) Hits() int64   { return c.hits }
func (c *LRU) Misses() int64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *LRU) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

// ResetStats zeroes the hit/miss counters without touching contents.
func (c *LRU) ResetStats() { c.hits, c.misses = 0, 0 }

func (c *LRU) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU) pushFront(e *lruEntry) {
	e.next = c.head
	e.prev = nil
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Lookup reports whether target is cached, counting a hit or miss and
// promoting the target to most-recently-used on a hit.
func (c *LRU) Lookup(t core.Target) bool {
	e, ok := c.entries[t]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return true
}

// Contains reports whether target is cached without promoting it or
// touching the counters.
func (c *LRU) Contains(t core.Target) bool {
	_, ok := c.entries[t]
	return ok
}

// Insert caches target with the given size, evicting least-recently-used
// entries as needed, and returns the evicted targets (nil if none). If the
// target is already present it is promoted and resized. Targets larger than
// the capacity are not cached and nothing is evicted for them.
func (c *LRU) Insert(t core.Target, size int64) []core.Target {
	if size < 0 {
		panic("cache: negative size")
	}
	if e, ok := c.entries[t]; ok {
		c.bytes += size - e.size
		e.size = size
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return c.evictOver()
	}
	if size > c.capacity {
		return nil
	}
	e := c.getEntry()
	e.target, e.size = t, size
	c.entries[t] = e
	c.pushFront(e)
	c.bytes += size
	return c.evictOver()
}

func (c *LRU) evictOver() []core.Target {
	var evicted []core.Target
	for c.bytes > c.capacity && c.tail != nil {
		victim := c.tail
		// Never evict the entry just promoted if it is alone.
		if victim == c.head && len(c.entries) == 1 {
			break
		}
		c.unlink(victim)
		delete(c.entries, victim.target)
		c.bytes -= victim.size
		evicted = append(evicted, victim.target)
		c.putEntry(victim)
	}
	return evicted
}

// getEntry takes a node from the free list or allocates one.
func (c *LRU) getEntry() *lruEntry {
	if e := c.free; e != nil {
		c.free = e.next
		e.next = nil
		return e
	}
	return &lruEntry{}
}

// putEntry returns an unlinked node to the free list, clearing the target
// string so the cache never pins evicted keys.
func (c *LRU) putEntry(e *lruEntry) {
	*e = lruEntry{next: c.free}
	c.free = e
}

// Remove evicts target if present, reporting whether it was cached.
func (c *LRU) Remove(t core.Target) bool {
	e, ok := c.entries[t]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.entries, t)
	c.bytes -= e.size
	c.putEntry(e)
	return true
}

// Clear empties the cache, keeping the capacity and counters. Entry nodes
// move to the free list for reuse.
func (c *LRU) Clear() {
	for e := c.head; e != nil; {
		next := e.next
		c.putEntry(e)
		e = next
	}
	c.entries = make(map[core.Target]*lruEntry)
	c.head, c.tail = nil, nil
	c.bytes = 0
}

// Targets returns the cached targets from most to least recently used.
// Intended for tests and diagnostics.
func (c *LRU) Targets() []core.Target {
	out := make([]core.Target, 0, len(c.entries))
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.target)
	}
	return out
}
