package cache

import (
	"fmt"
	"testing"

	"phttp/internal/core"
)

// TestIDLRURefcountsPinCachedTargets wires an evictable interner into an
// IDLRU and checks the pin protocol end to end: a cached target is
// unevictable at the interner (its ID can never be recycled into an alias),
// and eviction or removal releases the pin.
func TestIDLRURefcountsPinCachedTargets(t *testing.T) {
	in := core.NewEvictableInterner(8)
	c := NewIDLRU(2 << 10)
	c.SetRefCounter(in)

	a := in.Intern("/a") // parse hold
	c.Insert(a, 1<<10)   // cache hold
	if got := in.Refs(a); got != 2 {
		t.Fatalf("refs(/a) = %d after insert, want 2 (parse + cache)", got)
	}
	// Re-inserting a resident target must not double-acquire.
	c.Insert(a, 1<<10)
	if got := in.Refs(a); got != 2 {
		t.Fatalf("refs(/a) = %d after re-insert, want 2", got)
	}
	in.Release(a) // drop the parse hold; the cache still pins it
	if got := in.Refs(a); got != 1 {
		t.Fatalf("refs(/a) = %d, want cache's 1", got)
	}

	// Capacity pressure evicts /a and must release its pin.
	b := in.Intern("/b")
	c.Insert(b, 2<<10)
	in.Release(b)
	if c.Contains(a) {
		t.Fatal("capacity pressure did not evict /a")
	}
	if got := in.Refs(a); got != 0 {
		t.Errorf("refs(/a) = %d after eviction, want 0", got)
	}
	if got := in.Refs(b); got != 1 {
		t.Errorf("refs(/b) = %d while cached, want 1", got)
	}
	if !c.Remove(b) {
		t.Fatal("Remove(/b) found nothing")
	}
	if got := in.Refs(b); got != 0 {
		t.Errorf("refs(/b) = %d after Remove, want 0", got)
	}
}

// TestIDLRUCompactShrinksPositionTable drives the cache over a wide ID
// range, removes the high IDs, and checks Compact trims the dense position
// table to the interner's post-churn bound without touching resident
// entries.
func TestIDLRUCompactShrinksPositionTable(t *testing.T) {
	c := NewIDLRU(1 << 30)
	for id := core.TargetID(1); id <= 1024; id++ {
		c.Insert(id, 1)
	}
	for id := core.TargetID(9); id <= 1024; id++ {
		c.Remove(id)
	}
	kept := c.Compact(8)
	if kept > 16 {
		t.Errorf("Compact kept a %d-slot position table for 8 resident IDs", kept)
	}
	for id := core.TargetID(1); id <= 8; id++ {
		if !c.Contains(id) {
			t.Fatalf("Compact lost resident ID %d", id)
		}
	}
	// A resident ID above the requested bound must keep the table large
	// enough to address it.
	c.Insert(500, 1)
	if kept := c.Compact(8); kept < 501 {
		t.Errorf("Compact(8) kept %d slots with ID 500 resident", kept)
	}
	if !c.Contains(500) {
		t.Error("Compact lost resident high ID")
	}
}

// TestShardedLRURefcountsUnderChurn checks the same pin protocol on the
// concurrent mapping cache: after heavy insert/evict churn against a small
// budget, the interner's live reference count equals the cache population —
// nothing leaked, nothing double-released.
func TestShardedLRURefcountsUnderChurn(t *testing.T) {
	in := core.NewEvictableInterner(64)
	c := NewShardedLRU(32<<10, 4)
	c.SetRefCounter(in)
	for i := 0; i < 4096; i++ {
		tgt := core.Target(fmt.Sprintf("/t%d", i%300))
		id := in.Intern(tgt)
		c.Insert(id, 1<<10) // 32 resident entries at steady state
		in.Release(id)
		if i%7 == 0 {
			c.Remove(id)
		}
		if i%500 == 499 {
			in.Compact()
		}
	}
	live := in.Len() - in.Limbo()
	if live != c.Len() {
		t.Errorf("%d live interner refs vs %d cached entries (leak or double release)", live, c.Len())
	}
	in.Compact()
	if got := in.Len(); got > 64 {
		t.Errorf("interner table %d exceeds cap 64 under cache churn", got)
	}
}
