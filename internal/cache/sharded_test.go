package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

func TestShardedLRUBasics(t *testing.T) {
	c := NewShardedLRU(100, 4)
	if c.Contains("/a") {
		t.Error("empty cache contains /a")
	}
	c.Insert("/a", 40)
	if !c.Contains("/a") {
		t.Error("inserted target missing")
	}
	if c.Bytes() != 40 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d, want 40/1", c.Bytes(), c.Len())
	}
	c.Insert("/a", 60) // resize in place
	if c.Bytes() != 60 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d after resize, want 60/1", c.Bytes(), c.Len())
	}
	if !c.Remove("/a") || c.Remove("/a") {
		t.Error("Remove semantics wrong")
	}
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Error("residue after Remove")
	}
}

func TestShardedLRUEvictsGlobalLRU(t *testing.T) {
	c := NewShardedLRU(100, 4)
	c.Insert("/a", 40)
	c.Insert("/b", 40)
	c.Touch("/a") // /b is now globally least recent
	c.Insert("/c", 40)
	if c.Contains("/b") {
		t.Error("/b survived, eviction is not globally LRU")
	}
	if !c.Contains("/a") || !c.Contains("/c") {
		t.Error("wrong survivors after eviction")
	}
}

func TestShardedLRUOversizeNotCached(t *testing.T) {
	c := NewShardedLRU(100, 4)
	c.Insert("/a", 40)
	c.Insert("/huge", 200)
	if c.Contains("/huge") {
		t.Error("oversize target cached")
	}
	if !c.Contains("/a") {
		t.Error("oversize insert disturbed existing entries")
	}
}

func TestShardedLRUTargetsOrder(t *testing.T) {
	c := NewShardedLRU(1000, 4)
	c.Insert("/a", 1)
	c.Insert("/b", 1)
	c.Insert("/c", 1)
	c.Touch("/a")
	got := c.Targets()
	want := []core.Target{"/a", "/c", "/b"}
	if len(got) != len(want) {
		t.Fatalf("Targets() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Targets()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: single-threaded, a ShardedLRU behaves exactly like the plain LRU
// for any insert/touch/remove mix — same membership, bytes and count. This
// is the equivalence the simulator's determinism rests on.
func TestShardedLRUMatchesLRU(t *testing.T) {
	const capacity = 1000
	f := func(ops []uint16, shardBits uint8) bool {
		shards := 1 << (shardBits % 6)
		sc := NewShardedLRU(capacity, shards)
		ref := NewLRU(capacity)
		for _, op := range ops {
			target := core.Target(fmt.Sprintf("/t%d", op%50))
			size := int64(op%300) + 1
			switch op % 3 {
			case 0:
				sc.Insert(target, size)
				ref.Insert(target, size)
			case 1:
				sc.Touch(target)
				if ref.Contains(target) {
					ref.Lookup(target)
				}
			case 2:
				sc.Remove(target)
				ref.Remove(target)
			}
			if sc.Bytes() != ref.Bytes() || sc.Len() != ref.Len() {
				return false
			}
		}
		refTargets := ref.Targets()
		scTargets := sc.Targets()
		if len(refTargets) != len(scTargets) {
			return false
		}
		for i := range refTargets {
			if refTargets[i] != scTargets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Concurrent hammer: the byte budget is never exceeded by more than the
// in-flight slack, and after the dust settles the atomic byte/count
// accounting matches the shard contents exactly.
func TestShardedLRUConcurrentInvariants(t *testing.T) {
	const (
		goroutines = 8
		opsPer     = 5000
		capacity   = 1 << 20
	)
	c := NewShardedLRU(capacity, 8)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPer; i++ {
				target := core.Target(fmt.Sprintf("/t%d", rng.Intn(2000)))
				switch rng.Intn(4) {
				case 0, 1:
					c.Insert(target, int64(rng.Intn(4096))+1)
				case 2:
					c.Touch(target)
				case 3:
					if rng.Intn(8) == 0 {
						c.Remove(target)
					} else {
						c.Contains(target)
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()

	if got := c.Bytes(); got > capacity {
		t.Errorf("Bytes() = %d exceeds capacity %d after quiescence", got, capacity)
	}
	var sum int64
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		for tgt, e := range s.entries {
			sum += e.size
			n++
			if e.target != tgt {
				t.Errorf("entry key %q holds target %q", tgt, e.target)
			}
		}
		// The shard list must contain exactly the map entries, in
		// descending stamp order.
		var listN int
		for e := s.head; e != nil; e = e.next {
			listN++
			if e.next != nil && e.next.stamp > e.stamp {
				t.Error("shard list out of stamp order")
			}
		}
		if listN != len(s.entries) {
			t.Errorf("shard list has %d entries, map has %d", listN, len(s.entries))
		}
	}
	if sum != c.Bytes() {
		t.Errorf("entry sizes sum to %d, Bytes() reports %d", sum, c.Bytes())
	}
	if n != c.Len() {
		t.Errorf("%d entries present, Len() reports %d", n, c.Len())
	}
}
