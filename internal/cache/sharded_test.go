package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

// Shorthand IDs for readability: interned IDs are 1-based.
const (
	idA core.TargetID = 1
	idB core.TargetID = 2
	idC core.TargetID = 3
)

func TestShardedLRUBasics(t *testing.T) {
	c := NewShardedLRU(100, 4)
	if c.Contains(idA) {
		t.Error("empty cache contains idA")
	}
	c.Insert(idA, 40)
	if !c.Contains(idA) {
		t.Error("inserted target missing")
	}
	if c.Bytes() != 40 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d, want 40/1", c.Bytes(), c.Len())
	}
	c.Insert(idA, 60) // resize in place
	if c.Bytes() != 60 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d after resize, want 60/1", c.Bytes(), c.Len())
	}
	if !c.Remove(idA) || c.Remove(idA) {
		t.Error("Remove semantics wrong")
	}
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Error("residue after Remove")
	}
}

func TestShardedLRUEvictsGlobalLRU(t *testing.T) {
	c := NewShardedLRU(100, 4)
	c.Insert(idA, 40)
	c.Insert(idB, 40)
	c.Touch(idA) // idB is now globally least recent
	c.Insert(idC, 40)
	if c.Contains(idB) {
		t.Error("idB survived, eviction is not globally LRU")
	}
	if !c.Contains(idA) || !c.Contains(idC) {
		t.Error("wrong survivors after eviction")
	}
}

func TestShardedLRUOversizeNotCached(t *testing.T) {
	c := NewShardedLRU(100, 4)
	c.Insert(idA, 40)
	c.Insert(idB, 200)
	if c.Contains(idB) {
		t.Error("oversize target cached")
	}
	if !c.Contains(idA) {
		t.Error("oversize insert disturbed existing entries")
	}
}

func TestShardedLRUIDsOrder(t *testing.T) {
	c := NewShardedLRU(1000, 4)
	c.Insert(idA, 1)
	c.Insert(idB, 1)
	c.Insert(idC, 1)
	c.Touch(idA)
	got := c.IDs()
	want := []core.TargetID{idA, idC, idB}
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestShardedLRUPanicsOnNoTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(NoTarget) did not panic")
		}
	}()
	NewShardedLRU(100, 4).Insert(core.NoTarget, 1)
}

// refTarget maps a test ID to the string key used by the reference LRU.
func refTarget(id core.TargetID) core.Target {
	return core.Target(fmt.Sprintf("/t%d", id))
}

// Property: single-threaded, a ShardedLRU behaves exactly like the plain
// string-keyed LRU for any insert/touch/remove mix — same membership, bytes
// and count, and the same most-to-least-recent order. This is the
// equivalence the simulator's determinism rests on.
func TestShardedLRUMatchesLRU(t *testing.T) {
	const capacity = 1000
	f := func(ops []uint16, shardBits uint8) bool {
		shards := 1 << (shardBits % 6)
		sc := NewShardedLRU(capacity, shards)
		ref := NewLRU(capacity)
		for _, op := range ops {
			id := core.TargetID(op%50) + 1
			size := int64(op%300) + 1
			switch op % 3 {
			case 0:
				sc.Insert(id, size)
				ref.Insert(refTarget(id), size)
			case 1:
				sc.Touch(id)
				if ref.Contains(refTarget(id)) {
					ref.Lookup(refTarget(id))
				}
			case 2:
				sc.Remove(id)
				ref.Remove(refTarget(id))
			}
			if sc.Bytes() != ref.Bytes() || sc.Len() != ref.Len() {
				return false
			}
		}
		refTargets := ref.Targets()
		scIDs := sc.IDs()
		if len(refTargets) != len(scIDs) {
			return false
		}
		for i := range refTargets {
			if refTargets[i] != refTarget(scIDs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Concurrent hammer: the byte budget is never exceeded by more than the
// in-flight slack, and after the dust settles the atomic byte/count
// accounting matches the shard contents exactly.
func TestShardedLRUConcurrentInvariants(t *testing.T) {
	const (
		goroutines = 8
		opsPer     = 5000
		capacity   = 1 << 20
	)
	c := NewShardedLRU(capacity, 8)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPer; i++ {
				id := core.TargetID(rng.Intn(2000)) + 1
				switch rng.Intn(4) {
				case 0, 1:
					c.Insert(id, int64(rng.Intn(4096))+1)
				case 2:
					c.Touch(id)
				case 3:
					if rng.Intn(8) == 0 {
						c.Remove(id)
					} else {
						c.Contains(id)
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()

	if got := c.Bytes(); got > capacity {
		t.Errorf("Bytes() = %d exceeds capacity %d after quiescence", got, capacity)
	}
	var sum int64
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		for id, e := range s.entries {
			sum += e.size
			n++
			if e.id != id {
				t.Errorf("entry key %d holds id %d", id, e.id)
			}
		}
		// The shard list must contain exactly the map entries, in
		// descending stamp order.
		var listN int
		for e := s.head; e != nil; e = e.next {
			listN++
			if e.next != nil && e.next.stamp > e.stamp {
				t.Error("shard list out of stamp order")
			}
		}
		if listN != len(s.entries) {
			t.Errorf("shard list has %d entries, map has %d", listN, len(s.entries))
		}
	}
	if sum != c.Bytes() {
		t.Errorf("entry sizes sum to %d, Bytes() reports %d", sum, c.Bytes())
	}
	if n != c.Len() {
		t.Errorf("%d entries present, Len() reports %d", n, c.Len())
	}
}
