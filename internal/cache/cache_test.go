package cache

import (
	"fmt"
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

func TestLRUBasicInsertLookup(t *testing.T) {
	c := NewLRU(100)
	if c.Lookup("/a") {
		t.Error("empty cache reported a hit")
	}
	c.Insert("/a", 40)
	if !c.Lookup("/a") {
		t.Error("inserted target missed")
	}
	if c.Bytes() != 40 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d, want 40/1", c.Bytes(), c.Len())
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU(100)
	c.Insert("/a", 40)
	c.Insert("/b", 40)
	c.Lookup("/a") // promote /a; /b is now LRU
	evicted := c.Insert("/c", 40)
	if len(evicted) != 1 || evicted[0] != core.Target("/b") {
		t.Errorf("evicted %v, want [/b]", evicted)
	}
	if !c.Contains("/a") || !c.Contains("/c") || c.Contains("/b") {
		t.Error("wrong survivors after eviction")
	}
}

func TestLRUOversizeTargetNotCached(t *testing.T) {
	c := NewLRU(100)
	c.Insert("/a", 40)
	if ev := c.Insert("/huge", 200); ev != nil {
		t.Errorf("oversize insert evicted %v", ev)
	}
	if c.Contains("/huge") {
		t.Error("oversize target cached")
	}
	if !c.Contains("/a") {
		t.Error("oversize insert disturbed existing entries")
	}
}

func TestLRUResize(t *testing.T) {
	c := NewLRU(100)
	c.Insert("/a", 30)
	c.Insert("/a", 60) // resize in place
	if c.Bytes() != 60 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d after resize, want 60/1", c.Bytes(), c.Len())
	}
}

func TestLRURemoveAndClear(t *testing.T) {
	c := NewLRU(100)
	c.Insert("/a", 10)
	c.Insert("/b", 10)
	if !c.Remove("/a") || c.Remove("/a") {
		t.Error("Remove semantics wrong")
	}
	if c.Bytes() != 10 {
		t.Errorf("Bytes=%d after remove, want 10", c.Bytes())
	}
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Error("Clear left residue")
	}
}

func TestLRUContainsDoesNotPromoteOrCount(t *testing.T) {
	c := NewLRU(100)
	c.Insert("/a", 40)
	c.Insert("/b", 40)
	c.Contains("/a") // must NOT promote
	ev := c.Insert("/c", 40)
	if len(ev) != 1 || ev[0] != core.Target("/a") {
		t.Errorf("evicted %v, want [/a]: Contains promoted", ev)
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Contains touched counters")
	}
}

func TestLRUTargetsOrder(t *testing.T) {
	c := NewLRU(1000)
	c.Insert("/a", 1)
	c.Insert("/b", 1)
	c.Insert("/c", 1)
	c.Lookup("/a")
	got := c.Targets()
	want := []core.Target{"/a", "/c", "/b"}
	if len(got) != 3 {
		t.Fatalf("Targets() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Targets()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLRUHitRate(t *testing.T) {
	c := NewLRU(100)
	c.Insert("/a", 10)
	c.Lookup("/a")
	c.Lookup("/a")
	c.Lookup("/missing")
	if got := c.HitRate(); got != 2.0/3.0 {
		t.Errorf("HitRate() = %v, want 2/3", got)
	}
	c.ResetStats()
	if c.HitRate() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

// Property: the byte budget is never exceeded and Bytes always equals the
// sum of cached entry sizes, under arbitrary insert/lookup/remove mixes.
func TestLRUInvariants(t *testing.T) {
	const capacity = 1000
	f := func(ops []uint16) bool {
		c := NewLRU(capacity)
		shadow := map[core.Target]int64{}
		for _, op := range ops {
			target := core.Target(fmt.Sprintf("/t%d", op%50))
			size := int64(op%300) + 1
			switch op % 3 {
			case 0:
				evicted := c.Insert(target, size)
				if size <= capacity {
					shadow[target] = size
				}
				for _, e := range evicted {
					delete(shadow, e)
				}
			case 1:
				c.Lookup(target)
			case 2:
				if c.Remove(target) {
					delete(shadow, target)
				}
			}
			if c.Bytes() > capacity {
				return false
			}
			var sum int64
			for _, s := range shadow {
				sum += s
			}
			if sum != c.Bytes() || len(shadow) != c.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLRUNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	NewLRU(10).Insert("/a", -1)
}

func TestMappingBasics(t *testing.T) {
	m := NewMapping(3, 100)
	m.Map(idA, 40, 1)
	if !m.IsMapped(idA, 1) || m.IsMapped(idA, 0) {
		t.Error("mapping state wrong after Map")
	}
	m.Map(idA, 40, 2)
	nodes := m.NodesFor(idA)
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 2 {
		t.Errorf("NodesFor = %v, want [be1 be2]", nodes)
	}
	buf := make([]core.NodeID, 0, 4)
	into := m.AppendNodesFor(buf, idA)
	if len(into) != 2 || &into[0] != &buf[:1][0] {
		t.Errorf("AppendNodesFor did not reuse the buffer: %v", into)
	}
	m.Unmap(idA, 1)
	if m.IsMapped(idA, 1) {
		t.Error("Unmap did not remove mapping")
	}
}

func TestMappingAgesOutUnderBudget(t *testing.T) {
	m := NewMapping(1, 100)
	m.Map(idA, 60, 0)
	m.Map(idB, 60, 0) // idA must age out
	if m.IsMapped(idA, 0) {
		t.Error("idA still mapped beyond budget")
	}
	if !m.IsMapped(idB, 0) {
		t.Error("idB not mapped")
	}
}

func TestMappingTouchPromotes(t *testing.T) {
	m := NewMapping(1, 100)
	m.Map(idA, 50, 0)
	m.Map(idB, 50, 0)
	m.Touch(idA, 0)   // idA most recent, idB is LRU
	m.Map(idC, 50, 0) // evicts idB
	if !m.IsMapped(idA, 0) || m.IsMapped(idB, 0) {
		t.Error("Touch did not promote idA over idB")
	}
	if got := m.MappedTargets(0); got != 2 {
		t.Errorf("MappedTargets = %d, want 2", got)
	}
	if got := m.MappedBytes(0); got != 100 {
		t.Errorf("MappedBytes = %d, want 100", got)
	}
}
