package cache

import "testing"

// TestCapacityAccessors pins that every cache flavor reports the budget it
// was constructed with — the sizing knob scenario sweeps read back.
func TestCapacityAccessors(t *testing.T) {
	if got := NewLRU(100).Capacity(); got != 100 {
		t.Errorf("LRU Capacity = %d, want 100", got)
	}
	if got := NewIDLRU(200).Capacity(); got != 200 {
		t.Errorf("IDLRU Capacity = %d, want 200", got)
	}
	if got := NewShardedLRU(400, 4).Capacity(); got != 400 {
		t.Errorf("ShardedLRU Capacity = %d, want 400", got)
	}
}
