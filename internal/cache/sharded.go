package cache

import (
	"sync"
	"sync/atomic"

	"phttp/internal/core"
)

// ShardedLRU is a concurrency-safe LRU of targets under a byte budget,
// striped by interned TargetID so parallel dispatchers rarely contend: each
// target lives in exactly one shard, guarded by that shard's lock, and the
// common operations (Contains, Insert of a resident target, Touch, Remove)
// take only that one lock. Keys are dense interned IDs, so the per-event
// path never hashes a target string — the shard index is one integer
// multiply and the in-shard lookup an int-keyed map probe.
//
// Unlike a per-shard-budget design, eviction is *globally* least recently
// used: every promotion stamps the entry from one shared atomic clock, each
// shard's list stays ordered by stamp, and the eviction path (taken only
// when the shared byte budget is exceeded) locks the shards and removes the
// entry with the globally smallest stamp. Single-threaded callers therefore
// observe exactly the semantics of LRU, which keeps the simulator
// deterministic and bit-identical to the unsharded model.
//
// Evicted entries go on a per-shard free list and are reused by later
// inserts, so a warm cache at its steady state (every new insert evicts)
// allocates nothing per operation.
type ShardedLRU struct {
	capacity int64
	bytes    atomic.Int64
	count    atomic.Int64
	clock    atomic.Uint64
	shards   []lruShard
	mask     uint32

	// rc, when set, pins interned targets while cached: Acquire on insert,
	// Release on evict, called under the owning shard's lock (the interner
	// takes its own lock and never calls back into the cache, so the
	// ordering is acyclic). Nil skips the calls.
	rc core.RefCounter
}

type lruShard struct {
	mu      sync.Mutex
	entries map[core.TargetID]*shardEntry
	// head is the most recently stamped entry, tail the least; stamps are
	// monotonic, so the list is always sorted by stamp.
	head, tail *shardEntry
	free       *shardEntry
}

type shardEntry struct {
	id         core.TargetID
	size       int64
	stamp      uint64
	prev, next *shardEntry
}

// DefaultShards is the shard count used by NewShardedLRU and NewMapping: a
// small power of two that spreads a dispatch engine's worth of goroutines
// without bloating tiny test caches.
const DefaultShards = 16

// NewShardedLRU returns an empty sharded cache holding at most capacity
// bytes across all shards. shards is rounded up to a power of two; values
// below 1 use DefaultShards. A target larger than the capacity is never
// cached.
func NewShardedLRU(capacity int64, shards int) *ShardedLRU {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	if shards < 1 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &ShardedLRU{capacity: capacity, shards: make([]lruShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i].entries = make(map[core.TargetID]*shardEntry)
	}
	return c
}

// idHash mixes a dense TargetID into the shard space (Fibonacci hashing);
// deterministic across processes so sharding never perturbs simulation
// reproducibility.
func idHash(id core.TargetID) uint32 {
	return uint32(id) * 2654435761
}

func (c *ShardedLRU) shardFor(id core.TargetID) *lruShard {
	if id == core.NoTarget {
		panic("cache: ShardedLRU operation on NoTarget; intern the request first")
	}
	return &c.shards[idHash(id)&c.mask]
}

// SetRefCounter wires the lifecycle hook called as entries come and go, so
// an evictable interner never recycles an ID this cache still holds. Set it
// before first use; it is not safe to change under traffic.
func (c *ShardedLRU) SetRefCounter(rc core.RefCounter) { c.rc = rc }

// Capacity returns the byte budget.
func (c *ShardedLRU) Capacity() int64 { return c.capacity }

// Bytes returns the bytes currently cached.
func (c *ShardedLRU) Bytes() int64 { return c.bytes.Load() }

// Len returns the number of cached targets.
func (c *ShardedLRU) Len() int { return int(c.count.Load()) }

func (s *lruShard) unlink(e *shardEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *lruShard) pushFront(e *shardEntry) {
	e.next = s.head
	e.prev = nil
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// getEntry takes an entry from the shard's free list or allocates one.
// Callers hold the shard lock.
func (s *lruShard) getEntry() *shardEntry {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	return &shardEntry{}
}

// putEntry returns an evicted entry to the free list. Callers hold the
// shard lock.
func (s *lruShard) putEntry(e *shardEntry) {
	*e = shardEntry{next: s.free}
	s.free = e
}

// Contains reports whether target is cached, without promoting it.
func (c *ShardedLRU) Contains(id core.TargetID) bool {
	s := c.shardFor(id)
	s.mu.Lock()
	_, ok := s.entries[id]
	s.mu.Unlock()
	return ok
}

// Touch promotes target to most recently used if cached.
func (c *ShardedLRU) Touch(id core.TargetID) {
	s := c.shardFor(id)
	s.mu.Lock()
	if e, ok := s.entries[id]; ok {
		e.stamp = c.clock.Add(1)
		if s.head != e {
			s.unlink(e)
			s.pushFront(e)
		}
	}
	s.mu.Unlock()
}

// Insert caches target with the given size, evicting globally
// least-recently-used entries as needed. If the target is already present it
// is promoted and resized. Targets larger than the capacity are not cached
// and nothing is evicted for them.
//
//phttp:holds the acquired ref pins the cached target; evict releases it
func (c *ShardedLRU) Insert(id core.TargetID, size int64) {
	if size < 0 {
		panic("cache: negative size")
	}
	s := c.shardFor(id)
	s.mu.Lock()
	if e, ok := s.entries[id]; ok {
		c.bytes.Add(size - e.size)
		e.size = size
		e.stamp = c.clock.Add(1)
		if s.head != e {
			s.unlink(e)
			s.pushFront(e)
		}
		s.mu.Unlock()
		c.evictOver()
		return
	}
	if size > c.capacity {
		s.mu.Unlock()
		return
	}
	e := s.getEntry()
	e.id, e.size, e.stamp = id, size, c.clock.Add(1)
	s.entries[id] = e
	s.pushFront(e)
	c.bytes.Add(size)
	c.count.Add(1)
	if c.rc != nil {
		c.rc.Acquire(id)
	}
	s.mu.Unlock()
	c.evictOver()
}

// evictOver removes globally least-recently-stamped entries until the byte
// budget is respected. A full cache is the steady state of an LRU, so on a
// warm mapping every insert of a new target comes through here; the path
// must therefore not serialize the shards. It scans the shard tails one
// lock at a time for the minimum stamp, then re-locks only the victim's
// shard to evict, re-checking the stamp in case a racing promotion moved
// the tail. Single-threaded this picks exactly the global LRU victim;
// under concurrency a lost race retries, and two racing evictors can at
// worst evict one entry more than strictly needed — benign for a mapping
// model, and the byte/count accounting stays exact either way.
func (c *ShardedLRU) evictOver() {
	for c.bytes.Load() > c.capacity && c.count.Load() > 1 {
		var vs *lruShard
		var minStamp uint64
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			if s.tail != nil && (vs == nil || s.tail.stamp < minStamp) {
				vs, minStamp = s, s.tail.stamp
			}
			s.mu.Unlock()
		}
		if vs == nil {
			return
		}
		vs.mu.Lock()
		victim := vs.tail
		if victim != nil && victim.stamp == minStamp &&
			c.bytes.Load() > c.capacity && c.count.Load() > 1 {
			vs.unlink(victim)
			delete(vs.entries, victim.id)
			c.bytes.Add(-victim.size)
			c.count.Add(-1)
			evicted := victim.id
			vs.putEntry(victim)
			if c.rc != nil {
				c.rc.Release(evicted)
			}
		}
		vs.mu.Unlock()
	}
}

// Remove evicts target if present, reporting whether it was cached.
func (c *ShardedLRU) Remove(id core.TargetID) bool {
	s := c.shardFor(id)
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	s.unlink(e)
	delete(s.entries, id)
	c.bytes.Add(-e.size)
	c.count.Add(-1)
	s.putEntry(e)
	if c.rc != nil {
		c.rc.Release(id)
	}
	s.mu.Unlock()
	return true
}

// Clear evicts every entry, releasing interner references and keeping
// the evicted entries on the per-shard free lists for reuse. It is the
// cold-start membership action: when a node is confirmed Down, the
// mapping model for that node is no longer believed and is dropped
// wholesale (DESIGN.md §15).
func (c *ShardedLRU) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.head; e != nil; {
			next := e.next
			delete(s.entries, e.id)
			c.bytes.Add(-e.size)
			c.count.Add(-1)
			id := e.id
			s.putEntry(e)
			if c.rc != nil {
				c.rc.Release(id)
			}
			e = next
		}
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// IDs returns the cached target IDs from most to least recently used.
// Intended for tests and diagnostics; it locks every shard.
func (c *ShardedLRU) IDs() []core.TargetID {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	defer func() {
		for i := range c.shards {
			c.shards[i].mu.Unlock()
		}
	}()
	cursors := make([]*shardEntry, len(c.shards))
	for i := range c.shards {
		cursors[i] = c.shards[i].head
	}
	var out []core.TargetID
	for {
		best := -1
		for i, e := range cursors {
			if e != nil && (best < 0 || e.stamp > cursors[best].stamp) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, cursors[best].id)
		cursors[best] = cursors[best].next
	}
}
