package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"phttp/internal/core"
)

func binTestTrace(t *testing.T) *Trace {
	t.Helper()
	cfg := SmallSynthConfig()
	cfg.Connections = 600
	return NewSynth(cfg).Generate()
}

// TestBinaryRoundTrip is the bit-exactness acceptance test: write → read →
// deep-equal on connections (IDs included), sizes and interner contents.
func TestBinaryRoundTrip(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, tr, 0xdeadbeef)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteBinary reported %d bytes, wrote %d", n, buf.Len())
	}
	got, hash, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hash != 0xdeadbeef {
		t.Errorf("config hash round trip = %x", hash)
	}
	if !reflect.DeepEqual(tr.Conns, got.Conns) {
		t.Error("connections did not round-trip")
	}
	if !reflect.DeepEqual(tr.Sizes, got.Sizes) {
		t.Error("sizes table did not round-trip")
	}
	if tr.Interner.Len() != got.Interner.Len() {
		t.Fatalf("interner table %d targets, want %d", got.Interner.Len(), tr.Interner.Len())
	}
	for id := core.TargetID(1); int(id) <= tr.Interner.Len(); id++ {
		if tr.Interner.Name(id) != got.Interner.Name(id) {
			t.Fatalf("ID %d names %q, want %q", id, got.Interner.Name(id), tr.Interner.Name(id))
		}
	}
}

// TestBinaryWriterToReaderFrom covers the io.WriterTo / io.ReaderFrom
// face of the same format.
func TestBinaryWriterToReaderFrom(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	n, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("ReadFrom consumed %d bytes of %d", n, buf.Len())
	}
	if !reflect.DeepEqual(tr.Conns, got.Conns) || !reflect.DeepEqual(tr.Sizes, got.Sizes) {
		t.Error("WriterTo/ReaderFrom round trip mismatch")
	}
}

// TestBinaryChecksumRejectsCorruption flips single bytes across the file —
// header, target table, connection payload, trailer — and demands every
// corruption is rejected.
func TestBinaryChecksumRejectsCorruption(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr, 42); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for _, pos := range []int{5, 20, 200, len(clean) / 2, len(clean) - 2} {
		corrupt := append([]byte(nil), clean...)
		corrupt[pos] ^= 0x40
		if _, _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("corruption at byte %d of %d was not detected", pos, len(clean))
		}
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for _, n := range []int{0, 3, 15, 16, 40, len(clean) - 3} {
		if _, _, err := ReadBinary(bytes.NewReader(clean[:n])); !errors.Is(err, ErrCorruptTrace) {
			t.Errorf("truncation to %d bytes: err = %v, want ErrCorruptTrace", n, err)
		}
	}
}

func TestBinaryRejectsBadMagicAndVersion(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] = 'X'
	if _, _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptTrace) {
		t.Errorf("bad magic: %v", err)
	}
	future := append([]byte(nil), buf.Bytes()...)
	future[4] = BinFormatVersion + 1
	if _, _, err := ReadBinary(bytes.NewReader(future)); err == nil {
		t.Error("future format version accepted")
	}
}

// TestBinaryHugeCountDoesNotAllocate crafts a header declaring 2^50
// targets; the reader must fail on truncation without trying to allocate
// for the declared count.
func TestBinaryHugeCountDoesNotAllocate(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("PHTB"))
	buf.Write([]byte{1, 0, 0, 0})                         // version
	buf.Write(make([]byte, 8))                            // config hash
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80}) // truncated huge uvarint
	if _, _, err := ReadBinary(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorruptTrace) {
		t.Errorf("huge count: %v", err)
	}
}

// TestBinaryRejectsPerTargetSizeConflict pins the documented invariant:
// one size per target.
func TestBinaryRejectsPerTargetSizeConflict(t *testing.T) {
	tr := &Trace{
		Sizes: map[core.Target]int64{"/a": 10},
		Conns: []core.Connection{
			{Batches: []core.Batch{{{Target: "/a", Size: 10}}}},
			{Batches: []core.Batch{{{Target: "/a", Size: 20}}}},
		},
	}
	if _, err := WriteBinary(io.Discard, tr, 0); err == nil {
		t.Error("conflicting per-target sizes accepted")
	}
}

// TestBinaryPreservesExtraSizes covers catalog entries never requested
// (the extras section) and requested targets missing from Sizes.
func TestBinaryPreservesExtraSizes(t *testing.T) {
	tr := &Trace{
		Sizes: map[core.Target]int64{"/a": 10, "/never-requested": 777, "/zzz": 1},
		Conns: []core.Connection{
			{Batches: []core.Batch{{{Target: "/a", Size: 10}, {Target: "/uncataloged", Size: 5}}}},
		},
	}
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Sizes, got.Sizes) {
		t.Errorf("sizes round trip:\ngot  %v\nwant %v", got.Sizes, tr.Sizes)
	}
	if !reflect.DeepEqual(tr.Conns, got.Conns) {
		t.Errorf("conns round trip:\ngot  %+v\nwant %+v", got.Conns, tr.Conns)
	}
}

// TestBinaryFlattenedRoundTrip checks the second cached form: the
// flattened HTTP/1.0 trace round-trips with IDs intact.
func TestBinaryFlattenedRoundTrip(t *testing.T) {
	flat := binTestTrace(t).Flatten10()
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, flat, 7); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat.Conns, got.Conns) || !reflect.DeepEqual(flat.Sizes, got.Sizes) {
		t.Error("flattened trace did not round-trip")
	}
}
