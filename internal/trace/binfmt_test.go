package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"phttp/internal/core"
)

func binTestTrace(t *testing.T) *Trace {
	t.Helper()
	cfg := SmallSynthConfig()
	cfg.Connections = 600
	return NewSynth(cfg).Generate()
}

// TestBinaryRoundTrip is the bit-exactness acceptance test: write → read →
// deep-equal on connections (IDs included), sizes and interner contents.
func TestBinaryRoundTrip(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, tr, 0xdeadbeef)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteBinary reported %d bytes, wrote %d", n, buf.Len())
	}
	got, hash, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hash != 0xdeadbeef {
		t.Errorf("config hash round trip = %x", hash)
	}
	if !reflect.DeepEqual(tr.Conns, got.Conns) {
		t.Error("connections did not round-trip")
	}
	if !reflect.DeepEqual(tr.Sizes, got.Sizes) {
		t.Error("sizes table did not round-trip")
	}
	if tr.Interner.Len() != got.Interner.Len() {
		t.Fatalf("interner table %d targets, want %d", got.Interner.Len(), tr.Interner.Len())
	}
	for id := core.TargetID(1); int(id) <= tr.Interner.Len(); id++ {
		if tr.Interner.Name(id) != got.Interner.Name(id) {
			t.Fatalf("ID %d names %q, want %q", id, got.Interner.Name(id), tr.Interner.Name(id))
		}
	}
}

// TestBinaryWriterToReaderFrom covers the io.WriterTo / io.ReaderFrom
// face of the same format.
func TestBinaryWriterToReaderFrom(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	n, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("ReadFrom consumed %d bytes of %d", n, buf.Len())
	}
	if !reflect.DeepEqual(tr.Conns, got.Conns) || !reflect.DeepEqual(tr.Sizes, got.Sizes) {
		t.Error("WriterTo/ReaderFrom round trip mismatch")
	}
}

// binReaders enumerates both decode paths — the in-memory copying reader
// and the mmap-backed zero-copy reader — so corruption and failure-mode
// tests run identically against each. On platforms without mmap the
// "mapped" entry exercises the copying fallback through the same API.
func binReaders() []struct {
	name string
	read func(t *testing.T, data []byte) (*Trace, uint64, error)
} {
	return []struct {
		name string
		read func(t *testing.T, data []byte) (*Trace, uint64, error)
	}{
		{"bytes", func(t *testing.T, data []byte) (*Trace, uint64, error) {
			t.Helper()
			return ReadBinaryBytes(data)
		}},
		{"mapped", func(t *testing.T, data []byte) (*Trace, uint64, error) {
			t.Helper()
			path := filepath.Join(t.TempDir(), "corrupt.trace")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return ReadBinaryMapped(path)
		}},
	}
}

// restamp recomputes the CRC trailer after a deliberate payload mutation,
// so tests can exercise semantic validation (duplicate targets, bad
// layouts) that sits behind the checksum.
func restamp(data []byte) []byte {
	crc := crc32.Checksum(data[:len(data)-4], crcTable)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc)
	return data
}

// TestBinaryRejectsCorruption is the shared failure-mode suite: every
// case mutates a clean encoding, and both decode paths (copying and
// mapped) must reject it. Flip cases check the one-pass CRC (including
// "CRC mismatch after map"); truncations check bounds handling; the
// huge-count case must fail without allocating for the declared count;
// the duplicate-target case restamps the checksum so the semantic check
// itself is what fires.
func TestBinaryRejectsCorruption(t *testing.T) {
	tr := binTestTrace(t)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr, 42); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	flip := func(pos int) func(*testing.T, []byte) []byte {
		return func(_ *testing.T, b []byte) []byte { b[pos] ^= 0x40; return b }
	}
	truncate := func(n int) func(*testing.T, []byte) []byte {
		return func(_ *testing.T, b []byte) []byte { return b[:n] }
	}
	cases := []struct {
		name string
		// mutate owns its argument (a fresh copy of clean).
		mutate func(*testing.T, []byte) []byte
		// anyError accepts any error (e.g. version mismatch is not
		// ErrCorruptTrace); otherwise errors.Is(err, ErrCorruptTrace).
		anyError bool
	}{
		{name: "flip-header", mutate: flip(5)},
		{name: "flip-table", mutate: flip(20)},
		{name: "flip-payload", mutate: flip(200)},
		{name: "flip-middle", mutate: flip(len(clean) / 2)},
		{name: "flip-trailer", mutate: flip(len(clean) - 2)},
		{name: "empty-file", mutate: truncate(0)},
		{name: "truncated-magic", mutate: truncate(3)},
		{name: "truncated-header", mutate: truncate(15)},
		{name: "header-only", mutate: truncate(16)},
		{name: "truncated-table", mutate: truncate(40)},
		{name: "truncated-tail", mutate: truncate(len(clean) - 3)},
		{name: "bad-magic", mutate: func(_ *testing.T, b []byte) []byte { b[0] = 'X'; return b }},
		{name: "future-version", mutate: func(_ *testing.T, b []byte) []byte { b[4] = BinFormatVersion + 1; return b }, anyError: true},
		{name: "huge-count", mutate: func(*testing.T, []byte) []byte {
			// A header declaring ~2^42 batches with no payload behind it:
			// the reader must fail on truncation without allocating.
			return []byte("PHTB\x01\x00\x00\x00" + "\x00\x00\x00\x00\x00\x00\x00\x00" +
				"\x80\x80\x80\x80\x80\x80")
		}},
		{name: "duplicate-target", mutate: func(t *testing.T, b []byte) []byte {
			// Walk the target table for two equal-length names, overwrite
			// the second with the first, and restamp the checksum — only
			// the duplicate check itself can reject the result.
			d := binDecoder{rest: b[16:]}
			for i := 0; i < 3; i++ { // totals ×2, layout
				if _, err := d.uvarint(); err != nil {
					t.Fatal(err)
				}
			}
			nTargets, err := d.uvarint()
			if err != nil {
				t.Fatal(err)
			}
			var prev []byte
			for i := uint64(0); i < nTargets; i++ {
				name, err := d.bytes()
				if err != nil {
					t.Fatal(err)
				}
				if prev != nil && len(prev) == len(name) && !bytes.Equal(prev, name) {
					copy(name, prev)
					return restamp(b)
				}
				prev = name
				if _, err := d.uvarint(); err != nil { // size
					t.Fatal(err)
				}
				if _, err := d.uvarint(); err != nil { // flags
					t.Fatal(err)
				}
			}
			t.Skip("no equal-length adjacent table entries to duplicate")
			return nil
		}},
	}
	for _, rd := range binReaders() {
		for _, tc := range cases {
			t.Run(rd.name+"/"+tc.name, func(t *testing.T) {
				data := tc.mutate(t, append([]byte(nil), clean...))
				_, _, err := rd.read(t, data)
				if tc.anyError {
					if err == nil {
						t.Error("corruption accepted")
					}
				} else if !errors.Is(err, ErrCorruptTrace) {
					t.Errorf("err = %v, want ErrCorruptTrace", err)
				}
			})
		}
	}
}

// TestBinaryRejectsPerTargetSizeConflict pins the documented invariant:
// one size per target.
func TestBinaryRejectsPerTargetSizeConflict(t *testing.T) {
	tr := &Trace{
		Sizes: map[core.Target]int64{"/a": 10},
		Conns: []core.Connection{
			{Batches: []core.Batch{{{Target: "/a", Size: 10}}}},
			{Batches: []core.Batch{{{Target: "/a", Size: 20}}}},
		},
	}
	if _, err := WriteBinary(io.Discard, tr, 0); err == nil {
		t.Error("conflicting per-target sizes accepted")
	}
}

// TestBinaryPreservesExtraSizes covers catalog entries never requested
// (the extras section) and requested targets missing from Sizes.
func TestBinaryPreservesExtraSizes(t *testing.T) {
	tr := &Trace{
		Sizes: map[core.Target]int64{"/a": 10, "/never-requested": 777, "/zzz": 1},
		Conns: []core.Connection{
			{Batches: []core.Batch{{{Target: "/a", Size: 10}, {Target: "/uncataloged", Size: 5}}}},
		},
	}
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Sizes, got.Sizes) {
		t.Errorf("sizes round trip:\ngot  %v\nwant %v", got.Sizes, tr.Sizes)
	}
	if !reflect.DeepEqual(tr.Conns, got.Conns) {
		t.Errorf("conns round trip:\ngot  %+v\nwant %+v", got.Conns, tr.Conns)
	}
}

// TestBinaryFlattenedRoundTrip checks the second cached form: the
// flattened HTTP/1.0 trace round-trips with IDs intact.
func TestBinaryFlattenedRoundTrip(t *testing.T) {
	flat := binTestTrace(t).Flatten10()
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, flat, 7); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat.Conns, got.Conns) || !reflect.DeepEqual(flat.Sizes, got.Sizes) {
		t.Error("flattened trace did not round-trip")
	}
}
