package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/maphash"
	"io"

	"phttp/internal/core"
)

// Binary trace format (see DESIGN.md §12). Traces are written as a
// versioned, checksummed, varint-packed stream so full workloads can be
// cached on disk and loaded in a fraction of the time regeneration takes:
//
//	header   magic "PHTB" | u32 format version | u64 config hash
//	totals   uvarint total batches, uvarint total requests — lets the
//	         reader carve every batch and request from two exact-size
//	         slabs instead of allocating millions of tiny slices
//	layout   uvarint: layoutGeneral, or layoutSingle when every connection
//	         is exactly one single-request batch (the Flatten10 form, which
//	         then encodes one varint per connection instead of three)
//	targets  uvarint T, then T × { string, uvarint size, uvarint flags }
//	         in interned-ID order (entry i is TargetID i+1)
//	extras   uvarint E, then E × { string, uvarint size } — targets present
//	         in the Sizes catalog but never requested, sorted by name
//	conns    uvarint C, then per connection uvarint B batches, per batch
//	         uvarint R requests, per request uvarint target slot (ID-1);
//	         under layoutSingle just one target slot per connection
//	trailer  u32 CRC-32C over header + payload
//
// Strings are uvarint length + bytes. The format stores one size per
// target (the invariant Trace.Sizes already encodes); WriteBinary rejects
// traces violating it rather than guessing. Reading re-interns the target
// table in slot order, so loaded request IDs are exactly the IDs EnsureIDs
// would have assigned — a loaded trace is deep-equal to the one written.

// BinFormatVersion is the on-disk trace format version. Bump it whenever
// the layout or the generator's deterministic draw scheme changes so stale
// cache files are regenerated, never misread.
const BinFormatVersion = 1

var binMagic = [4]byte{'P', 'H', 'T', 'B'}

// ErrCorruptTrace reports a binary trace that failed structural validation
// or its checksum.
var ErrCorruptTrace = errors.New("trace: corrupt binary trace")

// flag bits of a target-table entry.
const flagInSizes = 1 // the target appears in Trace.Sizes

// Connection-section layouts.
const (
	layoutGeneral = 0 // nested batch/request structure
	layoutSingle  = 1 // every connection is one single-request batch
)

// maxBinString bounds a single target string on read; anything larger is
// corruption, not a URL.
const maxBinString = 1 << 20

// crcTable is Castagnoli, hardware-accelerated on current CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// countWriter tees everything through the checksum and counts bytes.
type countWriter struct {
	w   io.Writer
	h   hash.Hash32
	n   int64
	err error
}

func (cw *countWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.h.Write(p[:n])
	cw.n += int64(n)
	cw.err = err
	return n, err
}

// WriteBinary writes t in the binary trace format, stamping configHash
// into the header (use ConfigHash for synthetic workloads, 0 when the
// trace has no generating config). The trace is interned first when it
// was not already (EnsureIDs). It returns the bytes written.
func WriteBinary(w io.Writer, t *Trace, configHash uint64) (int64, error) {
	t.EnsureIDs()
	catalog := t.Catalog()
	nTargets := int(t.Interner.HighWater())

	// One size per target, from the requests (validated uniform) and
	// cross-checked against the Sizes catalog; batch and request totals
	// for the header while we are walking everything anyway.
	sizes := make([]int64, nTargets)
	seen := make([]bool, nTargets)
	var totalBatches, totalRequests uint64
	allSingle := true
	for _, c := range t.Conns {
		totalBatches += uint64(len(c.Batches))
		if len(c.Batches) != 1 || len(c.Batches[0]) != 1 {
			allSingle = false
		}
		for _, b := range c.Batches {
			totalRequests += uint64(len(b))
			for _, r := range b {
				slot := int(r.ID) - 1
				if slot < 0 || slot >= nTargets {
					return 0, fmt.Errorf("trace: request %q has un-interned or foreign ID %d", r.Target, r.ID)
				}
				if seen[slot] && sizes[slot] != r.Size {
					return 0, fmt.Errorf("trace: target %q has sizes %d and %d; the binary format stores one size per target",
						r.Target, sizes[slot], r.Size)
				}
				sizes[slot] = r.Size
				seen[slot] = true
			}
		}
	}

	cw := &countWriter{w: w, h: crc32.New(crcTable)}
	bw := bufio.NewWriterSize(cw, 1<<16)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		bw.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		bw.WriteString(s)
	}

	bw.Write(binMagic[:])
	binary.LittleEndian.PutUint32(scratch[:4], BinFormatVersion)
	bw.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], configHash)
	bw.Write(scratch[:8])
	putUvarint(totalBatches)
	putUvarint(totalRequests)
	layout := uint64(layoutGeneral)
	if allSingle {
		layout = layoutSingle
	}
	putUvarint(layout)

	putUvarint(uint64(nTargets))
	for slot := 0; slot < nTargets; slot++ {
		name := t.Interner.Name(core.TargetID(slot + 1))
		cataloged, inSizes := catalog[name]
		if inSizes && seen[slot] && cataloged != sizes[slot] {
			return 0, fmt.Errorf("trace: target %q requested with size %d but cataloged at %d", name, sizes[slot], cataloged)
		}
		if !seen[slot] {
			sizes[slot] = cataloged
		}
		putString(string(name))
		putUvarint(uint64(sizes[slot]))
		var flags uint64
		if inSizes {
			flags |= flagInSizes
		}
		putUvarint(flags)
	}

	extras := make([]core.Target, 0)
	for name := range catalog {
		if _, ok := t.Interner.Lookup(name); !ok {
			extras = append(extras, name)
		}
	}
	sortTargets(extras)
	putUvarint(uint64(len(extras)))
	for _, name := range extras {
		putString(string(name))
		putUvarint(uint64(catalog[name]))
	}

	putUvarint(uint64(len(t.Conns)))
	if allSingle {
		for _, c := range t.Conns {
			putUvarint(uint64(c.Batches[0][0].ID - 1))
		}
	} else {
		for _, c := range t.Conns {
			putUvarint(uint64(len(c.Batches)))
			for _, b := range c.Batches {
				putUvarint(uint64(len(b)))
				for _, r := range b {
					putUvarint(uint64(r.ID - 1))
				}
			}
		}
	}

	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	binary.LittleEndian.PutUint32(scratch[:4], cw.h.Sum32())
	// The trailer is not part of its own checksum; write it past the tee.
	n, err := cw.w.Write(scratch[:4])
	return cw.n + int64(n), err
}

// ReadBinary reads one binary trace, returning the trace and the config
// hash recorded in its header. Structural problems, truncation and
// checksum mismatches all return errors wrapping ErrCorruptTrace; a
// successfully read trace is deep-equal to the one written, with targets
// interned in the original ID order.
//
// The whole stream is buffered in memory first: the checksum is one bulk
// CRC pass and decoding works on a byte slice with no per-varint reader
// calls — the cache-hit path has to beat regenerating the workload, and a
// streaming decoder spent more time in interface dispatch than the
// generator spends drawing samples. A trace's in-memory form is larger
// than its file, so the transient buffer never dominates. Callers that
// already hold the bytes (os.ReadFile) should use ReadBinaryBytes; callers
// loading a cache file should use ReadBinaryMapped, which skips the copy
// entirely on platforms with mmap.
func ReadBinary(r io.Reader) (*Trace, uint64, error) {
	data, err := io.ReadAll(bufio.NewReaderSize(r, 1<<16))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorruptTrace, err)
	}
	return ReadBinaryBytes(data)
}

// ReadBinaryBytes is ReadBinary over an in-memory encoding.
func ReadBinaryBytes(data []byte) (*Trace, uint64, error) {
	return readBinary(data, nil, false)
}

// ReadBinaryMapped reads one binary trace file through a read-only memory
// mapping: the checksum is verified once over the mapped bytes, then the
// decoder builds the trace in place — target strings alias the mapped file
// instead of being copied, so a cache hit costs a fixed handful of
// allocations regardless of table size. The returned trace pins the
// mapping (and traces sharing its interner, like a donor-loaded flattening,
// inherit the pin); the mapped strings are valid for as long as the trace
// is reachable, and a finalizer unmaps afterwards. Callers that extract
// names to outlive the trace must copy them. On platforms without mmap
// this degrades to the copying loader.
func ReadBinaryMapped(path string) (*Trace, uint64, error) {
	m, data, err := mapFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorruptTrace, err)
	}
	t, configHash, err := readBinary(data, nil, mmapSupported)
	if err != nil {
		m.unmap()
		return nil, 0, err
	}
	t.mapping = m
	if t.cat != nil {
		// The deferred catalog's columns alias the mapping too; pin it
		// there as well so materialization is safe even if the collector
		// proves the trace itself dead mid-call.
		t.cat.mapping = m
	}
	return t, configHash, nil
}

// readBinaryShared reads a trace whose target table must byte-for-byte
// equal donor's; the result adopts donor's Interner and Sizes map instead
// of rebuilding its own — exactly the sharing Flatten10 produces, and the
// fast path for loading the flattened half of a cached workload pair. A
// table mismatch is reported as corruption.
func readBinaryShared(data []byte, donor *Trace) (*Trace, uint64, error) {
	return readBinary(data, donor, false)
}

// binDecoder walks a binary trace payload. Methods on a local struct
// replace the closure-based helpers an earlier version used: the mapped
// cache-hit path budgets every allocation, and three escaping closures per
// load were a measurable slice of its fixed cost.
type binDecoder struct {
	rest []byte
}

func (d *binDecoder) uvarint() (uint64, error) {
	// One-byte fast path: popular targets get low slots (first
	// appearance under a Zipf-skewed draw), so most varints in the
	// hot connection section are single bytes.
	if len(d.rest) > 0 && d.rest[0] < 0x80 {
		v := uint64(d.rest[0])
		d.rest = d.rest[1:]
		return v, nil
	}
	v, n := binary.Uvarint(d.rest)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCorruptTrace)
	}
	d.rest = d.rest[n:]
	return v, nil
}

func (d *binDecoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxBinString || n > uint64(len(d.rest)) {
		return nil, fmt.Errorf("%w: %d-byte string with %d bytes left", ErrCorruptTrace, n, len(d.rest))
	}
	b := d.rest[:n]
	d.rest = d.rest[n:]
	return b, nil
}

// capHint bounds a preallocation by what the declared count could
// plausibly be: every encoded item takes at least one byte, so a count
// beyond the remaining payload is corruption, not a reason to allocate.
func (d *binDecoder) capHint(n uint64) int {
	if n > uint64(len(d.rest)) {
		return len(d.rest)
	}
	return int(n)
}

// readBinary decodes one encoded trace. A non-nil donor lends its target
// table (see readBinaryShared). alias makes target strings alias data
// itself instead of copying through a blob — only valid when data outlives
// the trace, i.e. for a pinned mapping (ReadBinaryMapped).
func readBinary(data []byte, donor *Trace, alias bool) (*Trace, uint64, error) {
	if len(data) < 20 {
		return nil, 0, fmt.Errorf("%w: %d-byte file", ErrCorruptTrace, len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorruptTrace, want, got)
	}
	if [4]byte(payload[:4]) != binMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorruptTrace, payload[:4])
	}
	if v := binary.LittleEndian.Uint32(payload[4:8]); v != BinFormatVersion {
		return nil, 0, fmt.Errorf("trace: binary format version %d, this build reads %d", v, BinFormatVersion)
	}
	configHash := binary.LittleEndian.Uint64(payload[8:16])
	d := binDecoder{rest: payload[16:]}

	totalBatches, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	totalRequests, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	// Every batch and request takes at least one payload byte, so totals
	// beyond the payload are corruption, not allocation requests.
	if totalBatches > uint64(len(d.rest)) || totalRequests > uint64(len(d.rest)) {
		return nil, 0, fmt.Errorf("%w: totals (%d batches, %d requests) exceed payload", ErrCorruptTrace, totalBatches, totalRequests)
	}
	layout, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if layout != layoutGeneral && layout != layoutSingle {
		return nil, 0, fmt.Errorf("%w: unknown connection layout %d", ErrCorruptTrace, layout)
	}

	nTargets, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	var (
		t     *Trace
		names []core.Target
		sizes []int64
	)
	if donor != nil {
		// Adopt the donor's table: verify each encoded entry against the
		// donor's (byte compare, no per-entry string allocation or map
		// insert) and share its Interner and Sizes outright. The donor's
		// mapping pin (if any) carries over — the shared table may alias
		// the donor's mapped file, and this trace keeps it reachable. A
		// lazily-loaded donor lends its name table and columnar sizes too,
		// so this decode allocates nothing per table entry at all.
		names = donor.Interner.BulkNames()
		if names == nil {
			names = donor.Interner.AppendNames(nil)
		}
		if uint64(len(names)) != nTargets {
			return nil, 0, fmt.Errorf("%w: table has %d targets, donor %d", ErrCorruptTrace, nTargets, len(names))
		}
		t = &Trace{Sizes: donor.Sizes, Interner: donor.Interner, cat: donor.cat, mapping: donor.mapping}
		var donorSizes []int64
		if donor.cat != nil && len(donor.cat.sizes) >= len(names) {
			donorSizes = donor.cat.sizes
		} else {
			sizes = make([]int64, 0, len(names))
		}
		for i := uint64(0); i < nTargets; i++ {
			name, err := d.bytes()
			if err != nil {
				return nil, 0, err
			}
			if string(name) != string(names[i]) {
				return nil, 0, fmt.Errorf("%w: table entry %d is %q, donor has %q", ErrCorruptTrace, i, name, names[i])
			}
			size, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if _, err := d.uvarint(); err != nil { // flags, encoded in donor's Sizes
				return nil, 0, err
			}
			if donorSizes != nil {
				if donorSizes[i] != int64(size) {
					return nil, 0, fmt.Errorf("%w: table entry %d sized %d, donor has %d", ErrCorruptTrace, i, size, donorSizes[i])
				}
			} else {
				sizes = append(sizes, int64(size))
			}
		}
		if donorSizes != nil {
			sizes = donorSizes
		}
	} else if alias {
		// Zero-copy table: every name aliases the mapped file's bytes (the
		// caller pins the mapping in the returned trace), and the Sizes
		// catalog stays columnar — names/sizes/flags slices — until some
		// caller asks for the map form (Trace.Catalog). Replay never does,
		// so a cache hit skips building a catalog map at all: on the
		// reference workload that map alone is ~70 allocated objects.
		names = make([]core.Target, 0, d.capHint(nTargets))
		sizes = make([]int64, 0, d.capHint(nTargets))
		flags := make([]uint8, 0, d.capHint(nTargets))
		for i := uint64(0); i < nTargets; i++ {
			nameB, err := d.bytes()
			if err != nil {
				return nil, 0, err
			}
			size, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			fl, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			names = append(names, core.Target(aliasString(nameB)))
			sizes = append(sizes, int64(size))
			flags = append(flags, uint8(fl))
		}
		if hasDuplicate(names) {
			return nil, 0, fmt.Errorf("%w: duplicate target in table", ErrCorruptTrace)
		}
		t = &Trace{cat: &lazyCatalog{names: names, sizes: sizes, flags: flags}}
		// Rebuild the interner as a deferred bulk fill: the ID→name side is
		// ready immediately (that is all replay touches) and the name→ID map
		// materializes only if someone interns or looks up by name.
		t.Interner = core.NewInternerFromNames(names)
	} else {
		t = &Trace{Sizes: make(map[core.Target]int64, d.capHint(nTargets))}
		sizes = make([]int64, 0, d.capHint(nTargets))
		// All names share one backing blob (sliced after the scan) — one
		// allocation instead of one per target.
		var (
			nameData  []byte
			offs      = make([]int, 1, d.capHint(nTargets)+1)
			entryFlag = make([]uint8, 0, d.capHint(nTargets))
		)
		for i := uint64(0); i < nTargets; i++ {
			name, err := d.bytes()
			if err != nil {
				return nil, 0, err
			}
			nameData = append(nameData, name...)
			offs = append(offs, len(nameData))
			size, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			flags, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			sizes = append(sizes, int64(size))
			entryFlag = append(entryFlag, uint8(flags))
		}
		blob := string(nameData)
		names = make([]core.Target, nTargets)
		for i := range names {
			names[i] = core.Target(blob[offs[i]:offs[i+1]])
			if entryFlag[i]&flagInSizes != 0 {
				t.Sizes[names[i]] = sizes[i]
			}
		}
		if hasDuplicate(names) {
			return nil, 0, fmt.Errorf("%w: duplicate target in table", ErrCorruptTrace)
		}
		// Rebuild the interner in one presized bulk fill — per-target
		// Intern calls pay a lock round trip and incremental map growth,
		// which dominated the load profile.
		t.Interner = core.NewInternerFromNames(names)
	}

	nExtras, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	for i := uint64(0); i < nExtras; i++ {
		name, err := d.bytes()
		if err != nil {
			return nil, 0, err
		}
		size, err := d.uvarint()
		if err != nil {
			return nil, 0, err
		}
		switch {
		case donor != nil:
			// The extras are already in the donor's shared catalog.
		case t.cat != nil:
			// Alias mode keeps the catalog columnar; extras are copied (not
			// aliased) — generated workloads have none, so pinning map keys
			// to the mapping would buy nothing.
			t.cat.names = append(t.cat.names, core.Target(string(name)))
			t.cat.sizes = append(t.cat.sizes, int64(size))
			t.cat.flags = append(t.cat.flags, flagInSizes)
		default:
			t.Sizes[core.Target(name)] = int64(size)
		}
	}

	nConns, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	// Every batch and request slice is carved from one exact-size slab
	// each (sized by the header totals): a loaded trace holds millions of
	// tiny slices, and allocating each one separately made the cache-hit
	// path as slow as regenerating the workload.
	reqSlab := make([]core.Request, totalRequests)
	batchSlab := make([]core.Batch, totalBatches)
	if layout == layoutSingle {
		// Flatten10 form: one varint per connection, decoded with an
		// indexed loop — this file is read on every cached sweep start.
		if totalBatches != nConns || totalRequests != nConns {
			return nil, 0, fmt.Errorf("%w: single-request layout totals mismatch", ErrCorruptTrace)
		}
		conns := make([]core.Connection, nConns)
		p, pos := d.rest, 0
		for i := range conns {
			var slot uint64
			if pos < len(p) && p[pos] < 0x80 {
				slot = uint64(p[pos])
				pos++
			} else {
				v, n := binary.Uvarint(p[pos:])
				if n <= 0 {
					return nil, 0, fmt.Errorf("%w: truncated varint", ErrCorruptTrace)
				}
				slot, pos = v, pos+n
			}
			if slot >= uint64(len(names)) {
				return nil, 0, fmt.Errorf("%w: request references target slot %d of %d", ErrCorruptTrace, slot, len(names))
			}
			reqSlab[i] = core.Request{
				Target: names[slot],
				ID:     core.TargetID(slot + 1),
				Size:   sizes[slot],
			}
			batchSlab[i] = core.Batch(reqSlab[i : i+1 : i+1])
			conns[i] = core.Connection{Batches: batchSlab[i : i+1 : i+1]}
		}
		t.Conns = conns
		if rest := p[pos:]; len(rest) != 0 {
			return nil, 0, fmt.Errorf("%w: %d bytes of trailing garbage", ErrCorruptTrace, len(rest))
		}
		return t, configHash, nil
	}
	t.Conns = make([]core.Connection, 0, d.capHint(nConns))
	for i := uint64(0); i < nConns; i++ {
		nBatches, err := d.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if nBatches > uint64(len(batchSlab)) {
			return nil, 0, fmt.Errorf("%w: more batches than the header total", ErrCorruptTrace)
		}
		var batches []core.Batch
		if nBatches > 0 {
			batches = batchSlab[:nBatches:nBatches]
			batchSlab = batchSlab[nBatches:]
		}
		for j := range batches {
			nReqs, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if nReqs > uint64(len(reqSlab)) {
				return nil, 0, fmt.Errorf("%w: more requests than the header total", ErrCorruptTrace)
			}
			var batch core.Batch
			if nReqs > 0 {
				batch = reqSlab[:nReqs:nReqs]
				reqSlab = reqSlab[nReqs:]
			}
			for k := range batch {
				slot, err := d.uvarint()
				if err != nil {
					return nil, 0, err
				}
				if slot >= uint64(len(names)) {
					return nil, 0, fmt.Errorf("%w: request references target slot %d of %d", ErrCorruptTrace, slot, len(names))
				}
				batch[k] = core.Request{
					Target: names[slot],
					ID:     core.TargetID(slot + 1),
					Size:   sizes[slot],
				}
			}
			batches[j] = batch
		}
		t.Conns = append(t.Conns, core.Connection{Batches: batches})
	}
	if len(reqSlab) != 0 || len(batchSlab) != 0 {
		return nil, 0, fmt.Errorf("%w: header totals exceed encoded batches/requests", ErrCorruptTrace)
	}

	if len(d.rest) != 0 {
		return nil, 0, fmt.Errorf("%w: %d bytes of trailing garbage", ErrCorruptTrace, len(d.rest))
	}
	return t, configHash, nil
}

// WriteTo writes the trace in the binary format with a zero config hash,
// implementing io.WriterTo. Workloads generated from a SynthConfig should
// go through the cache layer (or WriteBinary with ConfigHash) so loads can
// verify provenance.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	return WriteBinary(w, t, 0)
}

// ReadFrom replaces the trace's contents with one read from r in the
// binary format, implementing io.ReaderFrom. The recorded config hash is
// discarded; use ReadBinary to inspect it.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	cr := &countReader{r: r}
	read, _, err := ReadBinary(cr)
	if err != nil {
		return cr.n, err
	}
	*t = *read
	return cr.n, nil
}

type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// dupSeed keys the hasDuplicate probe; one process-wide seed is fine
// because the table is an ephemeral local.
var dupSeed = maphash.MakeSeed()

// hasDuplicate reports whether names repeats a target, via one
// open-addressed probe table instead of a map: the mapped cache-hit path
// budgets allocations, and a map over the reference table costs ~70
// allocated objects where this costs exactly one.
func hasDuplicate(names []core.Target) bool {
	if len(names) < 2 {
		return false
	}
	size := 1
	for size < 2*len(names) {
		size <<= 1
	}
	idx := make([]int, size)
	mask := uint64(size - 1)
	for i, n := range names {
		h := maphash.String(dupSeed, string(n))
		for p := h & mask; ; p = (p + 1) & mask {
			j := idx[p]
			if j == 0 {
				idx[p] = i + 1
				break
			}
			if names[j-1] == n {
				return true
			}
		}
	}
	return false
}

// sortTargets sorts targets lexicographically (insertion sort is fine: the
// extras section is empty for generated workloads).
func sortTargets(ts []core.Target) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
