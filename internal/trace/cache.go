package trace

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// The trace cache persists generated workloads (DESIGN.md §12): figure
// regeneration and benchmark sweeps ask for the same (config, BlockSize)
// workload over and over, and loading the binary format is several times
// faster than re-drawing it — even with the parallel generator. Both views
// the drivers need are cached: the structured P-HTTP trace and its
// Flatten10 HTTP/1.0 form.

// Workload pairs the P-HTTP trace with its HTTP/1.0 flattening so sweep
// drivers and load generators take whichever form a grid point needs
// without re-flattening per sweep.
type Workload struct {
	// PHTTP is the structured persistent-connection trace.
	PHTTP *Trace
	// Flat is the HTTP/1.0 form (one request per connection); nil until
	// first needed when the workload was built outside the cache.
	Flat *Trace
}

// NewWorkload wraps a trace as a workload with the flattening derived
// lazily.
func NewWorkload(tr *Trace) *Workload { return &Workload{PHTTP: tr} }

// Flatten returns the HTTP/1.0 form, deriving and memoizing it on first
// use. Not safe for concurrent first calls; prepare the workload before
// fanning out workers (the sweep drivers do).
func (w *Workload) Flatten() *Trace {
	if w.Flat == nil {
		w.Flat = w.PHTTP.Flatten10()
	}
	return w.Flat
}

// ConfigHash fingerprints everything the deterministic draw depends on:
// every SynthConfig field (with defaults resolved, so a zero BlockSize and
// an explicit DefaultBlockSize hash identically), plus the binary format
// version. Cache entries whose recorded hash differs are regenerated.
func ConfigHash(cfg SynthConfig) uint64 {
	cfg.GenVersion = cfg.genVersion()
	cfg.BlockSize = cfg.blockSize()
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4 // NewSynth's default
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "bin%d|%+v", BinFormatVersion, cfg)
	return h.Sum64()
}

// CachePaths returns the cache file paths for cfg under dir: the P-HTTP
// trace and the flattened HTTP/1.0 trace.
func CachePaths(dir string, cfg SynthConfig) (phttp, flat string) {
	h := ConfigHash(cfg)
	return filepath.Join(dir, fmt.Sprintf("synth-%016x.phttp.trace", h)),
		filepath.Join(dir, fmt.Sprintf("synth-%016x.http10.trace", h))
}

// LoadOrGenerate returns the workload for cfg, loading both cached forms
// from dir when present and valid (checksum and config hash verified), and
// otherwise generating the workload — blocks in parallel — and writing the
// cache for next time. The second return reports a cache hit. Invalid or
// corrupt cache files are regenerated, not errors; only generation or
// write failures surface.
func LoadOrGenerate(dir string, cfg SynthConfig) (*Workload, bool, error) {
	h := ConfigHash(cfg)
	pPath, fPath := CachePaths(dir, cfg)
	if p, err := loadCached(pPath, h, nil); err == nil {
		// The flattened form shares the P-HTTP trace's interner and sizes
		// table on disk as in memory (Flatten10 semantics), so it loads
		// against the already-built table instead of rebuilding one.
		if f, err := loadCached(fPath, h, p); err == nil {
			return &Workload{PHTTP: p, Flat: f}, true, nil
		}
	}

	tr := NewSynth(cfg).Generate()
	flat := tr.Flatten10()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("trace: cache dir: %w", err)
	}
	if err := writeCached(pPath, tr, h); err != nil {
		return nil, false, err
	}
	if err := writeCached(fPath, flat, h); err != nil {
		return nil, false, err
	}
	return &Workload{PHTTP: tr, Flat: flat}, false, nil
}

// loadCached reads one cached trace, demanding the recorded config hash.
// A non-nil donor lends its target table (see readBinaryShared).
func loadCached(path string, want uint64, donor *Trace) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, got, err := readBinaryShared(data, donor)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("trace: cache file %s has config hash %016x, want %016x", path, got, want)
	}
	return t, nil
}

// writeCached writes one trace atomically (temp file + rename), so a
// crashed or concurrent writer never leaves a torn cache entry — readers
// see the old file, the new file, or a checksum-failing temp they ignore.
func writeCached(path string, t *Trace, configHash uint64) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("trace: cache write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := WriteBinary(tmp, t, configHash); err != nil {
		tmp.Close()
		return fmt.Errorf("trace: cache write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trace: cache write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("trace: cache write: %w", err)
	}
	return nil
}
