package trace

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync/atomic"
)

// The trace cache persists generated workloads (DESIGN.md §12): figure
// regeneration and benchmark sweeps ask for the same (config, BlockSize)
// workload over and over, and loading the binary format is several times
// faster than re-drawing it — even with the parallel generator. Both views
// the drivers need are cached: the structured P-HTTP trace and its
// Flatten10 HTTP/1.0 form.

// Workload pairs the P-HTTP trace with its HTTP/1.0 flattening so sweep
// drivers and load generators take whichever form a grid point needs
// without re-flattening per sweep.
type Workload struct {
	// PHTTP is the structured persistent-connection trace.
	PHTTP *Trace
	// Flat is the HTTP/1.0 form (one request per connection); nil until
	// first needed when the workload was built outside the cache.
	Flat *Trace
}

// NewWorkload wraps a trace as a workload with the flattening derived
// lazily.
func NewWorkload(tr *Trace) *Workload { return &Workload{PHTTP: tr} }

// Flatten returns the HTTP/1.0 form, deriving and memoizing it on first
// use. Not safe for concurrent first calls; prepare the workload before
// fanning out workers (the sweep drivers do).
func (w *Workload) Flatten() *Trace {
	if w.Flat == nil {
		w.Flat = w.PHTTP.Flatten10()
	}
	return w.Flat
}

// ConfigHash fingerprints everything the deterministic draw depends on:
// every SynthConfig field (with defaults resolved, so a zero BlockSize and
// an explicit DefaultBlockSize hash identically), plus the binary format
// version. Cache entries whose recorded hash differs are regenerated.
func ConfigHash(cfg SynthConfig) uint64 {
	cfg.GenVersion = cfg.genVersion()
	cfg.BlockSize = cfg.blockSize()
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4 // NewSynth's default
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "bin%d|%+v", BinFormatVersion, cfg)
	return h.Sum64()
}

// CachePaths returns the cache file paths for cfg under dir: the P-HTTP
// trace and the flattened HTTP/1.0 trace.
func CachePaths(dir string, cfg SynthConfig) (phttp, flat string) {
	return cachePaths(dir, ConfigHash(cfg))
}

// pathMemo remembers the last cache-entry paths built: sweeps and
// benchmark loops load the same workload config over and over, and the
// hit path budgets allocations.
var pathMemo atomic.Pointer[pathMemoEntry]

type pathMemoEntry struct {
	dir         string
	h           uint64
	phttp, flat string
}

// cachePaths builds the pair from an already-computed hash, so the hit
// path hashes the config once (hex16 instead of Sprintf for the same
// reason: the %x verbs cost a boxing allocation each).
func cachePaths(dir string, h uint64) (phttp, flat string) {
	if e := pathMemo.Load(); e != nil && e.h == h && e.dir == dir {
		return e.phttp, e.flat
	}
	hex := hex16(h)
	phttp = filepath.Join(dir, "synth-"+hex+".phttp.trace")
	flat = filepath.Join(dir, "synth-"+hex+".http10.trace")
	pathMemo.Store(&pathMemoEntry{dir: dir, h: h, phttp: phttp, flat: flat})
	return phttp, flat
}

// hex16 formats h as 16 lowercase hex digits, matching fmt's %016x.
func hex16(h uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// LoadOptions tunes how LoadOrGenerateWith loads cached workloads.
type LoadOptions struct {
	// NoMmap forces the copying loader even where mmap is available —
	// the benchmark rig loads both ways to report what zero-copy saves.
	NoMmap bool
}

// LoadOrGenerate returns the workload for cfg, loading both cached forms
// from dir when present and valid (checksum and config hash verified), and
// otherwise generating the workload — blocks in parallel — and writing the
// cache for next time. The second return reports a cache hit. Invalid or
// corrupt cache files are regenerated, not errors; only generation or
// write failures surface.
//
// Cache hits are memory-mapped where the platform allows (see
// ReadBinaryMapped): the returned traces alias the mapped files and pin
// the mappings for their lifetime. Concurrent misses for the same config —
// parallel benchmark jobs, a sweep racing a figure script — serialize on
// an advisory lock next to the cache entry, so the workload is generated
// once and the losers load it as a hit.
func LoadOrGenerate(dir string, cfg SynthConfig) (*Workload, bool, error) {
	return LoadOrGenerateWith(dir, cfg, LoadOptions{})
}

// LoadOrGenerateWith is LoadOrGenerate with explicit load options.
func LoadOrGenerateWith(dir string, cfg SynthConfig, opts LoadOptions) (*Workload, bool, error) {
	h := ConfigHash(cfg)
	pPath, fPath := cachePaths(dir, h)
	if wl, ok := loadPair(pPath, fPath, h, opts); ok {
		return wl, true, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("trace: cache dir: %w", err)
	}
	// Serialize generators for this entry. A lock failure degrades to the
	// pre-lock behavior — concurrent generation stays correct through
	// writeCached's atomic rename, just duplicated — so it is not an error.
	if unlock, err := lockFile(lockPath(dir, h)); err == nil {
		defer unlock()
		// Whoever held the lock may have generated the entry while we
		// waited; loading their files is still a cache hit.
		if wl, ok := loadPair(pPath, fPath, h, opts); ok {
			return wl, true, nil
		}
	}

	tr := NewSynth(cfg).Generate()
	flat := tr.Flatten10()
	if err := writeCached(pPath, tr, h); err != nil {
		return nil, false, err
	}
	if err := writeCached(fPath, flat, h); err != nil {
		return nil, false, err
	}
	return &Workload{PHTTP: tr, Flat: flat}, false, nil
}

// lockPath is the advisory generation lock for a cache entry. The file
// stays behind (empty) — removing it would race new lockers.
func lockPath(dir string, h uint64) string {
	return filepath.Join(dir, "synth-"+hex16(h)+".lock")
}

// loadPair loads both cached forms, the flattened one against the P-HTTP
// trace's table (see LoadOrGenerate). Any failure is a miss.
func loadPair(pPath, fPath string, h uint64, opts LoadOptions) (*Workload, bool) {
	p, err := loadCached(pPath, h, nil, opts)
	if err != nil {
		return nil, false
	}
	// The flattened form shares the P-HTTP trace's interner and sizes
	// table on disk as in memory (Flatten10 semantics), so it loads
	// against the already-built table instead of rebuilding one.
	f, err := loadCached(fPath, h, p, opts)
	if err != nil {
		return nil, false
	}
	return &Workload{PHTTP: p, Flat: f}, true
}

// loadCached reads one cached trace, demanding the recorded config hash.
// A non-nil donor lends its target table (see readBinaryShared).
func loadCached(path string, want uint64, donor *Trace, opts LoadOptions) (*Trace, error) {
	var (
		t   *Trace
		got uint64
	)
	switch {
	case opts.NoMmap || !mmapSupported:
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		t, got, err = readBinaryShared(data, donor)
		if err != nil {
			return nil, err
		}
	case donor != nil:
		// The donor decode only verifies this file's table against the
		// donor's and takes every retained string from the donor, so the
		// mapping can be dropped as soon as the decode returns.
		m, data, err := mapFile(path)
		if err != nil {
			return nil, err
		}
		t, got, err = readBinaryShared(data, donor)
		m.unmap()
		if err != nil {
			return nil, err
		}
	default:
		var err error
		t, got, err = ReadBinaryMapped(path)
		if err != nil {
			return nil, err
		}
	}
	if got != want {
		return nil, fmt.Errorf("trace: cache file %s has config hash %016x, want %016x", path, got, want)
	}
	return t, nil
}

// writeCached writes one trace atomically (temp file + rename), so a
// crashed or concurrent writer never leaves a torn cache entry — readers
// see the old file, the new file, or a checksum-failing temp they ignore.
func writeCached(path string, t *Trace, configHash uint64) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("trace: cache write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := WriteBinary(tmp, t, configHash); err != nil {
		tmp.Close()
		return fmt.Errorf("trace: cache write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trace: cache write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("trace: cache write: %w", err)
	}
	return nil
}
