package trace

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"phttp/internal/core"
)

// --- CLF parse/format ---

func TestCLFRoundTrip(t *testing.T) {
	e := Entry{
		Client: "client0001.example.edu",
		Time:   90061*core.Second + 120,
		Target: "/docs/page00042.html",
		Size:   34567,
		Status: 200,
	}
	line := FormatCLF(e)
	got, err := ParseCLF(line)
	if err != nil {
		t.Fatalf("ParseCLF(%q): %v", line, err)
	}
	// CLF carries second-resolution timestamps.
	e.Time -= e.Time % core.Second
	if got != e {
		t.Errorf("round trip = %+v, want %+v", got, e)
	}
}

func TestCLFParseDashSize(t *testing.T) {
	e, err := ParseCLF(`h - - [01/Oct/1998:00:00:01 +0000] "GET /x HTTP/1.0" 304 -`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != 0 || e.Status != 304 {
		t.Errorf("got %+v", e)
	}
}

func TestCLFParseErrors(t *testing.T) {
	bad := []string{
		"",
		"host",
		"host - - no timestamp",
		`h - - [01/Oct/1998:00:00:01 +0000] "GET" 200 5`,
		`h - - [01/Oct/1998:00:00:01 +0000] "GET /x HTTP/1.0" abc 5`,
		`h - - [01/Oct/1998:00:00:01 +0000] "GET /x HTTP/1.0" 200 xyz`,
		`h - - [bad time] "GET /x HTTP/1.0" 200 5`,
		`h - - [01/Oct/1998:00:00:01 +0000] "GET /x HTTP/1.0`,
	}
	for _, line := range bad {
		if _, err := ParseCLF(line); err == nil {
			t.Errorf("ParseCLF(%q) accepted malformed input", line)
		}
	}
}

func TestReadCLFSkipsJunk(t *testing.T) {
	log := `h1 - - [01/Oct/1998:00:00:01 +0000] "GET /a HTTP/1.0" 200 100
garbage line that is not CLF

h2 - - [01/Oct/1998:00:00:02 +0000] "GET /b HTTP/1.0" 200 200
`
	entries, malformed, err := ReadCLF(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || malformed != 1 {
		t.Errorf("got %d entries, %d malformed; want 2, 1", len(entries), malformed)
	}
}

func TestWriteReadCLF(t *testing.T) {
	entries := []Entry{
		{Client: "a", Time: 1 * core.Second, Target: "/x", Size: 1, Status: 200},
		{Client: "b", Time: 2 * core.Second, Target: "/y", Size: 2, Status: 200},
	}
	var buf bytes.Buffer
	if err := WriteCLF(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, malformed, err := ReadCLF(&buf)
	if err != nil || malformed != 0 {
		t.Fatalf("ReadCLF: %v (%d malformed)", err, malformed)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("round trip:\ngot  %+v\nwant %+v", got, entries)
	}
}

// --- reconstruction heuristics ---

func entry(client string, at core.Micros, target string) Entry {
	return Entry{Client: client, Time: at, Target: core.Target(target), Size: 100, Status: 200}
}

func TestReconstructSplitsConnectionsAtIdleTimeout(t *testing.T) {
	entries := []Entry{
		entry("c", 0, "/a"),
		entry("c", 5*core.Second, "/b"),  // same connection (< 15s)
		entry("c", 25*core.Second, "/c"), // new connection (>= 15s gap)
	}
	tr := Reconstruct(entries, DefaultIdleTimeout, DefaultBatchWindow)
	if len(tr.Conns) != 2 {
		t.Fatalf("got %d connections, want 2", len(tr.Conns))
	}
	if tr.Conns[0].Requests() != 2 || tr.Conns[1].Requests() != 1 {
		t.Errorf("request split %d/%d, want 2/1",
			tr.Conns[0].Requests(), tr.Conns[1].Requests())
	}
}

func TestReconstructBatching(t *testing.T) {
	// First request alone; then two requests 100ms apart (one batch);
	// then, after 2s, another request (new batch).
	entries := []Entry{
		entry("c", 0, "/page"),
		entry("c", 2*core.Second, "/o1"),
		entry("c", 2*core.Second+100*core.Millisecond, "/o2"),
		entry("c", 5*core.Second, "/o3"),
	}
	tr := Reconstruct(entries, DefaultIdleTimeout, DefaultBatchWindow)
	if len(tr.Conns) != 1 {
		t.Fatalf("got %d connections, want 1", len(tr.Conns))
	}
	b := tr.Conns[0].Batches
	if len(b) != 3 {
		t.Fatalf("got %d batches, want 3 (first alone, pipelined pair, straggler)", len(b))
	}
	if len(b[0]) != 1 || b[0][0].Target != "/page" {
		t.Errorf("batch 0 = %v", b[0])
	}
	if len(b[1]) != 2 {
		t.Errorf("batch 1 has %d requests, want 2", len(b[1]))
	}
	if len(b[2]) != 1 || b[2][0].Target != "/o3" {
		t.Errorf("batch 2 = %v", b[2])
	}
}

func TestReconstructDropsErrors(t *testing.T) {
	entries := []Entry{
		entry("c", 0, "/a"),
		{Client: "c", Time: core.Second, Target: "/404", Size: 0, Status: 404},
	}
	tr := Reconstruct(entries, DefaultIdleTimeout, DefaultBatchWindow)
	if tr.Requests() != 1 {
		t.Errorf("got %d requests, want 1 (non-2xx dropped)", tr.Requests())
	}
}

func TestReconstructInterleavedClients(t *testing.T) {
	entries := []Entry{
		entry("a", 0, "/a1"),
		entry("b", 100*core.Millisecond, "/b1"),
		entry("a", 200*core.Millisecond, "/a2"),
		entry("b", 300*core.Millisecond, "/b2"),
	}
	tr := Reconstruct(entries, DefaultIdleTimeout, DefaultBatchWindow)
	if len(tr.Conns) != 2 {
		t.Fatalf("got %d connections, want 2 (one per client)", len(tr.Conns))
	}
	for _, c := range tr.Conns {
		if c.Requests() != 2 {
			t.Errorf("connection has %d requests, want 2", c.Requests())
		}
	}
}

func TestReconstructUnsortedInput(t *testing.T) {
	entries := []Entry{
		entry("c", 2*core.Second, "/b"),
		entry("c", 0, "/a"),
	}
	tr := Reconstruct(entries, DefaultIdleTimeout, DefaultBatchWindow)
	if len(tr.Conns) != 1 {
		t.Fatalf("got %d connections", len(tr.Conns))
	}
	if tr.Conns[0].Batches[0][0].Target != "/a" {
		t.Error("reconstruction did not sort by time")
	}
}

// --- synthetic generator ---

func TestSynthDeterminism(t *testing.T) {
	cfg := SmallSynthConfig()
	t1 := NewSynth(cfg).Generate()
	t2 := NewSynth(cfg).Generate()
	if !reflect.DeepEqual(t1.Conns, t2.Conns) {
		t.Error("same seed produced different traces")
	}
	cfg.Seed = 99
	t3 := NewSynth(cfg).Generate()
	if reflect.DeepEqual(t1.Conns, t3.Conns) {
		t.Error("different seeds produced identical traces")
	}
}

// TestSynthParallelDeterminism is the generation golden: for a fixed
// (config, BlockSize), the trace must be identical whatever the worker
// count — block streams, not scheduling, carry the randomness.
func TestSynthParallelDeterminism(t *testing.T) {
	cfg := SmallSynthConfig()
	cfg.Connections = 3000
	cfg.BlockSize = 256
	ref := NewSynth(cfg).GenerateParallel(1)
	for _, workers := range []int{2, 3, 8, 0} {
		got := NewSynth(cfg).GenerateParallel(workers)
		if !reflect.DeepEqual(ref.Conns, got.Conns) {
			t.Fatalf("workers=%d produced a different trace than serial", workers)
		}
		if !reflect.DeepEqual(ref.Sizes, got.Sizes) {
			t.Fatalf("workers=%d produced a different sizes table", workers)
		}
		if ref.Interner.Len() != got.Interner.Len() {
			t.Fatalf("workers=%d interned %d targets, serial %d",
				workers, got.Interner.Len(), ref.Interner.Len())
		}
	}
}

// TestSynthBlockSizePinsDraw documents that BlockSize is part of the
// deterministic format: changing it changes the draw (each block is an
// independent stream), which is why the cache key hashes it.
func TestSynthBlockSizePinsDraw(t *testing.T) {
	cfg := SmallSynthConfig()
	cfg.Connections = 2000
	cfg.BlockSize = 256
	a := NewSynth(cfg).Generate()
	cfg.BlockSize = 512
	b := NewSynth(cfg).Generate()
	if reflect.DeepEqual(a.Conns, b.Conns) {
		t.Error("different block sizes produced identical traces; BlockSize is not pinning the draw")
	}
}

func TestSynthUnsupportedGenVersionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSynth accepted an unsupported GenVersion")
		}
	}()
	cfg := SmallSynthConfig()
	cfg.GenVersion = 1
	NewSynth(cfg)
}

// TestGenerateBothMatchesGenerate pins the stream split: connection draws
// come from the block streams and timing from the reserved timing stream,
// so the structured trace is the same with or without entry generation.
func TestGenerateBothMatchesGenerate(t *testing.T) {
	cfg := SmallSynthConfig()
	cfg.Connections = 800
	_, both := NewSynth(cfg).GenerateBoth()
	direct := NewSynth(cfg).Generate()
	if !reflect.DeepEqual(both.Conns, direct.Conns) {
		t.Error("GenerateBoth's trace differs from Generate's")
	}
}

// TestSynthEmbeddedObjectsTrackMean guards the bounded-retry fix: the
// popularity-skewed draw collides constantly on the hot head, and the old
// single-fallback break under-filled pages, dragging the mean embedded
// count well below ObjectsPerPage.
func TestSynthEmbeddedObjectsTrackMean(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Connections = 0 // catalog only
	s := NewSynth(cfg)
	total := 0
	for _, objs := range s.embedded {
		total += len(objs)
	}
	mean := float64(total) / float64(len(s.embedded))
	if rel := mean/cfg.ObjectsPerPage - 1; rel < -0.05 || rel > 0.05 {
		t.Errorf("mean embedded objects/page = %.2f, want %.1f ±5%%", mean, cfg.ObjectsPerPage)
	}
}

func TestSynthTraceShape(t *testing.T) {
	tr := NewSynth(SmallSynthConfig()).Generate()
	st := ComputeStats(tr)
	if st.Connections == 0 || st.Requests == 0 {
		t.Fatal("empty trace")
	}
	if st.MeanRespBytes >= 13<<10 {
		t.Errorf("mean response %.0f B, paper requires < 13 KB", st.MeanRespBytes)
	}
	if st.MeanReqPerConn < 2 {
		t.Errorf("mean requests/connection %.1f, persistent connections should carry several", st.MeanReqPerConn)
	}
	if st.MeanBatchSize < 1 {
		t.Errorf("mean batch size %.2f", st.MeanBatchSize)
	}
	for target, size := range tr.Sizes {
		if size <= 0 {
			t.Fatalf("target %q has size %d", target, size)
		}
	}
}

func TestSynthSizesMatchTrace(t *testing.T) {
	s := NewSynth(SmallSynthConfig())
	catalog := s.Sizes()
	tr := s.Generate()
	for target, size := range tr.Sizes {
		if catalog[target] != size {
			t.Fatalf("catalog says %q is %d bytes, trace says %d",
				target, catalog[target], size)
		}
	}
}

// The round-trip property at the heart of the workload path: generating
// CLF entries and reconstructing them with the paper's heuristics yields
// the same connection/batch structure the generator intended.
func TestSynthEntriesReconstructRoundTrip(t *testing.T) {
	cfg := SmallSynthConfig()
	cfg.Connections = 500
	entries, direct := NewSynth(cfg).GenerateBoth()
	rec := Reconstruct(entries, DefaultIdleTimeout, DefaultBatchWindow)

	if rec.Requests() != direct.Requests() {
		t.Fatalf("reconstructed %d requests, generated %d", rec.Requests(), direct.Requests())
	}
	if len(rec.Conns) != len(direct.Conns) {
		t.Fatalf("reconstructed %d connections, generated %d", len(rec.Conns), len(direct.Conns))
	}
	// Connection order differs (per-client clocks), so compare multisets
	// of connection shapes.
	shape := func(tr *Trace) []string {
		out := make([]string, 0, len(tr.Conns))
		for _, c := range tr.Conns {
			var b strings.Builder
			for _, batch := range c.Batches {
				for _, r := range batch {
					b.WriteString(string(r.Target))
					b.WriteByte(',')
				}
				b.WriteByte('|')
			}
			out = append(out, b.String())
		}
		sort.Strings(out)
		return out
	}
	got, want := shape(rec), shape(direct)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("connection shape mismatch at %d:\ngot  %s\nwant %s", i, got[i], want[i])
		}
	}
}

// --- stats ---

func TestFlatten10(t *testing.T) {
	tr := NewSynth(SmallSynthConfig()).Generate()
	flat := tr.Flatten10()
	if flat.Requests() != tr.Requests() {
		t.Errorf("flatten changed request count: %d vs %d", flat.Requests(), tr.Requests())
	}
	if len(flat.Conns) != tr.Requests() {
		t.Errorf("flatten: %d connections, want one per request (%d)", len(flat.Conns), tr.Requests())
	}
	for _, c := range flat.Conns {
		if len(c.Batches) != 1 || len(c.Batches[0]) != 1 {
			t.Fatal("flattened connection not single-request")
		}
	}
}

func TestComputeStatsCoverageMonotonic(t *testing.T) {
	tr := NewSynth(SmallSynthConfig()).Generate()
	st := ComputeStats(tr, 0.5, 0.9, 0.99, 1.0)
	for i := 1; i < len(st.Coverage); i++ {
		if st.Coverage[i] < st.Coverage[i-1] {
			t.Errorf("coverage not monotone: %v", st.Coverage)
		}
	}
	last := st.Coverage[len(st.Coverage)-1]
	if last > st.WorkingSet {
		t.Errorf("coverage (%d) exceeds working set (%d)", last, st.WorkingSet)
	}
	if last <= 0 {
		t.Error("full coverage is zero")
	}
}

func TestComputeStatsSkewed(t *testing.T) {
	// 9 requests for /hot (10 B), 1 for /cold (1000 B): covering 90% of
	// requests needs only the hot target's bytes.
	conns := make([]core.Connection, 0, 10)
	for i := 0; i < 9; i++ {
		conns = append(conns, core.Connection{Batches: []core.Batch{{{Target: "/hot", Size: 10}}}})
	}
	conns = append(conns, core.Connection{Batches: []core.Batch{{{Target: "/cold", Size: 1000}}}})
	tr := &Trace{Conns: conns, Sizes: map[core.Target]int64{"/hot": 10, "/cold": 1000}}
	st := ComputeStats(tr, 0.9, 1.0)
	if st.Coverage[0] != 10 {
		t.Errorf("90%% coverage = %d bytes, want 10", st.Coverage[0])
	}
	if st.Coverage[1] != 1010 {
		t.Errorf("100%% coverage = %d bytes, want 1010", st.Coverage[1])
	}
}

// Property: reconstruction preserves request counts and never invents
// targets, for arbitrary well-formed entry streams.
func TestReconstructPreservesRequests(t *testing.T) {
	f := func(raw []uint16) bool {
		entries := make([]Entry, 0, len(raw))
		for i, r := range raw {
			entries = append(entries, Entry{
				Client: string(rune('a' + int(r)%5)),
				Time:   core.Micros(i) * 700 * core.Millisecond,
				Target: core.Target(rune('A' + int(r)%11)),
				Size:   int64(r%1000) + 1,
				Status: 200,
			})
		}
		tr := Reconstruct(entries, DefaultIdleTimeout, DefaultBatchWindow)
		if tr.Requests() != len(entries) {
			return false
		}
		for _, c := range tr.Conns {
			for _, b := range c.Batches {
				for _, r := range b {
					if _, ok := tr.Sizes[r.Target]; !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestStatsString pins the Section 6-style rendering: one coverage line
// per requested point, sizes in MB.
func TestStatsString(t *testing.T) {
	cfg := SmallSynthConfig()
	cfg.Connections = 400
	st := ComputeStats(NewSynth(cfg).Generate(), 0.5, 1.0)
	out := st.String()
	for _, want := range []string{"connections", "working set", "cover 50%", "cover 100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, out)
		}
	}
}

// TestGenerateEntriesMatchesBoth pins the convenience wrapper to the
// two-view generator it delegates to.
func TestGenerateEntriesMatchesBoth(t *testing.T) {
	cfg := SmallSynthConfig()
	cfg.Connections = 400
	entries := NewSynth(cfg).GenerateEntries()
	both, _ := NewSynth(cfg).GenerateBoth()
	if !reflect.DeepEqual(entries, both) {
		t.Error("GenerateEntries differs from GenerateBoth's entries")
	}
}
