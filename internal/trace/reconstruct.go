package trace

import (
	"sort"

	"phttp/internal/core"
)

// Reconstruction constants: the paper's heuristics for inferring HTTP/1.1
// structure from per-request Web server logs (Section 6).
const (
	// DefaultIdleTimeout is the persistent-connection idle close interval
	// (the default used by Web servers to close idle HTTP/1.1
	// connections): successive requests from the same client closer than
	// this are considered to share a connection.
	DefaultIdleTimeout = 15 * core.Second
	// DefaultBatchWindow groups pipelined requests: requests other than
	// the first on a connection that arrive within this window of each
	// other form one pipelined batch.
	DefaultBatchWindow = 1 * core.Second
)

// Reconstruct applies the paper's heuristics to raw log entries and returns
// the P-HTTP trace: entries from one client with inter-request gaps below
// idleTimeout share a TCP connection; within a connection, the first request
// stands alone and subsequent requests within batchWindow of each other form
// pipelined batches. Entries with non-2xx status are dropped. The input need
// not be sorted.
func Reconstruct(entries []Entry, idleTimeout, batchWindow core.Micros) *Trace {
	ok := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Status >= 200 && e.Status < 300 {
			ok = append(ok, e)
		}
	}
	// Stable sort by (client, time) so each client's request stream is
	// contiguous and ordered; connection order follows first-request time.
	sort.SliceStable(ok, func(i, j int) bool {
		if ok[i].Client != ok[j].Client {
			return ok[i].Client < ok[j].Client
		}
		return ok[i].Time < ok[j].Time
	})

	type pending struct {
		conn  core.Connection
		start core.Micros
	}
	var conns []pending
	sizes := make(map[core.Target]int64)

	i := 0
	for i < len(ok) {
		client := ok[i].Client
		j := i
		for j < len(ok) && ok[j].Client == client {
			j++
		}
		// Split the client's stream into connections.
		k := i
		for k < j {
			connStart := k
			end := k + 1
			for end < j && ok[end].Time-ok[end-1].Time < idleTimeout {
				end++
			}
			conns = append(conns, pending{
				conn:  buildConnection(ok[connStart:end], batchWindow),
				start: ok[connStart].Time,
			})
			k = end
		}
		i = j
	}
	for _, e := range ok {
		if cur, seen := sizes[e.Target]; !seen || e.Size > cur {
			sizes[e.Target] = e.Size
		}
	}

	sort.SliceStable(conns, func(a, b int) bool { return conns[a].start < conns[b].start })
	t := &Trace{Sizes: sizes}
	for _, p := range conns {
		t.Conns = append(t.Conns, p.conn)
	}
	return t.EnsureIDs()
}

// buildConnection splits one connection's ordered entries into batches: the
// first request forms its own batch (the browser fetches the document before
// it can pipeline requests for embedded objects); later requests within
// batchWindow of the previous request join the current batch.
func buildConnection(es []Entry, batchWindow core.Micros) core.Connection {
	var conn core.Connection
	if len(es) == 0 {
		return conn
	}
	conn.Batches = append(conn.Batches, core.Batch{req(es[0])})
	var cur core.Batch
	for i := 1; i < len(es); i++ {
		if len(cur) > 0 && es[i].Time-es[i-1].Time >= batchWindow {
			conn.Batches = append(conn.Batches, cur)
			cur = nil
		}
		cur = append(cur, req(es[i]))
	}
	if len(cur) > 0 {
		conn.Batches = append(conn.Batches, cur)
	}
	return conn
}

func req(e Entry) core.Request { return core.Request{Target: e.Target, Size: e.Size} }
