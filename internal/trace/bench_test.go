package trace

import (
	"bytes"
	"testing"
)

// Sweep-startup benchmarks: catalog build plus connection generation
// (serial and block-parallel) and the cache-hit load path. BENCH_sim.json
// records the same quantities for the full-size reference workload via
// `make bench`; these keep the paths under bench-smoke in CI.

func benchSynthConfig() SynthConfig {
	cfg := SmallSynthConfig()
	cfg.Connections = 2000
	return cfg
}

func BenchmarkSynthGenerateSerial(b *testing.B) {
	cfg := benchSynthConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewSynth(cfg).GenerateParallel(1)
	}
}

func BenchmarkSynthGenerateParallel(b *testing.B) {
	cfg := benchSynthConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewSynth(cfg).GenerateParallel(0)
	}
}

func BenchmarkTraceCacheHit(b *testing.B) {
	cfg := benchSynthConfig()
	dir := b.TempDir()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := LoadOrGenerate(dir, cfg); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

// The decode benchmarks isolate ReadBinaryBytes per cached form: the
// nested P-HTTP structure and the layoutSingle flattened form.

func benchEncoded(b *testing.B, flat bool) []byte {
	b.Helper()
	tr := NewSynth(benchSynthConfig()).Generate()
	if flat {
		tr = tr.Flatten10()
	}
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr, 1); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadBinaryPHTTP(b *testing.B) {
	data := benchEncoded(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadBinaryBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinaryFlat(b *testing.B) {
	data := benchEncoded(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadBinaryBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadOrGenerateHitReference(b *testing.B) {
	cfg := DefaultSynthConfig()
	cfg.Connections = 12000
	dir := b.TempDir()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := LoadOrGenerate(dir, cfg); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}
