//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package trace

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// Zero-copy cache loads (DESIGN.md §14): on platforms with mmap and flock
// the cache-hit path maps the trace file read-only and decodes in place —
// target strings alias the mapped bytes instead of being copied through a
// blob, and the kernel pages the file in on demand. The mapping outlives
// the load: the returned Trace pins it (Trace.mapping) and a finalizer
// unmaps once nothing reachable can alias the file.

// mmapSupported reports whether this build maps cache files instead of
// copying them (and, with flockSupported, selects the zero-copy loader).
const mmapSupported = true

// flockSupported reports whether LoadOrGenerate serializes concurrent
// generators on an advisory file lock.
const flockSupported = true

// mapping pins one read-only file mapping. Strings produced by aliasString
// over its bytes are valid exactly as long as the mapping object is
// reachable; the Trace that owns them keeps the pointer.
type mapping struct {
	data []byte
}

// mapFile maps path read-only and returns the pinning mapping plus its
// bytes. An empty file maps to nil bytes (the decoder rejects it as a
// 0-byte trace). Concurrent cache rewrites are safe: writeCached replaces
// the file by rename, which leaves existing mappings on the old inode
// untouched.
func mapFile(path string) (*mapping, []byte, error) {
	// Raw syscalls instead of the os package: an os.File plus its FileInfo
	// is four allocations per open on a path that budgets ~30 total.
	fd, err := syscall.Open(path, syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
	if err != nil {
		return nil, nil, &os.PathError{Op: "open", Path: path, Err: err}
	}
	defer syscall.Close(fd)
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		return nil, nil, &os.PathError{Op: "stat", Path: path, Err: err}
	}
	size := st.Size
	if size == 0 {
		return &mapping{}, nil, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("trace: %s: %d bytes exceeds the address space", path, size)
	}
	b, err := syscall.Mmap(fd, 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: mmap %s: %w", path, err)
	}
	m := &mapping{data: b}
	runtime.SetFinalizer(m, (*mapping).unmap)
	return m, b, nil
}

// unmap releases the mapping early (callers that provably retain no alias)
// or from the finalizer. Idempotent.
func (m *mapping) unmap() {
	if m.data != nil {
		syscall.Munmap(m.data)
		m.data = nil
	}
}

// aliasString returns a string aliasing b, which must be bytes of a live
// mapping (or any buffer outliving every use of the string). This is the
// one unsafe corner of the loader, kept behind the build tag so the
// fallback build stays pure.
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// lockFile takes an exclusive advisory lock on path (creating it if
// absent), blocking until the lock is granted, and returns the unlock
// function. Locks are per open file description, so two goroutines of one
// process contend exactly like two processes.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
