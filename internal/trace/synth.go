package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"phttp/internal/core"
	"phttp/internal/simcore"
)

// SynthConfig parameterizes the synthetic workload generator that stands in
// for the Rice University trace (see DESIGN.md §4.1). The generator models a
// departmental Web site: HTML pages with embedded objects, Zipf-like page
// popularity, heavy-tailed object sizes, and client sessions that map
// naturally onto persistent connections with pipelined batches.
type SynthConfig struct {
	Seed uint64

	// Pages and Objects set the document population; the working set is
	// roughly Pages*meanPageSize + Objects*meanObjectSize.
	Pages   int
	Objects int

	// ObjectsPerPage is the mean number of embedded objects per page.
	ObjectsPerPage float64

	// ZipfAlpha shapes page popularity (higher = more skew).
	ZipfAlpha float64

	// Size model: lognormal body with a Pareto tail.
	PageLogMu      float64
	PageLogSigma   float64
	ObjectLogMu    float64
	ObjectLogSigma float64
	TailProb       float64
	TailAlpha      float64
	TailScale      float64
	MinSize        int64
	MaxSize        int64

	// Clients is the population of distinct client hosts.
	Clients int

	// Connections is the number of persistent connections to generate.
	Connections int

	// PagesPerConn is the mean number of page visits per connection
	// (each visit = one single-request batch plus batches of embedded
	// objects).
	PagesPerConn float64

	// ResumeProb is the probability that a connection resumes an
	// interrupted page visit, making an embedded object its first
	// request. Real logs show this (the 15 s idle close cuts sessions
	// mid-page); it also seeds the dispatcher's mapping table with
	// object targets.
	ResumeProb float64

	// MaxBatch caps pipelined batch size (browsers bound parallelism).
	MaxBatch int

	// GenVersion pins the deterministic draw scheme so a (config, trace)
	// pair stays reproducible across releases. Version 2 — the current and
	// only supported scheme — builds the catalog from the base seed and
	// generates connections in independent blocks, each on its own RNG
	// stream seeded by (Seed, block index). 0 means GenVersionBlocks.
	GenVersion int

	// BlockSize is the number of connections per generation block — the
	// unit of determinism. Output is a pure function of (config, BlockSize)
	// and independent of how many workers generate the blocks. 0 means
	// DefaultBlockSize.
	BlockSize int
}

// GenVersionBlocks is the block-seeded generation scheme (see
// SynthConfig.GenVersion).
const GenVersionBlocks = 2

// DefaultBlockSize is the default generation block size: small enough that
// the default 60k-connection workload spreads over ~60 blocks (ample
// parallelism), large enough that per-block stream setup is noise.
const DefaultBlockSize = 1024

// genVersion and blockSize resolve the zero defaults.
func (c SynthConfig) genVersion() int {
	if c.GenVersion == 0 {
		return GenVersionBlocks
	}
	return c.GenVersion
}

func (c SynthConfig) blockSize() int {
	if c.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return c.BlockSize
}

// DefaultSynthConfig returns the calibrated default: ~60k targets, ~500 MB
// working set (about 6x one back-end's 85 MB cache, so a single node
// thrashes while a mid-sized cluster's aggregate cache holds it), mean
// response under 13 KB, and a popularity skew under which one 85 MB cache
// covers roughly half the requests — reproducing the paper's disk-bound WRR.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Seed:           1,
		Pages:          12000,
		Objects:        28000,
		ObjectsPerPage: 6,
		ZipfAlpha:      0.78,
		PageLogMu:      8.7, // median ~6 KB
		PageLogSigma:   1.0,
		ObjectLogMu:    8.0, // median ~3 KB
		ObjectLogSigma: 1.1,
		TailProb:       0.01,
		TailAlpha:      1.3,
		TailScale:      64 << 10,
		MinSize:        96,
		MaxSize:        4 << 20,
		Clients:        2500,
		Connections:    60000,
		PagesPerConn:   1.3,
		ResumeProb:     0.25,
		MaxBatch:       4,
	}
}

// SmallSynthConfig returns a scaled-down configuration for tests: ~2k
// targets, a few thousand connections.
func SmallSynthConfig() SynthConfig {
	c := DefaultSynthConfig()
	c.Pages = 600
	c.Objects = 1400
	c.Clients = 300
	c.Connections = 4000
	return c
}

// pageTarget and objectTarget name documents deterministically.
func pageTarget(i int) core.Target   { return core.Target(fmt.Sprintf("/docs/page%05d.html", i)) }
func objectTarget(i int) core.Target { return core.Target(fmt.Sprintf("/img/obj%05d", i)) }

// Synth is an instantiated generator: the document catalog plus the
// popularity and session models. Build one with NewSynth, then call
// Generate (structured trace) or GenerateEntries (CLF log records).
//
// The catalog (sizes, embedded-object lists, popularity tables) is built
// once from the base seed; connection generation draws from per-block RNG
// streams (see SynthConfig.GenVersion), so Generate can fan blocks out over
// worker goroutines and still produce the identical trace.
type Synth struct {
	cfg      SynthConfig
	zipf     *simcore.Zipf // page popularity; per-block generators view it through their own streams
	pageSize []int64
	objSize  []int64
	embedded [][]int // page -> object indices
}

// embedRetries bounds the uniform redraws used when the popularity-skewed
// object draw collides with an object the page already embeds. The skewed
// head collides often (that is the point of shared logos), so a single
// fallback draw used to under-fill pages silently; a bounded retry keeps
// the mean embedded count tracking ObjectsPerPage without risking an
// unbounded loop when a page approaches the whole object population.
const embedRetries = 16

// NewSynth builds the catalog: deterministic sizes and per-page embedded
// object lists drawn from a skewed object popularity (shared objects such
// as logos appear on many pages).
func NewSynth(cfg SynthConfig) *Synth {
	if cfg.Pages <= 0 || cfg.Objects <= 0 || cfg.Connections < 0 {
		panic("trace: SynthConfig with non-positive population")
	}
	if v := cfg.genVersion(); v != GenVersionBlocks {
		panic(fmt.Sprintf("trace: unsupported SynthConfig.GenVersion %d (want %d)", v, GenVersionBlocks))
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4
	}
	rng := simcore.NewRNG(cfg.Seed)
	s := &Synth{
		cfg:      cfg,
		zipf:     simcore.NewZipf(rng, cfg.Pages, cfg.ZipfAlpha),
		pageSize: make([]int64, cfg.Pages),
		objSize:  make([]int64, cfg.Objects),
		embedded: make([][]int, cfg.Pages),
	}
	for i := range s.pageSize {
		s.pageSize[i] = s.sample(rng, cfg.PageLogMu, cfg.PageLogSigma)
	}
	for i := range s.objSize {
		s.objSize[i] = s.sample(rng, cfg.ObjectLogMu, cfg.ObjectLogSigma)
	}
	// Object popularity across pages: Zipf over object indices.
	objPop := simcore.NewZipf(rng, cfg.Objects, 0.6)
	for p := range s.embedded {
		k := rng.Geometric(cfg.ObjectsPerPage)
		if k > cfg.Objects {
			k = cfg.Objects
		}
		seen := make(map[int]bool, k)
		for len(s.embedded[p]) < k {
			o := objPop.Next()
			for try := 0; seen[o] && try < embedRetries; try++ {
				o = rng.Intn(cfg.Objects) // fall back to uniform on repeat
			}
			if seen[o] {
				break // population effectively exhausted for this page
			}
			seen[o] = true
			s.embedded[p] = append(s.embedded[p], o)
		}
	}
	return s
}

func (s *Synth) sample(rng *simcore.RNG, mu, sigma float64) int64 {
	var v float64
	if rng.Float64() < s.cfg.TailProb {
		v = rng.Pareto(s.cfg.TailScale, s.cfg.TailAlpha)
	} else {
		v = rng.LogNormal(mu, sigma)
	}
	sz := int64(v)
	if sz < s.cfg.MinSize {
		sz = s.cfg.MinSize
	}
	if sz > s.cfg.MaxSize {
		sz = s.cfg.MaxSize
	}
	return sz
}

// Sizes returns the full catalog (target → size) without generating traffic.
func (s *Synth) Sizes() map[core.Target]int64 {
	m := make(map[core.Target]int64, len(s.pageSize)+len(s.objSize))
	for i, sz := range s.pageSize {
		m[pageTarget(i)] = sz
	}
	for i, sz := range s.objSize {
		m[objectTarget(i)] = sz
	}
	return m
}

// Stream indices. Connection block b draws from stream b+1; stream 0 is
// reserved for the timing/client draws of GenerateBoth, so the structured
// trace is identical whether or not log entries are generated alongside it.
const timingStream = 0

// blockGen is one block's generation context: an independent RNG stream
// plus a per-stream view of the shared page-popularity table.
type blockGen struct {
	s    *Synth
	rng  *simcore.RNG
	zipf *simcore.Zipf
}

func (s *Synth) blockGen(block int) blockGen {
	rng := simcore.NewRNGStream(s.cfg.Seed, uint64(block)+1)
	return blockGen{s: s, rng: rng, zipf: s.zipf.With(rng)}
}

// genBlock fills conns[block*BlockSize : ...] from the block's own stream.
func (s *Synth) genBlock(block int, conns []core.Connection) {
	g := s.blockGen(block)
	lo := block * s.cfg.blockSize()
	hi := lo + s.cfg.blockSize()
	if hi > len(conns) {
		hi = len(conns)
	}
	for i := lo; i < hi; i++ {
		conns[i] = g.genConnection()
	}
}

// generateConns produces the connection sequence: blocks are generated
// independently (in parallel when workers allows) and spliced in block
// order, so the result is deterministic for a (config, BlockSize) pair
// regardless of worker count. workers < 1 means GOMAXPROCS.
func (s *Synth) generateConns(workers int) []core.Connection {
	n := s.cfg.Connections
	if n == 0 {
		return nil
	}
	conns := make([]core.Connection, n)
	blocks := (n + s.cfg.blockSize() - 1) / s.cfg.blockSize()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		for b := 0; b < blocks; b++ {
			s.genBlock(b, conns)
		}
		return conns
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1) - 1)
				if b >= blocks {
					return
				}
				s.genBlock(b, conns)
			}
		}()
	}
	wg.Wait()
	return conns
}

// Generate produces the structured P-HTTP trace directly, with every
// request's target interned. Blocks are generated across GOMAXPROCS
// workers; the output is identical to GenerateParallel(1).
func (s *Synth) Generate() *Trace {
	return s.GenerateParallel(0)
}

// GenerateParallel is Generate with an explicit worker count (1 forces
// serial generation, 0 means GOMAXPROCS). The trace is byte-identical for
// every worker count: determinism comes from the per-block RNG streams,
// not from scheduling.
func (s *Synth) GenerateParallel(workers int) *Trace {
	return s.assemble(s.generateConns(workers))
}

// assemble wraps generated connections as a Trace: the sizes table is
// collected from the requests actually drawn, and targets are interned in
// trace order.
func (s *Synth) assemble(conns []core.Connection) *Trace {
	t := &Trace{Conns: conns, Sizes: make(map[core.Target]int64)}
	for _, c := range conns {
		for _, b := range c.Batches {
			for _, r := range b {
				t.Sizes[r.Target] = r.Size
			}
		}
	}
	return t.EnsureIDs()
}

// genConnection generates one persistent connection: optionally the resumed
// tail of an interrupted page visit (object requests only), then a sequence
// of page visits, each a single-request batch (the page) followed by
// pipelined batches of its embedded objects.
func (g blockGen) genConnection() core.Connection {
	s := g.s
	var conn core.Connection
	if g.rng.Float64() < s.cfg.ResumeProb {
		p := g.zipf.Next()
		if objs := s.embedded[p]; len(objs) > 0 {
			// Resume partway through the page's objects. The first
			// request of a connection always stands alone (the client
			// cannot pipeline before its first round trip), matching
			// the reconstruction heuristic.
			from := g.rng.Intn(len(objs))
			conn.Batches = append(conn.Batches, core.Batch{{
				Target: objectTarget(objs[from]),
				Size:   s.objSize[objs[from]],
			}})
			g.appendObjectBatches(&conn, objs[from+1:])
		}
	}
	visits := g.rng.Geometric(s.cfg.PagesPerConn)
	for v := 0; v < visits; v++ {
		p := g.zipf.Next()
		conn.Batches = append(conn.Batches, core.Batch{{
			Target: pageTarget(p),
			Size:   s.pageSize[p],
		}})
		g.appendObjectBatches(&conn, s.embedded[p])
	}
	return conn
}

// appendObjectBatches splits objs into pipelined batches of at most MaxBatch
// requests and appends them to conn.
func (g blockGen) appendObjectBatches(conn *core.Connection, objs []int) {
	for start := 0; start < len(objs); start += g.s.cfg.MaxBatch {
		end := start + g.s.cfg.MaxBatch
		if end > len(objs) {
			end = len(objs)
		}
		var b core.Batch
		for _, o := range objs[start:end] {
			b = append(b, core.Request{
				Target: objectTarget(o),
				Size:   g.s.objSize[o],
			})
		}
		conn.Batches = append(conn.Batches, b)
	}
}

// GenerateEntries produces per-request log entries whose timestamps encode
// the connection/batch structure under the paper's reconstruction
// heuristics: requests within a batch are spaced well under the batch
// window, batches are separated by 1-10 s, and connections from the same
// client are separated by more than the idle timeout. Feeding the result to
// Reconstruct recovers the structured trace (a property the tests verify).
func (s *Synth) GenerateEntries() []Entry {
	entries, _ := s.GenerateBoth()
	return entries
}

// GenerateBoth produces the log entries and the structured trace they
// encode from the same generator draw, so the two views describe the
// identical workload. The connection draws come from the per-block streams
// — the returned trace equals Generate()'s — while client assignment and
// timestamps draw from the reserved timing stream.
func (s *Synth) GenerateBoth() ([]Entry, *Trace) {
	conns := s.generateConns(0)
	trng := simcore.NewRNGStream(s.cfg.Seed, timingStream)
	var entries []Entry
	// Per-client running clocks ensure the >=15 s separation.
	clientClock := make([]core.Micros, s.cfg.Clients)
	for _, conn := range conns {
		client := trng.Intn(s.cfg.Clients)
		now := clientClock[client]
		// Stagger clients so connection start order interleaves.
		now += core.Micros(trng.Intn(2000)) * core.Millisecond

		for bi, b := range conn.Batches {
			if bi > 0 {
				// Inter-batch gap: client parses and requests more,
				// 1.2-9 s (>= batch window, < idle timeout).
				now += core.Micros(1200+trng.Intn(7800)) * core.Millisecond
			}
			for ri, r := range b {
				if ri > 0 {
					// Pipelined spacing well inside the window.
					now += core.Micros(20+trng.Intn(200)) * core.Millisecond
				}
				entries = append(entries, Entry{
					Client: fmt.Sprintf("client%04d.example.edu", client),
					Time:   now,
					Target: r.Target,
					Size:   r.Size,
					Status: 200,
				})
			}
		}
		// Next connection from this client comes after the idle timeout.
		clientClock[client] = now + DefaultIdleTimeout + core.Micros(1+trng.Intn(30))*core.Second
	}
	return entries, s.assemble(conns)
}
