package trace

import (
	"fmt"

	"phttp/internal/core"
	"phttp/internal/simcore"
)

// SynthConfig parameterizes the synthetic workload generator that stands in
// for the Rice University trace (see DESIGN.md §4.1). The generator models a
// departmental Web site: HTML pages with embedded objects, Zipf-like page
// popularity, heavy-tailed object sizes, and client sessions that map
// naturally onto persistent connections with pipelined batches.
type SynthConfig struct {
	Seed uint64

	// Pages and Objects set the document population; the working set is
	// roughly Pages*meanPageSize + Objects*meanObjectSize.
	Pages   int
	Objects int

	// ObjectsPerPage is the mean number of embedded objects per page.
	ObjectsPerPage float64

	// ZipfAlpha shapes page popularity (higher = more skew).
	ZipfAlpha float64

	// Size model: lognormal body with a Pareto tail.
	PageLogMu      float64
	PageLogSigma   float64
	ObjectLogMu    float64
	ObjectLogSigma float64
	TailProb       float64
	TailAlpha      float64
	TailScale      float64
	MinSize        int64
	MaxSize        int64

	// Clients is the population of distinct client hosts.
	Clients int

	// Connections is the number of persistent connections to generate.
	Connections int

	// PagesPerConn is the mean number of page visits per connection
	// (each visit = one single-request batch plus batches of embedded
	// objects).
	PagesPerConn float64

	// ResumeProb is the probability that a connection resumes an
	// interrupted page visit, making an embedded object its first
	// request. Real logs show this (the 15 s idle close cuts sessions
	// mid-page); it also seeds the dispatcher's mapping table with
	// object targets.
	ResumeProb float64

	// MaxBatch caps pipelined batch size (browsers bound parallelism).
	MaxBatch int
}

// DefaultSynthConfig returns the calibrated default: ~60k targets, ~500 MB
// working set (about 6x one back-end's 85 MB cache, so a single node
// thrashes while a mid-sized cluster's aggregate cache holds it), mean
// response under 13 KB, and a popularity skew under which one 85 MB cache
// covers roughly half the requests — reproducing the paper's disk-bound WRR.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Seed:           1,
		Pages:          12000,
		Objects:        28000,
		ObjectsPerPage: 6,
		ZipfAlpha:      0.78,
		PageLogMu:      8.7, // median ~6 KB
		PageLogSigma:   1.0,
		ObjectLogMu:    8.0, // median ~3 KB
		ObjectLogSigma: 1.1,
		TailProb:       0.01,
		TailAlpha:      1.3,
		TailScale:      64 << 10,
		MinSize:        96,
		MaxSize:        4 << 20,
		Clients:        2500,
		Connections:    60000,
		PagesPerConn:   1.3,
		ResumeProb:     0.25,
		MaxBatch:       4,
	}
}

// SmallSynthConfig returns a scaled-down configuration for tests: ~2k
// targets, a few thousand connections.
func SmallSynthConfig() SynthConfig {
	c := DefaultSynthConfig()
	c.Pages = 600
	c.Objects = 1400
	c.Clients = 300
	c.Connections = 4000
	return c
}

// pageTarget and objectTarget name documents deterministically.
func pageTarget(i int) core.Target   { return core.Target(fmt.Sprintf("/docs/page%05d.html", i)) }
func objectTarget(i int) core.Target { return core.Target(fmt.Sprintf("/img/obj%05d", i)) }

// Synth is an instantiated generator: the document catalog plus the
// popularity and session models. Build one with NewSynth, then call
// Generate (structured trace) or GenerateEntries (CLF log records).
type Synth struct {
	cfg      SynthConfig
	rng      *simcore.RNG
	zipf     *simcore.Zipf
	pageSize []int64
	objSize  []int64
	embedded [][]int // page -> object indices
}

// NewSynth builds the catalog: deterministic sizes and per-page embedded
// object lists drawn from a skewed object popularity (shared objects such
// as logos appear on many pages).
func NewSynth(cfg SynthConfig) *Synth {
	if cfg.Pages <= 0 || cfg.Objects <= 0 || cfg.Connections < 0 {
		panic("trace: SynthConfig with non-positive population")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4
	}
	rng := simcore.NewRNG(cfg.Seed)
	s := &Synth{
		cfg:      cfg,
		rng:      rng,
		zipf:     simcore.NewZipf(rng, cfg.Pages, cfg.ZipfAlpha),
		pageSize: make([]int64, cfg.Pages),
		objSize:  make([]int64, cfg.Objects),
		embedded: make([][]int, cfg.Pages),
	}
	for i := range s.pageSize {
		s.pageSize[i] = s.sample(cfg.PageLogMu, cfg.PageLogSigma)
	}
	for i := range s.objSize {
		s.objSize[i] = s.sample(cfg.ObjectLogMu, cfg.ObjectLogSigma)
	}
	// Object popularity across pages: Zipf over object indices.
	objPop := simcore.NewZipf(rng, cfg.Objects, 0.6)
	for p := range s.embedded {
		k := rng.Geometric(cfg.ObjectsPerPage)
		seen := map[int]bool{}
		for len(s.embedded[p]) < k {
			o := objPop.Next()
			if seen[o] {
				o = rng.Intn(cfg.Objects) // fall back to uniform on repeat
				if seen[o] {
					break
				}
			}
			seen[o] = true
			s.embedded[p] = append(s.embedded[p], o)
		}
	}
	return s
}

func (s *Synth) sample(mu, sigma float64) int64 {
	var v float64
	if s.rng.Float64() < s.cfg.TailProb {
		v = s.rng.Pareto(s.cfg.TailScale, s.cfg.TailAlpha)
	} else {
		v = s.rng.LogNormal(mu, sigma)
	}
	sz := int64(v)
	if sz < s.cfg.MinSize {
		sz = s.cfg.MinSize
	}
	if sz > s.cfg.MaxSize {
		sz = s.cfg.MaxSize
	}
	return sz
}

// Sizes returns the full catalog (target → size) without generating traffic.
func (s *Synth) Sizes() map[core.Target]int64 {
	m := make(map[core.Target]int64, len(s.pageSize)+len(s.objSize))
	for i, sz := range s.pageSize {
		m[pageTarget(i)] = sz
	}
	for i, sz := range s.objSize {
		m[objectTarget(i)] = sz
	}
	return m
}

// Generate produces the structured P-HTTP trace directly, with every
// request's target interned.
func (s *Synth) Generate() *Trace {
	t := &Trace{Sizes: make(map[core.Target]int64)}
	for i := 0; i < s.cfg.Connections; i++ {
		conn := s.genConnection()
		t.Conns = append(t.Conns, conn)
		for _, b := range conn.Batches {
			for _, r := range b {
				t.Sizes[r.Target] = r.Size
			}
		}
	}
	return t.EnsureIDs()
}

// genConnection generates one persistent connection: optionally the resumed
// tail of an interrupted page visit (object requests only), then a sequence
// of page visits, each a single-request batch (the page) followed by
// pipelined batches of its embedded objects.
func (s *Synth) genConnection() core.Connection {
	var conn core.Connection
	if s.rng.Float64() < s.cfg.ResumeProb {
		p := s.zipf.Next()
		if objs := s.embedded[p]; len(objs) > 0 {
			// Resume partway through the page's objects. The first
			// request of a connection always stands alone (the client
			// cannot pipeline before its first round trip), matching
			// the reconstruction heuristic.
			from := s.rng.Intn(len(objs))
			conn.Batches = append(conn.Batches, core.Batch{{
				Target: objectTarget(objs[from]),
				Size:   s.objSize[objs[from]],
			}})
			s.appendObjectBatches(&conn, objs[from+1:])
		}
	}
	visits := s.rng.Geometric(s.cfg.PagesPerConn)
	for v := 0; v < visits; v++ {
		p := s.zipf.Next()
		conn.Batches = append(conn.Batches, core.Batch{{
			Target: pageTarget(p),
			Size:   s.pageSize[p],
		}})
		s.appendObjectBatches(&conn, s.embedded[p])
	}
	return conn
}

// appendObjectBatches splits objs into pipelined batches of at most MaxBatch
// requests and appends them to conn.
func (s *Synth) appendObjectBatches(conn *core.Connection, objs []int) {
	for start := 0; start < len(objs); start += s.cfg.MaxBatch {
		end := start + s.cfg.MaxBatch
		if end > len(objs) {
			end = len(objs)
		}
		var b core.Batch
		for _, o := range objs[start:end] {
			b = append(b, core.Request{
				Target: objectTarget(o),
				Size:   s.objSize[o],
			})
		}
		conn.Batches = append(conn.Batches, b)
	}
}

// GenerateEntries produces per-request log entries whose timestamps encode
// the connection/batch structure under the paper's reconstruction
// heuristics: requests within a batch are spaced well under the batch
// window, batches are separated by 1-10 s, and connections from the same
// client are separated by more than the idle timeout. Feeding the result to
// Reconstruct recovers the structured trace (a property the tests verify).
func (s *Synth) GenerateEntries() []Entry {
	entries, _ := s.GenerateBoth()
	return entries
}

// GenerateBoth produces the log entries and the structured trace they
// encode from the same generator draw, so the two views describe the
// identical workload.
func (s *Synth) GenerateBoth() ([]Entry, *Trace) {
	var entries []Entry
	tr := &Trace{Sizes: make(map[core.Target]int64)}
	// Per-client running clocks ensure the >=15 s separation.
	clientClock := make([]core.Micros, s.cfg.Clients)
	for i := 0; i < s.cfg.Connections; i++ {
		client := s.rng.Intn(s.cfg.Clients)
		now := clientClock[client]
		// Stagger clients so connection start order interleaves.
		now += core.Micros(s.rng.Intn(2000)) * core.Millisecond

		conn := s.genConnection()
		tr.Conns = append(tr.Conns, conn)
		for bi, b := range conn.Batches {
			if bi > 0 {
				// Inter-batch gap: client parses and requests more,
				// 1.2-9 s (>= batch window, < idle timeout).
				now += core.Micros(1200+s.rng.Intn(7800)) * core.Millisecond
			}
			for ri, r := range b {
				if ri > 0 {
					// Pipelined spacing well inside the window.
					now += core.Micros(20+s.rng.Intn(200)) * core.Millisecond
				}
				tr.Sizes[r.Target] = r.Size
				entries = append(entries, Entry{
					Client: fmt.Sprintf("client%04d.example.edu", client),
					Time:   now,
					Target: r.Target,
					Size:   r.Size,
					Status: 200,
				})
			}
		}
		// Next connection from this client comes after the idle timeout.
		clientClock[client] = now + DefaultIdleTimeout + core.Micros(1+s.rng.Intn(30))*core.Second
	}
	return entries, tr.EnsureIDs()
}
