//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package trace

import "os"

// Fallback for platforms without mmap/flock in the syscall package: cache
// files are read whole (copy-on-load) and concurrent generators are not
// serialized — writeCached's atomic rename keeps them correct, just
// duplicating work.

const mmapSupported = false

const flockSupported = false

// mapping is a no-op pin: the fallback loader owns ordinary heap bytes.
type mapping struct{}

// mapFile reads path whole; the "mapping" pins nothing.
func mapFile(path string) (*mapping, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return &mapping{}, data, nil
}

func (m *mapping) unmap() {}

// aliasString copies: without a mapping to pin there is nothing to alias.
func aliasString(b []byte) string { return string(b) }

// lockFile is a no-op unlock; see the package note above.
func lockFile(path string) (func(), error) { return func() {}, nil }
