// Package trace provides the workload side of the reproduction: Web server
// log entries (Common Log Format), the paper's heuristic reconstruction of
// HTTP/1.1 persistent connections and pipelined batches from per-request
// logs, a synthetic generator standing in for the Rice University trace, and
// working-set statistics.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"phttp/internal/core"
)

// Entry is one Web server log record: who asked for what, when, and how many
// response bytes it produced.
type Entry struct {
	// Client is the requesting host (the trace's client field).
	Client string
	// Time is the access timestamp, microseconds since the trace epoch.
	Time core.Micros
	// Target is the requested document.
	Target core.Target
	// Size is the response body size in bytes.
	Size int64
	// Status is the HTTP status code (only 200s become requests).
	Status int
}

// Trace is a reconstructed workload: an ordered sequence of client
// connections (each a sequence of pipelined batches) plus the table of
// target sizes, which doubles as the synthetic document store's catalog.
//
// Interner holds the dense TargetIDs stamped onto every Request by
// EnsureIDs. The loaders (synthetic generator, log reconstruction) intern
// at build time, so everything downstream — simulator caches, policies,
// mapping tables — runs on integer IDs and only the edges ever see target
// strings.
type Trace struct {
	Conns []core.Connection
	// Sizes is the target→size catalog. On a trace loaded through the
	// zero-copy path (ReadBinaryMapped) it is nil until Catalog()
	// materializes it — replay runs purely on the IDs and sizes stamped
	// into each Request, so a sweep never pays for the map. Code that
	// needs the catalog of an arbitrary trace should call Catalog();
	// builders keep assigning the field directly.
	Sizes    map[core.Target]int64
	Interner *core.Interner

	// cat is the deferred catalog backing Catalog() (zero-copy loads
	// only). Shared between a trace and its flattening so
	// materialization yields one map, exactly like an eager load.
	cat *lazyCatalog

	// mapping pins the memory-mapped cache file whose bytes this trace's
	// target strings alias (ReadBinaryMapped loads only; nil otherwise).
	// Derived traces sharing the interner — Flatten10, donor loads — carry
	// the pin too, so the mapping stays mapped while any alias is
	// reachable; a finalizer unmaps it afterwards.
	mapping *mapping
}

// lazyCatalog is a catalog in columnar form (the binary table section as
// decoded) plus the memoized map built from it on first need.
type lazyCatalog struct {
	names []core.Target
	sizes []int64
	flags []uint8
	// mapping pins the mapped file the names alias, independently of the
	// owning Trace: materialization must stay safe even if the garbage
	// collector proves the trace dead mid-call.
	mapping *mapping

	once sync.Once
	m    map[core.Target]int64
}

// Catalog returns the target→size table, materializing (and memoizing) it
// for traces loaded through the zero-copy path. Safe for concurrent use:
// parallel sweep workers may resolve the catalog of a shared trace, and
// all of them (plus the trace's flattening, which shares the deferred
// form) get the same map. The map itself must then be treated read-only,
// like every other shared trace table. The Sizes field stays nil on
// zero-copy loads — direct field reads see the catalog only on
// builder-constructed traces.
//
// The returned map outlives the trace safely: its keys are copied out of
// the mapped file (one shared blob), never aliased — a catalog handed to
// a long-lived cluster must not dangle when the workload that produced it
// is dropped and the mapping finalizer runs.
func (t *Trace) Catalog() map[core.Target]int64 {
	if t.Sizes != nil || t.cat == nil {
		return t.Sizes
	}
	cat := t.cat
	cat.once.Do(func() {
		var b strings.Builder
		n := 0
		for i, name := range cat.names {
			if cat.flags[i]&flagInSizes != 0 {
				n += len(name)
			}
		}
		b.Grow(n)
		for i, name := range cat.names {
			if cat.flags[i]&flagInSizes != 0 {
				b.WriteString(string(name))
			}
		}
		blob := b.String()
		m := make(map[core.Target]int64, len(cat.names))
		off := 0
		for i, name := range cat.names {
			if cat.flags[i]&flagInSizes != 0 {
				m[core.Target(blob[off:off+len(name)])] = cat.sizes[i]
				off += len(name)
			}
		}
		cat.m = m
	})
	return cat.m
}

// EnsureIDs interns every request's target, assigning dense IDs in trace
// order (first appearance wins), and returns the trace for chaining. It is
// idempotent and must be called — or inherited from the loader — before the
// trace is replayed. Not safe to call concurrently with replay: parallel
// sweep drivers intern once up front and then share the trace read-only.
func (t *Trace) EnsureIDs() *Trace {
	if t.Interner == nil {
		t.Interner = core.NewInterner()
	}
	for _, c := range t.Conns {
		for _, b := range c.Batches {
			for i := range b {
				if b[i].ID == core.NoTarget {
					b[i].ID = t.Interner.Intern(b[i].Target)
				}
			}
		}
	}
	return t
}

// Requests returns the total request count.
func (t *Trace) Requests() int {
	n := 0
	for _, c := range t.Conns {
		n += c.Requests()
	}
	return n
}

// Bytes returns the total response bytes.
func (t *Trace) Bytes() int64 {
	var b int64
	for _, c := range t.Conns {
		b += c.Bytes()
	}
	return b
}

// WorkingSetBytes returns the summed size of distinct targets.
func (t *Trace) WorkingSetBytes() int64 {
	var b int64
	for _, s := range t.Catalog() {
		b += s
	}
	return b
}

// Flatten10 converts the trace to HTTP/1.0 form: every request becomes its
// own single-request connection, in the original order. This produces the
// paper's "HTTP/1.0 workload" from the same request stream. Interned IDs
// carry over with the requests.
func (t *Trace) Flatten10() *Trace {
	out := &Trace{Sizes: t.Sizes, Interner: t.Interner, cat: t.cat, mapping: t.mapping}
	for _, c := range t.Conns {
		for _, b := range c.Batches {
			for _, r := range b {
				out.Conns = append(out.Conns, core.Connection{
					Batches: []core.Batch{{r}},
				})
			}
		}
	}
	return out
}

// Stats summarizes a trace the way Section 6 of the paper reports its
// workload.
type Stats struct {
	Connections    int
	Requests       int
	Targets        int
	TotalBytes     int64
	WorkingSet     int64
	MeanRespBytes  float64
	MeanReqPerConn float64
	MeanBatchSize  float64
	// Coverage[i] is the memory in bytes needed to cover
	// CoveragePoints[i] fraction of all requests when caching the most
	// popular targets first.
	CoveragePoints []float64
	Coverage       []int64
}

// ComputeStats derives Stats from a trace; coverage is evaluated at the
// given request-fraction points (e.g. 0.97, 0.99, 1.0).
func ComputeStats(t *Trace, points ...float64) Stats {
	if len(points) == 0 {
		points = []float64{0.97, 0.99, 1.0}
	}
	sort.Float64s(points)
	cat := t.Catalog()
	s := Stats{
		Connections:    len(t.Conns),
		Requests:       t.Requests(),
		Targets:        len(cat),
		TotalBytes:     t.Bytes(),
		WorkingSet:     t.WorkingSetBytes(),
		CoveragePoints: points,
	}
	if s.Requests > 0 {
		s.MeanRespBytes = float64(s.TotalBytes) / float64(s.Requests)
	}
	if s.Connections > 0 {
		s.MeanReqPerConn = float64(s.Requests) / float64(s.Connections)
	}
	batches := 0
	for _, c := range t.Conns {
		batches += len(c.Batches)
	}
	if batches > 0 {
		s.MeanBatchSize = float64(s.Requests) / float64(batches)
	}

	// Coverage curve: most-requested targets first.
	freq := make(map[core.Target]int, len(cat))
	for _, c := range t.Conns {
		for _, b := range c.Batches {
			for _, r := range b {
				freq[r.Target]++
			}
		}
	}
	type tf struct {
		t core.Target
		n int
	}
	order := make([]tf, 0, len(freq))
	for tgt, n := range freq {
		order = append(order, tf{tgt, n})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].t < order[j].t
	})
	s.Coverage = make([]int64, len(points))
	var bytes int64
	covered := 0
	pi := 0
	for _, e := range order {
		bytes += cat[e.t]
		covered += e.n
		for pi < len(points) && float64(covered) >= points[pi]*float64(s.Requests) {
			s.Coverage[pi] = bytes
			pi++
		}
		if pi == len(points) {
			break
		}
	}
	for ; pi < len(points); pi++ {
		s.Coverage[pi] = bytes
	}
	return s
}

// String renders the stats in the style of the paper's Section 6 text.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"trace: %d connections, %d requests, %d targets, %.1f MB working set\n"+
			"mean response %.0f B, %.2f requests/connection, %.2f requests/batch\n",
		s.Connections, s.Requests, s.Targets, mb(s.WorkingSet),
		s.MeanRespBytes, s.MeanReqPerConn, s.MeanBatchSize)
	for i, p := range s.CoveragePoints {
		out += fmt.Sprintf("memory to cover %.0f%% of requests: %.1f MB\n",
			p*100, mb(s.Coverage[i]))
	}
	return out
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
