// Package trace provides the workload side of the reproduction: Web server
// log entries (Common Log Format), the paper's heuristic reconstruction of
// HTTP/1.1 persistent connections and pipelined batches from per-request
// logs, a synthetic generator standing in for the Rice University trace, and
// working-set statistics.
package trace

import (
	"fmt"
	"sort"

	"phttp/internal/core"
)

// Entry is one Web server log record: who asked for what, when, and how many
// response bytes it produced.
type Entry struct {
	// Client is the requesting host (the trace's client field).
	Client string
	// Time is the access timestamp, microseconds since the trace epoch.
	Time core.Micros
	// Target is the requested document.
	Target core.Target
	// Size is the response body size in bytes.
	Size int64
	// Status is the HTTP status code (only 200s become requests).
	Status int
}

// Trace is a reconstructed workload: an ordered sequence of client
// connections (each a sequence of pipelined batches) plus the table of
// target sizes, which doubles as the synthetic document store's catalog.
//
// Interner holds the dense TargetIDs stamped onto every Request by
// EnsureIDs. The loaders (synthetic generator, log reconstruction) intern
// at build time, so everything downstream — simulator caches, policies,
// mapping tables — runs on integer IDs and only the edges ever see target
// strings.
type Trace struct {
	Conns    []core.Connection
	Sizes    map[core.Target]int64
	Interner *core.Interner
}

// EnsureIDs interns every request's target, assigning dense IDs in trace
// order (first appearance wins), and returns the trace for chaining. It is
// idempotent and must be called — or inherited from the loader — before the
// trace is replayed. Not safe to call concurrently with replay: parallel
// sweep drivers intern once up front and then share the trace read-only.
func (t *Trace) EnsureIDs() *Trace {
	if t.Interner == nil {
		t.Interner = core.NewInterner()
	}
	for _, c := range t.Conns {
		for _, b := range c.Batches {
			for i := range b {
				if b[i].ID == core.NoTarget {
					b[i].ID = t.Interner.Intern(b[i].Target)
				}
			}
		}
	}
	return t
}

// Requests returns the total request count.
func (t *Trace) Requests() int {
	n := 0
	for _, c := range t.Conns {
		n += c.Requests()
	}
	return n
}

// Bytes returns the total response bytes.
func (t *Trace) Bytes() int64 {
	var b int64
	for _, c := range t.Conns {
		b += c.Bytes()
	}
	return b
}

// WorkingSetBytes returns the summed size of distinct targets.
func (t *Trace) WorkingSetBytes() int64 {
	var b int64
	for _, s := range t.Sizes {
		b += s
	}
	return b
}

// Flatten10 converts the trace to HTTP/1.0 form: every request becomes its
// own single-request connection, in the original order. This produces the
// paper's "HTTP/1.0 workload" from the same request stream. Interned IDs
// carry over with the requests.
func (t *Trace) Flatten10() *Trace {
	out := &Trace{Sizes: t.Sizes, Interner: t.Interner}
	for _, c := range t.Conns {
		for _, b := range c.Batches {
			for _, r := range b {
				out.Conns = append(out.Conns, core.Connection{
					Batches: []core.Batch{{r}},
				})
			}
		}
	}
	return out
}

// Stats summarizes a trace the way Section 6 of the paper reports its
// workload.
type Stats struct {
	Connections    int
	Requests       int
	Targets        int
	TotalBytes     int64
	WorkingSet     int64
	MeanRespBytes  float64
	MeanReqPerConn float64
	MeanBatchSize  float64
	// Coverage[i] is the memory in bytes needed to cover
	// CoveragePoints[i] fraction of all requests when caching the most
	// popular targets first.
	CoveragePoints []float64
	Coverage       []int64
}

// ComputeStats derives Stats from a trace; coverage is evaluated at the
// given request-fraction points (e.g. 0.97, 0.99, 1.0).
func ComputeStats(t *Trace, points ...float64) Stats {
	if len(points) == 0 {
		points = []float64{0.97, 0.99, 1.0}
	}
	sort.Float64s(points)
	s := Stats{
		Connections:    len(t.Conns),
		Requests:       t.Requests(),
		Targets:        len(t.Sizes),
		TotalBytes:     t.Bytes(),
		WorkingSet:     t.WorkingSetBytes(),
		CoveragePoints: points,
	}
	if s.Requests > 0 {
		s.MeanRespBytes = float64(s.TotalBytes) / float64(s.Requests)
	}
	if s.Connections > 0 {
		s.MeanReqPerConn = float64(s.Requests) / float64(s.Connections)
	}
	batches := 0
	for _, c := range t.Conns {
		batches += len(c.Batches)
	}
	if batches > 0 {
		s.MeanBatchSize = float64(s.Requests) / float64(batches)
	}

	// Coverage curve: most-requested targets first.
	freq := make(map[core.Target]int, len(t.Sizes))
	for _, c := range t.Conns {
		for _, b := range c.Batches {
			for _, r := range b {
				freq[r.Target]++
			}
		}
	}
	type tf struct {
		t core.Target
		n int
	}
	order := make([]tf, 0, len(freq))
	for tgt, n := range freq {
		order = append(order, tf{tgt, n})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].t < order[j].t
	})
	s.Coverage = make([]int64, len(points))
	var bytes int64
	covered := 0
	pi := 0
	for _, e := range order {
		bytes += t.Sizes[e.t]
		covered += e.n
		for pi < len(points) && float64(covered) >= points[pi]*float64(s.Requests) {
			s.Coverage[pi] = bytes
			pi++
		}
		if pi == len(points) {
			break
		}
	}
	for ; pi < len(points); pi++ {
		s.Coverage[pi] = bytes
	}
	return s
}

// String renders the stats in the style of the paper's Section 6 text.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"trace: %d connections, %d requests, %d targets, %.1f MB working set\n"+
			"mean response %.0f B, %.2f requests/connection, %.2f requests/batch\n",
		s.Connections, s.Requests, s.Targets, mb(s.WorkingSet),
		s.MeanRespBytes, s.MeanReqPerConn, s.MeanBatchSize)
	for i, p := range s.CoveragePoints {
		out += fmt.Sprintf("memory to cover %.0f%% of requests: %.1f MB\n",
			p*100, mb(s.Coverage[i]))
	}
	return out
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
