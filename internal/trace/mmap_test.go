package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"phttp/internal/core"
)

// writeTraceFile writes tr in the binary format under a temp dir.
func writeTraceFile(t *testing.T, tr *Trace, configHash uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mapped.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBinary(f, tr, configHash); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadBinaryMappedRoundTrip is the zero-copy counterpart of
// TestBinaryRoundTrip: a mapped load must be observably identical to the
// written trace — connections with IDs, the (lazily materialized) catalog,
// and the interner's two directions.
func TestReadBinaryMappedRoundTrip(t *testing.T) {
	tr := binTestTrace(t)
	path := writeTraceFile(t, tr, 0xfeedface)
	got, hash, err := ReadBinaryMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if hash != 0xfeedface {
		t.Errorf("config hash round trip = %x", hash)
	}
	if !reflect.DeepEqual(tr.Conns, got.Conns) {
		t.Error("connections did not round-trip through the mapping")
	}
	if !reflect.DeepEqual(tr.Sizes, got.Catalog()) {
		t.Error("catalog did not round-trip through the mapping")
	}
	if tr.Interner.Len() != got.Interner.Len() {
		t.Fatalf("interner table %d targets, want %d", got.Interner.Len(), tr.Interner.Len())
	}
	for id := core.TargetID(1); int(id) <= tr.Interner.Len(); id++ {
		name := got.Interner.Name(id)
		if tr.Interner.Name(id) != name {
			t.Fatalf("ID %d names %q, want %q", id, name, tr.Interner.Name(id))
		}
		if back, ok := got.Interner.Lookup(name); !ok || back != id {
			t.Fatalf("Lookup(%q) = %d,%v, want %d", name, back, ok, id)
		}
	}
}

// TestReadBinaryMappedConcurrentReaders drives many goroutines over one
// mapped trace — replaying connections, materializing the catalog,
// interning and looking up names — so the race detector can vet the
// mapping-aliased strings and the lazily materialized tables.
func TestReadBinaryMappedConcurrentReaders(t *testing.T) {
	tr := binTestTrace(t)
	path := writeTraceFile(t, tr, 1)
	got, _, err := ReadBinaryMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var bytes int64
			for _, c := range got.Conns {
				for _, b := range c.Batches {
					for _, r := range b {
						bytes += r.Size
						if got.Interner.Name(r.ID) != r.Target {
							t.Errorf("worker %d: ID %d resolves to %q, want %q", w, r.ID, got.Interner.Name(r.ID), r.Target)
							return
						}
					}
				}
			}
			if bytes != tr.Bytes() {
				t.Errorf("worker %d: replayed %d bytes, want %d", w, bytes, tr.Bytes())
			}
			// Exercise the lazily materialized sides concurrently too.
			if len(got.Catalog()) != len(tr.Sizes) {
				t.Errorf("worker %d: catalog has %d entries, want %d", w, len(got.Catalog()), len(tr.Sizes))
			}
			if _, ok := got.Interner.Lookup(got.Conns[w].Batches[0][0].Target); !ok {
				t.Errorf("worker %d: Lookup missed a table target", w)
			}
		}(w)
	}
	wg.Wait()
}

// TestLoadOrGenerateNoMmapMatchesMapped pins the fallback path: the
// copying loader must produce a workload observably identical to the
// zero-copy one.
func TestLoadOrGenerateNoMmapMatchesMapped(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	mapped, hit, err := LoadOrGenerate(dir, cfg)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	copied, hit, err := LoadOrGenerateWith(dir, cfg, LoadOptions{NoMmap: true})
	if err != nil || !hit {
		t.Fatalf("NoMmap: hit=%v err=%v", hit, err)
	}
	if !reflect.DeepEqual(mapped.PHTTP.Conns, copied.PHTTP.Conns) ||
		!reflect.DeepEqual(mapped.Flat.Conns, copied.Flat.Conns) {
		t.Error("NoMmap load differs from mapped load")
	}
	if !reflect.DeepEqual(mapped.PHTTP.Catalog(), copied.PHTTP.Catalog()) {
		t.Error("NoMmap catalog differs from mapped catalog")
	}
}

// TestLoadOrGenerateSharesMapping (white-box) pins the mapping lifetime
// contract of DESIGN.md §14: on mmap platforms the flattened form adopts
// the P-HTTP trace's mapping pin (its shared interner aliases that file),
// and Flatten10 of a mapped trace carries the pin as well.
func TestLoadOrGenerateSharesMapping(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	cfg := cacheTestConfig()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	wl, hit, err := LoadOrGenerate(dir, cfg)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if wl.PHTTP.mapping == nil {
		t.Fatal("mapped cache hit holds no mapping pin")
	}
	if wl.Flat.mapping != wl.PHTTP.mapping {
		t.Error("flattened form does not share the P-HTTP trace's mapping pin")
	}
	if reflat := wl.PHTTP.Flatten10(); reflat.mapping != wl.PHTTP.mapping {
		t.Error("Flatten10 dropped the mapping pin")
	}
}

// TestLoadOrGenerateConcurrentLoaders races two loaders against a cold
// cache. Both must return the identical workload; with flock support the
// loser of the generation lock must load the winner's files as a cache
// hit instead of regenerating (the satellite fix for the duplicate-work
// race — flock contends between goroutines of one process too, since
// locks are per open file description).
func TestLoadOrGenerateConcurrentLoaders(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig()
	type result struct {
		wl  *Workload
		hit bool
		err error
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl, hit, err := LoadOrGenerate(dir, cfg)
			results[i] = result{wl, hit, err}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("loader %d: %v", i, r.err)
		}
		if r.wl.PHTTP.Requests() == 0 {
			t.Fatalf("loader %d returned an empty workload", i)
		}
	}
	if !reflect.DeepEqual(results[0].wl.PHTTP.Conns, results[1].wl.PHTTP.Conns) ||
		!reflect.DeepEqual(results[0].wl.Flat.Conns, results[1].wl.Flat.Conns) {
		t.Error("concurrent loaders returned different workloads")
	}
	if flockSupported {
		hits := 0
		for _, r := range results {
			if r.hit {
				hits++
			}
		}
		if hits != 1 {
			t.Errorf("%d cache hits from two concurrent cold loaders, want exactly 1 (lock serializes generation)", hits)
		}
	}
}
