package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"phttp/internal/core"
)

// clfTimeLayout is the Common Log Format timestamp layout.
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// clfEpoch anchors Micros timestamps when formatting entries; any fixed
// instant works since only time differences matter to reconstruction.
var clfEpoch = time.Date(1998, time.October, 1, 0, 0, 0, 0, time.UTC)

// FormatCLF renders an entry as a Common Log Format line, the format the
// Rice University departmental server logs used.
func FormatCLF(e Entry) string {
	ts := clfEpoch.Add(time.Duration(e.Time) * time.Microsecond)
	return fmt.Sprintf("%s - - [%s] \"GET %s HTTP/1.0\" %d %d",
		e.Client, ts.Format(clfTimeLayout), string(e.Target), e.Status, e.Size)
}

// ParseCLF parses one Common Log Format line. It tolerates the "-" size
// field (zero bytes) and returns an error naming the malformed field
// otherwise.
func ParseCLF(line string) (Entry, error) {
	var e Entry
	// host ident user [date] "request" status size
	host, rest, ok := strings.Cut(line, " ")
	if !ok || host == "" {
		return e, fmt.Errorf("trace: malformed CLF line %q: missing host", line)
	}
	e.Client = host

	lb := strings.IndexByte(rest, '[')
	rb := strings.IndexByte(rest, ']')
	if lb < 0 || rb < lb {
		return e, fmt.Errorf("trace: malformed CLF line %q: missing timestamp", line)
	}
	ts, err := time.Parse(clfTimeLayout, rest[lb+1:rb])
	if err != nil {
		return e, fmt.Errorf("trace: malformed CLF timestamp: %w", err)
	}
	e.Time = core.Micros(ts.Sub(clfEpoch) / time.Microsecond)

	rest = rest[rb+1:]
	q1 := strings.IndexByte(rest, '"')
	if q1 < 0 {
		return e, fmt.Errorf("trace: malformed CLF line %q: missing request", line)
	}
	q2 := strings.IndexByte(rest[q1+1:], '"')
	if q2 < 0 {
		return e, fmt.Errorf("trace: malformed CLF line %q: unterminated request", line)
	}
	reqLine := rest[q1+1 : q1+1+q2]
	parts := strings.Fields(reqLine)
	if len(parts) < 2 {
		return e, fmt.Errorf("trace: malformed CLF request %q", reqLine)
	}
	e.Target = core.Target(parts[1])

	tail := strings.Fields(rest[q1+q2+2:])
	if len(tail) < 2 {
		return e, fmt.Errorf("trace: malformed CLF line %q: missing status/size", line)
	}
	st, err := strconv.Atoi(tail[0])
	if err != nil {
		return e, fmt.Errorf("trace: malformed CLF status %q", tail[0])
	}
	e.Status = st
	if tail[1] == "-" {
		e.Size = 0
	} else {
		sz, err := strconv.ParseInt(tail[1], 10, 64)
		if err != nil {
			return e, fmt.Errorf("trace: malformed CLF size %q", tail[1])
		}
		e.Size = sz
	}
	return e, nil
}

// ReadCLF parses a stream of CLF lines, skipping blank lines. Malformed
// lines are counted and skipped (real server logs contain junk); the count
// is returned alongside the entries.
func ReadCLF(r io.Reader) (entries []Entry, malformed int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, perr := ParseCLF(line)
		if perr != nil {
			malformed++
			continue
		}
		entries = append(entries, e)
	}
	return entries, malformed, sc.Err()
}

// WriteCLF writes entries as CLF lines.
func WriteCLF(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := bw.WriteString(FormatCLF(e)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
