package trace

import (
	"os"
	"reflect"
	"testing"
)

func cacheTestConfig() SynthConfig {
	cfg := SmallSynthConfig()
	cfg.Connections = 500
	return cfg
}

func TestLoadOrGenerateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig()

	cold, hit, err := LoadOrGenerate(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("empty cache dir reported a hit")
	}
	warm, hit, err := LoadOrGenerate(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second load missed the cache")
	}
	if !reflect.DeepEqual(cold.PHTTP.Conns, warm.PHTTP.Conns) ||
		!reflect.DeepEqual(cold.PHTTP.Catalog(), warm.PHTTP.Catalog()) {
		t.Error("cached P-HTTP trace differs from generated")
	}
	if warm.Flat == nil {
		t.Fatal("cache hit did not load the flattened form")
	}
	if !reflect.DeepEqual(cold.Flat.Conns, warm.Flat.Conns) {
		t.Error("cached flattened trace differs from generated")
	}
	// And the cached workload equals a fresh generation from scratch.
	ref := NewSynth(cfg).Generate()
	if !reflect.DeepEqual(ref.Conns, warm.PHTTP.Conns) {
		t.Error("cached trace differs from a fresh Generate")
	}
}

func TestLoadOrGenerateRegeneratesOnCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	pPath, _ := CachePaths(dir, cfg)
	data, err := os.ReadFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(pPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wl, hit, err := LoadOrGenerate(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("corrupt cache entry reported a hit")
	}
	if wl.PHTTP.Requests() == 0 {
		t.Error("regenerated workload is empty")
	}
	// The rewrite must heal the cache.
	if _, hit, err := LoadOrGenerate(dir, cfg); err != nil || !hit {
		t.Errorf("cache not healed after corruption: hit=%v err=%v", hit, err)
	}
}

// TestLoadOrGenerateSharesTables pins the Flatten10 sharing semantics of
// a cache hit: the loaded flattened form adopts the P-HTTP trace's
// interner (and sizes map) rather than rebuilding equal copies.
func TestLoadOrGenerateSharesTables(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	wl, hit, err := LoadOrGenerate(dir, cfg)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if wl.Flat.Interner != wl.PHTTP.Interner {
		t.Error("cache hit rebuilt the flattened form's interner instead of sharing")
	}
}

// TestLoadOrGenerateRejectsMismatchedPair corrupts the pairing itself:
// a flattened file from a different workload (valid checksum, forged
// config hash) must not be adopted against the P-HTTP table.
func TestLoadOrGenerateRejectsMismatchedPair(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 1234
	imposter := NewSynth(other).Generate().Flatten10()
	_, fPath := CachePaths(dir, cfg)
	f, err := os.Create(fPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBinary(f, imposter, ConfigHash(cfg)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	wl, hit, err := LoadOrGenerate(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("mismatched pair reported a cache hit")
	}
	ref := NewSynth(cfg).Generate()
	if !reflect.DeepEqual(ref.Conns, wl.PHTTP.Conns) {
		t.Error("regenerated workload differs from fresh generation")
	}
}

func TestLoadOrGenerateDistinguishesConfigs(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig()
	if _, _, err := LoadOrGenerate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 99
	if _, hit, err := LoadOrGenerate(dir, other); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("different seed hit the same cache entry")
	}
}

func TestConfigHashNormalizesDefaults(t *testing.T) {
	a := cacheTestConfig()
	b := a
	b.BlockSize = DefaultBlockSize
	b.GenVersion = GenVersionBlocks
	b.MaxBatch = 4
	a.BlockSize, a.GenVersion = 0, 0
	if ConfigHash(a) != ConfigHash(b) {
		t.Error("zero defaults and explicit defaults hash differently")
	}
	c := a
	c.BlockSize = 128
	if ConfigHash(a) == ConfigHash(c) {
		t.Error("BlockSize not part of the cache key")
	}
	d := a
	d.Connections++
	if ConfigHash(a) == ConfigHash(d) {
		t.Error("Connections not part of the cache key")
	}
}

func TestWorkloadFlattenMemoizes(t *testing.T) {
	wl := NewWorkload(NewSynth(cacheTestConfig()).Generate())
	f1 := wl.Flatten()
	if f1 == nil || len(f1.Conns) != wl.PHTTP.Requests() {
		t.Fatal("Flatten did not produce the HTTP/1.0 form")
	}
	if wl.Flatten() != f1 {
		t.Error("Flatten re-derived instead of memoizing")
	}
}
