// Package amfix is the atomicmix golden fixture: the hits and total
// fields are accessed through sync/atomic, so every plain read, write
// or keyed-literal initialization of them must be flagged. Fields never
// touched atomically (cold), fields of the modern atomic.Int64 types,
// and non-eligible field types stay silent.
package amfix

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
	cold  int64
	name  string
	mod   atomic.Int64
}

func (c *counters) recordHit() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
	c.mod.Add(1)
}

func (c *counters) Hits() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) reset() {
	c.hits = 0  // want "non-atomic access to field phttp/internal/lint/testdata/amfix.counters.hits"
	c.cold = 0  // legal: cold is never accessed atomically
	c.name = "" // legal: strings are not atomics
}

func (c *counters) snapshot() counters {
	return counters{
		hits:  atomic.LoadInt64(&c.hits), // want "non-atomic access to field phttp/internal/lint/testdata/amfix.counters.hits"
		total: c.total,                   // want "non-atomic access to field phttp/internal/lint/testdata/amfix.counters.total" "non-atomic access to field phttp/internal/lint/testdata/amfix.counters.total"
	}
}

// shards proves array fields work: &s.lanes[i] marks the whole field.
type shards struct {
	lanes [8]uint64
}

func (s *shards) bump(i int) {
	atomic.AddUint64(&s.lanes[i], 1)
}

func (s *shards) drain() uint64 {
	var sum uint64
	_ = len(s.lanes)         // legal: len of an array field reads no values
	for i := range s.lanes { // legal: index-only range reads no values
		sum += s.lanes[i] // want "non-atomic access to field phttp/internal/lint/testdata/amfix.shards.lanes"
	}
	return sum
}
