// Package rpfix is the refpair golden fixture. The counter type below
// carries the core.RefCounter shape — Acquire(T)/Release(T), one
// identical parameter, no results — so the analyzer matches it
// structurally without importing phttp packages. Every function that
// can return still holding a reference must be flagged; balanced,
// deferred, panicking and //phttp:holds paths must stay silent.
package rpfix

import "errors"

var errFail = errors.New("rpfix: fail")

type counter struct{ refs map[int]int }

func (c *counter) Acquire(id int) { c.refs[id]++ }
func (c *counter) Release(id int) { c.refs[id]-- }

// resource has Release but no Acquire: not refcounter-shaped, so its
// Release must not be credited (false-positive guard mirroring
// simcore.Resource).
type resource struct{}

func (resource) Release() {}

func balanced(c *counter, id int) {
	c.Acquire(id)
	c.Release(id)
}

func deferred(c *counter, id int) error {
	c.Acquire(id)
	defer c.Release(id)
	return errFail
}

func deferredClosure(c *counter, id int) {
	c.Acquire(id)
	defer func() {
		c.Release(id)
	}()
}

func earlyReturnLeak(c *counter, id int, fail bool) error {
	c.Acquire(id)
	if fail {
		return errFail // want "earlyReturnLeak returns holding 1 unreleased"
	}
	c.Release(id)
	return nil
}

func fallOffLeak(c *counter, id int) {
	c.Acquire(id)
} // want "fallOffLeak returns holding 1 unreleased"

func doubleLeak(c *counter, a, b int) {
	c.Acquire(a)
	c.Acquire(b)
	c.Release(a)
} // want "doubleLeak returns holding 1 unreleased"

func branchBalanced(c *counter, id int, fast bool) {
	c.Acquire(id)
	if fast {
		c.Release(id)
		return
	}
	c.Release(id)
}

func loopBalanced(c *counter, ids []int) {
	for _, id := range ids {
		c.Acquire(id)
		c.Release(id)
	}
}

func loopLeak(c *counter, ids []int) {
	for _, id := range ids {
		c.Acquire(id)
	}
} // want "loopLeak returns holding 1 unreleased"

func panicPath(c *counter, id int, bad bool) {
	c.Acquire(id)
	if bad {
		panic("rpfix: bad id") // legal: panicking paths are not charged
	}
	c.Release(id)
}

func switchLeak(c *counter, id, mode int) {
	c.Acquire(id)
	switch mode {
	case 0:
		c.Release(id)
	case 1:
		return // want "switchLeak returns holding 1 unreleased"
	default:
		c.Release(id)
	}
}

// table keeps the reference until evicted; Release happens there.
//
//phttp:holds escapes into the pinned table, released on evict
func escapeIntoTable(c *counter, table map[int]bool, id int) {
	c.Acquire(id)
	table[id] = true
}

func notRefcounter(r resource) {
	r.Release() // legal: resource is not Acquire/Release-paired
}

func acquireInCondition(c *counter, id int, t *counter) {
	c.Acquire(id)
	if t != nil {
		t.Acquire(id)
		t.Release(id)
	}
	c.Release(id)
}

func selectBalanced(c *counter, id int, ch chan int) {
	c.Acquire(id)
	select {
	case v := <-ch:
		_ = v
		c.Release(id)
	case ch <- id:
		c.Release(id)
	default:
		c.Release(id)
	}
}

func selectLeak(c *counter, id int, ch chan int) {
	c.Acquire(id)
	select {
	case <-ch:
		c.Release(id)
	default:
	}
} // want "selectLeak returns holding 1 unreleased"

func typeSwitchBalanced(c *counter, id int, v any) {
	c.Acquire(id)
	switch v.(type) {
	case int:
		c.Release(id)
	default:
		c.Release(id)
	}
}

func switchInitTagBalanced(c *counter, id int) {
	c.Acquire(id)
	switch m := id % 2; m {
	case 0:
		c.Release(id)
	default:
		c.Release(id)
	}
}

func forPostBalanced(c *counter, n int) {
	for i := 0; i < n; i++ {
		c.Acquire(i)
		c.Release(i)
	}
}

func assignAndBranchStmts(c *counter, id int) {
	c.Acquire(id)
	x := id + 1
	x++
loop:
	for i := 0; i < x; i++ {
		if i > 2 {
			break loop
		}
		continue
	}
	var decl int
	_ = decl
	c.Release(id)
}

func goStmtOwnProblem(c *counter, id int, ch chan int) {
	c.Acquire(id)
	// The goroutine's own holds are charged to its function literal, not
	// to the spawner.
	go func() { ch <- id }()
	c.Release(id)
	ch <- id
}

func ifInitElseBalanced(c *counter, id int) {
	c.Acquire(id)
	if v := id * 2; v > 2 {
		c.Release(id)
	} else {
		c.Release(id)
	}
}

func switchNoDefaultBalanced(c *counter, id, mode int) {
	c.Acquire(id)
	switch mode {
	case 0:
	case 1:
	}
	switch {
	}
	c.Release(id)
}

func selectForeverAfterBalance(c *counter, id int) {
	c.Acquire(id)
	c.Release(id)
	select {}
}

// lopsided has an Acquire but a Release with a different parameter
// type, so it is not refcounter-shaped and must never be charged.
type lopsided struct{}

func (lopsided) Acquire(id int)   {}
func (lopsided) Release(s string) {}

func lopsidedGuard(l lopsided) {
	l.Acquire(1) // legal: not a refcounter shape, no pairing required
}

func closureReleaseNotCredited(c *counter, id int) func() {
	c.Acquire(id)
	f := func() { c.Release(id) } // the closure's release is deferred work...
	c.Release(id)                 // ...this is the balancing release
	return f
}

func twoStatesOneExit(c *counter, id int, deep bool) {
	c.Acquire(id)
	if deep {
		c.Acquire(id)
		c.Release(id)
	}
} // want "twoStatesOneExit returns holding 1 unreleased"
