// Package ndfix is the nondeterm golden fixture: it is type-checked
// under an import path inside DeterminismPaths, so every wall-clock
// read, global-RNG draw and order-leaking map iteration below must be
// diagnosed — and every line without a want comment must stay silent
// (the false-positive guard).
package ndfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "wall-clock read time.Now"
	d := time.Duration(5) * time.Millisecond
	_ = time.Since(t) // want "wall-clock read time.Since"
	_ = d
	return t.UnixNano()
}

func timers() {
	_ = time.NewTicker(time.Second) // want "wall-clock read time.NewTicker"
	_ = time.Unix(0, 42)            // legal: pure construction from inputs
}

//phttp:wallclock benchmarks measure real elapsed time
func excusedFunc() time.Time {
	return time.Now()
}

func excusedLineAbove() time.Time {
	//phttp:wallclock maintenance ticker
	return time.Now()
}

func excusedSameLine() time.Time {
	return time.Now() //phttp:wallclock ticker
}

func globalRand() int {
	n := rand.Intn(10)                 // want "global math/rand draw rand.Intn"
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand draw rand.Shuffle"
	r := rand.New(rand.NewSource(42))  // legal: explicitly seeded generator
	return n + r.Intn(10)
}

func mapOrderLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // legal: sorted before use below
	}
	sort.Strings(keys)
	return keys
}

func collectThenLocalSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // legal: sortTargets-style helper below
	}
	sortNames(keys)
	return keys
}

func sortNames(s []string) { sort.Strings(s) }

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output call Println inside map iteration"
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation inside map iteration"
	}
	return sum
}

func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // legal: integer addition commutes exactly
	}
	return n
}

func chanSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

func keyedStore(m, dst map[string]int) {
	for k, v := range m {
		dst[k] = v // legal: keyed stores commute
	}
}

func sliceRange(xs []string, ch chan string) {
	for _, x := range xs {
		ch <- x // legal: slice iteration is ordered
	}
}

// mapRangeAppendGuards: append forms that must stay silent — a
// loop-local collector is dead on exit, and a non-identifier append
// target is conservatively skipped.
func mapRangeAppendGuards(m map[int]int, s *[]int) int {
	total := 0
	for k := range m {
		local := append([]int{}, k) // legal: loop-local collector
		total += len(local)
		*s = append(*s, 0) // conservatively skipped: non-identifier target, constant element
	}
	return total
}
