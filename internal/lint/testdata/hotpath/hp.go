// Package hpfix is the hotpath golden fixture: functions annotated
// //phttp:hotpath must reject every allocation idiom below, while the
// unannotated and pointer/constant cases stay silent (false-positive
// guards for the Action-payload contract: pointers and constants box
// for free).
package hpfix

import (
	"fmt"
	"log"
)

type ring struct{ vals []int64 }

//phttp:hotpath
func hotClosure(r *ring, n int64) func() {
	f := func() { r.vals = append(r.vals, n) } // want "closure capturing \"r\" in hot path hotClosure"
	return f
}

//phttp:hotpath
func hotStaticClosure() func() int {
	return func() int { return 42 } // legal: captures nothing
}

//phttp:hotpath
func hotFmt(id int64) string {
	return fmt.Sprintf("id:%d", 0) // want "fmt.Sprintf call in hot path hotFmt"
}

//phttp:hotpath
func hotLog(msg *string) {
	log.Println(msg) // want "log.Println call in hot path hotLog"
}

//phttp:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation in hot path hotConcat"
}

//phttp:hotpath
func hotConcatAssign(a, b string) string {
	a += b // want "string concatenation in hot path hotConcatAssign"
	return a
}

//phttp:hotpath
func hotConstConcat() string {
	return "phttp/" + "v1" // legal: constant-folded at compile time
}

//phttp:hotpath
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal in hot path hotMapLit"
}

//phttp:hotpath
func hotBoxArg(sink func(any), v int64) {
	sink(v) // want "interface boxing of non-pointer int64 value \\(argument\\) in hot path hotBoxArg"
}

//phttp:hotpath
func hotBoxPtr(sink func(any), r *ring) {
	sink(r) // legal: pointers fit the interface word
}

//phttp:hotpath
func hotBoxConst(sink func(any)) {
	sink("static") // legal: constants box into static data
}

//phttp:hotpath
func hotBoxNil(sink func(any)) {
	sink(nil) // legal
}

//phttp:hotpath
func hotPanicConst(ok bool) {
	if !ok {
		panic("hpfix: invariant broken") // legal: constant panic payload
	}
}

//phttp:hotpath
func hotPanicBox(id int64, ok bool) {
	if !ok {
		panic(id) // want "interface boxing of non-pointer int64 value \\(panic argument\\) in hot path hotPanicBox"
	}
}

//phttp:hotpath
func hotConvert(v float64) any {
	return any(v) // want "interface boxing of non-pointer float64 value \\(conversion to interface\\) in hot path hotConvert"
}

//phttp:hotpath
func hotAssignBox(v int32) {
	var x any = v // want "interface boxing of non-pointer int32 value \\(assignment to interface\\) in hot path hotAssignBox"
	_ = x
}

//phttp:hotpath
func hotReturnBox(v struct{ a, b int64 }) any {
	return v // want "interface boxing of non-pointer struct.* \\(return of interface result\\) in hot path hotReturnBox"
}

//phttp:hotpath
func hotReturnIface(x any) any {
	return x // legal: already an interface, no re-boxing
}

//phttp:hotpath
func hotVariadicForward(xs []any) {
	consume(xs...) // legal: forwarding an existing slice
}

func consume(...any) {}

func coldSprintf(id int64) string {
	return fmt.Sprintf("id %d", id) // legal: not annotated, cold helper
}

//phttp:frobnicate a typo'd directive must fail loudly // want "unknown directive //phttp:frobnicate"
func typodDirective() {}
