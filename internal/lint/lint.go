// Package lint implements phttp-lint: a suite of repo-specific static
// analyzers that prove, at build time, the invariants the test suite can
// only sample — deterministic simulation (no wall-clock or global-RNG
// reads in determinism-critical packages), zero-allocation hot paths
// (functions annotated //phttp:hotpath), paired interner reference
// counting (every Acquire released on every return path or escaped with
// //phttp:holds), and unmixed atomic field access (a field touched by
// sync/atomic anywhere is touched by it everywhere).
//
// The suite is deliberately framework-light: the container this repo is
// grown in has no network and no golang.org/x/tools, so a ~200-line
// stdlib-only core (go/parser + go/types, dependencies imported from
// compiler export data via `go list -export`) stands in for
// go/analysis. The analyzer API mirrors go/analysis closely (Analyzer,
// Pass, Diagnostic, `// want` golden tests) so a future PR can swap the
// chassis for the real multichecker without touching analyzer logic.
// DESIGN.md §17 is the catalog and directive reference.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding, carrying a resolved position so
// reports survive across packages and (in vettool mode) across processes.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package through one analyzer, go/analysis style.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// FactSet is the cross-package state of an analyzer that cannot decide
// per package (atomicmix): Run accumulates into it, Finish reports from
// it, and the vettool driver serializes it between compilation units.
type FactSet interface {
	// Export serializes the facts gathered so far.
	Export() ([]byte, error)
	// Import merges a previously exported fact set.
	Import([]byte) error
}

// Analyzer is one named check. Run is invoked once per package; Finish,
// when set, once after every package has been seen (cross-package
// analyzers report there). Analyzers are stateful per suite instance —
// always analyze with a fresh NewSuite().
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// Finish reports diagnostics that need the whole program.
	Finish func(report func(Diagnostic)) error

	// Facts, when non-nil, exposes the analyzer's cross-package state
	// for the vettool driver.
	Facts FactSet
}

// NewSuite returns fresh instances of the four phttp analyzers, in
// stable order: nondeterm, hotpath, refpair, atomicmix.
func NewSuite() []*Analyzer {
	return []*Analyzer{
		NewNondeterm(),
		NewHotpath(),
		NewRefpair(),
		NewAtomicmix(),
	}
}

// Run applies every analyzer to every package, then runs the Finish
// hooks, returning all diagnostics sorted by position. Analyzer errors
// (not diagnostics) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		checkDirectives(pkg, report)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		if err := a.Finish(report); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// checkDirectives rejects unknown names in the //phttp: namespace, so a
// typo (//phttp:wallclok) fails the build instead of silently opting a
// site out of its analyzer.
func checkDirectives(pkg *Package, report func(Diagnostic)) {
	known := map[string]bool{DirHotpath: true, DirWallclock: true, DirHolds: true}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseDirective(c)
				if name == "" || known[name] {
					continue
				}
				report(Diagnostic{
					Pos:      pkg.Fset.Position(c.Pos()),
					Message:  fmt.Sprintf("unknown directive //phttp:%s (known: hotpath, wallclock, holds)", name),
					Analyzer: "directive",
				})
			}
		}
	}
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — the stable order every consumer (CLI, tests, CI) prints in.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ByName returns the analyzers whose names are in sel (comma-free,
// already split); unknown names error so a CI typo cannot silently run
// nothing.
func ByName(all []*Analyzer, sel []string) ([]*Analyzer, error) {
	if len(sel) == 0 {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range sel {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
