package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //phttp: directive namespace (DESIGN.md §17.2). A directive is a
// single line comment of the form
//
//	//phttp:<name>            e.g. //phttp:hotpath
//	//phttp:<name> <reason>   free-text rationale after the first space
//
// attached either to a declaration (in its doc comment) or to a
// statement (on the same line, or alone on the line directly above).
const (
	// DirHotpath marks a function whose body must stay allocation-free:
	// the hotpath analyzer rejects closures that capture, fmt/log calls,
	// string concatenation, map literals, and interface boxing of
	// non-pointer values inside it.
	DirHotpath = "hotpath"

	// DirWallclock excuses one wall-clock read (time.Now and friends) in
	// a determinism-critical package — benchmarks measuring real elapsed
	// time, maintenance tickers.
	DirWallclock = "wallclock"

	// DirHolds marks a function that legitimately keeps an acquired
	// interner reference beyond its return — it escapes the hold into a
	// tracked table (a cache or mapping that releases on evict).
	DirHolds = "holds"
)

const directivePrefix = "//phttp:"

// parseDirective splits one comment into a directive name, or "" when
// the comment is not a phttp directive.
func parseDirective(c *ast.Comment) string {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return ""
	}
	rest := c.Text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// funcDirective reports whether fn's doc comment carries the named
// directive.
func funcDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if parseDirective(c) == name {
			return true
		}
	}
	return false
}

// lineDirectives indexes every directive comment in a file by line, so
// statement-level opt-outs can be resolved in O(1) per node.
type lineDirectives struct {
	fset  *token.FileSet
	lines map[int]map[string]bool
}

func newLineDirectives(fset *token.FileSet, file *ast.File) *lineDirectives {
	ld := &lineDirectives{fset: fset, lines: map[int]map[string]bool{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name := parseDirective(c)
			if name == "" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if ld.lines[line] == nil {
				ld.lines[line] = map[string]bool{}
			}
			ld.lines[line][name] = true
		}
	}
	return ld
}

// excused reports whether the named directive appears on pos's line or
// the line directly above it.
func (ld *lineDirectives) excused(pos token.Pos, name string) bool {
	line := ld.fset.Position(pos).Line
	return ld.lines[line][name] || ld.lines[line-1][name]
}
