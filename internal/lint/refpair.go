package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewRefpair returns the refpair analyzer: a function that acquires an
// interner reference must release it on every return path, or be
// annotated //phttp:holds because it escapes the hold into a tracked
// table (a cache that releases on evict).
//
// Matching is structural, not nominal: a call counts as an acquire
// (release) when it invokes a method named Acquire (Release) on a
// receiver whose method set carries the core.RefCounter shape — both
// Acquire(T) and Release(T) for the same single parameter type T. That
// covers *core.Interner, the core.RefCounter interface, and any future
// refcounter without the analyzer needing to import phttp packages.
//
// The flow analysis is a conservative abstract interpretation over the
// statement tree: branches fork the held-reference count, loops run
// zero-or-once (an unbalanced loop body therefore surfaces at the next
// exit), deferred releases credit every later exit, and paths ending in
// panic or a release-free os.Exit are not charged. Releases routed
// through helpers the analyzer cannot see into are treated as missing —
// annotate such functions //phttp:holds with a reason.
func NewRefpair() *Analyzer {
	a := &Analyzer{
		Name: "refpair",
		Doc:  "every interner Acquire must be Released on all return paths or escape via //phttp:holds",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkRefpairFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

// refState is one abstract path state: references currently held and
// releases already deferred (defers credit every exit reached after
// them).
type refState struct {
	held     int
	deferred int
}

func checkRefpairFunc(pass *Pass, fn *ast.FuncDecl) {
	if !containsAcquire(pass, fn.Body) {
		return
	}
	if funcDirective(fn, DirHolds) {
		return
	}
	ev := &refpairEval{pass: pass, fn: fn}
	final := ev.evalStmts(fn.Body.List, []refState{{}})
	ev.checkExit(fn.Body.End(), final)
}

func containsAcquire(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && refcountDelta(pass, call) > 0 {
			found = true
		}
		return !found
	})
	return found
}

// refcountDelta classifies a call: +1 for a refcounter Acquire, -1 for
// a Release, 0 otherwise.
func refcountDelta(pass *Pass, call *ast.CallExpr) int {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return 0
	}
	name := sel.Sel.Name
	if name != "Acquire" && name != "Release" {
		return 0
	}
	if !refCounterShaped(selection.Recv()) {
		return 0
	}
	if name == "Acquire" {
		return 1
	}
	return -1
}

// refCounterShaped reports whether t's method set carries Acquire(T)
// and Release(T) with one identical parameter type and no results.
func refCounterShaped(t types.Type) bool {
	acquire := methodSig(t, "Acquire")
	release := methodSig(t, "Release")
	if acquire == nil || release == nil {
		return false
	}
	if acquire.Params().Len() != 1 || release.Params().Len() != 1 {
		return false
	}
	if acquire.Results().Len() != 0 || release.Results().Len() != 0 {
		return false
	}
	return types.Identical(acquire.Params().At(0).Type(), release.Params().At(0).Type())
}

func methodSig(t types.Type, name string) *types.Signature {
	ms := types.NewMethodSet(t)
	if _, isIface := t.Underlying().(*types.Interface); !isIface {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for i := 0; i < ms.Len(); i++ {
		if m := ms.At(i); m.Obj().Name() == name {
			if sig, ok := m.Obj().Type().(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

type refpairEval struct {
	pass     *Pass
	fn       *ast.FuncDecl
	reported map[int]bool // dedupe by line
}

// evalStmts threads the state set through a statement list. An empty
// state set means every path already exited.
func (ev *refpairEval) evalStmts(stmts []ast.Stmt, states []refState) []refState {
	for _, s := range stmts {
		states = ev.evalStmt(s, states)
		if len(states) == 0 {
			break
		}
	}
	return states
}

func (ev *refpairEval) evalStmt(s ast.Stmt, states []refState) []refState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return ev.evalStmts(s.List, states)
	case *ast.ReturnStmt:
		states = ev.applyExprs(states, s.Results...)
		ev.checkExit(s.Pos(), states)
		return nil
	case *ast.DeferStmt:
		return ev.evalDefer(s, states)
	case *ast.IfStmt:
		if s.Init != nil {
			states = ev.evalStmt(s.Init, states)
		}
		states = ev.applyExprs(states, s.Cond)
		thenOut := ev.evalStmt(s.Body, states)
		elseOut := states
		if s.Else != nil {
			elseOut = ev.evalStmt(s.Else, states)
		}
		return mergeStates(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			states = ev.evalStmt(s.Init, states)
		}
		if s.Cond != nil {
			states = ev.applyExprs(states, s.Cond)
		}
		once := ev.evalStmt(s.Body, states)
		if s.Post != nil {
			once = ev.evalStmt(s.Post, once)
		}
		return mergeStates(states, once)
	case *ast.RangeStmt:
		states = ev.applyExprs(states, s.X)
		return mergeStates(states, ev.evalStmt(s.Body, states))
	case *ast.SwitchStmt:
		return ev.evalCases(s.Init, s.Tag, s.Body, states)
	case *ast.TypeSwitchStmt:
		return ev.evalCases(s.Init, nil, s.Body, states)
	case *ast.SelectStmt:
		var out []refState
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			branch := states
			if cc.Comm != nil {
				branch = ev.evalStmt(cc.Comm, branch)
			}
			out = mergeStates(out, ev.evalStmts(cc.Body, branch))
		}
		if !hasDefault && len(s.Body.List) == 0 {
			return states
		}
		if out == nil {
			out = states
		}
		return out
	case *ast.LabeledStmt:
		return ev.evalStmt(s.Stmt, states)
	case *ast.ExprStmt:
		if isTerminalCall(ev.pass, s.X) {
			return nil // panic/os.Exit: holds are moot on this path
		}
		return ev.applyExprs(states, s.X)
	case *ast.AssignStmt:
		states = ev.applyExprs(states, s.Rhs...)
		return ev.applyExprs(states, s.Lhs...)
	case *ast.GoStmt:
		return states // the goroutine's holds are its own function's problem
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		return ev.applyNode(states, s)
	default:
		return ev.applyNode(states, s)
	}
}

func (ev *refpairEval) evalCases(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, states []refState) []refState {
	if init != nil {
		states = ev.evalStmt(init, states)
	}
	if tag != nil {
		states = ev.applyExprs(states, tag)
	}
	var out []refState
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		out = mergeStates(out, ev.evalStmts(cc.Body, states))
	}
	if !hasDefault {
		out = mergeStates(out, states)
	}
	if out == nil {
		out = states
	}
	return out
}

func (ev *refpairEval) evalDefer(s *ast.DeferStmt, states []refState) []refState {
	releases := 0
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && refcountDelta(ev.pass, call) < 0 {
				releases++
			}
			return true
		})
	} else if refcountDelta(ev.pass, s.Call) < 0 {
		releases = 1
	}
	out := make([]refState, len(states))
	for i, st := range states {
		st.deferred += releases
		out[i] = st
	}
	return out
}

// applyExprs folds the acquire/release effect of every call inside the
// expressions (skipping nested function literals) into each state.
func (ev *refpairEval) applyExprs(states []refState, exprs ...ast.Expr) []refState {
	delta := 0
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				delta += refcountDelta(ev.pass, call)
			}
			return true
		})
	}
	if delta == 0 {
		return states
	}
	out := make([]refState, len(states))
	for i, st := range states {
		st.held += delta
		out[i] = st
	}
	return out
}

// applyNode is applyExprs over a whole statement that has no control
// flow of its own.
func (ev *refpairEval) applyNode(states []refState, n ast.Node) []refState {
	delta := 0
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			delta += refcountDelta(ev.pass, call)
		}
		return true
	})
	if delta == 0 {
		return states
	}
	out := make([]refState, len(states))
	for i, st := range states {
		st.held += delta
		out[i] = st
	}
	return out
}

// checkExit reports when any path state reaches an exit still holding
// references the deferred releases cannot cover.
func (ev *refpairEval) checkExit(pos token.Pos, states []refState) {
	for _, st := range states {
		if st.held-st.deferred > 0 {
			line := ev.pass.Fset.Position(pos).Line
			if ev.reported == nil {
				ev.reported = map[int]bool{}
			}
			if ev.reported[line] {
				return
			}
			ev.reported[line] = true
			ev.pass.Reportf(pos, "%s returns holding %d unreleased refcounter reference(s) on some path: release on every return, defer the release, or annotate //phttp:holds with a reason", ev.fn.Name.Name, st.held-st.deferred)
			return
		}
	}
}

// isTerminalCall reports calls that never return: panic and os.Exit.
func isTerminalCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	pkgPath, name := pkgFunc(pass, call)
	return pkgPath == "os" && name == "Exit"
}

// mergeStates unions two state sets, deduplicating identical states so
// branchy functions stay linear.
func mergeStates(a, b []refState) []refState {
	out := append([]refState(nil), a...)
	for _, st := range b {
		dup := false
		for _, have := range out {
			if have == st {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, st)
		}
	}
	return out
}
