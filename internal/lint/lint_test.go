package lint_test

import (
	"errors"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phttp/internal/lint"
	"phttp/internal/lint/linttest"
)

// repoRoot is the module root, two levels up from internal/lint.
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(abs, "go.mod")); err != nil {
		t.Fatalf("expected go.mod at %s: %v", abs, err)
	}
	return abs
}

// The four golden suites: each fixture seeds every violation class its
// analyzer must catch and keeps clean lines as false-positive guards.

func TestNondetermGolden(t *testing.T) {
	// The fixture is checked under a determinism-scoped import path;
	// nondeterm only fires inside lint.DeterminismPaths.
	linttest.Run(t, "testdata/nondeterm", "phttp/internal/sim/ndfix", lint.NewNondeterm())
}

func TestHotpathGolden(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", "phttp/internal/lint/testdata/hpfix", lint.NewHotpath())
}

func TestRefpairGolden(t *testing.T) {
	linttest.Run(t, "testdata/refpair", "phttp/internal/lint/testdata/rpfix", lint.NewRefpair())
}

func TestAtomicmixGolden(t *testing.T) {
	linttest.Run(t, "testdata/atomicmix", "phttp/internal/lint/testdata/amfix", lint.NewAtomicmix())
}

// TestNondetermOutOfScope proves the scope gate: the same fixture full
// of wall-clock reads and RNG draws is silent when its import path is
// outside DeterminismPaths.
func TestNondetermOutOfScope(t *testing.T) {
	files, err := filepath.Glob("testdata/nondeterm/*.go")
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files: %v", err)
	}
	diags := linttest.Check(t, repoRoot(t), files, "phttp/internal/cluster/ndfix", lint.NewNondeterm())
	if len(diags) != 0 {
		t.Fatalf("nondeterm fired outside DeterminismPaths: %v", diags)
	}
}

// TestRepoClean is the self-hosting gate: the full analyzer suite over
// every package in the module must come back clean. This is the same
// run `make lint-phttp` and CI perform via cmd/phttp-lint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root := repoRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("load module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.NewSuite())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestInjectedDispatchViolation is the acceptance check from the issue:
// copy the real dispatch package aside, inject a fmt.Sprintf into a
// //phttp:hotpath function, and prove the hotpath analyzer rejects it.
func TestInjectedDispatchViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks a package copy")
	}
	root := repoRoot(t)
	srcDir := filepath.Join(root, "internal", "dispatch")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	var files []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(tmp, name)
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, dst)
	}
	injected := filepath.Join(tmp, "injected.go")
	src := `package dispatch

import "fmt"

//phttp:hotpath
func injectedSprintf(n int64) string { return fmt.Sprintf("conn %d", n) }
`
	if err := os.WriteFile(injected, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	files = append(files, injected)

	diags := linttest.Check(t, root, files, "phttp/internal/dispatch", lint.NewSuite()...)
	found := false
	for _, d := range diags {
		if d.Analyzer == "hotpath" && strings.Contains(d.Message, "fmt.Sprintf") &&
			strings.Contains(d.Message, "injectedSprintf") {
			found = true
		} else {
			// The copy of the real package must otherwise stay clean.
			t.Errorf("unexpected diagnostic on dispatch copy: %s", d)
		}
	}
	if !found {
		t.Fatal("injected fmt.Sprintf in an annotated dispatch function was not diagnosed")
	}
}

// TestByName covers the analyzer selection used by cmd/phttp-lint's
// -analyzers flag.
func TestByName(t *testing.T) {
	suite := lint.NewSuite()
	sel, err := lint.ByName(suite, []string{"hotpath", "refpair"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "hotpath" || sel[1].Name != "refpair" {
		t.Fatalf("wrong selection: %v", sel)
	}
	if _, err := lint.ByName(suite, []string{"nosuch"}); err == nil {
		t.Fatal("expected error for unknown analyzer name")
	}
}

// TestAtomicmixFactRoundTrip proves the vettool fact transport: facts
// exported after analyzing the fixture, imported into a fresh analyzer
// instance, must reproduce the exact same Finish diagnostics.
func TestAtomicmixFactRoundTrip(t *testing.T) {
	files, err := filepath.Glob("testdata/atomicmix/*.go")
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files: %v", err)
	}
	am := lint.NewAtomicmix()
	direct := linttest.Check(t, repoRoot(t), files, "phttp/internal/lint/testdata/amfix", am)
	if len(direct) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	blob, err := am.Facts.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	am2 := lint.NewAtomicmix()
	if err := am2.Facts.Import(blob); err != nil {
		t.Fatalf("import: %v", err)
	}
	var replayed []lint.Diagnostic
	if err := am2.Finish(func(d lint.Diagnostic) { replayed = append(replayed, d) }); err != nil {
		t.Fatalf("finish: %v", err)
	}
	lint.SortDiagnostics(replayed)
	if len(replayed) != len(direct) {
		t.Fatalf("round trip changed diagnostic count: %d vs %d", len(replayed), len(direct))
	}
	for i := range direct {
		if direct[i].String() != replayed[i].String() {
			t.Errorf("diagnostic %d diverged:\n direct:   %s\n replayed: %s", i, direct[i], replayed[i])
		}
	}
}

// TestSortDiagnostics pins the stable output order through every
// tie-breaker: file, line, column, analyzer, message.
func TestSortDiagnostics(t *testing.T) {
	d := func(file string, line, col int, an, msg string) lint.Diagnostic {
		return lint.Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
			Analyzer: an,
		}
	}
	diags := []lint.Diagnostic{
		d("b.go", 1, 1, "hotpath", "x"),
		d("a.go", 2, 1, "hotpath", "x"),
		d("a.go", 1, 2, "hotpath", "x"),
		d("a.go", 1, 1, "refpair", "x"),
		d("a.go", 1, 1, "hotpath", "y"),
		d("a.go", 1, 1, "hotpath", "x"),
	}
	lint.SortDiagnostics(diags)
	want := []string{
		"a.go:1:1: x [hotpath]",
		"a.go:1:1: y [hotpath]",
		"a.go:1:1: x [refpair]",
		"a.go:1:2: x [hotpath]",
		"a.go:2:1: x [hotpath]",
		"b.go:1:1: x [hotpath]",
	}
	for i, w := range want {
		if got := diags[i].String(); got != w {
			t.Errorf("order[%d] = %q, want %q", i, got, w)
		}
	}
}

// TestRunErrors covers the abort paths: an analyzer whose Run or Finish
// fails must abort the whole run with a named error.
func TestRunErrors(t *testing.T) {
	pkgs, err := lint.Load(repoRoot(t), "./internal/lint/linttest")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	boom := &lint.Analyzer{
		Name: "boom",
		Run:  func(*lint.Pass) error { return errors.New("kaput") },
	}
	if _, err := lint.Run(pkgs, []*lint.Analyzer{boom}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run error not propagated: %v", err)
	}
	lateBoom := &lint.Analyzer{
		Name:   "latebound",
		Run:    func(*lint.Pass) error { return nil },
		Finish: func(func(lint.Diagnostic)) error { return errors.New("kaput") },
	}
	if _, err := lint.Run(pkgs, []*lint.Analyzer{lateBoom}); err == nil || !strings.Contains(err.Error(), "latebound") {
		t.Fatalf("Finish error not propagated: %v", err)
	}
}

// TestLoadErrors covers the loader's failure mode on a pattern matching
// nothing resolvable.
func TestLoadErrors(t *testing.T) {
	if _, err := lint.Load(repoRoot(t), "./does/not/exist/..."); err == nil {
		t.Fatal("expected error loading a nonexistent pattern")
	}
}

// TestFactImportGarbage: a corrupt vetx payload must error, not panic.
func TestFactImportGarbage(t *testing.T) {
	am := lint.NewAtomicmix()
	if err := am.Facts.Import([]byte("not a gob stream")); err == nil {
		t.Fatal("expected error importing garbage facts")
	}
}
