package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotpath returns the hotpath analyzer: a function whose doc comment
// carries //phttp:hotpath must stay allocation-free in steady state.
// Inside its body the analyzer rejects:
//
//   - function literals that capture enclosing variables (each closure
//     instantiation heap-allocates its environment)
//   - calls into fmt and log (formatting allocates; the fix is a cold
//     non-annotated helper for panic/diagnostic paths)
//   - string concatenation between non-constant operands
//   - map literals (always heap-allocated)
//   - interface boxing of non-pointer values: passing, assigning or
//     returning a concrete int/struct/string/slice value where an
//     interface is expected. Pointer-shaped values (pointers, channels,
//     maps, funcs) and constants box without allocating and stay legal —
//     which is exactly the contract of simcore's Action payloads.
//
// The gate is structural, not escape-analysis-precise: it can flag an
// allocation the compiler would sink or prove dead (then restructure or
// drop the annotation — a hot path should not rely on the optimizer),
// and it does not model allocations hidden behind calls into
// non-annotated helpers.
func NewHotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocation idioms inside functions annotated //phttp:hotpath",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !funcDirective(fn, DirHotpath) {
					continue
				}
				checkHotFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	sig, _ := pass.TypesInfo.Defs[fn.Name].Type().(*types.Signature)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedVar(pass, n); capt != "" {
				pass.Reportf(n.Pos(), "closure capturing %q in hot path %s: each instantiation allocates its environment", capt, fn.Name.Name)
			}
			return false // the literal runs elsewhere; only capture matters here
		case *ast.CallExpr:
			checkHotCall(pass, fn, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isAllocatingConcat(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates", fn.Name.Name)
			}
		case *ast.AssignStmt:
			checkHotAssign(pass, fn, n)
		case *ast.ValueSpec:
			checkHotValueSpec(pass, fn, n)
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal in hot path %s allocates", fn.Name.Name)
				}
			}
		case *ast.ReturnStmt:
			checkHotReturn(pass, fn, sig, n)
		}
		return true
	})
}

// capturedVar returns the name of a variable the literal captures from
// its enclosing function, or "". Package-level variables are accessed
// directly, not captured, and cost nothing.
func capturedVar(pass *Pass, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
		}
		return true
	})
	return captured
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if pkgPath, name := pkgFunc(pass, call); pkgPath == "fmt" || pkgPath == "log" {
		pass.Reportf(call.Pos(), "%s.%s call in hot path %s allocates (move formatting to a cold helper)", pathBase(pkgPath), name, fn.Name.Name)
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x). Boxing happens when T is an interface.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			reportIfBoxes(pass, fn, call.Args[0], "conversion to interface")
		}
		return
	}
	// Builtins: panic(x) boxes its argument; the rest are free.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "panic" && len(call.Args) == 1 {
				reportIfBoxes(pass, fn, call.Args[0], "panic argument")
			}
			return
		}
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			reportIfBoxes(pass, fn, arg, "argument")
		}
	}
}

func checkHotAssign(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if tv, ok := pass.TypesInfo.Types[as.Lhs[0]]; ok && isStringType(tv.Type) {
			pass.Reportf(as.Pos(), "string concatenation in hot path %s allocates", fn.Name.Name)
		}
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt, ok := pass.TypesInfo.Types[as.Lhs[i]]
		if !ok || !types.IsInterface(lt.Type) {
			continue
		}
		reportIfBoxes(pass, fn, as.Rhs[i], "assignment to interface")
	}
}

// checkHotValueSpec covers `var x any = v` declarations, the one
// interface-assignment form AssignStmt does not see.
func checkHotValueSpec(pass *Pass, fn *ast.FuncDecl, spec *ast.ValueSpec) {
	for i, name := range spec.Names {
		obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
		if !ok || !types.IsInterface(obj.Type()) {
			continue
		}
		if i < len(spec.Values) {
			reportIfBoxes(pass, fn, spec.Values[i], "assignment to interface")
		}
	}
}

func checkHotReturn(pass *Pass, fn *ast.FuncDecl, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		if types.IsInterface(sig.Results().At(i).Type()) {
			reportIfBoxes(pass, fn, res, "return of interface result")
		}
	}
}

// reportIfBoxes flags expr when storing it into an interface heap-boxes:
// its concrete type is not pointer-shaped, it is not a constant (those
// box into static data), and it is not already an interface.
func reportIfBoxes(pass *Pass, fn *ast.FuncDecl, expr ast.Expr, context string) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return
	}
	t := tv.Type
	if types.IsInterface(t) || pointerShaped(t) {
		return
	}
	pass.Reportf(expr.Pos(), "interface boxing of non-pointer %s value (%s) in hot path %s allocates", t.String(), context, fn.Name.Name)
}

// pointerShaped reports whether values of t fit an interface word
// without allocating: pointers, channels, maps, funcs, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isAllocatingConcat reports whether a + expression concatenates strings
// with at least one non-constant operand (constant folding is free).
func isAllocatingConcat(pass *Pass, be *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[be]
	if !ok || !isStringType(tv.Type) {
		return false
	}
	return tv.Value == nil // whole expression not constant-folded
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
