package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load loads and type-checks the module packages matched by patterns
// (relative to dir), importing dependencies from compiler export data so
// no network or external tooling beyond the go command is needed. Only
// non-test Go files are analyzed: the invariants the suite proves are
// production-path invariants, and tests legitimately read wall clocks
// and allocate freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errBuf.String())
	}
	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		var paths []string
		for _, gf := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, gf))
		}
		pkg, err := check(fset, p.ImportPath, paths, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer resolving import paths through
// compiler export data files named by lookup (plus the magic "unsafe").
func exportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return unsafeAwareImporter{gc}
}

// unsafeAwareImporter handles "unsafe", which has no export data.
type unsafeAwareImporter struct{ next types.Importer }

func (i unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.next.Import(path)
}

// check parses and type-checks one package from source files.
func check(fset *token.FileSet, importPath string, files []string, imp types.Importer) (*Package, error) {
	var astFiles []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{Fset: fset, Files: astFiles, Types: tpkg, TypesInfo: info}, nil
}

// CheckFiles type-checks already-listed source files as one package under
// the given import path, resolving imports through exportLookup. The
// vettool driver (unitchecker protocol) and the linttest fixture loader
// are built on it — both know their file sets up front and must control
// the package path the analyzers see.
func CheckFiles(fset *token.FileSet, importPath string, files []string, exportLookup func(path string) (string, bool)) (*Package, error) {
	return check(fset, importPath, files, exportImporter(fset, exportLookup))
}
