// Package linttest is the golden-test harness for the phttp-lint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest
// (which this container cannot vendor): fixture packages live under
// testdata/, and every line that must produce a diagnostic carries a
//
//	// want "regexp"
//
// comment (several per line allowed). Run type-checks the fixture under
// a caller-chosen import path — that is how package-scoped analyzers
// like nondeterm are pointed at determinism-critical paths — runs the
// analyzers, and fails the test on any unmatched diagnostic or
// unsatisfied expectation, so fixtures double as false-positive guards:
// clean lines prove the analyzer stays quiet on legal code.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"phttp/internal/lint"
)

// Run type-checks the one fixture package in dir as importPath and
// applies the analyzers, matching diagnostics against the fixture's
// `// want` expectations.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(matches)
	exports, err := exportData(dir, matches)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	pkg, err := lint.CheckFiles(fset, importPath, matches, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	wants := collectWants(t, fset, pkg.Files)
	matchWants(t, wants, diags)
}

// Check type-checks files as importPath (resolving imports from
// moduleDir, which must contain go.mod) and returns the analyzers'
// diagnostics. Tests that copy real repo packages aside and inject a
// violation assert on the returned diagnostics directly instead of
// using // want comments.
func Check(t *testing.T, moduleDir string, files []string, importPath string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	exports, err := exportDataFrom(moduleDir, files)
	if err != nil {
		t.Fatalf("resolving imports: %v", err)
	}
	fset := token.NewFileSet()
	pkg, err := lint.CheckFiles(fset, importPath, files, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	if err != nil {
		t.Fatalf("typecheck %s: %v", importPath, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	return diags
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`// want(( "(?:[^"\\]|\\.)*")+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pattern, err := strconv.Unquote(arg[0])
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, arg[0], err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	return wants
}

func matchWants(t *testing.T, wants []*want, diags []lint.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// exportData resolves the fixture's imports to compiler export data via
// one `go list -export` invocation (run from the module so the phttp
// packages a fixture may import resolve too).
func exportData(fixtureDir string, files []string) (map[string]string, error) {
	return exportDataFrom(moduleRoot(fixtureDir), files)
}

func exportDataFrom(moduleDir string, files []string) (map[string]string, error) {
	imports := map[string]bool{}
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "unsafe" {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) == 0 {
		return exports, nil
	}
	args := []string{"list", "-export", "-deps", "-json"}
	for p := range imports {
		args = append(args, p)
	}
	sort.Strings(args[4:])
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errBuf.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
