package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismPaths are the packages whose results must be a pure
// function of (config, seed): the simulator and its event core, the
// dispatch policies it drives, and trace generation. A wall-clock read
// or a global-RNG draw in any of them silently breaks the bit-identical
// goldens that every refactor in this repo is verified against.
//
// Matching is by exact import path or any sub-package ("path/...").
var DeterminismPaths = []string{
	"phttp/internal/sim",
	"phttp/internal/simcore",
	"phttp/internal/policy",
	"phttp/internal/trace",
	"phttp/internal/dstate",
}

// wallClockFuncs are the time package entry points that read the wall
// clock or start wall-clock timers. time.Duration arithmetic,
// time.Unix(sec, nsec) construction and formatting stay legal — they
// are pure functions of their inputs.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// globalRandFuncs are the math/rand (and v2) package-level draws backed
// by the shared global source. Seeded generators built with rand.New
// remain legal, though this repo's determinism packages use
// simcore.RNGStream exclusively.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"IntN": true, "Uint32": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true, "N": true,
}

// NewNondeterm returns the nondeterm analyzer: inside DeterminismPaths
// it rejects wall-clock reads (unless excused by //phttp:wallclock),
// global math/rand draws, and map iteration that feeds results or
// output (append / channel send / writer calls / float accumulation)
// without a subsequent sort.
func NewNondeterm() *Analyzer {
	a := &Analyzer{
		Name: "nondeterm",
		Doc:  "forbid wall-clock, global-RNG and map-iteration-ordered results in determinism-critical packages",
	}
	a.Run = func(pass *Pass) error {
		if !determinismScoped(pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.Files {
			ld := newLineDirectives(pass.Fset, file)
			for _, decl := range file.Decls {
				fn, _ := decl.(*ast.FuncDecl)
				wallclockFn := fn != nil && funcDirective(fn, DirWallclock)
				ast.Inspect(decl, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						checkForbiddenCall(pass, ld, wallclockFn, n)
					case *ast.RangeStmt:
						checkMapRange(pass, file, n)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

func determinismScoped(path string) bool {
	for _, p := range DeterminismPaths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// pkgFunc resolves call to (package path, function name) when its callee
// is a package-level function selected off an imported package.
func pkgFunc(pass *Pass, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pkgName.Imported().Path(), sel.Sel.Name
}

func checkForbiddenCall(pass *Pass, ld *lineDirectives, wallclockFn bool, call *ast.CallExpr) {
	pkgPath, name := pkgFunc(pass, call)
	switch pkgPath {
	case "time":
		if !wallClockFuncs[name] {
			return
		}
		if wallclockFn || ld.excused(call.Pos(), DirWallclock) {
			return
		}
		pass.Reportf(call.Pos(), "wall-clock read time.%s in determinism-critical package %s (excuse a legitimate site with //phttp:wallclock)", name, pass.Pkg.Path())
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[name] {
			pass.Reportf(call.Pos(), "global math/rand draw rand.%s in determinism-critical package %s (use simcore.RNGStream)", name, pass.Pkg.Path())
		}
	}
}

// checkMapRange flags a `range m` over a map whose body feeds results or
// output — appends, indexed stores into outside slices, channel sends,
// Write/Print calls, or float accumulation — because Go randomizes map
// iteration order per run. The collect-then-sort idiom is allowed: an
// append target that is later passed to a sort call in the same function
// is deterministic by construction.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: receiver observes randomized map order")
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				m := sel.Sel.Name
				if strings.HasPrefix(m, "Write") || strings.HasPrefix(m, "Print") || strings.HasPrefix(m, "Fprint") {
					pass.Reportf(n.Pos(), "output call %s inside map iteration: emits in randomized map order", m)
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, file, rng, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, file *ast.File, rng *ast.RangeStmt, as *ast.AssignStmt) {
	// Float accumulation: x += v reorders rounding with map order.
	if as.Tok.String() == "+=" && len(as.Lhs) == 1 {
		if tv, ok := pass.TypesInfo.Types[as.Lhs[0]]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(as.Pos(), "float accumulation inside map iteration: rounding depends on randomized map order")
			}
		}
	}
	// x = append(x, ...): ordered growth from unordered iteration.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		target, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[target]
		if obj == nil {
			obj = pass.TypesInfo.Defs[target]
		}
		if obj == nil || obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			continue // loop-local collector: dead on exit, no ordering leak
		}
		if sortedLater(pass, file, rng, obj) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s inside map iteration without a subsequent sort: element order is randomized per run", target.Name)
	}
}

// sortedLater reports whether obj is passed to a sort call after the
// range statement, anywhere in the same file — the collect-then-sort
// idiom that makes a map-order append deterministic again.
func sortedLater(pass *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	if pkgPath, _ := pkgFunc(pass, call); pkgPath == "sort" || pkgPath == "slices" {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return strings.Contains(strings.ToLower(id.Name), "sort")
	}
	return false
}
