package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewAtomicmix returns the atomicmix analyzer: a struct field that is
// accessed through sync/atomic anywhere in the program must never be
// read or written plainly anywhere else. This is the classic mixed-
// access race that the race detector only catches when the two accesses
// actually collide under contention — statically it is a property of
// the whole program, so the analyzer accumulates per-field facts across
// every package (Run) and reports the mixes at the end (Finish).
//
// Fields are keyed by "pkgpath.StructType.field". Only fields whose
// type sync/atomic can operate on are tracked (int32/int64/uint32/
// uint64/uintptr/unsafe.Pointer and arrays of them); fields of the
// modern atomic.Int64-style types cannot be accessed plainly and need
// no checking. Struct-literal keys count as plain writes — initializing
// an unpublished struct plainly is technically safe, but keeping
// constructors atomic too is cheap and makes the invariant checkable
// without an escape hatch.
func NewAtomicmix() *Analyzer {
	facts := &atomicFacts{
		Atomic: map[string]string{},
		Plain:  map[string][]string{},
	}
	a := &Analyzer{
		Name:  "atomicmix",
		Doc:   "a field accessed via sync/atomic must be accessed that way everywhere",
		Facts: facts,
	}
	a.Run = func(pass *Pass) error {
		collectAtomicFacts(pass, facts)
		return nil
	}
	a.Finish = func(report func(Diagnostic)) error {
		facts.reportMixes(a.Name, report)
		return nil
	}
	return a
}

// atomicFacts is the cross-package field-access table. Positions are
// pre-rendered strings so facts serialize across vettool compilation
// units.
type atomicFacts struct {
	Atomic map[string]string   // field key -> one atomic-access position
	Plain  map[string][]string // field key -> plain-access positions
}

func (f *atomicFacts) Export() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(f)
	return buf.Bytes(), err
}

func (f *atomicFacts) Import(data []byte) error {
	var in atomicFacts
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&in); err != nil {
		return err
	}
	for k, v := range in.Atomic {
		if _, ok := f.Atomic[k]; !ok {
			f.Atomic[k] = v
		}
	}
	for k, v := range in.Plain {
		f.Plain[k] = append(f.Plain[k], v...)
	}
	return nil
}

func (f *atomicFacts) reportMixes(analyzer string, report func(Diagnostic)) {
	keys := make([]string, 0, len(f.Atomic))
	for k := range f.Atomic {
		if len(f.Plain[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		plains := append([]string(nil), f.Plain[k]...)
		sort.Strings(plains)
		for _, pos := range plains {
			report(Diagnostic{
				Pos:      parsePosition(pos),
				Message:  fmt.Sprintf("non-atomic access to field %s, which is accessed with sync/atomic at %s: mixed access races under contention", k, f.Atomic[k]),
				Analyzer: analyzer,
			})
		}
	}
}

// atomicFuncPrefixes are the sync/atomic operations that take &field.
var atomicFuncPrefixes = []string{
	"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or",
}

func isAtomicOpName(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if len(name) > len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

func collectAtomicFacts(pass *Pass, facts *atomicFacts) {
	// consumed maps selector nodes already accounted as atomic accesses
	// or proven benign (len/cap and index-only range over array fields
	// read no element values).
	consumed := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		// Pass 0: mark benign array-field selectors.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if n.Value == nil {
					if sel, ok := n.X.(*ast.SelectorExpr); ok && isArrayField(pass, sel) {
						consumed[sel] = true
					}
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || (id.Name != "len" && id.Name != "cap") || len(n.Args) != 1 {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if sel, ok := n.Args[0].(*ast.SelectorExpr); ok && isArrayField(pass, sel) {
					consumed[sel] = true
				}
			}
			return true
		})
		// Pass 1: find &x.f (or &x.f[i]) arguments to sync/atomic calls.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := pkgFunc(pass, call)
			if pkgPath != "sync/atomic" || !isAtomicOpName(name) || len(call.Args) == 0 {
				return true
			}
			if sel := addrFieldOperand(call.Args[0]); sel != nil {
				if key := fieldKey(pass, sel); key != "" {
					consumed[sel] = true
					if _, have := facts.Atomic[key]; !have {
						facts.Atomic[key] = pass.Fset.Position(call.Pos()).String()
					}
				}
			}
			return true
		})
		// Pass 2: every other access to an atomically-eligible field.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if consumed[n] {
					return true
				}
				if key := fieldKey(pass, n); key != "" {
					facts.Plain[key] = append(facts.Plain[key], pass.Fset.Position(n.Pos()).String())
				}
			case *ast.CompositeLit:
				collectLiteralFieldKeys(pass, n, facts)
			}
			return true
		})
	}
}

// isArrayField reports whether sel names a tracked field whose type is
// an array — the one shape where len/cap/index-only-range over the
// field is value-free and therefore race-free.
func isArrayField(pass *Pass, sel *ast.SelectorExpr) bool {
	if fieldKey(pass, sel) == "" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel]
	if !ok {
		return false
	}
	_, isArr := tv.Type.Underlying().(*types.Array)
	return isArr
}

// addrFieldOperand unwraps &x.f and &x.f[i] to the field selector.
func addrFieldOperand(arg ast.Expr) *ast.SelectorExpr {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	inner := un.X
	if idx, ok := inner.(*ast.IndexExpr); ok {
		inner = idx.X
	}
	sel, _ := inner.(*ast.SelectorExpr)
	return sel
}

// fieldKey resolves a selector to its canonical field key when it names
// a struct field of atomically-eligible type declared on a named type,
// or "" otherwise.
func fieldKey(pass *Pass, sel *ast.SelectorExpr) string {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !atomicEligible(field.Type()) {
		return ""
	}
	return ownedFieldKey(selection.Recv(), selection.Index())
}

// ownedFieldKey walks the (possibly embedded) selection path to the
// named struct type that declares the field.
func ownedFieldKey(recv types.Type, index []int) string {
	t := recv
	for step, idx := range index {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "" // anonymous struct: unkeyable, skip
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return ""
		}
		f := st.Field(idx)
		if step == len(index)-1 {
			pkg := "_"
			if named.Obj().Pkg() != nil {
				pkg = named.Obj().Pkg().Path()
			}
			return pkg + "." + named.Obj().Name() + "." + f.Name()
		}
		t = f.Type()
	}
	return ""
}

// collectLiteralFieldKeys records keyed struct-literal initializations
// of eligible fields as plain writes.
func collectLiteralFieldKeys(pass *Pass, lit *ast.CompositeLit, facts *atomicFacts) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field, ok := pass.TypesInfo.Uses[key].(*types.Var)
		if !ok || !field.IsField() || !atomicEligible(field.Type()) {
			continue
		}
		pkg := "_"
		if named.Obj().Pkg() != nil {
			pkg = named.Obj().Pkg().Path()
		}
		k := pkg + "." + named.Obj().Name() + "." + field.Name()
		facts.Plain[k] = append(facts.Plain[k], pass.Fset.Position(kv.Pos()).String())
	}
}

// atomicEligible reports whether sync/atomic functions can address a
// field of type t (directly or as an array element).
func atomicEligible(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	case *types.Pointer:
		return false // atomic.LoadPointer needs unsafe.Pointer, not *T
	}
	return false
}

// parsePosition round-trips a rendered token.Position ("file:line:col").
func parsePosition(s string) token.Position {
	var p token.Position
	// Split from the right: filenames may contain colons on some systems,
	// but ours never do; a simple right-to-left parse is robust enough.
	rest := s
	for i := 0; i < 2; i++ {
		j := lastIndexByte(rest, ':')
		if j < 0 {
			p.Filename = s
			return p
		}
		n := 0
		fmt.Sscanf(rest[j+1:], "%d", &n)
		if i == 0 {
			p.Column = n
		} else {
			p.Line = n
		}
		rest = rest[:j]
	}
	p.Filename = rest
	return p
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}
