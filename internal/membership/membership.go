// Package membership tracks per-back-end liveness for the front-end: a
// small state machine (Joining → Up → Draining/Suspect → Down) fed by
// the control links the front-end already holds open to every back-end.
//
// The package is deliberately passive: it owns no goroutines, no timers
// and no clock. Every transition is an explicit call carrying the
// caller's notion of "now", so the prototype can drive it from a
// wall-clock ticker while tests (and the simulator, which models churn
// as scheduled events directly on the dispatch engine) drive it with a
// synthetic clock and get bit-reproducible behavior.
//
// Failure detection is two-staged, as in ISSUE 7:
//
//   - a control-link read error or a missed heartbeat window marks a
//     node Suspect (it keeps its dispatch state; traffic continues),
//   - remaining Suspect for the confirm window marks it Down (the
//     dispatch engine is told, policies shrink their candidate sets,
//     in-flight work is re-dispatched).
//
// The node universe is fixed at construction — slots, not servers.
// AddBackend-style elasticity reuses a slot: a vacant slot sits Down
// until a dial succeeds and MarkUp revives it.
package membership

import (
	"fmt"
	"sync"
	"time"

	"phttp/internal/core"
)

// State is a node's position in the membership state machine.
type State int32

const (
	// Joining: provisioned but not yet confirmed reachable (initial
	// dial in progress or retrying).
	Joining State = iota
	// Up: healthy; eligible for new work.
	Up
	// Draining: leaving gracefully; no new work, existing work
	// completes.
	Draining
	// Suspect: missed heartbeats or errored control link; still
	// dispatched to until the confirm window expires.
	Suspect
	// Down: confirmed dead (or never reachable); policies exclude it
	// and its in-flight work is re-dispatched.
	Down
)

func (s State) String() string {
	switch s {
	case Joining:
		return "joining"
	case Up:
		return "up"
	case Draining:
		return "draining"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Config holds the failure-detection timing parameters (DESIGN.md §15).
type Config struct {
	// HeartbeatTimeout: a node whose last heartbeat is older than this
	// at Tick time becomes Suspect. The prototype's heartbeat is the
	// DISKQ report every back-end already sends on its control link
	// (every cluster.DiskReportEvery), so no new protocol traffic is
	// needed.
	HeartbeatTimeout time.Duration
	// ConfirmWindow: a node continuously Suspect for this long becomes
	// Down.
	ConfirmWindow time.Duration
}

// Defaults: the back-end heartbeats every 50ms (DiskReportEvery), so a
// second of silence is ~20 missed reports.
const (
	DefaultHeartbeatTimeout = 1 * time.Second
	DefaultConfirmWindow    = 1 * time.Second
)

func (c Config) withDefaults() Config {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if c.ConfirmWindow <= 0 {
		c.ConfirmWindow = DefaultConfirmWindow
	}
	return c
}

// Listener observes state transitions. Listeners run synchronously under
// the table lock, in registration order, exactly once per transition —
// they must be fast and must not call back into the Table.
type Listener func(n core.NodeID, from, to State)

// Table is the membership table for a fixed universe of node slots.
// All methods are safe for concurrent use.
type Table struct {
	mu        sync.Mutex
	cfg       Config
	nodes     []nodeInfo
	listeners []Listener
}

type nodeInfo struct {
	state       State
	lastSeen    time.Time
	suspectedAt time.Time
}

// New creates a table with n slots, all Joining as of now.
func New(n int, cfg Config, now time.Time) *Table {
	if n <= 0 {
		panic("membership: table needs at least one node slot")
	}
	t := &Table{cfg: cfg.withDefaults(), nodes: make([]nodeInfo, n)}
	for i := range t.nodes {
		t.nodes[i] = nodeInfo{state: Joining, lastSeen: now}
	}
	return t
}

// OnChange registers a transition listener. Register before concurrent
// use; listeners fire under the table lock.
func (t *Table) OnChange(l Listener) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.listeners = append(t.listeners, l)
}

// Nodes returns the number of slots.
func (t *Table) Nodes() int { return len(t.nodes) }

// State returns node n's current state.
func (t *Table) State(n core.NodeID) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nodes[n].state
}

// UpCount returns the number of Up nodes.
func (t *Table) UpCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := 0
	for i := range t.nodes {
		if t.nodes[i].state == Up {
			c++
		}
	}
	return c
}

// Snapshot returns a copy of all node states, indexed by NodeID.
func (t *Table) Snapshot() []State {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]State, len(t.nodes))
	for i := range t.nodes {
		out[i] = t.nodes[i].state
	}
	return out
}

// set transitions node n to state s (caller holds t.mu). No-op when the
// state is unchanged.
func (t *Table) set(n core.NodeID, s State) {
	from := t.nodes[n].state
	if from == s {
		return
	}
	t.nodes[n].state = s
	for _, l := range t.listeners {
		l(n, from, s)
	}
}

// MarkUp declares node n healthy (dial succeeded, rejoin confirmed).
// Valid from every state.
func (t *Table) MarkUp(n core.NodeID, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[n].lastSeen = now
	t.set(n, Up)
}

// MarkDown declares node n dead immediately, bypassing the confirm
// window (used for vacant slots and explicit removal).
func (t *Table) MarkDown(n core.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.set(n, Down)
}

// Drain starts a graceful leave: no new work lands on n, existing work
// completes. Down nodes stay Down.
func (t *Table) Drain(n core.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nodes[n].state == Down {
		return
	}
	t.set(n, Draining)
}

// Suspect reports a control-link failure for node n as of now. Up and
// Joining nodes become Suspect (the confirm window starts); a Draining
// node that loses its link is declared Down directly — it was leaving
// anyway, and nothing new is routed to it.
func (t *Table) Suspect(n core.NodeID, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.nodes[n].state {
	case Up, Joining:
		t.nodes[n].suspectedAt = now
		t.set(n, Suspect)
	case Draining:
		t.set(n, Down)
	}
}

// Heartbeat records liveness evidence for node n (the prototype calls
// this on every DISKQ report). A Suspect node whose link recovers is
// revived to Up; other states only refresh lastSeen.
func (t *Table) Heartbeat(n core.NodeID, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[n].lastSeen = now
	if t.nodes[n].state == Suspect {
		t.set(n, Up)
	}
}

// Tick applies the timing rules as of now: Up nodes silent past
// HeartbeatTimeout become Suspect, Suspect nodes past ConfirmWindow
// become Down. The caller owns the cadence (the prototype runs a
// wall-clock ticker; tests call it with a synthetic clock).
func (t *Table) Tick(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.nodes {
		n := core.NodeID(i)
		switch t.nodes[i].state {
		case Up:
			if now.Sub(t.nodes[i].lastSeen) > t.cfg.HeartbeatTimeout {
				t.nodes[i].suspectedAt = now
				t.set(n, Suspect)
			}
		case Suspect:
			if now.Sub(t.nodes[i].suspectedAt) > t.cfg.ConfirmWindow {
				t.set(n, Down)
			}
		}
	}
}
