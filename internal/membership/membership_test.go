package membership

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"phttp/internal/core"
)

var t0 = time.Unix(1000, 0)

func at(d time.Duration) time.Time { return t0.Add(d) }

func newTable(n int) *Table {
	return New(n, Config{HeartbeatTimeout: time.Second, ConfirmWindow: time.Second}, t0)
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Joining: "joining", Up: "up", Draining: "draining",
		Suspect: "suspect", Down: "down", State(42): "state(42)",
	}
	for s, str := range want {
		if got := s.String(); got != str {
			t.Errorf("State(%d).String() = %q, want %q", s, got, str)
		}
	}
}

func TestLifecycle(t *testing.T) {
	tb := newTable(3)
	if tb.Nodes() != 3 {
		t.Fatalf("Nodes() = %d, want 3", tb.Nodes())
	}
	for n := core.NodeID(0); n < 3; n++ {
		if got := tb.State(n); got != Joining {
			t.Fatalf("node %d starts %v, want joining", n, got)
		}
	}
	if tb.UpCount() != 0 {
		t.Fatalf("UpCount = %d before any MarkUp", tb.UpCount())
	}

	tb.MarkUp(0, t0)
	tb.MarkUp(1, t0)
	if tb.UpCount() != 2 {
		t.Fatalf("UpCount = %d after two MarkUp", tb.UpCount())
	}

	// Heartbeat silence: node 1 goes Suspect at the tick past the
	// timeout, then Down after the confirm window.
	tb.Heartbeat(0, at(2*time.Second))
	tb.Tick(at(2 * time.Second))
	if got := tb.State(0); got != Up {
		t.Fatalf("heartbeated node 0 = %v, want up", got)
	}
	if got := tb.State(1); got != Suspect {
		t.Fatalf("silent node 1 = %v, want suspect", got)
	}
	// Within the confirm window: still suspect.
	tb.Tick(at(2*time.Second + 500*time.Millisecond))
	if got := tb.State(1); got != Suspect {
		t.Fatalf("node 1 inside confirm window = %v, want suspect", got)
	}
	tb.Heartbeat(0, at(3500*time.Millisecond))
	tb.Tick(at(4 * time.Second))
	if got := tb.State(1); got != Down {
		t.Fatalf("node 1 past confirm window = %v, want down", got)
	}

	// Rejoin: MarkUp revives a Down node.
	tb.MarkUp(1, at(5*time.Second))
	if got := tb.State(1); got != Up {
		t.Fatalf("rejoined node 1 = %v, want up", got)
	}

	snap := tb.Snapshot()
	if len(snap) != 3 || snap[0] != Up || snap[1] != Up || snap[2] != Joining {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestSuspectRecovery(t *testing.T) {
	tb := newTable(1)
	tb.MarkUp(0, t0)
	tb.Suspect(0, at(time.Second))
	if got := tb.State(0); got != Suspect {
		t.Fatalf("after Suspect: %v", got)
	}
	// A heartbeat while Suspect revives the node and resets the clock.
	tb.Heartbeat(0, at(1500*time.Millisecond))
	if got := tb.State(0); got != Up {
		t.Fatalf("heartbeat while suspect: %v, want up", got)
	}
	tb.Tick(at(2 * time.Second))
	if got := tb.State(0); got != Up {
		t.Fatalf("recently heartbeated: %v, want up", got)
	}
}

func TestDrainAndSuspectInteraction(t *testing.T) {
	tb := newTable(2)
	tb.MarkUp(0, t0)
	tb.Drain(0)
	if got := tb.State(0); got != Draining {
		t.Fatalf("after Drain: %v", got)
	}
	// Draining nodes are exempt from heartbeat-silence suspicion...
	tb.Tick(at(time.Hour))
	if got := tb.State(0); got != Draining {
		t.Fatalf("draining node after long tick: %v", got)
	}
	// ...but a dead control link finishes the leave immediately.
	tb.Suspect(0, at(time.Hour))
	if got := tb.State(0); got != Down {
		t.Fatalf("draining node with dead link: %v, want down", got)
	}
	// Drain on a Down node stays Down.
	tb.Drain(0)
	if got := tb.State(0); got != Down {
		t.Fatalf("drain on down node: %v", got)
	}
	// Suspect on a Down node is a no-op.
	tb.Suspect(0, at(2*time.Hour))
	if got := tb.State(0); got != Down {
		t.Fatalf("suspect on down node: %v", got)
	}

	// Joining nodes can be suspected (dial retries exhausted).
	tb.Suspect(1, t0)
	if got := tb.State(1); got != Suspect {
		t.Fatalf("suspected joining node: %v", got)
	}
}

func TestMarkDownImmediate(t *testing.T) {
	tb := newTable(1)
	tb.MarkUp(0, t0)
	tb.MarkDown(0)
	if got := tb.State(0); got != Down {
		t.Fatalf("after MarkDown: %v", got)
	}
}

func TestListeners(t *testing.T) {
	tb := newTable(2)
	var log []string
	tb.OnChange(func(n core.NodeID, from, to State) {
		log = append(log, fmt.Sprintf("%d:%v->%v", n, from, to))
	})
	tb.MarkUp(0, t0)
	tb.MarkUp(0, t0) // duplicate: no transition, no callback
	tb.Tick(at(2 * time.Second))
	tb.Tick(at(4 * time.Second))
	want := []string{"0:joining->up", "0:up->suspect", "0:suspect->down"}
	if len(log) != len(want) {
		t.Fatalf("listener log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("listener log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.HeartbeatTimeout != DefaultHeartbeatTimeout || cfg.ConfirmWindow != DefaultConfirmWindow {
		t.Fatalf("withDefaults = %+v", cfg)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, Config{}, t0)
}

// TestConcurrentAccess exercises the table under the race detector: the
// prototype calls Heartbeat/Suspect from per-link goroutines while a
// ticker runs Tick.
func TestConcurrentAccess(t *testing.T) {
	tb := newTable(4)
	for n := core.NodeID(0); n < 4; n++ {
		tb.MarkUp(n, t0)
	}
	var wg sync.WaitGroup
	for n := core.NodeID(0); n < 4; n++ {
		wg.Add(1)
		go func(n core.NodeID) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tb.Heartbeat(n, at(time.Duration(i)*time.Millisecond))
				if i%100 == 99 {
					tb.Suspect(n, at(time.Duration(i)*time.Millisecond))
				}
			}
		}(n)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tb.Tick(at(time.Duration(i) * 5 * time.Millisecond))
			tb.UpCount()
			tb.Snapshot()
		}
	}()
	wg.Wait()
}
