package dstate_test

import (
	"fmt"
	"testing"

	"phttp/internal/core"
	"phttp/internal/dispatch"
	"phttp/internal/dstate"
)

// The store-conformance suite: every dstate.Store backend — local,
// sharded, replicated — must satisfy the same observable contract when
// driven through the connection lifecycle. The differences between the
// backends (where state lives, when peers see it) are pinned by the
// tier-specific tests in tier_test.go; this file pins what must NOT
// differ.

// harness is one tier under test: N store views plus the sync hook
// (a no-op where the backend has nothing to sync).
type harness struct {
	mode   dstate.Mode
	stores []dstate.Store
	sync   func()
	tier   *dstate.Tier // nil in local mode
	in     *core.Interner
	nodes  int
	nextID core.ConnID
}

const confSeed = 0xc0ffee

// newHarness builds a tier of the given mode over fresh lard policies.
func newHarness(t *testing.T, mode dstate.Mode, frontends, nodes int) *harness {
	t.Helper()
	spec := dispatch.Spec{Policy: "lard", Nodes: nodes, CacheBytes: 32 << 20}
	h := &harness{mode: mode, in: core.NewInterner(), nodes: nodes}
	if mode == dstate.ModeLocal {
		pol, err := dispatch.Build(spec)
		if err != nil {
			t.Fatalf("build policy: %v", err)
		}
		h.stores = []dstate.Store{dstate.NewLocal(pol)}
		h.sync = func() {}
		return h
	}
	pols := make([]core.Policy, frontends)
	for i := range pols {
		p, err := dispatch.Build(spec)
		if err != nil {
			t.Fatalf("build policy %d: %v", i, err)
		}
		pols[i] = p
	}
	tier, err := dstate.NewTier(dstate.TierConfig{
		Mode: mode, Frontends: frontends, Seed: confSeed,
	}, pols)
	if err != nil {
		t.Fatalf("build tier: %v", err)
	}
	for i := 0; i < frontends; i++ {
		h.stores = append(h.stores, tier.Store(i))
	}
	h.tier = tier
	h.sync = tier.Sync
	return h
}

// req interns a target and builds its request.
func (h *harness) req(target string) core.Request {
	tg := core.Target(target)
	return core.Request{Target: tg, ID: h.in.Intern(tg), Size: 8 << 10}
}

// open opens one connection for target through store view fe.
func (h *harness) open(fe int, target string) (*core.ConnState, core.NodeID) {
	h.nextID++
	cs := core.NewConnState(h.nextID)
	n := h.stores[fe].ConnOpen(cs, h.req(target))
	return cs, n
}

// localConns sums the locally charged connection count across every
// replica/shard of the tier — the tier-wide ground truth that must track
// the number of open connections exactly, whichever replica holds each
// charge.
func (h *harness) localConns() int {
	seen := make(map[*core.LoadTracker]bool)
	total := 0
	for _, s := range h.stores {
		lt := s.Policy().Loads()
		if seen[lt] {
			continue // local mode: one policy behind every view
		}
		seen[lt] = true
		for n := 0; n < h.nodes; n++ {
			total += lt.LocalConns(core.NodeID(n))
		}
	}
	return total
}

// modes under conformance test: (mode, tier size).
var conformanceModes = []struct {
	mode dstate.Mode
	fes  int
}{
	{dstate.ModeLocal, 1},
	{dstate.ModeSharded, 3},
	{dstate.ModeReplicated, 3},
}

// TestStoreConformanceMappingVisibility: once a connection for target X
// has been opened and closed through any view (and a sync round has run),
// a later connection for X opened through any other view must land on
// the node that cached X — locality survives crossing front-ends, which
// is the entire point of sharing dispatch state.
func TestStoreConformanceMappingVisibility(t *testing.T) {
	for _, tc := range conformanceModes {
		t.Run(tc.mode.String(), func(t *testing.T) {
			h := newHarness(t, tc.mode, tc.fes, 4)
			for i := 0; i < 8; i++ {
				target := fmt.Sprintf("/doc/%d", i)
				cs, first := h.open(0, target)
				h.stores[0].ConnClose(cs)
				h.sync()
				for fe := range h.stores {
					cs2, got := h.open(fe, target)
					if got != first {
						t.Errorf("%s: target %s decided %v at view 0 but %v at view %d",
							tc.mode, target, first, got, fe)
					}
					h.stores[fe].ConnClose(cs2)
					h.sync()
				}
			}
		})
	}
}

// TestStoreConformanceLoadAccounting: the tier-wide locally charged
// connection count must rise by exactly one per open (monotonically, no
// double-charges whichever replica owns the state) and return to zero
// after every close.
func TestStoreConformanceLoadAccounting(t *testing.T) {
	for _, tc := range conformanceModes {
		t.Run(tc.mode.String(), func(t *testing.T) {
			h := newHarness(t, tc.mode, tc.fes, 4)
			var open []*core.ConnState
			var views []int
			for i := 0; i < 24; i++ {
				fe := i % len(h.stores)
				before := h.localConns()
				cs, _ := h.open(fe, fmt.Sprintf("/load/%d", i%7))
				open = append(open, cs)
				views = append(views, fe)
				if got := h.localConns(); got != before+1 {
					t.Fatalf("%s: open %d moved tier conn count %d -> %d, want +1",
						tc.mode, i, before, got)
				}
			}
			for i, cs := range open {
				h.stores[views[i]].ConnClose(cs)
			}
			if got := h.localConns(); got != 0 {
				t.Errorf("%s: %d connection units leaked after closing everything", tc.mode, got)
			}
		})
	}
}

// TestStoreConformanceDeterminism: two tiers built from the same spec and
// seed, driven with the same request sequence through the same views,
// must make the identical decision sequence — the property the
// simulator's goldens (and its serial-vs-parallel sweep equivalence)
// stand on.
func TestStoreConformanceDeterminism(t *testing.T) {
	for _, tc := range conformanceModes {
		t.Run(tc.mode.String(), func(t *testing.T) {
			run := func() []core.NodeID {
				h := newHarness(t, tc.mode, tc.fes, 4)
				var decisions []core.NodeID
				var open []*core.ConnState
				var views []int
				for i := 0; i < 200; i++ {
					fe := (i * 7) % len(h.stores)
					cs, n := h.open(fe, fmt.Sprintf("/det/%d", (i*13)%31))
					decisions = append(decisions, n)
					open = append(open, cs)
					views = append(views, fe)
					if i%3 == 0 {
						h.sync()
					}
					if i%5 == 4 {
						j := len(open) - 3
						h.stores[views[j]].ConnClose(open[j])
						open[j] = nil
					}
				}
				for j, cs := range open {
					if cs != nil {
						h.stores[views[j]].ConnClose(cs)
					}
				}
				return decisions
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: decision %d differs between identical runs: %v vs %v",
						tc.mode, i, a[i], b[i])
				}
			}
		})
	}
}
