// Package dstate is the dispatch-state tier of the scale-out front-end:
// the mapping/load state a dispatch engine decides against, abstracted
// behind the Store interface so it can live in one process (local — the
// paper's single front-end), be partitioned across N front-ends (sharded —
// each front-end owns one mapping shard, chosen by the same bounded-load
// consistent-hashing ring the boundedch policy ships, and non-owned
// targets forward their state transactions to the owner), or be fully
// replicated with bounded staleness (replicated — every front-end decides
// on its own replica, and a periodic sync exchanges versioned mapping
// deltas and load vectors, last-writer-wins on conflicts).
//
// The Store sits exactly where dispatch.Engine used to call its policy:
// every implementation routes the connection lifecycle
// (ConnOpen → AssignBatch* → BatchDone? → ConnClose) to the policy
// replica/shard that owns the connection's state. The local store is a
// pure delegation whose decisions — and therefore the figure goldens — are
// bit-identical to the pre-tier engine.
package dstate

import (
	"fmt"

	"phttp/internal/cache"
	"phttp/internal/core"
)

// Mode selects a dispatch-state backend.
type Mode int

const (
	// ModeLocal is the single-front-end store: one policy owns all state.
	ModeLocal Mode = iota
	// ModeSharded partitions the target space across the tier's
	// front-ends; each owns one mapping shard and decides for it.
	ModeSharded
	// ModeReplicated gives every front-end a full state replica, synced
	// with bounded staleness.
	ModeReplicated
)

// String returns the flag/schema spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeLocal:
		return "local"
	case ModeSharded:
		return "sharded"
	case ModeReplicated:
		return "replicated"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the flag/schema spelling of a mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "local":
		return ModeLocal, nil
	case "sharded":
		return ModeSharded, nil
	case "replicated":
		return ModeReplicated, nil
	}
	return 0, fmt.Errorf("dstate: unknown state mode %q (valid modes: local, sharded, replicated)", s)
}

// Store is one front-end's view of the dispatch-state tier. A dispatch
// engine calls it exactly where it used to call its policy; the store
// routes each call to the policy replica/shard owning the connection's
// state.
//
// Concurrency contract: identical to core.Policy as the engine uses it —
// calls for different connections may run in parallel, calls for one
// connection are serialized by its owner.
type Store interface {
	// Mode identifies the backend.
	Mode() Mode
	// Policy returns the front-end's own policy replica/shard — the
	// object engine-level membership transitions, interner refcounting
	// and metrics talk to.
	Policy() core.Policy
	// Owner returns the index of the front-end owning target id's state
	// (always 0 for local and replicated stores: every front-end owns
	// its replica).
	Owner(id core.TargetID) int

	// The connection lifecycle, routed to the owning state.
	ConnOpen(c *core.ConnState, first core.Request) core.NodeID
	AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment
	BatchDone(c *core.ConnState)
	ConnClose(c *core.ConnState)
	// MoveConn transfers c's connection-load unit to node `to` and
	// reassigns its handling node — the engine's re-dispatch action,
	// routed to the owner so the shard that charged the connection is
	// the one that moves it.
	MoveConn(c *core.ConnState, to core.NodeID)
	// ReportDiskQueue delivers back-end queue feedback to the local
	// replica/shard (every front-end holds its own control links, so
	// every one hears the back-ends directly).
	ReportDiskQueue(n core.NodeID, queued int)
}

// Local is the single-front-end store: a pure delegation to one policy.
// It is the default everywhere and the byte-identical path the figure
// goldens verify — each method is one interface call thinner than air.
type Local struct {
	pol core.Policy
}

var _ Store = (*Local)(nil)

// NewLocal wraps pol as a local store.
func NewLocal(pol core.Policy) *Local { return &Local{pol: pol} }

// Mode implements Store.
func (l *Local) Mode() Mode { return ModeLocal }

// Policy implements Store.
func (l *Local) Policy() core.Policy { return l.pol }

// Owner implements Store: a local store owns everything.
func (l *Local) Owner(core.TargetID) int { return 0 }

// ConnOpen implements Store.
//
//phttp:hotpath
func (l *Local) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	return l.pol.ConnOpen(c, first)
}

// AssignBatch implements Store.
//
//phttp:hotpath
func (l *Local) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	return l.pol.AssignBatch(c, batch)
}

// BatchDone implements Store.
//
//phttp:hotpath
func (l *Local) BatchDone(c *core.ConnState) { l.pol.BatchDone(c) }

// ConnClose implements Store.
//
//phttp:hotpath
func (l *Local) ConnClose(c *core.ConnState) { l.pol.ConnClose(c) }

// ReportDiskQueue implements Store.
func (l *Local) ReportDiskQueue(n core.NodeID, queued int) { l.pol.ReportDiskQueue(n, queued) }

// MoveConn implements Store.
func (l *Local) MoveConn(c *core.ConnState, to core.NodeID) {
	l.pol.Loads().MoveConn(c.Handling, to)
	c.Handling = to
}

// MappingPolicy is the optional mapping accessor the LARD family exposes
// (the same shape dispatch.NewEngine resolves for interner refcounting);
// stateless policies (wrr, p2c, boundedch) have no mapping to shard or
// replicate and simply skip the mapping half of the replication protocol.
type MappingPolicy interface {
	Mapping() *cache.Mapping
}
