package dstate_test

import (
	"fmt"
	"sort"
	"testing"

	"phttp/internal/core"
	"phttp/internal/dstate"
)

// mapping returns the cache mapping behind a tier view's policy.
func mapping(t *testing.T, s dstate.Store) interface {
	IsMapped(core.TargetID, core.NodeID) bool
	NodesFor(core.TargetID) []core.NodeID
	Map(core.TargetID, int64, core.NodeID)
} {
	t.Helper()
	mp, ok := s.Policy().(dstate.MappingPolicy)
	if !ok {
		t.Fatalf("policy %s exposes no mapping", s.Policy().Name())
	}
	return mp.Mapping()
}

// TestTierShardedOwnership: in sharded mode every connection's state lives
// on the ring owner's shard, whichever view opened it — the charge lands
// on the owner's load tracker and OwnerFE records the routing decision.
func TestTierShardedOwnership(t *testing.T) {
	h := newHarness(t, dstate.ModeSharded, 3, 4)
	owned := make(map[int]int)
	for i := 0; i < 60; i++ {
		target := fmt.Sprintf("/shard/%d", i)
		r := h.req(target)
		owner := h.stores[0].Owner(r.ID)
		owned[owner]++
		for fe := range h.stores {
			if got := h.stores[fe].Owner(r.ID); got != owner {
				t.Fatalf("target %s: view %d says owner %d, view 0 says %d", target, fe, got, owner)
			}
		}
		opener := i % len(h.stores)
		cs, _ := h.open(opener, target)
		if int(cs.OwnerFE) != owner {
			t.Errorf("target %s opened via %d: OwnerFE = %d, want ring owner %d",
				target, opener, cs.OwnerFE, owner)
		}
		var ownerConns, otherConns int
		for fe, s := range h.stores {
			lt := s.Policy().Loads()
			for n := 0; n < h.nodes; n++ {
				c := lt.LocalConns(core.NodeID(n))
				if fe == owner {
					ownerConns += c
				} else {
					otherConns += c
				}
			}
		}
		if ownerConns != 1 || otherConns != 0 {
			t.Fatalf("target %s: owner shard holds %d conns, others %d; want 1/0",
				target, ownerConns, otherConns)
		}
		h.stores[opener].ConnClose(cs)
	}
	for fe := range h.stores {
		if owned[fe] == 0 {
			t.Errorf("front-end %d owns none of 60 targets; ring is degenerate", fe)
		}
	}
}

// TestTierReplicatedStaleness: a mapping write is invisible to peer
// replicas until a Sync round delivers it — the bounded-staleness window —
// and visible to every replica afterwards.
func TestTierReplicatedStaleness(t *testing.T) {
	h := newHarness(t, dstate.ModeReplicated, 3, 4)
	r := h.req("/stale/x")
	cs, n := h.open(0, string(r.Target))
	h.stores[0].ConnClose(cs)

	if !mapping(t, h.stores[0]).IsMapped(r.ID, n) {
		t.Fatal("origin replica lost its own write")
	}
	for fe := 1; fe < 3; fe++ {
		if mapping(t, h.stores[fe]).IsMapped(r.ID, n) {
			t.Errorf("replica %d sees the write before any sync round", fe)
		}
	}
	h.sync()
	for fe := 0; fe < 3; fe++ {
		if !mapping(t, h.stores[fe]).IsMapped(r.ID, n) {
			t.Errorf("replica %d still misses the write after sync", fe)
		}
	}
}

// TestTierReplicatedConvergence: concurrent mapping writes on different
// replicas for the same target converge — after a sync round every replica
// reports the identical node set for the target, deltas applied in
// front-end/sequence order.
func TestTierReplicatedConvergence(t *testing.T) {
	h := newHarness(t, dstate.ModeReplicated, 3, 4)
	r := h.req("/conflict/x")
	mapping(t, h.stores[0]).Map(r.ID, r.Size, core.NodeID(1))
	mapping(t, h.stores[1]).Map(r.ID, r.Size, core.NodeID(2))
	h.sync()

	want := nodeSet(mapping(t, h.stores[0]).NodesFor(r.ID))
	if len(want) == 0 {
		t.Fatal("replica 0 has no nodes for the target after sync")
	}
	for fe := 1; fe < 3; fe++ {
		got := nodeSet(mapping(t, h.stores[fe]).NodesFor(r.ID))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("replica %d node set %v, replica 0 has %v — replicas diverged", fe, got, want)
		}
	}
}

func nodeSet(ns []core.NodeID) []core.NodeID {
	out := append([]core.NodeID(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestTierReplicatedLoadSync: after a sync round every replica's view of a
// node's load is its own charges plus the sum of its peers' — so a replica
// that dispatched nothing still sees the tier-wide pressure.
func TestTierReplicatedLoadSync(t *testing.T) {
	h := newHarness(t, dstate.ModeReplicated, 3, 4)
	var open []*core.ConnState
	perNode := make(map[core.NodeID]int)
	for i := 0; i < 6; i++ {
		cs, n := h.open(0, fmt.Sprintf("/loadsync/%d", i))
		open = append(open, cs)
		perNode[n]++
	}
	idle := h.stores[1].Policy().Loads()
	for n := range perNode {
		if got := idle.Conns(n); got != 0 {
			t.Errorf("replica 1 sees %d conns on node %v before sync (want 0, staleness bound)", got, n)
		}
	}
	h.sync()
	for n, want := range perNode {
		if got := idle.Conns(n); got != want {
			t.Errorf("replica 1 sees %d conns on node %v after sync, origin charged %d", got, n, want)
		}
		if idle.LocalConns(n) != 0 {
			t.Errorf("sync turned remote charges into local ones on node %v", n)
		}
	}
	for _, cs := range open {
		h.stores[0].ConnClose(cs)
	}
	h.sync()
	for n := range perNode {
		if got := idle.Conns(n); got != 0 {
			t.Errorf("replica 1 still sees %d conns on node %v after closes synced", got, n)
		}
	}
}

// TestTierJournal: replicated writes accumulate in the origin's journal
// with strictly increasing sequence numbers and drain on Sync.
func TestTierJournal(t *testing.T) {
	h := newHarness(t, dstate.ModeReplicated, 3, 4)
	tier := tierOf(t, h)
	var conns []*core.ConnState
	for i := 0; i < 5; i++ {
		cs, _ := h.open(1, fmt.Sprintf("/journal/%d", i))
		conns = append(conns, cs)
	}
	deltas := tier.PendingDeltas(1)
	if len(deltas) != 5 {
		t.Fatalf("journal holds %d deltas after 5 first-touch opens, want 5", len(deltas))
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i].Seq <= deltas[i-1].Seq {
			t.Errorf("journal seq not increasing: %d after %d", deltas[i].Seq, deltas[i-1].Seq)
		}
	}
	if got := tier.PendingDeltas(0); len(got) != 0 {
		t.Errorf("idle front-end journaled %d deltas", len(got))
	}
	h.sync()
	if got := tier.PendingDeltas(1); len(got) != 0 {
		t.Errorf("sync left %d deltas pending", len(got))
	}
	if tier.Syncs() == 0 {
		t.Error("sync round not counted")
	}
	for _, cs := range conns {
		h.stores[1].ConnClose(cs)
	}
}

// tierOf returns the harness's tier, failing for local mode.
func tierOf(t *testing.T, h *harness) *dstate.Tier {
	t.Helper()
	if h.tier == nil {
		t.Fatal("harness has no tier (local mode?)")
	}
	return h.tier
}

// TestTierConfigValidation: the constructor rejects degenerate tiers.
func TestTierConfigValidation(t *testing.T) {
	pol := h1pol(t)
	cases := []struct {
		name string
		cfg  dstate.TierConfig
		pols []core.Policy
	}{
		{"no front-ends", dstate.TierConfig{Mode: dstate.ModeReplicated, Frontends: 0}, nil},
		{"policy count mismatch", dstate.TierConfig{Mode: dstate.ModeReplicated, Frontends: 2}, []core.Policy{pol}},
		{"plural local", dstate.TierConfig{Mode: dstate.ModeLocal, Frontends: 2}, []core.Policy{pol, pol}},
	}
	for _, tc := range cases {
		if _, err := dstate.NewTier(tc.cfg, tc.pols); err == nil {
			t.Errorf("%s: NewTier accepted invalid config", tc.name)
		}
	}
}

// h1pol builds one policy for validation tests.
func h1pol(t *testing.T) core.Policy {
	t.Helper()
	h := newHarness(t, dstate.ModeLocal, 1, 2)
	return h.stores[0].Policy()
}

// TestModeRoundTrip: Mode's string forms parse back, and garbage is
// rejected — the -state flag and scenario schema depend on both.
func TestModeRoundTrip(t *testing.T) {
	for _, m := range []dstate.Mode{dstate.ModeLocal, dstate.ModeSharded, dstate.ModeReplicated} {
		got, err := dstate.ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := dstate.ParseMode("paxos"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

// TestStoreSurface walks the full Store method set on every backend —
// the accessors and lifecycle calls the heavier tests do not reach:
// Mode, Owner, BatchDone after an assignment, and MoveConn's load
// transfer. The tier's own accessors (Mode, Frontends, Owner) are
// pinned alongside.
func TestStoreSurface(t *testing.T) {
	for _, tc := range conformanceModes {
		t.Run(tc.mode.String(), func(t *testing.T) {
			h := newHarness(t, tc.mode, tc.fes, 2)
			for fe, s := range h.stores {
				if s.Mode() != tc.mode {
					t.Fatalf("view %d: Mode = %v, want %v", fe, s.Mode(), tc.mode)
				}
			}
			if h.tier != nil {
				if h.tier.Mode() != tc.mode || h.tier.Frontends() != tc.fes {
					t.Fatalf("tier accessors: mode %v frontends %d", h.tier.Mode(), h.tier.Frontends())
				}
			}

			r := h.req("/surface/a")
			// Owner agrees between the tier and every view; local and
			// replicated views own their own targets.
			for fe, s := range h.stores {
				owner := s.Owner(r.ID)
				switch tc.mode {
				case dstate.ModeSharded:
					if owner != h.tier.Owner(r.ID) {
						t.Fatalf("view %d: Owner %d, tier says %d", fe, owner, h.tier.Owner(r.ID))
					}
				default:
					if owner != fe {
						t.Fatalf("view %d: Owner = %d, want self", fe, owner)
					}
				}
			}

			// Full lifecycle on view 0: open, assign, done, move, close.
			cs, n := h.open(0, "/surface/a")
			s := h.stores[0]
			as := s.AssignBatch(cs, core.Batch{r})
			if len(as) != 1 {
				t.Fatalf("AssignBatch returned %d assignments", len(as))
			}
			s.BatchDone(cs)
			to := core.NodeID((int(n) + 1) % h.nodes)
			s.MoveConn(cs, to)
			if cs.Handling != to {
				t.Fatalf("MoveConn left Handling at %d, want %d", cs.Handling, to)
			}
			if h.localConns() != 1 {
				t.Fatalf("after move: %d conns charged, want 1", h.localConns())
			}
			s.ConnClose(cs)
			if h.localConns() != 0 {
				t.Fatalf("after close: %d conns still charged", h.localConns())
			}
		})
	}
}
