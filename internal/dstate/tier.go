package dstate

import (
	"fmt"
	"sync"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// TierConfig parameterizes an in-process dispatch-state tier: N front-end
// views over N policy replicas/shards sharing one process. The simulator's
// N-front-ends model and the conformance tests run on it; the networked
// prototype implements the same Store interface per process with the sync
// protocol carried over its peer control links.
type TierConfig struct {
	// Mode is the backend; ModeLocal is only valid with one front-end.
	Mode Mode
	// Frontends is the tier size N.
	Frontends int
	// Seed salts the shard-ownership ring (sharded mode). Both sides of
	// a deployment must agree on it, like the boundedch ring seed.
	Seed uint64
	// RingReplicas is the virtual points per front-end on the ownership
	// ring; <= 0 selects policy.OwnerRingReplicas.
	RingReplicas int
}

// MapDelta is one versioned mapping write in a replication journal: the
// origin front-end learned (or re-learned) that Node now caches target ID
// of the given size. Seq is the origin's write sequence number — deltas
// from one origin apply in Seq order, and a conflict between origins on
// the same target resolves last-writer-wins in apply order.
type MapDelta struct {
	ID   core.TargetID
	Node core.NodeID
	Size int64
	Seq  uint64
}

// feState is one front-end's replication bookkeeping.
type feState struct {
	mu      sync.Mutex
	seq     uint64
	pending []MapDelta
}

// Tier is the in-process dispatch-state tier: it owns the shard-ownership
// ring, the per-front-end replication journals, and the policy set, and
// hands out one Store view per front-end.
type Tier struct {
	cfg  TierConfig
	pols []core.Policy
	ring *policy.OwnerRing
	fes  []feState
	// syncs counts completed Sync rounds (metrics, tests).
	syncs int64
}

// NewTier builds a tier over the given per-front-end policies (pols[f] is
// front-end f's replica/shard; all must be built from the same spec). In
// replicated mode the tier installs mapping write observers on every
// policy that exposes one, so journaling starts before traffic.
func NewTier(cfg TierConfig, pols []core.Policy) (*Tier, error) {
	if cfg.Frontends < 1 {
		return nil, fmt.Errorf("dstate: tier needs at least one front-end, got %d", cfg.Frontends)
	}
	if len(pols) != cfg.Frontends {
		return nil, fmt.Errorf("dstate: tier of %d front-ends built with %d policies", cfg.Frontends, len(pols))
	}
	if cfg.Mode == ModeLocal && cfg.Frontends != 1 {
		return nil, fmt.Errorf("dstate: local mode is single-front-end; got %d front-ends", cfg.Frontends)
	}
	t := &Tier{cfg: cfg, pols: pols, fes: make([]feState, cfg.Frontends)}
	if cfg.Mode == ModeSharded {
		t.ring = policy.NewOwnerRing(cfg.Frontends, cfg.RingReplicas, cfg.Seed)
	}
	if cfg.Mode == ModeReplicated {
		for f, p := range pols {
			mp, ok := p.(MappingPolicy)
			if !ok {
				continue // stateless policy: load-only replication
			}
			f := f
			mp.Mapping().SetWriteObserver(func(id core.TargetID, size int64, n core.NodeID) {
				t.journal(f, id, size, n)
			})
		}
	}
	return t, nil
}

// Mode returns the tier's backend mode.
func (t *Tier) Mode() Mode { return t.cfg.Mode }

// Frontends returns the tier size.
func (t *Tier) Frontends() int { return t.cfg.Frontends }

// Owner returns the front-end owning target id's shard (0 outside
// sharded mode: every front-end owns its own replica).
func (t *Tier) Owner(id core.TargetID) int {
	if t.ring == nil {
		return 0
	}
	return t.ring.Owner(id)
}

// Syncs returns the number of completed Sync rounds.
func (t *Tier) Syncs() int64 { return t.syncs }

// journal appends one mapping write to front-end f's pending delta.
func (t *Tier) journal(f int, id core.TargetID, size int64, n core.NodeID) {
	st := &t.fes[f]
	st.mu.Lock()
	st.seq++
	st.pending = append(st.pending, MapDelta{ID: id, Node: n, Size: size, Seq: st.seq})
	st.mu.Unlock()
}

// PendingDeltas returns front-end f's journaled-but-unsynced mapping
// writes (tests, metrics; the networked store encodes the same deltas on
// the wire).
func (t *Tier) PendingDeltas(f int) []MapDelta {
	st := &t.fes[f]
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]MapDelta, len(st.pending))
	copy(out, st.pending)
	return out
}

// Sync performs one bounded-staleness replication round: every
// front-end's pending mapping deltas are applied to every other replica
// (in front-end order, each origin's deltas in sequence order — so a
// mapping conflict resolves last-writer-wins, the highest-numbered
// front-end's latest write standing), then every replica's remote load
// base is set to the sum of its peers' locally charged loads. A no-op in
// local and sharded modes, whose state has a single owner per target. The
// staleness bound is the caller's sync interval: the simulator fires Sync
// on a virtual-time schedule, the prototype's sync loop on a wall-clock
// ticker.
//
// Sync may run concurrently with dispatch (the prototype); deltas
// journaled during the round are simply carried to the next one.
func (t *Tier) Sync() {
	if t.cfg.Mode != ModeReplicated {
		return
	}
	for f := range t.fes {
		st := &t.fes[f]
		st.mu.Lock()
		deltas := st.pending
		st.pending = nil
		st.mu.Unlock()
		if len(deltas) == 0 {
			continue
		}
		for g, p := range t.pols {
			if g == f {
				continue
			}
			mp, ok := p.(MappingPolicy)
			if !ok {
				continue
			}
			m := mp.Mapping()
			for _, d := range deltas {
				m.ApplySynced(d.ID, d.Size, d.Node)
			}
		}
	}
	t.syncLoads()
	t.syncs++
}

// syncLoads refreshes every replica's remote load base: front-end g's
// view of node n becomes its own charges plus the sum of every peer's
// locally charged load and connection count for n, as of this round.
func (t *Tier) syncLoads() {
	nodes := t.pols[0].Loads().Nodes()
	for g, p := range t.pols {
		lt := p.Loads()
		for i := 0; i < nodes; i++ {
			n := core.NodeID(i)
			var load float64
			var conns int64
			for f, q := range t.pols {
				if f == g {
					continue
				}
				load += q.Loads().LocalLoad(n)
				conns += int64(q.Loads().LocalConns(n))
			}
			lt.SetRemote(n, load)
			lt.SetRemoteConns(n, conns)
		}
	}
}

// Store returns front-end fe's view of the tier.
func (t *Tier) Store(fe int) Store {
	if fe < 0 || fe >= t.cfg.Frontends {
		panic(fmt.Sprintf("dstate: front-end index %d out of tier [0,%d)", fe, t.cfg.Frontends))
	}
	switch t.cfg.Mode {
	case ModeSharded:
		return &shardView{t: t, fe: fe}
	case ModeReplicated:
		return &replView{t: t, fe: fe, pol: t.pols[fe]}
	default:
		return NewLocal(t.pols[fe])
	}
}

// shardView is front-end fe's view of a sharded tier: the first request's
// target names the owning front-end, and the whole connection lifecycle —
// decision, batch assignment, load charge, close — runs on the owner's
// shard. The data path (the sockets, the handoff) stays at fe; only the
// state transactions forward.
type shardView struct {
	t  *Tier
	fe int
}

var _ Store = (*shardView)(nil)

func (v *shardView) Mode() Mode                 { return ModeSharded }
func (v *shardView) Policy() core.Policy        { return v.t.pols[v.fe] }
func (v *shardView) Owner(id core.TargetID) int { return v.t.ring.Owner(id) }

// owner resolves the policy owning c's state: the one recorded at open,
// falling back to the local shard for a connection that never opened
// through the tier (defensive; the engine always opens first).
func (v *shardView) owner(c *core.ConnState) core.Policy {
	if f := int(c.OwnerFE); f >= 0 && f < len(v.t.pols) {
		return v.t.pols[f]
	}
	return v.t.pols[v.fe]
}

//phttp:hotpath
func (v *shardView) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	owner := v.t.ring.Owner(first.ID)
	c.OwnerFE = int32(owner)
	return v.t.pols[owner].ConnOpen(c, first)
}

//phttp:hotpath
func (v *shardView) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	return v.owner(c).AssignBatch(c, batch)
}

//phttp:hotpath
func (v *shardView) BatchDone(c *core.ConnState) { v.owner(c).BatchDone(c) }

//phttp:hotpath
func (v *shardView) ConnClose(c *core.ConnState) { v.owner(c).ConnClose(c) }

func (v *shardView) ReportDiskQueue(n core.NodeID, queued int) {
	v.t.pols[v.fe].ReportDiskQueue(n, queued)
}

func (v *shardView) MoveConn(c *core.ConnState, to core.NodeID) {
	v.owner(c).Loads().MoveConn(c.Handling, to)
	c.Handling = to
}

// replView is front-end fe's view of a replicated tier: every decision is
// local against fe's own replica (no cross-front-end coordination on any
// hot path); freshness is whatever the last Sync round delivered.
type replView struct {
	t   *Tier
	fe  int
	pol core.Policy
}

var _ Store = (*replView)(nil)

func (v *replView) Mode() Mode              { return ModeReplicated }
func (v *replView) Policy() core.Policy     { return v.pol }
func (v *replView) Owner(core.TargetID) int { return v.fe }

//phttp:hotpath
func (v *replView) ConnOpen(c *core.ConnState, first core.Request) core.NodeID {
	c.OwnerFE = int32(v.fe)
	return v.pol.ConnOpen(c, first)
}

//phttp:hotpath
func (v *replView) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	return v.pol.AssignBatch(c, batch)
}

//phttp:hotpath
func (v *replView) BatchDone(c *core.ConnState) { v.pol.BatchDone(c) }

//phttp:hotpath
func (v *replView) ConnClose(c *core.ConnState) { v.pol.ConnClose(c) }

func (v *replView) ReportDiskQueue(n core.NodeID, queued int) {
	v.pol.ReportDiskQueue(n, queued)
}

func (v *replView) MoveConn(c *core.ConnState, to core.NodeID) {
	v.pol.Loads().MoveConn(c.Handling, to)
	c.Handling = to
}
