// Package server holds the back-end server cost models (Apache and Flash)
// and the disk model shared by the simulator, the analytic model and the
// prototype doc store.
//
// The paper derived its constants by measurement on a 300 MHz Pentium II
// running FreeBSD 2.2.6; the OCR of the supplied text lost the numerals, so
// the values here are calibrated to the paper's surviving anchors (see
// DESIGN.md §4.5): an 8 KB cached document serves at roughly 1.0 k req/s
// under Apache and 2.7 k req/s under Flash on HTTP/1.0 connections, and
// the analytic crossover between multiple handoff and BE forwarding falls
// in the mid-single-digit KB for Apache and low-tens KB for Flash (Flash's
// cheap per-byte handling keeps forwarding attractive up to larger
// responses), keeping BE forwarding competitive at mean Web response sizes
// (< 13 KB) for both.
package server

import "phttp/internal/core"

// Costs is the CPU cost model of one back-end server plus the
// mechanism-related overheads measured against it. All values are CPU time
// in microseconds on the modeled node unless stated otherwise.
type Costs struct {
	Kind core.ServerKind

	// ConnSetup and ConnTeardown are charged to the connection-handling
	// node when a client connection is established and torn down.
	ConnSetup    core.Micros
	ConnTeardown core.Micros

	// PerRequest is the fixed cost of parsing and servicing one HTTP
	// request (header parse, URL lookup, logging, write setup).
	PerRequest core.Micros

	// TransmitPer512 is the data-touching cost per 512-byte unit of
	// response body on the node that writes to the client connection.
	TransmitPer512 core.Micros

	// HandoffFE and HandoffBE are the front-end and back-end CPU costs of
	// one TCP connection handoff (also paid per migration under multiple
	// handoff, by the front-end and by both back-ends involved).
	HandoffFE core.Micros
	HandoffBE core.Micros

	// ForwardPerRequest is the per-request overhead of a lateral
	// (back-end to back-end) fetch, paid once on each of the two nodes.
	ForwardPerRequest core.Micros

	// ForwardPer512 is the per-512-byte cost on the connection-handling
	// node of receiving laterally forwarded response data before
	// retransmitting it to the client.
	ForwardPer512 core.Micros

	// FEPerRequest is the front-end forwarding-module cost of passing one
	// request's client packets (and copying the request to the
	// dispatcher).
	FEPerRequest core.Micros

	// FEConn is the front-end cost of accepting a client connection and
	// running the dispatcher for it.
	FEConn core.Micros

	// RelayPer512 is the front-end per-512-byte cost of relaying response
	// data when the relaying front-end mechanism is used.
	RelayPer512 core.Micros
}

// ApacheCosts returns the calibrated Apache 1.3.x model.
func ApacheCosts() Costs {
	return Costs{
		Kind:              core.Apache,
		ConnSetup:         145,
		ConnTeardown:      145,
		PerRequest:        286,
		TransmitPer512:    40,
		HandoffFE:         50,
		HandoffBE:         340,
		ForwardPerRequest: 100,
		ForwardPer512:     40,
		FEPerRequest:      5,
		FEConn:            20,
		RelayPer512:       20,
	}
}

// FlashCosts returns the calibrated Flash model. Flash's event-driven
// architecture slashes per-connection and per-request CPU but data-touching
// and handoff costs (kernel work) shrink less.
func FlashCosts() Costs {
	return Costs{
		Kind:              core.Flash,
		ConnSetup:         45,
		ConnTeardown:      45,
		PerRequest:        60,
		TransmitPer512:    15,
		HandoffFE:         50,
		HandoffBE:         220,
		ForwardPerRequest: 25,
		ForwardPer512:     16,
		FEPerRequest:      5,
		FEConn:            20,
		RelayPer512:       20,
	}
}

// CostsFor returns the model for kind.
func CostsFor(kind core.ServerKind) Costs {
	switch kind {
	case core.Flash:
		return FlashCosts()
	default:
		return ApacheCosts()
	}
}

// units512 returns the number of 512-byte units needed for size bytes
// (rounded up, minimum 1 for a non-empty body).
func units512(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return (size + 511) / 512
}

// Transmit returns the CPU cost of transmitting a response body of size
// bytes to the client.
func (c Costs) Transmit(size int64) core.Micros {
	return core.Micros(units512(size)) * c.TransmitPer512
}

// ForwardRecv returns the handling-node CPU cost of receiving size bytes of
// laterally forwarded data.
func (c Costs) ForwardRecv(size int64) core.Micros {
	return core.Micros(units512(size)) * c.ForwardPer512
}

// Relay returns the front-end CPU cost of relaying size response bytes.
func (c Costs) Relay(size int64) core.Micros {
	return core.Micros(units512(size)) * c.RelayPer512
}

// ServeHTTP10 returns the total back-end CPU of serving one cached request
// of size bytes on its own HTTP/1.0 connection: setup + request + transmit
// + teardown. Useful as the calibration anchor.
func (c Costs) ServeHTTP10(size int64) core.Micros {
	return c.ConnSetup + c.PerRequest + c.Transmit(size) + c.ConnTeardown
}
