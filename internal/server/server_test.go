package server

import (
	"testing"

	"phttp/internal/core"
)

func TestTransmitRoundsUpTo512(t *testing.T) {
	c := ApacheCosts()
	cases := []struct {
		size int64
		want core.Micros
	}{
		{0, 0},
		{1, c.TransmitPer512},
		{512, c.TransmitPer512},
		{513, 2 * c.TransmitPer512},
		{8 << 10, 16 * c.TransmitPer512},
	}
	for _, tc := range cases {
		if got := c.Transmit(tc.size); got != tc.want {
			t.Errorf("Transmit(%d) = %v, want %v", tc.size, got, tc.want)
		}
	}
}

// The calibration anchor: an 8 KB cached document serves at roughly
// 1.0 k req/s with Apache and 2.5-3 k req/s with Flash on HTTP/1.0.
func TestHTTP10RateAnchors(t *testing.T) {
	apache := 1e6 / float64(ApacheCosts().ServeHTTP10(8<<10))
	if apache < 700 || apache > 1300 {
		t.Errorf("Apache 8KB HTTP/1.0 rate = %.0f req/s, want ~1000", apache)
	}
	flash := 1e6 / float64(FlashCosts().ServeHTTP10(8<<10))
	if flash < 2000 || flash > 3500 {
		t.Errorf("Flash 8KB HTTP/1.0 rate = %.0f req/s, want ~2700", flash)
	}
	if flash < 2*apache {
		t.Errorf("Flash (%.0f) should be at least 2x Apache (%.0f)", flash, apache)
	}
}

func TestCostsFor(t *testing.T) {
	if CostsFor(core.Apache).Kind != core.Apache {
		t.Error("CostsFor(Apache) wrong kind")
	}
	if CostsFor(core.Flash).Kind != core.Flash {
		t.Error("CostsFor(Flash) wrong kind")
	}
}

func TestFlashCheaperThanApachePerRequest(t *testing.T) {
	a, f := ApacheCosts(), FlashCosts()
	if f.PerRequest >= a.PerRequest {
		t.Error("Flash per-request cost should be below Apache's")
	}
	if f.ConnSetup >= a.ConnSetup {
		t.Error("Flash connection setup should be below Apache's")
	}
	if f.TransmitPer512 >= a.TransmitPer512 {
		t.Error("Flash transmit cost should be below Apache's")
	}
}

func TestDiskReadTimeMonotonic(t *testing.T) {
	d := DefaultDisk()
	if d.ReadTime(0) != d.Position {
		t.Errorf("ReadTime(0) = %v, want positioning only", d.ReadTime(0))
	}
	prev := d.ReadTime(1)
	for _, size := range []int64{513, 4096, 1 << 20} {
		rt := d.ReadTime(size)
		if rt <= prev {
			t.Errorf("ReadTime not increasing at %d", size)
		}
		prev = rt
	}
}

// A disk miss on a mean-size (8 KB) document must dwarf the CPU cost of a
// hit: that ratio is what makes WRR disk-bound in the paper.
func TestMissCostDominatesHitCost(t *testing.T) {
	d := DefaultDisk()
	c := ApacheCosts()
	miss := d.ReadTime(8 << 10)
	hit := c.PerRequest + c.Transmit(8<<10)
	if miss < 10*hit {
		t.Errorf("miss (%v) should be >= 10x hit CPU (%v)", miss, hit)
	}
}

func TestForwardRecvAndRelay(t *testing.T) {
	c := ApacheCosts()
	if c.ForwardRecv(1024) != 2*c.ForwardPer512 {
		t.Errorf("ForwardRecv(1024) = %v", c.ForwardRecv(1024))
	}
	if c.Relay(1024) != 2*c.RelayPer512 {
		t.Errorf("Relay(1024) = %v", c.Relay(1024))
	}
}
