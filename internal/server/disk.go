package server

import "phttp/internal/core"

// DiskParams models a back-end disk: a fixed positioning (seek + rotational)
// cost plus a transfer cost per 512-byte unit. Requests queue FIFO on the
// node's single disk.
type DiskParams struct {
	// Position is the per-read positioning time.
	Position core.Micros
	// TransferPer512 is the media transfer time per 512 bytes.
	TransferPer512 core.Micros
}

// DefaultDisk returns the calibrated late-90s SCSI disk model used across
// the simulator and the prototype: ~12.5 ms positioning (seek + rotation) and ~21 MB/s media
// rate. The exact numbers matter less than the hit/miss cost ratio; they
// make a miss on a mean-size document ~20x the CPU cost of a hit, which
// reproduces the paper's disk-bound WRR behaviour.
func DefaultDisk() DiskParams {
	return DiskParams{Position: 12500, TransferPer512: 24}
}

// ReadTime returns the service time of reading size bytes.
func (d DiskParams) ReadTime(size int64) core.Micros {
	return d.Position + core.Micros(units512(size))*d.TransferPer512
}
