package analytic

import (
	"math"
	"testing"

	"phttp/internal/core"
)

func TestSizeDistQuantileInverseCDF(t *testing.T) {
	d := DefaultSizeDist()
	if got := d.Quantile(0); got != d.Min {
		t.Errorf("Quantile(0) = %d, want Min %d", got, d.Min)
	}
	if got := d.Quantile(1); got != d.Max {
		t.Errorf("Quantile(1) = %d, want Max %d", got, d.Max)
	}
	// Monotone, and a round trip through the CDF recovers the quantile.
	cdf := func(x float64) float64 {
		return (1 - math.Pow(float64(d.Min)/x, d.Alpha)) / d.trunc()
	}
	prev := int64(0)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		x := d.Quantile(q)
		if x < prev {
			t.Fatalf("Quantile not monotone at q=%v", q)
		}
		prev = x
		if got := cdf(float64(x)); math.Abs(got-q) > 1e-3 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestSizeDistMeanClosedFormMatchesNumeric(t *testing.T) {
	d := DefaultSizeDist()
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Quantile((float64(i) + 0.5) / n))
	}
	numeric := sum / n
	if rel := math.Abs(d.Mean()-numeric) / numeric; rel > 0.005 {
		t.Errorf("closed-form mean %.0f vs numeric %.0f (rel err %.4f)", d.Mean(), numeric, rel)
	}
	// The default distribution sits in the paper's mean-size band.
	if m := d.Mean(); m < 6<<10 || m > 13<<10 {
		t.Errorf("default mean size %.0f B outside the 6-13 KB band", m)
	}
}

// TestDelayMonotoneInSize underwrites the whole quantile construction:
// delay quantiles equal delays at size quantiles only if Delay never
// decreases with size.
func TestDelayMonotoneInSize(t *testing.T) {
	for _, kind := range []core.ServerKind{core.Apache, core.Flash} {
		cfg := DefaultConfig(kind)
		prevM, prevF := 0.0, 0.0
		for size := int64(0); size <= 1<<20; size += 777 {
			m, f := cfg.Delay(size)
			if m < prevM || f < prevF {
				t.Fatalf("%v: delay decreased at size %d", kind, size)
			}
			prevM, prevF = m, f
		}
	}
}

// TestDelayQuantilesCrossoverSplit pins the headline structure: the
// bandwidth crossover splits the delay quantiles between the mechanisms.
// The median response is below the crossover, so BE forwarding wins the
// p50; the p99 response is far above it, so multiple handoff wins the
// tail — for both server models.
func TestDelayQuantilesCrossoverSplit(t *testing.T) {
	d := DefaultSizeDist()
	for _, kind := range []core.ServerKind{core.Apache, core.Flash} {
		cfg := DefaultConfig(kind)
		multi, forward := cfg.DelayQuantiles(d)

		if forward.P50US >= multi.P50US {
			t.Errorf("%v: forwarding should win the median (%.0f vs %.0f µs)",
				kind, forward.P50US, multi.P50US)
		}
		for _, q := range []struct {
			name string
			m, f float64
		}{
			{"p99", multi.P99US, forward.P99US},
			{"p999", multi.P999US, forward.P999US},
			{"max", multi.MaxUS, forward.MaxUS},
		} {
			if q.m >= q.f {
				t.Errorf("%v: handoff should win the %s (%.0f vs %.0f µs)",
					kind, q.name, q.m, q.f)
			}
		}

		// Quantiles are nondecreasing and the mean sits inside the range.
		for _, s := range []DelayQuantiles{multi, forward} {
			if !(s.P50US <= s.P95US && s.P95US <= s.P99US &&
				s.P99US <= s.P999US && s.P999US <= s.MaxUS) {
				t.Errorf("%v: quantiles not monotone: %+v", kind, s)
			}
			if s.MeanUS < s.P50US/2 || s.MeanUS > s.MaxUS {
				t.Errorf("%v: mean %.0f µs outside plausible range: %+v", kind, s.MeanUS, s)
			}
		}
	}
}

// TestDelayQuantilesPinned pins the default Apache numbers to the
// microsecond so a cost-model or distribution change cannot slip through
// unnoticed (re-derive by running phttp-analytic).
func TestDelayQuantilesPinned(t *testing.T) {
	multi, forward := DefaultConfig(core.Apache).DelayQuantiles(DefaultSizeDist())
	for _, p := range []struct {
		name      string
		got, want float64
	}{
		{"multi p50", multi.P50US, 1238},
		{"multi p99", multi.P99US, 6478},
		{"multi p999", multi.P999US, 32278},
		{"forward p50", forward.P50US, 1071},
		{"forward p99", forward.P99US, 10678},
		{"forward p999", forward.P999US, 57978},
	} {
		if math.Abs(p.got-p.want) > 0.5 {
			t.Errorf("%s = %.1f µs, want %.0f", p.name, p.got, p.want)
		}
	}
}
