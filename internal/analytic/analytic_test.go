package analytic

import (
	"testing"

	"phttp/internal/core"
)

func TestCrossoverOrdering(t *testing.T) {
	apache := DefaultConfig(core.Apache).Crossover(200 << 10)
	flash := DefaultConfig(core.Flash).Crossover(200 << 10)
	if apache <= 0 || flash <= 0 {
		t.Fatal("no crossover found")
	}
	// Flash's cheap per-byte handling keeps forwarding attractive up to
	// larger responses, so its crossover lies above Apache's.
	if flash <= apache {
		t.Errorf("crossover(flash)=%d should exceed crossover(apache)=%d", flash, apache)
	}
	// Both crossovers straddle typical Web response sizes: the paper's
	// conclusion needs them in the single-digit-to-low-tens KB band.
	if apache < 2<<10 || apache > 16<<10 {
		t.Errorf("apache crossover %d B outside the plausible band", apache)
	}
	if flash < 6<<10 || flash > 32<<10 {
		t.Errorf("flash crossover %d B outside the plausible band", flash)
	}
}

func TestForwardingWinsBelowCrossoverMultiAbove(t *testing.T) {
	for _, kind := range []core.ServerKind{core.Apache, core.Flash} {
		cfg := DefaultConfig(kind)
		cross := cfg.Crossover(200 << 10)
		m, f := cfg.Bandwidth(cross / 2)
		if f <= m {
			t.Errorf("%v: below crossover BE forwarding (%.1f) should beat multi handoff (%.1f)", kind, f, m)
		}
		m, f = cfg.Bandwidth(cross * 4)
		if m <= f {
			t.Errorf("%v: above crossover multi handoff (%.1f) should beat BE forwarding (%.1f)", kind, m, f)
		}
	}
}

func TestBandwidthMonotoneInSize(t *testing.T) {
	cfg := DefaultConfig(core.Apache)
	prevM, prevF := 0.0, 0.0
	for kb := 1; kb <= 100; kb++ {
		m, f := cfg.Bandwidth(int64(kb) << 10)
		if m < prevM || f < prevF {
			t.Fatalf("bandwidth decreased at %d KB", kb)
		}
		prevM, prevF = m, f
	}
}

func TestNearlyIndependentOfRequestsPerConn(t *testing.T) {
	// The paper notes the crossover is nearly independent of the number
	// of requests per connection.
	base := DefaultConfig(core.Apache)
	base.RequestsPerConn = 2
	c2 := base.Crossover(200 << 10)
	base.RequestsPerConn = 20
	c20 := base.Crossover(200 << 10)
	diff := float64(c2-c20) / float64(c2)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.25 {
		t.Errorf("crossover varies %.0f%% between k=2 (%d) and k=20 (%d)", 100*diff, c2, c20)
	}
}

func TestSweepSeries(t *testing.T) {
	multi, forward := DefaultConfig(core.Flash).Sweep(50)
	if len(multi.Points) != 50 || len(forward.Points) != 50 {
		t.Fatalf("sweep lengths %d/%d", len(multi.Points), len(forward.Points))
	}
	if multi.Points[0].X != 1 || multi.Points[49].X != 50 {
		t.Error("sweep X axis wrong")
	}
	for i := range multi.Points {
		if multi.Points[i].Y <= 0 || forward.Points[i].Y <= 0 {
			t.Fatal("non-positive bandwidth in sweep")
		}
	}
}

func TestFlashOutperformsApache(t *testing.T) {
	am, af := DefaultConfig(core.Apache).Bandwidth(8 << 10)
	fm, ff := DefaultConfig(core.Flash).Bandwidth(8 << 10)
	if fm <= am || ff <= af {
		t.Errorf("Flash (%.1f/%.1f) should outperform Apache (%.1f/%.1f)", fm, ff, am, af)
	}
}
