package analytic

import "math"

// SizeDist is a bounded-Pareto response-size distribution: the closed-form
// stand-in for the synthetic workload's heavy-tailed size model (lognormal
// body, Pareto tail with the same shape and cap). It gives the analytic
// model a tail to talk about: the bandwidth analysis above works at the
// mean size, but per-request delay is driven by the size quantiles, and a
// heavy tail puts the upper quantiles far above the mean.
type SizeDist struct {
	// Min and Max bound the support in bytes.
	Min, Max int64
	// Alpha is the Pareto shape (smaller = heavier tail).
	Alpha float64
}

// DefaultSizeDist matches the synthetic workload's tail: shape 1.3 and the
// 4 MB cap from trace.DefaultSynthConfig, with the lower bound placed so
// the distribution mean lands in the paper's sub-13 KB band (~8 KB).
func DefaultSizeDist() SizeDist {
	return SizeDist{Min: 2 << 10, Max: 4 << 20, Alpha: 1.3}
}

// trunc is the truncation mass 1 - (Min/Max)^Alpha dividing the CDF.
func (d SizeDist) trunc() float64 {
	return 1 - math.Pow(float64(d.Min)/float64(d.Max), d.Alpha)
}

// Quantile returns the size at quantile q (0 ≤ q ≤ 1) by the inverse CDF
//
//	F(x) = (1 - (Min/x)^Alpha) / (1 - (Min/Max)^Alpha).
func (d SizeDist) Quantile(q float64) int64 {
	if q <= 0 {
		return d.Min
	}
	if q >= 1 {
		return d.Max
	}
	x := float64(d.Min) / math.Pow(1-q*d.trunc(), 1/d.Alpha)
	if x > float64(d.Max) {
		return d.Max
	}
	return int64(x)
}

// Mean returns the distribution mean in bytes (closed form, Alpha ≠ 1).
func (d SizeDist) Mean() float64 {
	lo, hi, a := float64(d.Min), float64(d.Max), d.Alpha
	return math.Pow(lo, a) / d.trunc() * a / (a - 1) *
		(math.Pow(lo, 1-a) - math.Pow(hi, 1-a))
}

// Delay returns the per-request back-end CPU delay in microseconds each
// mechanism charges for a response of size bytes — the latency floor the
// model predicts for an unloaded cluster (no queueing). It is monotone
// nondecreasing in size, which is what makes delay quantiles computable
// from size quantiles.
func (c Config) Delay(size int64) (multiUS, forwardUS float64) {
	return c.aggregateCPU(size)
}

// DelayQuantiles summarizes one mechanism's per-request delay distribution
// in microseconds, induced by a size distribution.
type DelayQuantiles struct {
	MeanUS float64
	P50US  float64
	P95US  float64
	P99US  float64
	P999US float64
	MaxUS  float64
}

// delayStrata is the midpoint-quantile sample count for the mean; the
// delay is monotone in size, so stratified sampling at this resolution
// bounds the integration error far below the cost model's own calibration
// error.
const delayStrata = 4096

// DelayQuantiles returns both mechanisms' delay summaries under sizes
// drawn from d. Because Delay is monotone in size, the delay at quantile q
// is exactly the delay of the size at quantile q; the mean is integrated
// numerically over midpoint quantiles.
//
// The interesting structure is inherited from the bandwidth crossover:
// below it BE forwarding is cheaper, above it multiple handoff is — so
// with the default heavy-tailed sizes, forwarding wins the median delay
// while handoff wins the p99 and beyond.
func (c Config) DelayQuantiles(d SizeDist) (multi, forward DelayQuantiles) {
	for i := 0; i < delayStrata; i++ {
		q := (float64(i) + 0.5) / delayStrata
		m, f := c.Delay(d.Quantile(q))
		multi.MeanUS += m / delayStrata
		forward.MeanUS += f / delayStrata
	}
	at := func(q float64) (float64, float64) { return c.Delay(d.Quantile(q)) }
	multi.P50US, forward.P50US = at(0.50)
	multi.P95US, forward.P95US = at(0.95)
	multi.P99US, forward.P99US = at(0.99)
	multi.P999US, forward.P999US = at(0.999)
	multi.MaxUS, forward.MaxUS = at(1)
	return multi, forward
}
