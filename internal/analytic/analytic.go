// Package analytic implements the closed-form performance analysis of
// Section 5 of the paper: the bandwidth a four-node cluster delivers under
// the multiple handoff mechanism versus the back-end forwarding mechanism,
// as a function of the average response size, under the pessimal assumption
// that every request after the first on a persistent connection is served by
// a back-end other than the connection-handling node.
//
// The analysis confirms the paper's trade-off: back-end forwarding exchanges
// a per-byte response forwarding cost for the per-request handoff overhead,
// so it wins for small responses and loses for large ones. The crossover
// point depends only on the relative cost of handoff versus data forwarding.
package analytic

import (
	"phttp/internal/core"
	"phttp/internal/metrics"
	"phttp/internal/server"
)

// Config parameterizes the analysis.
type Config struct {
	// Costs is the server cost model (Apache or Flash).
	Costs server.Costs
	// Nodes is the cluster size (the paper uses four).
	Nodes int
	// RequestsPerConn is the average number of requests per persistent
	// connection. The result is nearly independent of it (the paper notes
	// this); it only dilutes the per-connection setup cost.
	RequestsPerConn int
}

// DefaultConfig returns the paper's four-node analysis for the given server.
func DefaultConfig(kind core.ServerKind) Config {
	return Config{Costs: server.CostsFor(kind), Nodes: 4, RequestsPerConn: 6}
}

// aggregateCPU returns the total back-end CPU microseconds consumed per
// request of size bytes under each mechanism, averaged over a connection of
// k requests whose k-1 followers are all served remotely (the pessimal
// assumption). The front-end is assumed not to be the bottleneck, as in the
// paper's analysis.
func (c Config) aggregateCPU(size int64) (multi, forward float64) {
	k := float64(c.RequestsPerConn)
	costs := c.Costs

	// Per-connection work shared by both mechanisms: establishment,
	// handoff to the first node, teardown.
	perConn := float64(costs.ConnSetup + costs.HandoffBE + costs.ConnTeardown)

	// Work common to any serve of one request.
	serve := float64(costs.PerRequest + costs.Transmit(size))

	// Multiple handoff: each follower migrates the connection, costing
	// both back-ends handoff work, then serves locally.
	migrate := float64(2 * costs.HandoffBE)
	multi = perConn/k + serve + (k-1)/k*migrate

	// Back-end forwarding: each follower is produced remotely
	// (per-request forwarding overhead on both nodes) and its bytes cross
	// the handling node's CPU once more on the way to the client.
	lateral := float64(2*costs.ForwardPerRequest) + float64(costs.ForwardRecv(size))
	forward = perConn/k + serve + (k-1)/k*lateral
	return multi, forward
}

// Bandwidth returns the delivered bandwidth in Mb/s for both mechanisms at
// the given average response size: the cluster's aggregate back-end CPU
// (Nodes seconds of CPU per second) divided by the per-request CPU cost,
// times the response size.
func (c Config) Bandwidth(size int64) (multiMbps, forwardMbps float64) {
	multi, forward := c.aggregateCPU(size)
	toMbps := func(cpuMicros float64) float64 {
		if cpuMicros <= 0 {
			return 0
		}
		reqPerSec := float64(c.Nodes) * 1e6 / cpuMicros
		return reqPerSec * float64(size) * 8 / 1e6
	}
	return toMbps(multi), toMbps(forward)
}

// Crossover returns the response size in bytes at which the multiple
// handoff mechanism overtakes back-end forwarding, found by scanning in
// 512-byte steps up to maxSize. It returns maxSize if forwarding still wins
// there.
func (c Config) Crossover(maxSize int64) int64 {
	for size := int64(512); size <= maxSize; size += 512 {
		multi, forward := c.aggregateCPU(size)
		if multi < forward {
			return size
		}
	}
	return maxSize
}

// Sweep evaluates both mechanisms over average file sizes from 1 KB to
// maxKB in 1 KB steps, producing the two series of Figure 5 (Apache) or
// Figure 6 (Flash). X is the average file size in KB, Y the bandwidth in
// Mb/s.
func (c Config) Sweep(maxKB int) (multi, forward *metrics.Series) {
	name := c.Costs.Kind.String()
	multi = &metrics.Series{Name: name + "-multiHandoff"}
	forward = &metrics.Series{Name: name + "-BEforward"}
	for kb := 1; kb <= maxKB; kb++ {
		m, f := c.Bandwidth(int64(kb) << 10)
		multi.Add(float64(kb), m)
		forward.Add(float64(kb), f)
	}
	return multi, forward
}
