package dispatch

import (
	"strings"
	"testing"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// stubPolicy is the minimal core.Policy for registration tests.
type stubPolicy struct{ loads *core.LoadTracker }

func (s *stubPolicy) Name() string { return "stub" }
func (s *stubPolicy) ConnOpen(c *core.ConnState, _ core.Request) core.NodeID {
	c.Handling = 0
	s.loads.AddConn(0)
	return 0
}
func (s *stubPolicy) AssignBatch(c *core.ConnState, batch core.Batch) []core.Assignment {
	out := c.AssignBuf(len(batch))
	for i := range batch {
		out[i] = core.Assignment{Node: c.Handling, CacheLocally: true}
	}
	return out
}
func (s *stubPolicy) BatchDone(*core.ConnState) {}
func (s *stubPolicy) ConnClose(c *core.ConnState) {
	if c.Handling != core.NoNode {
		s.loads.RemoveConn(c.Handling)
		c.Handling = core.NoNode
	}
}
func (s *stubPolicy) ReportDiskQueue(core.NodeID, int) {}
func (s *stubPolicy) Loads() *core.LoadTracker         { return s.loads }

func stubBuilder(opts ...OptionSpec) Builder {
	return Builder{
		Help:    "test stub",
		Options: opts,
		New: func(a BuildArgs) (core.Policy, error) {
			return &stubPolicy{loads: core.NewLoadTracker(a.Nodes)}, nil
		},
	}
}

func TestRegisterDuplicateFails(t *testing.T) {
	if err := Register("dup-policy", stubBuilder()); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	unregisterForTest(t, "dup-policy")
	err := Register("Dup-Policy", stubBuilder()) // canonicalized to the same name
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate Register error = %v, want 'already registered'", err)
	}
}

func TestRegisterRejectsMalformedBuilders(t *testing.T) {
	cases := map[string]struct {
		name string
		b    Builder
	}{
		"empty name":       {"", stubBuilder()},
		"nil constructor":  {"nilnew", Builder{}},
		"empty option key": {"emptykey", stubBuilder(OptionSpec{Key: "", Kind: KindInt, Default: 1})},
		"duplicate option key": {"dupkey", stubBuilder(
			OptionSpec{Key: "x", Kind: KindInt, Default: 1},
			OptionSpec{Key: "x", Kind: KindInt, Default: 2})},
		"mistyped default": {"baddefault", stubBuilder(OptionSpec{Key: "x", Kind: KindInt, Default: "nope"})},
	}
	for label, tc := range cases {
		if err := Register(tc.name, tc.b); err == nil {
			t.Errorf("%s: Register accepted a malformed builder", label)
		}
	}
}

func TestBuildUnknownPolicy(t *testing.T) {
	_, err := Build(Spec{Policy: "no-such-policy", Nodes: 2})
	if err == nil {
		t.Fatal("Build accepted unknown policy")
	}
	// The error must list the valid names so a typo is self-diagnosing.
	if !strings.Contains(err.Error(), "p2c") || !strings.Contains(err.Error(), "extlard") {
		t.Errorf("unknown-policy error does not list registered names: %v", err)
	}
}

func TestBuildRejectsUnknownOptionKey(t *testing.T) {
	spec := testSpec("lard")
	spec.Options = Options{"cache-byts": int64(1 << 20)} // typo
	_, err := Build(spec)
	if err == nil {
		t.Fatal("Build accepted an unknown option key")
	}
	for _, want := range []string{"cache-byts", "cache-bytes"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-key error %q should mention %q", err, want)
		}
	}
}

func TestBuildRejectsMistypedOption(t *testing.T) {
	cases := []struct {
		policy string
		opts   Options
	}{
		{"lard", Options{"cache-bytes": "a lot"}},
		{"lard", Options{"disk-queue-low": 1.5}}, // non-integral float
		{"extlard", Options{"mechanism": 7}},
		{"boundedch", Options{"bound": "wide"}},
	}
	for _, tc := range cases {
		spec := testSpec(tc.policy)
		spec.Options = tc.opts
		if _, err := Build(spec); err == nil {
			t.Errorf("Build(%s, %v) accepted a mistyped option", tc.policy, tc.opts)
		}
	}
}

func TestBuildValidatesMechanismName(t *testing.T) {
	spec := testSpec("extlard")
	spec.Options = Options{"mechanism": "teleport"}
	if _, err := Build(spec); err == nil {
		t.Error("Build accepted an unknown mechanism name")
	}
}

// TestDescribeDefaultsRoundTrip feeds every policy's Describe output back
// into Build as explicit Options: the schema's defaults must themselves be
// valid values (correct kind, accepted by the constructor), so help text
// and behavior cannot drift apart.
func TestDescribeDefaultsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		d, err := Describe(name)
		if err != nil {
			t.Fatalf("Describe(%q): %v", name, err)
		}
		if d.Name != name {
			t.Errorf("Describe(%q).Name = %q", name, d.Name)
		}
		opts := make(Options, len(d.Options))
		for _, o := range d.Options {
			opts[o.Key] = o.Default
		}
		pol, err := Build(Spec{Policy: name, Nodes: 4, Options: opts})
		if err != nil {
			t.Errorf("Build(%q) with Describe defaults: %v", name, err)
			continue
		}
		if pol.Loads().Nodes() != 4 {
			t.Errorf("Build(%q) with defaults returned a wrong-sized policy", name)
		}
	}
}

// TestResolveOptionsLegacyAliases pins the Spec compatibility contract:
// typed legacy fields map onto option keys, explicit Options win, and an
// untouched legacy Spec resolves to exactly its field values.
func TestResolveOptionsLegacyAliases(t *testing.T) {
	spec := Spec{
		Policy:     "extlard",
		Nodes:      4,
		CacheBytes: 1 << 20,
		Params:     policy.Params{LIdle: 10, LOverload: 90, MissCost: 30, DiskQueueLow: 3},
		Mechanism:  core.BEForwarding,
	}
	opts, err := ResolveOptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]any{
		"cache-bytes":    int64(1 << 20),
		"l-idle":         10.0,
		"l-overload":     90.0,
		"miss-cost":      30.0,
		"disk-queue-low": 3,
		"mechanism":      "BEforward",
	} {
		if got := opts[key]; got != want {
			t.Errorf("resolved %q = %v (%T), want %v", key, got, got, want)
		}
	}

	// Explicit Options override the legacy alias.
	spec.Options = Options{"miss-cost": 55.0}
	opts, err = ResolveOptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	if opts["miss-cost"] != 55.0 {
		t.Errorf("explicit option lost to legacy alias: %v", opts["miss-cost"])
	}
	if opts["l-idle"] != 10.0 {
		t.Errorf("sibling alias disturbed by explicit option: %v", opts["l-idle"])
	}

	// A Spec with zero legacy fields resolves to schema defaults.
	d := policy.DefaultParams()
	opts, err = ResolveOptions(Spec{Policy: "lard", Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if opts["l-idle"] != d.LIdle || opts["miss-cost"] != d.MissCost {
		t.Errorf("zero-Spec resolution = %v, want DefaultParams defaults", opts)
	}
}

// TestRegisteredPolicyRunsThroughEngine registers a policy through the
// public API only and drives it through the dispatch engine — the
// extensibility contract of the open registry.
func TestRegisteredPolicyRunsThroughEngine(t *testing.T) {
	if err := Register("engine-stub", stubBuilder(
		OptionSpec{Key: "knob", Kind: KindFloat, Default: 1.5, Help: "test knob"},
	)); err != nil {
		t.Fatal(err)
	}
	unregisterForTest(t, "engine-stub")
	eng, err := NewEngine(Spec{Policy: "engine-stub", Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := eng.Interner()
	c, handling := eng.ConnOpen(internedReq(in, "/x", 1<<10))
	if handling != 0 {
		t.Fatalf("stub policy assigned node %v, want 0", handling)
	}
	if as := eng.AssignBatch(c, core.Batch{internedReq(in, "/y", 1<<10)}); len(as) != 1 {
		t.Fatalf("AssignBatch returned %d assignments", len(as))
	}
	eng.ConnClose(c)
	if eng.Active() != 0 {
		t.Errorf("Active() = %d after close", eng.Active())
	}
}

// TestJSONNumericCoercion pins the scenario-file path: JSON decodes every
// number as float64, and integral floats must coerce to the declared
// integer kinds.
func TestJSONNumericCoercion(t *testing.T) {
	spec := testSpec("boundedch")
	spec.Options = Options{"replicas": 64.0, "bound": 2.0, "seed": 7.0}
	pol, err := Build(spec)
	if err != nil {
		t.Fatalf("Build with JSON-style numbers: %v", err)
	}
	if pol.Name() != "boundedCH" {
		t.Errorf("built %q", pol.Name())
	}
}
