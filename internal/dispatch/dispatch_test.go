package dispatch

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// internedReq builds a request interned through in, as the drivers do at
// the edge (trace loader, HTTP parser).
func internedReq(in *core.Interner, target string, size int64) core.Request {
	t := core.Target(target)
	return core.Request{Target: t, ID: in.Intern(t), Size: size}
}

func testSpec(pol string) Spec {
	return Spec{
		Policy:     pol,
		Nodes:      4,
		CacheBytes: 1 << 20,
		Params:     policy.DefaultParams(),
		Mechanism:  core.BEForwarding,
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"boundedch", "extlard", "lard", "lardr", "p2c", "wrr"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCanonicalNormalizes(t *testing.T) {
	for in, want := range map[string]string{
		"wrr": "wrr", "WRR": "wrr", " ExtLARD ": "extlard", "LardR": "lardr",
	} {
		got, err := Canonical(in)
		if err != nil || got != want {
			t.Errorf("Canonical(%q) = %q, %v, want %q", in, got, err, want)
		}
	}
}

func TestUnknownPolicyErrorListsValidNames(t *testing.T) {
	_, err := Build(testSpec("lrad"))
	if err == nil {
		t.Fatal("Build accepted unknown policy")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid policy %q", err, name)
		}
	}
}

func TestBuildRejectsZeroNodes(t *testing.T) {
	spec := testSpec("wrr")
	spec.Nodes = 0
	if _, err := Build(spec); err == nil {
		t.Error("Build accepted zero nodes")
	}
}

func TestBuildMatchesRegistryName(t *testing.T) {
	for _, name := range Names() {
		pol, err := Build(testSpec(name))
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if pol == nil || pol.Loads().Nodes() != 4 {
			t.Errorf("Build(%q) returned wrong policy instance", name)
		}
	}
}

func TestEngineLifecycle(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(testSpec(name))
			if err != nil {
				t.Fatal(err)
			}
			if eng.PolicyName() != name {
				t.Errorf("PolicyName() = %q, want %q", eng.PolicyName(), name)
			}
			in := eng.Interner()
			var conns []*Conn
			for i := 0; i < 16; i++ {
				first := internedReq(in, fmt.Sprintf("/t%d", i), 4<<10)
				c, handling := eng.ConnOpen(first)
				if handling == core.NoNode || c.Handling() != handling {
					t.Fatalf("ConnOpen: handling %v, conn says %v", handling, c.Handling())
				}
				as := eng.AssignBatch(c, core.Batch{first, internedReq(in, "/shared", 4<<10)})
				if len(as) != 2 {
					t.Fatalf("AssignBatch returned %d assignments, want 2", len(as))
				}
				conns = append(conns, c)
			}
			loads := eng.Policy().Loads()
			total := 0
			for n := 0; n < loads.Nodes(); n++ {
				total += loads.Conns(core.NodeID(n))
			}
			if total != 16 || eng.Active() != 16 {
				t.Errorf("tracked %d conns / %d active, want 16/16", total, eng.Active())
			}
			if eng.Requests() != 32 {
				t.Errorf("Requests() = %d, want 32", eng.Requests())
			}
			for _, c := range conns {
				eng.BatchDone(c)
				eng.ConnClose(c)
				eng.ConnClose(c) // double close must be absorbed
			}
			if eng.Active() != 0 {
				t.Errorf("Active() = %d after closing all", eng.Active())
			}
			for n := 0; n < loads.Nodes(); n++ {
				if loads.Conns(core.NodeID(n)) != 0 {
					t.Errorf("node %d still holds %d conns", n, loads.Conns(core.NodeID(n)))
				}
			}
			if got := loads.Total(); math.Abs(got) > 1e-9 {
				t.Errorf("Total() = %v after closing all, want 0", got)
			}
		})
	}
}

// TestEngineConcurrentStress hammers the engine from many goroutines with
// mixed ConnOpen/AssignBatch/BatchDone/ConnClose traffic plus concurrent
// disk-queue feedback, then asserts the load-tracker and mapping invariants:
// no lost connection counts, no leaked load units, mapping within budget.
// Run under -race this is the acceptance test for the lock-free dispatch
// path.
func TestEngineConcurrentStress(t *testing.T) {
	mechs := map[string]core.Mechanism{
		"wrr":       core.SingleHandoff,
		"lard":      core.SingleHandoff,
		"lardr":     core.SingleHandoff,
		"extlard":   core.BEForwarding,
		"p2c":       core.SingleHandoff,
		"boundedch": core.SingleHandoff,
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec := testSpec(name)
			spec.Nodes = 8
			spec.Mechanism = mechs[name]
			eng, err := NewEngine(spec)
			if err != nil {
				t.Fatal(err)
			}
			const (
				goroutines   = 8
				connsPerGoro = 300
			)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					zipf := rand.NewZipf(rng, 1.3, 1, 4096)
					in := eng.Interner()
					for i := 0; i < connsPerGoro; i++ {
						first := internedReq(in, fmt.Sprintf("/z%d", zipf.Uint64()), int64(rng.Intn(16<<10))+1)
						c, _ := eng.ConnOpen(first)
						batches := rng.Intn(3) + 1
						for b := 0; b < batches; b++ {
							batch := make(core.Batch, rng.Intn(4)+1)
							for j := range batch {
								batch[j] = internedReq(in, fmt.Sprintf("/z%d", zipf.Uint64()), int64(rng.Intn(16<<10))+1)
							}
							eng.AssignBatch(c, batch)
						}
						if rng.Intn(2) == 0 {
							eng.BatchDone(c)
						}
						if rng.Intn(16) == 0 {
							eng.ReportDiskQueue(core.NodeID(rng.Intn(spec.Nodes)), rng.Intn(8))
						}
						eng.ConnClose(c)
					}
				}(int64(g) + 1)
			}
			wg.Wait()

			if eng.Active() != 0 {
				t.Errorf("Active() = %d after all closes", eng.Active())
			}
			if got, want := eng.Connections(), int64(goroutines*connsPerGoro); got != want {
				t.Errorf("Connections() = %d, want %d", got, want)
			}
			loads := eng.Policy().Loads()
			for n := 0; n < loads.Nodes(); n++ {
				if c := loads.Conns(core.NodeID(n)); c != 0 {
					t.Errorf("node %d: %d connection counts lost or leaked", n, c)
				}
				// Fractional 1/N charges cancel pairwise; interleaved CAS
				// float adds can leave only rounding residue.
				if l := loads.Load(core.NodeID(n)); math.Abs(l) > 1e-6 {
					t.Errorf("node %d: %v load units leaked", n, l)
				}
			}
			if ext, ok := eng.Policy().(*policy.ExtLARD); ok {
				m := ext.Mapping()
				for n := 0; n < m.Nodes(); n++ {
					if b := m.MappedBytes(core.NodeID(n)); b > spec.CacheBytes {
						t.Errorf("node %d mapping holds %d bytes, budget %d", n, b, spec.CacheBytes)
					}
				}
			}
		})
	}
}
