package dispatch

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// TestDispatchSteadyStateZeroAllocs pins the ROADMAP claim that closed out
// the last ~0.3 allocs/event: with connection records pooled across the
// run, a warmed engine opens, assigns and closes connections without
// allocating, for every registered policy. Requests are pre-interned (the
// drivers intern at the edge), so the measured loop is exactly the
// simulator's and the prototype's steady-state dispatch path.
func TestDispatchSteadyStateZeroAllocs(t *testing.T) {
	mechs := map[string]core.Mechanism{
		"wrr":     core.SingleHandoff,
		"lard":    core.SingleHandoff,
		"lardr":   core.SingleHandoff,
		"extlard": core.BEForwarding,
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec := testSpec(name)
			spec.Mechanism = mechs[name]
			eng, err := NewEngine(spec)
			if err != nil {
				t.Fatal(err)
			}
			in := eng.Interner()
			batch := make(core.Batch, 4)
			for i := range batch {
				batch[i] = internedReq(in, fmt.Sprintf("/t%d", i), 8<<10)
			}
			lifecycle := func() {
				c, _ := eng.ConnOpen(batch[0])
				eng.AssignBatch(c, batch)
				eng.ConnClose(c)
			}
			// Warm up: pool a record, grow its buffers, populate the
			// mapping so steady-state inserts hit resident entries.
			for i := 0; i < 64; i++ {
				lifecycle()
			}
			if avg := testing.AllocsPerRun(1000, lifecycle); avg != 0 {
				t.Errorf("steady-state connection lifecycle allocates %.2f allocs/op, want 0", avg)
			}
		})
	}
}

// TestConnRecordsRecycled verifies the pool actually recycles: a record
// freed by ConnClose is handed to the next ConnOpen with fresh bookkeeping
// but its grown buffers intact.
func TestConnRecordsRecycled(t *testing.T) {
	eng, err := NewEngine(testSpec("extlard"))
	if err != nil {
		t.Fatal(err)
	}
	in := eng.Interner()
	batch := make(core.Batch, 8)
	for i := range batch {
		batch[i] = internedReq(in, fmt.Sprintf("/r%d", i), 4<<10)
	}
	c1, _ := eng.ConnOpen(batch[0])
	eng.AssignBatch(c1, batch)
	grown := cap(c1.State().Assignments)
	if grown < len(batch) {
		t.Fatalf("assignment buffer did not grow: cap %d", grown)
	}
	id1 := c1.ID()
	eng.ConnClose(c1)

	c2, _ := eng.ConnOpen(batch[0])
	if c2 != c1 {
		t.Error("ConnOpen did not recycle the pooled record")
	}
	if c2.ID() == id1 {
		t.Error("recycled record kept the old connection ID")
	}
	if c2.Handling() == core.NoNode {
		t.Error("recycled record not re-opened")
	}
	if got := c2.State().Requests; got != 0 {
		t.Errorf("recycled record kept %d requests of bookkeeping", got)
	}
	if cap(c2.State().Assignments) != grown {
		t.Errorf("recycled record lost its buffers: cap %d, want %d", cap(c2.State().Assignments), grown)
	}
	eng.ConnClose(c2)
}

// TestConnOpenPanicsOnUnInternedRequest guards the engine's edge contract:
// lazy interning is gone, so a driver that forgets to intern must fail
// loudly at the first connection, not corrupt policy tables silently.
func TestConnOpenPanicsOnUnInternedRequest(t *testing.T) {
	eng, err := NewEngine(testSpec("wrr"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("ConnOpen accepted a request with no interned ID")
		}
	}()
	eng.ConnOpen(core.Request{Target: "/raw", Size: 1})
}

// TestEngineEvictableConcurrentStress is the capped-interner variant of the
// concurrent stress: parallel connection handlers intern at the edge,
// dispatch, and release their parse holds, over a target universe far
// larger than the cap, with automatic maintenance compaction running every
// few closes. Under -race this is the acceptance test for the interner's
// lifecycle locking; the final assertions pin the tentpole claim that the
// table stays bounded under unbounded-URL churn.
func TestEngineEvictableConcurrentStress(t *testing.T) {
	const (
		maxTargets = 4096
		universe   = 1 << 16
	)
	spec := testSpec("extlard")
	spec.Nodes = 8
	spec.Mechanism = core.BEForwarding
	spec.MaxTargets = maxTargets
	spec.MaintainEvery = 64
	eng, err := NewEngine(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Interner().Evictable() {
		t.Fatal("spec.MaxTargets did not produce an evictable interner")
	}
	const (
		goroutines   = 8
		connsPerGoro = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			in := eng.Interner()
			for i := 0; i < connsPerGoro; i++ {
				first := internedReq(in, fmt.Sprintf("/u%d", rng.Intn(universe)), int64(rng.Intn(16<<10))+1)
				c, _ := eng.ConnOpen(first)
				eng.ReleaseBatch(core.Batch{first})
				for b := rng.Intn(3); b >= 0; b-- {
					batch := make(core.Batch, rng.Intn(4)+1)
					for j := range batch {
						batch[j] = internedReq(in, fmt.Sprintf("/u%d", rng.Intn(universe)), int64(rng.Intn(16<<10))+1)
					}
					eng.AssignBatch(c, batch)
					eng.ReleaseBatch(batch)
				}
				eng.ConnClose(c)
			}
		}(int64(g) + 1)
	}
	wg.Wait()

	eng.Maintain()
	in := eng.Interner()
	if got := in.Len(); got > maxTargets {
		t.Errorf("interner holds %d targets after churn, cap %d", got, maxTargets)
	}
	if hw := int(in.HighWater()); hw > maxTargets+goroutines*8 {
		t.Errorf("ID high water %d after churn, want ≤ cap plus in-flight slack", hw)
	}
	if in.Recycles() == 0 {
		t.Error("no IDs were recycled despite universe ≫ cap")
	}
	if eng.Active() != 0 {
		t.Errorf("Active() = %d after all closes", eng.Active())
	}
	// The mapping's references and the load accounting must both balance.
	loads := eng.Policy().Loads()
	for n := 0; n < loads.Nodes(); n++ {
		if c := loads.Conns(core.NodeID(n)); c != 0 {
			t.Errorf("node %d: %d connection counts leaked", n, c)
		}
	}
	m := eng.Policy().(*policy.ExtLARD).Mapping()
	mapped := 0
	for n := 0; n < m.Nodes(); n++ {
		mapped += m.MappedTargets(core.NodeID(n))
	}
	if live := in.Len() - in.Limbo(); live > mapped {
		t.Errorf("%d targets still referenced but only %d mapping entries exist (leaked holds)", live, mapped)
	}
}
