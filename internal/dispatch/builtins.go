package dispatch

import (
	"fmt"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// The built-in policies register through the same public Register API a
// third-party policy uses (see examples/custom-policy): nothing below
// touches registry internals, so the registration path stays honest.

// lardOptions is the option schema shared by the LARD family. Defaults are
// the calibrated policy.DefaultParams values (see DESIGN.md §6), so a
// scenario that sets no options runs the paper's configuration.
func lardOptions() []OptionSpec {
	d := policy.DefaultParams()
	return []OptionSpec{
		{Key: "cache-bytes", Kind: KindInt64, Default: int64(0),
			Help: "per-node cache size assumed by the target→node mapping model (bytes)"},
		{Key: "l-idle", Kind: KindFloat, Default: d.LIdle,
			Help: "load below which a node counts as underutilized (T_low)"},
		{Key: "l-overload", Kind: KindFloat, Default: d.LOverload,
			Help: "load at which the balancing cost becomes infinite (T_high)"},
		{Key: "miss-cost", Kind: KindFloat, Default: d.MissCost,
			Help: "delay penalty of a cache miss, in load units"},
		{Key: "disk-queue-low", Kind: KindInt, Default: d.DiskQueueLow,
			Help: "queued-disk-events threshold under which a node's disk counts as idle"},
		{Key: "down-cold-start", Kind: KindBool, Default: true,
			Help: "on a node's Down transition, drop its mapping entries (cold restart); false keeps them for a warm rejoin"},
	}
}

// lardParams assembles the LARD-family tuning constants from resolved
// options.
func lardParams(a BuildArgs) policy.Params {
	return policy.Params{
		LIdle:        a.Float("l-idle"),
		LOverload:    a.Float("l-overload"),
		MissCost:     a.Float("miss-cost"),
		DiskQueueLow: a.Int("disk-queue-low"),
	}
}

func init() {
	MustRegister("wrr", Builder{
		Help: "weighted round-robin over connection counts, content-blind (commercial layer-4 front-ends)",
		New: func(a BuildArgs) (core.Policy, error) {
			return policy.NewWRR(a.Nodes), nil
		},
	})

	MustRegister("lard", Builder{
		Help:    "locality-aware request distribution at connection granularity (Pai et al., ASPLOS '98)",
		Options: lardOptions(),
		New: func(a BuildArgs) (core.Policy, error) {
			l := policy.NewLARD(a.Nodes, a.Int64("cache-bytes"), lardParams(a))
			l.DownColdStart = a.Bool("down-cold-start")
			return l, nil
		},
	})

	MustRegister("lardr", Builder{
		Help:    "LARD with replicated server sets (the ASPLOS '98 companion strategy)",
		Options: lardOptions(),
		New: func(a BuildArgs) (core.Policy, error) {
			l := policy.NewLARDR(a.Nodes, a.Int64("cache-bytes"), lardParams(a))
			l.DownColdStart = a.Bool("down-cold-start")
			return l, nil
		},
	})

	MustRegister("extlard", Builder{
		Help: "extended LARD for persistent connections, per-request distribution through the configured mechanism (Section 4.2)",
		Options: append(lardOptions(), OptionSpec{
			Key: "mechanism", Kind: KindString, Default: core.SingleHandoff.String(),
			Help: "distribution mechanism the policy drives: singleHandoff, multiHandoff, BEforward, relayFE or zeroCost",
		}),
		New: func(a BuildArgs) (core.Policy, error) {
			mech, err := a.Mechanism("mechanism")
			if err != nil {
				return nil, err
			}
			e := policy.NewExtLARD(a.Nodes, a.Int64("cache-bytes"), lardParams(a), mech)
			e.DownColdStart = a.Bool("down-cold-start")
			return e, nil
		},
	})

	MustRegister("p2c", Builder{
		Help: "power-of-two-choices: two target-keyed hash candidates, the less loaded wins (Mitzenmacher '96)",
		Options: []OptionSpec{
			{Key: "seed", Kind: KindInt64, Default: int64(1),
				Help: "hash seed for the two candidate choices (deterministic per target)"},
		},
		New: func(a BuildArgs) (core.Policy, error) {
			return policy.NewP2C(a.Nodes, uint64(a.Int64("seed"))), nil
		},
	})

	MustRegister("boundedch", Builder{
		Help: "consistent hashing with bounded loads: ring walk from the target's hash, first node under c× mean load wins (Mirrokni et al. '17)",
		Options: []OptionSpec{
			{Key: "bound", Kind: KindFloat, Default: 1.25,
				Help: "load bound factor c (≥ 1): no node accepts more than ceil(c × mean) connections"},
			{Key: "replicas", Kind: KindInt, Default: 128,
				Help: "virtual ring points per node"},
			{Key: "seed", Kind: KindInt64, Default: int64(1),
				Help: "hash seed for the ring and target placement"},
		},
		New: func(a BuildArgs) (core.Policy, error) {
			bound := a.Float("bound")
			if bound < 1 {
				return nil, fmt.Errorf("boundedch: bound must be >= 1, got %g", bound)
			}
			replicas := a.Int("replicas")
			if replicas <= 0 {
				return nil, fmt.Errorf("boundedch: replicas must be positive, got %d", replicas)
			}
			return policy.NewBoundedCH(a.Nodes, replicas, bound, uint64(a.Int64("seed"))), nil
		},
	})
}
