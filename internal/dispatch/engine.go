package dispatch

import (
	"sync/atomic"

	"phttp/internal/core"
)

// Engine is the concurrency-safe dispatch engine: it owns the policy
// instance, allocates connection IDs, tracks live connection state, and
// exposes the dispatch lifecycle to parallel callers.
//
// Concurrency contract: calls for *different* connections may run fully in
// parallel — the underlying policy state (atomic load tracker, hash-sharded
// mapping) needs no engine-level lock. Calls for a *single* connection
// (ConnOpen → AssignBatch* → BatchDone? → ConnClose) must be issued in
// order by one caller at a time, which both drivers do naturally: the
// prototype front-end runs one goroutine per client connection, and the
// simulator is single-threaded.
type Engine struct {
	spec     Spec
	name     string // canonical registry name
	pol      core.Policy
	interner *core.Interner

	nextID atomic.Int64
	live   atomic.Int64

	conns atomic.Int64 // connections opened, cumulative
	reqs  atomic.Int64 // requests assigned, cumulative
}

// Conn is the engine's handle for one live client connection.
type Conn struct {
	cs     *core.ConnState
	closed atomic.Bool
	reqBuf []core.Request // scratch for interning un-IDed batches
}

// ID returns the connection's engine-assigned identifier.
func (c *Conn) ID() core.ConnID { return c.cs.ID }

// Handling returns the connection-handling node (NoNode after close).
func (c *Conn) Handling() core.NodeID { return c.cs.Handling }

// State exposes the underlying connection state for metrics and tests.
func (c *Conn) State() *core.ConnState { return c.cs }

// NewEngine builds the policy named by spec through the registry and
// returns an engine dispatching through it.
func NewEngine(spec Spec) (*Engine, error) {
	name, err := Canonical(spec.Policy)
	if err != nil {
		return nil, err
	}
	pol, err := Build(spec)
	if err != nil {
		return nil, err
	}
	in := spec.Interner
	if in == nil {
		in = core.NewInterner()
	}
	return &Engine{spec: spec, name: name, pol: pol, interner: in}, nil
}

// Interner exposes the engine's target interner (shared with the driver
// when the Spec supplied one).
func (e *Engine) Interner() *core.Interner { return e.interner }

// Policy exposes the engine's policy (metrics, tests).
func (e *Engine) Policy() core.Policy { return e.pol }

// PolicyName returns the canonical registry name of the engine's policy
// ("wrr", "lard", "lardr" or "extlard").
func (e *Engine) PolicyName() string { return e.name }

// Nodes returns the number of back-end nodes dispatched over.
func (e *Engine) Nodes() int { return e.spec.Nodes }

// Connections returns the cumulative number of connections opened.
func (e *Engine) Connections() int64 { return e.conns.Load() }

// Requests returns the cumulative number of requests assigned.
func (e *Engine) Requests() int64 { return e.reqs.Load() }

// Active returns the number of currently open connections.
func (e *Engine) Active() int64 { return e.live.Load() }

// ConnOpen admits a new client connection: it allocates the connection
// state, interns the first request's target if the caller has not, asks the
// policy for the handling node based on that request, and begins tracking
// the connection.
func (e *Engine) ConnOpen(first core.Request) (*Conn, core.NodeID) {
	c := &Conn{cs: core.NewConnState(core.ConnID(e.nextID.Add(1)))}
	first.ID = e.interner.EnsureID(first)
	handling := e.pol.ConnOpen(c.cs, first)
	e.live.Add(1)
	e.conns.Add(1)
	return c, handling
}

// AssignBatch assigns every request of a pipelined batch arriving on c and
// performs the paper's 1/N load accounting. It returns one Assignment per
// request, in order; the slice may be backed by the connection's reusable
// buffer and is valid until the next AssignBatch on c.
//
// Batches from a pre-interned workload (every Request.ID set) pass through
// untouched — in particular the simulator's shared trace is never written
// to, so parallel sweep workers can replay one trace concurrently. A batch
// with missing IDs is copied into the connection's scratch and interned
// there.
func (e *Engine) AssignBatch(c *Conn, batch core.Batch) []core.Assignment {
	for i := range batch {
		if batch[i].ID == core.NoTarget {
			batch = e.internBatch(c, batch)
			break
		}
	}
	as := e.pol.AssignBatch(c.cs, batch)
	e.reqs.Add(int64(len(batch)))
	return as
}

// internBatch copies batch into c's scratch buffer with every target
// interned. Calls for one connection are serialized (the engine's
// concurrency contract), so the buffer is safe to reuse.
func (e *Engine) internBatch(c *Conn, batch core.Batch) core.Batch {
	if cap(c.reqBuf) < len(batch) {
		c.reqBuf = make([]core.Request, len(batch))
	}
	c.reqBuf = c.reqBuf[:len(batch)]
	for i, r := range batch {
		r.ID = e.interner.EnsureID(r)
		c.reqBuf[i] = r
	}
	return c.reqBuf
}

// BatchDone tells the policy the connection went idle after its current
// batch, releasing fractional remote loads early.
func (e *Engine) BatchDone(c *Conn) { e.pol.BatchDone(c.cs) }

// ConnClose releases all load held by c and stops tracking it. It is
// idempotent: double closes (teardown races in a real front-end) are
// absorbed here rather than corrupting the load accounting.
func (e *Engine) ConnClose(c *Conn) {
	if c == nil || !c.closed.CompareAndSwap(false, true) {
		return
	}
	e.pol.ConnClose(c.cs)
	e.live.Add(-1)
}

// ReportDiskQueue delivers a back-end's disk queue length to the policy
// (the prototype's control-session feedback).
func (e *Engine) ReportDiskQueue(n core.NodeID, queued int) {
	e.pol.ReportDiskQueue(n, queued)
}
