package dispatch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"phttp/internal/cache"
	"phttp/internal/core"
	"phttp/internal/dstate"
)

// Engine is the concurrency-safe dispatch engine: it owns the policy
// instance, allocates connection IDs, tracks live connection state, and
// exposes the dispatch lifecycle to parallel callers.
//
// Concurrency contract: calls for *different* connections may run fully in
// parallel — the underlying policy state (atomic load tracker, hash-sharded
// mapping) needs no engine-level lock. Calls for a *single* connection
// (ConnOpen → AssignBatch* → BatchDone? → ConnClose) must be issued in
// order by one caller at a time, which both drivers do naturally: the
// prototype front-end runs one goroutine per client connection, and the
// simulator is single-threaded.
//
// Requests reaching the engine must be interned (Request.ID set): the
// simulator's trace loader interns at build time and the prototype's HTTP
// parser interns at parse time (httpmsg.ReadRequestInterned), so no
// per-request target hashing survives on any hot path. ConnOpen checks the
// first request and panics on a missing ID — the one cheap guard that
// catches a mis-wired driver before the policies corrupt their tables.
type Engine struct {
	spec Spec
	name string // canonical registry name
	// store is the dispatch-state tier view every lifecycle call routes
	// through: local (one policy owning all state — the single-front-end
	// default whose decisions are bit-identical to the pre-tier engine),
	// sharded, or replicated. pol is the store's local policy replica —
	// the object membership transitions, interner refcounting and
	// metrics talk to.
	store    dstate.Store
	pol      core.Policy
	interner *core.Interner

	nextID atomic.Int64
	live   atomic.Int64

	conns     atomic.Int64 // connections opened, cumulative
	reqs      atomic.Int64 // requests assigned, cumulative
	closes    atomic.Int64 // connections closed, cumulative
	maintains atomic.Int64 // Maintain passes run, cumulative

	// connPool recycles Conn records across the run: the record and its
	// embedded buffers (assignment, scratch, remote-load) survive from one
	// client connection to the next, so a warmed engine opens and closes
	// connections without allocating. One brief lock per open/close is
	// noise next to the dispatch work between them.
	poolMu   sync.Mutex
	connPool []*Conn

	// maintainEvery triggers Maintain every that many connection closes
	// when the interner is evictable (0 = never).
	maintainEvery int64

	// compact is the policy's optional dense-slice trim hook, resolved once.
	compact interface{ CompactTargets(core.TargetID) }

	// membership is the policy's optional membership-transition hook,
	// resolved once (nil when the policy ignores churn). nodePhases and
	// upNodes are the engine's own view, kept even for such policies so
	// HasUp/PickUp still gate admission and re-dispatch.
	membership core.MembershipPolicy
	nodePhases []atomic.Int32
	upNodes    atomic.Int32
}

// Conn is the engine's handle for one live client connection. The
// connection state is embedded by value: one allocation covers the handle,
// the bookkeeping and (after warmup) the policy buffers, and the pool above
// makes even that allocation a one-time cost.
type Conn struct {
	cs     core.ConnState
	closed atomic.Bool
}

// ID returns the connection's engine-assigned identifier.
func (c *Conn) ID() core.ConnID { return c.cs.ID }

// Handling returns the connection-handling node (NoNode after close).
func (c *Conn) Handling() core.NodeID { return c.cs.Handling }

// State exposes the underlying connection state for metrics and tests.
func (c *Conn) State() *core.ConnState { return &c.cs }

// maintainDefault is how many connection closes separate two maintenance
// passes when a Spec with an evictable interner does not say otherwise.
const maintainDefault = 1024

// NewEngine builds the policy named by spec through the registry and
// returns an engine dispatching through it. When the spec carries a target
// cap (MaxTargets) and no interner, an evictable interner is created; an
// evictable interner (supplied or created) is wired into the policy's
// mapping tables as the target-lifecycle refcounter and compacted
// periodically as connections close.
func NewEngine(spec Spec) (*Engine, error) {
	pol, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return NewEngineWithStore(spec, dstate.NewLocal(pol))
}

// NewEngineWithStore builds an engine dispatching through an externally
// constructed dispatch-state store: one view of a scale-out tier (the
// simulator's in-process dstate.Tier, the prototype's networked stores).
// The engine's membership transitions, interner refcounting and metrics
// bind to store.Policy() — the front-end's own replica/shard; cross-
// front-end routing is the store's business.
func NewEngineWithStore(spec Spec, store dstate.Store) (*Engine, error) {
	name, err := Canonical(spec.Policy)
	if err != nil {
		return nil, err
	}
	pol := store.Policy()
	in := spec.Interner
	if in == nil {
		if spec.MaxTargets > 0 {
			in = core.NewEvictableInternerStripes(spec.MaxTargets, spec.InternStripes)
		} else {
			in = core.NewInterner()
		}
	}
	e := &Engine{spec: spec, name: name, store: store, pol: pol, interner: in}
	e.nextID.Store(spec.ConnIDBase)
	e.membership, _ = pol.(core.MembershipPolicy)
	e.initMembership(spec.Nodes)
	if in.Evictable() {
		if m, ok := pol.(interface{ Mapping() *cache.Mapping }); ok {
			m.Mapping().SetRefCounter(in)
		}
		e.compact, _ = pol.(interface{ CompactTargets(core.TargetID) })
		e.maintainEvery = int64(spec.MaintainEvery)
		if e.maintainEvery <= 0 {
			e.maintainEvery = maintainDefault
		}
	}
	return e, nil
}

// Interner exposes the engine's target interner (shared with the driver
// when the Spec supplied one).
func (e *Engine) Interner() *core.Interner { return e.interner }

// Policy exposes the engine's policy (metrics, tests).
func (e *Engine) Policy() core.Policy { return e.pol }

// Store exposes the engine's dispatch-state store (a dstate.Local unless
// the engine was built for a scale-out tier).
func (e *Engine) Store() dstate.Store { return e.store }

// NewTierEngines builds one engine per front-end of an in-process
// dispatch-state tier: N policies from the same spec, a dstate.Tier over
// them, and an engine around each view. The simulator's N-front-ends
// model runs on the result; Sync rounds go through the returned tier.
// All engines share the spec's interner (the caller supplies one — the
// simulator's workload interner — or the first engine's creation would
// not be visible to the rest).
func NewTierEngines(spec Spec, tcfg dstate.TierConfig) ([]*Engine, *dstate.Tier, error) {
	pols := make([]core.Policy, tcfg.Frontends)
	for i := range pols {
		p, err := Build(spec)
		if err != nil {
			return nil, nil, err
		}
		pols[i] = p
	}
	tier, err := dstate.NewTier(tcfg, pols)
	if err != nil {
		return nil, nil, err
	}
	engines := make([]*Engine, tcfg.Frontends)
	for i := range engines {
		e, err := NewEngineWithStore(spec, tier.Store(i))
		if err != nil {
			return nil, nil, err
		}
		engines[i] = e
	}
	return engines, tier, nil
}

// PolicyName returns the canonical registry name of the engine's policy
// ("wrr", "lard", "lardr" or "extlard").
func (e *Engine) PolicyName() string { return e.name }

// Nodes returns the number of back-end nodes dispatched over.
func (e *Engine) Nodes() int { return e.spec.Nodes }

// Connections returns the cumulative number of connections opened.
func (e *Engine) Connections() int64 { return e.conns.Load() }

// Requests returns the cumulative number of requests assigned.
func (e *Engine) Requests() int64 { return e.reqs.Load() }

// Closes returns the cumulative number of connections closed.
func (e *Engine) Closes() int64 { return e.closes.Load() }

// Maintains returns the cumulative number of Maintain passes run (from
// any trigger). Drivers running a wall-clock maintenance ticker compare
// it across ticks to tell an engine whose close-driven maintenance is
// keeping up from one that has gone stale — counting closes instead
// would let a slow trickle of closes (well under MaintainEvery per tick)
// suppress the ticker indefinitely.
func (e *Engine) Maintains() int64 { return e.maintains.Load() }

// Active returns the number of currently open connections.
func (e *Engine) Active() int64 { return e.live.Load() }

// getConn pops a recycled connection record or allocates the run's next one.
//
//phttp:hotpath
func (e *Engine) getConn() *Conn {
	e.poolMu.Lock()
	if n := len(e.connPool); n > 0 {
		c := e.connPool[n-1]
		e.connPool = e.connPool[:n-1]
		e.poolMu.Unlock()
		return c
	}
	e.poolMu.Unlock()
	return &Conn{}
}

// putConn returns a closed connection record to the pool.
//
//phttp:hotpath
func (e *Engine) putConn(c *Conn) {
	e.poolMu.Lock()
	e.connPool = append(e.connPool, c)
	e.poolMu.Unlock()
}

// ConnOpen admits a new client connection: it recycles (or allocates) the
// connection state, asks the policy for the handling node based on the
// first request, and begins tracking the connection. The first request must
// be interned.
//
//phttp:hotpath
func (e *Engine) ConnOpen(first core.Request) (*Conn, core.NodeID) {
	if first.ID == core.NoTarget {
		panicUninterned(first.Target)
	}
	c := e.getConn()
	c.cs.Reset(core.ConnID(e.nextID.Add(1)))
	c.closed.Store(false)
	handling := e.store.ConnOpen(&c.cs, first)
	e.live.Add(1)
	e.conns.Add(1)
	return c, handling
}

// panicUninterned is the cold formatting helper for ConnOpen's invariant
// panic, kept out of the annotated hot path so fmt stays off it.
func panicUninterned(target core.Target) {
	panic(fmt.Sprintf("dispatch: ConnOpen with un-interned request %q; intern at the edge (trace loader / HTTP parser)", target))
}

// AssignBatch assigns every request of a pipelined batch arriving on c and
// performs the paper's 1/N load accounting. It returns one Assignment per
// request, in order; the slice may be backed by the connection's reusable
// buffer and is valid until the next AssignBatch on c. Every request must
// be interned — batches pass through untouched, so the simulator's shared
// trace is never written to and parallel sweep workers can replay one trace
// concurrently.
//
//phttp:hotpath
func (e *Engine) AssignBatch(c *Conn, batch core.Batch) []core.Assignment {
	as := e.store.AssignBatch(&c.cs, batch)
	e.reqs.Add(int64(len(batch)))
	return as
}

// ReleaseBatch drops the parse-time interner references of a dispatched
// batch (no-op unless the interner is evictable). The prototype front-end
// calls it once the batch's requests have been forwarded: back-ends address
// content by target string, so nothing downstream of dispatch needs the
// IDs alive.
//
//phttp:hotpath
func (e *Engine) ReleaseBatch(batch core.Batch) {
	if !e.interner.Evictable() {
		return
	}
	for i := range batch {
		if batch[i].ID != core.NoTarget {
			e.interner.Release(batch[i].ID)
		}
	}
}

// BatchDone tells the policy the connection went idle after its current
// batch, releasing fractional remote loads early.
//
//phttp:hotpath
func (e *Engine) BatchDone(c *Conn) { e.store.BatchDone(&c.cs) }

// ConnClose releases all load held by c and recycles the record. An
// immediate duplicate close is absorbed through the closed flag, but
// pooling makes the handle single-shot: after the close that the
// connection's owner issues, the record may be reissued to a new
// connection, and a stale close on the old handle would then close the
// new connection's state — the same use-after-Put contract as sync.Pool.
// Both drivers satisfy it structurally (the sim closes in connDone, the
// front-end in its one deferred closeClient); a future driver with
// teardown races must funnel closes through one owner per connection,
// which the engine's per-connection serialization contract already
// requires.
//
//phttp:hotpath
func (e *Engine) ConnClose(c *Conn) {
	if c == nil || !c.closed.CompareAndSwap(false, true) {
		return
	}
	e.store.ConnClose(&c.cs)
	e.live.Add(-1)
	e.putConn(c)
	if n := e.closes.Add(1); e.maintainEvery > 0 && n%e.maintainEvery == 0 {
		e.Maintain()
	}
}

// Maintain is the periodic compaction hook for long-haul deployments: it
// shrinks the evictable interner back to its cap, reclaims trailing dead
// IDs, and trims the policy's dense per-target slices to the surviving ID
// range. The engine runs it automatically every Spec.MaintainEvery
// connection closes; drivers may also call it directly (a front-end ticking
// on wall clock, tests). No-op with a pinned interner.
func (e *Engine) Maintain() {
	if !e.interner.Evictable() {
		return
	}
	e.maintains.Add(1)
	high := e.interner.Compact()
	if e.compact != nil {
		e.compact.CompactTargets(high)
	}
}

// ReportDiskQueue delivers a back-end's disk queue length to the policy
// (the prototype's control-session feedback).
func (e *Engine) ReportDiskQueue(n core.NodeID, queued int) {
	e.store.ReportDiskQueue(n, queued)
}
