package dispatch

import (
	"fmt"
	"strings"
	"testing"

	"phttp/internal/core"
)

// unregisterForTest removes a test-registered policy so tests that
// enumerate Names() (and the exactness test for the built-in set) are
// unaffected by registration tests, whatever order they run in.
func unregisterForTest(t *testing.T, name string) {
	t.Cleanup(func() {
		registry.Lock()
		delete(registry.builders, name)
		registry.Unlock()
	})
}

func TestOptionKindStrings(t *testing.T) {
	for kind, want := range map[OptionKind]string{
		KindBool: "bool", KindInt: "int", KindInt64: "int64",
		KindFloat: "float", KindString: "string", OptionKind(99): "OptionKind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	MustRegister("must-dup", stubBuilder())
	unregisterForTest(t, "must-dup")
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on duplicate")
		}
	}()
	MustRegister("must-dup", stubBuilder())
}

func TestDescribeUnknown(t *testing.T) {
	if _, err := Describe("no-such"); err == nil {
		t.Error("Describe accepted unknown policy")
	}
}

// TestCoercionMatrix drives the numeric/boolean coercion rules through a
// policy declaring every option kind: the representations a value can
// arrive in (Go literals, JSON float64s) against the declared kinds.
func TestCoercionMatrix(t *testing.T) {
	unregisterForTest(t, "kinds-stub")
	unregisterForTest(t, "accessor-stub")
	MustRegister("kinds-stub", stubBuilder(
		OptionSpec{Key: "b", Kind: KindBool, Default: true, Help: "bool knob"},
		OptionSpec{Key: "i", Kind: KindInt, Default: 2, Help: "int knob"},
		OptionSpec{Key: "i64", Kind: KindInt64, Default: int64(3), Help: "int64 knob"},
		OptionSpec{Key: "f", Kind: KindFloat, Default: 1.5, Help: "float knob"},
		OptionSpec{Key: "s", Kind: KindString, Default: "x", Help: "string knob"},
	))
	ok := []Options{
		{"b": false, "i": int32(7), "i64": 9, "f": float32(2), "s": "y"},
		{"i": 7.0, "i64": uint64(12), "f": 3}, // JSON-style integral floats, Go ints
		{"f": int64(4)},                       // int64 into float
	}
	for _, opts := range ok {
		if _, err := Build(Spec{Policy: "kinds-stub", Nodes: 1, Options: opts}); err != nil {
			t.Errorf("Build rejected valid options %v: %v", opts, err)
		}
	}
	bad := []Options{
		{"b": "true"},            // string into bool
		{"i": 1.5},               // fractional float into int
		{"i64": uint64(1) << 63}, // overflows int64
		{"f": "wide"},            // string into float
		{"s": 3},                 // number into string
	}
	for _, opts := range bad {
		if _, err := Build(Spec{Policy: "kinds-stub", Nodes: 1, Options: opts}); err == nil {
			t.Errorf("Build accepted mistyped options %v", opts)
		}
	}
	// The resolved values arrive typed through the BuildArgs accessors.
	MustRegister("accessor-stub", Builder{
		Options: []OptionSpec{
			{Key: "b", Kind: KindBool, Default: true, Help: "h"},
			{Key: "i", Kind: KindInt, Default: 2, Help: "h"},
		},
		New: func(a BuildArgs) (core.Policy, error) {
			if !a.Bool("b") || a.Int("i") != 5 {
				return nil, fmt.Errorf("accessors saw b=%v i=%v", a.Bool("b"), a.Int("i"))
			}
			return stubBuilder().New(a)
		},
	})
	if _, err := Build(Spec{Policy: "accessor-stub", Nodes: 1, Options: Options{"i": 5.0}}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildArgsPanicsOnUndeclaredKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("accessor did not panic on undeclared key")
		}
	}()
	BuildArgs{Options: Options{}}.Int("ghost")
}

func TestUnknownOptionErrorListsValidKeys(t *testing.T) {
	spec := testSpec("boundedch")
	spec.Options = Options{"replica": 3}
	_, err := Build(spec)
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	for _, want := range []string{"bound", "replicas", "seed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should list valid key %q", err, want)
		}
	}
}
