package dispatch

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// benchSpec sizes the engine like a prototype front-end over 8 back-ends:
// the mapping budget comfortably holds the benchmark's Zipf target universe
// so steady state measures the dispatch path, not mapping eviction.
func benchSpec(pol string, mech core.Mechanism) Spec {
	return Spec{
		Policy:     pol,
		Nodes:      8,
		CacheBytes: 1 << 30,
		Params:     policy.DefaultParams(),
		Mechanism:  mech,
	}
}

// dispatchConn runs one full connection lifecycle against the engine: open
// on a Zipf-popular target, assign one pipelined batch of four requests,
// close. Requests are interned through the engine's interner before
// dispatch, as the prototype's HTTP parser does. Every call goes through
// lock, when non-nil — that is the serialized baseline, the old front-end
// design with one polMu around the policy.
func dispatchConn(eng *Engine, lock *sync.Mutex, zipf *rand.Zipf) {
	in := eng.Interner()
	batch := make(core.Batch, 4)
	for i := range batch {
		t := core.Target(fmt.Sprintf("/z%d", zipf.Uint64()))
		batch[i] = core.Request{Target: t, ID: in.Intern(t), Size: 8 << 10}
	}
	first := batch[0]
	if lock != nil {
		lock.Lock()
	}
	c, _ := eng.ConnOpen(first)
	if lock != nil {
		lock.Unlock()
		lock.Lock()
	}
	eng.AssignBatch(c, batch)
	if lock != nil {
		lock.Unlock()
		lock.Lock()
	}
	eng.ConnClose(c)
	if lock != nil {
		lock.Unlock()
	}
}

func runDispatchBench(b *testing.B, pol string, mech core.Mechanism, serialized bool) {
	eng, err := NewEngine(benchSpec(pol, mech))
	if err != nil {
		b.Fatal(err)
	}
	var lock *sync.Mutex
	if serialized {
		lock = &sync.Mutex{}
	}
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		zipf := rand.NewZipf(rng, 1.2, 1, 1<<14)
		for pb.Next() {
			dispatchConn(eng, lock, zipf)
		}
	})
}

// BenchmarkDispatch measures parallel dispatch throughput through the
// concurrency-safe engine: mixed ConnOpen / AssignBatch / ConnClose over a
// Zipf target distribution from GOMAXPROCS goroutines.
//
//	go test -run '^$' -bench 'BenchmarkDispatch' -cpu 1,4 ./internal/dispatch/
//
// At -cpu 1 the engine and the serialized baseline are equivalent; at -cpu 4
// and beyond the engine's ns/op should drop while the baseline's stays flat
// or worsens under lock contention — the throughput headroom the paper needs
// the front-end to have.
func BenchmarkDispatch(b *testing.B) {
	for _, tc := range []struct {
		name string
		mech core.Mechanism
	}{
		{"wrr", core.SingleHandoff},
		{"lard", core.SingleHandoff},
		{"extlard", core.BEForwarding},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runDispatchBench(b, tc.name, tc.mech, false)
		})
	}
}

// BenchmarkDispatchSerialized is the pre-refactor baseline: the identical
// workload with every engine call behind one global mutex, exactly the old
// polMu design of the prototype front-end.
func BenchmarkDispatchSerialized(b *testing.B) {
	for _, tc := range []struct {
		name string
		mech core.Mechanism
	}{
		{"wrr", core.SingleHandoff},
		{"lard", core.SingleHandoff},
		{"extlard", core.BEForwarding},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runDispatchBench(b, tc.name, tc.mech, true)
		})
	}
}
