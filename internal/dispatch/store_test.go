package dispatch

import (
	"testing"

	"phttp/internal/dstate"
)

// TestEngineStoreAccessors pins the engine's dispatch-state surface: a
// plain engine runs on a local store over its own policy, and reports
// the node count it was built for.
func TestEngineStoreAccessors(t *testing.T) {
	eng, err := NewEngine(Spec{Policy: "lard", Nodes: 3, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Nodes() != 3 {
		t.Errorf("Nodes = %d, want 3", eng.Nodes())
	}
	s := eng.Store()
	if s == nil || s.Mode() != dstate.ModeLocal {
		t.Errorf("Store = %v, want a local store", s)
	}
	if s.Policy() != eng.Policy() {
		t.Error("local store wraps a different policy than the engine's")
	}
}
