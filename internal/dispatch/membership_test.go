package dispatch

import (
	"testing"

	"phttp/internal/core"
	"phttp/internal/policy"
)

func churnEngine(t *testing.T, pol string, nodes int, opts map[string]any) *Engine {
	t.Helper()
	e, err := NewEngine(Spec{Policy: pol, Nodes: nodes, CacheBytes: 1 << 20, Options: opts})
	if err != nil {
		t.Fatalf("NewEngine(%s): %v", pol, err)
	}
	return e
}

func TestEngineMembershipView(t *testing.T) {
	e := churnEngine(t, "lard", 3, nil)
	if !e.HasUp() || e.UpNodes() != 3 {
		t.Fatalf("fresh engine: HasUp=%v UpNodes=%d", e.HasUp(), e.UpNodes())
	}
	e.SetNodeDown(1)
	e.SetNodeDown(1) // idempotent
	if e.UpNodes() != 2 || e.NodeIsUp(1) || !e.NodeIsDown(1) {
		t.Fatalf("after down(1): UpNodes=%d up=%v down=%v", e.UpNodes(), e.NodeIsUp(1), e.NodeIsDown(1))
	}
	e.SetNodeDraining(2)
	if e.UpNodes() != 1 || e.NodeIsDown(2) {
		t.Fatalf("after drain(2): UpNodes=%d", e.UpNodes())
	}
	e.SetNodeDown(0)
	if e.HasUp() {
		t.Fatal("all nodes down/draining but HasUp still true")
	}
	e.SetNodeUp(1)
	if !e.HasUp() || e.UpNodes() != 1 {
		t.Fatalf("after rejoin: UpNodes=%d", e.UpNodes())
	}
}

func TestEngineForwardsTransitionsToPolicy(t *testing.T) {
	e := churnEngine(t, "lard", 2, nil)
	r := internedReq(e.Interner(), "/m/a", 100)
	c, n := e.ConnOpen(r)
	l := e.Policy().(*policy.LARD)
	if !l.Mapping().IsMapped(r.ID, n) {
		t.Fatalf("target not mapped on %d", n)
	}
	e.SetNodeDown(n)
	if l.Mapping().MappedTargets(n) != 0 {
		t.Fatal("policy did not receive the down transition (mapping survived cold-start)")
	}
	e.ConnClose(c)
}

func TestEngineDownColdStartOption(t *testing.T) {
	e := churnEngine(t, "lard", 2, map[string]any{"down-cold-start": false})
	r := internedReq(e.Interner(), "/m/warm", 100)
	c, n := e.ConnOpen(r)
	e.SetNodeDown(n)
	l := e.Policy().(*policy.LARD)
	if !l.Mapping().IsMapped(r.ID, n) {
		t.Fatal("down-cold-start=false still dropped the mapping")
	}
	e.ConnClose(c)
}

func TestEnginePickUp(t *testing.T) {
	e := churnEngine(t, "wrr", 3, nil)
	// Load node 0 so PickUp prefers an idle node.
	c0, _ := e.ConnOpen(internedReq(e.Interner(), "/m/p0", 10))
	if got := e.PickUp(core.NoNode); got == core.NoNode {
		t.Fatal("PickUp found nothing on a healthy cluster")
	}
	e.SetNodeDown(1)
	e.SetNodeDown(2)
	if got := e.PickUp(core.NoNode); got != 0 {
		t.Fatalf("PickUp = %d, want the only up node 0", got)
	}
	if got := e.PickUp(0); got != core.NoNode {
		t.Fatalf("PickUp excluding the only up node = %d, want NoNode", got)
	}
	e.SetNodeDown(0)
	if got := e.PickUp(core.NoNode); got != core.NoNode {
		t.Fatalf("PickUp with no up nodes = %d, want NoNode", got)
	}
	e.ConnClose(c0)
}

func TestEngineMoveConn(t *testing.T) {
	e := churnEngine(t, "wrr", 2, nil)
	c, n := e.ConnOpen(internedReq(e.Interner(), "/m/mv", 10))
	to := core.NodeID(1 - int(n))
	loads := e.Policy().Loads()
	if loads.Conns(n) != 1 || loads.Conns(to) != 0 {
		t.Fatalf("pre-move conns: %d/%d", loads.Conns(n), loads.Conns(to))
	}
	e.MoveConn(c, to)
	if c.Handling() != to {
		t.Fatalf("Handling = %d after move, want %d", c.Handling(), to)
	}
	if loads.Conns(n) != 0 || loads.Conns(to) != 1 {
		t.Fatalf("post-move conns: %d/%d", loads.Conns(n), loads.Conns(to))
	}
	e.MoveConn(c, to) // no-op: already there
	e.ConnClose(c)
	e.MoveConn(c, n) // no-op: closed
	if loads.Conns(n) != 0 && loads.Conns(to) != 0 {
		t.Fatal("MoveConn on closed connection re-charged a node")
	}
}
