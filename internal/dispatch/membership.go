package dispatch

import (
	"sync/atomic"

	"phttp/internal/core"
)

// Membership support: the engine keeps its own per-node up/down/drain
// view (independent of whether the policy cares) and forwards
// transitions to policies implementing core.MembershipPolicy. Drivers —
// the simulator's churn events and the prototype front-end's membership
// table — call the SetNode* methods; the dispatch paths use HasUp /
// PickUp / MoveConn to gate admission and re-dispatch work off dead
// nodes.

// nodePhase is the engine's coarse per-node view. It mirrors the
// membership.Table states that matter to dispatch; Joining and Suspect
// are front-end concerns (a Suspect node keeps receiving work until
// confirmed Down).
type nodePhase int32

const (
	phaseUp nodePhase = iota
	phaseDraining
	phaseDown
)

// initMembership sizes the engine's node-state array (all Up).
func (e *Engine) initMembership(n int) {
	e.nodePhases = make([]atomic.Int32, n)
	e.upNodes.Store(int32(n))
}

// setPhase moves node n to phase p, maintaining the up-node count and
// notifying the policy exactly once per actual transition. Safe for
// concurrent callers; transitions are idempotent.
func (e *Engine) setPhase(n core.NodeID, p nodePhase) {
	for {
		old := nodePhase(e.nodePhases[n].Load())
		if old == p {
			return
		}
		if !e.nodePhases[n].CompareAndSwap(int32(old), int32(p)) {
			continue
		}
		if old == phaseUp {
			e.upNodes.Add(-1)
		}
		if p == phaseUp {
			e.upNodes.Add(1)
		}
		if e.membership != nil {
			switch p {
			case phaseUp:
				e.membership.NodeUp(n)
			case phaseDraining:
				e.membership.NodeDraining(n)
			case phaseDown:
				e.membership.NodeDown(n)
			}
		}
		return
	}
}

// SetNodeUp marks node n eligible for new work ((re)join complete).
func (e *Engine) SetNodeUp(n core.NodeID) { e.setPhase(n, phaseUp) }

// SetNodeDraining starts a graceful leave: no new placements on n,
// existing connections finish.
func (e *Engine) SetNodeDraining(n core.NodeID) { e.setPhase(n, phaseDraining) }

// SetNodeDown marks node n dead: policies drop it from candidate sets
// (and, per their option, invalidate its mappings); the driver
// re-dispatches n's in-flight work.
func (e *Engine) SetNodeDown(n core.NodeID) { e.setPhase(n, phaseDown) }

// NodeIsUp reports whether node n is currently Up in the engine's view.
func (e *Engine) NodeIsUp(n core.NodeID) bool {
	return nodePhase(e.nodePhases[n].Load()) == phaseUp
}

// NodeIsDown reports whether node n is confirmed Down.
func (e *Engine) NodeIsDown(n core.NodeID) bool {
	return nodePhase(e.nodePhases[n].Load()) == phaseDown
}

// UpNodes returns the number of Up nodes.
func (e *Engine) UpNodes() int { return int(e.upNodes.Load()) }

// HasUp reports whether any node can accept new work. Drivers gate
// admission on it: the prototype answers 503 Service Unavailable, the
// simulator fails the connection against the retry budget.
func (e *Engine) HasUp() bool { return e.upNodes.Load() > 0 }

// PickUp returns the least-loaded Up node other than exclude (pass
// core.NoNode to exclude nothing), or NoNode when no node qualifies.
// It is the engine-level re-dispatch target choice: deterministic given
// the load state (ties break toward the lower node ID), policy-agnostic
// — the policy already recorded the original placement; moving the
// refugee work is a mechanism action.
func (e *Engine) PickUp(exclude core.NodeID) core.NodeID {
	loads := e.pol.Loads()
	best := core.NoNode
	for i := 0; i < e.spec.Nodes; i++ {
		n := core.NodeID(i)
		if n == exclude || !e.NodeIsUp(n) {
			continue
		}
		if best == core.NoNode || loads.Load(n) < loads.Load(best) {
			best = n
		}
	}
	return best
}

// MoveConn forcibly reassigns connection c's handling node to `to`,
// transferring its connection-load unit. Drivers call it when c's
// handling node died and its traffic was re-dispatched — a mechanism
// action, deliberately outside the policy (which finds out through the
// load tracker it already reads). No-op on a closed connection.
func (e *Engine) MoveConn(c *Conn, to core.NodeID) {
	if c == nil || c.closed.Load() || c.cs.Handling == core.NoNode || c.cs.Handling == to {
		return
	}
	e.store.MoveConn(&c.cs, to)
}
