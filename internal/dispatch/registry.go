// Package dispatch owns the full dispatch lifecycle shared by the
// trace-driven simulator and the cluster prototype: an open policy
// registry (the one source of truth for policy names and their option
// schemas), connection-state tracking, and a concurrency-safe engine API
// (ConnOpen / AssignBatch / ConnClose / ReportDiskQueue).
//
// The paper's central artifact is exactly this module: one policy
// implementation drives both the simulation study and the FreeBSD
// prototype. Here the same Spec builds the same policy object for both
// drivers, so a policy/params combination is defined once and behaves
// identically in simulation and in the prototype.
//
// The registry is open: any package may add a policy with Register (see
// examples/custom-policy), supplying a constructor plus a typed option
// schema that Build validates and defaults. The built-in policies (wrr,
// lard, lardr, extlard, p2c, boundedch) register themselves through the
// same public API in builtins.go.
package dispatch

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// Options is the generic policy-construction parameter map: option key →
// value. Keys and their types are declared by each policy's Builder; Build
// validates every entry against the schema, fills defaults for missing keys,
// and rejects unknown keys or mistyped values. Numeric JSON values
// (float64) coerce to the declared integer kinds when integral, so options
// decoded from a scenario file pass through without caller-side casts.
type Options map[string]any

// OptionKind is the declared type of one option.
type OptionKind int

const (
	// KindBool is a boolean option.
	KindBool OptionKind = iota
	// KindInt is a machine-int option (node counts, replica counts).
	KindInt
	// KindInt64 is a 64-bit option (byte budgets).
	KindInt64
	// KindFloat is a float64 option (thresholds, cost constants).
	KindFloat
	// KindString is a string option (enumerations like mechanism names).
	KindString
)

func (k OptionKind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindInt64:
		return "int64"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("OptionKind(%d)", int(k))
	}
}

// OptionSpec declares one option of a policy's schema: its key, type,
// default value and help text. Defaults must match the declared kind;
// Register verifies this so a registered schema can never produce a
// mistyped default at Build time.
type OptionSpec struct {
	// Key is the option name as it appears in Spec.Options and scenario
	// files (kebab-case by convention: "cache-bytes", "disk-queue-low").
	Key string
	// Kind is the declared value type.
	Kind OptionKind
	// Default is the value used when the key is absent (and no legacy
	// Spec alias supplies one).
	Default any
	// Help is a one-line description for Describe and help text.
	Help string
}

// BuildArgs is what a policy constructor receives: the node count plus the
// fully resolved option set — every declared key present with a value of
// its declared type (supplied, legacy-aliased, or defaulted).
type BuildArgs struct {
	Nodes   int
	Options Options
}

// The typed accessors panic on an undeclared key or kind mismatch: by the
// time a constructor runs, resolution has guaranteed every declared key is
// present and correctly typed, so a panic here is a builder bug (asking for
// a key its own schema does not declare), not a user error.

// Bool returns the resolved bool option key.
func (a BuildArgs) Bool(key string) bool { return a.opt(key).(bool) }

// Int returns the resolved int option key.
func (a BuildArgs) Int(key string) int { return a.opt(key).(int) }

// Int64 returns the resolved int64 option key.
func (a BuildArgs) Int64(key string) int64 { return a.opt(key).(int64) }

// Float returns the resolved float option key.
func (a BuildArgs) Float(key string) float64 { return a.opt(key).(float64) }

// String returns the resolved string option key.
func (a BuildArgs) String(key string) string { return a.opt(key).(string) }

func (a BuildArgs) opt(key string) any {
	v, ok := a.Options[key]
	if !ok {
		panic(fmt.Sprintf("dispatch: builder read undeclared option %q", key))
	}
	return v
}

// Mechanism parses the "mechanism" string option (see core.ParseMechanism).
// Registered schemas validate the name at Build time via OptionSpec
// validation, so by construction this cannot fail for a declared mechanism
// option; the error return covers third-party builders that declare the key
// with a nonstandard default.
func (a BuildArgs) Mechanism(key string) (core.Mechanism, error) {
	return core.ParseMechanism(a.String(key))
}

// Builder registers one policy: a constructor plus the option schema Build
// validates against and the help text Describe reports.
type Builder struct {
	// New constructs the policy. It runs only after option resolution, so
	// every declared key is present in args.Options with its declared type.
	New func(args BuildArgs) (core.Policy, error)
	// Options is the typed option schema (may be empty).
	Options []OptionSpec
	// Help is a one-line description of the policy.
	Help string
}

// Description is the introspectable form of a registered policy, as
// returned by Describe: the canonical name, help text, and option schema
// with defaults. The Options slice is a copy; callers may keep it.
type Description struct {
	Name    string
	Help    string
	Options []OptionSpec
}

// registry is the open policy registry. The lock makes Register safe from
// concurrent init paths and tests; lookups copy what they need out.
var registry = struct {
	sync.RWMutex
	builders map[string]Builder
}{builders: make(map[string]Builder)}

// Register adds a policy to the registry under the canonical (lower-case)
// form of name. It fails on a duplicate name, an empty name, a missing
// constructor, a duplicate option key, or a schema whose default value does
// not match its declared kind — all programmer errors surfaced at
// registration so Build never meets a malformed schema.
func Register(name string, b Builder) error {
	canonical := strings.ToLower(strings.TrimSpace(name))
	if canonical == "" {
		return fmt.Errorf("dispatch: Register with empty policy name")
	}
	if b.New == nil {
		return fmt.Errorf("dispatch: Register(%q) with nil constructor", name)
	}
	seen := make(map[string]bool, len(b.Options))
	for _, o := range b.Options {
		if o.Key == "" {
			return fmt.Errorf("dispatch: Register(%q): option with empty key", name)
		}
		if seen[o.Key] {
			return fmt.Errorf("dispatch: Register(%q): duplicate option key %q", name, o.Key)
		}
		seen[o.Key] = true
		if _, err := coerce(o, o.Default); err != nil {
			return fmt.Errorf("dispatch: Register(%q): default for option %q: %w", name, o.Key, err)
		}
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.builders[canonical]; dup {
		return fmt.Errorf("dispatch: policy %q already registered", canonical)
	}
	registry.builders[canonical] = b
	return nil
}

// MustRegister is Register, panicking on error — the natural form for
// package init functions.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Names returns the canonical policy names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.builders))
	for name := range registry.builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the registered policy's name, help text and option
// schema (with defaults). The name is normalized like Canonical.
func Describe(name string) (Description, error) {
	canonical, err := Canonical(name)
	if err != nil {
		return Description{}, err
	}
	registry.RLock()
	b := registry.builders[canonical]
	registry.RUnlock()
	return Description{
		Name:    canonical,
		Help:    b.Help,
		Options: append([]OptionSpec(nil), b.Options...),
	}, nil
}

// Canonical normalizes name to its registry form, or returns an error
// listing the valid names.
func Canonical(name string) (string, error) {
	c := strings.ToLower(strings.TrimSpace(name))
	registry.RLock()
	_, ok := registry.builders[c]
	registry.RUnlock()
	if !ok {
		return "", fmt.Errorf("dispatch: unknown policy %q (valid policies: %s)",
			name, strings.Join(Names(), ", "))
	}
	return c, nil
}

// lookup returns the canonical name and builder.
func lookup(name string) (string, Builder, error) {
	canonical, err := Canonical(name)
	if err != nil {
		return "", Builder{}, err
	}
	registry.RLock()
	b := registry.builders[canonical]
	registry.RUnlock()
	return canonical, b, nil
}

// Spec names a policy and its construction parameters. It is the single
// currency for building policies anywhere in the system.
//
// Generic construction parameters live in Options, validated against the
// policy's registered schema. The typed legacy fields (CacheBytes, Params,
// Mechanism) predate the open registry; they are kept as deprecated aliases
// so every existing caller — and every golden-tested figure — builds the
// exact policy it always has. Alias resolution per declared option key:
//
//  1. Options[key], when present (always wins);
//  2. the legacy alias value, when the key is aliased and the legacy field
//     was set (CacheBytes != 0; Params != policy.Params{}, taken as a unit;
//     Mechanism always, because its zero value — singleHandoff — is
//     meaningful and equals the schema default);
//  3. the schema default.
type Spec struct {
	// Policy is a registry name ("wrr", "lard", "lardr", "extlard", "p2c",
	// "boundedch", or anything added via Register), case-insensitive.
	Policy string
	// Nodes is the number of back-end nodes.
	Nodes int
	// Options are the policy construction options, validated against the
	// registered schema (see Describe).
	Options Options

	// CacheBytes sizes the per-node target→node mapping model for the
	// LARD family.
	//
	// Deprecated: alias for Options["cache-bytes"].
	CacheBytes int64
	// Params are the LARD-family tuning constants.
	//
	// Deprecated: alias for Options["l-idle"], ["l-overload"],
	// ["miss-cost"] and ["disk-queue-low"].
	Params policy.Params
	// Mechanism is the distribution mechanism the policy drives; only
	// extended LARD changes behavior with it.
	//
	// Deprecated: alias for Options["mechanism"].
	Mechanism core.Mechanism

	// Interner resolves target strings to the dense TargetIDs the policies
	// and mapping tables are keyed by. Drivers that pre-intern their
	// workload (the simulator's trace loader) pass theirs so IDs agree;
	// when nil the engine creates a private one — pinned, or evictable
	// when MaxTargets is set — and the driver interns through it at the
	// edge (the prototype parses with httpmsg.ReadRequestInterned).
	Interner *core.Interner
	// MaxTargets, when positive and Interner is nil, makes the engine's
	// private interner evictable with that target cap: IDs are refcounted
	// from the mapping tables and in-flight requests, recycled after
	// churn, and the table stays bounded for front-ends facing an
	// unbounded URL space. Zero keeps the pinned interner (simulation,
	// trace replay, benchmarks).
	MaxTargets int
	// InternStripes overrides the evictable interner's shard count (a
	// power of two; see core.NewEvictableInternerStripes). Zero picks the
	// size-based default. Ignored when Interner is supplied or MaxTargets
	// is zero.
	InternStripes int
	// MaintainEvery is how many connection closes separate two automatic
	// compaction passes (interner + policy dense slices) when the interner
	// is evictable; 0 means the engine default.
	MaintainEvery int
	// ConnIDBase offsets the engine's connection-ID space. Front-ends of
	// a scale-out tier talking to shared back-ends set distinct bases so
	// the IDs they put on the wire (handoff frames, control lines) never
	// collide; 0 — the single-front-end default — keeps IDs starting at 1.
	ConnIDBase int64
}

// legacyAlias returns the legacy Spec field value standing in for an
// absent option key, per the resolution order documented on Spec.
func legacyAlias(spec Spec, key string) (any, bool) {
	zero := policy.Params{}
	switch key {
	case "cache-bytes":
		if spec.CacheBytes != 0 {
			return spec.CacheBytes, true
		}
	case "l-idle":
		if spec.Params != zero {
			return spec.Params.LIdle, true
		}
	case "l-overload":
		if spec.Params != zero {
			return spec.Params.LOverload, true
		}
	case "miss-cost":
		if spec.Params != zero {
			return spec.Params.MissCost, true
		}
	case "disk-queue-low":
		if spec.Params != zero {
			return spec.Params.DiskQueueLow, true
		}
	case "mechanism":
		return spec.Mechanism.String(), true
	}
	return nil, false
}

// coerce validates v against o's declared kind, converting compatible
// numeric representations (JSON decodes every number as float64; Go callers
// naturally write int literals for int64 options).
func coerce(o OptionSpec, v any) (any, error) {
	mistyped := func() (any, error) {
		return nil, fmt.Errorf("option %q wants %s, got %T (%v)", o.Key, o.Kind, v, v)
	}
	switch o.Kind {
	case KindBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case KindInt:
		if n, ok := toInt64(v); ok {
			return int(n), nil
		}
	case KindInt64:
		if n, ok := toInt64(v); ok {
			return n, nil
		}
	case KindFloat:
		switch n := v.(type) {
		case float64:
			return n, nil
		case float32:
			return float64(n), nil
		case int:
			return float64(n), nil
		case int64:
			return float64(n), nil
		}
	case KindString:
		if s, ok := v.(string); ok {
			return s, nil
		}
	default:
		return nil, fmt.Errorf("option %q declares unknown kind %v", o.Key, o.Kind)
	}
	return mistyped()
}

// toInt64 accepts the integer representations a value may arrive in,
// including integral floats from JSON decoding.
func toInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	case uint64:
		if n > math.MaxInt64 {
			return 0, false
		}
		return int64(n), true
	case float64:
		if n == math.Trunc(n) && !math.IsInf(n, 0) {
			return int64(n), true
		}
	}
	return 0, false
}

// ResolveOptions validates spec.Options against the named policy's schema
// and returns the fully resolved option set: every declared key present,
// correctly typed, populated from (in order) Options, the legacy Spec
// aliases, then schema defaults. Unknown keys are an error — a misspelled
// option must fail loudly, not silently fall back to a default.
func ResolveOptions(spec Spec) (Options, error) {
	name, b, err := lookup(spec.Policy)
	if err != nil {
		return nil, err
	}
	declared := make(map[string]bool, len(b.Options))
	for _, o := range b.Options {
		declared[o.Key] = true
	}
	for key := range spec.Options {
		if !declared[key] {
			return nil, fmt.Errorf("dispatch: policy %q: unknown option %q (valid options: %s)",
				name, key, strings.Join(optionKeys(b.Options), ", "))
		}
	}
	out := make(Options, len(b.Options))
	for _, o := range b.Options {
		switch v, ok := spec.Options[o.Key]; {
		case ok:
			cv, err := coerce(o, v)
			if err != nil {
				return nil, fmt.Errorf("dispatch: policy %q: %w", name, err)
			}
			out[o.Key] = cv
		default:
			v, ok := legacyAlias(spec, o.Key)
			if !ok {
				v = o.Default
			}
			cv, err := coerce(o, v)
			if err != nil {
				return nil, fmt.Errorf("dispatch: policy %q: %w", name, err)
			}
			out[o.Key] = cv
		}
	}
	return out, nil
}

func optionKeys(opts []OptionSpec) []string {
	keys := make([]string, len(opts))
	for i, o := range opts {
		keys[i] = o.Key
	}
	sort.Strings(keys)
	return keys
}

// Build instantiates the policy named by spec. It is the only policy
// construction path in the system: the simulator and the prototype
// front-end both come through here.
func Build(spec Spec) (core.Policy, error) {
	name, b, err := lookup(spec.Policy)
	if err != nil {
		return nil, err
	}
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("dispatch: policy %q needs at least one node, got %d", name, spec.Nodes)
	}
	opts, err := ResolveOptions(spec)
	if err != nil {
		return nil, err
	}
	pol, err := b.New(BuildArgs{Nodes: spec.Nodes, Options: opts})
	if err != nil {
		return nil, fmt.Errorf("dispatch: building policy %q: %w", name, err)
	}
	return pol, nil
}
