// Package dispatch owns the full dispatch lifecycle shared by the
// trace-driven simulator and the cluster prototype: a single policy
// registry (the one source of truth for the "wrr" / "lard" / "lardr" /
// "extlard" names), connection-state tracking, and a concurrency-safe
// engine API (ConnOpen / AssignBatch / ConnClose / ReportDiskQueue).
//
// The paper's central artifact is exactly this module: one policy
// implementation drives both the simulation study and the FreeBSD
// prototype. Here the same Spec builds the same policy object for both
// drivers, so a policy/params combination is defined once and behaves
// identically in simulation and in the prototype.
package dispatch

import (
	"fmt"
	"sort"
	"strings"

	"phttp/internal/core"
	"phttp/internal/policy"
)

// Spec names a policy and its construction parameters. It is the single
// currency for building policies anywhere in the system.
type Spec struct {
	// Policy is the registry name: "wrr", "lard", "lardr" or "extlard"
	// (case-insensitive; see Names).
	Policy string
	// Nodes is the number of back-end nodes.
	Nodes int
	// CacheBytes sizes the per-node target→node mapping model for the
	// LARD family; WRR ignores it.
	CacheBytes int64
	// Params are the LARD-family tuning constants.
	Params policy.Params
	// Mechanism is the distribution mechanism the policy drives; only
	// extended LARD changes behavior with it.
	Mechanism core.Mechanism
	// Interner resolves target strings to the dense TargetIDs the policies
	// and mapping tables are keyed by. Drivers that pre-intern their
	// workload (the simulator's trace loader) pass theirs so IDs agree;
	// when nil the engine creates a private one — pinned, or evictable
	// when MaxTargets is set — and the driver interns through it at the
	// edge (the prototype parses with httpmsg.ReadRequestInterned).
	Interner *core.Interner
	// MaxTargets, when positive and Interner is nil, makes the engine's
	// private interner evictable with that target cap: IDs are refcounted
	// from the mapping tables and in-flight requests, recycled after
	// churn, and the table stays bounded for front-ends facing an
	// unbounded URL space. Zero keeps the pinned interner (simulation,
	// trace replay, benchmarks).
	MaxTargets int
	// MaintainEvery is how many connection closes separate two automatic
	// compaction passes (interner + policy dense slices) when the interner
	// is evictable; 0 means the engine default.
	MaintainEvery int
}

// builders is the policy registry. Keys are the canonical lower-case names
// used in config files, flags, and figure data.
var builders = map[string]func(Spec) core.Policy{
	"wrr": func(s Spec) core.Policy {
		return policy.NewWRR(s.Nodes)
	},
	"lard": func(s Spec) core.Policy {
		return policy.NewLARD(s.Nodes, s.CacheBytes, s.Params)
	},
	"lardr": func(s Spec) core.Policy {
		return policy.NewLARDR(s.Nodes, s.CacheBytes, s.Params)
	},
	"extlard": func(s Spec) core.Policy {
		return policy.NewExtLARD(s.Nodes, s.CacheBytes, s.Params, s.Mechanism)
	},
}

// Names returns the canonical policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Canonical normalizes name to its registry form, or returns an error
// listing the valid names.
func Canonical(name string) (string, error) {
	c := strings.ToLower(strings.TrimSpace(name))
	if _, ok := builders[c]; !ok {
		return "", fmt.Errorf("dispatch: unknown policy %q (valid policies: %s)",
			name, strings.Join(Names(), ", "))
	}
	return c, nil
}

// Build instantiates the policy named by spec. It is the only policy
// construction path in the system: the simulator and the prototype
// front-end both come through here.
func Build(spec Spec) (core.Policy, error) {
	name, err := Canonical(spec.Policy)
	if err != nil {
		return nil, err
	}
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("dispatch: policy %q needs at least one node, got %d", name, spec.Nodes)
	}
	return builders[name](spec), nil
}
