package core

import (
	"math/bits"
	"sync/atomic"
)

// LatencyHist is a fixed-bucket HDR-style latency histogram: log-linear
// buckets (one octave per power of two, each split into 2^histSubBits
// linear sub-buckets) give a bounded relative error of 2^-histSubBits
// (≤ 0.8%) at any value, over the full int64 range, in a fixed ~57 KB of
// memory allocated once.
//
// Record is lock-free — three atomic adds and a CAS loop for the max —
// so the prototype front-end records from concurrent connection handlers
// without a mutex, and the single-threaded simulator pays only the
// uncontended-atomic cost (a few ns) per request. All counters use
// atomic operations on both the write and the read side; readers see
// each bucket's count with at least acquire semantics (the Go memory
// model makes every sync/atomic operation sequentially consistent), but
// a scrape concurrent with writers observes buckets at slightly
// different instants — fine for monitoring, and the terminal read in the
// simulator and in tests happens after the writers quiesce.
//
// Histograms are mergeable (Merge) and subtractable (Sub), so warmup
// handling is a snapshot (Clone) at the warm point and a subtraction at
// the end — recording itself never checks warmup state.
type LatencyHist struct {
	count   int64
	sum     int64
	max     int64
	buckets [histBuckets]int64
}

const (
	// histSubBits sets the linear sub-bucket resolution per octave:
	// 2^7 = 128 sub-buckets bound the relative quantile error by
	// 2^-7 ≈ 0.78%.
	histSubBits    = 7
	histSubBuckets = 1 << histSubBits

	// Values below histSubBuckets get exact unit-width buckets
	// (indices 0..127); every higher octave [2^e, 2^(e+1)) contributes
	// histSubBuckets more. bits.Len64 of an int64 is at most 63, so the
	// top octave is e=62 and the final index is (62-6)*128 + 127.
	histBuckets = (63-histSubBits)*histSubBuckets + histSubBuckets
)

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist { return &LatencyHist{} }

// histIndex maps a non-negative value to its bucket index.
func histIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // ≥ histSubBits
	shift := uint(exp - histSubBits)
	// v>>shift is in [histSubBuckets, 2*histSubBuckets); successive
	// octaves tile the index space contiguously.
	return (exp-histSubBits)<<histSubBits + int(v>>shift)
}

// histBounds returns the closed value range [lo, hi] of bucket i.
func histBounds(i int) (lo, hi int64) {
	if i < histSubBuckets {
		return int64(i), int64(i)
	}
	exp := i>>histSubBits + histSubBits - 1 // octave: bits.Len64(v)-1 for v in this bucket
	width := int64(1) << uint(exp-histSubBits)
	lo = (int64(i&(histSubBuckets-1)) + histSubBuckets) * width
	return lo, lo + width - 1
}

// Record adds one sample. Negative values clamp to zero (virtual-time
// delays are never negative; a wall-clock caller racing a clock step
// must not fault). Safe for concurrent use.
//
//phttp:hotpath
func (h *LatencyHist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.buckets[histIndex(v)], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	for {
		m := atomic.LoadInt64(&h.max)
		if v <= m || atomic.CompareAndSwapInt64(&h.max, m, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int64 { return atomic.LoadInt64(&h.count) }

// Sum returns the sum of all recorded samples.
func (h *LatencyHist) Sum() int64 { return atomic.LoadInt64(&h.sum) }

// Max returns the largest recorded sample (0 when empty).
func (h *LatencyHist) Max() int64 { return atomic.LoadInt64(&h.max) }

// Mean returns the mean sample, 0 when empty.
func (h *LatencyHist) Mean() float64 {
	c := h.Count()
	if c == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(c)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the bucket holding the ceil(q·count)-th smallest sample.
// The bound overshoots the exact order statistic by at most one bucket
// width — a relative error ≤ 2^-histSubBits. Returns 0 when empty.
func (h *LatencyHist) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.buckets {
		if c := atomic.LoadInt64(&h.buckets[i]); c != 0 {
			cum += c
			if cum >= rank {
				_, hi := histBounds(i)
				if m := h.Max(); hi > m {
					// The top occupied bucket's edge can exceed the
					// actual maximum; never report beyond it.
					hi = m
				}
				return hi
			}
		}
	}
	return h.Max()
}

// CountAbove returns the number of samples strictly greater than v, up
// to bucket resolution: samples sharing v's bucket are not counted, so
// the result can undercount by at most the straddling bucket's
// population (values within 2^-histSubBits of v).
func (h *LatencyHist) CountAbove(v int64) int64 {
	if v < 0 {
		v = 0
	}
	var n int64
	for i := histIndex(v) + 1; i < histBuckets; i++ {
		n += atomic.LoadInt64(&h.buckets[i])
	}
	return n
}

// Merge adds o's samples into h. Safe against concurrent Records on
// either side (counts move atomically; a racing reader may observe the
// merge mid-way).
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if c := atomic.LoadInt64(&o.buckets[i]); c != 0 {
			atomic.AddInt64(&h.buckets[i], c)
		}
	}
	atomic.AddInt64(&h.count, atomic.LoadInt64(&o.count))
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&o.sum))
	for {
		m, om := atomic.LoadInt64(&h.max), atomic.LoadInt64(&o.max)
		if om <= m || atomic.CompareAndSwapInt64(&h.max, m, om) {
			return
		}
	}
}

// Sub removes o's samples from h in place: the warmup idiom is
// delta := h.Clone(); delta.Sub(warmSnapshot). o must be an earlier
// snapshot of h (a prefix of its samples); Max is left as-is, since a
// prefix cannot identify which maximum survives.
func (h *LatencyHist) Sub(o *LatencyHist) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if c := atomic.LoadInt64(&o.buckets[i]); c != 0 {
			atomic.AddInt64(&h.buckets[i], -c)
		}
	}
	atomic.AddInt64(&h.count, -atomic.LoadInt64(&o.count))
	atomic.AddInt64(&h.sum, -atomic.LoadInt64(&o.sum))
}

// Clone returns an independent copy (one allocation; not for hot paths).
// The copy's fields are populated with atomic stores even though it is
// unpublished here: every field is accessed through sync/atomic, and
// mixing in plain writes would break that invariant (and trip the race
// detector if a caller ever shares the clone before this returns).
func (h *LatencyHist) Clone() *LatencyHist {
	c := &LatencyHist{}
	atomic.StoreInt64(&c.count, atomic.LoadInt64(&h.count))
	atomic.StoreInt64(&c.sum, atomic.LoadInt64(&h.sum))
	atomic.StoreInt64(&c.max, atomic.LoadInt64(&h.max))
	for i := range h.buckets {
		atomic.StoreInt64(&c.buckets[i], atomic.LoadInt64(&h.buckets[i]))
	}
	return c
}

// Each calls fn for every non-empty bucket in ascending value order with
// the bucket's closed range and count. The Prometheus exporter and the
// quantile tests are built on it.
func (h *LatencyHist) Each(fn func(lo, hi int64, count int64)) {
	for i := range h.buckets {
		if c := atomic.LoadInt64(&h.buckets[i]); c != 0 {
			lo, hi := histBounds(i)
			fn(lo, hi, c)
		}
	}
}
