package core

import (
	"testing"
	"testing/quick"
)

func TestMicrosString(t *testing.T) {
	cases := []struct {
		in   Micros
		want string
	}{
		{500, "500µs"},
		{1500, "1.500ms"},
		{2 * Second, "2.000s"},
		{0, "0µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Micros(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMicrosSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NoNode.String(); got != "none" {
		t.Errorf("NoNode.String() = %q", got)
	}
	if got := NodeID(3).String(); got != "be3" {
		t.Errorf("NodeID(3).String() = %q", got)
	}
}

func TestMechanismStringAndPerRequest(t *testing.T) {
	cases := []struct {
		m          Mechanism
		name       string
		perRequest bool
	}{
		{SingleHandoff, "singleHandoff", false},
		{MultipleHandoff, "multiHandoff", true},
		{BEForwarding, "BEforward", true},
		{RelayFrontEnd, "relayFE", true},
		{ZeroCostHandoff, "zeroCost", true},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", int(c.m), got, c.name)
		}
		if got := c.m.PerRequest(); got != c.perRequest {
			t.Errorf("%s.PerRequest() = %v, want %v", c.name, got, c.perRequest)
		}
	}
}

func TestBatchAccounting(t *testing.T) {
	b := Batch{{Target: "/a", Size: 100}, {Target: "/b", Size: 200}}
	if b.Requests() != 2 {
		t.Errorf("Requests() = %d, want 2", b.Requests())
	}
	if b.Bytes() != 300 {
		t.Errorf("Bytes() = %d, want 300", b.Bytes())
	}
}

func TestConnectionAccounting(t *testing.T) {
	c := Connection{Batches: []Batch{
		{{Target: "/a", Size: 10}},
		{{Target: "/b", Size: 20}, {Target: "/c", Size: 30}},
	}}
	if c.Requests() != 3 {
		t.Errorf("Requests() = %d, want 3", c.Requests())
	}
	if c.Bytes() != 60 {
		t.Errorf("Bytes() = %d, want 60", c.Bytes())
	}
}

func TestLoadTrackerConnLifecycle(t *testing.T) {
	lt := NewLoadTracker(3)
	lt.AddConn(1)
	lt.AddConn(1)
	lt.AddConn(2)
	if lt.Load(1) != 2 || lt.Conns(1) != 2 {
		t.Errorf("node 1: load=%v conns=%d, want 2/2", lt.Load(1), lt.Conns(1))
	}
	if lt.Least() != 0 {
		t.Errorf("Least() = %v, want be0", lt.Least())
	}
	lt.MoveConn(1, 0)
	if lt.Conns(1) != 1 || lt.Conns(0) != 1 {
		t.Errorf("after move: conns = %d,%d, want 1,1", lt.Conns(0), lt.Conns(1))
	}
	lt.RemoveConn(0)
	lt.RemoveConn(1)
	lt.RemoveConn(2)
	if lt.Total() != 0 {
		t.Errorf("Total() = %v after removing all, want 0", lt.Total())
	}
}

func TestLoadTrackerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RemoveConn on empty node did not panic")
		}
	}()
	NewLoadTracker(1).RemoveConn(0)
}

func TestChargeBatchAndClear(t *testing.T) {
	lt := NewLoadTracker(3)
	c := NewConnState(1)
	c.Handling = 0
	lt.AddConn(0)

	// Batch of 4 with two remote serves at node 1 and one at node 2.
	lt.ChargeBatch(c, 0, []NodeID{1, 1, 2}, 4)
	if got := lt.Load(1); got != 0.5 {
		t.Errorf("node 1 load = %v, want 0.5 (2 * 1/4)", got)
	}
	if got := lt.Load(2); got != 0.25 {
		t.Errorf("node 2 load = %v, want 0.25", got)
	}
	// Handling-node and NoNode entries carry no charge.
	lt.ChargeBatch(c, 0, []NodeID{0, NoNode}, 2)
	if got := lt.Load(0); got != 1 {
		t.Errorf("handling node load = %v, want 1 (conn unit only)", got)
	}

	lt.ClearBatch(c)
	if lt.Load(1) != 0 || lt.Load(2) != 0 {
		t.Errorf("after ClearBatch: loads %v, %v, want 0, 0", lt.Load(1), lt.Load(2))
	}
	if len(c.RemoteLoad) != 0 {
		t.Error("RemoteLoad not cleared")
	}
}

func TestInternerAssignsDenseIDs(t *testing.T) {
	in := NewInterner()
	a := in.Intern("/a")
	b := in.Intern("/b")
	if a != 1 || b != 2 {
		t.Errorf("first IDs = %d, %d, want 1, 2", a, b)
	}
	if got := in.Intern("/a"); got != a {
		t.Errorf("re-intern changed ID: %d != %d", got, a)
	}
	if in.Len() != 2 {
		t.Errorf("Len() = %d, want 2", in.Len())
	}
	if in.Name(a) != "/a" || in.Name(b) != "/b" {
		t.Errorf("Name round trip failed: %q, %q", in.Name(a), in.Name(b))
	}
	if id, ok := in.Lookup("/b"); !ok || id != b {
		t.Errorf("Lookup(/b) = %d, %v", id, ok)
	}
	if _, ok := in.Lookup("/missing"); ok {
		t.Error("Lookup invented an ID")
	}
}

func TestInternerNamePanicsOnNoTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name(NoTarget) did not panic")
		}
	}()
	NewInterner().Name(NoTarget)
}

func TestEnsureIDPrefersExisting(t *testing.T) {
	in := NewInterner()
	preset := Request{Target: "/x", ID: 7, Size: 1}
	if got := in.EnsureID(preset); got != 7 {
		t.Errorf("EnsureID ignored preset ID: %d", got)
	}
	raw := Request{Target: "/x", Size: 1}
	if got := in.EnsureID(raw); got != 1 {
		t.Errorf("EnsureID(raw) = %d, want 1", got)
	}
}

func TestClearBatchIdempotent(t *testing.T) {
	lt := NewLoadTracker(2)
	c := NewConnState(1)
	c.Handling = 0
	lt.AddConn(0)
	lt.ChargeBatch(c, 0, []NodeID{1}, 2)
	lt.ClearBatch(c)
	lt.ClearBatch(c) // second clear must be a no-op
	if lt.Load(1) != 0 {
		t.Errorf("load(1) = %v after double clear", lt.Load(1))
	}
}

// Property: any sequence of ChargeBatch/ClearBatch pairs returns all loads
// to exactly the connection units.
func TestChargeClearBalanced(t *testing.T) {
	f := func(batches []uint8) bool {
		lt := NewLoadTracker(4)
		c := NewConnState(1)
		c.Handling = 0
		lt.AddConn(0)
		for _, b := range batches {
			n := int(b%6) + 1
			nodes := make([]NodeID, 0, n)
			for i := 0; i < n; i++ {
				nodes = append(nodes, NodeID(int(b+uint8(i))%4))
			}
			lt.ChargeBatch(c, 0, nodes, n)
			lt.ClearBatch(c)
		}
		return lt.Load(0) == 1 && lt.Load(1) == 0 && lt.Load(2) == 0 && lt.Load(3) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlattenRoundTripCounts(t *testing.T) {
	c := Connection{Batches: []Batch{
		{{Target: "/x", Size: 1}},
		{{Target: "/y", Size: 2}, {Target: "/z", Size: 3}},
	}}
	if got := c.Requests(); got != 3 {
		t.Fatalf("Requests() = %d", got)
	}
}
