package core

import (
	"reflect"
	"testing"
)

// TestAcquireLiveAndLimbo covers the two non-panicking Acquire paths: the
// lock-free refcount bump on a live entry, and the locked 0→1 revival of
// a limbo entry (which must unlink it from the LRU list).
func TestAcquireLiveAndLimbo(t *testing.T) {
	in := NewEvictableInterner(8)
	a := in.Intern("/a")
	in.Acquire(a) // live: lock-free bump
	if got := in.Refs(a); got != 2 {
		t.Fatalf("Refs after Intern+Acquire = %d, want 2", got)
	}
	in.Release(a)
	in.Release(a)
	if got := in.Refs(a); got != 0 {
		t.Fatalf("Refs after draining = %d, want 0 (limbo)", got)
	}
	in.Acquire(a) // limbo: locked revival
	if got := in.Refs(a); got != 1 {
		t.Fatalf("Refs after revival = %d, want 1", got)
	}
	if got := in.Name(a); got != "/a" {
		t.Fatalf("Name after revival = %q", got)
	}
	in.Release(a)
}

// TestAcquirePanicsOnUnassigned pins the protocol: acquiring an ID the
// interner never handed out is a driver bug.
func TestAcquirePanicsOnUnassigned(t *testing.T) {
	in := NewEvictableInterner(8)
	in.Intern("/a")
	defer func() {
		if recover() == nil {
			t.Error("Acquire of a never-assigned ID did not panic")
		}
	}()
	in.Acquire(99)
}

// TestAppendNames covers the bulk ID→name accessor on both interner
// shapes: a bulk-loaded pinned table (the zero-copy trace load, name→ID
// map still deferred) and a capped table with a dead slot, which must
// appear as an empty string to keep positions aligned with IDs.
func TestAppendNames(t *testing.T) {
	names := []Target{"/x", "/y", "/z"}
	pinned := NewInternerFromNames(append([]Target(nil), names...))
	if got := pinned.AppendNames(nil); !reflect.DeepEqual(got, names) {
		t.Errorf("pinned AppendNames = %v, want %v", got, names)
	}
	// Appending onto an existing prefix must keep it and not reallocate
	// when capacity suffices.
	dst := make([]Target, 1, 8)
	dst[0] = "prefix"
	got := pinned.AppendNames(dst)
	if len(got) != 4 || got[0] != "prefix" || got[3] != "/z" {
		t.Errorf("AppendNames onto prefix = %v", got)
	}

	capped := NewEvictableInterner(1)
	a := capped.Intern("/a")
	b := capped.Intern("/b") // overflow while /a is referenced
	capped.Release(a)
	capped.Release(b)
	capped.Acquire(b) // keep /b live so Compact kills /a, not both
	capped.Compact()
	want := []Target{"", "/b"} // dead slot holds position, empty name
	if got := capped.AppendNames(nil); !reflect.DeepEqual(got, want) {
		t.Errorf("capped AppendNames = %v, want %v", got, want)
	}
	capped.Release(b)
}

// TestRefsDiagnostics covers the Refs accessor across interner modes and
// slot states.
func TestRefsDiagnostics(t *testing.T) {
	pinned := NewInterner()
	id := pinned.Intern("/a")
	if got := pinned.Refs(id); got != 0 {
		t.Errorf("pinned Refs = %d, want 0", got)
	}
	in := NewEvictableInterner(1)
	a := in.Intern("/a")
	b := in.Intern("/b")
	if got := in.Refs(a); got != 1 {
		t.Errorf("live Refs = %d, want 1", got)
	}
	if got := in.Refs(0); got != 0 {
		t.Errorf("Refs(0) = %d, want 0", got)
	}
	if got := in.Refs(99); got != 0 {
		t.Errorf("out-of-range Refs = %d, want 0", got)
	}
	in.Release(a)
	in.Compact() // /a zero-ref and over cap: killed, slot dead
	if got := in.Refs(a); got != -1 {
		t.Errorf("dead Refs = %d, want -1", got)
	}
	in.Release(b)
}

// TestNamePanicsOnDead pins Name's recycled-ID panic.
func TestNamePanicsOnDead(t *testing.T) {
	in := NewEvictableInterner(1)
	a := in.Intern("/a")
	b := in.Intern("/b")
	in.Release(a)
	in.Compact()
	defer func() {
		if recover() == nil {
			t.Error("Name of a dead ID did not panic")
		}
		in.Release(b)
	}()
	in.Name(a)
}

// TestEvictableInternerRejectsZeroCap pins the constructor contract.
func TestEvictableInternerRejectsZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-cap evictable interner did not panic")
		}
	}()
	NewEvictableInternerStripes(0, 4)
}
