package core

import "fmt"

// LoadTracker maintains the front-end's per-node load estimate in the
// paper's load units: one unit per active connection handled by the node,
// plus 1/N of a unit per remote node serving a pipelined batch of N requests
// under BE forwarding, charged for the duration of the batch.
//
// LoadTracker is not goroutine safe; the prototype front-end serializes
// policy calls through the dispatcher, and the simulator is single threaded.
type LoadTracker struct {
	load  []float64
	conns []int
}

// NewLoadTracker returns a tracker for n nodes, all idle.
func NewLoadTracker(n int) *LoadTracker {
	return &LoadTracker{load: make([]float64, n), conns: make([]int, n)}
}

// Nodes returns the number of nodes tracked.
func (lt *LoadTracker) Nodes() int { return len(lt.load) }

// Load returns the current load estimate of node n in load units.
func (lt *LoadTracker) Load(n NodeID) float64 { return lt.load[n] }

// Conns returns the number of active connections handled by node n.
func (lt *LoadTracker) Conns(n NodeID) int { return lt.conns[n] }

// AddConn charges one load unit to n for a newly handled connection.
func (lt *LoadTracker) AddConn(n NodeID) {
	lt.load[n]++
	lt.conns[n]++
}

// RemoveConn releases the connection unit charged by AddConn.
func (lt *LoadTracker) RemoveConn(n NodeID) {
	lt.load[n]--
	lt.conns[n]--
	if lt.conns[n] < 0 {
		panic(fmt.Sprintf("core: connection count of %v went negative", n))
	}
}

// MoveConn transfers a connection unit from old to new on migration.
func (lt *LoadTracker) MoveConn(old, new NodeID) {
	lt.RemoveConn(old)
	lt.AddConn(new)
}

// AddFraction charges f load units to n (remote batch accounting).
func (lt *LoadTracker) AddFraction(n NodeID, f float64) { lt.load[n] += f }

// RemoveFraction releases f load units from n.
func (lt *LoadTracker) RemoveFraction(n NodeID, f float64) { lt.load[n] -= f }

// Least returns the least-loaded node, breaking ties toward lower IDs.
func (lt *LoadTracker) Least() NodeID {
	best := NodeID(0)
	for i := 1; i < len(lt.load); i++ {
		if lt.load[i] < lt.load[best] {
			best = NodeID(i)
		}
	}
	return best
}

// Total returns the summed load across nodes.
func (lt *LoadTracker) Total() float64 {
	var t float64
	for _, l := range lt.load {
		t += l
	}
	return t
}

// ClearBatch releases the fractional remote loads recorded on c. Called when
// a new batch arrives on the connection (all previous requests are assumed
// finished, per the paper's estimate) or when the connection goes idle or
// closes.
func (lt *LoadTracker) ClearBatch(c *ConnState) {
	for n, f := range c.RemoteLoad {
		lt.RemoveFraction(n, f)
	}
	c.RemoteLoad = nil
}

// ChargeBatch charges each remote node in nodes 1/batchSize of a load unit
// (the paper's 1/N accounting, N being the number of outstanding requests in
// the pipelined batch), recording the charges on c so ClearBatch can undo
// them. Entries equal to handling or NoNode are skipped: requests served by
// the handling node are already covered by the connection unit.
func (lt *LoadTracker) ChargeBatch(c *ConnState, handling NodeID, nodes []NodeID, batchSize int) {
	if len(nodes) == 0 || batchSize <= 0 {
		return
	}
	frac := 1.0 / float64(batchSize)
	for _, n := range nodes {
		if n == handling || n == NoNode {
			continue
		}
		if c.RemoteLoad == nil {
			c.RemoteLoad = make(map[NodeID]float64)
		}
		lt.AddFraction(n, frac)
		c.RemoteLoad[n] += frac
	}
}
