package core

import (
	"fmt"
	"math"
	"sync/atomic"
)

// LoadTracker maintains the front-end's per-node load estimate in the
// paper's load units: one unit per active connection handled by the node,
// plus 1/N of a unit per remote node serving a pipelined batch of N requests
// under BE forwarding, charged for the duration of the batch.
//
// LoadTracker is safe for concurrent use: connection counts are atomic
// integers and load units are atomic floats (compare-and-swap on the bit
// pattern), so parallel dispatchers update it without a global lock. Reads
// (Load, Least, Total) are unsynchronized snapshots — a policy deciding on
// slightly stale load is exactly the paper's front-end, whose estimates lag
// the back-ends anyway. Per-connection bookkeeping (ClearBatch, ChargeBatch)
// mutates the ConnState as well and must be serialized per connection by the
// caller, as the dispatch engine does.
type LoadTracker struct {
	load  []atomic.Uint64 // float64 bit patterns
	conns []atomic.Int64

	// remote and remoteConns are the externally synced base added to
	// every read: in a scale-out front-end tier (dstate replicated mode)
	// each front-end only charges its own tracker, and the replication
	// sync writes the peers' last-known totals here so policies decide on
	// the whole tier's load, bounded-stale. Zero — and therefore
	// result-neutral — outside a tier.
	remote      []atomic.Uint64 // float64 bit patterns
	remoteConns []atomic.Int64
}

// NewLoadTracker returns a tracker for n nodes, all idle.
func NewLoadTracker(n int) *LoadTracker {
	return &LoadTracker{
		load: make([]atomic.Uint64, n), conns: make([]atomic.Int64, n),
		remote: make([]atomic.Uint64, n), remoteConns: make([]atomic.Int64, n),
	}
}

// Nodes returns the number of nodes tracked.
func (lt *LoadTracker) Nodes() int { return len(lt.load) }

// Load returns the current load estimate of node n in load units: the
// locally charged load plus the synced remote base (zero outside a
// replicated front-end tier).
func (lt *LoadTracker) Load(n NodeID) float64 {
	return math.Float64frombits(lt.load[n].Load()) + math.Float64frombits(lt.remote[n].Load())
}

// LocalLoad returns only the locally charged load of node n — what this
// tracker's own AddConn/AddFraction calls contributed. The replication
// sync exchanges these (never the combined Load, which would double-count
// on re-sync).
func (lt *LoadTracker) LocalLoad(n NodeID) float64 {
	return math.Float64frombits(lt.load[n].Load())
}

// SetRemote overwrites node n's synced remote load base (the sum of the
// peers' LocalLoad for n, as of the last completed sync round).
func (lt *LoadTracker) SetRemote(n NodeID, load float64) {
	lt.remote[n].Store(math.Float64bits(load))
}

// LocalConns returns only the locally charged connection count of node n.
func (lt *LoadTracker) LocalConns(n NodeID) int { return int(lt.conns[n].Load()) }

// SetRemoteConns overwrites node n's synced remote connection-count base.
func (lt *LoadTracker) SetRemoteConns(n NodeID, conns int64) {
	lt.remoteConns[n].Store(conns)
}

// addLoad atomically adds f load units to node n.
//
//phttp:hotpath
func (lt *LoadTracker) addLoad(n NodeID, f float64) {
	slot := &lt.load[n]
	for {
		old := slot.Load()
		new := math.Float64bits(math.Float64frombits(old) + f)
		if slot.CompareAndSwap(old, new) {
			return
		}
	}
}

// Conns returns the number of active connections handled by node n
// (locally charged plus the synced remote base).
func (lt *LoadTracker) Conns(n NodeID) int {
	return int(lt.conns[n].Load() + lt.remoteConns[n].Load())
}

// AddConn charges one load unit to n for a newly handled connection.
//
//phttp:hotpath
func (lt *LoadTracker) AddConn(n NodeID) {
	lt.addLoad(n, 1)
	lt.conns[n].Add(1)
}

// RemoveConn releases the connection unit charged by AddConn.
//
//phttp:hotpath
func (lt *LoadTracker) RemoveConn(n NodeID) {
	lt.addLoad(n, -1)
	if lt.conns[n].Add(-1) < 0 {
		panicNegativeConns(n)
	}
}

// panicNegativeConns is the cold formatting helper for RemoveConn's
// invariant panic, kept out of the annotated hot path so fmt stays off it.
func panicNegativeConns(n NodeID) {
	panic(fmt.Sprintf("core: connection count of %v went negative", n))
}

// MoveConn transfers a connection unit from old to new on migration.
func (lt *LoadTracker) MoveConn(old, new NodeID) {
	lt.RemoveConn(old)
	lt.AddConn(new)
}

// AddFraction charges f load units to n (remote batch accounting).
//
//phttp:hotpath
func (lt *LoadTracker) AddFraction(n NodeID, f float64) { lt.addLoad(n, f) }

// RemoveFraction releases f load units from n.
//
//phttp:hotpath
func (lt *LoadTracker) RemoveFraction(n NodeID, f float64) { lt.addLoad(n, -f) }

// Least returns the least-loaded node, breaking ties toward lower IDs.
func (lt *LoadTracker) Least() NodeID {
	best := NodeID(0)
	for i := 1; i < len(lt.load); i++ {
		if lt.Load(NodeID(i)) < lt.Load(best) {
			best = NodeID(i)
		}
	}
	return best
}

// Total returns the summed load across nodes.
func (lt *LoadTracker) Total() float64 {
	var t float64
	for i := range lt.load {
		t += lt.Load(NodeID(i))
	}
	return t
}

// ClearBatch releases the fractional remote loads recorded on c. Called when
// a new batch arrives on the connection (all previous requests are assumed
// finished, per the paper's estimate) or when the connection goes idle or
// closes. The charge slice is truncated, not freed, so the next batch's
// accounting reuses it.
//
//phttp:hotpath
func (lt *LoadTracker) ClearBatch(c *ConnState) {
	for _, rc := range c.RemoteLoad {
		lt.RemoveFraction(rc.Node, rc.Frac)
	}
	c.RemoteLoad = c.RemoteLoad[:0]
}

// ChargeBatch charges each remote node in nodes 1/batchSize of a load unit
// (the paper's 1/N accounting, N being the number of outstanding requests in
// the pipelined batch), recording the charges on c so ClearBatch can undo
// them. Entries equal to handling or NoNode are skipped: requests served by
// the handling node are already covered by the connection unit.
//
//phttp:hotpath
func (lt *LoadTracker) ChargeBatch(c *ConnState, handling NodeID, nodes []NodeID, batchSize int) {
	if len(nodes) == 0 || batchSize <= 0 {
		return
	}
	frac := 1.0 / float64(batchSize)
	for _, n := range nodes {
		if n == handling || n == NoNode {
			continue
		}
		lt.AddFraction(n, frac)
		found := false
		for i := range c.RemoteLoad {
			if c.RemoteLoad[i].Node == n {
				c.RemoteLoad[i].Frac += frac
				found = true
				break
			}
		}
		if !found {
			c.RemoteLoad = append(c.RemoteLoad, RemoteCharge{Node: n, Frac: frac})
		}
	}
}
