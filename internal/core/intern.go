package core

import (
	"fmt"
	"sync"
)

// TargetID is a dense integer name for a Target. The interner assigns IDs
// starting at 1; NoTarget (0) marks a request whose target has not been
// interned yet. Dense IDs let the per-event paths of the simulator and the
// policies index slices instead of hashing target strings: a cache lookup is
// an array load, a mapping update touches no map.
type TargetID int32

// NoTarget is the zero value of TargetID: "not interned". Constructors that
// build Requests from raw strings (trace parsing, the prototype protocol)
// leave the ID at NoTarget; the dispatch engine or the trace loader interns
// before any policy or cache sees the request.
const NoTarget TargetID = 0

// Interner maps Target strings to dense TargetIDs and back. IDs are assigned
// sequentially from 1 in first-intern order, so a trace interned
// single-threaded always yields the same IDs for the same trace — simulation
// results stay reproducible.
//
// Interner is safe for concurrent use: the prototype front-end interns
// request targets from parallel connection handlers. Lookups of
// already-interned targets take only a read lock.
//
// IDs are never recycled: memory grows with the number of distinct targets
// ever interned. That is exactly right for trace-driven simulation (the
// population is the trace's catalog) and bounded for the prototype's
// benchmark runs, but a front-end serving an unbounded URL space for weeks
// would pin every URL it has ever seen — see the ROADMAP open item on
// moving the prototype to an evictable interner before long-haul
// deployments.
type Interner struct {
	mu    sync.RWMutex
	ids   map[Target]TargetID
	names []Target // names[id-1] is the target of id
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Target]TargetID)}
}

// Intern returns the ID for t, assigning the next dense ID if t is new.
func (in *Interner) Intern(t Target) TargetID {
	in.mu.RLock()
	id, ok := in.ids[t]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[t]; ok {
		return id
	}
	in.names = append(in.names, t)
	id = TargetID(len(in.names))
	in.ids[t] = id
	return id
}

// Lookup returns the ID for t without interning, and whether it was present.
func (in *Interner) Lookup(t Target) (TargetID, bool) {
	in.mu.RLock()
	id, ok := in.ids[t]
	in.mu.RUnlock()
	return id, ok
}

// Name returns the target string of id. It panics on NoTarget or an ID this
// interner never assigned: both are driver bugs, not data.
func (in *Interner) Name(id TargetID) Target {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id <= 0 || int(id) > len(in.names) {
		panic(fmt.Sprintf("core: Name of unassigned TargetID %d", id))
	}
	return in.names[id-1]
}

// Len returns the number of interned targets. Valid IDs are 1..Len().
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}

// EnsureID returns r.ID if set, interning r.Target otherwise. It does not
// mutate r.
func (in *Interner) EnsureID(r Request) TargetID {
	if r.ID != NoTarget {
		return r.ID
	}
	return in.Intern(r.Target)
}
