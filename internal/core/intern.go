package core

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// TargetID is a dense integer name for a Target. The interner assigns IDs
// starting at 1; NoTarget (0) marks a request whose target has not been
// interned yet. Dense IDs let the per-event paths of the simulator and the
// policies index slices instead of hashing target strings: a cache lookup is
// an array load, a mapping update touches no map.
type TargetID int32

// NoTarget is the zero value of TargetID: "not interned". Constructors that
// build Requests from raw strings (trace parsing, the prototype protocol)
// leave the ID at NoTarget; the HTTP parser or the trace loader interns
// before any policy or cache sees the request.
const NoTarget TargetID = 0

// RefCounter is the lifecycle hook an ID-keyed structure uses to pin the
// interned targets it holds: Acquire when an entry keyed by id is inserted,
// Release when it is evicted or removed. *Interner implements it; structures
// with a nil RefCounter skip the calls entirely, so the simulator's pinned
// workloads pay nothing.
type RefCounter interface {
	Acquire(id TargetID)
	Release(id TargetID)
}

// Sentinel slot values for the interner's lifecycle state. Slots are id-1.
const (
	nilSlot    int32 = -1 // list terminator / empty list
	notInLimbo int32 = -2 // entry is referenced (or dead), not in the limbo list
	deadRef    int32 = -1 // refs value marking a recycled (dead) slot
)

// deadName is the shared name of every dead slot, so killing an entry never
// allocates.
var deadName = Target("")

// Stripe sizing. Small caps get a single stripe: they behave exactly like
// the pre-sharding implementation (one global LRU, one lock), which the
// lifecycle model tests pin. Larger caps split into power-of-two stripes,
// each at least stripeMinTargets wide so per-stripe LRU pressure stays
// meaningful and a skewed hash cannot starve a stripe's budget.
const (
	stripeMinTargets = 256
	maxStripes       = 64
)

// Slot arena chunking: slots live in fixed-size chunks reached through an
// atomically published chunk directory, so lock-free readers hold a stable
// *islot across concurrent growth and Compact's truncation.
const (
	slotChunkBits = 10
	slotChunkSize = 1 << slotChunkBits
	slotChunkMask = slotChunkSize - 1
)

// islot is one interned target's slot. name and refs are read lock-free on
// the hit path; prev/next are limbo-list links touched only under the owning
// stripe's lock. A slot's stripe never changes: recycling rebinds it to a
// target of the same stripe (the victim and the free list are per-stripe),
// so the links are always guarded by one consistent mutex.
type islot struct {
	name atomic.Pointer[Target]
	refs atomic.Int32
	prev int32
	next int32
}

type slotChunk [slotChunkSize]islot

// slotArena is the shared slot store: a chunk directory published
// atomically plus an atomic length. Claims are serialized by mu (callers
// additionally hold a stripe lock); truncation happens with every stripe
// lock held, so it cannot race a claim.
type slotArena struct {
	mu     sync.Mutex
	chunks atomic.Pointer[[]*slotChunk]
	length atomic.Int32
}

func (a *slotArena) slot(s int32) *islot {
	return &(*a.chunks.Load())[s>>slotChunkBits][s&slotChunkMask]
}

// slotIfPresent is the lock-free accessor: a reader acting on a stale
// snapshot may hold a slot index beyond a truncated directory, which is a
// miss, not a fault.
func (a *slotArena) slotIfPresent(s int32) *islot {
	dir := a.chunks.Load()
	if dir == nil || int(s>>slotChunkBits) >= len(*dir) {
		return nil
	}
	return &(*dir)[s>>slotChunkBits][s&slotChunkMask]
}

// claim appends one slot and returns its index, growing the chunk
// directory copy-on-write so concurrent lock-free readers keep a coherent
// view.
func (a *slotArena) claim() int32 {
	a.mu.Lock()
	s := a.length.Load()
	var cur []*slotChunk
	if dir := a.chunks.Load(); dir != nil {
		cur = *dir
	}
	if int(s>>slotChunkBits) >= len(cur) {
		grown := make([]*slotChunk, len(cur)+1)
		copy(grown, cur)
		grown[len(cur)] = new(slotChunk)
		a.chunks.Store(&grown)
	}
	a.length.Store(s + 1)
	a.mu.Unlock()
	return s
}

// grow bulk-allocates n slots (constructor path, no concurrency). The
// chunk pointers are carved from one backing slab, so a bulk load costs
// O(1) allocations instead of one per chunk; only pinned interners bulk
// load, so Compact's chunk-dropping truncation (which a shared slab would
// defeat) never sees a slab-backed arena.
func (a *slotArena) grow(n int) {
	nchunks := (n + slotChunkSize - 1) >> slotChunkBits
	slab := make([]islot, nchunks<<slotChunkBits)
	chunks := make([]*slotChunk, nchunks)
	for i := range chunks {
		chunks[i] = (*slotChunk)(slab[i<<slotChunkBits : (i+1)<<slotChunkBits])
	}
	a.chunks.Store(&chunks)
	a.length.Store(int32(n))
}

// truncate drops the trailing slots ≥ n and any chunks that became fully
// unused. Callers hold every stripe lock.
func (a *slotArena) truncate(n int32) {
	a.mu.Lock()
	keep := int(n+slotChunkSize-1) >> slotChunkBits
	if dir := a.chunks.Load(); dir != nil && keep < len(*dir) {
		trimmed := make([]*slotChunk, keep)
		copy(trimmed, (*dir)[:keep])
		a.chunks.Store(&trimmed)
	}
	a.length.Store(n)
	a.mu.Unlock()
}

// internStripe is one shard of the capped interner: an authoritative map
// guarded by mu, a read-only snapshot of it for the lock-free hit path, and
// the stripe's share of the lifecycle state (limbo LRU, free list, budget).
type internStripe struct {
	mu   sync.Mutex
	snap atomic.Pointer[map[Target]TargetID]

	ids     map[Target]TargetID
	pending int // mutations/snapshot misses since the last snapshot rebuild

	budget    int
	free      []TargetID
	limboHead int32
	limboTail int32
	limboLen  int
	recycles  int64
}

// rebuildLocked publishes a fresh immutable snapshot of the authoritative
// map. Callers hold st.mu.
func (st *internStripe) rebuildLocked() {
	m := make(map[Target]TargetID, len(st.ids))
	for k, v := range st.ids {
		m[k] = v
	}
	st.snap.Store(&m)
	st.pending = 0
}

// touchLocked notes one snapshot-visible change (or miss) and rebuilds the
// snapshot once enough accumulate: small stripes refresh immediately, large
// ones amortize the O(n) copy over n/8 changes.
func (st *internStripe) touchLocked() {
	st.pending++
	if st.pending >= 1+len(st.ids)/8 {
		st.rebuildLocked()
	}
}

// Interner maps Target strings to dense TargetIDs and back. IDs are assigned
// sequentially from 1 in first-intern order, so a trace interned
// single-threaded always yields the same IDs for the same trace — simulation
// results stay reproducible.
//
// Interner is safe for concurrent use: the prototype front-end interns
// request targets from parallel connection handlers. Re-interning an
// already-known target takes no lock at all — the hit path reads an
// atomically published map snapshot and (in capped mode) acquires its
// reference with a compare-and-swap (DESIGN.md §14).
//
// # Pinned vs evictable
//
// NewInterner returns a *pinned* interner: IDs are never recycled and memory
// grows with the number of distinct targets ever interned. That is exactly
// right for trace-driven simulation (the population is the trace's catalog)
// and bounded for the prototype's benchmark runs. Acquire and Release are
// no-ops, so the refcount protocol costs nothing on pinned workloads, and ID
// assignment order is byte-for-byte what it was before lifecycle management
// existed — simulation goldens are unaffected.
//
// NewEvictableInterner(max) returns a *capped* interner for front-ends
// facing an unbounded URL space (query strings, crawlers): every interned
// target carries a reference count, zero-ref targets sit on an LRU "limbo"
// list, and when the table is at its cap a new target recycles the ID of the
// least-recently-released limbo entry. The protocol:
//
//   - Intern returns the ID holding one reference; the caller releases it
//     when the request that carried it has been dispatched.
//   - ID-keyed structures (mapping tables, caches) Acquire on insert and
//     Release on evict, so an ID is never recycled while any structure still
//     holds an entry under it — recycling cannot alias two live targets.
//   - When every interned target is referenced the cap is exceeded rather
//     than failing: live references bound the overflow, and the table
//     shrinks back to the cap as references drain.
//
// Large caps are sharded into power-of-two stripes (per-stripe lock, limbo
// LRU and free list; the cap becomes per-stripe budgets summing to max), so
// parallel connection handlers do not serialize on one mutex. Small caps
// keep a single stripe and thus exactly the pre-sharding global-LRU
// behavior.
//
// Dead IDs go on a free list and are reused before new IDs are minted, so
// the dense per-ID slices downstream (cache position tables, policy
// counters) stay bounded by the cap instead of growing with target churn.
// Compact reclaims trailing dead slots after a churn burst.
type Interner struct {
	max     int
	mask    uint32
	seed    maphash.Seed
	stripes []internStripe
	arena   slotArena

	// lazy, when non-nil, is the in-order name table of a bulk-loaded
	// pinned interner (NewInternerFromNames) whose name→ID map has not
	// been materialized yet. Guarded by the single stripe's mu; see
	// materializeLocked. ID→name lookups (Name, AppendNames) and replay
	// through pre-stamped IDs never need the map, so the zero-copy trace
	// load path skips building it entirely.
	lazy []Target
}

// newInterner builds an interner with the given cap (0 = pinned) and stripe
// count (0 = choose from the cap).
func newInterner(max, stripes int) *Interner {
	if stripes <= 0 {
		stripes = autoStripes(max)
	}
	stripes = normStripes(max, stripes)
	in := &Interner{
		max:     max,
		mask:    uint32(stripes - 1),
		seed:    maphash.MakeSeed(),
		stripes: make([]internStripe, stripes),
	}
	base, rem := 0, 0
	if max > 0 {
		base, rem = max/stripes, max%stripes
	}
	for i := range in.stripes {
		st := &in.stripes[i]
		st.ids = make(map[Target]TargetID)
		st.budget = base
		if i < rem {
			st.budget++
		}
		st.limboHead, st.limboTail = nilSlot, nilSlot
		st.rebuildLocked()
	}
	return in
}

// autoStripes picks the stripe count for a cap: pinned interners get one
// stripe (their hit path is lock-free regardless), capped interners get as
// many power-of-two stripes as keep each at least stripeMinTargets wide.
func autoStripes(max int) int {
	if max == 0 {
		return 1
	}
	s := 1
	for s < maxStripes && max/(2*s) >= stripeMinTargets {
		s *= 2
	}
	return s
}

// normStripes rounds up to a power of two and clamps so every stripe has a
// positive budget in capped mode.
func normStripes(max, stripes int) int {
	s := 1
	for s < stripes && s < maxStripes {
		s *= 2
	}
	for max > 0 && s > 1 && max/s < 1 {
		s /= 2
	}
	return s
}

// stripeIndex routes a target to its stripe. The hash is per-interner
// seeded (maphash), which is fine even for reproducible runs: pinned IDs
// come from the shared arena in first-intern order, and capped eviction is
// already load-dependent.
func (in *Interner) stripeIndex(t Target) uint32 {
	if in.mask == 0 {
		return 0
	}
	return uint32(maphash.String(in.seed, string(t))) & in.mask
}

func (in *Interner) stripeFor(t Target) *internStripe {
	return &in.stripes[in.stripeIndex(t)]
}

// NewInterner returns an empty pinned interner: IDs live forever.
func NewInterner() *Interner {
	return newInterner(0, 0)
}

// emptySnap is the shared initial snapshot of a bulk-loaded interner: the
// lock-free Intern hit path can dereference it at zero cost until
// materializeLocked publishes the real map. Never mutated.
var emptySnap = func() *map[Target]TargetID {
	m := map[Target]TargetID{}
	return &m
}()

// NewInternerFromNames builds a pinned interner whose table is exactly
// names in order (names[i] ↔ ID i+1), taking ownership of the slice —
// callers must not mutate it afterwards. This is the bulk path for loaders
// that already hold a trace's target table. The name→ID map is built
// lazily on the first operation that needs one (an Intern miss, Lookup,
// Len): ID→name traffic — Name, AppendNames, replay through pre-stamped
// request IDs — never touches it, so loading a cached trace costs a
// handful of allocations regardless of table size. Duplicate names
// collapse to the first occurrence; callers that must reject duplicates
// check before handing the slice over (the trace loader probes for them).
func NewInternerFromNames(names []Target) *Interner {
	// Hand-rolled single-stripe shell instead of newInterner: the map and
	// snapshot newInterner would build are exactly what this path defers,
	// and the mmap'd cache-hit load budgets every allocation.
	in := &Interner{
		seed:    maphash.MakeSeed(),
		stripes: make([]internStripe, 1),
	}
	st := &in.stripes[0]
	st.limboHead, st.limboTail = nilSlot, nilSlot
	st.snap.Store(emptySnap)
	in.arena.grow(len(names))
	for i := range names {
		sl := in.arena.slot(int32(i))
		sl.name.Store(&names[i])
		sl.prev, sl.next = notInLimbo, notInLimbo
	}
	in.lazy = names
	return in
}

// BulkNames returns the in-order name table of a bulk-loaded interner
// while its name→ID map is still deferred, or nil otherwise (materialized,
// or not built by NewInternerFromNames). Callers must not mutate the
// returned slice. The trace loader uses it to verify a shared table
// without AppendNames' fresh allocation.
func (in *Interner) BulkNames() []Target {
	st := &in.stripes[0]
	st.mu.Lock()
	names := in.lazy
	st.mu.Unlock()
	return names
}

// materializeLocked builds the deferred name→ID map of a bulk-loaded
// pinned interner (first-occurrence-wins, matching eager interning order).
// Callers hold st.mu; lazy is only ever set on a single-stripe interner,
// so holding any stripe's lock serializes all materializers.
func (in *Interner) materializeLocked(st *internStripe) {
	if in.lazy == nil {
		return
	}
	st.ids = make(map[Target]TargetID, len(in.lazy))
	for i, t := range in.lazy {
		if _, ok := st.ids[t]; !ok {
			st.ids[t] = TargetID(i + 1)
		}
	}
	st.rebuildLocked()
	in.lazy = nil
}

// NewEvictableInterner returns an empty capped interner holding at most max
// targets (see the type comment for the reference protocol). max must be
// positive. The stripe count is chosen from the cap; use
// NewEvictableInternerStripes to pin it.
func NewEvictableInterner(max int) *Interner {
	return NewEvictableInternerStripes(max, 0)
}

// NewEvictableInternerStripes is NewEvictableInterner with an explicit
// stripe count (rounded up to a power of two, clamped so every stripe gets
// a positive share of the cap). stripes ≤ 0 selects the automatic count.
func NewEvictableInternerStripes(max, stripes int) *Interner {
	if max <= 0 {
		panic("core: evictable interner needs a positive target cap")
	}
	return newInterner(max, stripes)
}

// Evictable reports whether this interner recycles IDs (capped mode).
func (in *Interner) Evictable() bool { return in.max > 0 }

// Cap returns the target cap (0 for a pinned interner).
func (in *Interner) Cap() int { return in.max }

// Stripes returns the number of shards the table is split into.
func (in *Interner) Stripes() int { return len(in.stripes) }

// Intern returns the ID for t, assigning an ID if t is new: a recycled dead
// ID when one is free, the next dense ID otherwise. In capped mode the
// returned ID holds one reference that the caller must Release when done;
// in pinned mode references are not tracked and Release is a no-op, so
// callers may follow the same protocol unconditionally.
//
// The hit path is lock-free: a snapshot lookup plus (capped) a CAS on the
// refcount, verified against the slot's current name so a recycled ID from
// a stale snapshot can never alias a different target.
//
//phttp:hotpath
func (in *Interner) Intern(t Target) TargetID {
	st := in.stripeFor(t)
	id, inSnap := (*st.snap.Load())[t]
	if inSnap {
		if in.max == 0 {
			return id
		}
		if in.tryAcquireHit(t, id) {
			return id
		}
	}
	return in.internSlow(st, t, !inSnap)
}

// tryAcquireHit attempts the lock-free capped hit: bump the refcount while
// it is positive, then confirm the slot still names t — it may have been
// recycled since the snapshot was taken, in which case the spurious
// reference is undone and the caller falls back to the locked path.
//
//phttp:hotpath
func (in *Interner) tryAcquireHit(t Target, id TargetID) bool {
	sl := in.arena.slotIfPresent(int32(id) - 1)
	if sl == nil {
		return false
	}
	for {
		r := sl.refs.Load()
		if r <= 0 {
			return false // limbo or dead: revive under the stripe lock
		}
		if sl.refs.CompareAndSwap(r, r+1) {
			if name := sl.name.Load(); name != nil && *name == t {
				return true
			}
			in.releaseSlot(int32(id)-1, sl)
			return false
		}
	}
}

// internSlow resolves t under the stripe lock: revive/acquire a known
// entry, or assign a slot. missed reports whether the snapshot lacked t,
// i.e. whether a hit here should count toward a snapshot rebuild.
func (in *Interner) internSlow(st *internStripe, t Target, missed bool) TargetID {
	st.mu.Lock()
	defer st.mu.Unlock()
	in.materializeLocked(st)
	if id, ok := st.ids[t]; ok {
		if missed {
			st.touchLocked()
		}
		if in.max == 0 {
			return id
		}
		sl := in.arena.slot(int32(id) - 1)
		for {
			r := sl.refs.Load()
			if r == 0 {
				in.limboRemoveLocked(st, int32(id)-1)
				sl.refs.Store(1)
				return id
			}
			if sl.refs.CompareAndSwap(r, r+1) {
				return id
			}
		}
	}
	return in.assignLocked(st, t)
}

// assignLocked binds a new target to an ID, recycling before growing.
// Callers hold the stripe lock.
func (in *Interner) assignLocked(st *internStripe, t Target) TargetID {
	if in.max > 0 {
		// At the stripe's budget: evict its least-recently-released
		// zero-ref target and reuse the ID. Its refcount is zero, so no
		// cache or mapping holds an entry keyed by the ID — reuse cannot
		// alias. Storing the new name before reviving the refcount keeps
		// the lock-free verify airtight: a stale reader either sees
		// refs ≤ 0 (and comes here) or refs ≥ 1 with the new name already
		// visible.
		if len(st.ids) >= st.budget && st.limboTail != nilSlot {
			s := st.limboTail
			in.limboRemoveLocked(st, s)
			sl := in.arena.slot(s)
			delete(st.ids, *sl.name.Load())
			name := t
			sl.name.Store(&name)
			sl.refs.Store(1)
			id := TargetID(s + 1)
			st.ids[t] = id
			st.recycles++
			st.touchLocked()
			return id
		}
		// Below the budget (or every target is referenced — the documented
		// overflow): prefer a dead slot from the stripe's free list so the
		// ID space stays dense.
		if n := len(st.free); n > 0 {
			id := st.free[n-1]
			st.free = st.free[:n-1]
			sl := in.arena.slot(int32(id) - 1)
			name := t
			sl.name.Store(&name)
			sl.refs.Store(1)
			sl.prev, sl.next = notInLimbo, notInLimbo
			st.ids[t] = id
			st.touchLocked()
			return id
		}
	}
	s := in.arena.claim()
	sl := in.arena.slot(s)
	name := t
	sl.name.Store(&name)
	sl.prev, sl.next = notInLimbo, notInLimbo
	if in.max > 0 {
		sl.refs.Store(1)
	}
	id := TargetID(s + 1)
	st.ids[t] = id
	st.touchLocked()
	return id
}

// Acquire adds a reference to id (no-op on a pinned interner). Acquiring a
// zero-ref ID revives it from limbo. It panics on a dead or never-assigned
// ID: by the reference protocol a caller can only acquire an ID it resolved
// through Intern or received alongside a live entry.
//
//phttp:hotpath
func (in *Interner) Acquire(id TargetID) {
	if in.max == 0 {
		return
	}
	sl := in.slotChecked(id, "Acquire")
	for {
		r := sl.refs.Load()
		if r > 0 {
			if sl.refs.CompareAndSwap(r, r+1) {
				return
			}
			continue
		}
		if r == deadRef {
			panicBadID("Acquire", "recycled", id)
		}
		// Zero refs: the 0→1 revival must pair with the limbo unlink under
		// the owning stripe's lock. The owner is named by the slot; confirm
		// it under the lock since a concurrent recycle may rebind the slot.
		name := sl.name.Load()
		if name == nil {
			panicBadID("Acquire", "unassigned", id)
		}
		st := in.stripeFor(*name)
		st.mu.Lock()
		cur := sl.name.Load()
		if cur == nil || in.stripeFor(*cur) != st {
			st.mu.Unlock()
			continue
		}
		if sl.refs.Load() == 0 {
			in.limboRemoveLocked(st, int32(id)-1)
			sl.refs.Store(1)
			st.mu.Unlock()
			return
		}
		st.mu.Unlock()
	}
}

// Release drops a reference to id (no-op on a pinned interner). When the
// last reference drains, the target parks on the limbo list: it is still
// resolvable (a re-Intern revives it) until table pressure recycles its ID.
//
//phttp:hotpath
func (in *Interner) Release(id TargetID) {
	if in.max == 0 {
		return
	}
	in.releaseSlot(int32(id)-1, in.slotChecked(id, "Release"))
}

// releaseSlot drops one reference from slot s. Decrements above one are a
// plain CAS; the final 1→0 transition happens under the owning stripe's
// lock, paired atomically with the limbo push, so "refs == 0" and "parked
// in limbo" can never disagree.
//
//phttp:hotpath
func (in *Interner) releaseSlot(s int32, sl *islot) {
	for {
		r := sl.refs.Load()
		if r > 1 {
			if sl.refs.CompareAndSwap(r, r-1) {
				return
			}
			continue
		}
		if r <= 0 {
			panicUnreferenced(s, sl)
		}
		// Our caller holds a reference, so the slot cannot be recycled out
		// from under us and its name (hence its stripe) is stable.
		st := in.stripeFor(*sl.name.Load())
		st.mu.Lock()
		if sl.refs.CompareAndSwap(1, 0) {
			in.limboPushLocked(st, s)
			st.mu.Unlock()
			return
		}
		st.mu.Unlock()
	}
}

// slotChecked validates id against the live table and returns its slot.
//
//phttp:hotpath
func (in *Interner) slotChecked(id TargetID, op string) *islot {
	if id <= 0 || int32(id) > in.arena.length.Load() {
		panicBadID(op, "unassigned", id)
	}
	sl := in.arena.slotIfPresent(int32(id) - 1)
	if sl == nil {
		panicBadID(op, "unassigned", id)
	}
	if sl.refs.Load() == deadRef {
		panicBadID(op, "recycled", id)
	}
	return sl
}

// panicBadID and panicUnreferenced are the cold formatting helpers for
// the reference-protocol panics: the annotated hot paths above must not
// call fmt themselves.
func panicBadID(op, kind string, id TargetID) {
	panic(fmt.Sprintf("core: %s of %s TargetID %d", op, kind, id))
}

func panicUnreferenced(s int32, sl *islot) {
	name := ""
	if p := sl.name.Load(); p != nil {
		name = string(*p)
	}
	panic(fmt.Sprintf("core: Release of unreferenced TargetID %d (%q)", s+1, name))
}

// limboPushLocked parks slot s at the MRU end of the stripe's limbo list.
func (in *Interner) limboPushLocked(st *internStripe, s int32) {
	sl := in.arena.slot(s)
	sl.prev = nilSlot
	sl.next = st.limboHead
	if st.limboHead != nilSlot {
		in.arena.slot(st.limboHead).prev = s
	}
	st.limboHead = s
	if st.limboTail == nilSlot {
		st.limboTail = s
	}
	st.limboLen++
}

// limboRemoveLocked unlinks slot s from the stripe's limbo list.
func (in *Interner) limboRemoveLocked(st *internStripe, s int32) {
	sl := in.arena.slot(s)
	prev, next := sl.prev, sl.next
	if prev == notInLimbo || next == notInLimbo {
		panic(fmt.Sprintf("core: limbo unlink of non-limbo slot %d", s))
	}
	if prev != nilSlot {
		in.arena.slot(prev).next = next
	} else {
		st.limboHead = next
	}
	if next != nilSlot {
		in.arena.slot(next).prev = prev
	} else {
		st.limboTail = prev
	}
	sl.prev, sl.next = notInLimbo, notInLimbo
	st.limboLen--
}

// AppendNames appends the interner's targets in ID order (names[i] is the
// target of ID i+1) to dst and returns it: the bulk accessor loaders use
// to compare or adopt a table without a lock round trip per entry. On a
// capped interner dead slots appear as empty strings.
func (in *Interner) AppendNames(dst []Target) []Target {
	n := in.arena.length.Load()
	if need := len(dst) + int(n); cap(dst) < need {
		grown := make([]Target, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for s := int32(0); s < n; s++ {
		sl := in.arena.slotIfPresent(s)
		if sl == nil {
			break
		}
		if p := sl.name.Load(); p != nil {
			dst = append(dst, *p)
		} else {
			dst = append(dst, "")
		}
	}
	return dst
}

// Lookup returns the ID for t without interning, and whether it was present.
// In capped mode it takes no reference, so the binding is only stable while
// the caller otherwise holds the ID alive — use it for diagnostics, not on
// the dispatch path.
func (in *Interner) Lookup(t Target) (TargetID, bool) {
	st := in.stripeFor(t)
	st.mu.Lock()
	in.materializeLocked(st)
	id, ok := st.ids[t]
	st.mu.Unlock()
	return id, ok
}

// Name returns the target string of id. It panics on NoTarget, a recycled
// ID, or an ID this interner never assigned: all are driver bugs, not data.
func (in *Interner) Name(id TargetID) Target {
	if id <= 0 || int32(id) > in.arena.length.Load() {
		panic(fmt.Sprintf("core: Name of unassigned TargetID %d", id))
	}
	sl := in.arena.slotIfPresent(int32(id) - 1)
	if sl == nil {
		panic(fmt.Sprintf("core: Name of unassigned TargetID %d", id))
	}
	if in.max > 0 && sl.refs.Load() == deadRef {
		panic(fmt.Sprintf("core: Name of recycled TargetID %d", id))
	}
	p := sl.name.Load()
	if p == nil {
		panic(fmt.Sprintf("core: Name of unassigned TargetID %d", id))
	}
	return *p
}

// Len returns the number of currently interned targets (live plus limbo).
// On a pinned interner valid IDs are exactly 1..Len(); on a capped interner
// the live ID range is 1..HighWater() with dead slots interspersed.
func (in *Interner) Len() int {
	n := 0
	for i := range in.stripes {
		st := &in.stripes[i]
		st.mu.Lock()
		in.materializeLocked(st)
		n += len(st.ids)
		st.mu.Unlock()
	}
	return n
}

// HighWater returns the largest ID ever assigned and not yet compacted
// away: dense per-ID slices downstream need exactly this many slots.
func (in *Interner) HighWater() TargetID {
	return TargetID(in.arena.length.Load())
}

// Limbo returns the number of interned targets with no references (eviction
// candidates). Always 0 on a pinned interner.
func (in *Interner) Limbo() int {
	n := 0
	for i := range in.stripes {
		st := &in.stripes[i]
		st.mu.Lock()
		n += st.limboLen
		st.mu.Unlock()
	}
	return n
}

// Recycles returns how many IDs have been recycled for a new target.
func (in *Interner) Recycles() int64 {
	var n int64
	for i := range in.stripes {
		st := &in.stripes[i]
		st.mu.Lock()
		n += st.recycles
		st.mu.Unlock()
	}
	return n
}

// Refs returns id's reference count (0 for limbo entries), or -1 if the
// slot is dead. On a pinned interner it always reports 0. Diagnostics and
// tests only.
func (in *Interner) Refs(id TargetID) int {
	if in.max == 0 || id <= 0 || int32(id) > in.arena.length.Load() {
		return 0
	}
	sl := in.arena.slotIfPresent(int32(id) - 1)
	if sl == nil {
		return 0
	}
	return int(sl.refs.Load())
}

// lockAll acquires every stripe lock in index order (the unlock order does
// not matter). With all stripes held no Intern, Acquire or Release can make
// progress, so Compact's cross-stripe truncation is quiescent.
func (in *Interner) lockAll() {
	for i := range in.stripes {
		in.stripes[i].mu.Lock()
	}
}

func (in *Interner) unlockAll() {
	for i := range in.stripes {
		in.stripes[i].mu.Unlock()
	}
}

// Compact is the periodic maintenance hook: it first shrinks each stripe
// back to its budget — an overflow while every target was referenced grows
// the table past it, and the excess dies here (LRU-first from the stripe's
// limbo) once references have drained — then reclaims trailing dead slots,
// and returns the new high water. Dead IDs go on the stripe free lists for
// reuse. The ID space only ever shrinks from the top — live IDs are never
// renumbered, so ID-keyed structures stay valid and may trim their own
// dense slices to the returned bound (see IDLRU.Compact and
// LARDR.CompactTargets). Whole trailing arena chunks freed by the shrink
// are returned to the heap. No-op on a pinned interner.
func (in *Interner) Compact() TargetID {
	if in.max == 0 {
		return TargetID(in.arena.length.Load())
	}
	in.lockAll()
	defer in.unlockAll()
	for i := range in.stripes {
		st := &in.stripes[i]
		for len(st.ids) > st.budget && st.limboTail != nilSlot {
			s := st.limboTail
			in.limboRemoveLocked(st, s)
			sl := in.arena.slot(s)
			delete(st.ids, *sl.name.Load())
			sl.name.Store(&deadName)
			sl.refs.Store(deadRef)
			st.free = append(st.free, TargetID(s+1))
			st.pending++
		}
	}
	n := in.arena.length.Load()
	for n > 0 && in.arena.slot(n-1).refs.Load() == deadRef {
		n--
	}
	if n != in.arena.length.Load() {
		in.arena.truncate(n)
		// Drop freed IDs that now lie beyond the table.
		for i := range in.stripes {
			st := &in.stripes[i]
			kept := st.free[:0]
			for _, id := range st.free {
				if int32(id) <= n {
					kept = append(kept, id)
				}
			}
			st.free = kept
		}
	}
	// Refresh only the snapshots that drifted; an idle Compact (the common
	// steady-state Maintain) must not allocate.
	for i := range in.stripes {
		if st := &in.stripes[i]; st.pending > 0 {
			st.rebuildLocked()
		}
	}
	return TargetID(n)
}

// EnsureID returns r.ID if set, interning r.Target otherwise. It does not
// mutate r. On a capped interner the fresh-intern path takes a reference
// the caller owns (see Intern).
func (in *Interner) EnsureID(r Request) TargetID {
	if r.ID != NoTarget {
		return r.ID
	}
	return in.Intern(r.Target)
}
