package core

import (
	"fmt"
	"sync"
)

// TargetID is a dense integer name for a Target. The interner assigns IDs
// starting at 1; NoTarget (0) marks a request whose target has not been
// interned yet. Dense IDs let the per-event paths of the simulator and the
// policies index slices instead of hashing target strings: a cache lookup is
// an array load, a mapping update touches no map.
type TargetID int32

// NoTarget is the zero value of TargetID: "not interned". Constructors that
// build Requests from raw strings (trace parsing, the prototype protocol)
// leave the ID at NoTarget; the HTTP parser or the trace loader interns
// before any policy or cache sees the request.
const NoTarget TargetID = 0

// RefCounter is the lifecycle hook an ID-keyed structure uses to pin the
// interned targets it holds: Acquire when an entry keyed by id is inserted,
// Release when it is evicted or removed. *Interner implements it; structures
// with a nil RefCounter skip the calls entirely, so the simulator's pinned
// workloads pay nothing.
type RefCounter interface {
	Acquire(id TargetID)
	Release(id TargetID)
}

// Sentinel slot values for the interner's lifecycle state. Slots are id-1.
const (
	nilSlot    int32 = -1 // list terminator / empty list
	notInLimbo int32 = -2 // entry is referenced (or dead), not in the limbo list
	deadRef    int32 = -1 // refs value marking a recycled (dead) slot
)

// Interner maps Target strings to dense TargetIDs and back. IDs are assigned
// sequentially from 1 in first-intern order, so a trace interned
// single-threaded always yields the same IDs for the same trace — simulation
// results stay reproducible.
//
// Interner is safe for concurrent use: the prototype front-end interns
// request targets from parallel connection handlers. Lookups of
// already-interned targets take only a read lock in pinned mode.
//
// # Pinned vs evictable
//
// NewInterner returns a *pinned* interner: IDs are never recycled and memory
// grows with the number of distinct targets ever interned. That is exactly
// right for trace-driven simulation (the population is the trace's catalog)
// and bounded for the prototype's benchmark runs. Acquire and Release are
// no-ops, so the refcount protocol costs nothing on pinned workloads, and ID
// assignment order is byte-for-byte what it was before lifecycle management
// existed — simulation goldens are unaffected.
//
// NewEvictableInterner(max) returns a *capped* interner for front-ends
// facing an unbounded URL space (query strings, crawlers): every interned
// target carries a reference count, zero-ref targets sit on an LRU "limbo"
// list, and when the table is at its cap a new target recycles the ID of the
// least-recently-released limbo entry. The protocol:
//
//   - Intern returns the ID holding one reference; the caller releases it
//     when the request that carried it has been dispatched.
//   - ID-keyed structures (mapping tables, caches) Acquire on insert and
//     Release on evict, so an ID is never recycled while any structure still
//     holds an entry under it — recycling cannot alias two live targets.
//   - When every interned target is referenced the cap is exceeded rather
//     than failing: live references bound the overflow, and the table
//     shrinks back to the cap as references drain.
//
// Dead IDs go on a free list and are reused before new IDs are minted, so
// the dense per-ID slices downstream (cache position tables, policy
// counters) stay bounded by the cap instead of growing with target churn.
// Compact reclaims trailing dead slots after a churn burst.
type Interner struct {
	mu    sync.RWMutex
	ids   map[Target]TargetID
	names []Target // names[id-1] is the target of id

	// Lifecycle state, active only in capped mode (max > 0).
	max  int
	refs []int32    // refs[id-1]; deadRef marks a recycled slot
	free []TargetID // dead IDs awaiting reuse

	// Limbo is the LRU list of zero-ref entries, intrusively linked through
	// per-slot prev/next so releases and revivals never allocate. head is
	// most recently released, tail the recycling victim.
	limboPrev, limboNext []int32
	limboHead, limboTail int32
	limboLen             int

	recycles int64
}

// NewInterner returns an empty pinned interner: IDs live forever.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Target]TargetID), limboHead: nilSlot, limboTail: nilSlot}
}

// NewInternerFromNames builds a pinned interner whose table is exactly
// names in order (names[i] ↔ ID i+1). This is the bulk path for loaders
// that already hold a trace's target table — one presized map fill instead
// of a lock round trip per target. Duplicate names collapse to the first
// occurrence; callers that must reject duplicates compare Len() against
// len(names).
func NewInternerFromNames(names []Target) *Interner {
	in := &Interner{
		ids:       make(map[Target]TargetID, len(names)),
		names:     append(make([]Target, 0, len(names)), names...),
		limboHead: nilSlot,
		limboTail: nilSlot,
	}
	for i := len(names) - 1; i >= 0; i-- {
		in.ids[names[i]] = TargetID(i + 1)
	}
	return in
}

// NewEvictableInterner returns an empty capped interner holding at most max
// targets (see the type comment for the reference protocol). max must be
// positive.
func NewEvictableInterner(max int) *Interner {
	if max <= 0 {
		panic("core: evictable interner needs a positive target cap")
	}
	in := NewInterner()
	in.max = max
	return in
}

// Evictable reports whether this interner recycles IDs (capped mode).
func (in *Interner) Evictable() bool { return in.max > 0 }

// Cap returns the target cap (0 for a pinned interner).
func (in *Interner) Cap() int { return in.max }

// Intern returns the ID for t, assigning an ID if t is new: a recycled dead
// ID when one is free, the next dense ID otherwise. In capped mode the
// returned ID holds one reference that the caller must Release when done;
// in pinned mode references are not tracked and Release is a no-op, so
// callers may follow the same protocol unconditionally.
func (in *Interner) Intern(t Target) TargetID {
	if in.max == 0 {
		// Pinned fast path: read lock for the common re-intern.
		in.mu.RLock()
		id, ok := in.ids[t]
		in.mu.RUnlock()
		if ok {
			return id
		}
		in.mu.Lock()
		defer in.mu.Unlock()
		if id, ok := in.ids[t]; ok {
			return id
		}
		in.names = append(in.names, t)
		id = TargetID(len(in.names))
		in.ids[t] = id
		return id
	}

	// Capped mode mutates refcounts (and possibly recycles) on every call,
	// so it takes the write lock outright. Dispatch work dominates a
	// front-end's request cost; one short critical section per parsed
	// request is in the noise.
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[t]; ok {
		s := int32(id) - 1
		if in.refs[s] == 0 {
			in.limboRemove(s)
		}
		in.refs[s]++
		return id
	}
	return in.assignLocked(t)
}

// assignLocked binds a new target to an ID in capped mode, recycling before
// growing. Callers hold the write lock.
func (in *Interner) assignLocked(t Target) TargetID {
	// At the cap: evict the least-recently-released zero-ref target and
	// reuse its ID. Its refcount is zero, so no cache or mapping holds an
	// entry keyed by the ID — reuse cannot alias.
	if len(in.ids) >= in.max && in.limboTail != nilSlot {
		s := in.limboTail
		in.limboRemove(s)
		delete(in.ids, in.names[s])
		in.names[s] = t
		in.refs[s] = 1
		id := TargetID(s + 1)
		in.ids[t] = id
		in.recycles++
		return id
	}
	// Below the cap (or every target is referenced — the documented
	// overflow): prefer a dead slot from the free list so the ID space
	// stays dense.
	if n := len(in.free); n > 0 {
		id := in.free[n-1]
		in.free = in.free[:n-1]
		s := int32(id) - 1
		in.names[s] = t
		in.refs[s] = 1
		in.ids[t] = id
		return id
	}
	in.names = append(in.names, t)
	in.refs = append(in.refs, 1)
	in.limboPrev = append(in.limboPrev, notInLimbo)
	in.limboNext = append(in.limboNext, notInLimbo)
	id := TargetID(len(in.names))
	in.ids[t] = id
	return id
}

// Acquire adds a reference to id (no-op on a pinned interner). Acquiring a
// zero-ref ID revives it from limbo. It panics on a dead or never-assigned
// ID: by the reference protocol a caller can only acquire an ID it resolved
// through Intern or received alongside a live entry.
func (in *Interner) Acquire(id TargetID) {
	if in.max == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.slotLocked(id, "Acquire")
	if in.refs[s] == 0 {
		in.limboRemove(s)
	}
	in.refs[s]++
}

// Release drops a reference to id (no-op on a pinned interner). When the
// last reference drains, the target parks on the limbo list: it is still
// resolvable (a re-Intern revives it) until table pressure recycles its ID.
func (in *Interner) Release(id TargetID) {
	if in.max == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.slotLocked(id, "Release")
	if in.refs[s] == 0 {
		panic(fmt.Sprintf("core: Release of unreferenced TargetID %d (%q)", id, in.names[s]))
	}
	in.refs[s]--
	if in.refs[s] == 0 {
		in.limboPush(s)
	}
}

// slotLocked validates id against the live table and returns its slot.
func (in *Interner) slotLocked(id TargetID, op string) int32 {
	if id <= 0 || int(id) > len(in.names) {
		panic(fmt.Sprintf("core: %s of unassigned TargetID %d", op, id))
	}
	s := int32(id) - 1
	if in.refs[s] == deadRef {
		panic(fmt.Sprintf("core: %s of recycled TargetID %d", op, id))
	}
	return s
}

// limboPush parks slot s at the MRU end of the limbo list.
func (in *Interner) limboPush(s int32) {
	in.limboPrev[s] = nilSlot
	in.limboNext[s] = in.limboHead
	if in.limboHead != nilSlot {
		in.limboPrev[in.limboHead] = s
	}
	in.limboHead = s
	if in.limboTail == nilSlot {
		in.limboTail = s
	}
	in.limboLen++
}

// limboRemove unlinks slot s from the limbo list.
func (in *Interner) limboRemove(s int32) {
	prev, next := in.limboPrev[s], in.limboNext[s]
	if prev == notInLimbo || next == notInLimbo {
		panic(fmt.Sprintf("core: limbo unlink of non-limbo slot %d", s))
	}
	if prev != nilSlot {
		in.limboNext[prev] = next
	} else {
		in.limboHead = next
	}
	if next != nilSlot {
		in.limboPrev[next] = prev
	} else {
		in.limboTail = prev
	}
	in.limboPrev[s], in.limboNext[s] = notInLimbo, notInLimbo
	in.limboLen--
}

// AppendNames appends the interner's targets in ID order (names[i] is the
// target of ID i+1) to dst and returns it: the bulk accessor loaders use
// to compare or adopt a table without a lock round trip per entry. On a
// capped interner dead slots appear as empty strings.
func (in *Interner) AppendNames(dst []Target) []Target {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return append(dst, in.names...)
}

// Lookup returns the ID for t without interning, and whether it was present.
// In capped mode it takes no reference, so the binding is only stable while
// the caller otherwise holds the ID alive — use it for diagnostics, not on
// the dispatch path.
func (in *Interner) Lookup(t Target) (TargetID, bool) {
	in.mu.RLock()
	id, ok := in.ids[t]
	in.mu.RUnlock()
	return id, ok
}

// Name returns the target string of id. It panics on NoTarget, a recycled
// ID, or an ID this interner never assigned: all are driver bugs, not data.
func (in *Interner) Name(id TargetID) Target {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id <= 0 || int(id) > len(in.names) {
		panic(fmt.Sprintf("core: Name of unassigned TargetID %d", id))
	}
	if in.max > 0 && in.refs[id-1] == deadRef {
		panic(fmt.Sprintf("core: Name of recycled TargetID %d", id))
	}
	return in.names[id-1]
}

// Len returns the number of currently interned targets (live plus limbo).
// On a pinned interner valid IDs are exactly 1..Len(); on a capped interner
// the live ID range is 1..HighWater() with dead slots interspersed.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.ids)
}

// HighWater returns the largest ID ever assigned and not yet compacted
// away: dense per-ID slices downstream need exactly this many slots.
func (in *Interner) HighWater() TargetID {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return TargetID(len(in.names))
}

// Limbo returns the number of interned targets with no references (eviction
// candidates). Always 0 on a pinned interner.
func (in *Interner) Limbo() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.limboLen
}

// Recycles returns how many IDs have been recycled for a new target.
func (in *Interner) Recycles() int64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.recycles
}

// Refs returns id's reference count (0 for limbo entries), or -1 if the
// slot is dead. On a pinned interner it always reports 0. Diagnostics and
// tests only.
func (in *Interner) Refs(id TargetID) int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.max == 0 || id <= 0 || int(id) > len(in.names) {
		return 0
	}
	return int(in.refs[id-1])
}

// Compact is the periodic maintenance hook: it first shrinks the table
// back to the cap — an overflow while every target was referenced grows the
// table past it, and the excess dies here (LRU-first from limbo) once
// references have drained — then reclaims trailing dead slots, and returns
// the new high water. Dead IDs go on the free list for reuse. The ID space
// only ever shrinks from the top — live IDs are never renumbered, so
// ID-keyed structures stay valid and may trim their own dense slices to the
// returned bound (see IDLRU.Compact and LARDR.CompactTargets). When the
// retained storage is mostly slack the backing arrays are reallocated
// tight, returning the memory of a departed working set to the heap. No-op
// on a pinned interner.
func (in *Interner) Compact() TargetID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.max == 0 {
		return TargetID(len(in.names))
	}
	for len(in.ids) > in.max && in.limboTail != nilSlot {
		s := in.limboTail
		in.limboRemove(s)
		delete(in.ids, in.names[s])
		in.names[s] = ""
		in.refs[s] = deadRef
		in.free = append(in.free, TargetID(s+1))
	}
	n := len(in.names)
	for n > 0 && in.refs[n-1] == deadRef {
		n--
	}
	if n != len(in.names) {
		in.names = in.names[:n]
		in.refs = in.refs[:n]
		in.limboPrev = in.limboPrev[:n]
		in.limboNext = in.limboNext[:n]
		// Drop freed IDs that now lie beyond the table.
		kept := in.free[:0]
		for _, id := range in.free {
			if int(id) <= n {
				kept = append(kept, id)
			}
		}
		in.free = kept
	}
	if cap(in.names) > 2*n+64 {
		in.names = append(make([]Target, 0, n), in.names...)
		in.refs = append(make([]int32, 0, n), in.refs...)
		in.limboPrev = append(make([]int32, 0, n), in.limboPrev...)
		in.limboNext = append(make([]int32, 0, n), in.limboNext...)
	}
	return TargetID(n)
}

// EnsureID returns r.ID if set, interning r.Target otherwise. It does not
// mutate r. On a capped interner the fresh-intern path takes a reference
// the caller owns (see Intern).
func (in *Interner) EnsureID(r Request) TargetID {
	if r.ID != NoTarget {
		return r.ID
	}
	return in.Intern(r.Target)
}
