package core

import (
	"fmt"
	"testing"
)

// BenchmarkInternerContention is the stripe-win microbenchmark: N
// goroutines (one per P — raise GOMAXPROCS to see scaling) intern and
// release over a bounded hot set. "hot-hits" pins every hot target with a
// standing reference so the measured loop is the pure lock-free path
// (snapshot lookup + CAS acquire/release); "churn" draws from a universe
// past the cap so recycling keeps the stripe locks in play. Comparing
// stripes=1 against stripes=auto shows what sharding buys once the machine
// has cores; on one core the two are within noise.
func BenchmarkInternerContention(b *testing.B) {
	const (
		cap    = 8192
		hotSet = 1024
	)
	for _, sc := range []struct {
		name    string
		stripes int
	}{
		{"stripes=1", 1},
		{"stripes=auto", 0},
	} {
		b.Run(sc.name, func(b *testing.B) {
			b.Run("hot-hits", func(b *testing.B) {
				in := NewEvictableInternerStripes(cap, sc.stripes)
				hot := make([]Target, hotSet)
				for i := range hot {
					hot[i] = Target(fmt.Sprintf("/hot%d", i))
					in.Intern(hot[i]) // standing reference: stays out of limbo
				}
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := uint32(0)
					for pb.Next() {
						i = i*1664525 + 1013904223
						id := in.Intern(hot[i%hotSet])
						in.Release(id)
					}
				})
			})
			b.Run("churn", func(b *testing.B) {
				in := NewEvictableInternerStripes(cap, sc.stripes)
				universe := make([]Target, 4*cap)
				for i := range universe {
					universe[i] = Target(fmt.Sprintf("/u%d", i))
				}
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := uint32(0)
					for pb.Next() {
						i = i*1664525 + 1013904223
						id := in.Intern(universe[i%uint32(len(universe))])
						in.Release(id)
					}
				})
			})
		})
	}
}

// BenchmarkInternerPinnedHit measures the pinned re-intern (the simulator
// and loader hot path): a snapshot map lookup, no locks, no refcounts.
func BenchmarkInternerPinnedHit(b *testing.B) {
	const targets = 1024
	in := NewInterner()
	names := make([]Target, targets)
	for i := range names {
		names[i] = Target(fmt.Sprintf("/t%d", i))
		in.Intern(names[i])
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			i = i*1664525 + 1013904223
			if in.Intern(names[i%targets]) == NoTarget {
				b.Fail()
			}
		}
	})
}
