package core

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// histStream draws n samples from a mix of scales — tight uniform,
// heavy-tailed log-uniform, and exact small integers — so bucket edges at
// every octave get exercised.
func histStream(r *rand.Rand, n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		switch r.Intn(3) {
		case 0:
			vals[i] = r.Int63n(100) // unit buckets, exact
		case 1:
			vals[i] = 1000 + r.Int63n(100_000)
		default:
			vals[i] = int64(math.Exp(r.Float64()*30)) + 1 // log-uniform up to e^30
		}
	}
	return vals
}

// exactQuantile is the reference order statistic Quantile bounds: the
// ceil(q·n)-th smallest sample.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestLatencyHistQuantileBoundedError(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		vals := histStream(r, 2000+r.Intn(8000))
		h := NewLatencyHist()
		var sum int64
		for _, v := range vals {
			h.Record(v)
			sum += v
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		if h.Count() != int64(len(vals)) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, h.Count(), len(vals))
		}
		if h.Sum() != sum {
			t.Fatalf("trial %d: Sum = %d, want %d", trial, h.Sum(), sum)
		}
		if h.Max() != sorted[len(sorted)-1] {
			t.Fatalf("trial %d: Max = %d, want %d", trial, h.Max(), sorted[len(sorted)-1])
		}
		for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
			exact := exactQuantile(sorted, q)
			got := h.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d: Quantile(%g) = %d underestimates exact %d", trial, q, got, exact)
			}
			// Upper edge of the exact sample's bucket: off by at most one
			// sub-bucket width, i.e. relative error ≤ 2^-7.
			if float64(got-exact) > float64(exact)/128+1 {
				t.Fatalf("trial %d: Quantile(%g) = %d vs exact %d: error beyond one sub-bucket",
					trial, q, got, exact)
			}
		}
	}
}

func TestLatencyHistBucketLayout(t *testing.T) {
	// Every bucket contains its own bounds, and bounds tile int64 with no
	// gaps or overlaps.
	for i := 0; i < histBuckets; i++ {
		lo, hi := histBounds(i)
		if histIndex(lo) != i || histIndex(hi) != i {
			t.Fatalf("bucket %d [%d,%d]: bounds map to indices %d,%d", i, lo, hi, histIndex(lo), histIndex(hi))
		}
		if i > 0 {
			_, prevHi := histBounds(i - 1)
			if lo != prevHi+1 {
				t.Fatalf("bucket %d starts at %d, previous ends at %d", i, lo, prevHi)
			}
		}
	}
	if _, hi := histBounds(histBuckets - 1); hi != math.MaxInt64 {
		t.Fatalf("top bucket ends at %d, want MaxInt64", hi)
	}
	if got := histIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("histIndex(MaxInt64) = %d, want %d", got, histBuckets-1)
	}
	h := NewLatencyHist()
	h.Record(-5) // clamps, must not panic
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative sample: count=%d q50=%d, want 1, 0", h.Count(), h.Quantile(0.5))
	}
}

func TestLatencyHistCountAbove(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := histStream(r, 5000)
	h := NewLatencyHist()
	for _, v := range vals {
		h.Record(v)
	}
	for _, threshold := range []int64{0, 50, 1000, 40_000, 1 << 25} {
		var exact, inBucket int64
		ti := histIndex(threshold)
		for _, v := range vals {
			if v > threshold {
				exact++
			}
			if histIndex(v) == ti {
				inBucket++
			}
		}
		got := h.CountAbove(threshold)
		if got > exact || got < exact-inBucket {
			t.Fatalf("CountAbove(%d) = %d, want in [%d,%d]", threshold, got, exact-inBucket, exact)
		}
	}
}

func TestLatencyHistMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	mk := func() *LatencyHist {
		h := NewLatencyHist()
		for _, v := range histStream(r, 3000) {
			h.Record(v)
		}
		return h
	}
	a, b, c := mk(), mk(), mk()

	left := a.Clone()
	left.Merge(b)
	left.Merge(c)

	bc := b.Clone()
	bc.Merge(c)
	right := a.Clone()
	right.Merge(bc)

	if left.Count() != right.Count() || left.Sum() != right.Sum() || left.Max() != right.Max() {
		t.Fatalf("merge associativity: (a+b)+c = (%d,%d,%d), a+(b+c) = (%d,%d,%d)",
			left.Count(), left.Sum(), left.Max(), right.Count(), right.Sum(), right.Max())
	}
	for i := range left.buckets {
		if left.buckets[i] != right.buckets[i] {
			t.Fatalf("merge associativity: bucket %d differs: %d vs %d", i, left.buckets[i], right.buckets[i])
		}
	}
}

func TestLatencyHistSubWarmupDelta(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	warm, measured := histStream(r, 2000), histStream(r, 6000)
	h := NewLatencyHist()
	for _, v := range warm {
		h.Record(v)
	}
	snap := h.Clone()
	for _, v := range measured {
		h.Record(v)
	}
	delta := h.Clone()
	delta.Sub(snap)

	if delta.Count() != int64(len(measured)) {
		t.Fatalf("delta count = %d, want %d", delta.Count(), len(measured))
	}
	sorted := append([]int64(nil), measured...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.5, 0.99, 0.999} {
		exact := exactQuantile(sorted, q)
		got := delta.Quantile(q)
		if got < exact || float64(got-exact) > float64(exact)/128+1 {
			t.Fatalf("delta Quantile(%g) = %d vs exact %d", q, got, exact)
		}
	}
}

func TestLatencyHistConcurrentRecord(t *testing.T) {
	const goroutines = 8
	const perG = 20_000
	h := NewLatencyHist()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(r.Int63n(1 << 30))
				if i%1024 == 0 {
					// Concurrent readers must be race-free with writers.
					h.Quantile(0.99)
					h.Count()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("concurrent Count = %d, want %d", h.Count(), goroutines*perG)
	}
	var fromBuckets int64
	h.Each(func(_, _ int64, c int64) { fromBuckets += c })
	if fromBuckets != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", fromBuckets, goroutines*perG)
	}
}

// TestLatencyHistRecordZeroAllocs holds the record path to zero
// allocations in steady state, in the style of
// TestDispatchSteadyStateZeroAllocs: the histogram sits on the
// simulator's per-request hot path.
func TestLatencyHistRecordZeroAllocs(t *testing.T) {
	h := NewLatencyHist()
	v := int64(17)
	allocs := testing.AllocsPerRun(10_000, func() {
		h.Record(v)
		v = (v*1664525 + 1013904223) & (1<<40 - 1)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.2f per call, want 0", allocs)
	}
}
